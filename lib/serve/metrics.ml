open Hr_core

(* All counters behind one mutex: contention is per-request and the
   critical sections are a few words — far below the solve costs they
   measure. *)
type t = {
  mu : Mutex.t;
  mutable latencies : float list;  (* reversed arrival order *)
  mutable nlat : int;
  mutable admitted : int;
  mutable shed : int;
  mutable completed : int;
  mutable errors : int;
  mutable cut_off : int;
}

let create () =
  {
    mu = Mutex.create ();
    latencies = [];
    nlat = 0;
    admitted = 0;
    shed = 0;
    completed = 0;
    errors = 0;
    cut_off = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let admit t = locked t (fun () -> t.admitted <- t.admitted + 1)
let shed t = locked t (fun () -> t.shed <- t.shed + 1)

let complete t ~latency_ms (r : Batch.response) =
  locked t (fun () ->
      t.latencies <- latency_ms :: t.latencies;
      t.nlat <- t.nlat + 1;
      t.completed <- t.completed + 1;
      match r.Batch.outcome with
      | Error _ -> t.errors <- t.errors + 1
      | Ok s ->
          if s.Batch.solution.Solution.cut_off then t.cut_off <- t.cut_off + 1)

let latencies t =
  locked t (fun () ->
      let arr = Array.make t.nlat 0. in
      List.iteri (fun i x -> arr.(t.nlat - 1 - i) <- x) t.latencies;
      arr)

type snapshot = {
  admitted : int;
  shed : int;
  completed : int;
  errors : int;
  cut_off : int;
  samples : float array;  (* per-request latencies, arrival order *)
}

let snapshot t =
  let samples = latencies t in
  locked t (fun () ->
      {
        admitted = t.admitted;
        shed = t.shed;
        completed = t.completed;
        errors = t.errors;
        cut_off = t.cut_off;
        samples;
      })

let snapshot_to_json (s : snapshot) =
  Telemetry.Obj
    [
      ("admitted", Telemetry.Int s.admitted);
      ("shed", Telemetry.Int s.shed);
      ("completed", Telemetry.Int s.completed);
      ("errors", Telemetry.Int s.errors);
      ("cut_off", Telemetry.Int s.cut_off);
      ("latency", Telemetry.latency_summary s.samples);
    ]
