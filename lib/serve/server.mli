(** Long-lived concurrent socket front-end for the batched solver.

    One process serves many JSON-lines clients over a Unix-domain or
    TCP socket: per-connection reader threads feed a bounded global
    admission queue; a single dispatcher micro-batches queued requests
    onto the persistent domain {!Hr_util.Pool} via {!Hr_core.Batch.run}
    with a shared byte-budgeted LRU oracle cache; an idle prefetcher
    prewarms the likely-next oracle from recent request history.

    Overload is answered, never dropped: past [max_queue] queued
    requests, admission returns a structured [hyperreconf.result/1]
    error whose message starts with ["overloaded: "].  Shutdown drains —
    every admitted request is solved and written back before sockets
    close, and the summary is snapshotted before the pool is torn
    down. *)

(** Where to listen. *)
type listen = [ `Unix_path of string | `Tcp of string * int ]

val listen_to_string : listen -> string

(** [listen_of_string s] parses ["unix:PATH"], ["tcp:HOST:PORT"]
    (empty or ["*"] host means any interface), or a bare path
    containing ['/'] as a Unix socket path. *)
val listen_of_string : string -> (listen, string) result

type config = {
  listen : listen;
  workers : int option;  (** pool size; default = available cores *)
  deadline_ms : int option;  (** global budget per dispatched batch *)
  max_queue : int;  (** admission bound; beyond it requests are shed *)
  max_batch : int;  (** max requests drained into one [Batch.run] *)
  seed : int;
  solvers : Hr_core.Problem.t -> Hr_core.Solver.t list;
  max_lru_bytes : int option;  (** oracle LRU byte budget; None = unbounded *)
  max_table_bytes : int option;  (** per-problem dense-table cap *)
  cache_dir : string option;  (** persistent on-disk table cache *)
  oracle : Hr_core.Interval_cost.policy option;
      (** oracle ladder rung for switch-model cases; None = Auto *)
  prefetch : bool;  (** prewarm likely-next oracles when idle *)
  timing : bool;  (** false zeroes wall_ms in responses (determinism) *)
  before_batch : (unit -> unit) option;
      (** test hook, called by the dispatcher before each [Batch.run];
          blocking it holds the queue so load-shedding is
          deterministic *)
}

val config :
  ?workers:int ->
  ?deadline_ms:int ->
  ?max_queue:int ->
  ?max_batch:int ->
  ?seed:int ->
  ?solvers:(Hr_core.Problem.t -> Hr_core.Solver.t list) ->
  ?max_lru_bytes:int ->
  ?max_table_bytes:int ->
  ?cache_dir:string ->
  ?oracle:Hr_core.Interval_cost.policy ->
  ?prefetch:bool ->
  ?timing:bool ->
  ?before_batch:(unit -> unit) ->
  listen ->
  config
(** Defaults: [max_queue = 64], [max_batch = max_queue],
    [seed = Solver.default_seed], [solvers = Solver_registry.applicable],
    unbounded LRU, prefetch and timing on. *)

type t

(** [start cfg] binds the listen address and launches the accept,
    dispatcher and (optionally) prefetch threads.  Ignores [SIGPIPE].
    Raises [Failure] if the address cannot be bound (e.g. the Unix path
    exists and is not a socket). *)
val start : config -> t

(** The bound address — useful with [`Tcp (_, 0)] to learn the port. *)
val address : t -> Unix.sockaddr

(** [stop t] shuts down gracefully: stops accepting, forces EOF on
    idle connections, waits for every connection to be answered and
    closed, drains the dispatcher, snapshots the summary, and only then
    shuts the pool down.  Idempotent. *)
val stop : t -> unit

val summary_schema_version : string

(** The [hyperreconf.serve/1] summary: admission/latency/cache
    statistics.  Live snapshot while running; after {!stop}, the
    snapshot taken at shutdown. *)
val summary_json : t -> Hr_core.Telemetry.json

(** [run cfg ~summary] starts a server and blocks until {!request_stop}
    or (by default) [SIGINT]/[SIGTERM]; then stops gracefully and hands
    the final summary document to [summary]. *)
val run :
  ?handle_signals:bool -> config -> summary:(Hr_core.Telemetry.json -> unit) -> unit

(** Ask a blocking {!run} to shut down (signal-handler safe). *)
val request_stop : unit -> unit
