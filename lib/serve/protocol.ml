open Hr_core
module Check = Hr_check
module Budget = Hr_util.Budget

type parsed =
  | Request of Batch.request
  | Malformed of { id : string; error : string }

let parse_line ?max_table_bytes ?cache_dir ?oracle ~fallback_id line =
  match Telemetry.json_of_string line with
  | Error e -> Malformed { id = fallback_id; error = e }
  | Ok json ->
      let id, deadline_ms, case_json =
        match json with
        | Telemetry.Obj fields when List.mem_assoc "case" fields ->
            let id =
              match List.assoc_opt "id" fields with
              | Some (Telemetry.String s) -> s
              | Some (Telemetry.Int i) -> string_of_int i
              | _ -> fallback_id
            in
            let deadline_ms =
              match List.assoc_opt "deadline_ms" fields with
              | Some (Telemetry.Int ms) when ms >= 0 -> Some ms
              | _ -> None
            in
            (id, deadline_ms, List.assoc "case" fields)
        | _ -> (fallback_id, None, json)
      in
      (match Check.Case.of_json case_json with
      | Error e -> Malformed { id; error = e }
      | Ok case ->
          (* The digest of the canonical case JSON is the in-process
             dedup key — the same structural-hash scheme the disk cache
             uses, over the whole problem identity (oracle inputs plus
             params/mode/class, which change the Problem even when the
             tables agree).  Identical instances share one build across
             every batch of the process.

             The per-request budget starts ticking here, at admission:
             queue wait counts against a request's own deadline. *)
          Request
            (Batch.request
               ~key:(Digest.to_hex (Digest.string (Check.Case.to_string case)))
               ?budget:(Option.map Budget.of_deadline_ms deadline_ms)
               ~id (fun () ->
                 Check.Case.problem ?max_table_bytes ?cache_dir ?oracle case)))

let response_line ?timing r =
  Telemetry.json_to_string (Batch.response_to_json ?timing r)
