(** Per-request serving metrics: admission/shedding counters and the
    latency sample the summary's p50/p95/p99 are computed from.
    Thread-safe — connection threads, the dispatcher and the summary
    writer share one instance. *)

type t

val create : unit -> t

(** [admit t] — a request entered the solve queue. *)
val admit : t -> unit

(** [shed t] — a request was refused at admission (structured
    [overloaded] response, counted separately from solve errors). *)
val shed : t -> unit

(** [complete t ~latency_ms r] records a finished request:
    [latency_ms] is admission-to-response (queue wait included), and
    [r]'s outcome feeds the error / cut-off counters. *)
val complete : t -> latency_ms:float -> Hr_core.Batch.response -> unit

(** [latencies t] — the recorded samples in arrival order. *)
val latencies : t -> float array

(** A consistent copy of every counter plus the latency samples. *)
type snapshot = {
  admitted : int;
  shed : int;
  completed : int;
  errors : int;
  cut_off : int;
  samples : float array;
}

val snapshot : t -> snapshot

(** [snapshot_to_json s] — the summary fragment: counters plus
    {!Hr_core.Telemetry.latency_summary} of the samples (null
    percentiles for an idle server). *)
val snapshot_to_json : snapshot -> Hr_core.Telemetry.json
