open Hr_core
module Pool = Hr_util.Pool
module Budget = Hr_util.Budget

let summary_schema_version = "hyperreconf.serve/1"

type listen = [ `Unix_path of string | `Tcp of string * int ]

let listen_to_string = function
  | `Unix_path p -> "unix:" ^ p
  | `Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" (if h = "" then "*" else h) p

let listen_of_string s =
  let unix path =
    if path = "" then Error "empty unix socket path" else Ok (`Unix_path path)
  in
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      unix (String.sub s (i + 1) (String.length s - i - 1))
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
      | Some j -> (
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          match int_of_string_opt port with
          | Some p when p >= 0 && p < 65536 -> Ok (`Tcp (host, p))
          | _ -> Error (Printf.sprintf "bad tcp port %S" port)))
  | _ ->
      (* A bare path is a unix socket — the common CLI shorthand. *)
      if String.contains s '/' then unix s
      else Error (Printf.sprintf "bad listen address %S (expected unix:PATH or tcp:HOST:PORT)" s)

type config = {
  listen : listen;
  workers : int option;
  deadline_ms : int option;
  max_queue : int;
  max_batch : int;
  seed : int;
  solvers : Problem.t -> Solver.t list;
  max_lru_bytes : int option;
  max_table_bytes : int option;
  cache_dir : string option;
  oracle : Interval_cost.policy option;
  prefetch : bool;
  timing : bool;
  before_batch : (unit -> unit) option;
}

let config ?workers ?deadline_ms ?(max_queue = 64) ?max_batch
    ?(seed = Solver.default_seed) ?(solvers = Solver_registry.applicable)
    ?max_lru_bytes ?max_table_bytes ?cache_dir ?oracle ?(prefetch = true)
    ?(timing = true) ?before_batch listen =
  if max_queue < 1 then invalid_arg "Server.config: max_queue must be >= 1";
  let max_batch = max 1 (Option.value max_batch ~default:max_queue) in
  {
    listen;
    workers;
    deadline_ms;
    max_queue;
    max_batch;
    seed;
    solvers;
    max_lru_bytes;
    max_table_bytes;
    cache_dir;
    oracle;
    prefetch;
    timing;
    before_batch;
  }

(* One admitted request waiting for (or in) a batch. *)
type pending_req = {
  preq : Batch.request;
  admitted_ms : float;
  reply : Batch.response -> unit;
}

(* Per-connection state.  [mu] guards the out_channel and the in-flight
   count; the reader thread closes the socket only once every admitted
   request has been answered, so a client that half-closes its write
   side still receives every response. *)
type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  cmu : Mutex.t;
  drained : Condition.t;
  mutable inflight : int;
}

type t = {
  cfg : config;
  pool : Pool.t;
  cache : Batch.build_cache;
  metrics : Metrics.t;
  history : History.t;
  listen_fd : Unix.file_descr;
  started_ms : float;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : pending_req Queue.t;
  mutable stopping : bool;
  mutable connections : int;  (* lifetime accepted *)
  mutable open_fds : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
  mutable accept_thread : Thread.t option;
  mutable dispatch_thread : Thread.t option;
  mutable prefetch_thread : Thread.t option;
  mutable solve_ms : float;  (* summed batch wall clocks *)
  mutable batches : int;
  mutable stopped_summary : Telemetry.json option;
}

(* ------------------------------------------------------------------ *)
(* Summary document.                                                   *)

let summary_json t =
  match t.stopped_summary with
  | Some j -> j
  | None ->
      let m = Metrics.snapshot t.metrics in
      let cache = Batch.build_cache_stats t.cache in
      let table_cache =
        match t.cfg.cache_dir with
        | None -> Telemetry.Null
        | Some dir ->
            let s = Table_cache.stats (Table_cache.of_dir dir) in
            Telemetry.Obj
              [
                ("dir", Telemetry.String dir);
                ("hits", Telemetry.Int s.Table_cache.hits);
                ("misses", Telemetry.Int s.Table_cache.misses);
                ("stores", Telemetry.Int s.Table_cache.stores);
                ("invalid", Telemetry.Int s.Table_cache.invalid);
                ("errors", Telemetry.Int s.Table_cache.errors);
              ]
      in
      let uptime_ms = Budget.now_ms () -. t.started_ms in
      Telemetry.Obj
        [
          ("schema", Telemetry.String summary_schema_version);
          ("label", Telemetry.String "hrserve");
          ("listen", Telemetry.String (listen_to_string t.cfg.listen));
          ("connections", Telemetry.Int t.connections);
          ("admitted", Telemetry.Int m.Metrics.admitted);
          ("shed", Telemetry.Int m.Metrics.shed);
          ("completed", Telemetry.Int m.Metrics.completed);
          ("ok", Telemetry.Int (m.Metrics.completed - m.Metrics.errors));
          ("errors", Telemetry.Int m.Metrics.errors);
          ("cut_off", Telemetry.Int m.Metrics.cut_off);
          ("workers", Telemetry.Int (Pool.size t.pool));
          ( "deadline_ms",
            match t.cfg.deadline_ms with
            | Some ms -> Telemetry.Int ms
            | None -> Telemetry.Null );
          ("max_queue", Telemetry.Int t.cfg.max_queue);
          ("batches", Telemetry.Int t.batches);
          ("solve_ms", Telemetry.Float t.solve_ms);
          ("uptime_ms", Telemetry.Float uptime_ms);
          ( "throughput_per_s",
            if t.solve_ms > 0. then
              Telemetry.Float (1000. *. float m.Metrics.completed /. t.solve_ms)
            else Telemetry.Null );
          ("latency", Telemetry.latency_summary m.Metrics.samples);
          ("lru_cache", Batch.build_cache_stats_to_json cache);
          ("table_cache", table_cache);
        ]

(* ------------------------------------------------------------------ *)
(* Dispatcher: drain whatever is queued (up to max_batch) into one
   Batch.run on the pool; admission order is batch order, so each
   connection's responses come back in its request order.  Runs until
   told to stop AND the queue is dry — shutdown drains in-flight work,
   it never drops an admitted request. *)

let dispatch_loop t =
  let rec go () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* stopping, drained *)
    else begin
      let n = min t.cfg.max_batch (Queue.length t.queue) in
      (* Drain in admission order — batch order is response order. *)
      let rev = ref [] in
      for _ = 1 to n do
        rev := Queue.pop t.queue :: !rev
      done;
      let pendings = List.rev !rev in
      Mutex.unlock t.mu;
      (match t.cfg.before_batch with Some f -> f () | None -> ());
      let batch =
        Batch.run ~pool:t.pool ~seed:t.cfg.seed ?deadline_ms:t.cfg.deadline_ms
          ~solvers:t.cfg.solvers ~cache:t.cache
          (List.map (fun p -> p.preq) pendings)
      in
      Mutex.lock t.mu;
      t.solve_ms <- t.solve_ms +. batch.Batch.total_ms;
      t.batches <- t.batches + 1;
      Mutex.unlock t.mu;
      let now = Budget.now_ms () in
      List.iter2
        (fun p r ->
          Metrics.complete t.metrics ~latency_ms:(now -. p.admitted_ms) r;
          try p.reply r with _ -> ())
        pendings batch.Batch.responses;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Prefetcher: while the admission queue is idle, prewarm the oracle
   the history model rates most likely next.  Keys whose builds raise
   are remembered and never retried — a poisoned request must not turn
   the idle loop into a crash loop. *)

let prefetch_loop t =
  let failed = Hashtbl.create 8 in
  let resident key =
    Hashtbl.mem failed key || Batch.build_cache_mem t.cache key
  in
  let rec go () =
    if t.stopping then ()
    else begin
      Thread.delay 0.02;
      let idle =
        Mutex.lock t.mu;
        let i = Queue.is_empty t.queue in
        Mutex.unlock t.mu;
        i
      in
      (if idle && not t.stopping then
         match History.predict t.history ~resident ~limit:1 with
         | [] -> Thread.delay 0.05
         | (key, build) :: _ -> (
             try ignore (Batch.prefetch t.cache ~key build)
             with _ -> Hashtbl.replace failed key ()));
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Connections.                                                        *)

let send_response t (c : conn) r =
  Mutex.lock c.cmu;
  (try
     output_string c.oc (Protocol.response_line ~timing:t.cfg.timing r);
     flush c.oc
   with Sys_error _ -> () (* client went away; the result is dropped *));
  Mutex.unlock c.cmu

let handle_conn t fd =
  let c =
    {
      fd;
      oc = Unix.out_channel_of_descr fd;
      cmu = Mutex.create ();
      drained = Condition.create ();
      inflight = 0;
    }
  in
  let ic = Unix.in_channel_of_descr fd in
  let reply r =
    send_response t c r;
    Mutex.lock c.cmu;
    c.inflight <- c.inflight - 1;
    if c.inflight = 0 then Condition.broadcast c.drained;
    Mutex.unlock c.cmu
  in
  let admit req =
    let now = Budget.now_ms () in
    Mutex.lock t.mu;
    let verdict =
      if t.stopping then Error "overloaded: server shutting down"
      else if Queue.length t.queue >= t.cfg.max_queue then
        Error
          (Printf.sprintf "overloaded: admission queue full (%d queued, max %d)"
             (Queue.length t.queue) t.cfg.max_queue)
      else begin
        Mutex.lock c.cmu;
        c.inflight <- c.inflight + 1;
        Mutex.unlock c.cmu;
        Queue.push { preq = req; admitted_ms = now; reply } t.queue;
        (match req.Batch.key with
        | Some key -> History.observe t.history ~key req.Batch.build
        | None -> ());
        Condition.signal t.nonempty;
        Ok ()
      end
    in
    Mutex.unlock t.mu;
    match verdict with
    | Ok () -> Metrics.admit t.metrics
    | Error msg ->
        (* Load shedding is an answer, not a dropped connection: the
           client gets a structured error result for this id. *)
        Metrics.shed t.metrics;
        send_response t c (Batch.error_response ~id:req.Batch.id msg)
  in
  let rec loop k =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop k
    | line ->
        (match
           Protocol.parse_line ?max_table_bytes:t.cfg.max_table_bytes
             ?cache_dir:t.cfg.cache_dir ?oracle:t.cfg.oracle
             ~fallback_id:(Printf.sprintf "#%d" k)
             line
         with
        | Protocol.Malformed { id; error } ->
            send_response t c (Batch.error_response ~id ("bad request: " ^ error))
        | Protocol.Request req -> admit req);
        loop (k + 1)
  in
  loop 0;
  (* Reader done (client half-closed or vanished): answer what is still
     in flight before closing the socket. *)
  Mutex.lock c.cmu;
  while c.inflight > 0 do
    Condition.wait c.drained c.cmu
  done;
  Mutex.unlock c.cmu;
  (try close_out c.oc with Sys_error _ -> ());
  Mutex.lock t.mu;
  t.open_fds <- List.filter (fun f -> f != fd) t.open_fds;
  Mutex.unlock t.mu

(* Accept via select with a short tick so [stop] can interrupt the loop
   portably (closing an fd does not wake a blocked accept on Linux). *)
let accept_loop t =
  let rec go () =
    if t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> go ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Mutex.lock t.mu;
              if t.stopping then begin
                Mutex.unlock t.mu;
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                t.connections <- t.connections + 1;
                t.open_fds <- fd :: t.open_fds;
                let th = Thread.create (fun () -> handle_conn t fd) () in
                t.conn_threads <- th :: t.conn_threads;
                Mutex.unlock t.mu
              end;
              go ()
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
              go ()
          | exception Unix.Unix_error _ -> if t.stopping then () else go ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let bind_listen = function
  | `Unix_path path ->
      (* Remove a stale socket file (and only a socket file — anything
         else at that path is the operator's, not ours). *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> failwith (Printf.sprintf "listen path %s exists and is not a socket" path)
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_any
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let address t = Unix.getsockname t.listen_fd

let start cfg =
  (* A client disconnecting mid-write must surface as an exception on
     that write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = bind_listen cfg.listen in
  let t =
    {
      cfg;
      pool = Pool.create ?workers:cfg.workers ();
      cache = Batch.build_cache ?max_bytes:cfg.max_lru_bytes ();
      metrics = Metrics.create ();
      history = History.create ();
      listen_fd;
      started_ms = Budget.now_ms ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      connections = 0;
      open_fds = [];
      conn_threads = [];
      accept_thread = None;
      dispatch_thread = None;
      prefetch_thread = None;
      solve_ms = 0.;
      batches = 0;
      stopped_summary = None;
    }
  in
  t.dispatch_thread <- Some (Thread.create (fun () -> dispatch_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  if cfg.prefetch then
    t.prefetch_thread <- Some (Thread.create (fun () -> prefetch_loop t) ());
  t

let stop t =
  let already =
    Mutex.lock t.mu;
    let was = t.stopping in
    t.stopping <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mu;
    was
  in
  if not already then begin
    (* 1. Stop accepting. *)
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.cfg.listen with
    | `Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | `Tcp _ -> ());
    (* 2. Force EOF on idle readers; admitted requests stay in flight —
       each connection closes only after its responses are written. *)
    let fds =
      Mutex.lock t.mu;
      let fds = t.open_fds in
      Mutex.unlock t.mu;
      fds
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
      fds;
    let conn_threads =
      Mutex.lock t.mu;
      let ths = t.conn_threads in
      Mutex.unlock t.mu;
      ths
    in
    List.iter Thread.join conn_threads;
    (* 3. Drain: the dispatcher exits once the queue is dry. *)
    Option.iter Thread.join t.dispatch_thread;
    Option.iter Thread.join t.prefetch_thread;
    (* 4. Snapshot the summary BEFORE tearing the pool down — the
       workers count and cache statistics must describe the serving
       process, not its corpse. *)
    t.stopped_summary <- Some (summary_json { t with stopped_summary = None });
    Pool.shutdown t.pool
  end

let stop_requested = Atomic.make false

let run ?(handle_signals = true) cfg ~summary =
  Atomic.set stop_requested false;
  let previous =
    if handle_signals then
      List.map
        (fun s ->
          (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true))))
        [ Sys.sigint; Sys.sigterm ]
    else []
  in
  let t = start cfg in
  while not (Atomic.get stop_requested) do
    Thread.delay 0.05
  done;
  stop t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous;
  summary (summary_json t)

let request_stop () = Atomic.set stop_requested true
