(** Recent-request history and likely-next oracle prediction — the
    input to the server's idle-worker prewarming.

    A bounded first-order successor model over the request-key stream:
    {!observe} records each admitted key (keeping its most recent
    problem builder), and {!predict} ranks candidate keys to prefetch —
    successors of the most recently seen key by transition count,
    falling back to globally frequent keys.  The run-time
    prefetch-scheduling idea of Resano et al. (PAPERS.md), applied to
    dense cost tables.  Thread-safe. *)

type t

(** [create ?capacity ()] tracks at most [capacity] (default 256)
    distinct keys; the oldest-tracked key is evicted beyond that. *)
val create : ?capacity:int -> unit -> t

(** [observe t ~key build] records one admitted request: bumps [key]'s
    frequency, the predecessor's transition count, and retains [build]
    as the key's prewarming thunk. *)
val observe : t -> key:string -> (unit -> Hr_core.Problem.t) -> unit

(** [observed t] is the number of {!observe} calls. *)
val observed : t -> int

(** [predict t ~resident ~limit] is up to [limit] [(key, build)]
    candidates worth prewarming, best first, excluding keys for which
    [resident key] already holds (the LRU's membership probe). *)
val predict :
  t ->
  resident:(string -> bool) ->
  limit:int ->
  (string * (unit -> Hr_core.Problem.t)) list
