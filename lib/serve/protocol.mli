(** The JSON-lines wire format, shared by hrserve's [--stdio] loop and
    the socket server — one parser and one serializer, so the two
    transports answer byte-identically.

    A request line is either a bare [hyperreconf.case/1] document or an
    envelope [{"id": ..., "deadline_ms": MS, "case": {...}}]; the
    response is one [hyperreconf.result/1] line ({!Hr_core.Batch}). *)

(** One parsed request line.  [Malformed] lines never reach the solve
    pipeline: the transport answers them directly with a structured
    error result. *)
type parsed =
  | Request of Hr_core.Batch.request
  | Malformed of { id : string; error : string }

(** [parse_line ?max_table_bytes ?cache_dir ?oracle ~fallback_id line]
    parses one request line.  The request is keyed by the digest of the
    canonical case JSON (the cross-batch dedup/LRU key), builds its
    problem through [Hr_check.Case.problem] with the given table-cache
    and oracle-policy knobs, and — when the envelope carries
    [deadline_ms] — gets a per-request budget that starts ticking now,
    at admission, so queue wait counts against it.  [fallback_id] is
    used when the envelope does not choose an id. *)
val parse_line :
  ?max_table_bytes:int ->
  ?cache_dir:string ->
  ?oracle:Hr_core.Interval_cost.policy ->
  fallback_id:string ->
  string ->
  parsed

(** [response_line ?timing r] is the one-line [hyperreconf.result/1]
    rendering (trailing newline included).  [timing:false] zeroes the
    wall-clock fields ({!Hr_core.Batch.response_to_json}). *)
val response_line : ?timing:bool -> Hr_core.Batch.response -> string
