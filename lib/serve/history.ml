open Hr_core

(* First-order successor model over the recent request stream: for each
   observed key, how often each other key immediately followed it.
   Prediction ranks the successors of the most recent key, then falls
   back to globally-frequent recent keys — the hybrid static/dynamic
   ranking of Resano et al.'s prefetch scheduling, applied to oracle
   tables.

   Bounded: at most [capacity] distinct keys are tracked (oldest first
   observation evicted), and each key keeps at most [capacity]
   successors.  Thread-safe. *)

type entry = {
  build : unit -> Problem.t;  (* most recent builder for the key *)
  mutable freq : int;
  succ : (string, int) Hashtbl.t;
}

type t = {
  mu : Mutex.t;
  capacity : int;
  entries : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for capacity eviction *)
  mutable last : string option;
  mutable observed : int;
}

let create ?(capacity = 256) () =
  {
    mu = Mutex.create ();
    capacity = max 1 capacity;
    entries = Hashtbl.create 64;
    order = Queue.create ();
    last = None;
    observed = 0;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let observe t ~key build =
  locked t (fun () ->
      t.observed <- t.observed + 1;
      (match Hashtbl.find_opt t.entries key with
      | Some e -> e.freq <- e.freq + 1
      | None ->
          if Hashtbl.length t.entries >= t.capacity then begin
            (* Evict the oldest tracked key (and dangling queue heads
               left by earlier evictions). *)
            let rec pop () =
              match Queue.take_opt t.order with
              | Some old when Hashtbl.mem t.entries old ->
                  Hashtbl.remove t.entries old
              | Some _ -> pop ()
              | None -> ()
            in
            pop ()
          end;
          Hashtbl.add t.entries key
            { build; freq = 1; succ = Hashtbl.create 4 };
          Queue.push key t.order);
      (match t.last with
      | Some prev when prev <> key -> (
          match Hashtbl.find_opt t.entries prev with
          | Some e ->
              let n = Option.value (Hashtbl.find_opt e.succ key) ~default:0 in
              if n > 0 || Hashtbl.length e.succ < t.capacity then
                Hashtbl.replace e.succ key (n + 1)
          | None -> ())
      | _ -> ());
      t.last <- Some key)

let observed t = locked t (fun () -> t.observed)

(* Rank candidates: successors of the last key by transition count
   first, then any tracked key by global frequency.  [resident] filters
   keys that need no prewarming. *)
let predict t ~resident ~limit =
  if limit <= 0 then []
  else
    locked t (fun () ->
        let seen = Hashtbl.create 8 in
        let picked = ref [] and npicked = ref 0 in
        let consider key =
          if
            !npicked < limit
            && (not (Hashtbl.mem seen key))
            && not (resident key)
          then begin
            Hashtbl.add seen key ();
            match Hashtbl.find_opt t.entries key with
            | Some e ->
                picked := (key, e.build) :: !picked;
                incr npicked
            | None -> ()
          end
        in
        let by_count tbl =
          List.sort
            (fun (_, a) (_, b) -> compare (b : int) a)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
        in
        (match t.last with
        | Some last -> (
            match Hashtbl.find_opt t.entries last with
            | Some e -> List.iter (fun (k, _) -> consider k) (by_count e.succ)
            | None -> ())
        | None -> ());
        if !npicked < limit then
          List.iter (fun (k, _) -> consider k)
            (by_count
               (let freqs = Hashtbl.create 16 in
                Hashtbl.iter (fun k e -> Hashtbl.replace freqs k e.freq) t.entries;
                freqs));
        List.rev !picked)
