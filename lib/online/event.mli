open Hr_core

(** Typed workload events over a running multi-task instance.

    The paper's setting is inherently dynamic — tasks arrive, depart
    and change their demands on a shared hyperreconfigurable fabric —
    but every solve in the core library is one-shot over a fixed
    {!Hr_core.Task_set.t}.  An {!Event.t} captures one change to the
    running instance; a {!stream} replays a whole history.  The replan
    driver ({!Replan}) folds a stream over an initial task set,
    re-solving after each event — incrementally
    ({!Hr_core.Online_dp.extend}) when the event only appends trace
    steps, from scratch (optionally warm-started, {!Warm}) otherwise.

    Events serialize to JSON-lines documents (schema
    {!schema_version}); a whole stream together with its initial task
    set forms a {!stream_schema_version} document, pinned byte-for-byte
    under [test/golden/].  See [docs/online.md]. *)

type payload =
  | Arrive of Task_set.task
      (** a new task joins; its trace must span the current horizon *)
  | Depart of string  (** the named task leaves (at least one must stay) *)
  | Demand_change of { task : string; step : int; req : Hr_util.Bitset.t }
      (** one requirement of one task is rewritten in place *)
  | Extend_trace of Hr_util.Bitset.t array array
      (** per task (in task-set order), the appended requirement rows —
          equal length [k >= 1]; the horizon grows by [k].  The only
          event the incremental engine can absorb without a re-solve. *)

type t = { at : int; payload : payload }

(** Events ordered by time; {!validate} enforces strictly increasing
    non-negative timestamps. *)
type stream = t list

(** ["hyperreconf.event/1"] / ["hyperreconf.stream/1"]. *)
val schema_version : string

val stream_schema_version : string

(** [kind_name e] is the stable label: ["arrive" | "depart" |
    "demand-change" | "extend-trace"]. *)
val kind_name : t -> string

(** [apply ts e] is the task set after [e], or [Error] explaining the
    violation: unknown/duplicate task names, a departing last task, a
    trace of the wrong length, a requirement of the wrong width,
    mismatched extension arity. *)
val apply : Task_set.t -> t -> (Task_set.t, string) result

(** [validate ~init stream] checks timestamps and applies every event;
    first violation wins. *)
val validate : init:Task_set.t -> stream -> (unit, string) result

(** [replay ~init stream] is the task set after each event (one
    snapshot per event, init excluded). *)
val replay : init:Task_set.t -> stream -> (Task_set.t list, string) result

(** {1 JSON} *)

val task_to_json : Task_set.task -> Telemetry.json

val task_of_json : Telemetry.json -> (Task_set.task, string) result

val task_set_to_json : Task_set.t -> Telemetry.json

val task_set_of_json : Telemetry.json -> (Task_set.t, string) result

val to_json : t -> Telemetry.json

val of_json : Telemetry.json -> (t, string) result

(** [stream_to_json ~init stream] is the self-contained
    {!stream_schema_version} document. *)
val stream_to_json : init:Task_set.t -> stream -> Telemetry.json

val stream_of_json : Telemetry.json -> (Task_set.t * stream, string) result
