open Hr_core
module Budget = Hr_util.Budget

type strategy = No_reconfig | Full | Incremental | Warm_start

let strategy_name = function
  | No_reconfig -> "no-reconfig"
  | Full -> "full"
  | Incremental -> "incremental"
  | Warm_start -> "warm-start"

let strategy_of_string = function
  | "none" | "no-reconfig" -> Ok No_reconfig
  | "full" -> Ok Full
  | "inc" | "incremental" -> Ok Incremental
  | "warm" | "warm-start" -> Ok Warm_start
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

type config = {
  strategy : strategy;
  solver : string option;
  seed : int;
  deadline_ms : int option;
  params : Sync_cost.params;
  machine_class : Problem.machine_class;
}

let default_config strategy =
  {
    strategy;
    solver = None;
    seed = Solver.default_seed;
    deadline_ms = None;
    params = Sync_cost.default_params;
    machine_class = Problem.Partial;
  }

type record = {
  index : int;
  at : int;
  label : string;
  m : int;
  n : int;
  cost : int;
  wall_ms : float;
  solver : string;
  exact : bool;
  extended : bool;
  plan : Breakpoints.t;
}

type run = {
  records : record list;
  total_cost : int;
  final_cost : int;
  total_ms : float;
  replans : int;
  extensions : int;
}

let auto_chain = [ "online-dp"; "mt-dp"; "st-dp"; "ga-polish"; "mode-climb" ]

let pick_solver (config : config) problem =
  match config.solver with
  | Some name ->
      let s = Solver_registry.find_exn name in
      if s.Solver.handles problem then s
      else
        invalid_arg
          (Printf.sprintf "Replan.run: solver %S does not handle the instance"
             name)
  | None -> (
      let from_chain =
        List.find_map
          (fun name ->
            match Solver_registry.find name with
            | Some s when s.Solver.handles problem -> Some s
            | _ -> None)
          auto_chain
      in
      match from_chain with
      | Some s -> s
      | None -> (
          match Solver_registry.applicable problem with
          | s :: _ -> s
          | [] -> invalid_arg "Replan.run: no applicable solver"))

let run config ~init stream =
  (match Event.validate ~init stream with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Replan.run: invalid stream: " ^ msg));
  let budget () =
    match config.deadline_ms with
    | None -> Budget.unlimited
    | Some ms -> Budget.of_deadline_ms ms
  in
  let problem_of ts =
    Problem.of_task_set ~params:config.params
      ~machine_class:config.machine_class ts
  in
  let names ts = Array.map (fun tk -> tk.Task_set.name) (Task_set.tasks ts) in
  (* Strategy state threaded across events. *)
  let engine = ref None (* Incremental: live Online_dp frontier *)
  and prev = ref None (* Warm_start: previous (names, plan) *) in
  let solve_event ~extendable ts =
    let problem = problem_of ts in
    let b = budget () in
    match config.strategy with
    | No_reconfig ->
        let m = Problem.m problem and n = Problem.n problem in
        let bp = Breakpoints.of_rows ~m ~n (Array.make m []) in
        (Problem.eval problem bp, bp, "none", false, false)
    | Full ->
        let s = pick_solver config problem in
        let sol = Solver.solve ~seed:config.seed ~budget:b s problem in
        (sol.Solution.cost, sol.Solution.bp, sol.Solution.solver,
         sol.Solution.exact, false)
    | Incremental -> (
        let cold () =
          engine := None;
          if Online_dp.supports problem && Online_dp.exact_ok problem then begin
            let t = Online_dp.start ~budget:b problem in
            engine := Some t;
            let sol = Online_dp.solution t in
            (sol.Solution.cost, sol.Solution.bp, sol.Solution.solver,
             sol.Solution.exact, false)
          end
          else begin
            let s = pick_solver config problem in
            let sol = Solver.solve ~seed:config.seed ~budget:b s problem in
            (sol.Solution.cost, sol.Solution.bp, sol.Solution.solver,
             sol.Solution.exact, false)
          end
        in
        match !engine with
        | Some t when extendable && Online_dp.exact_ok problem ->
            let t = Online_dp.extend ~budget:b t problem in
            engine := Some t;
            let sol = Online_dp.solution t in
            (sol.Solution.cost, sol.Solution.bp, sol.Solution.solver,
             sol.Solution.exact, true)
        | _ -> cold ())
    | Warm_start ->
        let s = pick_solver config problem in
        let prev_plan =
          match !prev with
          | None -> None
          | Some (prev_names, plan) ->
              let rows =
                Array.map
                  (fun name ->
                    let rec find j =
                      if j >= Array.length prev_names then None
                      else if prev_names.(j) = name then Some j
                      else find (j + 1)
                    in
                    find 0)
                  (names ts)
              in
              Some (Warm.remap ~prev:plan ~rows ~n:(Problem.n problem))
        in
        let sol, _stats =
          Warm.solve ~seed:config.seed ~budget:b ?prev:prev_plan s problem
        in
        (sol.Solution.cost, sol.Solution.bp, sol.Solution.solver,
         sol.Solution.exact, false)
  in
  let records = ref [] and index = ref 0 in
  let step ~at ~label ~extendable ts =
    let t0 = Budget.now_ms () in
    let cost, plan, solver, exact, extended = solve_event ~extendable ts in
    let wall_ms = Budget.now_ms () -. t0 in
    prev := Some (names ts, plan);
    records :=
      {
        index = !index;
        at;
        label;
        m = Task_set.num_tasks ts;
        n = Task_set.steps ts;
        cost;
        wall_ms;
        solver;
        exact;
        extended;
        plan;
      }
      :: !records;
    incr index
  in
  step ~at:(-1) ~label:"init" ~extendable:false init;
  let ts = ref init in
  List.iter
    (fun e ->
      (match Event.apply !ts e with
      | Ok ts' -> ts := ts'
      | Error msg -> invalid_arg ("Replan.run: " ^ msg));
      let extendable =
        match e.Event.payload with Event.Extend_trace _ -> true | _ -> false
      in
      step ~at:e.Event.at ~label:(Event.kind_name e) ~extendable !ts)
    stream;
  let records = List.rev !records in
  let total_cost = List.fold_left (fun a r -> a + r.cost) 0 records in
  let final_cost =
    match List.rev records with r :: _ -> r.cost | [] -> 0
  in
  let total_ms = List.fold_left (fun a r -> a +. r.wall_ms) 0. records in
  let extensions =
    List.length (List.filter (fun r -> r.extended) records)
  in
  {
    records;
    total_cost;
    final_cost;
    total_ms;
    replans = List.length records - extensions;
    extensions;
  }

let table run =
  let rows =
    List.map
      (fun r ->
        [
          string_of_int r.index;
          (if r.at < 0 then "-" else string_of_int r.at);
          r.label ^ (if r.extended then "+" else "");
          string_of_int r.m;
          string_of_int r.n;
          r.solver;
          string_of_int r.cost;
          (if r.exact then "yes" else "no");
          Printf.sprintf "%.1f" r.wall_ms;
        ])
      run.records
  in
  Hr_util.Tablefmt.render
    ~aligns:
      Hr_util.Tablefmt.
        [ Right; Right; Left; Right; Right; Left; Right; Left; Right ]
    ~header:[ "#"; "at"; "event"; "m"; "n"; "solver"; "cost"; "exact"; "ms" ]
    rows

let to_json config run =
  let open Telemetry in
  let record_json r =
    Obj
      [
        ("index", Int r.index);
        ("at", Int r.at);
        ("event", String r.label);
        ("m", Int r.m);
        ("n", Int r.n);
        ("cost", Int r.cost);
        ("wall_ms", Float r.wall_ms);
        ("solver", String r.solver);
        ("exact", Bool r.exact);
        ("extended", Bool r.extended);
        ( "break_columns",
          List (List.map (fun c -> Int c) (Breakpoints.break_columns r.plan)) );
      ]
  in
  Obj
    [
      ("schema", String "hyperreconf.online/1");
      ("strategy", String (strategy_name config.strategy));
      ( "solver",
        match config.solver with None -> String "auto" | Some s -> String s );
      ("seed", Int config.seed);
      ( "deadline_ms",
        match config.deadline_ms with None -> Null | Some ms -> Int ms );
      ("records", List (List.map record_json run.records));
      ("total_cost", Int run.total_cost);
      ("final_cost", Int run.final_cost);
      ("total_ms", Float run.total_ms);
      ("replans", Int run.replans);
      ("extensions", Int run.extensions);
    ]
