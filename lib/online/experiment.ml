open Hr_core

type point = {
  eta : float;
  tasks : int;
  events : int;
  strategy : Replan.strategy;
  total_cost : int;
  final_cost : int;
  total_ms : float;
  replans : int;
  extensions : int;
}

type sweep = { seed : int; profile : Events.profile; points : point list }

let scale_v eta v = max 1 (int_of_float (Float.round (eta *. float_of_int v)))

let scale_eta eta ts =
  Task_set.make
    (Array.map
       (fun tk -> { tk with Task_set.v = scale_v eta tk.Task_set.v })
       (Task_set.tasks ts))

let scale_stream eta stream =
  List.map
    (fun e ->
      match e.Event.payload with
      | Event.Arrive tk ->
          {
            e with
            Event.payload =
              Event.Arrive { tk with Task_set.v = scale_v eta tk.Task_set.v };
          }
      | _ -> e)
    stream

let seq_config config =
  {
    config with
    Replan.params =
      { config.Replan.params with Sync_cost.reconf = Sync_cost.Task_sequential };
  }

let run ?(profile = Events.default) ?(etas = [ 0.5; 1.0; 2.0 ])
    ?(tasks = [ 2; 3 ]) ?(events = [ 4; 8 ])
    ?(strategies =
      Replan.[ No_reconfig; Full; Incremental; Warm_start ])
    ?config ~seed () =
  let base =
    match config with
    | Some c -> c
    | None -> seq_config (Replan.default_config Replan.Full)
  in
  let points = ref [] in
  List.iter
    (fun eta ->
      List.iter
        (fun m0 ->
          List.iter
            (fun k ->
              (* One stream per grid point, shared by every strategy. *)
              let rng = Hr_util.Rng.create (seed + (1000 * k) + m0) in
              let init, stream =
                Events.generate rng { profile with tasks = m0; events = k }
              in
              let init = scale_eta eta init
              and stream = scale_stream eta stream in
              List.iter
                (fun strategy ->
                  let r =
                    Replan.run { base with Replan.strategy } ~init stream
                  in
                  points :=
                    {
                      eta;
                      tasks = m0;
                      events = k;
                      strategy;
                      total_cost = r.Replan.total_cost;
                      final_cost = r.Replan.final_cost;
                      total_ms = r.Replan.total_ms;
                      replans = r.Replan.replans;
                      extensions = r.Replan.extensions;
                    }
                    :: !points)
                strategies)
            events)
        tasks)
    etas;
  { seed; profile; points = List.rev !points }

let table sweep =
  let rows =
    List.map
      (fun p ->
        [
          Printf.sprintf "%.2f" p.eta;
          string_of_int p.tasks;
          string_of_int p.events;
          Replan.strategy_name p.strategy;
          string_of_int p.total_cost;
          string_of_int p.final_cost;
          string_of_int p.replans;
          string_of_int p.extensions;
          Printf.sprintf "%.1f" p.total_ms;
        ])
      sweep.points
  in
  Hr_util.Tablefmt.render
    ~aligns:
      Hr_util.Tablefmt.
        [ Right; Right; Right; Left; Right; Right; Right; Right; Right ]
    ~header:
      [
        "eta"; "tasks"; "events"; "strategy"; "total"; "final"; "replans";
        "ext"; "ms";
      ]
    rows

let to_json (sweep : sweep) =
  let open Telemetry in
  let point_json p =
    Obj
      [
        ("eta", Float p.eta);
        ("tasks", Int p.tasks);
        ("events", Int p.events);
        ("strategy", String (Replan.strategy_name p.strategy));
        ("total_cost", Int p.total_cost);
        ("final_cost", Int p.final_cost);
        ("total_ms", Float p.total_ms);
        ("replans", Int p.replans);
        ("extensions", Int p.extensions);
      ]
  in
  Obj
    [
      ("schema", String "hyperreconf.online-sweep/1");
      ("seed", Int sweep.seed);
      ("points", List (List.map point_json sweep.points));
    ]
