open Hr_core

(** Warm-started re-solving.

    After an event, the previous plan is usually a good plan for the
    new instance — warm-starting a heuristic from it is the classic
    reuse-across-configurations idea.  A naive "seed the search with
    the old plan" offers no guarantee: stochastic trajectories diverge
    and can end {e worse} than a cold run.  {!solve} therefore
    guarantees warm ≤ cold {e by construction}: it runs the cold solve
    (same solver, seed and budget), evaluates the adapted previous
    plan, polishes that plan with a hill climb where the problem
    admits one, and returns the cheapest of the three.  The
    differential suite pins the guarantee for GA, annealing and hill
    climbing on every corpus stream. *)

type stats = {
  source : string;  (** which candidate won: ["cold" | "seed" | "polished"] *)
  cold_cost : int;
  seed_cost : int option;  (** the adapted previous plan, when admissible *)
  polished_cost : int option;
}

(** [remap ~prev ~rows ~n] adapts a previous plan to new dimensions:
    new-task row [j] copies the breakpoints of old row [rows.(j)]
    (cropped to the new horizon [n]; appended steps get no breaks), or
    starts fresh (column 0 only) on [None].  The replan driver builds
    [rows] by task name. *)
val remap : prev:Breakpoints.t -> rows:int option array -> n:int -> Breakpoints.t

(** [solve ?seed ?budget ?prev solver problem] — see above.  Without
    [prev] (or when its dimensions don't fit, or the class rejects it)
    this is exactly a cold {!Hr_core.Solver.solve}. *)
val solve :
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  ?prev:Breakpoints.t ->
  Solver.t ->
  Problem.t ->
  Solution.t * stats
