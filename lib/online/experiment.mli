open Hr_core

(** The event-driven experiment harness.

    Sweeps the replanning strategies over a grid of cost-weight
    scalings η × initial task counts × event counts.  Each grid point
    draws one seeded stream ({!Events.generate}), scales every task's
    hyperreconfiguration cost [v] by η ([max 1 (round (η·v))], applied
    to the initial tasks {e and} to [Arrive] payloads), and replays the
    {e same} [(init, stream)] pair under every strategy — so rows are
    comparable within a point.  Results go to a {!Hr_util.Tablefmt}
    table and a JSON document (schema ["hyperreconf.online-sweep/1"]). *)

type point = {
  eta : float;
  tasks : int;
  events : int;
  strategy : Replan.strategy;
  total_cost : int;
  final_cost : int;
  total_ms : float;
  replans : int;
  extensions : int;
}

type sweep = {
  seed : int;
  profile : Events.profile;
  points : point list;
}

(** [scale_eta eta ts] rescales every task's [v]. *)
val scale_eta : float -> Task_set.t -> Task_set.t

(** [run ?profile ?etas ?tasks ?events ?strategies ?config ~seed ()].
    Defaults: profile {!Events.default}, etas [[0.5; 1.0; 2.0]], tasks
    [[2; 3]], events [[4; 8]], all four strategies, config
    [Replan.default_config] with task-sequential reconfiguration (the
    incremental engine's exact regime). *)
val run :
  ?profile:Events.profile ->
  ?etas:float list ->
  ?tasks:int list ->
  ?events:int list ->
  ?strategies:Replan.strategy list ->
  ?config:Replan.config ->
  seed:int ->
  unit ->
  sweep

val table : sweep -> string
val to_json : sweep -> Telemetry.json
