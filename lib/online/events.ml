open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng
module Markov = Hr_workload.Markov

type profile = {
  tasks : int;
  n0 : int;
  width : int;
  events : int;
  extend_k : int;
  p_extend : float;
  p_arrive : float;
  p_depart : float;
  p_demand : float;
  states : int;
  self : float;
  max_tasks : int;
}

let default =
  {
    tasks = 2;
    n0 = 10;
    width = 5;
    events = 6;
    extend_k = 3;
    p_extend = 0.5;
    p_arrive = 0.15;
    p_depart = 0.15;
    p_demand = 0.2;
    states = 3;
    self = 0.8;
    max_tasks = 4;
  }

let append_heavy =
  {
    default with
    tasks = 2;
    n0 = 24;
    events = 8;
    extend_k = 6;
    p_extend = 1.0;
    p_arrive = 0.;
    p_depart = 0.;
    p_demand = 0.;
  }

(* Per-task generator state: the task's chain and its current position,
   so extensions continue the same realization. *)
type source = { name : string; chain : Markov.chain; mutable state : int }

let check_profile p =
  if p.tasks < 1 then invalid_arg "Events.generate: tasks < 1";
  if p.n0 < 1 then invalid_arg "Events.generate: n0 < 1";
  if p.width < 1 then invalid_arg "Events.generate: width < 1";
  if p.events < 0 then invalid_arg "Events.generate: events < 0";
  if p.extend_k < 1 then invalid_arg "Events.generate: extend_k < 1";
  if p.states < 1 then invalid_arg "Events.generate: states < 1";
  if p.max_tasks < p.tasks then invalid_arg "Events.generate: max_tasks < tasks";
  if p.p_extend < 0. || p.p_arrive < 0. || p.p_depart < 0. || p.p_demand < 0.
  then invalid_arg "Events.generate: negative kind weight"

let generate rng profile =
  check_profile profile;
  let space = Switch_space.make profile.width in
  let counter = ref 0 in
  let fresh_source () =
    let name = Printf.sprintf "T%d" !counter in
    incr counter;
    let chain =
      Markov.make_chain rng ~space ~states:profile.states ~self:profile.self
    in
    { name; chain; state = 0 }
  in
  let spawn_task src ~n =
    let trace, state =
      Markov.generate_from rng src.chain ~space ~state:src.state ~n
    in
    src.state <- state;
    Task_set.task ~name:src.name trace
  in
  let sources = ref (List.init profile.tasks (fun _ -> fresh_source ())) in
  let init =
    Task_set.make
      (Array.of_list (List.map (fun s -> spawn_task s ~n:profile.n0) !sources))
  in
  let ts = ref init in
  let at = ref (-1) in
  let events = ref [] in
  for _ = 1 to profile.events do
    let m = Task_set.num_tasks !ts in
    let n = Task_set.steps !ts in
    (* Admissible kinds with their weights, in a fixed order. *)
    let kinds =
      [
        ("extend", profile.p_extend);
        ("arrive", (if m < profile.max_tasks then profile.p_arrive else 0.));
        ("depart", (if m > 1 then profile.p_depart else 0.));
        ("demand", profile.p_demand);
      ]
    in
    let total = List.fold_left (fun a (_, w) -> a +. w) 0. kinds in
    let kind =
      if total <= 0. then "extend"
      else begin
        let u = Rng.float rng *. total in
        let rec pick acc = function
          | [ (k, _) ] -> k
          | (k, w) :: rest -> if u < acc +. w then k else pick (acc +. w) rest
          | [] -> "extend"
        in
        pick 0. kinds
      end
    in
    at := !at + 1 + Rng.int rng 3;
    let payload =
      match kind with
      | "extend" ->
          let rows =
            List.map
              (fun src ->
                let trace, state =
                  Markov.generate_from rng src.chain ~space ~state:src.state
                    ~n:profile.extend_k
                in
                src.state <- state;
                Trace.reqs trace)
              !sources
          in
          Event.Extend_trace (Array.of_list rows)
      | "arrive" ->
          let src = fresh_source () in
          let tk = spawn_task src ~n in
          sources := !sources @ [ src ];
          Event.Arrive tk
      | "depart" ->
          let victim = Rng.int rng m in
          let name = (List.nth !sources victim).name in
          sources := List.filteri (fun j _ -> j <> victim) !sources;
          Event.Depart name
      | _ ->
          let j = Rng.int rng m in
          let src = List.nth !sources j in
          let st = src.chain.Markov.states.(src.state) in
          let req =
            Bitset.fold
              (fun x acc ->
                if Rng.chance rng st.Markov.density then Bitset.add acc x
                else acc)
              st.Markov.active (Bitset.create profile.width)
          in
          Event.Demand_change { task = src.name; step = Rng.int rng n; req }
    in
    let e = { Event.at = !at; payload } in
    (match Event.apply !ts e with
    | Ok ts' -> ts := ts'
    | Error msg ->
        (* Generated events are valid by construction. *)
        invalid_arg ("Events.generate: internal violation: " ^ msg));
    events := e :: !events
  done;
  (init, List.rev !events)

let shrink ~init ~still_fails stream =
  let valid s = Result.is_ok (Event.validate ~init s) in
  let rec drop_one seen = function
    | [] -> None
    | e :: rest ->
        let cand = List.rev_append seen rest in
        if valid cand && still_fails cand then Some cand
        else drop_one (e :: seen) rest
  in
  let rec fixpoint s =
    match drop_one [] s with Some s' -> fixpoint s' | None -> s
  in
  fixpoint stream
