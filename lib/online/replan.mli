open Hr_core

(** The online replanning driver.

    Feeds an event stream through a replanning strategy: after the
    initial solve, every event yields a new plan for the updated
    instance.  Strategies differ in how much work they reuse:

    - {!No_reconfig} — never hyperreconfigure after step 0 (the lower
      baseline: zero replanning cost, worst plans);
    - {!Full} — cold re-solve from scratch after every event;
    - {!Incremental} — keep the {!Online_dp} frontier alive and
      {!Online_dp.extend} it on [Extend_trace] events (exact, and
      differentially pinned bit-identical to {!Full} with the same
      engine); any other event, or an unsupported instance, falls back
      to a cold solve and restarts the frontier;
    - {!Warm_start} — re-solve with {!Warm.solve}, seeding the search
      from the previous plan (never worse than cold by construction).

    Each replan runs under its own {!Hr_util.Budget.t} when
    [deadline_ms] is set, so the driver is anytime end to end. *)

type strategy = No_reconfig | Full | Incremental | Warm_start

val strategy_name : strategy -> string

(** Accepts ["none"|"no-reconfig"], ["full"], ["inc"|"incremental"],
    ["warm"|"warm-start"]. *)
val strategy_of_string : string -> (strategy, string) result

type config = {
  strategy : strategy;
  solver : string option;
      (** registry name; [None] picks automatically (["online-dp"] →
          ["mt-dp"] → ["st-dp"] → ["ga-polish"] → ["mode-climb"] →
          first applicable) *)
  seed : int;
  deadline_ms : int option;  (** per-replan budget; [None] = unlimited *)
  params : Sync_cost.params;
  machine_class : Problem.machine_class;
}

val default_config : strategy -> config

(** One row per solve: row 0 is the initial instance, row [i ≥ 1] the
    instance after event [i]. *)
type record = {
  index : int;
  at : int;  (** event timestamp; [-1] for the initial solve *)
  label : string;  (** ["init"] or the event kind *)
  m : int;
  n : int;
  cost : int;
  wall_ms : float;
  solver : string;
  exact : bool;
  extended : bool;  (** served by {!Online_dp.extend} (Incremental only) *)
  plan : Breakpoints.t;
}

type run = {
  records : record list;
  total_cost : int;  (** Σ record costs — the cost paid across the run *)
  final_cost : int;
  total_ms : float;
  replans : int;  (** cold solves (including the initial one) *)
  extensions : int;  (** frontier extensions *)
}

(** [run config ~init stream] validates the stream and replays it.
    Raises [Invalid_argument] on an invalid stream or an unknown
    [config.solver]. *)
val run : config -> init:Task_set.t -> Event.stream -> run

(** Rendered {!Hr_util.Tablefmt} table, one line per record. *)
val table : run -> string

(** Schema ["hyperreconf.online/1"]: config echo, per-event records
    (with break columns, not full matrices) and the summary. *)
val to_json : config -> run -> Telemetry.json
