open Hr_core

(** Seeded event-stream generator (Markov-modulated).

    Each task's requirements are driven by its own hidden Markov chain
    over phase states ({!Hr_workload.Markov}); the generator keeps every
    chain's position so an [Extend_trace] event continues the {e same}
    realization — the appended steps are statistically seamless, via
    {!Hr_workload.Markov.generate_from}.  Streams are a pure function
    of the rng: equal seeds give equal [(init, stream)] pairs, which the
    property tests and the golden pin rely on. *)

type profile = {
  tasks : int;  (** initial task count *)
  n0 : int;  (** initial horizon *)
  width : int;  (** switches per task *)
  events : int;  (** number of events to emit *)
  extend_k : int;  (** steps appended per [Extend_trace] *)
  p_extend : float;
  p_arrive : float;
  p_depart : float;
  p_demand : float;
      (** relative kind weights; renormalized over the kinds admissible
          in the current state (e.g. no departs at one task) *)
  states : int;  (** Markov phase states per task *)
  self : float;  (** self-transition probability *)
  max_tasks : int;  (** arrivals stop here *)
}

(** Mixed traffic: extends, arrivals, departures and demand changes. *)
val default : profile

(** Almost pure trace growth — the incremental engine's home turf and
    the bench's speedup track. *)
val append_heavy : profile

(** [generate rng profile] is a valid [(init, stream)] pair:
    {!Event.validate} holds by construction. *)
val generate : Hr_util.Rng.t -> profile -> Task_set.t * Event.stream

(** [shrink ~init ~still_fails stream] greedily drops events while the
    stream stays valid for [init] and [still_fails] keeps holding —
    the counterexample reducer of the differential suite and the
    [online-replay] hrcheck column.  Returns a (locally) minimal
    failing stream; [still_fails stream] must be true on entry. *)
val shrink :
  init:Task_set.t ->
  still_fails:(Event.stream -> bool) ->
  Event.stream ->
  Event.stream
