open Hr_core

type stats = {
  source : string;
  cold_cost : int;
  seed_cost : int option;
  polished_cost : int option;
}

let remap ~prev ~rows ~n =
  let m = Array.length rows in
  let prev_n = Breakpoints.n prev in
  let break_rows =
    Array.map
      (function
        | None -> []
        | Some old ->
            if old < 0 || old >= Breakpoints.m prev then
              invalid_arg "Warm.remap: row index out of range"
            else
              let row = Breakpoints.row prev old in
              let acc = ref [] in
              for i = min (n - 1) (prev_n - 1) downto 1 do
                if row.(i) then acc := i :: !acc
              done;
              !acc)
      rows
  in
  Breakpoints.of_rows ~m ~n break_rows

let solve ?(seed = Solver.default_seed) ?(budget = Hr_util.Budget.unlimited)
    ?prev solver problem =
  let cold = Solver.solve ~seed ~budget solver problem in
  let fits bp =
    Breakpoints.m bp = Problem.m problem
    && Breakpoints.n bp = Problem.n problem
    && Problem.admissible problem bp
  in
  match prev with
  | Some bp when fits bp ->
      let seed_cost = Problem.eval problem bp in
      let polished =
        (* Polish only where the bit-flip neighborhood is sound: the
           fully synchronized objective on a class that admits
           non-uniform columns. *)
        if
          problem.Problem.mode = Mixed_sync.Fully_synchronized
          && problem.Problem.machine_class <> Problem.All_task
        then
          let r =
            Mt_local.solve ~params:problem.Problem.params ~init:bp ~budget
              problem.Problem.oracle
          in
          Some (r.Mt_local.bp, Problem.eval problem r.Mt_local.bp)
        else None
      in
      let best_src = ref "cold"
      and best_cost = ref cold.Solution.cost
      and best_bp = ref cold.Solution.bp in
      if seed_cost < !best_cost then begin
        best_src := "seed";
        best_cost := seed_cost;
        best_bp := bp
      end;
      (match polished with
      | Some (pbp, pcost) when pcost < !best_cost ->
          best_src := "polished";
          best_cost := pcost;
          best_bp := pbp
      | _ -> ());
      let stats =
        {
          source = !best_src;
          cold_cost = cold.Solution.cost;
          seed_cost = Some seed_cost;
          polished_cost = Option.map snd polished;
        }
      in
      let sol =
        if !best_src = "cold" then
          { cold with Solution.stats = ("warm-source", "cold") :: cold.Solution.stats }
        else
          Solution.make ~solver:solver.Solver.name ~cut_off:cold.Solution.cut_off
            ~stats:[ ("warm-source", !best_src) ]
            ~cost:!best_cost !best_bp
      in
      (sol, stats)
  | _ ->
      ( { cold with Solution.stats = ("warm-source", "cold") :: cold.Solution.stats },
        {
          source = "cold";
          cold_cost = cold.Solution.cost;
          seed_cost = None;
          polished_cost = None;
        } )
