open Hr_core
module Bitset = Hr_util.Bitset

type payload =
  | Arrive of Task_set.task
  | Depart of string
  | Demand_change of { task : string; step : int; req : Bitset.t }
  | Extend_trace of Bitset.t array array

type t = { at : int; payload : payload }

type stream = t list

let schema_version = "hyperreconf.event/1"

let stream_schema_version = "hyperreconf.stream/1"

let kind_name e =
  match e.payload with
  | Arrive _ -> "arrive"
  | Depart _ -> "depart"
  | Demand_change _ -> "demand-change"
  | Extend_trace _ -> "extend-trace"

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let find_task tasks name =
  let rec go j =
    if j >= Array.length tasks then None
    else if tasks.(j).Task_set.name = name then Some j
    else go (j + 1)
  in
  go 0

let apply ts e =
  let tasks = Task_set.tasks ts in
  let m = Array.length tasks in
  let n = Task_set.steps ts in
  match e.payload with
  | Arrive tk ->
      if find_task tasks tk.Task_set.name <> None then
        err "arrive: duplicate task %S" tk.Task_set.name
      else if Trace.length tk.Task_set.trace <> n then
        err "arrive: task %S has %d steps, horizon is %d" tk.Task_set.name
          (Trace.length tk.Task_set.trace)
          n
      else if tk.Task_set.v < 0 then err "arrive: task %S has v < 0" tk.Task_set.name
      else Ok (Task_set.make (Array.append tasks [| tk |]))
  | Depart name -> (
      match find_task tasks name with
      | None -> err "depart: unknown task %S" name
      | Some _ when m = 1 -> err "depart: %S is the last task" name
      | Some j ->
          Ok
            (Task_set.make
               (Array.init (m - 1) (fun k ->
                    if k < j then tasks.(k) else tasks.(k + 1)))))
  | Demand_change { task; step; req } -> (
      match find_task tasks task with
      | None -> err "demand-change: unknown task %S" task
      | Some j ->
          let tk = tasks.(j) in
          let space = Trace.space tk.Task_set.trace in
          if step < 0 || step >= n then
            err "demand-change: step %d outside [0, %d)" step n
          else if Bitset.width req <> Switch_space.size space then
            err "demand-change: requirement width %d, task %S has %d switches"
              (Bitset.width req) task
              (Switch_space.size space)
          else begin
            let reqs = Trace.reqs tk.Task_set.trace in
            reqs.(step) <- req;
            let tasks = Array.copy tasks in
            tasks.(j) <- { tk with Task_set.trace = Trace.make space reqs };
            Ok (Task_set.make tasks)
          end)
  | Extend_trace rows ->
      if Array.length rows <> m then
        err "extend-trace: %d rows for %d tasks" (Array.length rows) m
      else
        let k = if m = 0 then 0 else Array.length rows.(0) in
        if k < 1 then err "extend-trace: empty extension"
        else
          let rec check j =
            if j >= m then None
            else if Array.length rows.(j) <> k then
              Some
                (Printf.sprintf "extend-trace: row %d has %d steps, row 0 has %d"
                   j
                   (Array.length rows.(j))
                   k)
            else
              let space = Trace.space tasks.(j).Task_set.trace in
              let bad =
                Array.exists
                  (fun r -> Bitset.width r <> Switch_space.size space)
                  rows.(j)
              in
              if bad then
                Some
                  (Printf.sprintf
                     "extend-trace: row %d carries a requirement of the wrong \
                      width"
                     j)
              else check (j + 1)
          in
          (match check 0 with
          | Some msg -> Error msg
          | None ->
              Ok
                (Task_set.make
                   (Array.mapi
                      (fun j tk ->
                        let space = Trace.space tk.Task_set.trace in
                        {
                          tk with
                          Task_set.trace =
                            Trace.concat tk.Task_set.trace
                              (Trace.make space rows.(j));
                        })
                      tasks)))

let fold_stream ~init stream f =
  let rec go ts last acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
        if e.at < 0 then err "event at t=%d: negative timestamp" e.at
        else if e.at <= last then
          err "event at t=%d: timestamps must strictly increase (previous %d)"
            e.at last
        else (
          match apply ts e with
          | Error msg -> err "event at t=%d (%s): %s" e.at (kind_name e) msg
          | Ok ts' -> go ts' e.at (f ts' :: acc) rest)
  in
  go init (-1) [] stream

let validate ~init stream =
  match fold_stream ~init stream (fun _ -> ()) with
  | Ok _ -> Ok ()
  | Error _ as e -> e

let replay ~init stream = fold_stream ~init stream Fun.id

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

(* [open Telemetry] below shadows [schema_version] with the telemetry
   document's own — rebind ours first. *)
let event_schema_version = schema_version

open Telemetry

let json_of_bitset b = List (List.map (fun i -> Int i) (Bitset.to_list b))

let bitset_of_json ~width = function
  | List l ->
      let rec go acc = function
        | [] -> Ok acc
        | Int i :: rest ->
            if i < 0 || i >= width then err "switch index %d out of width %d" i width
            else go (Bitset.add acc i) rest
        | _ -> Error "requirement entries must be integers"
      in
      go (Bitset.create width) l
  | _ -> Error "requirement must be a list"

let task_to_json tk =
  Obj
    [
      ("name", String tk.Task_set.name);
      ("v", Int tk.Task_set.v);
      ("width", Int (Switch_space.size (Trace.space tk.Task_set.trace)));
      ( "reqs",
        List
          (Array.to_list (Array.map json_of_bitset (Trace.reqs tk.Task_set.trace)))
      );
    ]

let ( let* ) = Result.bind

let mem name = function
  | Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> err "missing field %S" name)
  | _ -> err "expected an object with field %S" name

let as_int = function Int i -> Ok i | _ -> Error "expected an integer"

let as_string = function String s -> Ok s | _ -> Error "expected a string"

let as_list = function List l -> Ok l | _ -> Error "expected a list"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let task_of_json j =
  let* name = Result.bind (mem "name" j) as_string in
  let* v = Result.bind (mem "v" j) as_int in
  let* width = Result.bind (mem "width" j) as_int in
  let* reqs = Result.bind (mem "reqs" j) as_list in
  if width < 0 then Error "negative width"
  else
    let* reqs = map_result (bitset_of_json ~width) reqs in
    if reqs = [] then Error "task has no steps"
    else
      Ok
        {
          Task_set.name;
          v;
          trace = Trace.make (Switch_space.make width) (Array.of_list reqs);
        }

let task_set_to_json ts =
  Obj
    [ ("tasks", List (Array.to_list (Array.map task_to_json (Task_set.tasks ts)))) ]

let task_set_of_json j =
  let* tasks = Result.bind (mem "tasks" j) as_list in
  let* tasks = map_result task_of_json tasks in
  match Task_set.make (Array.of_list tasks) with
  | ts -> Ok ts
  | exception Invalid_argument msg -> Error msg

let to_json e =
  let base = [ ("schema", String event_schema_version); ("at", Int e.at) ] in
  let rest =
    match e.payload with
    | Arrive tk -> [ ("kind", String "arrive"); ("task", task_to_json tk) ]
    | Depart name -> [ ("kind", String "depart"); ("task", String name) ]
    | Demand_change { task; step; req } ->
        [
          ("kind", String "demand-change");
          ("task", String task);
          ("step", Int step);
          ("width", Int (Bitset.width req));
          ("req", json_of_bitset req);
        ]
    | Extend_trace rows ->
        [
          ("kind", String "extend-trace");
          ( "widths",
            List
              (Array.to_list
                 (Array.map
                    (fun row ->
                      Int (if Array.length row = 0 then 0 else Bitset.width row.(0)))
                    rows)) );
          ( "rows",
            List
              (Array.to_list
                 (Array.map
                    (fun row -> List (Array.to_list (Array.map json_of_bitset row)))
                    rows)) );
        ]
  in
  Obj (base @ rest)

let of_json j =
  let* at = Result.bind (mem "at" j) as_int in
  let* kind = Result.bind (mem "kind" j) as_string in
  let* payload =
    match kind with
    | "arrive" ->
        let* tk = Result.bind (mem "task" j) task_of_json in
        Ok (Arrive tk)
    | "depart" ->
        let* name = Result.bind (mem "task" j) as_string in
        Ok (Depart name)
    | "demand-change" ->
        let* task = Result.bind (mem "task" j) as_string in
        let* step = Result.bind (mem "step" j) as_int in
        let* width = Result.bind (mem "width" j) as_int in
        let* req = Result.bind (mem "req" j) (bitset_of_json ~width) in
        Ok (Demand_change { task; step; req })
    | "extend-trace" ->
        let* widths = Result.bind (mem "widths" j) as_list in
        let* widths = map_result as_int widths in
        let* rows = Result.bind (mem "rows" j) as_list in
        if List.length rows <> List.length widths then
          Error "extend-trace: widths/rows arity mismatch"
        else
          let* rows =
            map_result
              (fun (width, row) ->
                let* row = as_list row in
                let* row = map_result (bitset_of_json ~width) row in
                Ok (Array.of_list row))
              (List.combine widths rows)
          in
          Ok (Extend_trace (Array.of_list rows))
    | k -> err "unknown event kind %S" k
  in
  Ok { at; payload }

let stream_to_json ~init stream =
  Obj
    [
      ("schema", String stream_schema_version);
      ("init", task_set_to_json init);
      ("events", List (List.map to_json stream));
    ]

let stream_of_json j =
  let* schema = Result.bind (mem "schema" j) as_string in
  if schema <> stream_schema_version then
    err "expected schema %S, got %S" stream_schema_version schema
  else
    let* init = Result.bind (mem "init" j) task_set_of_json in
    let* events = Result.bind (mem "events" j) as_list in
    let* events = map_result of_json events in
    let* () = validate ~init events in
    Ok (init, events)
