(** Generic simulated annealing (cost minimization).

    Geometric cooling with Metropolis acceptance; an alternative to
    {!Ga} for the multi-task breakpoint search, included both as an
    ablation baseline and because it often matches the GA on small
    instances at a fraction of the evaluations. *)

type 'g problem = {
  cost : 'g -> int;
  neighbor : Hr_util.Rng.t -> 'g -> 'g;  (** a random small perturbation *)
}

type config = {
  steps : int;  (** total annealing steps *)
  t_start : float;  (** initial temperature *)
  t_end : float;  (** final temperature (> 0) *)
  restarts : int;  (** independent restarts; the best result wins *)
}

val default_config : config

type 'g result = {
  best : 'g;
  best_cost : int;
  evaluations : int;
  cut_off : bool;  (** stopped by the budget, not by running out of steps *)
}

(** [run ?config ?budget rng problem ~init] anneals from [init].  The
    [budget] (default {!Hr_util.Budget.unlimited}) is polled every few
    annealing steps; on exhaustion the best-so-far genome is returned
    with [cut_off = true] ([init] is always evaluated first, so a
    result exists even under an expired budget).  Deterministic for a
    fixed [rng] seed and an unlimited budget. *)
val run :
  ?config:config ->
  ?budget:Hr_util.Budget.t ->
  Hr_util.Rng.t ->
  'g problem ->
  init:'g ->
  'g result
