module Rng = Hr_util.Rng

type 'g problem = { cost : 'g -> int; neighbor : Rng.t -> 'g -> 'g }

type config = { steps : int; t_start : float; t_end : float; restarts : int }

let default_config = { steps = 20_000; t_start = 20.0; t_end = 0.05; restarts = 1 }

type 'g result = { best : 'g; best_cost : int; evaluations : int; cut_off : bool }

let run ?(config = default_config) ?(budget = Hr_util.Budget.unlimited) rng
    problem ~init =
  if config.steps < 1 then invalid_arg "Anneal.run: steps must be >= 1";
  if config.t_end <= 0. || config.t_start < config.t_end then
    invalid_arg "Anneal.run: need t_start >= t_end > 0";
  if config.restarts < 1 then invalid_arg "Anneal.run: restarts must be >= 1";
  let evaluations = ref 0 in
  let cut = ref false in
  let eval g =
    incr evaluations;
    problem.cost g
  in
  let cooling =
    (* Geometric factor so that t_start * factor^steps = t_end. *)
    exp (log (config.t_end /. config.t_start) /. float_of_int config.steps)
  in
  (* The budget is polled every [poll_mask + 1] steps — frequent enough
     for millisecond deadlines, cheap enough to vanish in the noise of
     a cost evaluation. *)
  let poll_mask = 0x3f in
  let one_restart () =
    let current = ref init and current_cost = ref (eval init) in
    let best = ref init and best_cost = ref !current_cost in
    let temp = ref config.t_start in
    let step = ref 0 in
    while !step < config.steps && not !cut do
      if !step land poll_mask = 0 && Hr_util.Budget.exhausted budget then
        cut := true
      else begin
        let cand = problem.neighbor rng !current in
        let cand_cost = eval cand in
        let delta = cand_cost - !current_cost in
        let accept =
          delta <= 0 || Rng.float rng < exp (-.float_of_int delta /. !temp)
        in
        if accept then begin
          current := cand;
          current_cost := cand_cost;
          if cand_cost < !best_cost then begin
            best := cand;
            best_cost := cand_cost
          end
        end;
        temp := !temp *. cooling
      end;
      incr step
    done;
    (!best, !best_cost)
  in
  let rec go k (bg, bc) =
    if k = 0 || !cut then (bg, bc)
    else
      let g, c = one_restart () in
      go (k - 1) (if c < bc then (g, c) else (bg, bc))
  in
  let g0, c0 = one_restart () in
  let best, best_cost = go (config.restarts - 1) (g0, c0) in
  { best; best_cost; evaluations = !evaluations; cut_off = !cut }
