(** First-improvement hill climbing over an explicit neighborhood.

    Deterministic given the neighbor enumeration order; used as the
    cheapest local-search baseline and as a polishing pass after the
    GA. *)

type 'g problem = {
  cost : 'g -> int;
  neighbors : 'g -> 'g Seq.t;  (** finite neighborhood of a genome *)
}

type 'g result = {
  best : 'g;
  best_cost : int;
  evaluations : int;
  rounds : int;
  cut_off : bool;  (** stopped by the budget, not at a local optimum *)
}

(** [run ?max_rounds ?budget problem ~init] repeatedly moves to the
    first strictly improving neighbor until a local optimum (or
    [max_rounds]) is reached.  The [budget] (default
    {!Hr_util.Budget.unlimited}) is polled per neighbor evaluation; on
    exhaustion the current genome is returned with [cut_off = true]
    ([init] is always evaluated, so a result exists regardless). *)
val run :
  ?max_rounds:int ->
  ?budget:Hr_util.Budget.t ->
  'g problem ->
  init:'g ->
  'g result
