type 'g problem = { cost : 'g -> int; neighbors : 'g -> 'g Seq.t }

type 'g result = {
  best : 'g;
  best_cost : int;
  evaluations : int;
  rounds : int;
  cut_off : bool;
}

exception Out_of_budget

let run ?(max_rounds = max_int) ?(budget = Hr_util.Budget.unlimited) problem
    ~init =
  let evaluations = ref 0 in
  let cut = ref false in
  (* Polled per neighbor evaluation: a single descent round scans up to
     the whole neighborhood, which for large instances is far coarser
     than a millisecond-scale deadline. *)
  let eval g =
    if Hr_util.Budget.exhausted budget then raise_notrace Out_of_budget;
    incr evaluations;
    problem.cost g
  in
  let rec climb g cost rounds =
    if rounds >= max_rounds then (g, cost, rounds)
    else
      let better =
        try
          Seq.find_map
            (fun n ->
              let c = eval n in
              if c < cost then Some (n, c) else None)
            (problem.neighbors g)
        with Out_of_budget ->
          cut := true;
          None
      in
      match better with
      | Some (n, c) -> climb n c (rounds + 1)
      | None -> (g, cost, rounds)
  in
  (* The initial evaluation is unconditional so a best-so-far always
     exists, even under an already-expired budget. *)
  let init_cost =
    incr evaluations;
    problem.cost init
  in
  let best, best_cost, rounds = climb init init_cost 0 in
  { best; best_cost; evaluations = !evaluations; rounds; cut_off = !cut }
