(** A generic steady-state genetic algorithm (cost minimization).

    The paper computes the multi-task (hyper)reconfiguration costs of
    its §6 experiment "using a genetic algorithm"; this module provides
    the engine, and [Hr_core.Mt_ga] instantiates it on breakpoint
    matrices.  The engine is deliberately problem-agnostic: genomes are
    an abstract type manipulated only through the supplied operators,
    and all randomness flows through an explicit {!Hr_util.Rng.t}. *)

(** Problem definition over genomes of type ['g].  [cost] is minimized
    and must be ≥ 0.  Operators must return fresh genomes (the engine
    never mutates in place). *)
type 'g problem = {
  random : Hr_util.Rng.t -> 'g;
  cost : 'g -> int;
  crossover : Hr_util.Rng.t -> 'g -> 'g -> 'g;
  mutate : Hr_util.Rng.t -> 'g -> 'g;
}

type config = {
  population : int;  (** population size (≥ 2) *)
  generations : int;  (** number of generations to evolve *)
  tournament : int;  (** tournament size for parent selection (≥ 1) *)
  elitism : int;  (** individuals copied unchanged to the next generation *)
  crossover_rate : float;  (** probability of crossover vs. cloning a parent *)
  patience : int option;
      (** stop early after this many generations without improvement *)
  domains : int;
      (** worker domains for cost evaluation (1 = sequential).  Genomes
          are always produced sequentially, so the result is identical
          for every [domains] value; [cost] must be pure to use > 1. *)
}

val default_config : config

type 'g result = {
  best : 'g;
  best_cost : int;
  evaluations : int;  (** number of [cost] calls *)
  history : (int * int) list;
      (** (generation, best-so-far cost) at every improvement, ascending *)
  cut_off : bool;
      (** [true] when the run stopped because its {!Hr_util.Budget.t}
          expired rather than by generations/patience *)
}

(** [run ?config ?seeds ?budget rng problem] evolves a population
    initialized from [seeds] (injected verbatim) padded with
    [problem.random] individuals.  The [budget] (default
    {!Hr_util.Budget.unlimited}) is polled between generations: on
    exhaustion the run returns its best-so-far with [cut_off = true].
    The initial population is always evaluated, so the result is
    meaningful even under an already-expired budget.  Deterministic for
    a given [rng] seed and an unlimited budget. *)
val run :
  ?config:config ->
  ?seeds:'g list ->
  ?budget:Hr_util.Budget.t ->
  Hr_util.Rng.t ->
  'g problem ->
  'g result
