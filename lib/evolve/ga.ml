module Rng = Hr_util.Rng

type 'g problem = {
  random : Rng.t -> 'g;
  cost : 'g -> int;
  crossover : Rng.t -> 'g -> 'g -> 'g;
  mutate : Rng.t -> 'g -> 'g;
}

type config = {
  population : int;
  generations : int;
  tournament : int;
  elitism : int;
  crossover_rate : float;
  patience : int option;
  domains : int;
}

let default_config =
  {
    population = 64;
    generations = 600;
    tournament = 3;
    elitism = 2;
    crossover_rate = 0.9;
    patience = None;
    domains = 1;
  }

type 'g result = {
  best : 'g;
  best_cost : int;
  evaluations : int;
  history : (int * int) list;
  cut_off : bool;
}

type 'g scored = { genome : 'g; score : int }

let run ?(config = default_config) ?(seeds = [])
    ?(budget = Hr_util.Budget.unlimited) rng problem =
  if config.population < 2 then invalid_arg "Ga.run: population must be >= 2";
  if config.tournament < 1 then invalid_arg "Ga.run: tournament must be >= 1";
  if config.elitism < 0 || config.elitism >= config.population then
    invalid_arg "Ga.run: elitism out of range";
  let evaluations = ref 0 in
  (* Genomes are produced sequentially (RNG order is part of the
     result's determinism); only the pure cost function runs on
     multiple domains. *)
  let eval_batch genomes =
    evaluations := !evaluations + Array.length genomes;
    let scores =
      if config.domains <= 1 then Array.map problem.cost genomes
      else Hr_util.Par.map_array ~domains:config.domains problem.cost genomes
    in
    Array.map2 (fun genome score -> { genome; score }) genomes scores
  in
  let initial =
    let seeds = List.filteri (fun i _ -> i < config.population) seeds in
    let missing = config.population - List.length seeds in
    Array.of_list (seeds @ List.init missing (fun _ -> problem.random rng))
  in
  let by_score a b = compare a.score b.score in
  let pop = ref (eval_batch initial) in
  Array.sort by_score !pop;
  let best = ref !pop.(0) in
  let history = ref [ (0, !best.score) ] in
  let stale = ref 0 in
  let gen = ref 1 in
  let cut = ref false in
  let continue_ () =
    (* Budget polled once per generation: coarse enough to be free,
       fine enough that a cut-off lands within one generation's work. *)
    if Hr_util.Budget.exhausted budget then begin
      cut := true;
      false
    end
    else
      !gen <= config.generations
      && match config.patience with None -> true | Some p -> !stale < p
  in
  while continue_ () do
    let tournament_pick () =
      let rec go k acc =
        if k = 0 then acc
        else
          let cand = Rng.pick rng !pop in
          go (k - 1) (if cand.score < acc.score then cand else acc)
      in
      go (config.tournament - 1) (Rng.pick rng !pop)
    in
    let child_genome () =
      let p1 = tournament_pick () in
      let g =
        if Rng.chance rng config.crossover_rate then
          let p2 = tournament_pick () in
          problem.crossover rng p1.genome p2.genome
        else p1.genome
      in
      problem.mutate rng g
    in
    let children =
      eval_batch
        (Array.init (config.population - config.elitism) (fun _ -> child_genome ()))
    in
    let next =
      Array.init config.population (fun i ->
          if i < config.elitism then !pop.(i) else children.(i - config.elitism))
    in
    Array.sort by_score next;
    pop := next;
    if next.(0).score < !best.score then begin
      best := next.(0);
      history := (!gen, !best.score) :: !history;
      stale := 0
    end
    else incr stale;
    incr gen
  done;
  {
    best = !best.genome;
    best_cost = !best.score;
    evaluations = !evaluations;
    history = List.rev !history;
    cut_off = !cut;
  }
