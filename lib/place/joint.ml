open Hr_core

type Problem.ext_data += Fabric of Fabric.t

let rec extension fabric ~v ~n =
  let dp = Strip_dp.build fabric ~v ~n in
  let evals = Atomic.make 0 in
  let moving = Atomic.make 0 in
  let relaxed = Atomic.make 0 in
  {
    Problem.tag = "placement";
    data = Fabric fabric;
    extra_cost =
      (fun bp ->
        Atomic.incr evals;
        ignore (Atomic.fetch_and_add relaxed (Strip_dp.transitions dp));
        let c = Strip_dp.min_cost dp bp in
        if c > 0 then Atomic.incr moving;
        c);
    scale =
      (fun k ->
        extension (Fabric.scale k fabric) ~v:(Array.map (fun x -> k * x) v) ~n);
    counters =
      (fun () ->
        [
          ("width", string_of_int fabric.Fabric.width);
          ("tasks", string_of_int (Fabric.m fabric));
          ("evals", string_of_int (Atomic.get evals));
          ("moving_evals", string_of_int (Atomic.get moving));
          ("dp_transitions", string_of_int (Atomic.get relaxed));
        ]);
  }

let attach p fabric =
  if Fabric.m fabric <> Problem.m p then
    invalid_arg "Joint.attach: fabric arity differs from the problem";
  Fabric.validate ~n:(Problem.n p) fabric;
  Problem.with_ext p
    (extension fabric ~v:p.Problem.oracle.Interval_cost.v ~n:(Problem.n p))

let fabric_of (p : Problem.t) =
  match p.Problem.ext with
  | Some { Problem.data = Fabric f; _ } -> Some f
  | _ -> None

let dp_of p =
  Option.map
    (fun f ->
      Strip_dp.build f ~v:p.Problem.oracle.Interval_cost.v ~n:(Problem.n p))
    (fabric_of p)

let min_reloc p bp =
  match p.Problem.ext with None -> 0 | Some e -> e.Problem.extra_cost bp

let plan p bp = Option.map (fun dp -> Strip_dp.plan dp bp) (dp_of p)
