open Hr_core

type t = int array array

let check (f : Fabric.t) ~n (p : t) =
  let m = Fabric.m f in
  let err fmt = Printf.ksprintf Result.error fmt in
  if Array.length p <> m then err "placement has %d rows, fabric has %d tasks" (Array.length p) m
  else if Array.exists (fun row -> Array.length row <> n) p then
    err "placement rows must have %d steps" n
  else begin
    let bad = ref None in
    let set msg = if !bad = None then bad := Some msg in
    for j = 0 to m - 1 do
      for i = 0 to n - 1 do
        let o = p.(j).(i) in
        if Fabric.active f j i then begin
          if o < 0 || o > f.Fabric.width - f.Fabric.sizes.(j) then
            set
              (Printf.sprintf "task %d step %d: offset %d outside 0..%d" j i o
                 (f.Fabric.width - f.Fabric.sizes.(j)))
        end
        else if o <> -1 then
          set (Printf.sprintf "task %d step %d: placed while not resident" j i)
      done
    done;
    (* Pairwise overlap per step. *)
    for i = 0 to n - 1 do
      let tasks = Fabric.tasks_at f i in
      let k = Array.length tasks in
      for a = 0 to k - 1 do
        for b = a + 1 to k - 1 do
          let j = tasks.(a) and j' = tasks.(b) in
          let o = p.(j).(i) and o' = p.(j').(i) in
          if
            o >= 0 && o' >= 0
            && o < o' + f.Fabric.sizes.(j')
            && o' < o + f.Fabric.sizes.(j)
          then set (Printf.sprintf "tasks %d and %d overlap at step %d" j j' i)
        done
      done
    done;
    match !bad with Some msg -> Error msg | None -> Ok ()
  end

let moves (f : Fabric.t) (p : t) =
  let m = Fabric.m f in
  let n = if m = 0 then 0 else Array.length p.(0) in
  let acc = ref [] in
  for i = n - 1 downto 1 do
    for j = m - 1 downto 0 do
      if Fabric.active f j i && Fabric.active f j (i - 1) && p.(j).(i) <> p.(j).(i - 1)
      then acc := (j, i) :: !acc
    done
  done;
  !acc

let relocations f p = List.length (moves f p)

let cost f ~v bp p =
  List.fold_left
    (fun total (j, i) ->
      total + f.Fabric.reloc.(j) + (if Breakpoints.is_break bp j i then 0 else v.(j)))
    0 (moves f p)

let of_static (f : Fabric.t) ~n offs =
  Array.init (Fabric.m f) (fun j ->
      Array.init n (fun i -> if Fabric.active f j i then offs.(j) else -1))

(* "0:1@0-2;1:0@1-1,2@2-3" — task-major, one run per constant-offset
   stretch of resident steps. *)
let to_string (p : t) =
  let task j row =
    let n = Array.length row in
    let runs = ref [] in
    let i = ref 0 in
    while !i < n do
      if row.(!i) < 0 then incr i
      else begin
        let lo = !i and o = row.(!i) in
        while !i < n && row.(!i) = o do
          incr i
        done;
        runs := Printf.sprintf "%d@%d-%d" o lo (!i - 1) :: !runs
      end
    done;
    Printf.sprintf "%d:%s" j
      (if !runs = [] then "-" else String.concat "," (List.rev !runs))
  in
  String.concat ";" (Array.to_list (Array.mapi task p))

let of_string ~m ~n s =
  let err fmt = Printf.ksprintf Result.error fmt in
  let p = Array.init m (fun _ -> Array.make n (-1)) in
  let tasks = String.split_on_char ';' s in
  if List.length tasks <> m then err "expected %d task entries" m
  else
    let parse_run j run =
      match String.index_opt run '@' with
      | None -> err "task %d: malformed run %S" j run
      | Some at -> (
          let o = String.sub run 0 at in
          let span = String.sub run (at + 1) (String.length run - at - 1) in
          match String.index_opt span '-' with
          | None -> err "task %d: malformed span %S" j span
          | Some dash -> (
              let lo = String.sub span 0 dash in
              let hi = String.sub span (dash + 1) (String.length span - dash - 1) in
              match
                (int_of_string_opt o, int_of_string_opt lo, int_of_string_opt hi)
              with
              | Some o, Some lo, Some hi when 0 <= lo && lo <= hi && hi < n ->
                  for i = lo to hi do
                    p.(j).(i) <- o
                  done;
                  Ok ()
              | _ -> err "task %d: bad run %S" j run))
    in
    let parse_task entry =
      match String.index_opt entry ':' with
      | None -> err "malformed task entry %S" entry
      | Some colon -> (
          let body = String.sub entry (colon + 1) (String.length entry - colon - 1) in
          match int_of_string_opt (String.sub entry 0 colon) with
          | Some j when 0 <= j && j < m ->
              if body = "-" then Ok ()
              else
                List.fold_left
                  (fun acc run -> Result.bind acc (fun () -> parse_run j run))
                  (Ok ())
                  (String.split_on_char ',' body)
          | _ -> err "bad task index in %S" entry)
    in
    Result.map
      (fun () -> p)
      (List.fold_left
         (fun acc entry -> Result.bind acc (fun () -> parse_task entry))
         (Ok ()) tasks)
