open Hr_core
module Budget = Hr_util.Budget

let fabric_exn p =
  match Joint.fabric_of p with
  | Some f -> f
  | None -> invalid_arg "Hr_place.Solvers: problem carries no fabric"

let placed p = Joint.fabric_of p <> None && Problem.n p >= 1

(* ------------------------------------------------------------------ *)
(* place-shelf                                                        *)
(* ------------------------------------------------------------------ *)

let shelf_schedule f ~n =
  let m = Fabric.m f in
  let sched = Array.init m (fun _ -> Array.make n (-1)) in
  let prev = Array.make m (-1) in
  for i = 0 to n - 1 do
    let tasks = Fabric.tasks_at f i in
    let fits placed j o =
      o + f.Fabric.sizes.(j) <= f.Fabric.width
      && List.for_all
           (fun (j', o') ->
             o + f.Fabric.sizes.(j) <= o' || o' + f.Fabric.sizes.(j') <= o)
           placed
    in
    let first_fit placed j =
      let rec go o =
        if o + f.Fabric.sizes.(j) > f.Fabric.width then None
        else if fits placed j o then Some o
        else go (o + 1)
      in
      go 0
    in
    let keep_or_fit =
      let placed = ref [] in
      Array.for_all
        (fun j ->
          let cand =
            if prev.(j) >= 0 && fits !placed j prev.(j) then Some prev.(j)
            else first_fit !placed j
          in
          match cand with
          | Some o ->
              placed := (j, o) :: !placed;
              sched.(j).(i) <- o;
              true
          | None -> false)
        tasks
    in
    if not keep_or_fit then begin
      (* Fragmentation blocked first-fit: left-pack the whole step from
         scratch.  Per-step fit (Fabric.check) guarantees this works. *)
      let off = ref 0 in
      Array.iter
        (fun j ->
          sched.(j).(i) <- !off;
          off := !off + f.Fabric.sizes.(j))
        tasks
    end;
    Array.iter (fun j -> prev.(j) <- sched.(j).(i)) tasks
  done;
  sched

(* The inner base-PHC backend: first registered solver in preference
   order that handles the fabric-stripped problem.  Exact backends
   first (each gated by its own capability predicate), then the cheap
   heuristics. *)
let inner_preference =
  [
    "st-dp";
    "mt-dp";
    "async-opt";
    "online-dp";
    "all-task";
    "brute";
    "greedy";
    "mode-climb";
    "hill-climb";
  ]

let place_shelf =
  Solver.make ~name:"place-shelf" ~kind:Solver.Heuristic
    ~doc:"greedy shelf placement, then one base-PHC solve of the plan"
    ~handles:placed
    (fun ~budget ~rng p ->
      let f = fabric_exn p in
      let n = Problem.n p in
      let v = p.Problem.oracle.Interval_cost.v in
      let static = Fabric.static_first_fit f in
      let placement =
        match static with
        | Some offs -> Placement.of_static f ~n offs
        | None -> shelf_schedule f ~n
      in
      let base = Problem.without_ext p in
      let inner =
        List.find_map
          (fun name ->
            match Solver_registry.find name with
            | Some s when s.Solver.handles base -> Some s
            | _ -> None)
          inner_preference
      in
      let inner_name, sol =
        match inner with
        | Some s -> (s.Solver.name, Some (Solver.solve ~rng ~budget s base))
        | None -> ("none", None)
      in
      let bp =
        match sol with
        | Some s -> s.Solution.bp
        | None -> Breakpoints.create ~m:(Problem.m p) ~n
      in
      (* A static placement never relocates, so the extension term is 0
         for every matrix and the base optimum is the joint optimum:
         exactness of the inner solve carries over. *)
      let exact =
        Option.is_some static
        && (match sol with Some s -> s.Solution.exact | None -> false)
      in
      let cut_off =
        match sol with Some s -> s.Solution.cut_off | None -> false
      in
      Solution.make ~solver:"place-shelf" ~exact ~cut_off
        ~stats:
          [
            ("inner", inner_name);
            ("static", string_of_bool (Option.is_some static));
            ("placement", Placement.to_string placement);
            ( "relocations",
              string_of_int (Placement.relocations f placement) );
            ( "placement_cost",
              string_of_int (Placement.cost f ~v bp placement) );
          ]
        ~cost:(Problem.eval p bp) bp)

(* ------------------------------------------------------------------ *)
(* place-dp                                                           *)
(* ------------------------------------------------------------------ *)

let place_dp =
  Solver.make ~name:"place-dp" ~kind:Solver.Exact
    ~doc:"exact joint optimum: matrix enumeration priced by the strip DP"
    ~handles:(fun p -> placed p && Brute.feasible ~max_bits:16 p)
    (fun ~budget ~rng:_ p ->
      let f = fabric_exn p in
      let m = Problem.m p and n = Problem.n p in
      let all_task = p.Problem.machine_class = Problem.All_task in
      let free = Brute.bits p in
      let best_cost = ref max_int in
      let best_bp = ref (Breakpoints.create ~m ~n) in
      let pruned = ref 0 in
      let evaluated = ref 0 in
      let cut = ref false in
      (* Identical mask order, strict-improvement rule and base-cost
         prune as Place_brute.solve (and Brute.solve on the joint
         objective): the winning (cost, matrix) is bit-identical. *)
      (try
         for mask = 0 to (1 lsl free) - 1 do
           if mask land 255 = 0 && mask > 0 && Budget.exhausted budget
           then begin
             cut := true;
             raise Exit
           end;
           let raw =
             if all_task then
               let row =
                 Array.init n (fun i ->
                     i = 0 || mask land (1 lsl (i - 1)) <> 0)
               in
               Array.init m (fun _ -> Array.copy row)
             else
               Array.init m (fun j ->
                   Array.init n (fun i ->
                       i = 0
                       || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
           in
           let bp = Breakpoints.of_matrix raw in
           let base = Problem.eval_base p bp in
           if base >= !best_cost then incr pruned
           else begin
             incr evaluated;
             let joint = base + Joint.min_reloc p bp in
             if joint < !best_cost then begin
               best_cost := joint;
               best_bp := bp
             end
           end
         done
       with Exit -> ());
      let placement = Option.get (Joint.plan p !best_bp) in
      Solution.make ~solver:"place-dp" ~exact:(not !cut) ~cut_off:!cut
        ~stats:
          [
            ("masks", string_of_int (1 lsl free));
            ("evaluated", string_of_int !evaluated);
            ("pruned", string_of_int !pruned);
            ("placement", Placement.to_string placement);
            ( "relocations",
              string_of_int (Placement.relocations f placement) );
          ]
        ~cost:!best_cost !best_bp)

(* ------------------------------------------------------------------ *)
(* place-local                                                        *)
(* ------------------------------------------------------------------ *)

type local_outcome = {
  cost : int;
  bp : Breakpoints.t;
  placement : Placement.t;
  evaluations : int;
  rounds : int;
  cut_off : bool;
}

let local_search ?init ~budget p =
  let f = fabric_exn p in
  let m = Problem.m p and n = Problem.n p in
  let v = p.Problem.oracle.Interval_cost.v in
  let dp = Strip_dp.build f ~v ~n in
  let all_task = p.Problem.machine_class = Problem.All_task in
  let evals = ref 0 in
  let cut = ref false in
  let poll () =
    if (not !cut) && !evals land 31 = 0 && Budget.exhausted budget then
      cut := true;
    !cut
  in
  let joint bp pl =
    incr evals;
    Problem.eval_base p bp + Placement.cost f ~v bp pl
  in
  let bp, pl =
    match init with
    | Some (b, q) -> (ref b, ref q)
    | None ->
        let b = Breakpoints.create ~m ~n in
        (ref b, ref (Strip_dp.plan dp b))
  in
  let cur = ref (joint !bp !pl) in
  let try_bp b =
    let c = joint b !pl in
    if c < !cur then begin
      bp := b;
      cur := c;
      true
    end
    else false
  in
  let try_pl q =
    match Placement.check f ~n q with
    | Error _ -> false
    | Ok () ->
        let c = joint !bp q in
        if c < !cur then begin
          pl := q;
          cur := c;
          true
        end
        else false
  in
  let copy_pl () = Array.map Array.copy !pl in
  let set_range q j lo hi o =
    for i = lo to hi do
      q.(j).(i) <- o
    done
  in
  let flip_column i =
    let b = not (Breakpoints.is_break !bp 0 i) in
    let rec go j acc =
      if j >= m then acc else go (j + 1) (Breakpoints.set acc j i b)
    in
    go 0 !bp
  in
  let rounds = ref 0 in
  let improved = ref true in
  while !improved && (not (poll ())) && !rounds < 200 do
    incr rounds;
    improved := false;
    (* Re-canonicalize the schedule against the current matrix: the
       strip DP's plan is optimal for it by construction. *)
    if try_pl (Strip_dp.plan dp !bp) then improved := true;
    (* Matrix moves: bit flips (whole columns for the all-task class,
       keeping the matrix admissible). *)
    for i = 1 to n - 1 do
      if not (poll ()) then
        if all_task then begin
          if try_bp (flip_column i) then improved := true
        end
        else
          for j = 0 to m - 1 do
            if not (poll ()) then
              if
                try_bp
                  (Breakpoints.set !bp j i
                     (not (Breakpoints.is_break !bp j i)))
              then improved := true
          done
    done;
    (* Placement moves: relocate one task for its whole window, or from
       some step onward (a suffix split pays one move to dodge later
       conflicts). *)
    for j = 0 to m - 1 do
      let a, d = f.Fabric.windows.(j) in
      let top = f.Fabric.width - f.Fabric.sizes.(j) in
      for o = 0 to top do
        if not (poll ()) then begin
          if o <> !pl.(j).(a) then begin
            let q = copy_pl () in
            set_range q j a d o;
            if try_pl q then improved := true
          end;
          for s = a + 1 to d do
            if (not (poll ())) && o <> !pl.(j).(s) then begin
              let q = copy_pl () in
              set_range q j s d o;
              if try_pl q then improved := true
            end
          done
        end
      done
    done
  done;
  (* Always hand back the canonical optimal schedule of the final
     matrix, so cost = Problem.eval p bp exactly. *)
  pl := Strip_dp.plan dp !bp;
  cur := Problem.eval_base p !bp + Placement.cost f ~v !bp !pl;
  {
    cost = !cur;
    bp = !bp;
    placement = !pl;
    evaluations = !evals;
    rounds = !rounds;
    cut_off = !cut;
  }

let place_local =
  Solver.make ~name:"place-local" ~kind:Solver.Heuristic
    ~doc:"first-improvement descent over joint (matrix, schedule) moves"
    ~handles:placed
    (fun ~budget ~rng:_ p ->
      let f = fabric_exn p in
      let o = local_search ~budget p in
      Solution.make ~solver:"place-local" ~cut_off:o.cut_off
        ~stats:
          [
            ("evaluations", string_of_int o.evaluations);
            ("rounds", string_of_int o.rounds);
            ("placement", Placement.to_string o.placement);
            ("relocations", string_of_int (Placement.relocations f o.placement));
          ]
        ~cost:o.cost o.bp)

(* ------------------------------------------------------------------ *)

let ensure =
  let registered =
    lazy
      (List.iter
         (fun s -> Solver_registry.register ~override:true s)
         [ place_shelf; place_dp; place_local ])
  in
  fun () -> Lazy.force registered
