(** Exhaustive ground truth for tiny placement instances.

    Enumerates the full joint space — every class-admissible
    breakpoint matrix (in {!Hr_core.Brute}'s mask order) × every
    feasible offset schedule (depth-first in {!Fabric.vectors} lex
    order) — keeping strict improvements only, so the winner is the
    first (mask-order, then lex-order) joint optimum.  The schedule
    costing is written directly against the fabric, independent of
    {!Strip_dp}; agreement between the two (and with [place-dp]) is
    exactly what the differential tests and the [place-exact-brute]
    conformance column certify. *)

(** [feasible p] — extended instance small enough to enumerate: at
    most 2^12 admissible matrices and at most 2^22 (matrix, schedule)
    pairs. *)
val feasible : Hr_core.Problem.t -> bool

(** [solve p] = (joint optimum, its matrix, its schedule).  Raises
    [Invalid_argument] when {!feasible} is false or the problem
    carries no fabric. *)
val solve : Hr_core.Problem.t -> int * Hr_core.Breakpoints.t * Placement.t
