(** The placement-aware solver backends.

    Three {!Hr_core.Solver.t} values registered (via {!ensure}) in the
    global {!Hr_core.Solver_registry}, all gated on an attached fabric
    ({!Joint.fabric_of}) — they refuse plain instances exactly as the
    base backends refuse extended ones:

    - [place-shelf] (heuristic): greedy shelf placement — one static
      first-fit offset per task when that exists, else per-step
      keep-or-first-fit repacking — then one base-PHC solve of the
      plan.  When the placement is static and the inner backend is
      exact, the result is exact for the joint objective too
      (a relocation-free schedule makes the extension term vanish for
      every matrix).
    - [place-dp] (exact): enumerates the class-admissible matrices in
      {!Hr_core.Brute}'s mask order, pricing each with the exact strip
      DP, keeping strict improvements — bit-identical to
      {!Place_brute} (and to {!Hr_core.Brute} on the joint objective)
      by construction.  Applies up to 2^16 matrices; budget-polled,
      returning its best-so-far plan (marked cut off) on expiry.
    - [place-local] (heuristic): first-improvement descent over the
      joint neighbourhood — matrix bit/column flips, whole-window and
      suffix relocations of one task, and re-canonicalization of the
      schedule against the current matrix.  Budget-polled and
      warm-startable through {!local_search}. *)

open Hr_core

val place_shelf : Solver.t
val place_dp : Solver.t
val place_local : Solver.t

(** [shelf_schedule fabric ~n] is the greedy shelf schedule: every
    task keeps its previous offset when still free, else moves to the
    lowest free offset; a step where fragmentation blocks first-fit is
    left-packed from scratch.  Always succeeds on a fabric passing
    {!Fabric.check}. *)
val shelf_schedule : Fabric.t -> n:int -> Placement.t

type local_outcome = {
  cost : int;  (** joint cost of [(bp, placement)] *)
  bp : Breakpoints.t;
  placement : Placement.t;  (** canonical optimal schedule of [bp] *)
  evaluations : int;
  rounds : int;
  cut_off : bool;
}

(** [local_search ?init ~budget p] — the [place-local] engine.  [init]
    warm-starts from a previous joint solution (the matrix must be
    admissible for [p]'s machine class); by default the search starts
    from the hyperreconfigure-once matrix and its canonical
    schedule. *)
val local_search :
  ?init:Breakpoints.t * Placement.t ->
  budget:Hr_util.Budget.t ->
  Problem.t ->
  local_outcome

(** Idempotently register the three backends.  Library linking does
    not run module initializers of otherwise-unreferenced modules, so
    every entry point that wants placement solvers in the registry
    calls this explicitly. *)
val ensure : unit -> unit
