(** The placement strip DP: exact minimum relocation cost of a
    breakpoint matrix, and its canonical optimal schedule.

    For a fixed matrix [bp] the placement subproblem decomposes per
    step: a state is one feasible offset vector ({!Fabric.vectors}),
    and the transition from step [i-1] to step [i] charges every task
    whose offset changes [reloc_j + (bp(j,i) ? 0 : v_j)].  A backward
    sweep over the (cap-bounded) state space gives the exact minimum;
    because the joint objective of an extended problem is
    [base cost + this minimum], {!Hr_core.Problem.eval} stays a total
    function of the matrix and every generic consumer — solver
    re-stamping, {!Hr_core.Brute}, the conformance runner — prices
    placement correctly with no code changes.

    [plan] recovers the {e canonical} optimal schedule: the
    lexicographically smallest one under {!Fabric.vectors} order
    (greedy forward choice against the backward cost-to-go table).
    {!Place_brute} enumerates schedules in the same order with
    strict-improvement selection, so both sides land on the identical
    schedule — the bit-identity the conformance column checks. *)

type t

(** [build fabric ~v ~n] precomputes the per-step state spaces and
    transition tables ([v] is the oracle's per-task partial
    hyperreconfiguration cost vector).  The fabric must already
    satisfy {!Fabric.check} for [n]. *)
val build : Fabric.t -> v:int array -> n:int -> t

(** Static transition count of one evaluation sweep (telemetry). *)
val transitions : t -> int

(** [min_cost t bp] — exact minimum relocation cost under [bp]. *)
val min_cost : t -> Hr_core.Breakpoints.t -> int

(** [plan t bp] — the canonical (lex-smallest) optimal schedule;
    [Placement.cost] of it equals [min_cost t bp]. *)
val plan : t -> Hr_core.Breakpoints.t -> Placement.t
