type t = {
  width : int;
  sizes : int array;
  windows : (int * int) array;
  reloc : int array;
}

let m t = Array.length t.sizes

let full ~m ~n ~width ?sizes ?reloc () =
  {
    width;
    sizes = (match sizes with Some s -> s | None -> Array.make m 1);
    windows = Array.make m (0, n - 1);
    reloc = (match reloc with Some r -> r | None -> Array.make m 1);
  }

let active t j i =
  let a, d = t.windows.(j) in
  a <= i && i <= d

let tasks_at t i =
  let acc = ref [] in
  for j = m t - 1 downto 0 do
    if active t j i then acc := j :: !acc
  done;
  Array.of_list !acc

let load t i =
  let total = ref 0 in
  Array.iter (fun j -> total := !total + t.sizes.(j)) (tasks_at t i);
  !total

(* All feasible offset vectors of one step, in lexicographic order:
   offsets are chosen task by task (ascending task index), each
   ascending from 0, skipping overlaps with the already-chosen prefix.
   The recursion emits vectors in exactly the order every consumer
   (strip DP, Place_brute, the local search) relies on for canonical
   tie-breaking. *)
let vectors t i =
  let tasks = tasks_at t i in
  let k = Array.length tasks in
  let chosen = Array.make k 0 in
  let out = ref [] in
  let overlaps o size upto =
    let rec go q =
      if q >= upto then false
      else
        let o' = chosen.(q) and s' = t.sizes.(tasks.(q)) in
        if o < o' + s' && o' < o + size then true else go (q + 1)
    in
    go 0
  in
  let rec fill q =
    if q = k then out := Array.copy chosen :: !out
    else
      let size = t.sizes.(tasks.(q)) in
      for o = 0 to t.width - size do
        if not (overlaps o size q) then begin
          chosen.(q) <- o;
          fill (q + 1)
        end
      done
  in
  fill 0;
  Array.of_list (List.rev !out)

let max_step_vectors = 64
let max_transitions = 200_000

let check ~n t =
  let mm = m t in
  let err fmt = Printf.ksprintf Result.error fmt in
  if mm < 1 then err "fabric needs >= 1 task"
  else if Array.length t.windows <> mm || Array.length t.reloc <> mm then
    err "fabric arities differ (sizes/windows/reloc)"
  else if t.width < 1 then err "fabric width must be >= 1"
  else if Array.exists (fun s -> s < 1 || s > t.width) t.sizes then
    err "task sizes must be in 1..width"
  else if Array.exists (fun r -> r < 0) t.reloc then
    err "relocation costs must be >= 0"
  else if Array.exists (fun (a, d) -> a < 0 || a > d || d >= n) t.windows then
    err "windows must satisfy 0 <= a <= d < n"
  else begin
    let bad = ref None in
    let prev = ref 1 in
    let transitions = ref 0 in
    for i = 0 to n - 1 do
      if !bad = None then
        if load t i > t.width then
          bad := Some (Printf.sprintf "step %d demands %d of %d slots" i (load t i) t.width)
        else begin
          let v = Array.length (vectors t i) in
          if v > max_step_vectors then
            bad :=
              Some
                (Printf.sprintf "step %d admits %d offset vectors (cap %d)" i v
                   max_step_vectors)
          else begin
            transitions := !transitions + (!prev * v);
            prev := v;
            if !transitions > max_transitions then
              bad :=
                Some
                  (Printf.sprintf "strip DP needs > %d transitions" max_transitions)
          end
        end
    done;
    match !bad with Some msg -> Error msg | None -> Ok ()
  end

let validate ~n t =
  match check ~n t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fabric.validate: " ^ msg)

let static_first_fit t =
  let mm = m t in
  let offs = Array.make mm 0 in
  let windows_overlap j j' =
    let a, d = t.windows.(j) and a', d' = t.windows.(j') in
    a <= d' && a' <= d
  in
  let clash j o j' =
    windows_overlap j j'
    && o < offs.(j') + t.sizes.(j')
    && offs.(j') < o + t.sizes.(j)
  in
  let rec place j =
    if j >= mm then true
    else
      let rec try_off o =
        if o > t.width - t.sizes.(j) then false
        else
          let rec any_clash j' = j' < j && (clash j o j' || any_clash (j' + 1)) in
          if any_clash 0 then try_off (o + 1)
          else begin
            offs.(j) <- o;
            place (j + 1)
          end
      in
      try_off 0
  in
  if place 0 then Some offs else None

let scale k t = { t with reloc = Array.map (fun r -> k * r) t.reloc }

let ints arr = String.concat "," (Array.to_list (Array.map string_of_int arr))

let summary t =
  Printf.sprintf "W=%d sizes=[%s] win=[%s] reloc=[%s]" t.width (ints t.sizes)
    (String.concat ","
       (Array.to_list
          (Array.map (fun (a, d) -> Printf.sprintf "%d-%d" a d) t.windows)))
    (ints t.reloc)
