(** Placement schedules: where every task sits at every step.

    A schedule is an m×n offset matrix: [offsets.(j).(i)] is the
    leftmost slot of task [j]'s region at step [i], or [-1] when the
    task is not resident there.  A {e move} of task [j] at step
    [i >= 1] is an offset change between two consecutive resident
    steps; it costs [reloc_j] plus the changeover surcharge [v_j]
    {e unless} the breakpoint matrix hyperreconfigures task [j] at
    step [i] (a relocated region is reloaded anyway, so a planned
    partial hyperreconfiguration absorbs the surcharge).  A task's
    first placement — at its arrival step — is free, which is how
    freed regions are reassigned at no cost beyond the mover's own
    relocation. *)

type t = int array array

(** [check fabric ~n p] validates a schedule: m×n shape, an offset
    exactly on the resident steps, each within [0 .. width - size],
    and no two resident regions overlapping at any step. *)
val check : Fabric.t -> n:int -> t -> (unit, string) result

(** [moves fabric p] lists the [(task, step)] moves, step-major then
    task-major (ascending). *)
val moves : Fabric.t -> t -> (int * int) list

(** [relocations fabric p] = number of moves. *)
val relocations : Fabric.t -> t -> int

(** [cost fabric ~v bp p] is the total relocation cost of the schedule
    under breakpoint matrix [bp]:
    [sum over moves (j, i) of reloc_j + (if bp(j,i) then 0 else v_j)]. *)
val cost : Fabric.t -> v:int array -> Hr_core.Breakpoints.t -> t -> int

(** [of_static fabric ~n offs] expands fixed per-task offsets into a
    schedule (resident steps only). *)
val of_static : Fabric.t -> n:int -> int array -> t

(** [to_string p] is a compact stable rendering, task-major runs:
    ["0:1@0-2;1:0@1-1,2@2-3"] means task 0 at offset 1 for steps 0–2,
    task 1 at offset 0 for step 1 then offset 2 for steps 2–3.  A task
    resident nowhere renders as ["j:-"].  [of_string ~m ~n] inverts
    it. *)
val to_string : t -> string

val of_string : m:int -> n:int -> string -> (t, string) result
