(** The 1-D reconfigurable fabric of the placement-aware problem
    family.

    A fabric is a strip of [width] slots.  Task [j] occupies a
    contiguous region of [sizes.(j)] slots while it is resident —
    during the inclusive step window [windows.(j) = (a_j, d_j)] — and
    occupies nothing outside it, so regions freed by departing or
    not-yet-arrived tasks can be reassigned.  Relocating task [j]
    between consecutive resident steps costs [reloc.(j)] plus a
    changeover surcharge (see {!Placement} and [docs/placement.md]):
    the task's partial-hyperreconfiguration cost [v_j] unless the
    breakpoint matrix already hyperreconfigures it at that step.

    A fabric is pure data — the conformance generator draws it, the
    shrinker edits it, and the corpus serializes it — and it is
    validated against a horizon [n] before any solver sees it. *)

type t = {
  width : int;  (** strip width in slots, >= 1 *)
  sizes : int array;  (** per-task region size, each >= 1 *)
  windows : (int * int) array;  (** per-task inclusive residency [a, d] *)
  reloc : int array;  (** per-task base relocation cost, each >= 0 *)
}

(** Number of tasks. *)
val m : t -> int

(** [full ~m ~n ~width ?sizes ?reloc ()] is the everything-resident
    fabric: every task sized 1 (unless [sizes] is given), resident for
    the whole horizon, relocation cost 1 (unless [reloc] is given). *)
val full :
  m:int -> n:int -> width:int -> ?sizes:int array -> ?reloc:int array -> unit -> t

(** [active t j i] — is task [j] resident at step [i]? *)
val active : t -> int -> int -> bool

(** [tasks_at t i] — the resident tasks of step [i], ascending. *)
val tasks_at : t -> int -> int array

(** [load t i] — total slots demanded at step [i]. *)
val load : t -> int -> int

(** [vectors t i] is every feasible offset assignment of step [i]'s
    resident tasks, in lexicographic order (offsets listed in
    {!tasks_at} order, each in [0 .. width - size], pairwise
    non-overlapping).  A step with no resident tasks has exactly one
    vector: [[||]].  Every placement algorithm in this library
    enumerates candidate offsets through this one function, so their
    tie-breaking orders agree by construction. *)
val vectors : t -> int -> int array array

(** Validation caps keeping the per-evaluation strip DP (and with it
    {!Hr_core.Problem.eval} on extended instances) cheap: at most
    [max_step_vectors] offset vectors per step and at most
    [max_transitions] vector-pair transitions over the horizon. *)
val max_step_vectors : int

val max_transitions : int

(** [check ~n t] validates shapes ([sizes], [windows], [reloc] all of
    one arity >= 1), bounds ([1 <= size <= width],
    [0 <= a <= d < n], [reloc >= 0]), per-step fit
    ([load <= width] everywhere, which for a 1-D strip guarantees a
    feasible left-packed assignment at every step) and the DP caps
    above. *)
val check : n:int -> t -> (unit, string) result

(** [validate ~n t] — {!check}, raising [Invalid_argument]. *)
val validate : n:int -> t -> unit

(** [static_first_fit t] fixes one offset per task for its whole
    window, greedily in task order at the lowest non-overlapping
    offset (tasks with disjoint windows may share slots).  [None] when
    greedy first-fit finds no static assignment — per-step fit does
    not guarantee one (the classic dynamic-storage-allocation gap), and
    greedy can also miss one that exists; relocation-free placement is
    only {e claimed} when it is exhibited. *)
val static_first_fit : t -> int array option

(** [scale k t] multiplies every relocation cost by [k] (the
    placement half of the linear-scaling invariant; the [v_j]
    surcharge scales with the oracle). *)
val scale : int -> t -> t

(** One-line summary, e.g. ["W=4 sizes=[1,2] win=[0-3,1-2] reloc=[1,0]"]. *)
val summary : t -> string
