(** Attaching a fabric to a {!Hr_core.Problem.t} — the placement-aware
    joint objective.

    [attach p fabric] returns [p] extended so that
    [Problem.eval p' bp = Problem.eval_base p' bp + min relocation
    cost of bp] ({!Strip_dp.min_cost}).  The extension is a total
    function of the matrix, so the joint problem flows through every
    generic layer — {!Hr_core.Solver.solve} re-stamping,
    {!Hr_core.Brute} ground truth, batching, caching — unchanged, and
    base-PHC solvers refuse it via their [Problem.plain] guard.

    Telemetry counters (surfaced through
    {!Hr_core.Telemetry}'s ["extension"] field): [width], [tasks],
    [evals] (joint evaluations), [moving_evals] (evaluations whose
    optimal schedule relocates at least once) and [dp_transitions]
    (cumulative strip-DP transitions relaxed). *)

type Hr_core.Problem.ext_data += Fabric of Fabric.t

(** [extension fabric ~v ~n] builds the reusable extension record
    (shared counters; [scale] rebuilds with scaled [reloc] and [v]). *)
val extension : Fabric.t -> v:int array -> n:int -> Hr_core.Problem.extension

(** [attach p fabric] validates the fabric against [p]'s dimensions
    and oracle and returns the extended problem.  Raises
    [Invalid_argument] on arity mismatch or a fabric failing
    {!Fabric.check}. *)
val attach : Hr_core.Problem.t -> Fabric.t -> Hr_core.Problem.t

(** The fabric of an extended problem, [None] on plain ones. *)
val fabric_of : Hr_core.Problem.t -> Fabric.t option

(** [min_reloc p bp] — the extension term alone ([0] on plain
    problems). *)
val min_reloc : Hr_core.Problem.t -> Hr_core.Breakpoints.t -> int

(** [plan p bp] — the canonical optimal schedule of [bp]
    ({!Strip_dp.plan}); [None] on plain problems. *)
val plan : Hr_core.Problem.t -> Hr_core.Breakpoints.t -> Placement.t option
