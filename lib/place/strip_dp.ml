open Hr_core

type trans = { relsum : int; movers : int array }

type t = {
  fabric : Fabric.t;
  v : int array;
  n : int;
  steps : int array array array;  (* steps.(i) = lex-ordered offset vectors *)
  tasks : int array array;  (* tasks.(i) = resident tasks of step i *)
  trans : trans array array array;  (* trans.(i).(a).(b), defined for i >= 1 *)
  transitions : int;
}

let build fabric ~v ~n =
  if Array.length v <> Fabric.m fabric then
    invalid_arg "Strip_dp.build: v arity differs from the fabric";
  Fabric.validate ~n fabric;
  let steps = Array.init n (fun i -> Fabric.vectors fabric i) in
  let tasks = Array.init n (fun i -> Fabric.tasks_at fabric i) in
  let transitions = ref 0 in
  let trans =
    Array.init n (fun i ->
        if i = 0 then [||]
        else begin
          (* Tasks resident at both steps, with their positions in each
             step's vector. *)
          let common = ref [] in
          Array.iteri
            (fun qa j ->
              match Array.find_index (fun j' -> j' = j) tasks.(i) with
              | Some qb -> common := (j, qa, qb) :: !common
              | None -> ())
            tasks.(i - 1);
          let common = !common in
          Array.map
            (fun va ->
              Array.map
                (fun vb ->
                  incr transitions;
                  let movers = ref [] and relsum = ref 0 in
                  List.iter
                    (fun (j, qa, qb) ->
                      if va.(qa) <> vb.(qb) then begin
                        movers := j :: !movers;
                        relsum := !relsum + fabric.Fabric.reloc.(j)
                      end)
                    common;
                  { relsum = !relsum; movers = Array.of_list !movers })
                steps.(i))
            steps.(i - 1)
        end)
  in
  { fabric; v; n; steps; tasks; trans; transitions = !transitions }

let transitions t = t.transitions

(* The changeover surcharge of one transition: v_j for every mover the
   matrix does not hyperreconfigure at this step. *)
let surcharge t bp i (tr : trans) =
  Array.fold_left
    (fun acc j -> if Breakpoints.is_break bp j i then acc else acc + t.v.(j))
    0 tr.movers

(* Backward sweep: togo.(i).(a) = cheapest relocation cost of steps
   i..n-1 starting from vector a at step i. *)
let cost_to_go t bp =
  let togo = Array.make t.n [||] in
  togo.(t.n - 1) <- Array.make (Array.length t.steps.(t.n - 1)) 0;
  for i = t.n - 1 downto 1 do
    let prev = Array.make (Array.length t.steps.(i - 1)) max_int in
    Array.iteri
      (fun a row ->
        let best = ref max_int in
        Array.iteri
          (fun b tr ->
            let c = tr.relsum + surcharge t bp i tr + togo.(i).(b) in
            if c < !best then best := c)
          row;
        prev.(a) <- !best)
      t.trans.(i);
    togo.(i - 1) <- prev
  done;
  togo

let min_cost t bp =
  let togo = cost_to_go t bp in
  Array.fold_left min max_int togo.(0)

(* Lex-smallest optimal schedule: vectors are stored in lex order, so
   taking the first consistent choice at every step yields the
   lexicographically smallest minimizer — the same schedule
   Place_brute's in-order strict-improvement enumeration keeps. *)
let plan t bp =
  let togo = cost_to_go t bp in
  let m = Fabric.m t.fabric in
  let p = Array.init m (fun _ -> Array.make t.n (-1)) in
  let place i a =
    Array.iteri (fun q j -> p.(j).(i) <- t.steps.(i).(a).(q)) t.tasks.(i)
  in
  let first pred arr =
    let rec go k = if pred arr.(k) k then k else go (k + 1) in
    go 0
  in
  let total = Array.fold_left min max_int togo.(0) in
  let a = ref (first (fun c _ -> c = total) togo.(0)) in
  place 0 !a;
  for i = 1 to t.n - 1 do
    let want = togo.(i - 1).(!a) in
    let row = t.trans.(i).(!a) in
    let b =
      first
        (fun tr b -> tr.relsum + surcharge t bp i tr + togo.(i).(b) = want)
        row
    in
    a := b;
    place i !a
  done;
  p
