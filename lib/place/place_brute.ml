open Hr_core

let bits p =
  let m = Problem.m p and n = Problem.n p in
  match p.Problem.machine_class with
  | Problem.All_task -> n - 1
  | Problem.Partial | Problem.Restricted -> (n - 1) * m

let max_mask_bits = 12
let max_pairs = 1 lsl 22

let feasible p =
  match Joint.fabric_of p with
  | None -> false
  | Some f ->
      let n = Problem.n p in
      n >= 1
      && bits p <= max_mask_bits
      &&
      (* Clamped product of per-step schedule choices × matrix count. *)
      let paths = ref 1 in
      (try
         for i = 0 to n - 1 do
           paths := !paths * Array.length (Fabric.vectors f i);
           if !paths > max_pairs then raise Exit
         done
       with Exit -> ());
      let masks = 1 lsl bits p in
      !paths <= max_pairs / masks

let solve p =
  let f =
    match Joint.fabric_of p with
    | Some f -> f
    | None -> invalid_arg "Place_brute.solve: problem carries no fabric"
  in
  if not (feasible p) then
    invalid_arg "Place_brute.solve: instance too large to enumerate";
  let m = Problem.m p and n = Problem.n p in
  let v = p.Problem.oracle.Interval_cost.v in
  let all_task = p.Problem.machine_class = Problem.All_task in
  let free = bits p in
  let vecs = Array.init n (Fabric.vectors f) in
  let tasks = Array.init n (Fabric.tasks_at f) in
  (* Per step the tasks resident at both it and its predecessor, with
     their positions in each step's vectors. *)
  let common =
    Array.init n (fun i ->
        if i = 0 then [||]
        else
          Array.of_list
            (List.filter_map
               (fun qa ->
                 let j = tasks.(i - 1).(qa) in
                 Option.map
                   (fun qb -> (j, qa, qb))
                   (Array.find_index (fun j' -> j' = j) tasks.(i)))
               (List.init (Array.length tasks.(i - 1)) Fun.id)))
  in
  let best_cost = ref max_int in
  let best_bp = ref (Breakpoints.create ~m ~n) in
  let best_sched = ref [||] in
  let best_path = Array.make n 0 in
  let path = Array.make n 0 in
  for mask = 0 to (1 lsl free) - 1 do
    let raw =
      if all_task then
        let row = Array.init n (fun i -> i = 0 || mask land (1 lsl (i - 1)) <> 0) in
        Array.init m (fun _ -> Array.copy row)
      else
        Array.init m (fun j ->
            Array.init n (fun i ->
                i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
    in
    let bp = Breakpoints.of_matrix raw in
    let base = Problem.eval_base p bp in
    (* Depth-first over schedules in lex order; strict improvement
       keeps the first optimum, and pruning on [acc >= best] discards
       only schedules that cannot strictly improve (step costs are
       non-negative). *)
    let best_reloc = ref max_int in
    let rec go i acc =
      if acc < !best_reloc then
        if i = n then begin
          best_reloc := acc;
          Array.blit path 0 best_path 0 n
        end
        else
          Array.iteri
            (fun b vb ->
              let step =
                if i = 0 then 0
                else
                  Array.fold_left
                    (fun s (j, qa, qb) ->
                      if vecs.(i - 1).(path.(i - 1)).(qa) <> vb.(qb) then
                        s + f.Fabric.reloc.(j)
                        + (if Breakpoints.is_break bp j i then 0 else v.(j))
                      else s)
                    0 common.(i)
              in
              path.(i) <- b;
              go (i + 1) (acc + step))
            vecs.(i)
    in
    (* Matrices whose base cost already reaches the incumbent cannot
       strictly improve the joint cost (relocation is non-negative) —
       skipping their schedule enumeration preserves the first strict
       minimum. *)
    if base < !best_cost then begin
      go 0 0;
      let joint = base + !best_reloc in
      if joint < !best_cost then begin
        best_cost := joint;
        best_bp := bp;
        (* Freeze the winning schedule now — best_path is reused by
           the next matrix. *)
        let placement = Array.init m (fun _ -> Array.make n (-1)) in
        for i = 0 to n - 1 do
          Array.iteri
            (fun q j -> placement.(j).(i) <- vecs.(i).(best_path.(i)).(q))
            tasks.(i)
        done;
        best_sched := placement
      end
    end
  done;
  (!best_cost, !best_bp, !best_sched)
