let load_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
      Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (Case.of_string contents)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      let files =
        List.filter (fun f -> Filename.check_suffix f ".json") (Array.to_list entries)
      in
      List.map
        (fun f -> (f, load_file (Filename.concat dir f)))
        (List.sort compare files)

let save ~dir ~name case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Case.to_string case));
  path
