(** Greedy case shrinking.

    Before a failure is reported, the runner reduces it: drop a task,
    halve or trim the step count, zero the upload parameters ([w],
    [pub], the [v_j]), relax the machine class to partial, make uploads
    task-parallel, and on placement cases drop or simplify the fabric
    (no fabric, zero relocation costs, unit sizes, full windows) —
    greedily keeping any reduction under which the failure still
    reproduces.  The result is the small instance a human debugs, and
    the one persisted to the corpus. *)

(** [candidates case] is the list of one-step reductions of [case],
    most aggressive first.  Every candidate is a valid case. *)
val candidates : Case.t -> Case.t list

(** [shrink ?fuel ~still_fails case] greedily applies the first failing
    candidate until none fails or [fuel] (default 500 predicate calls)
    runs out.  [still_fails] must be total — exceptions propagate. *)
val shrink : ?fuel:int -> still_fails:(Case.t -> bool) -> Case.t -> Case.t
