(** The differential conformance runner.

    Replays the corpus, generates random cases, solves each with every
    capable registered backend, evaluates the {!Invariant} catalogue,
    tallies a per-solver/per-invariant table, and greedily shrinks
    every failure before reporting it.  This is the engine behind the
    [hrcheck] CLI and the fuzz suite's conformance property. *)

type failure = {
  source : string;  (** ["case #17"] or ["corpus <file>"] *)
  solver : string;
  invariant : string;  (** an {!Invariant.t} name, or ["solve"] *)
  detail : string;
  seed : int;  (** the solver seed that reproduces it *)
  case : Case.t;  (** the instance as found *)
  shrunk : Case.t;  (** the greedily reduced instance *)
}

type summary

(** [check_case ?solvers ?invariants ?deadline_ms ~seed case] runs one
    case through every capable solver and returns the raw
    [(solver, invariant, detail)] failures, unshrunk — the cheap entry
    point for property tests.  [solvers] defaults to the full registry,
    [invariants] to {!Invariant.all}. *)
val check_case :
  ?solvers:Hr_core.Solver.t list ->
  ?invariants:Invariant.t list ->
  ?deadline_ms:int ->
  seed:int ->
  Case.t ->
  (string * string * string) list

(** [run ?solvers ?invariants ?profile ?deadline_ms ?corpus ?log ~cases
    ~seed ()] replays [corpus] (as [(label, case)] pairs), then draws
    [cases] random cases from {!Gen.case} seeded with [seed].  Each
    solver's RNG seed is derived from [seed] and the case index, so a
    reported failure replays from its [seed] alone.  [deadline_ms]
    bounds every solve with a fresh cooperative budget (the CI smoke
    uses this).  [log] receives one-line progress messages. *)
val run :
  ?solvers:Hr_core.Solver.t list ->
  ?invariants:Invariant.t list ->
  ?profile:Gen.profile ->
  ?deadline_ms:int ->
  ?corpus:(string * Case.t) list ->
  ?log:(string -> unit) ->
  cases:int ->
  seed:int ->
  unit ->
  summary * failure list

(** [cases_run s] is the number of cases executed (corpus + random). *)
val cases_run : summary -> int

(** [failed s] is [true] when any cell of the table recorded a
    failure. *)
val failed : summary -> bool

(** [table s] renders the per-solver/per-invariant pass table
    ({!Hr_util.Tablefmt}): a number is the pass count, ["-"] means the
    pair never applied, ["nF/mP"] flags [n] failures among [m]
    passes. *)
val table : summary -> string

(** [pp_failure] prints one failure: location, invariant, detail, and
    the shrunk case as replayable JSON. *)
val pp_failure : Format.formatter -> failure -> unit
