(** Seeded random generator of conformance cases.

    Draws a {!Case.t} spanning the paper's product space — oracle
    constructor (switch / weighted / chain-DAG), upload parameters
    ([w], [pub], task-parallel vs task-sequential), all four
    {!Hr_core.Mixed_sync.mode}s and all three machine classes — while
    skewing the size distribution toward instances where
    {!Hr_core.Brute.solve} is feasible, so the differential invariants
    have ground truth on most cases (a small [large_fraction] of draws
    exceed it on purpose, to exercise the skip paths).

    All randomness flows through the supplied {!Hr_util.Rng.t}: equal
    seeds reproduce equal case streams, which is how the CLI's
    [--seed] replays a failing run. *)

type profile = {
  max_m : int;  (** task-count ceiling for the tiny regime (>= 1) *)
  max_n : int;  (** step-count ceiling for the tiny regime (>= 1) *)
  max_width : int;  (** local switch-space ceiling (>= 1) *)
  large_fraction : float;
      (** probability of drawing an instance beyond the brute-feasible
          regime (solvers still run; brute-backed invariants skip) *)
  place_fraction : float;
      (** probability of attaching a random fabric
          ({!Hr_place.Fabric.t}) to a tiny (m <= 3) draw, turning it
          into a placement-aware case; fabrics are skewed so
          {!Hr_place.Place_brute} stays feasible on most of them *)
}

(** m <= 3, n <= 6, width <= 5, 8% large, 25% placement — every tiny
    draw satisfies [Brute.feasible ~max_bits:16]. *)
val default_profile : profile

(** [case ?profile rng] draws one case.  The result always satisfies
    {!Case.of_string} ∘ {!Case.to_string} = identity and builds a valid
    {!Hr_core.Problem.t}. *)
val case : ?profile:profile -> Hr_util.Rng.t -> Case.t
