open Hr_core

type oracle_spec =
  | Switch of { widths : int array; vs : int array; reqs : int list list array }
  | Weighted of {
      widths : int array;
      reqs : int list list array;
      weights : int array array;
    }
  | Dag of {
      num_contexts : int;
      w : int;
      costs : int array;
      sat_sizes : int array;
      seq : int array;
    }

type t = {
  spec : oracle_spec;
  params : Sync_cost.params;
  mode : Mixed_sync.mode;
  machine_class : Problem.machine_class;
  place : Hr_place.Fabric.t option;
}

let case_schema_version = "hyperreconf.case/1"
let schema_version = case_schema_version

let m t =
  match t.spec with
  | Switch { widths; _ } | Weighted { widths; _ } -> Array.length widths
  | Dag _ -> 1

let n t =
  match t.spec with
  | Switch { reqs; _ } | Weighted { reqs; _ } -> List.length reqs.(0)
  | Dag { seq; _ } -> Array.length seq

let task_set widths vs reqs =
  Task_set.make
    (Array.init (Array.length widths) (fun j ->
         Task_set.task
           ~name:(Printf.sprintf "T%d" j)
           ~v:vs.(j)
           (Trace.of_lists (Switch_space.make widths.(j)) reqs.(j))))

(* The oracle's partial-hyperreconfiguration costs, derivable from the
   spec without building the oracle (the cached fast path in [problem]
   needs them before — instead of — the O(m·n²) construction). *)
let oracle_v t =
  match t.spec with
  | Switch { vs; _ } -> Array.copy vs
  | Weighted { weights; _ } ->
      (* Weighted.oracle derives each v_j from the task's total local
         weight. *)
      Array.map (Array.fold_left ( + ) 0) weights
  | Dag { w; _ } -> [| w |]

let build_oracle ?policy t =
  match t.spec with
  | Switch { widths; vs; reqs } ->
      Interval_cost.of_task_set ?policy (task_set widths vs reqs)
  | Weighted { widths; reqs; weights } ->
      (* The task-set vs are placeholders; see [oracle_v]. *)
      let vs = Array.map (fun _ -> 0) widths in
      Weighted.oracle (task_set widths vs reqs) ~weights
  | Dag { num_contexts; w; costs; sat_sizes; seq } ->
      let sats =
        Array.map
          (fun size -> Hr_util.Bitset.of_list num_contexts (List.init size Fun.id))
          sat_sizes
      in
      let model = Dag_model.chain ~num_contexts ~w ~costs ~sats in
      Dag_model.oracle ~v:[| w |] [| model |] [| seq |]

let model_name t =
  match t.spec with Switch _ -> "switch" | Weighted _ -> "weighted" | Dag _ -> "dag"

let upload_name = function
  | Sync_cost.Task_parallel -> "parallel"
  | Sync_cost.Task_sequential -> "sequential"

let class_name = function
  | Problem.All_task -> "all-task"
  | Problem.Partial -> "partial"
  | Problem.Restricted -> "restricted"

let summary t =
  Format.asprintf "%s m=%d n=%d %s %a w=%d pub=%d hyper=%s reconf=%s%s"
    (model_name t) (m t) (n t)
    (class_name t.machine_class)
    Mixed_sync.pp_mode t.mode t.params.Sync_cost.w t.params.Sync_cost.pub
    (upload_name t.params.Sync_cost.hyper)
    (upload_name t.params.Sync_cost.reconf)
    (match t.place with
    | None -> ""
    | Some f -> " fabric " ^ Hr_place.Fabric.summary f)

(* ------------------------------------------------------------------ *)
(* JSON encoding.                                                      *)

open Telemetry

let ints arr = List (Array.to_list (Array.map (fun i -> Int i) arr))
let int_list l = List (List.map (fun i -> Int i) l)
let reqs_json reqs = List (Array.to_list (Array.map (fun task -> List (List.map int_list task)) reqs))

let spec_to_json = function
  | Switch { widths; vs; reqs } ->
      Obj
        [
          ("model", String "switch");
          ("widths", ints widths);
          ("vs", ints vs);
          ("reqs", reqs_json reqs);
        ]
  | Weighted { widths; reqs; weights } ->
      Obj
        [
          ("model", String "weighted");
          ("widths", ints widths);
          ("reqs", reqs_json reqs);
          ("weights", List (Array.to_list (Array.map ints weights)));
        ]
  | Dag { num_contexts; w; costs; sat_sizes; seq } ->
      Obj
        [
          ("model", String "dag");
          ("num_contexts", Int num_contexts);
          ("w", Int w);
          ("costs", ints costs);
          ("sat_sizes", ints sat_sizes);
          ("seq", ints seq);
        ]

let mode_name = function
  | Mixed_sync.Fully_synchronized -> "fully-synchronized"
  | Mixed_sync.Hypercontext_synchronized -> "hypercontext-synchronized"
  | Mixed_sync.Context_synchronized -> "context-synchronized"
  | Mixed_sync.Non_synchronized -> "non-synchronized"

let fabric_to_json (f : Hr_place.Fabric.t) =
  Obj
    [
      ("width", Int f.Hr_place.Fabric.width);
      ("sizes", ints f.Hr_place.Fabric.sizes);
      ( "windows",
        List
          (Array.to_list
             (Array.map
                (fun (a, d) -> List [ Int a; Int d ])
                f.Hr_place.Fabric.windows)) );
      ("reloc", ints f.Hr_place.Fabric.reloc);
    ]

let to_json t =
  Obj
    ([
       ("schema", String case_schema_version);
       ("oracle", spec_to_json t.spec);
       ( "params",
         Obj
           [
             ("w", Int t.params.Sync_cost.w);
             ("pub", Int t.params.Sync_cost.pub);
             ("hyper", String (upload_name t.params.Sync_cost.hyper));
             ("reconf", String (upload_name t.params.Sync_cost.reconf));
           ] );
       ("mode", String (mode_name t.mode));
       ("machine_class", String (class_name t.machine_class));
     ]
    @
    (* The "fabric" field is additive: plain cases serialize exactly as
       under schema /1 before the placement family existed. *)
    match t.place with
    | None -> []
    | Some f -> [ ("fabric", fabric_to_json f) ])

let to_string t = json_to_string (to_json t)

(* ------------------------------------------------------------------ *)
(* Problem building.                                                   *)

(* The Table_cache key: a digest of the canonical oracle-spec JSON —
   exactly the oracle inputs, nothing else (params/mode/class do not
   change the dense tables, so cases differing only there share one
   table file). *)
let oracle_key t = Digest.to_hex (Digest.string (json_to_string (spec_to_json t.spec)))

let problem ?max_table_bytes ?cache_dir ?oracle t =
  let mk = Problem.make ~params:t.params ~mode:t.mode ~machine_class:t.machine_class in
  (* The fabric extends the problem after the oracle is built — on the
     warm cache path too, since the dense tables are fabric-independent. *)
  let extend p =
    match t.place with None -> p | Some f -> Hr_place.Joint.attach p f
  in
  extend
    (match (oracle, cache_dir) with
    (* A forced-sparse oracle never touches the dense table cache —
       neither the warm mmap path nor the write-back make sense for an
       index that is rebuilt in O(input). *)
    | Some Interval_cost.Sparse, _ ->
        mk ?max_bytes:max_table_bytes (build_oracle ?policy:oracle t)
    | _, None -> mk ?max_bytes:max_table_bytes (build_oracle ?policy:oracle t)
    | _, Some dir -> (
        let cache = Table_cache.of_dir dir in
        let key = oracle_key t in
        (* Warm path: reconstruct the oracle straight from the mapped
           table.  Even the oracle constructors are O(m·n²) (range-union
           builds), so a hit must skip them entirely — m, n and v are
           derivable from the spec in O(input). *)
        match Interval_cost.of_cache cache ~key ~m:(m t) ~n:(n t) ~v:(oracle_v t) with
        | Some oracle -> mk oracle
        | None ->
            mk ?max_bytes:max_table_bytes ~cache_dir:dir ~cache_key:key
              (build_oracle ?policy:oracle t)))

(* ------------------------------------------------------------------ *)
(* JSON decoding with validation.  Everything funnels through [check]
   so a hand-edited corpus file fails with a message, never an
   exception from deep inside an oracle constructor. *)

let ( let* ) = Result.bind

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error (Printf.sprintf "expected an object with field %S" name)

let as_int = function Int i -> Ok i | _ -> Error "expected an integer"
let as_string = function String s -> Ok s | _ -> Error "expected a string"
let as_list = function List l -> Ok l | _ -> Error "expected an array"

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    l (Ok [])

let int_array j =
  let* l = as_list j in
  let* is = map_result as_int l in
  Ok (Array.of_list is)

let check cond msg = if cond then Ok () else Error msg

let in_field name r =
  Result.map_error (fun e -> Printf.sprintf "%s: %s" name e) r

let parse_reqs widths j =
  let* tasks = as_list j in
  let* reqs =
    map_result
      (fun task ->
        let* steps = as_list task in
        map_result
          (fun step ->
            let* ids = as_list step in
            map_result as_int ids)
          steps)
      tasks
  in
  let reqs = Array.of_list reqs in
  let* () =
    check (Array.length reqs = Array.length widths) "reqs arity <> widths arity"
  in
  let* () =
    check
      (Array.length reqs = 0
      || Array.for_all (fun r -> List.length r = List.length reqs.(0)) reqs)
      "tasks have different step counts"
  in
  let* () =
    check (Array.length reqs > 0 && List.length reqs.(0) >= 1) "need >= 1 step"
  in
  let ok_ids j ids = List.for_all (fun i -> i >= 0 && i < widths.(j)) ids in
  let* () =
    check
      (Array.for_all Fun.id (Array.mapi (fun j task -> List.for_all (ok_ids j) task) reqs))
      "switch index out of range"
  in
  Ok reqs

let spec_of_json j =
  let* model = in_field "model" (Result.bind (field "model" j) as_string) in
  match model with
  | "switch" ->
      let* widths = in_field "widths" (Result.bind (field "widths" j) int_array) in
      let* () = check (Array.length widths >= 1) "need >= 1 task" in
      let* () = check (Array.for_all (fun w -> w >= 1) widths) "widths must be >= 1" in
      let* vs = in_field "vs" (Result.bind (field "vs" j) int_array) in
      let* () = check (Array.length vs = Array.length widths) "vs arity <> widths arity" in
      let* () = check (Array.for_all (fun v -> v >= 0) vs) "vs must be >= 0" in
      let* reqs = in_field "reqs" (Result.bind (field "reqs" j) (parse_reqs widths)) in
      Ok (Switch { widths; vs; reqs })
  | "weighted" ->
      let* widths = in_field "widths" (Result.bind (field "widths" j) int_array) in
      let* () = check (Array.length widths >= 1) "need >= 1 task" in
      let* () = check (Array.for_all (fun w -> w >= 1) widths) "widths must be >= 1" in
      let* reqs = in_field "reqs" (Result.bind (field "reqs" j) (parse_reqs widths)) in
      let* weights =
        in_field "weights"
          (let* l = Result.bind (field "weights" j) as_list in
           let* ws = map_result int_array l in
           Ok (Array.of_list ws))
      in
      let* () =
        check (Array.length weights = Array.length widths) "weights arity <> widths arity"
      in
      let* () =
        check
          (Array.for_all Fun.id
             (Array.mapi (fun j ws -> Array.length ws = widths.(j)) weights))
          "weights.(j) arity <> widths.(j)"
      in
      let* () =
        check
          (Array.for_all (Array.for_all (fun w -> w >= 1)) weights)
          "weights must be >= 1"
      in
      Ok (Weighted { widths; reqs; weights })
  | "dag" ->
      let* num_contexts =
        in_field "num_contexts" (Result.bind (field "num_contexts" j) as_int)
      in
      let* () = check (num_contexts >= 1) "num_contexts must be >= 1" in
      let* w = in_field "w" (Result.bind (field "w" j) as_int) in
      let* () = check (w >= 0) "w must be >= 0" in
      let* costs = in_field "costs" (Result.bind (field "costs" j) int_array) in
      let* () = check (Array.length costs >= 1) "need >= 1 hypercontext" in
      let* () = check (Array.for_all (fun c -> c >= 1) costs) "costs must be >= 1" in
      let sorted arr cmp =
        let ok = ref true in
        for i = 0 to Array.length arr - 2 do
          if not (cmp arr.(i) arr.(i + 1)) then ok := false
        done;
        !ok
      in
      let* () = check (sorted costs ( <= )) "costs must be non-decreasing" in
      let* sat_sizes =
        in_field "sat_sizes" (Result.bind (field "sat_sizes" j) int_array)
      in
      let* () =
        check (Array.length sat_sizes = Array.length costs) "sat_sizes arity <> costs"
      in
      let* () = check (sorted sat_sizes ( < )) "sat_sizes must be strictly increasing" in
      let* () =
        check
          (Array.length sat_sizes > 0
          && sat_sizes.(0) >= 1
          && sat_sizes.(Array.length sat_sizes - 1) = num_contexts)
          "sat_sizes must end at num_contexts"
      in
      let* seq = in_field "seq" (Result.bind (field "seq" j) int_array) in
      let* () = check (Array.length seq >= 1) "need >= 1 step" in
      let* () =
        check
          (Array.for_all (fun c -> c >= 0 && c < num_contexts) seq)
          "seq entry out of context range"
      in
      Ok (Dag { num_contexts; w; costs; sat_sizes; seq })
  | other -> Error (Printf.sprintf "unknown model %S" other)

let upload_of_name = function
  | "parallel" -> Ok Sync_cost.Task_parallel
  | "sequential" -> Ok Sync_cost.Task_sequential
  | s -> Error (Printf.sprintf "unknown upload mode %S" s)

let mode_of_name = function
  | "fully-synchronized" -> Ok Mixed_sync.Fully_synchronized
  | "hypercontext-synchronized" -> Ok Mixed_sync.Hypercontext_synchronized
  | "context-synchronized" -> Ok Mixed_sync.Context_synchronized
  | "non-synchronized" -> Ok Mixed_sync.Non_synchronized
  | s -> Error (Printf.sprintf "unknown mode %S" s)

let class_of_name = function
  | "all-task" -> Ok Problem.All_task
  | "partial" -> Ok Problem.Partial
  | "restricted" -> Ok Problem.Restricted
  | s -> Error (Printf.sprintf "unknown machine class %S" s)

let of_json j =
  let* schema = in_field "schema" (Result.bind (field "schema" j) as_string) in
  let* () =
    check (schema = case_schema_version)
      (Printf.sprintf "schema %S, expected %S" schema case_schema_version)
  in
  let* oracle = field "oracle" j in
  let* spec = in_field "oracle" (spec_of_json oracle) in
  let* pj = field "params" j in
  let* w = in_field "params.w" (Result.bind (field "w" pj) as_int) in
  let* pub = in_field "params.pub" (Result.bind (field "pub" pj) as_int) in
  let* () = check (w >= 0 && pub >= 0) "params must be >= 0" in
  let* hyper =
    in_field "params.hyper"
      (Result.bind (Result.bind (field "hyper" pj) as_string) upload_of_name)
  in
  let* reconf =
    in_field "params.reconf"
      (Result.bind (Result.bind (field "reconf" pj) as_string) upload_of_name)
  in
  let* mode =
    in_field "mode" (Result.bind (Result.bind (field "mode" j) as_string) mode_of_name)
  in
  let* machine_class =
    in_field "machine_class"
      (Result.bind (Result.bind (field "machine_class" j) as_string) class_of_name)
  in
  (* Mirror Problem.make's mode/params compatibility rules so corpus
     errors surface as Error, not Invalid_argument at build time. *)
  let* () =
    match mode with
    | Mixed_sync.Fully_synchronized -> Ok ()
    | _ ->
        let* () = check (w = 0) "nonzero w needs the fully synchronized mode" in
        let* () =
          check
            (hyper = Sync_cost.Task_parallel && reconf = Sync_cost.Task_parallel)
            "sequential uploads need the fully synchronized mode"
        in
        check
          (pub = 0 || mode = Mixed_sync.Context_synchronized)
          "pub > 0 needs context or full synchronization"
  in
  let partial = { spec; params = { Sync_cost.w; pub; hyper; reconf }; mode; machine_class; place = None } in
  match field "fabric" j with
  | Error _ -> Ok partial
  | Ok fj ->
      let* width = in_field "fabric.width" (Result.bind (field "width" fj) as_int) in
      let* sizes = in_field "fabric.sizes" (Result.bind (field "sizes" fj) int_array) in
      let* windows =
        in_field "fabric.windows"
          (let* l = Result.bind (field "windows" fj) as_list in
           let* ws =
             map_result
               (fun wj ->
                 let* pair = Result.bind (as_list wj) (map_result as_int) in
                 match pair with
                 | [ a; d ] -> Ok (a, d)
                 | _ -> Error "window must be a [start, end] pair")
               l
           in
           Ok (Array.of_list ws))
      in
      let* reloc = in_field "fabric.reloc" (Result.bind (field "reloc" fj) int_array) in
      let fabric = { Hr_place.Fabric.width; sizes; windows; reloc } in
      let* () =
        in_field "fabric"
          (let* () =
             check (Array.length sizes = m partial) "fabric arity <> task count"
           in
           Hr_place.Fabric.check ~n:(n partial) fabric)
      in
      Ok { partial with place = Some fabric }

let of_string s =
  let* j = json_of_string s in
  of_json j
