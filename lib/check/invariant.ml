open Hr_core

type verdict = Pass | Fail of string | Skip of string

type ctx = {
  case : Case.t;
  problem : Problem.t;
  solver : Solver.t;
  solution : Solution.t;
  optimum : int option;
  seed : int;
}

type t = { name : string; doc : string; check : ctx -> verdict }

let admissible =
  {
    name = "admissible";
    doc = "returned plan is admissible for the machine class";
    check =
      (fun ctx ->
        if Problem.admissible ctx.problem ctx.solution.Solution.bp then Pass
        else Fail "plan violates the machine class");
  }

let cost_consistent =
  {
    name = "cost-eval";
    doc = "reported cost = Problem.eval of the returned plan";
    check =
      (fun ctx ->
        let c = Problem.eval ctx.problem ctx.solution.Solution.bp in
        if c = ctx.solution.Solution.cost then Pass
        else
          Fail
            (Printf.sprintf "reported %d but the plan evaluates to %d"
               ctx.solution.Solution.cost c));
  }

let bounded_below =
  {
    name = "ge-brute";
    doc = "no solution beats the brute-force optimum";
    check =
      (fun ctx ->
        match ctx.optimum with
        | None -> Skip "brute infeasible"
        | Some opt ->
            if ctx.solution.Solution.cost >= opt then Pass
            else
              Fail
                (Printf.sprintf "cost %d below the optimum %d — brute or solver wrong"
                   ctx.solution.Solution.cost opt));
  }

let exact_optimal =
  {
    name = "exact-brute";
    doc = "exact claims match the brute-force optimum";
    check =
      (fun ctx ->
        match ctx.optimum with
        | None -> Skip "brute infeasible"
        | Some opt ->
            if not ctx.solution.Solution.exact then Skip "inexact result"
            else if ctx.solution.Solution.cost = opt then Pass
            else
              Fail
                (Printf.sprintf "claims exact at cost %d, optimum is %d"
                   ctx.solution.Solution.cost opt));
  }

(* Uniformly scaling every cost source — step costs, v_j, w, pub — by k
   scales any fixed plan's cost by exactly k: every mode's objective is
   a sum/max composition of those parameters. *)
let scale_factor = 3

let scale_problem k (p : Problem.t) =
  let o = p.Problem.oracle in
  let oracle =
    Interval_cost.make ~m:o.Interval_cost.m ~n:o.Interval_cost.n
      ~v:(Array.map (fun v -> k * v) o.Interval_cost.v)
      ~step_cost:(fun j lo hi -> k * o.Interval_cost.step_cost j lo hi)
  in
  let params =
    {
      p.Problem.params with
      Sync_cost.w = k * p.Problem.params.Sync_cost.w;
      pub = k * p.Problem.params.Sync_cost.pub;
    }
  in
  Problem.make ~params ~mode:p.Problem.mode ~machine_class:p.Problem.machine_class
    ~precompute:false oracle

let scale_linear =
  {
    name = "scale-mono";
    doc = "cost scales linearly under uniform oracle scaling";
    check =
      (fun ctx ->
        let scaled = scale_problem scale_factor ctx.problem in
        let c = Problem.eval scaled ctx.solution.Solution.bp in
        let expected = scale_factor * ctx.solution.Solution.cost in
        if c = expected then Pass
        else
          Fail
            (Printf.sprintf "x%d-scaled oracle evaluates the plan to %d, expected %d"
               scale_factor c expected));
  }

let cutoff_safe =
  {
    name = "cutoff-safe";
    doc = "an exhausted budget still yields an admissible, consistent plan";
    check =
      (fun ctx ->
        let budget = Hr_util.Budget.of_deadline_ms 0 in
        match Solver.solve ~seed:ctx.seed ~budget ctx.solver ctx.problem with
        | exception e ->
            Fail ("raised under an exhausted budget: " ^ Printexc.to_string e)
        | sol ->
            if not (Problem.admissible ctx.problem sol.Solution.bp) then
              Fail "cut-off plan violates the machine class"
            else if Problem.eval ctx.problem sol.Solution.bp <> sol.Solution.cost then
              Fail "cut-off plan's cost is not Problem.eval of its matrix"
            else if sol.Solution.cut_off && sol.Solution.exact then
              Fail "claims exactness while cut off"
            else Pass);
  }

(* The batch service is a pure wrapper: routing a solve through
   Batch.run (pool scheduling, budget carving, key-dedup cache) must
   not change the answer.  Both sides run a fresh unlimited-budget
   solve with the ctx seed — never the ctx solution, which may have
   been cut off by a wall-clock deadline and would compare flakily. *)
let batch_matches_single =
  {
    name = "batch-single";
    doc = "Batch.run equals the direct Solver.solve, bit for bit";
    check =
      (fun ctx ->
        let direct = Solver.solve ~seed:ctx.seed ctx.solver ctx.problem in
        let req =
          Batch.request ~id:"batch-single" (fun () -> Case.problem ctx.case)
        in
        match
          (Batch.run ~seed:ctx.seed ~solvers:(fun _ -> [ ctx.solver ]) [ req ])
            .Batch.responses
        with
        | [ { Batch.outcome = Ok solved; _ } ] ->
            let b = solved.Batch.solution in
            if
              b.Solution.cost = direct.Solution.cost
              && b.Solution.exact = direct.Solution.exact
              && Breakpoints.equal b.Solution.bp direct.Solution.bp
            then Pass
            else
              Fail
                (Printf.sprintf
                   "batched solve differs: cost %d/exact %b vs direct cost %d/exact %b"
                   b.Solution.cost b.Solution.exact direct.Solution.cost
                   direct.Solution.exact)
        | [ { Batch.outcome = Error e; _ } ] -> Fail ("batched solve errored: " ^ e)
        | rs -> Fail (Printf.sprintf "batch returned %d responses for 1 request" (List.length rs)));
  }

(* One table-cache directory per hrcheck process, populated lazily: the
   first case pays a cold build + store, every case (including that one)
   then solves against the mmap-loaded table and must match the
   plain in-memory build bit for bit. *)
let cache_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "hrcheck-table-cache-%d" (Unix.getpid ()))
     in
     at_exit (fun () ->
         match Sys.readdir dir with
         | entries ->
             Array.iter
               (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
               entries;
             (try Unix.rmdir dir with Unix.Unix_error _ -> ())
         | exception Sys_error _ -> ());
     dir)

let cached_matches_fresh =
  {
    name = "cache-fresh";
    doc = "a table-cache-served problem solves identically to a fresh build";
    check =
      (fun ctx ->
        let dir = Lazy.force cache_dir in
        (* Cold pass: build and persist the dense table (a no-op when an
           earlier case with the same oracle already stored it). *)
        ignore (Case.problem ~cache_dir:dir ctx.case);
        (* Warm pass: must be served from the file. *)
        let warm = Case.problem ~cache_dir:dir ctx.case in
        let direct = Solver.solve ~seed:ctx.seed ctx.solver ctx.problem in
        match Solver.solve ~seed:ctx.seed ctx.solver warm with
        | exception e -> Fail ("cached problem solve raised: " ^ Printexc.to_string e)
        | cached ->
            if
              cached.Solution.cost = direct.Solution.cost
              && cached.Solution.exact = direct.Solution.exact
              && Breakpoints.equal cached.Solution.bp direct.Solution.bp
            then Pass
            else
              Fail
                (Printf.sprintf
                   "cache-served solve differs: cost %d/exact %b vs direct cost %d/exact %b"
                   cached.Solution.cost cached.Solution.exact direct.Solution.cost
                   direct.Solution.exact));
  }

let plan_roundtrip =
  {
    name = "plan-io";
    doc = "the plan survives a Plan_io round-trip";
    check =
      (fun ctx ->
        let bp = ctx.solution.Solution.bp in
        match Plan_io.of_string (Plan_io.to_string bp) with
        | exception Failure msg -> Fail ("round-trip rejected the plan: " ^ msg)
        | bp' ->
            if Breakpoints.equal bp bp' then Pass
            else Fail "round-tripped plan differs");
  }

let online_replay =
  {
    name = "online-replay";
    doc = "prefix solve + trace extension matches the one-shot online DP";
    check =
      (fun ctx ->
        match ctx.case.Case.spec with
        | Case.Weighted _ | Case.Dag _ -> Skip "switch cases only"
        | Case.Switch { widths; vs; reqs } ->
            let n = Case.n ctx.case in
            if n < 2 then Skip "single-step trace"
            else if
              not
                (Online_dp.supports ctx.problem
                && Online_dp.exact_ok ctx.problem)
            then Skip "outside the online DP's exact regime"
            else begin
              (* Replay the case as a two-event stream: solve the first
                 half of the trace, then extend to the full horizon.
                 The incremental frontier must land on the one-shot
                 answer bit for bit. *)
              let h = n / 2 in
              let prefix =
                {
                  ctx.case with
                  Case.spec =
                    Case.Switch
                      {
                        widths;
                        vs;
                        reqs =
                          Array.map
                            (fun l -> List.filteri (fun i _ -> i < h) l)
                            reqs;
                      };
                }
              in
              let inc =
                Online_dp.extend
                  (Online_dp.start (Case.problem prefix))
                  ctx.problem
              in
              let one = Online_dp.solution (Online_dp.start ctx.problem) in
              let sinc = Online_dp.solution inc in
              if sinc.Solution.cost <> one.Solution.cost then
                Fail
                  (Printf.sprintf
                     "incremental re-solve costs %d, one-shot costs %d"
                     sinc.Solution.cost one.Solution.cost)
              else if not (Breakpoints.equal sinc.Solution.bp one.Solution.bp)
              then Fail "incremental and one-shot plans differ"
              else if
                ctx.solution.Solution.exact
                && ctx.solution.Solution.cost <> sinc.Solution.cost
              then
                Fail
                  (Printf.sprintf
                     "solver claims exact cost %d, online DP optimum is %d"
                     ctx.solution.Solution.cost sinc.Solution.cost)
              else if ctx.solution.Solution.cost < sinc.Solution.cost then
                Fail
                  (Printf.sprintf
                     "solver cost %d beats the exact online DP's %d"
                     ctx.solution.Solution.cost sinc.Solution.cost)
              else Pass
            end);
  }

let all =
  [
    admissible;
    cost_consistent;
    bounded_below;
    exact_optimal;
    scale_linear;
    cutoff_safe;
    batch_matches_single;
    cached_matches_fresh;
    plan_roundtrip;
    online_replay;
  ]

let verdict_name = function Pass -> "pass" | Fail _ -> "fail" | Skip _ -> "skip"

let find name = List.find_opt (fun i -> i.name = name) all
