open Hr_core

type verdict = Pass | Fail of string | Skip of string

type ctx = {
  case : Case.t;
  problem : Problem.t;
  solver : Solver.t;
  solution : Solution.t;
  optimum : int option;
  seed : int;
}

type t = { name : string; doc : string; check : ctx -> verdict }

let admissible =
  {
    name = "admissible";
    doc = "returned plan is admissible for the machine class";
    check =
      (fun ctx ->
        if Problem.admissible ctx.problem ctx.solution.Solution.bp then Pass
        else Fail "plan violates the machine class");
  }

let cost_consistent =
  {
    name = "cost-eval";
    doc = "reported cost = Problem.eval of the returned plan";
    check =
      (fun ctx ->
        let c = Problem.eval ctx.problem ctx.solution.Solution.bp in
        if c = ctx.solution.Solution.cost then Pass
        else
          Fail
            (Printf.sprintf "reported %d but the plan evaluates to %d"
               ctx.solution.Solution.cost c));
  }

let bounded_below =
  {
    name = "ge-brute";
    doc = "no solution beats the brute-force optimum";
    check =
      (fun ctx ->
        match ctx.optimum with
        | None -> Skip "brute infeasible"
        | Some opt ->
            if ctx.solution.Solution.cost >= opt then Pass
            else
              Fail
                (Printf.sprintf "cost %d below the optimum %d — brute or solver wrong"
                   ctx.solution.Solution.cost opt));
  }

let exact_optimal =
  {
    name = "exact-brute";
    doc = "exact claims match the brute-force optimum";
    check =
      (fun ctx ->
        match ctx.optimum with
        | None -> Skip "brute infeasible"
        | Some opt ->
            if not ctx.solution.Solution.exact then Skip "inexact result"
            else if ctx.solution.Solution.cost = opt then Pass
            else
              Fail
                (Printf.sprintf "claims exact at cost %d, optimum is %d"
                   ctx.solution.Solution.cost opt));
  }

(* Uniformly scaling every cost source — step costs, v_j, w, pub — by k
   scales any fixed plan's cost by exactly k: every mode's objective is
   a sum/max composition of those parameters. *)
let scale_factor = 3

let scale_problem k (p : Problem.t) =
  let o = p.Problem.oracle in
  let oracle =
    Interval_cost.make ~m:o.Interval_cost.m ~n:o.Interval_cost.n
      ~v:(Array.map (fun v -> k * v) o.Interval_cost.v)
      ~step_cost:(fun j lo hi -> k * o.Interval_cost.step_cost j lo hi)
  in
  let params =
    {
      p.Problem.params with
      Sync_cost.w = k * p.Problem.params.Sync_cost.w;
      pub = k * p.Problem.params.Sync_cost.pub;
    }
  in
  (* An extension scales its own cost sources (relocation costs and the
     v_j surcharge for placement) — dropping it here would silently
     weaken scale-mono to the base objective on extended cases. *)
  Problem.make ~params ~mode:p.Problem.mode ~machine_class:p.Problem.machine_class
    ~precompute:false
    ?ext:(Option.map (fun (e : Problem.extension) -> e.Problem.scale k) p.Problem.ext)
    oracle

let scale_linear =
  {
    name = "scale-mono";
    doc = "cost scales linearly under uniform oracle scaling";
    check =
      (fun ctx ->
        let scaled = scale_problem scale_factor ctx.problem in
        let c = Problem.eval scaled ctx.solution.Solution.bp in
        let expected = scale_factor * ctx.solution.Solution.cost in
        if c = expected then Pass
        else
          Fail
            (Printf.sprintf "x%d-scaled oracle evaluates the plan to %d, expected %d"
               scale_factor c expected));
  }

let cutoff_safe =
  {
    name = "cutoff-safe";
    doc = "an exhausted budget still yields an admissible, consistent plan";
    check =
      (fun ctx ->
        let budget = Hr_util.Budget.of_deadline_ms 0 in
        match Solver.solve ~seed:ctx.seed ~budget ctx.solver ctx.problem with
        | exception e ->
            Fail ("raised under an exhausted budget: " ^ Printexc.to_string e)
        | sol ->
            if not (Problem.admissible ctx.problem sol.Solution.bp) then
              Fail "cut-off plan violates the machine class"
            else if Problem.eval ctx.problem sol.Solution.bp <> sol.Solution.cost then
              Fail "cut-off plan's cost is not Problem.eval of its matrix"
            else if sol.Solution.cut_off && sol.Solution.exact then
              Fail "claims exactness while cut off"
            else Pass);
  }

(* The batch service is a pure wrapper: routing a solve through
   Batch.run (pool scheduling, budget carving, key-dedup cache) must
   not change the answer.  Both sides run a fresh unlimited-budget
   solve with the ctx seed — never the ctx solution, which may have
   been cut off by a wall-clock deadline and would compare flakily. *)
let batch_matches_single =
  {
    name = "batch-single";
    doc = "Batch.run equals the direct Solver.solve, bit for bit";
    check =
      (fun ctx ->
        let direct = Solver.solve ~seed:ctx.seed ctx.solver ctx.problem in
        let req =
          Batch.request ~id:"batch-single" (fun () -> Case.problem ctx.case)
        in
        match
          (Batch.run ~seed:ctx.seed ~solvers:(fun _ -> [ ctx.solver ]) [ req ])
            .Batch.responses
        with
        | [ { Batch.outcome = Ok solved; _ } ] ->
            let b = solved.Batch.solution in
            if
              b.Solution.cost = direct.Solution.cost
              && b.Solution.exact = direct.Solution.exact
              && Breakpoints.equal b.Solution.bp direct.Solution.bp
            then Pass
            else
              Fail
                (Printf.sprintf
                   "batched solve differs: cost %d/exact %b vs direct cost %d/exact %b"
                   b.Solution.cost b.Solution.exact direct.Solution.cost
                   direct.Solution.exact)
        | [ { Batch.outcome = Error e; _ } ] -> Fail ("batched solve errored: " ^ e)
        | rs -> Fail (Printf.sprintf "batch returned %d responses for 1 request" (List.length rs)));
  }

(* One table-cache directory per hrcheck process, populated lazily: the
   first case pays a cold build + store, every case (including that one)
   then solves against the mmap-loaded table and must match the
   plain in-memory build bit for bit. *)
let cache_dir =
  lazy
    (let dir =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "hrcheck-table-cache-%d" (Unix.getpid ()))
     in
     at_exit (fun () ->
         match Sys.readdir dir with
         | entries ->
             Array.iter
               (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
               entries;
             (try Unix.rmdir dir with Unix.Unix_error _ -> ())
         | exception Sys_error _ -> ());
     dir)

let cached_matches_fresh =
  {
    name = "cache-fresh";
    doc = "a table-cache-served problem solves identically to a fresh build";
    check =
      (fun ctx ->
        let dir = Lazy.force cache_dir in
        (* Cold pass: build and persist the dense table (a no-op when an
           earlier case with the same oracle already stored it). *)
        ignore (Case.problem ~cache_dir:dir ctx.case);
        (* Warm pass: must be served from the file. *)
        let warm = Case.problem ~cache_dir:dir ctx.case in
        let direct = Solver.solve ~seed:ctx.seed ctx.solver ctx.problem in
        match Solver.solve ~seed:ctx.seed ctx.solver warm with
        | exception e -> Fail ("cached problem solve raised: " ^ Printexc.to_string e)
        | cached ->
            if
              cached.Solution.cost = direct.Solution.cost
              && cached.Solution.exact = direct.Solution.exact
              && Breakpoints.equal cached.Solution.bp direct.Solution.bp
            then Pass
            else
              Fail
                (Printf.sprintf
                   "cache-served solve differs: cost %d/exact %b vs direct cost %d/exact %b"
                   cached.Solution.cost cached.Solution.exact direct.Solution.cost
                   direct.Solution.exact));
  }

(* The sparse Occ_index oracle must be observationally identical to the
   dense tables: same step costs, hence the same solve, bit for bit.
   Both sides run fresh unlimited-budget solves (the ctx solution may
   have been deadline-cut). *)
let oracle_agree =
  {
    name = "oracle-agree";
    doc = "forced-sparse oracle solves identically to the dense build";
    check =
      (fun ctx ->
        match ctx.case.Case.spec with
        | Case.Weighted _ | Case.Dag _ -> Skip "switch cases only"
        | Case.Switch _ -> (
            let direct = Solver.solve ~seed:ctx.seed ctx.solver ctx.problem in
            let sparse_problem =
              Case.problem ~oracle:Interval_cost.Sparse ctx.case
            in
            match Solver.solve ~seed:ctx.seed ctx.solver sparse_problem with
            | exception e ->
                Fail ("sparse-oracle solve raised: " ^ Printexc.to_string e)
            | sparse ->
                if
                  sparse.Solution.cost = direct.Solution.cost
                  && sparse.Solution.exact = direct.Solution.exact
                  && Breakpoints.equal sparse.Solution.bp direct.Solution.bp
                then Pass
                else
                  Fail
                    (Printf.sprintf
                       "sparse-oracle solve differs: cost %d/exact %b vs dense \
                        cost %d/exact %b"
                       sparse.Solution.cost sparse.Solution.exact
                       direct.Solution.cost direct.Solution.exact)));
  }

let plan_roundtrip =
  {
    name = "plan-io";
    doc = "the plan survives a Plan_io round-trip";
    check =
      (fun ctx ->
        let bp = ctx.solution.Solution.bp in
        match Plan_io.of_string (Plan_io.to_string bp) with
        | exception Failure msg -> Fail ("round-trip rejected the plan: " ^ msg)
        | bp' ->
            if Breakpoints.equal bp bp' then Pass
            else Fail "round-tripped plan differs");
  }

let online_replay =
  {
    name = "online-replay";
    doc = "prefix solve + trace extension matches the one-shot online DP";
    check =
      (fun ctx ->
        match ctx.case.Case.spec with
        | _ when ctx.case.Case.place <> None ->
            (* The online DP solves the base objective; replaying a
               placement case would compare joint costs against base
               optima.  (The fabric also can't be truncated to the
               prefix horizon in general.) *)
            Skip "placement case"
        | Case.Weighted _ | Case.Dag _ -> Skip "switch cases only"
        | Case.Switch { widths; vs; reqs } ->
            let n = Case.n ctx.case in
            if n < 2 then Skip "single-step trace"
            else if
              not
                (Online_dp.supports ctx.problem
                && Online_dp.exact_ok ctx.problem)
            then Skip "outside the online DP's exact regime"
            else begin
              (* Replay the case as a two-event stream: solve the first
                 half of the trace, then extend to the full horizon.
                 The incremental frontier must land on the one-shot
                 answer bit for bit. *)
              let h = n / 2 in
              let prefix =
                {
                  ctx.case with
                  Case.spec =
                    Case.Switch
                      {
                        widths;
                        vs;
                        reqs =
                          Array.map
                            (fun l -> List.filteri (fun i _ -> i < h) l)
                            reqs;
                      };
                }
              in
              let inc =
                Online_dp.extend
                  (Online_dp.start (Case.problem prefix))
                  ctx.problem
              in
              let one = Online_dp.solution (Online_dp.start ctx.problem) in
              let sinc = Online_dp.solution inc in
              if sinc.Solution.cost <> one.Solution.cost then
                Fail
                  (Printf.sprintf
                     "incremental re-solve costs %d, one-shot costs %d"
                     sinc.Solution.cost one.Solution.cost)
              else if not (Breakpoints.equal sinc.Solution.bp one.Solution.bp)
              then Fail "incremental and one-shot plans differ"
              else if
                ctx.solution.Solution.exact
                && ctx.solution.Solution.cost <> sinc.Solution.cost
              then
                Fail
                  (Printf.sprintf
                     "solver claims exact cost %d, online DP optimum is %d"
                     ctx.solution.Solution.cost sinc.Solution.cost)
              else if ctx.solution.Solution.cost < sinc.Solution.cost then
                Fail
                  (Printf.sprintf
                     "solver cost %d beats the exact online DP's %d"
                     ctx.solution.Solution.cost sinc.Solution.cost)
              else Pass
            end);
  }

(* ------------------------------------------------------------------ *)
(* Placement columns.  They Skip on plain cases; on placement cases
   only the place-* solvers run (the base backends' capability
   predicates refuse extended instances), and each of those reports its
   witness schedule in the "placement" stat. *)

let with_fabric ctx k =
  match ctx.case.Case.place with None -> Skip "plain case" | Some f -> k f

let solution_placement ctx =
  let m = Problem.m ctx.problem and n = Problem.n ctx.problem in
  match List.assoc_opt "placement" ctx.solution.Solution.stats with
  | None -> Error "solver reported no \"placement\" stat"
  | Some s ->
      Result.map_error
        (fun e -> Printf.sprintf "unparseable \"placement\" stat: %s" e)
        (Hr_place.Placement.of_string ~m ~n s)

let place_in_bounds =
  {
    name = "place-in-bounds";
    doc = "reported placement is resident exactly on its windows, within the strip";
    check =
      (fun ctx ->
        with_fabric ctx (fun f ->
            match solution_placement ctx with
            | Error e -> Fail e
            | Ok pl ->
                let bad = ref None in
                Array.iteri
                  (fun j row ->
                    Array.iteri
                      (fun i o ->
                        if !bad = None then
                          if Hr_place.Fabric.active f j i then begin
                            if
                              o < 0
                              || o + f.Hr_place.Fabric.sizes.(j)
                                 > f.Hr_place.Fabric.width
                            then
                              bad :=
                                Some
                                  (Printf.sprintf
                                     "task %d at offset %d out of the strip at step %d"
                                     j o i)
                          end
                          else if o <> -1 then
                            bad :=
                              Some
                                (Printf.sprintf
                                   "task %d placed at step %d outside its window" j i))
                      row)
                  pl;
                (match !bad with Some e -> Fail e | None -> Pass)));
  }

let place_no_overlap =
  {
    name = "place-no-overlap";
    doc = "no two resident regions of the reported placement overlap";
    check =
      (fun ctx ->
        with_fabric ctx (fun f ->
            match solution_placement ctx with
            | Error e -> Fail e
            | Ok pl ->
                let m = Problem.m ctx.problem and n = Problem.n ctx.problem in
                let bad = ref None in
                for i = 0 to n - 1 do
                  for j = 0 to m - 1 do
                    for j' = j + 1 to m - 1 do
                      if
                        !bad = None
                        && Hr_place.Fabric.active f j i
                        && Hr_place.Fabric.active f j' i
                        && pl.(j).(i) >= 0
                        && pl.(j').(i) >= 0
                        && not
                             (pl.(j).(i) + f.Hr_place.Fabric.sizes.(j)
                              <= pl.(j').(i)
                             || pl.(j').(i) + f.Hr_place.Fabric.sizes.(j')
                                <= pl.(j).(i))
                      then
                        bad :=
                          Some
                            (Printf.sprintf "tasks %d and %d overlap at step %d" j
                               j' i)
                    done
                  done
                done;
                (match !bad with Some e -> Fail e | None -> Pass)));
  }

let place_reloc_cost =
  {
    name = "place-reloc";
    doc = "extension cost = canonical schedule cost; no witness beats it";
    check =
      (fun ctx ->
        with_fabric ctx (fun f ->
            let bp = ctx.solution.Solution.bp in
            let extra =
              Problem.eval ctx.problem bp - Problem.eval_base ctx.problem bp
            in
            let v = ctx.problem.Problem.oracle.Interval_cost.v in
            match Hr_place.Joint.plan ctx.problem bp with
            | None -> Fail "extended problem yields no canonical plan"
            | Some canon ->
                let ccost = Hr_place.Placement.cost f ~v bp canon in
                if ccost <> extra then
                  Fail
                    (Printf.sprintf
                       "canonical schedule costs %d but the extension charges %d"
                       ccost extra)
                else (
                  match solution_placement ctx with
                  | Error e -> Fail e
                  | Ok pl ->
                      let pcost = Hr_place.Placement.cost f ~v bp pl in
                      if pcost < ccost then
                        Fail
                          (Printf.sprintf
                             "reported schedule costs %d, below the strip DP's \
                              minimum %d — one of them is wrong"
                             pcost ccost)
                      else Pass)));
  }

let place_bounded_below =
  {
    name = "place-ge-brute";
    doc = "no joint solution beats the placement brute force";
    check =
      (fun ctx ->
        with_fabric ctx (fun _ ->
            if not (Hr_place.Place_brute.feasible ctx.problem) then
              Skip "place-brute infeasible"
            else
              let opt, _, _ = Hr_place.Place_brute.solve ctx.problem in
              if ctx.solution.Solution.cost >= opt then Pass
              else
                Fail
                  (Printf.sprintf
                     "cost %d below the joint optimum %d — place-brute or solver \
                      wrong"
                     ctx.solution.Solution.cost opt)));
  }

let place_exact_brute =
  {
    name = "place-exact-brute";
    doc = "exact joint claims match place-brute; place-dp bit-identically";
    check =
      (fun ctx ->
        with_fabric ctx (fun _ ->
            if not (Hr_place.Place_brute.feasible ctx.problem) then
              Skip "place-brute infeasible"
            else
              let opt, obp, osched = Hr_place.Place_brute.solve ctx.problem in
              if not ctx.solution.Solution.exact then Skip "inexact result"
              else if ctx.solution.Solution.cost <> opt then
                Fail
                  (Printf.sprintf "claims exact at cost %d, joint optimum is %d"
                     ctx.solution.Solution.cost opt)
              else if ctx.solver.Solver.name <> "place-dp" then Pass
              else if not (Breakpoints.equal ctx.solution.Solution.bp obp) then
                Fail "place-dp's matrix differs from place-brute's first optimum"
              else (
                (* Both sides pick the lex-smallest optimal schedule of
                   the same matrix: the witnesses must agree byte for
                   byte. *)
                match solution_placement ctx with
                | Error e -> Fail e
                | Ok pl ->
                    if
                      Hr_place.Placement.to_string pl
                      = Hr_place.Placement.to_string osched
                    then Pass
                    else Fail "place-dp's schedule differs from place-brute's")));
  }

let all =
  [
    admissible;
    cost_consistent;
    bounded_below;
    exact_optimal;
    scale_linear;
    cutoff_safe;
    batch_matches_single;
    cached_matches_fresh;
    oracle_agree;
    plan_roundtrip;
    online_replay;
    place_in_bounds;
    place_no_overlap;
    place_reloc_cost;
    place_bounded_below;
    place_exact_brute;
  ]

let verdict_name = function Pass -> "pass" | Fail _ -> "fail" | Skip _ -> "skip"

let find name = List.find_opt (fun i -> i.name = name) all
