open Hr_core
module Rng = Hr_util.Rng

type failure = {
  source : string;
  solver : string;
  invariant : string;
  detail : string;
  seed : int;
  case : Case.t;
  shrunk : Case.t;
}

(* The pseudo-invariant column recording whether Solver.solve itself
   succeeded (a crash or typed rejection of a capable solver is a
   conformance failure in its own right). *)
let solve_column = "solve"

type cell = { mutable pass : int; mutable fail : int; mutable skip : int }

type summary = {
  solver_names : string list;
  invariant_names : string list;
  cells : (string * string, cell) Hashtbl.t;
  mutable cases : int;
}

let cell summary solver invariant =
  let key = (solver, invariant) in
  match Hashtbl.find_opt summary.cells key with
  | Some c -> c
  | None ->
      let c = { pass = 0; fail = 0; skip = 0 } in
      Hashtbl.add summary.cells key c;
      c

let cases_run s = s.cases

let failed s = Hashtbl.fold (fun _ c acc -> acc || c.fail > 0) s.cells false

(* Brute ground truth is only consulted below 2^16 evaluations — the
   generator's tiny regime always qualifies.  On extended (placement)
   problems every evaluation runs the strip DP, so the cap drops to
   2^12 to keep a conformance run fast. *)
let ground_truth_bits = 16
let ground_truth_bits_ext = 12

let optimum_of problem =
  let max_bits =
    if Problem.plain problem then ground_truth_bits else ground_truth_bits_ext
  in
  if Brute.feasible ~max_bits problem then Some (fst (Brute.solve problem))
  else None

let budget_of deadline_ms =
  match deadline_ms with
  | None -> Hr_util.Budget.unlimited
  | Some ms -> Hr_util.Budget.of_deadline_ms ms

(* Evaluate one (case, solver) pair: Error on solve crash, otherwise
   the per-invariant verdicts. *)
let eval_solver ~invariants ~deadline_ms ~seed case problem optimum solver =
  match Solver.solve ~seed ~budget:(budget_of deadline_ms) solver problem with
  | exception e -> Error (Printexc.to_string e)
  | solution ->
      let ctx = { Invariant.case; problem; solver; solution; optimum; seed } in
      Ok (List.map (fun (inv : Invariant.t) -> (inv, inv.Invariant.check ctx)) invariants)

(* Does this exact (solver, invariant) failure still reproduce on a
   reduced case?  The shrinker's predicate. *)
let still_fails ~invariant ~deadline_ms ~seed solver case =
  match Case.problem case with
  | exception _ -> false
  | problem ->
      if not (solver.Solver.handles problem) then false
      else (
        let optimum = optimum_of problem in
        match
          eval_solver ~invariants:Invariant.all ~deadline_ms ~seed case problem
            optimum solver
        with
        | Error _ -> invariant = solve_column
        | Ok verdicts ->
            List.exists
              (fun ((inv : Invariant.t), v) ->
                inv.Invariant.name = invariant
                && match v with Invariant.Fail _ -> true | _ -> false)
              verdicts)

let check_case ?solvers ?(invariants = Invariant.all) ?deadline_ms ~seed case =
  Hr_place.Solvers.ensure ();
  let solvers = match solvers with Some s -> s | None -> Solver_registry.all () in
  match Case.problem case with
  | exception e -> [ ("-", "build", Printexc.to_string e) ]
  | problem ->
      let optimum = optimum_of problem in
      List.concat_map
        (fun (s : Solver.t) ->
          if not (s.Solver.handles problem) then []
          else
            match eval_solver ~invariants ~deadline_ms ~seed case problem optimum s with
            | Error e -> [ (s.Solver.name, solve_column, e) ]
            | Ok verdicts ->
                List.filter_map
                  (fun ((inv : Invariant.t), v) ->
                    match v with
                    | Invariant.Fail detail ->
                        Some (s.Solver.name, inv.Invariant.name, detail)
                    | Invariant.Pass | Invariant.Skip _ -> None)
                  verdicts)
        solvers

let run ?solvers ?(invariants = Invariant.all) ?(profile = Gen.default_profile)
    ?deadline_ms ?(corpus = []) ?(log = ignore) ~cases ~seed () =
  Hr_place.Solvers.ensure ();
  let solvers = match solvers with Some s -> s | None -> Solver_registry.all () in
  let summary =
    {
      solver_names = List.map (fun (s : Solver.t) -> s.Solver.name) solvers;
      invariant_names =
        solve_column :: List.map (fun (i : Invariant.t) -> i.Invariant.name) invariants;
      cells = Hashtbl.create 64;
      cases = 0;
    }
  in
  let failures = ref [] in
  let record_failure ~source ~solver ~invariant ~detail ~solver_seed case =
    let shrunk =
      Shrink.shrink
        ~still_fails:(still_fails ~invariant ~deadline_ms ~seed:solver_seed solver)
        case
    in
    failures :=
      {
        source;
        solver = solver.Solver.name;
        invariant;
        detail;
        seed = solver_seed;
        case;
        shrunk;
      }
      :: !failures
  in
  let run_case ~source ~solver_seed case =
    summary.cases <- summary.cases + 1;
    match Case.problem case with
    | exception e ->
        (* Generator and corpus validation should make this impossible;
           surface it loudly rather than skipping silently. *)
        log
          (Printf.sprintf "%s: case does not build a problem: %s" source
             (Printexc.to_string e))
    | problem ->
        let optimum = optimum_of problem in
        List.iter
          (fun (s : Solver.t) ->
            if s.Solver.handles problem then (
              match
                eval_solver ~invariants ~deadline_ms ~seed:solver_seed case problem
                  optimum s
              with
              | Error detail ->
                  (cell summary s.Solver.name solve_column).fail <-
                    (cell summary s.Solver.name solve_column).fail + 1;
                  record_failure ~source ~solver:s ~invariant:solve_column ~detail
                    ~solver_seed case
              | Ok verdicts ->
                  (cell summary s.Solver.name solve_column).pass <-
                    (cell summary s.Solver.name solve_column).pass + 1;
                  List.iter
                    (fun ((inv : Invariant.t), verdict) ->
                      let c = cell summary s.Solver.name inv.Invariant.name in
                      match verdict with
                      | Invariant.Pass -> c.pass <- c.pass + 1
                      | Invariant.Skip _ -> c.skip <- c.skip + 1
                      | Invariant.Fail detail ->
                          c.fail <- c.fail + 1;
                          record_failure ~source ~solver:s
                            ~invariant:inv.Invariant.name ~detail ~solver_seed case)
                    verdicts))
          solvers
  in
  List.iteri
    (fun k (label, case) ->
      run_case ~source:(Printf.sprintf "corpus %s" label) ~solver_seed:(seed + k) case)
    corpus;
  let ncorpus = List.length corpus in
  if ncorpus > 0 then log (Printf.sprintf "replayed %d corpus case(s)" ncorpus);
  let rng = Rng.create seed in
  for k = 0 to cases - 1 do
    let case = Gen.case ~profile (Rng.split rng) in
    run_case ~source:(Printf.sprintf "case #%d" k) ~solver_seed:(seed + ncorpus + k) case;
    if (k + 1) mod 100 = 0 then
      log (Printf.sprintf "%d/%d cases, %d failure(s)" (k + 1) cases
             (List.length !failures))
  done;
  (summary, List.rev !failures)

let table summary =
  let header = "solver" :: summary.invariant_names in
  let rows =
    List.map
      (fun solver ->
        solver
        :: List.map
             (fun invariant ->
               match Hashtbl.find_opt summary.cells (solver, invariant) with
               | None -> "-"
               | Some { pass; fail; skip } ->
                   if fail > 0 then Printf.sprintf "%dF/%dP" fail pass
                   else if pass = 0 && skip > 0 then "-"
                   else string_of_int pass)
             summary.invariant_names)
      summary.solver_names
  in
  Hr_util.Tablefmt.render ~header rows

let pp_failure fmt f =
  Format.fprintf fmt "%s: solver %s violated %S (seed %d)@." f.source f.solver
    f.invariant f.seed;
  Format.fprintf fmt "  %s@." f.detail;
  Format.fprintf fmt "  found:  %s@." (Case.summary f.case);
  Format.fprintf fmt "  shrunk: %s@." (Case.summary f.shrunk);
  Format.fprintf fmt "  replay: %s" (String.trim (Case.to_string f.shrunk))
