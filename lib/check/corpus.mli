(** The persisted failure corpus.

    Every shrunk counterexample the harness finds can be saved as a
    [*.json] file (the {!Case} format) and is replayed — before any
    random generation — on every subsequent run, so once-found bugs
    stay found.  The repository keeps its corpus in [test/corpus/]. *)

(** [load_file path] reads one case; [Error] on unreadable files or
    malformed cases (message includes [path]). *)
val load_file : string -> (Case.t, string) result

(** [load_dir dir] loads every [*.json] in [dir], sorted by filename
    for deterministic replay order.  Unreadable entries load as
    [Error]; a missing or empty directory is simply [[]]. *)
val load_dir : string -> (string * (Case.t, string) result) list

(** [save ~dir ~name case] writes [case] to [dir/name.json] (creating
    [dir] if needed) and returns the path. *)
val save : dir:string -> name:string -> Case.t -> string
