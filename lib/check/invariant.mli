(** The metamorphic-invariant catalogue.

    Every invariant inspects one (case, solver, solution) triple — the
    solution produced by an unlimited-budget {!Hr_core.Solver.solve} —
    plus the brute-force optimum when {!Hr_core.Brute.feasible} made
    ground truth available, and returns a {!verdict}.  [Skip] means the
    invariant does not apply (e.g. no ground truth, or an inexact
    result for an exactness check) — it is never a pass in disguise;
    the runner tabulates skips separately so a solver silently dodging
    a column is visible.

    To add an invariant when introducing a new solver, append a [t] to
    {!all} (see [docs/TESTING.md] for the recipe). *)

type verdict = Pass | Fail of string | Skip of string

type ctx = {
  case : Case.t;
  problem : Hr_core.Problem.t;  (** built once per case, shared *)
  solver : Hr_core.Solver.t;
  solution : Hr_core.Solution.t;  (** unlimited-budget solve result *)
  optimum : int option;  (** {!Hr_core.Brute.solve} cost, when feasible *)
  seed : int;  (** the seed [solution] was solved with *)
}

type t = {
  name : string;  (** short stable column label *)
  doc : string;
  check : ctx -> verdict;
}

(** Returned plan is admissible for the case's machine class. *)
val admissible : t

(** Reported cost equals {!Hr_core.Problem.eval} of the returned plan. *)
val cost_consistent : t

(** No solution beats the brute-force optimum. *)
val bounded_below : t

(** A solution claiming [exact] costs exactly the optimum. *)
val exact_optimal : t

(** Scaling every oracle entry, [v_j], [w] and [pub] by k scales the
    plan's evaluated cost by exactly k (the cost formulae are linear in
    the cost parameters). *)
val scale_linear : t

(** Re-solving under an exhausted budget still yields an admissible,
    cost-consistent plan that never claims exactness when cut off. *)
val cutoff_safe : t

(** Solving through {!Hr_core.Batch.run} (pool scheduling, budget
    carving, build-dedup cache) yields exactly the direct
    {!Hr_core.Solver.solve} answer — same cost, exactness flag and
    breakpoint matrix.  Both sides solve fresh under an unlimited
    budget with the ctx seed. *)
val batch_matches_single : t

(** A problem served from the persistent {!Hr_core.Table_cache} (cold
    store, then warm mmap load via [Case.problem ~cache_dir]) solves
    identically to the fresh in-memory build — same cost, exactness
    flag and breakpoint matrix.  Uses one lazily created per-process
    cache directory, removed at exit. *)
val cached_matches_fresh : t

(** A switch-model case rebuilt with the forced-sparse
    {!Hr_core.Occ_index} oracle ([Case.problem
    ~oracle:Interval_cost.Sparse]) solves identically to the dense
    build — same cost, exactness flag and breakpoint matrix.  Skips
    weighted/DAG cases (their oracles have no sparse rung).  Both sides
    solve fresh under an unlimited budget with the ctx seed. *)
val oracle_agree : t

(** The plan survives a {!Hr_core.Plan_io} round-trip unchanged. *)
val plan_roundtrip : t

(** The case replayed as a two-event stream — solve the first half of
    the trace, then extend to the full horizon with
    {!Hr_core.Online_dp.extend} — lands on the one-shot
    {!Hr_core.Online_dp} answer bit for bit (equal cost {e and} equal
    matrix), and the solver under test never beats that exact cost (an
    exact solver must match it).  [Skip] outside the online DP's exact
    regime (switch cases, fully synchronized, task-sequential
    reconfiguration).  Failing cases shrink through the runner's
    normal case shrinker, which in particular shortens the trace —
    i.e. the event list — greedily. *)
val online_replay : t

(** {2 Placement columns}

    All five [Skip] on plain cases.  On placement cases only the
    [place-*] backends run (the base backends' capability predicates
    refuse extended instances); each reports its witness schedule in
    the ["placement"] stat, which these columns parse and audit. *)

(** The reported schedule is resident exactly on the fabric's windows,
    each region inside the strip. *)
val place_in_bounds : t

(** No two resident regions of the reported schedule overlap at any
    step. *)
val place_no_overlap : t

(** The extension term of the returned matrix
    ([Problem.eval - Problem.eval_base]) equals the canonical
    schedule's {!Hr_place.Placement.cost}, and the solver's own witness
    schedule never costs less than that minimum. *)
val place_reloc_cost : t

(** No joint solution beats the {!Hr_place.Place_brute} optimum. *)
val place_bounded_below : t

(** An exact joint claim costs exactly the {!Hr_place.Place_brute}
    optimum; [place-dp] must additionally return the bit-identical
    matrix {e and} witness schedule (both sides resolve ties to the
    mask-order-first matrix and the lex-smallest schedule). *)
val place_exact_brute : t

(** The catalogue, in table-column order. *)
val all : t list

val verdict_name : verdict -> string

(** [find name] looks an invariant up in {!all}. *)
val find : string -> t option
