open Hr_core

let drop_index arr j =
  Array.of_list (List.filteri (fun i _ -> i <> j) (Array.to_list arr))

let take k l = List.filteri (fun i _ -> i < k) l

(* Keep the first [k] steps of every task. *)
let truncate_spec spec k =
  match spec with
  | Case.Switch s -> Case.Switch { s with reqs = Array.map (take k) s.reqs }
  | Case.Weighted s -> Case.Weighted { s with reqs = Array.map (take k) s.reqs }
  | Case.Dag s -> Case.Dag { s with seq = Array.sub s.seq 0 k }

let drop_task spec j =
  match spec with
  | Case.Switch { widths; vs; reqs } ->
      Case.Switch
        { widths = drop_index widths j; vs = drop_index vs j; reqs = drop_index reqs j }
  | Case.Weighted { widths; reqs; weights } ->
      Case.Weighted
        {
          widths = drop_index widths j;
          reqs = drop_index reqs j;
          weights = drop_index weights j;
        }
  | Case.Dag _ -> spec

(* Fabric edits mirroring the spec edits: a case's fabric must keep the
   spec's arity and horizon or [Case.problem] would raise. *)
let fabric_drop_task place j =
  Option.map
    (fun (f : Hr_place.Fabric.t) ->
      {
        f with
        Hr_place.Fabric.sizes = drop_index f.Hr_place.Fabric.sizes j;
        windows = drop_index f.Hr_place.Fabric.windows j;
        reloc = drop_index f.Hr_place.Fabric.reloc j;
      })
    place

let fabric_truncate place k =
  Option.map
    (fun (f : Hr_place.Fabric.t) ->
      {
        f with
        Hr_place.Fabric.windows =
          Array.map
            (fun (a, d) -> (min a (k - 1), min d (k - 1)))
            f.Hr_place.Fabric.windows;
      })
    place

let candidates (case : Case.t) =
  let m = Case.m case and n = Case.n case in
  let tasks_dropped =
    if m <= 1 then []
    else
      List.init m (fun j ->
          {
            case with
            Case.spec = drop_task case.Case.spec j;
            place = fabric_drop_task case.Case.place j;
          })
  in
  let truncated k =
    {
      case with
      Case.spec = truncate_spec case.Case.spec k;
      place = fabric_truncate case.Case.place k;
    }
  in
  let halved = if n <= 1 then [] else [ truncated ((n + 1) / 2) ] in
  let trimmed = if n <= 1 then [] else [ truncated (n - 1) ] in
  let p = case.Case.params in
  let zeroed_w =
    if p.Sync_cost.w = 0 then []
    else [ { case with Case.params = { p with Sync_cost.w = 0 } } ]
  in
  let zeroed_pub =
    if p.Sync_cost.pub = 0 then []
    else [ { case with Case.params = { p with Sync_cost.pub = 0 } } ]
  in
  let zeroed_vs =
    match case.Case.spec with
    | Case.Switch s when Array.exists (fun v -> v > 0) s.vs ->
        [ { case with Case.spec = Case.Switch { s with vs = Array.map (fun _ -> 0) s.vs } } ]
    | _ -> []
  in
  let parallel_uploads =
    if
      p.Sync_cost.hyper = Sync_cost.Task_parallel
      && p.Sync_cost.reconf = Sync_cost.Task_parallel
    then []
    else
      [
        {
          case with
          Case.params =
            { p with Sync_cost.hyper = Sync_cost.Task_parallel; reconf = Sync_cost.Task_parallel };
        };
      ]
  in
  let relaxed_class =
    if case.Case.machine_class = Problem.Partial then []
    else [ { case with Case.machine_class = Problem.Partial } ]
  in
  (* Placement reductions: drop the fabric entirely (does the failure
     need the joint objective at all?), then cheapen it — zero
     relocation costs, unit region sizes, full residency windows. *)
  let fabric_edits =
    match case.Case.place with
    | None -> []
    | Some f ->
        let edited g = { case with Case.place = Some g } in
        [ { case with Case.place = None } ]
        @ (if Array.exists (fun r -> r > 0) f.Hr_place.Fabric.reloc then
             [ edited { f with Hr_place.Fabric.reloc = Array.make m 0 } ]
           else [])
        @ (if Array.exists (fun s -> s > 1) f.Hr_place.Fabric.sizes then
             [ edited { f with Hr_place.Fabric.sizes = Array.make m 1 } ]
           else [])
        @
        if Array.exists (fun (a, d) -> (a, d) <> (0, n - 1)) f.Hr_place.Fabric.windows
        then [ edited { f with Hr_place.Fabric.windows = Array.make m (0, n - 1) } ]
        else []
  in
  (* Spec edits can leave a fabric inconsistent (e.g. clamping windows
     onto a shorter horizon may overload a step) — such candidates
     would not build a problem, so filter them out here. *)
  let valid (c : Case.t) =
    match c.Case.place with
    | None -> true
    | Some f -> Result.is_ok (Hr_place.Fabric.check ~n:(Case.n c) f)
  in
  List.filter valid
    (tasks_dropped @ halved @ trimmed @ fabric_edits @ zeroed_w @ zeroed_pub
   @ zeroed_vs @ parallel_uploads @ relaxed_class)

let shrink ?(fuel = 500) ~still_fails case =
  let fuel = ref fuel in
  let fails c =
    if !fuel <= 0 then false
    else begin
      decr fuel;
      still_fails c
    end
  in
  let rec go case =
    match List.find_opt fails (candidates case) with
    | Some smaller -> go smaller
    | None -> case
  in
  go case
