(** Serializable conformance-test cases.

    A [Case.t] is a plain-data description of one point of the paper's
    problem family — cost model (switch / weighted-switch / DAG),
    {!Hr_core.Sync_cost.params}, synchronization mode and machine
    class — from which a fresh {!Hr_core.Problem.t} can be built at any
    time.  Unlike [Problem.t] (which holds closures and precomputed
    tables) a case is pure data: the generator produces it, the
    shrinker edits it, and the corpus stores it as JSON
    (schema {!schema_version}) so failing instances replay across
    sessions. *)

(** Which oracle constructor the case exercises.

    - [Switch]: {!Hr_core.Interval_cost.of_task_set} on a task set
      built from [reqs.(j)] (per step, the required switch indices of
      task [j] over a local space of [widths.(j)] switches) with
      explicit hyperreconfiguration costs [vs].
    - [Weighted]: {!Hr_core.Weighted.oracle} with per-switch positive
      [weights] (the task's [v_j] is its total local weight).
    - [Dag]: a single-task chain DAG ({!Hr_core.Dag_model.chain}) of
      [Array.length costs] hypercontexts, node [k] satisfying context
      ids [0 .. sat_sizes.(k) - 1] (strictly increasing, last
      [= num_contexts]), evaluated on the context-id sequence [seq]. *)
type oracle_spec =
  | Switch of { widths : int array; vs : int array; reqs : int list list array }
  | Weighted of {
      widths : int array;
      reqs : int list list array;
      weights : int array array;
    }
  | Dag of {
      num_contexts : int;
      w : int;
      costs : int array;
      sat_sizes : int array;
      seq : int array;
    }

type t = {
  spec : oracle_spec;
  params : Hr_core.Sync_cost.params;
  mode : Hr_core.Mixed_sync.mode;
  machine_class : Hr_core.Problem.machine_class;
  place : Hr_place.Fabric.t option;
      (** when present, {!problem} attaches the fabric
          ({!Hr_place.Joint.attach}) so the instance carries the joint
          placement objective.  Serialized as the additive optional
          ["fabric"] JSON field — plain cases keep the exact schema-/1
          byte format. *)
}

(** ["hyperreconf.case/1"] — bump on breaking format changes. *)
val schema_version : string

val m : t -> int
val n : t -> int

(** [problem ?max_table_bytes ?cache_dir ?oracle t] builds the instance
    (precomputed oracle).  [max_table_bytes] caps the dense-table
    memory ({!Hr_core.Problem.make}'s [max_bytes]).  With [cache_dir]
    the dense table is served from the persistent
    {!Hr_core.Table_cache} under {!oracle_key} when a valid entry
    exists — skipping even the oracle construction, so a warm build
    performs no O(m·n²) work — and stored there after a cold build.
    [oracle] picks the rung of the oracle ladder for switch-model
    cases ({!Hr_core.Interval_cost.policy}; default [Auto]); forcing
    [Sparse] bypasses the table cache entirely (an {!Hr_core.Occ_index}
    rebuilds in O(input), and is never densified).  Weighted and DAG
    cases build their own oracles and ignore the policy.  Raises
    [Invalid_argument] on an inconsistent case — {!of_string}
    validates enough that loaded corpus cases never do. *)
val problem :
  ?max_table_bytes:int ->
  ?cache_dir:string ->
  ?oracle:Hr_core.Interval_cost.policy ->
  t ->
  Hr_core.Problem.t

(** [oracle_key t] is the persistent-cache key: a hex digest of the
    canonical oracle-spec JSON (the dense tables are a function of the
    oracle inputs only, so cases differing in params/mode/class share
    an entry). *)
val oracle_key : t -> string

(** [summary t] is a one-line description (model, m, n, class, mode,
    params) for failure reports and tables. *)
val summary : t -> string

val to_json : t -> Hr_core.Telemetry.json
val of_json : Hr_core.Telemetry.json -> (t, string) result

(** [to_string] / [of_string] — the JSON corpus format. *)
val to_string : t -> string

val of_string : string -> (t, string) result
