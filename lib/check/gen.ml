open Hr_core
module Rng = Hr_util.Rng

type profile = {
  max_m : int;
  max_n : int;
  max_width : int;
  large_fraction : float;
  place_fraction : float;
}

let default_profile =
  {
    max_m = 3;
    max_n = 6;
    max_width = 5;
    large_fraction = 0.08;
    place_fraction = 0.25;
  }

(* Skew toward small values: pick the min of two uniform draws. *)
let small_int rng lo hi = lo + min (Rng.int rng (hi - lo + 1)) (Rng.int rng (hi - lo + 1))

let gen_reqs rng ~m ~n ~widths =
  Array.init m (fun j ->
      List.init n (fun _ ->
          List.filter (fun _ -> Rng.chance rng 0.35) (List.init widths.(j) Fun.id)))

let gen_machine_class rng =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> Problem.Partial
  | 3 | 4 -> Problem.All_task
  | _ -> Problem.Restricted

let gen_mode rng =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> Mixed_sync.Fully_synchronized
  | 3 -> Mixed_sync.Hypercontext_synchronized
  | 4 -> Mixed_sync.Context_synchronized
  | _ -> Mixed_sync.Non_synchronized

(* Parameters compatible with the drawn mode (Problem.make's rules):
   outside full synchronization w = 0 and uploads are task-parallel,
   and pub > 0 additionally needs context synchronization. *)
let gen_params rng mode =
  match mode with
  | Mixed_sync.Fully_synchronized ->
      {
        Sync_cost.w = small_int rng 0 3;
        pub = small_int rng 0 2;
        hyper = (if Rng.chance rng 0.25 then Sync_cost.Task_sequential else Sync_cost.Task_parallel);
        reconf = (if Rng.chance rng 0.25 then Sync_cost.Task_sequential else Sync_cost.Task_parallel);
      }
  | Mixed_sync.Context_synchronized ->
      { Sync_cost.default_params with Sync_cost.pub = small_int rng 0 2 }
  | Mixed_sync.Hypercontext_synchronized | Mixed_sync.Non_synchronized ->
      Sync_cost.default_params

let gen_spec rng profile ~large =
  let max_m = if large then profile.max_m + 2 else profile.max_m in
  let max_n = if large then profile.max_n + 8 else profile.max_n in
  match Rng.int rng 10 with
  | 0 | 1 ->
      (* Chain-DAG model (single task — Problem.of_dag's shape). *)
      let num_contexts = Rng.int_in rng 1 4 in
      let levels = Rng.int_in rng 1 num_contexts in
      let sat_sizes =
        (* [levels] distinct sizes in 1..num_contexts, the last being
           num_contexts so some hypercontext satisfies everything. *)
        let pool = Array.init (num_contexts - 1) (fun i -> i + 1) in
        Rng.shuffle rng pool;
        let chosen = Array.sub pool 0 (levels - 1) in
        Array.sort compare chosen;
        Array.append chosen [| num_contexts |]
      in
      let costs = Array.init levels (fun _ -> Rng.int_in rng 1 6) in
      Array.sort compare costs;
      let n = small_int rng 1 max_n in
      let seq = Array.init n (fun _ -> Rng.int rng num_contexts) in
      Case.Dag { num_contexts; w = small_int rng 0 4; costs; sat_sizes; seq }
  | 2 | 3 ->
      let m = small_int rng 1 max_m in
      let n = small_int rng 1 max_n in
      let widths = Array.init m (fun _ -> Rng.int_in rng 1 profile.max_width) in
      let weights =
        Array.map (fun w -> Array.init w (fun _ -> Rng.int_in rng 1 4)) widths
      in
      Case.Weighted { widths; reqs = gen_reqs rng ~m ~n ~widths; weights }
  | _ ->
      let m = small_int rng 1 max_m in
      let n = small_int rng 1 max_n in
      let widths = Array.init m (fun _ -> Rng.int_in rng 1 profile.max_width) in
      let vs = Array.init m (fun _ -> small_int rng 0 6) in
      Case.Switch { widths; vs; reqs = gen_reqs rng ~m ~n ~widths }

(* A random fabric for an m-task, n-step case, skewed so that brute
   ground truth stays feasible: fabric width at most m + 2, task sizes
   1-2, short relocation costs.  Drawn fabrics can violate the per-step
   fit or the DP caps, so each draw is validated and a guaranteed-valid
   fallback (every task sized 1 on a width-m strip, resident
   throughout) backstops the retries. *)
let gen_fabric rng ~m ~n =
  let fallback =
    { Hr_place.Fabric.width = m; sizes = Array.make m 1;
      windows = Array.make m (0, n - 1); reloc = Array.make m 1 }
  in
  let draw () =
    let width = Rng.int_in rng (max 2 m) (m + 2) in
    let sizes = Array.init m (fun _ -> Rng.int_in rng 1 (min 2 width)) in
    let windows =
      Array.init m (fun _ ->
          if Rng.chance rng 0.6 then (0, n - 1)
          else
            let a = Rng.int rng n in
            let d = a + Rng.int rng (n - a) in
            (a, d))
    in
    let reloc = Array.init m (fun _ -> small_int rng 0 3) in
    { Hr_place.Fabric.width; sizes; windows; reloc }
  in
  let rec try_draws k =
    if k = 0 then fallback
    else
      let f = draw () in
      match Hr_place.Fabric.check ~n f with Ok () -> f | Error _ -> try_draws (k - 1)
  in
  try_draws 8

let case ?(profile = default_profile) rng =
  let large = Rng.chance rng profile.large_fraction in
  let mode = gen_mode rng in
  let params = gen_params rng mode in
  let machine_class = gen_machine_class rng in
  let spec = gen_spec rng profile ~large in
  let base = { Case.spec; params; mode; machine_class; place = None } in
  (* Placement cases stay in the tiny regime (m <= 3) so that both
     Brute on the joint objective and Place_brute remain feasible for
     the conformance columns. *)
  let m = Case.m base and n = Case.n base in
  let place =
    if m <= 3 && Rng.chance rng profile.place_fraction then
      Some (gen_fabric rng ~m ~n)
    else None
  in
  { base with Case.place }
