open Hr_core
module Rng = Hr_util.Rng

type profile = {
  max_m : int;
  max_n : int;
  max_width : int;
  large_fraction : float;
}

let default_profile = { max_m = 3; max_n = 6; max_width = 5; large_fraction = 0.08 }

(* Skew toward small values: pick the min of two uniform draws. *)
let small_int rng lo hi = lo + min (Rng.int rng (hi - lo + 1)) (Rng.int rng (hi - lo + 1))

let gen_reqs rng ~m ~n ~widths =
  Array.init m (fun j ->
      List.init n (fun _ ->
          List.filter (fun _ -> Rng.chance rng 0.35) (List.init widths.(j) Fun.id)))

let gen_machine_class rng =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> Problem.Partial
  | 3 | 4 -> Problem.All_task
  | _ -> Problem.Restricted

let gen_mode rng =
  match Rng.int rng 6 with
  | 0 | 1 | 2 -> Mixed_sync.Fully_synchronized
  | 3 -> Mixed_sync.Hypercontext_synchronized
  | 4 -> Mixed_sync.Context_synchronized
  | _ -> Mixed_sync.Non_synchronized

(* Parameters compatible with the drawn mode (Problem.make's rules):
   outside full synchronization w = 0 and uploads are task-parallel,
   and pub > 0 additionally needs context synchronization. *)
let gen_params rng mode =
  match mode with
  | Mixed_sync.Fully_synchronized ->
      {
        Sync_cost.w = small_int rng 0 3;
        pub = small_int rng 0 2;
        hyper = (if Rng.chance rng 0.25 then Sync_cost.Task_sequential else Sync_cost.Task_parallel);
        reconf = (if Rng.chance rng 0.25 then Sync_cost.Task_sequential else Sync_cost.Task_parallel);
      }
  | Mixed_sync.Context_synchronized ->
      { Sync_cost.default_params with Sync_cost.pub = small_int rng 0 2 }
  | Mixed_sync.Hypercontext_synchronized | Mixed_sync.Non_synchronized ->
      Sync_cost.default_params

let gen_spec rng profile ~large =
  let max_m = if large then profile.max_m + 2 else profile.max_m in
  let max_n = if large then profile.max_n + 8 else profile.max_n in
  match Rng.int rng 10 with
  | 0 | 1 ->
      (* Chain-DAG model (single task — Problem.of_dag's shape). *)
      let num_contexts = Rng.int_in rng 1 4 in
      let levels = Rng.int_in rng 1 num_contexts in
      let sat_sizes =
        (* [levels] distinct sizes in 1..num_contexts, the last being
           num_contexts so some hypercontext satisfies everything. *)
        let pool = Array.init (num_contexts - 1) (fun i -> i + 1) in
        Rng.shuffle rng pool;
        let chosen = Array.sub pool 0 (levels - 1) in
        Array.sort compare chosen;
        Array.append chosen [| num_contexts |]
      in
      let costs = Array.init levels (fun _ -> Rng.int_in rng 1 6) in
      Array.sort compare costs;
      let n = small_int rng 1 max_n in
      let seq = Array.init n (fun _ -> Rng.int rng num_contexts) in
      Case.Dag { num_contexts; w = small_int rng 0 4; costs; sat_sizes; seq }
  | 2 | 3 ->
      let m = small_int rng 1 max_m in
      let n = small_int rng 1 max_n in
      let widths = Array.init m (fun _ -> Rng.int_in rng 1 profile.max_width) in
      let weights =
        Array.map (fun w -> Array.init w (fun _ -> Rng.int_in rng 1 4)) widths
      in
      Case.Weighted { widths; reqs = gen_reqs rng ~m ~n ~widths; weights }
  | _ ->
      let m = small_int rng 1 max_m in
      let n = small_int rng 1 max_n in
      let widths = Array.init m (fun _ -> Rng.int_in rng 1 profile.max_width) in
      let vs = Array.init m (fun _ -> small_int rng 0 6) in
      Case.Switch { widths; vs; reqs = gen_reqs rng ~m ~n ~widths }

let case ?(profile = default_profile) rng =
  let large = Rng.chance rng profile.large_fraction in
  let mode = gen_mode rng in
  let params = gen_params rng mode in
  let machine_class = gen_machine_class rng in
  { Case.spec = gen_spec rng profile ~large; params; mode; machine_class }
