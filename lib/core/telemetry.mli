(** Structured telemetry for solver executions.

    One {!t} describes one optimization run — a race, a portfolio, or a
    single solve: the instance, the seed and deadline, one
    {!Solver.report} per contestant (wall-clock, outcome, cost,
    iteration counters), the oracle-cache statistics
    ({!Interval_cost.cache_stats}: memoizer hits/misses or dense
    precompute cell counts), and the winner.  It serializes to a stable
    JSON document (schema {!schema_version}) consumed by the CI smoke
    test and external dashboards, and pretty-prints as a table for
    humans.

    JSON schema (see [docs/solvers.md] for the field-by-field
    contract):

    {v
    { "schema": "hyperreconf.telemetry/1",
      "label": "race", "seed": 2004, "deadline_ms": 200 | null,
      "instance": { "m": 4, "n": 96, "summary": "m=4 n=96 partial ..." },
      "total_ms": 87.2,
      "oracle_cache": { "kind": "dense" | "memoize" | "direct",
                        "hits": 0, "misses": 0, "cells": 36864,
                        "build_ms": 1.9, "build_workers": 9,
                        "build_seq_ms": 11.3, "build_speedup": 5.9 | null,
                        "width_bits": 16, "bytes_resident": 73728,
                        "bytes_peak": 73728,
                        "source": "built" | "mmap" | null },
      "solvers": [ { "name": "ga", "kind": "stochastic",
                     "outcome": "finished" | "cut-off" | "crashed",
                     "wall_ms": 81.0,
                     "error": "...",            (* crashed only *)
                     "cost": 1234, "exact": false, "cut_off": true,
                     "iterations": 4096 | null,
                     "stats": { "evaluations": "4096", ... } } ],
      "winner": "mt-dp" | null }
    v} *)

(** A minimal JSON document — just enough for the telemetry schema; no
    external dependency. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(** [json_to_string j] — compact one-line rendering with a trailing
    newline; strings are escaped per RFC 8259. *)
val json_to_string : json -> string

(** [json_of_string s] parses a JSON document — the inverse of
    {!json_to_string} (numbers without [./e/E] load as [Int], others as
    [Float]; [\u] escapes decode to UTF-8).  Used to read telemetry
    dumps and conformance-corpus cases back; never raises. *)
val json_of_string : string -> (json, string) result

type t = {
  label : string;  (** e.g. ["race"], ["portfolio"], a solver name *)
  problem : string;  (** {!Problem.pp} of the instance *)
  m : int;
  n : int;
  seed : int;
  deadline_ms : int option;  (** the --deadline-ms knob, when set *)
  total_ms : float;  (** end-to-end wall clock of the whole run *)
  oracle : Interval_cost.cache_stats;
  reports : Solver.report list;
  winner : string option;  (** best surviving solver, [None] if all crashed *)
  ext : (string * (string * string) list) option;
      (** extension tag + counters of an extended instance (e.g.
          placement relocation statistics); [None] on plain problems —
          the JSON document then carries no ["extension"] field, so
          plain-problem output is byte-identical to before *)
}

(** ["hyperreconf.telemetry/1"] — bump on breaking schema changes. *)
val schema_version : string

(** [latency_summary samples] is the per-request latency digest used by
    the serving summaries: [{count; mean_ms; p50_ms; p95_ms; p99_ms;
    max_ms}] (percentiles via {!Hr_util.Stats.percentile}).  An empty
    sample — an idle server — reports [count = 0] and null statistics
    instead of raising. *)
val latency_summary : float array -> json

(** [iterations sol] extracts the backend's work counter from
    [sol.stats]: the first of ["evaluations"], ["states"], ["rounds"]
    that parses as an integer. *)
val iterations : Solution.t -> int option

(** [make ?label ?deadline_ms ?seed ~problem ~total_ms reports]
    assembles a record; the winner is recomputed from the surviving
    reports with {!Solution.best}. *)
val make :
  ?label:string ->
  ?deadline_ms:int ->
  ?seed:int ->
  problem:Problem.t ->
  total_ms:float ->
  Solver.report list ->
  t

val to_json : t -> json

val to_string : t -> string

(** [save path t] writes {!to_string} to [path] (truncating). *)
val save : string -> t -> unit

(** [pp] prints the human-facing view: a summary line, the oracle-cache
    line, the per-solver table, and the winner. *)
val pp : Format.formatter -> t -> unit
