module A1 = Bigarray.Array1

type t =
  | I16 of (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) A1.t
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) A1.t
  | I64 of (int64, Bigarray.int64_elt, Bigarray.c_layout) A1.t

exception Overflow of { index : int; value : int; width_bits : int }

(* One threshold for every dense table build (Range_union rows,
   Interval_cost cells): parallelize on the pool at or above this many
   cells, stay sequential below. *)
let parallel_build_cells = 1 lsl 16

let max_i16 = 0xFFFF
let max_i32 = Int32.to_int Int32.max_int

let create ~max_value len =
  if len < 0 then invalid_arg "Flat_table.create: negative length";
  if max_value <= max_i16 then begin
    let a = A1.create Bigarray.int16_unsigned Bigarray.c_layout len in
    A1.fill a 0;
    I16 a
  end
  else if max_value <= max_i32 then begin
    let a = A1.create Bigarray.int32 Bigarray.c_layout len in
    A1.fill a 0l;
    I32 a
  end
  else begin
    let a = A1.create Bigarray.int64 Bigarray.c_layout len in
    A1.fill a 0L;
    I64 a
  end

let length = function I16 a -> A1.dim a | I32 a -> A1.dim a | I64 a -> A1.dim a
let width_bits = function I16 _ -> 16 | I32 _ -> 32 | I64 _ -> 64
let bytes t = length t * (width_bits t / 8)

let max_representable = function
  | I16 _ -> max_i16
  | I32 _ -> max_i32
  | I64 _ -> max_int

let reader = function
  | I16 a -> A1.get a
  | I32 a -> fun i -> Int32.to_int (A1.get a i)
  | I64 a -> fun i -> Int64.to_int (A1.get a i)

let writer = function
  | I16 a ->
      fun i v ->
        if v < 0 || v > max_i16 then
          raise (Overflow { index = i; value = v; width_bits = 16 });
        A1.set a i v
  | I32 a ->
      fun i v ->
        if v < 0 || v > max_i32 then
          raise (Overflow { index = i; value = v; width_bits = 32 });
        A1.set a i (Int32.of_int v)
  | I64 a ->
      fun i v ->
        if v < 0 then raise (Overflow { index = i; value = v; width_bits = 64 });
        A1.set a i (Int64.of_int v)

let get t i = reader t i
let set t i v = writer t i v

let equal a b =
  length a = length b
  &&
  let ra = reader a and rb = reader b in
  let rec go i = i >= length a || (ra i = rb i && go (i + 1)) in
  go 0
