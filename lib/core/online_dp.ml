module Budget = Hr_util.Budget

type t = {
  problem : Problem.t;
  n_done : int;
  len : int;
  starts : int array;  (* len * m: open-block start of each task *)
  acc : int array;  (* len: cost charged for steps 0 .. n_done-1 *)
  breaks : (int * int) list array;  (* len: (task, step), latest first *)
  explored : int;
  truncations : int;
  cut : bool;
  max_states : int option;
}

let horizon t = t.n_done
let frontier (t : t) = t.len
let states_explored t = t.explored

let best_slot (t : t) =
  let best = ref 0 in
  for s = 1 to t.len - 1 do
    if t.acc.(s) < t.acc.(!best) then best := s
  done;
  !best

let best_cost t = t.acc.(best_slot t)

let supports p =
  p.Problem.mode = Mixed_sync.Fully_synchronized
  && p.Problem.params.Sync_cost.reconf = Sync_cost.Task_sequential
  && Problem.n p >= 1
  && Problem.m p <= 12

(* Mirror Mt_dp's exact-mode guard: the frontier holds at most n^m
   start vectors. *)
let exact_ok p =
  let m = Problem.m p and n = float_of_int (Problem.n p) in
  let rec go j acc =
    if j >= m || acc > 2_000_000. then acc else go (j + 1) (acc *. n)
  in
  go 0 1. <= 2_000_000.

exception Cut

(* Poll the budget every 4096 emitted candidates, like Mt_dp. *)
let poll_mask = 4095

let combine params v mask m =
  match (params.Sync_cost.hyper : Sync_cost.upload) with
  | Task_parallel ->
      let best = ref 0 in
      for j = 0 to m - 1 do
        if mask land (1 lsl j) <> 0 && v.(j) > !best then best := v.(j)
      done;
      !best
  | Task_sequential ->
      let s = ref 0 in
      for j = 0 to m - 1 do
        if mask land (1 lsl j) <> 0 then s := !s + v.(j)
      done;
      !s

(* Smallest b with max < 2^b (b >= 1): the per-task field width of the
   packed start-vector key at a level where starts range over
   [0..max].  Any injective key works — slot order, and hence
   determinism, comes from the emission order alone. *)
let bits_for max =
  let rec go b = if max < 1 lsl b then b else go (b + 1) in
  go 1

type level = {
  mutable s : int array;
  mutable a : int array;
  mutable b : (int * int) list array;
  mutable len : int;
  mutable cap : int;
}

let make_level m cap =
  {
    s = Array.make (cap * m) 0;
    a = Array.make cap 0;
    b = Array.make cap [];
    len = 0;
    cap;
  }

let ensure lv m needed =
  if needed > lv.cap then begin
    let cap = max needed (2 * lv.cap) in
    let s = Array.make (cap * m) 0
    and a = Array.make cap 0
    and b = Array.make cap [] in
    Array.blit lv.s 0 s 0 (lv.len * m);
    Array.blit lv.a 0 a 0 lv.len;
    Array.blit lv.b 0 b 0 lv.len;
    lv.s <- s;
    lv.a <- a;
    lv.b <- b;
    lv.cap <- cap
  end

(* Run the DP across steps [t.n_done .. upto-1] of [problem] (>= 1:
   step 0 is laid down by [start]).  The level loop is oblivious to
   [upto], so a prefix run followed by [extend] performs exactly the
   computations of a full run — the basis of the bit-identical
   incremental ≡ full guarantee. *)
let advance ~budget (t : t) problem ~upto =
  let m = Problem.m problem in
  let oracle = problem.Problem.oracle in
  let sc = oracle.Interval_cost.step_cost in
  let params = problem.Problem.params in
  let pub = params.Sync_cost.pub in
  let masks =
    if problem.Problem.machine_class = Problem.All_task then
      [| 0; (1 lsl m) - 1 |]
    else Array.init (1 lsl m) Fun.id
  in
  let nmasks = Array.length masks in
  let hyper_of = Array.make (1 lsl m) 0 in
  Array.iter
    (fun mask -> hyper_of.(mask) <- combine params oracle.Interval_cost.v mask m)
    masks;
  let cur = make_level m (max 16 t.len) in
  Array.blit t.starts 0 cur.s 0 (t.len * m);
  Array.blit t.acc 0 cur.a 0 t.len;
  Array.blit t.breaks 0 cur.b 0 t.len;
  cur.len <- t.len;
  let nxt = make_level m 1024 in
  let slots_int : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let slots_str : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Array.make m 0 in
  let explored = ref t.explored in
  let truncations = ref t.truncations in
  let cut = ref t.cut in
  let emitted = ref 0 in
  let step_done = ref t.n_done in
  (try
     for i = t.n_done to upto - 1 do
       step_done := i;
       if Budget.exhausted budget then raise Cut;
       Hashtbl.reset slots_int;
       Hashtbl.reset slots_str;
       nxt.len <- 0;
       let kb = bits_for i in
       let packable = m * kb <= 62 in
       for s = 0 to cur.len - 1 do
         let base = s * m in
         for mi = 0 to nmasks - 1 do
           let mask = masks.(mi) in
           incr emitted;
           if !emitted land poll_mask = 0 && Budget.exhausted budget then
             raise Cut;
           let chg = ref (pub + hyper_of.(mask)) in
           for j = 0 to m - 1 do
             if mask land (1 lsl j) <> 0 then begin
               scratch.(j) <- i;
               chg := !chg + sc j i i
             end
             else begin
               let lo = cur.s.(base + j) in
               scratch.(j) <- lo;
               chg :=
                 !chg + ((i - lo + 1) * sc j lo i) - ((i - lo) * sc j lo (i - 1))
             end
           done;
           let acc' = cur.a.(s) + !chg in
           let ikey = ref 0 and skey = ref "" in
           if packable then
             for j = 0 to m - 1 do
               ikey := (!ikey lsl kb) lor scratch.(j)
             done
           else begin
             let bytes = Bytes.create (m * 4) in
             for j = 0 to m - 1 do
               Bytes.set_int32_le bytes (j * 4) (Int32.of_int scratch.(j))
             done;
             skey := Bytes.unsafe_to_string bytes
           end;
           let existing =
             if packable then Hashtbl.find_opt slots_int !ikey
             else Hashtbl.find_opt slots_str !skey
           in
           let mk_breaks () =
             let l = ref cur.b.(s) in
             for j = 0 to m - 1 do
               if mask land (1 lsl j) <> 0 then l := (j, i) :: !l
             done;
             !l
           in
           match existing with
           | Some sl ->
               (* Equal start vectors have identical futures: keep the
                  strictly cheaper one (ties keep the first emission,
                  for determinism). *)
               if acc' < nxt.a.(sl) then begin
                 nxt.a.(sl) <- acc';
                 nxt.b.(sl) <- mk_breaks ()
               end
           | None ->
               ensure nxt m (nxt.len + 1);
               let sl = nxt.len in
               Array.blit scratch 0 nxt.s (sl * m) m;
               nxt.a.(sl) <- acc';
               nxt.b.(sl) <- mk_breaks ();
               if packable then Hashtbl.add slots_int !ikey sl
               else Hashtbl.add slots_str !skey sl;
               nxt.len <- sl + 1
         done
       done;
       (match t.max_states with
       | Some cap when nxt.len > cap ->
           (* Beam truncation: keep the cheapest [cap] states, ties by
              insertion index, survivors in insertion order. *)
           let idx = Array.init nxt.len Fun.id in
           Array.sort
             (fun x y ->
               let c = compare nxt.a.(x) nxt.a.(y) in
               if c <> 0 then c else compare x y)
             idx;
           let keep = Array.sub idx 0 cap in
           Array.sort compare keep;
           let s = Array.make (cap * m) 0
           and a = Array.make cap 0
           and b = Array.make cap [] in
           Array.iteri
             (fun k old ->
               Array.blit nxt.s (old * m) s (k * m) m;
               a.(k) <- nxt.a.(old);
               b.(k) <- nxt.b.(old))
             keep;
           nxt.s <- s;
           nxt.a <- a;
           nxt.b <- b;
           nxt.cap <- cap;
           nxt.len <- cap;
           incr truncations
       | _ -> ());
       explored := !explored + nxt.len;
       (* Swap the level buffers; nxt is rebuilt next iteration. *)
       let s = cur.s and a = cur.a and b = cur.b and cap = cur.cap in
       cur.s <- nxt.s;
       cur.a <- nxt.a;
       cur.b <- nxt.b;
       cur.cap <- nxt.cap;
       cur.len <- nxt.len;
       nxt.s <- s;
       nxt.a <- a;
       nxt.b <- b;
       nxt.cap <- cap;
       nxt.len <- 0;
       step_done := i + 1
     done
   with Cut ->
     (* Deadline: collapse to the cheapest state at the last completed
        horizon and fast-forward the remaining steps with no further
        restarts — cheap, admissible, marked cut off. *)
     cut := true;
     let best = ref 0 in
     for s = 1 to cur.len - 1 do
       if cur.a.(s) < cur.a.(!best) then best := s
     done;
     let b = !best in
     let starts = Array.sub cur.s (b * m) m in
     let acc = ref cur.a.(b) in
     for i = !step_done to upto - 1 do
       let chg = ref pub in
       for j = 0 to m - 1 do
         let lo = starts.(j) in
         chg := !chg + ((i - lo + 1) * sc j lo i) - ((i - lo) * sc j lo (i - 1))
       done;
       acc := !acc + !chg
     done;
     Array.blit starts 0 cur.s 0 m;
     cur.a.(0) <- !acc;
     cur.b.(0) <- cur.b.(b);
     cur.len <- 1);
  {
    t with
    problem;
    n_done = upto;
    len = cur.len;
    starts = Array.sub cur.s 0 (cur.len * m);
    acc = Array.sub cur.a 0 cur.len;
    breaks = Array.sub cur.b 0 cur.len;
    explored = !explored;
    truncations = !truncations;
    cut = !cut;
  }

let start ?max_states ?(budget = Budget.unlimited) problem =
  if not (supports problem) then
    invalid_arg
      "Online_dp.start: needs the fully synchronized mode, task-sequential \
       reconfiguration uploads, and m <= 12";
  (match max_states with
  | Some c when c < 1 -> invalid_arg "Online_dp.start: max_states must be >= 1"
  | _ -> ());
  if max_states = None && not (exact_ok problem) then
    invalid_arg
      "Online_dp.start: exact frontier too large (n^m > 2e6); pass ~max_states";
  let m = Problem.m problem and n = Problem.n problem in
  let oracle = problem.Problem.oracle in
  let params = problem.Problem.params in
  let v = oracle.Interval_cost.v in
  (* Step 0: column 0 is all-true — every task restarts. *)
  let full = (1 lsl m) - 1 in
  let acc0 = ref (params.Sync_cost.w + params.Sync_cost.pub + combine params v full m) in
  let breaks0 = ref [] in
  for j = 0 to m - 1 do
    acc0 := !acc0 + oracle.Interval_cost.step_cost j 0 0;
    breaks0 := (j, 0) :: !breaks0
  done;
  let t0 =
    {
      problem;
      n_done = 1;
      len = 1;
      starts = Array.make m 0;
      acc = [| !acc0 |];
      breaks = [| !breaks0 |];
      explored = 1;
      truncations = 0;
      cut = false;
      max_states;
    }
  in
  if n = 1 then t0 else advance ~budget t0 problem ~upto:n

let extend ?(budget = Budget.unlimited) t problem' =
  let m = Problem.m t.problem in
  let fail msg = invalid_arg ("Online_dp.extend: " ^ msg) in
  if Problem.m problem' <> m then fail "task count changed";
  if Problem.n problem' < t.n_done then fail "horizon shrank";
  if not (supports problem') then
    fail "extended problem is unsupported (mode/uploads/m)";
  if problem'.Problem.params <> t.problem.Problem.params then
    fail "parameters changed";
  if problem'.Problem.machine_class <> t.problem.Problem.machine_class then
    fail "machine class changed";
  let v = t.problem.Problem.oracle.Interval_cost.v in
  if problem'.Problem.oracle.Interval_cost.v <> v then
    fail "per-task hyperreconfiguration costs changed";
  if t.max_states = None && not (exact_ok problem') then
    fail "exact frontier too large (n^m > 2e6) at the new horizon";
  (* Spot-check the prefix-agreement contract: the appended oracle must
     cost the old steps exactly as before. *)
  let old_sc = t.problem.Problem.oracle.Interval_cost.step_cost in
  let new_sc = problem'.Problem.oracle.Interval_cost.step_cost in
  let hi = t.n_done - 1 in
  for j = 0 to m - 1 do
    if old_sc j 0 hi <> new_sc j 0 hi || old_sc j hi hi <> new_sc j hi hi then
      fail "oracle disagrees with the prefix (not a trace extension)"
  done;
  if Problem.n problem' = t.n_done then { t with problem = problem' }
  else advance ~budget t problem' ~upto:(Problem.n problem')

let solution t =
  let best = best_slot t in
  let m = Problem.m t.problem in
  let rows = Array.make m [] in
  List.iter (fun (j, i) -> rows.(j) <- i :: rows.(j)) t.breaks.(best);
  let bp = Breakpoints.of_rows ~m ~n:t.n_done rows in
  let cost = Problem.eval t.problem bp in
  let exact = (not t.cut) && t.max_states = None in
  Solution.make ~solver:"online-dp" ~exact ~cut_off:t.cut
    ~stats:
      [
        ("states", string_of_int t.explored);
        ("frontier", string_of_int t.len);
        ("truncations", string_of_int t.truncations);
      ]
    ~cost bp
