(** Simulated annealing for the fully synchronized multi-task problem.

    Registered in {!Solver_registry} as ["anneal"]; new call sites
    should prefer the registry (see [docs/solvers.md]).

    Same genome and fitness as {!Mt_ga}; the neighborhood is the
    {!Mt_moves.mutate} move distribution.  Included as an ablation
    baseline against the paper's GA choice. *)

type result = {
  cost : int;
  bp : Breakpoints.t;
  evaluations : int;
  cut_off : bool;  (** the budget expired before the schedule completed *)
}

(** [solve ?params ?config ?init ?budget ~rng oracle] anneals from
    [init] (default: the best greedy heuristic).  The [budget] is
    polled every few annealing steps; on exhaustion the best-so-far
    plan is returned with [cut_off = true]. *)
val solve :
  ?params:Sync_cost.params ->
  ?config:Hr_evolve.Anneal.config ->
  ?init:Breakpoints.t ->
  ?budget:Hr_util.Budget.t ->
  rng:Hr_util.Rng.t ->
  Interval_cost.t ->
  result
