module Bitset = Hr_util.Bitset

type t = {
  n : int;
  space : Switch_space.t;
  seg_start : int array; (* seg_start.(k) = first step of segment k *)
  seg_req : Bitset.t array; (* requirement of segment k *)
  occ : int array array; (* per switch: ascending segment indices *)
  switches : int array; (* switches with at least one occurrence *)
  union_cutoff : int; (* segment spans up to this count by direct union *)
  queries : int Atomic.t;
}

let of_trace trace =
  let n = Trace.length trace in
  let space = Trace.space trace in
  let width = Switch_space.size space in
  let segs = Trace.segments trace in
  let nsegs = Array.length segs in
  let seg_start = Array.make nsegs 0 in
  let seg_req = Array.make nsegs (Switch_space.empty space) in
  let counts = Array.make width 0 in
  let pos = ref 0 in
  Array.iteri
    (fun k (s : Trace.segment) ->
      seg_start.(k) <- !pos;
      seg_req.(k) <- s.Trace.req;
      pos := !pos + s.Trace.len;
      Bitset.iter (fun sw -> counts.(sw) <- counts.(sw) + 1) s.Trace.req)
    segs;
  let occ = Array.init width (fun sw -> Array.make counts.(sw) 0) in
  let fill = Array.make width 0 in
  Array.iteri
    (fun k req ->
      Bitset.iter
        (fun sw ->
          occ.(sw).(fill.(sw)) <- k;
          fill.(sw) <- fill.(sw) + 1)
        req)
    seg_req;
  let switches =
    let present = ref [] in
    for sw = width - 1 downto 0 do
      if counts.(sw) > 0 then present := sw :: !present
    done;
    Array.of_list !present
  in
  (* The two query strategies cost ~(span · bitset words) vs
     ~(occurring switches · log segments); the cutoff picks whichever
     is cheaper per query, so short spans — the bulk of what greedy
     heuristics and windowed DPs ask — stay O(span). *)
  let words = ((width + 63) / 64) + 1 in
  let log2 =
    let rec go acc k = if k <= 1 then acc else go (acc + 1) (k / 2) in
    go 1 nsegs
  in
  let union_cutoff = max 1 (Array.length switches * log2 / words) in
  {
    n;
    space;
    seg_start;
    seg_req;
    occ;
    switches;
    union_cutoff;
    queries = Atomic.make 0;
  }

let length t = t.n
let segments t = Array.length t.seg_start

(* Greatest [k] with [seg_start.(k) <= step] — the segment containing
   the step.  The steps of a segment share one requirement, so every
   step-range query reduces to a segment-range query. *)
let seg_of t step =
  let lo = ref 0 and hi = ref (Array.length t.seg_start - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.seg_start.(mid) <= step then lo := mid else hi := mid - 1
  done;
  !lo

(* Least index [i] with [a.(i) >= k], or [length a] when none. *)
let lower_bound a k =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < k then lo := mid + 1 else hi := mid
  done;
  !lo

let check_range t lo hi =
  if lo < 0 || hi >= t.n || lo > hi then
    invalid_arg (Printf.sprintf "Occ_index: bad range [%d,%d] (n=%d)" lo hi t.n)

let size t lo hi =
  check_range t lo hi;
  Atomic.incr t.queries;
  let slo = seg_of t lo and shi = seg_of t hi in
  if shi - slo < t.union_cutoff then begin
    (* Short span: accumulate the union directly — O(span) one-word
       bitset unions beats a binary search per occurring switch. *)
    if slo = shi then Bitset.cardinal t.seg_req.(slo)
    else begin
      let acc = ref (Bitset.copy t.seg_req.(slo)) in
      for k = slo + 1 to shi do
        acc := Bitset.union_into ~into:!acc t.seg_req.(k)
      done;
      Bitset.cardinal !acc
    end
  end
  else begin
    let count = ref 0 in
    for i = 0 to Array.length t.switches - 1 do
      let occ = t.occ.(t.switches.(i)) in
      (* next_occ: the switch's first occurrence at or after segment
         [slo]; the switch is in U(lo,hi) iff that occurrence is ≤ shi. *)
      let k = lower_bound occ slo in
      if k < Array.length occ && occ.(k) <= shi then incr count
    done;
    !count
  end

let union t lo hi =
  check_range t lo hi;
  let slo = seg_of t lo and shi = seg_of t hi in
  let acc = ref (Bitset.copy t.seg_req.(slo)) in
  for k = slo + 1 to shi do
    acc := Bitset.union_into ~into:!acc t.seg_req.(k)
  done;
  !acc

let queries t = Atomic.get t.queries

let entries t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.occ

let word = Sys.word_size / 8

let bytes t =
  (* Words held by the index proper: the two per-segment arrays, the
     per-switch occurrence lists (headers + cells), and the segment
     requirement bitsets (one word of payload per 64 switches, plus
     headers). *)
  let nsegs = Array.length t.seg_start in
  let occ_cells = Array.fold_left (fun acc a -> acc + Array.length a + 1) 0 t.occ in
  let width = Switch_space.size t.space in
  let bitset_words = ((width + 63) / 64) + 2 in
  ((2 * nsegs) + occ_cells + Array.length t.switches + (nsegs * bitset_words)) * word
