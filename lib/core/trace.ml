module Bitset = Hr_util.Bitset

type t = { space : Switch_space.t; reqs : Bitset.t array }

let make space reqs =
  let width = Switch_space.size space in
  Array.iteri
    (fun i r ->
      if Bitset.width r <> width then
        invalid_arg
          (Printf.sprintf "Trace.make: requirement %d has width %d, expected %d"
             i (Bitset.width r) width))
    reqs;
  { space; reqs = Array.copy reqs }

let of_lists space reqss =
  make space (Array.of_list (List.map (Switch_space.subset space) reqss))

let space t = t.space
let length t = Array.length t.reqs

let req t i =
  if i < 0 || i >= length t then invalid_arg "Trace.req: step out of range";
  t.reqs.(i)

let reqs t = Array.copy t.reqs

let check_range t lo hi =
  if lo < 0 || hi >= length t || lo > hi then
    invalid_arg (Printf.sprintf "Trace: bad range [%d,%d] (n=%d)" lo hi (length t))

let range_union t lo hi =
  check_range t lo hi;
  let acc = Bitset.copy t.reqs.(lo) in
  let rec go i acc = if i > hi then acc else go (i + 1) (Bitset.union_into ~into:acc t.reqs.(i)) in
  go (lo + 1) acc

let total_union t =
  if length t = 0 then Switch_space.empty t.space else range_union t 0 (length t - 1)

let sub t lo hi =
  check_range t lo hi;
  { t with reqs = Array.sub t.reqs lo (hi - lo + 1) }

let concat a b =
  if Switch_space.size a.space <> Switch_space.size b.space then
    invalid_arg "Trace.concat: universe mismatch";
  { a with reqs = Array.append a.reqs b.reqs }

let project t keep ~to_space ~renumber =
  let width = Switch_space.size to_space in
  let project_one r =
    Bitset.fold
      (fun i acc -> if Bitset.mem keep i then Bitset.add acc (renumber i) else acc)
      r (Bitset.create width)
  in
  { space = to_space; reqs = Array.map project_one t.reqs }

type segment = { len : int; req : Bitset.t }

let segments t =
  let n = Array.length t.reqs in
  if n = 0 then [||]
  else begin
    let segs = ref [] and start = ref 0 in
    for i = 1 to n - 1 do
      if not (Bitset.equal t.reqs.(i) t.reqs.(!start)) then begin
        segs := { len = i - !start; req = t.reqs.(!start) } :: !segs;
        start := i
      end
    done;
    segs := { len = n - !start; req = t.reqs.(!start) } :: !segs;
    Array.of_list (List.rev !segs)
  end

let of_segments space segs =
  Array.iteri
    (fun k s ->
      if s.len <= 0 then
        invalid_arg
          (Printf.sprintf "Trace.of_segments: segment %d has length %d" k s.len))
    segs;
  let n = Array.fold_left (fun acc s -> acc + s.len) 0 segs in
  let reqs = Array.make (max n 1) (Switch_space.empty space) in
  let pos = ref 0 in
  Array.iter
    (fun s ->
      for _ = 1 to s.len do
        reqs.(!pos) <- s.req;
        incr pos
      done)
    segs;
  make space (if n = 0 then [||] else reqs)

let sizes t = Array.map Bitset.cardinal t.reqs

let pp ppf t =
  Array.iteri
    (fun i r -> Format.fprintf ppf "%3d: %a@." i (Switch_space.pp_set t.space) r)
    t.reqs
