(** The solver registry: name → capabilities → solve.

    Every PHC backend in the library is registered here under a stable
    name; CLIs, benches and examples resolve solvers by name instead of
    importing solver modules, and {!Solver.race} takes its contestants
    from {!applicable}.  Out-of-tree backends can {!register} their
    own.

    Built-in backends (see [docs/solvers.md] for the capability
    matrix):

    - ["st-dp"] — exact single-task DP ({!St_opt}), m = 1, pub = 0;
    - ["all-task"] — exact for the [All_task] machine class (combined
      single-task DP, {!Mt_classes}); a heuristic bound elsewhere;
    - ["mt-dp"] — exact multi-task DP ({!Mt_dp}, Theorem 1), instances
      with n^m ≤ 2·10⁶;
    - ["mt-beam"] — {!Mt_dp} beam search, m ≤ 6;
    - ["greedy"] — best of the {!Mt_greedy} portfolio;
    - ["hill-climb"] — {!Mt_local} first-improvement descent;
    - ["anneal"] — {!Mt_anneal} simulated annealing;
    - ["ga"] — {!Mt_ga}, the paper's §6 method;
    - ["ga-polish"] — ["ga"] polished by {!Mt_local};
    - ["brute"] — {!Brute.multi} enumeration, (n-1)·m ≤ 18;
    - ["async-opt"] — exact for the non-synchronized mode (per-task
      solo optima, {!Mt_async});
    - ["mode-climb"] — bit-flip descent on {!Problem.eval} for the
      intermediate synchronization modes. *)

(** [register ?override solver] adds a solver.  Raises
    [Invalid_argument] on a duplicate name unless [override]. *)
val register : ?override:bool -> Solver.t -> unit

val find : string -> Solver.t option

(** [find_exn name] raises [Invalid_argument] listing the known names
    when [name] is not registered. *)
val find_exn : string -> Solver.t

(** [all ()] — every registered solver, in registration order
    (built-ins first). *)
val all : unit -> Solver.t list

val names : unit -> string list

(** [applicable problem] — registered solvers whose capability
    predicate accepts [problem]. *)
val applicable : Problem.t -> Solver.t list

(** [exact_for problem] — the applicable solvers of kind [Exact]:
    "which exact solvers handle this instance size?" *)
val exact_for : Problem.t -> Solver.t list

(** [solve ?rng ?seed ?budget name problem] =
    [Solver.solve (find_exn name)]. *)
val solve :
  ?rng:Hr_util.Rng.t ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  string ->
  Problem.t ->
  Solution.t

(** [race ?domains ?seed ?budget ?names problem] races the named
    solvers (default: every applicable registered solver) under a
    shared cooperative budget and returns the best solution.  See
    {!Solver.race}. *)
val race :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  ?names:string list ->
  Problem.t ->
  Solution.t

(** [race_report] is {!race} plus one {!Solver.report} per contestant
    (wall-clock, outcome, solution) — the input to {!Telemetry.make}. *)
val race_report :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  ?names:string list ->
  Problem.t ->
  Solution.t * Solver.report list

(** [run_all] races without picking a winner: every contestant's
    report, crashes and cut-offs included.  See {!Solver.run_all}. *)
val run_all :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  ?names:string list ->
  Problem.t ->
  Solver.report list
