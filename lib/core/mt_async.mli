(** Planning for non-synchronized (asynchronous) multi-task machines
    (§4.1).

    Registered in {!Solver_registry} as ["async-opt"]; new call sites
    should prefer the registry (see [docs/solvers.md]).

    On a non-synchronized machine the tasks' reconfiguration times
    overlap with the other tasks' computation, operations are always
    task parallel, and the General Multi Task cost is

    {v init(h) + max_j Σ_i ( v_j + cost_{j,i} · |S_{j,i}| ) v}

    — the tasks are {e decoupled}: each task's inner sum is exactly the
    single-task objective, so the optimal asynchronous plan is just the
    per-task optimum and the machine-level time is the maximum of the
    solo optima.  This module packages that observation, making the
    asynchronous case exactly solvable in O(m·n²), and serves as the
    comparison point that prices the synchronization barriers of the
    fully synchronized machine (bench A12). *)

type result = {
  cost : int;  (** init_global + max over tasks of the solo optimum *)
  per_task : St_opt.result array;  (** each task's own optimal plan *)
  bottleneck : int;  (** index of a task attaining the maximum *)
}

(** [solve ?init_global oracle] — exact. *)
val solve : ?init_global:int -> Interval_cost.t -> result

(** [eval ?init_global oracle bp] — asynchronous cost of an arbitrary
    breakpoint matrix (each task's own blocks, no coupling):
    [init_global + max_j Σ_blocks (v_j + block_cost · len)]. *)
val eval : ?init_global:int -> Interval_cost.t -> Breakpoints.t -> int

(** [sync_penalty ~sync_cost result] is the ratio
    [sync_cost / result.cost] — how much the fully synchronized barrier
    semantics cost over free-running tasks on the same workload. *)
val sync_penalty : sync_cost:int -> result -> float
