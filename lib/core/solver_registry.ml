let table : (string, Solver.t) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

let register ?(override = false) (s : Solver.t) =
  let name = s.Solver.name in
  if Hashtbl.mem table name then begin
    if not override then
      invalid_arg
        (Printf.sprintf "Solver_registry.register: %S already registered" name)
  end
  else order := name :: !order;
  Hashtbl.replace table name s

let find name = Hashtbl.find_opt table name

let all () = List.rev_map (fun name -> Hashtbl.find table name) !order

let names () = List.rev !order

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Solver_registry: unknown solver %S (known: %s)" name
           (String.concat ", " (names ())))

let applicable problem =
  List.filter (fun s -> s.Solver.handles problem) (all ())

let exact_for problem =
  List.filter
    (fun (s : Solver.t) -> s.Solver.kind = Solver.Exact)
    (applicable problem)

let solve ?rng ?seed ?budget name problem =
  Solver.solve ?rng ?seed ?budget (find_exn name) problem

let resolve_contestants problem = function
  | None -> applicable problem
  | Some names -> List.map find_exn names

let run_all ?domains ?seed ?budget ?names:wanted problem =
  Solver.run_all ?domains ?seed ?budget (resolve_contestants problem wanted)
    problem

let race_report ?domains ?seed ?budget ?names:wanted problem =
  Solver.race_report ?domains ?seed ?budget (resolve_contestants problem wanted)
    problem

let race ?domains ?seed ?budget ?names:wanted problem =
  Solver.race ?domains ?seed ?budget (resolve_contestants problem wanted) problem

(* ------------------------------------------------------------------ *)
(* Built-in backends.                                                  *)

let fully p = p.Problem.mode = Mixed_sync.Fully_synchronized
let partial p = p.Problem.machine_class <> Problem.All_task

(* Every built-in backend optimizes (and states exactness against) the
   base objective, so all of them refuse extended instances: under a
   joint cost an "exact" base answer would be a wrong claim.
   Extension-aware solvers (lib/place) register with their own
   predicates. *)
let sized p = Problem.plain p && Problem.n p >= 1

(* Mt_dp's exact mode refuses instances whose initial level (n^m
   states) exceeds two million; mirror its guard. *)
let dp_fan_out_ok p =
  let m = Problem.m p and n = float_of_int (Problem.n p) in
  let rec go j acc = if j >= m || acc > 2_000_000. then acc else go (j + 1) (acc *. n) in
  go 0 1. <= 2_000_000.

let st_dp =
  Solver.make ~name:"st-dp" ~kind:Solver.Exact
    ~doc:"single-task O(n^2) DP of [9] (exact)"
    ~handles:(fun p -> sized p && Problem.m p = 1 && p.Problem.params.Sync_cost.pub = 0)
    (fun ~budget:_ ~rng:_ p ->
      let r = St_opt.solve_oracle p.Problem.oracle ~task:0 in
      let bp = Breakpoints.of_rows ~m:1 ~n:(Problem.n p) [| r.St_opt.breaks |] in
      Solution.make ~solver:"st-dp" ~exact:true
        ~stats:[ ("blocks", string_of_int (List.length r.St_opt.breaks)) ]
        ~cost:r.St_opt.cost bp)

let all_task =
  Solver.make ~name:"all-task" ~kind:Solver.Exact
    ~doc:"combined single-task DP; exact for the all-task machine class"
    ~handles:(fun p -> sized p && fully p)
    (fun ~budget:_ ~rng:_ p ->
      let r = Mt_classes.solve_all_task ~params:p.Problem.params p.Problem.oracle in
      Solution.make ~solver:"all-task"
        ~exact:(p.Problem.machine_class = Problem.All_task)
        ~stats:
          [ ("shared-breaks", string_of_int (List.length r.Mt_classes.breaks)) ]
        ~cost:r.Mt_classes.cost r.Mt_classes.bp)

let dp_stats (r : Mt_dp.outcome) =
  [
    ("states", string_of_int r.Mt_dp.states_explored);
    ("truncations", string_of_int r.Mt_dp.truncations);
  ]

let mt_dp =
  Solver.make ~name:"mt-dp" ~kind:Solver.Exact
    ~doc:"exact multi-task DP (Theorem 1), n^m <= 2e6"
    ~handles:(fun p -> sized p && fully p && partial p && dp_fan_out_ok p)
    (fun ~budget ~rng:_ p ->
      let params = p.Problem.params in
      let ub = (Mt_greedy.best ~params p.Problem.oracle).Mt_greedy.cost in
      let r = Mt_dp.solve ~params ~upper_bound:ub ~budget p.Problem.oracle in
      Solution.make ~solver:"mt-dp" ~exact:r.Mt_dp.exact
        ~cut_off:r.Mt_dp.cut_off ~stats:(dp_stats r) ~cost:r.Mt_dp.cost
        r.Mt_dp.bp)

let brute =
  Solver.make ~name:"brute" ~kind:Solver.Exact
    ~doc:"exhaustive enumeration over the class-admissible matrices, <= 2^18"
    ~handles:(fun p -> sized p && Brute.feasible ~max_bits:18 p)
    (fun ~budget:_ ~rng:_ p ->
      let cost, bp = Brute.solve p in
      Solution.make ~solver:"brute" ~exact:true ~cost bp)

let mt_beam =
  Solver.make ~name:"mt-beam" ~kind:Solver.Heuristic
    ~doc:"beam-truncated multi-task DP (256 states), m <= 6"
    ~handles:(fun p -> sized p && fully p && partial p && Problem.m p <= 6)
    (fun ~budget ~rng:_ p ->
      let params = p.Problem.params in
      (* No upper bound: the beam's restricted block-end fan-out can make
         a heuristic bound unreachable, which would empty the frontier. *)
      let r = Mt_dp.solve ~params ~max_states:256 ~budget p.Problem.oracle in
      Solution.make ~solver:"mt-beam" ~exact:r.Mt_dp.exact
        ~cut_off:r.Mt_dp.cut_off ~stats:(dp_stats r) ~cost:r.Mt_dp.cost
        r.Mt_dp.bp)

let greedy =
  Solver.make ~name:"greedy" ~kind:Solver.Heuristic
    ~doc:"best of the greedy heuristic portfolio"
    ~handles:(fun p -> sized p && fully p && partial p)
    (fun ~budget:_ ~rng:_ p ->
      let e = Mt_greedy.best ~params:p.Problem.params p.Problem.oracle in
      Solution.make ~solver:"greedy"
        ~stats:[ ("heuristic", e.Mt_greedy.name) ]
        ~cost:e.Mt_greedy.cost e.Mt_greedy.bp)

let hill_climb =
  Solver.make ~name:"hill-climb" ~kind:Solver.Heuristic
    ~doc:"first-improvement bit-flip descent from the best heuristic"
    ~handles:(fun p -> sized p && fully p && partial p)
    (fun ~budget ~rng:_ p ->
      let r = Mt_local.solve ~params:p.Problem.params ~budget p.Problem.oracle in
      Solution.make ~solver:"hill-climb" ~cut_off:r.Mt_local.cut_off
        ~stats:
          [
            ("evaluations", string_of_int r.Mt_local.evaluations);
            ("rounds", string_of_int r.Mt_local.rounds);
          ]
        ~cost:r.Mt_local.cost r.Mt_local.bp)

let anneal =
  Solver.make ~name:"anneal" ~kind:Solver.Stochastic
    ~doc:"simulated annealing over breakpoint matrices"
    ~handles:(fun p -> sized p && fully p && partial p)
    (fun ~budget ~rng p ->
      let r = Mt_anneal.solve ~params:p.Problem.params ~budget ~rng p.Problem.oracle in
      Solution.make ~solver:"anneal" ~cut_off:r.Mt_anneal.cut_off
        ~stats:[ ("evaluations", string_of_int r.Mt_anneal.evaluations) ]
        ~cost:r.Mt_anneal.cost r.Mt_anneal.bp)

let ga =
  Solver.make ~name:"ga" ~kind:Solver.Stochastic
    ~doc:"genetic algorithm (the paper's Section 6 method)"
    ~handles:(fun p -> sized p && fully p && partial p)
    (fun ~budget ~rng p ->
      let r = Mt_ga.solve ~params:p.Problem.params ~budget ~rng p.Problem.oracle in
      Solution.make ~solver:"ga" ~cut_off:r.Mt_ga.cut_off
        ~stats:[ ("evaluations", string_of_int r.Mt_ga.evaluations) ]
        ~cost:r.Mt_ga.cost r.Mt_ga.bp)

let ga_polish =
  Solver.make ~name:"ga-polish" ~kind:Solver.Stochastic
    ~doc:"genetic algorithm polished by hill climbing"
    ~handles:(fun p -> sized p && fully p && partial p)
    (fun ~budget ~rng p ->
      let params = p.Problem.params in
      let g = Mt_ga.solve ~params ~budget ~rng p.Problem.oracle in
      let r = Mt_local.solve ~params ~init:g.Mt_ga.bp ~budget p.Problem.oracle in
      Solution.make ~solver:"ga-polish"
        ~cut_off:(g.Mt_ga.cut_off || r.Mt_local.cut_off)
        ~stats:
          [
            ( "evaluations",
              string_of_int (g.Mt_ga.evaluations + r.Mt_local.evaluations) );
          ]
        ~cost:r.Mt_local.cost r.Mt_local.bp)

let async_opt =
  Solver.make ~name:"async-opt" ~kind:Solver.Exact
    ~doc:"per-task solo optima; exact for the non-synchronized mode"
    ~handles:(fun p ->
      (* Independent per-task rows are inadmissible when the class
         forces uniform columns. *)
      sized p
      && p.Problem.mode = Mixed_sync.Non_synchronized
      && p.Problem.machine_class <> Problem.All_task)
    (fun ~budget:_ ~rng:_ p ->
      let r = Mt_async.solve p.Problem.oracle in
      let rows = Array.map (fun s -> s.St_opt.breaks) r.Mt_async.per_task in
      let bp = Breakpoints.of_rows ~m:(Problem.m p) ~n:(Problem.n p) rows in
      Solution.make ~solver:"async-opt" ~exact:true
        ~stats:[ ("bottleneck-task", string_of_int r.Mt_async.bottleneck) ]
        ~cost:r.Mt_async.cost bp)

let online_dp =
  Solver.make ~name:"online-dp" ~kind:Solver.Exact
    ~doc:"incremental block-start DP (extendable frontier); task-sequential reconf"
    ~handles:(fun p -> sized p && Online_dp.supports p && Online_dp.exact_ok p)
    (fun ~budget ~rng:_ p -> Online_dp.solution (Online_dp.start ~budget p))

let mode_climb =
  Solver.make ~name:"mode-climb" ~kind:Solver.Heuristic
    ~doc:"bit-flip descent on Problem.eval (intermediate sync modes)"
    ~handles:(fun p -> sized p && (not (fully p)) && partial p)
    (fun ~budget ~rng:_ p ->
      let o = p.Problem.oracle in
      let m = Problem.m p and n = Problem.n p in
      let rows =
        Array.init m (fun j -> (St_opt.solve_oracle o ~task:j).St_opt.breaks)
      in
      let bp = ref (Breakpoints.of_rows ~m ~n rows) in
      let cost = ref (Problem.eval p !bp) in
      let rounds = ref 0 in
      let improved = ref true in
      let cut = ref false in
      (* Budget polled once per task row: a row is m·n Problem.eval
         calls at most, well under a millisecond-scale deadline. *)
      while !improved && !rounds < 50 && not !cut do
        improved := false;
        incr rounds;
        for j = 0 to m - 1 do
          if Hr_util.Budget.exhausted budget then cut := true;
          if not !cut then
            for i = 1 to n - 1 do
              let cand = Breakpoints.set !bp j i (not (Breakpoints.is_break !bp j i)) in
              let c = Problem.eval p cand in
              if c < !cost then begin
                bp := cand;
                cost := c;
                improved := true
              end
            done
        done
      done;
      Solution.make ~solver:"mode-climb" ~cut_off:!cut
        ~stats:[ ("rounds", string_of_int !rounds) ]
        ~cost:!cost !bp)

let () =
  List.iter register
    [
      st_dp;
      all_task;
      mt_dp;
      brute;
      mt_beam;
      greedy;
      hill_climb;
      anneal;
      ga;
      ga_polish;
      async_opt;
      mode_climb;
      online_dp;
    ]
