(** Planning under the paper's three machine classes (§3).

    The all-task planner is registered in {!Solver_registry} as
    ["all-task"]; new call sites should prefer the registry (see
    [docs/solvers.md]).

    On a fully synchronized machine the classes differ in which
    breakpoint matrices are admissible:

    - {b partially reconfigurable}: hyperreconfigurations can only be
      done for {e all} tasks at a time — admissible matrices have
      uniform columns (every column all-true or all-false);
    - {b partially hyperreconfigurable}: any matrix (the unconstrained
      problem solved by {!Mt_dp} / {!Mt_ga});
    - {b restricted partially hyperreconfigurable}: local
      hyperreconfigurations are per-task but reconfigurations are
      all-task — on the fully synchronized cost model of §4.2 every
      task reconfigures at every step anyway, so the admissible set
      (and the optimum) coincides with the unconstrained class; the
      distinction only bites on asynchronous machines.

    The all-task class collapses to a {e single-task} problem over the
    combined oracle (hyper cost = the §4 combination of all [v_j];
    per-step cost = the combination of the per-task block costs), so it
    is solved {e exactly} in O(m·n²) by the single-task DP — giving a
    certified reference point that quantifies how much partial
    hyperreconfiguration buys (the paper's central message). *)

type outcome = {
  cost : int;
  bp : Breakpoints.t;  (** uniform-column matrix *)
  breaks : int list;  (** the shared hyperreconfiguration steps *)
}

(** [combined_oracle ?params oracle] is the single-task view of the
    all-task machine: [v = ] the §4 combination of all [v_j] and
    [step_cost lo hi = ] the combination of all tasks' block costs. *)
val combined_oracle : ?params:Sync_cost.params -> Interval_cost.t -> Interval_cost.t

(** [solve_all_task ?params oracle] — the exact optimum over
    uniform-column matrices.  [Sync_cost.eval ?params oracle
    outcome.bp = outcome.cost] holds (checked by the tests). *)
val solve_all_task : ?params:Sync_cost.params -> Interval_cost.t -> outcome

(** [advantage ?params ~rng oracle] returns
    [(all_task_cost, partial_cost)]: the exact all-task optimum versus
    the best plan the unconstrained optimizers find (GA polished by
    hill climbing).  [partial_cost <= all_task_cost] always — partial
    hyperreconfigurability only removes constraints. *)
val advantage :
  ?params:Sync_cost.params -> rng:Hr_util.Rng.t -> Interval_cost.t -> int * int
