(** Heuristic baselines for the fully synchronized multi-task problem.

    None of these search; they are the comparison points of the
    ablation benches and the seeds of the metaheuristics.

    The portfolio ({!best}) is registered in {!Solver_registry} as
    ["greedy"]; new call sites should prefer the registry (see
    [docs/solvers.md]). *)

(** A named heuristic outcome. *)
type entry = { name : string; cost : int; bp : Breakpoints.t }

(** [never oracle] hyperreconfigures only at step 0: every task keeps
    one hypercontext covering its whole trace. *)
val never : ?params:Sync_cost.params -> Interval_cost.t -> entry

(** [every_step oracle] hyperreconfigures every task at every step:
    minimal hypercontexts, maximal hyperreconfiguration overhead. *)
val every_step : ?params:Sync_cost.params -> Interval_cost.t -> entry

(** [periodic oracle k] breaks every task every [k] steps. *)
val periodic : ?params:Sync_cost.params -> Interval_cost.t -> int -> entry

(** [best_periodic oracle] scans all periods 1..n and returns the
    cheapest. *)
val best_periodic : ?params:Sync_cost.params -> Interval_cost.t -> entry

(** [window oracle w] is the online look-ahead heuristic: each task
    commits to the union of the next [w] steps and hyperreconfigures
    when a requirement escapes it (the committed block is then
    re-costed as its exact interval union, i.e. the plan is evaluated
    offline like every other plan). *)
val window : ?params:Sync_cost.params -> Interval_cost.t -> int -> entry

(** [per_task_opt oracle] runs the single-task optimum ({!St_opt})
    independently on every task and stacks the rows — optimal without
    coupling, generally suboptimal with it; the strongest cheap seed. *)
val per_task_opt : ?params:Sync_cost.params -> Interval_cost.t -> entry

(** [portfolio oracle] evaluates all of the above (windows w ∈
    {2,4,8,16}, plus best period) and returns them sorted by cost. *)
val portfolio : ?params:Sync_cost.params -> Interval_cost.t -> entry list

(** [best oracle] is the head of {!portfolio}. *)
val best : ?params:Sync_cost.params -> Interval_cost.t -> entry
