type entry = { name : string; cost : int; bp : Breakpoints.t }

let entry ?params name (oracle : Interval_cost.t) bp =
  { name; cost = Sync_cost.eval ?params oracle bp; bp }

let never ?params (oracle : Interval_cost.t) =
  entry ?params "never" oracle
    (Breakpoints.create ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n)

let every_step ?params (oracle : Interval_cost.t) =
  entry ?params "every-step" oracle
    (Breakpoints.all ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n)

let periodic ?params (oracle : Interval_cost.t) k =
  entry ?params
    (Printf.sprintf "period-%d" k)
    oracle
    (Breakpoints.periodic ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n k)

(* Above this n the O(n²) members of the portfolio (the exhaustive
   period scan, the per-task DPs) dominate wall clock without earning
   their keep on large sparse-oracle instances; the portfolio degrades
   to its O(n log n) core. *)
let large_n = 4096

let best_periodic ?params (oracle : Interval_cost.t) =
  let n = oracle.Interval_cost.n in
  (* Exhaustive periods up to [large_n]; a geometric grid (ratio 3/2,
     plus the period-n endpoint) beyond it — evaluating period k costs
     O((n/k)·m) oracle queries, so the full scan is O(n log n · m)
     queries and infeasible at 10⁵ steps. *)
  let next k = if n <= large_n then k + 1 else max (k + 1) (k * 3 / 2) in
  let rec go k best =
    if k > n then best
    else
      let cand = periodic ?params oracle k in
      let k' = next k in
      let k' = if k' > n && k < n then n else k' in
      go k' (if cand.cost < best.cost then cand else best)
  in
  let first = periodic ?params oracle 1 in
  { (go 2 first) with name = "best-period" }

(* Online look-ahead: task j commits to the union of steps [i, i+w-1]
   and breaks at the first step whose requirement needs switches beyond
   the committed block — detected through the oracle as a step-cost
   increase over the committed window.  We work purely on breakpoints;
   the final plan is re-costed with exact interval unions. *)
let window ?params (oracle : Interval_cost.t) w =
  if w <= 0 then invalid_arg "Mt_greedy.window: w must be positive";
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let sc = oracle.Interval_cost.step_cost in
  let rows =
    Array.init m (fun j ->
        let rec go start i acc =
          if i >= n then List.rev acc
          else
            let window_hi = min (n - 1) (start + w - 1) in
            if i <= window_hi then go start (i + 1) acc
            else if
              (* Steps beyond the window stay in the block while they do
                 not enlarge its minimal hypercontext. *)
              sc j start i = sc j start window_hi
            then go start (i + 1) acc
            else go i (i + 1) (i :: acc)
        in
        go 0 1 [])
  in
  entry ?params (Printf.sprintf "window-%d" w) oracle (Breakpoints.of_rows ~m ~n rows)

let per_task_opt ?params (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let rows =
    Array.init m (fun j -> (St_opt.solve_oracle oracle ~task:j).St_opt.breaks)
  in
  entry ?params "per-task-opt" oracle (Breakpoints.of_rows ~m ~n rows)

let portfolio ?params (oracle : Interval_cost.t) =
  let windows = List.map (window ?params oracle) [ 2; 4; 8; 16 ] in
  (* per-task-opt is an O(n²) DP per task — exact per row, but past
     [large_n] it would eclipse every other member combined; the large
     regime keeps the linear-ish heuristics only. *)
  let opt =
    if oracle.Interval_cost.n <= large_n then [ per_task_opt ?params oracle ]
    else []
  in
  let entries =
    never ?params oracle :: every_step ?params oracle
    :: best_periodic ?params oracle :: (opt @ windows)
  in
  List.sort (fun a b -> compare a.cost b.cost) entries

let best ?params oracle =
  match portfolio ?params oracle with
  | hd :: _ -> hd
  | [] -> assert false
