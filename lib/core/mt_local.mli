(** Hill climbing on breakpoint matrices.

    Registered in {!Solver_registry} as ["hill-climb"]; new call sites
    should prefer the registry (see [docs/solvers.md]).

    First-improvement over the deterministic single-bit-flip
    neighborhood; cheap, deterministic, and the standard polishing pass
    applied to metaheuristic results in the benches. *)

type result = {
  cost : int;
  bp : Breakpoints.t;
  evaluations : int;
  rounds : int;
  cut_off : bool;  (** the budget expired before a local optimum *)
}

(** [solve ?params ?init ?max_rounds ?budget oracle] climbs from
    [init] (default: best greedy heuristic) to a 1-flip local optimum.
    The [budget] is polled per neighbor evaluation; on exhaustion the
    current matrix is returned with [cut_off = true]. *)
val solve :
  ?params:Sync_cost.params ->
  ?init:Breakpoints.t ->
  ?max_rounds:int ->
  ?budget:Hr_util.Budget.t ->
  Interval_cost.t ->
  result
