(** Hill climbing on breakpoint matrices.

    Registered in {!Solver_registry} as ["hill-climb"]; new call sites
    should prefer the registry (see [docs/solvers.md]).

    First-improvement over the deterministic single-bit-flip
    neighborhood; cheap, deterministic, and the standard polishing pass
    applied to metaheuristic results in the benches. *)

type result = { cost : int; bp : Breakpoints.t; evaluations : int; rounds : int }

(** [solve ?params ?init ?max_rounds oracle] climbs from [init]
    (default: best greedy heuristic) to a 1-flip local optimum. *)
val solve :
  ?params:Sync_cost.params ->
  ?init:Breakpoints.t ->
  ?max_rounds:int ->
  Interval_cost.t ->
  result
