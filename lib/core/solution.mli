(** The uniform result type of every registered PHC solver.

    Whatever backend produced it — exact DP, metaheuristic, greedy
    baseline — a solution is a breakpoint matrix together with its cost
    under the problem's objective ({!Problem.eval}), an exactness
    certificate, and free-form solver statistics.  Call-site code
    (CLIs, benches, examples) works on this type only, never on the
    per-module result records. *)

type t = {
  solver : string;  (** registry name of the backend that produced it *)
  cost : int;  (** total cost under {!Problem.eval} *)
  bp : Breakpoints.t;
  exact : bool;
      (** [true] when the backend certifies optimality for the problem
          (its class, mode and parameters); never [true] together with
          [cut_off] *)
  cut_off : bool;
      (** [true] when the backend's {!Hr_util.Budget.t} expired and
          this is its best-so-far plan, not its converged answer *)
  stats : (string * string) list;
      (** solver-reported extras, e.g. [("evaluations", "1234")] *)
}

(** [make ~solver ?exact ?cut_off ?stats ~cost bp] — [exact] and
    [cut_off] default to [false], [stats] to [].  A cut-off solution is
    forced inexact whatever [exact] says. *)
val make :
  solver:string ->
  ?exact:bool ->
  ?cut_off:bool ->
  ?stats:(string * string) list ->
  cost:int ->
  Breakpoints.t ->
  t

(** [task_breaks t j] is task [j]'s hyperreconfiguration steps,
    ascending (head = 0). *)
val task_breaks : t -> int -> int list

(** [break_steps t] is the sorted list of steps at which at least one
    task hyperreconfigures. *)
val break_steps : t -> int list

(** [num_break_steps t] is [List.length (break_steps t)]. *)
val num_break_steps : t -> int

(** [best sols] is a cheapest solution; on cost ties an exact one wins,
    then the earliest in the list.  Raises [Invalid_argument] on []. *)
val best : t list -> t

(** [pp] prints ["<solver>: cost <c> (exact|heuristic|cut off), <k> break steps"]. *)
val pp : Format.formatter -> t -> unit
