module A1 = Bigarray.Array1

type stats = {
  hits : int;
  misses : int;
  stores : int;
  invalid : int;
  errors : int;
}

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  invalid : int Atomic.t;
  errors : int Atomic.t;
}

let format_version = 1

(* 8-byte magic: "HRTBL" + zero-padded format version.  Bumping
   [format_version] changes these bytes, so every older file fails the
   magic check and reloads as a miss. *)
let magic = Printf.sprintf "HRTBL%03d" format_version
let header_bytes = 64
let endian_byte = if Sys.big_endian then '\002' else '\001'

let dir t = t.dir

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    stores = Atomic.get t.stores;
    invalid = Atomic.get t.invalid;
    errors = Atomic.get t.errors;
  }

(* ------------------------------------------------------------------ *)
(* Handles.  Memoized per directory so every producer/consumer of one
   cache dir (Problem.make, Case.problem, hrserve telemetry) shares a
   single stats block. *)

let registry : (string, t) Hashtbl.t = Hashtbl.create 4
let registry_mu = Mutex.create ()

let rec mkdir_p dir =
  if dir = "" || dir = "/" || dir = "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let of_dir dir =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match Hashtbl.find_opt registry dir with
      | Some t -> t
      | None ->
          mkdir_p dir;
          let t =
            {
              dir;
              hits = Atomic.make 0;
              misses = Atomic.make 0;
              stores = Atomic.make 0;
              invalid = Atomic.make 0;
              errors = Atomic.make 0;
            }
          in
          Hashtbl.add registry dir t;
          t)

(* ------------------------------------------------------------------ *)
(* Keys and paths. *)

let valid_key key =
  let ok_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
    | _ -> false
  in
  String.length key > 0
  && String.length key <= 128
  && key.[0] <> '.'
  && String.for_all ok_char key

let check_key key =
  if not (valid_key key) then
    invalid_arg (Printf.sprintf "Table_cache: invalid key %S" key)

let file t ~key =
  check_key key;
  Filename.concat t.dir (key ^ ".tbl")

(* ------------------------------------------------------------------ *)
(* Load. *)

let width_bytes width_bits = width_bits / 8

(* Header validation happens on an open channel; mapping reopens the
   file.  A concurrent rename between the two reads a fully-written
   replacement of the same key — same content, still safe. *)
let validate_header ic ~cells =
  match really_input_string ic header_bytes with
  | exception End_of_file -> None
  | hdr ->
      if String.sub hdr 0 8 <> magic then None
      else if hdr.[9] <> endian_byte then None
      else
        let width_bits = Char.code hdr.[8] in
        let fcells = Int64.to_int (String.get_int64_le hdr 16) in
        let digest = String.sub hdr 24 16 in
        if fcells <> cells then None
        else if width_bits <> 16 && width_bits <> 32 && width_bits <> 64 then None
        else
          let payload = cells * width_bytes width_bits in
          if in_channel_length ic <> header_bytes + payload then None
          else if Digest.channel ic payload <> digest then None
          else Some width_bits

let map_table path ~width_bits ~cells =
  if cells = 0 then
    (* mmap of a zero-length range is invalid; an empty table needs no
       backing file bytes anyway. *)
    Some (Flat_table.create ~max_value:(if width_bits = 16 then 0 else max_int) 0)
  else
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let pos = Int64.of_int header_bytes in
        let dims = [| cells |] in
        let a1 kind =
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos kind Bigarray.c_layout false dims)
        in
        match width_bits with
        | 16 -> Some (Flat_table.I16 (a1 Bigarray.int16_unsigned))
        | 32 -> Some (Flat_table.I32 (a1 Bigarray.int32))
        | 64 -> Some (Flat_table.I64 (a1 Bigarray.int64))
        | _ -> None)

let load t ~key ~cells =
  let path = file t ~key in
  if cells < 0 then invalid_arg "Table_cache.load: negative cells";
  match open_in_bin path with
  | exception Sys_error _ ->
      (* absent: a plain miss, not a corrupt entry *)
      Atomic.incr t.misses;
      None
  | ic -> (
      let verdict =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> try validate_header ic ~cells with Sys_error _ -> None)
      in
      match verdict with
      | None ->
          Atomic.incr t.invalid;
          Atomic.incr t.misses;
          None
      | Some width_bits -> (
          match map_table path ~width_bits ~cells with
          | exception (Unix.Unix_error _ | Sys_error _) ->
              Atomic.incr t.errors;
              Atomic.incr t.misses;
              None
          | None ->
              Atomic.incr t.invalid;
              Atomic.incr t.misses;
              None
          | Some table ->
              Atomic.incr t.hits;
              Some table))

(* ------------------------------------------------------------------ *)
(* Store. *)

let tmp_counter = Atomic.make 0

(* Payload cells are written in native byte order (the header's endian
   byte guards cross-host reuse) so a later load can mmap the bytes
   back without any conversion pass. *)
let write_payload oc table =
  let cells = Flat_table.length table in
  let chunk = 1 lsl 16 in
  let wb = width_bytes (Flat_table.width_bits table) in
  let buf = Bytes.create (chunk * wb) in
  let write_chunk fill lo hi =
    let len = hi - lo + 1 in
    for k = 0 to len - 1 do
      fill k (lo + k)
    done;
    output_bytes oc (if len * wb = Bytes.length buf then buf else Bytes.sub buf 0 (len * wb))
  in
  let rec go lo =
    if lo < cells then begin
      let hi = min (cells - 1) (lo + chunk - 1) in
      (match table with
      | Flat_table.I16 a -> write_chunk (fun k i -> Bytes.set_uint16_ne buf (k * 2) (A1.get a i)) lo hi
      | Flat_table.I32 a -> write_chunk (fun k i -> Bytes.set_int32_ne buf (k * 4) (A1.get a i)) lo hi
      | Flat_table.I64 a -> write_chunk (fun k i -> Bytes.set_int64_ne buf (k * 8) (A1.get a i)) lo hi);
      go (hi + 1)
    end
  in
  go 0

let header ~width_bits ~cells ~digest =
  let hdr = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 hdr 0 8;
  Bytes.set hdr 8 (Char.chr width_bits);
  Bytes.set hdr 9 endian_byte;
  Bytes.set_int64_le hdr 16 (Int64.of_int cells);
  Bytes.blit_string digest 0 hdr 24 16;
  hdr

let write_tmp tmp table =
  let cells = Flat_table.length table in
  let width_bits = Flat_table.width_bits table in
  let payload = cells * width_bytes width_bits in
  (* Pass 1: placeholder header + payload. *)
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (String.make header_bytes '\000');
      write_payload oc table);
  (* Pass 2: digest the payload as written. *)
  let digest =
    let ic = open_in_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        seek_in ic header_bytes;
        Digest.channel ic payload)
  in
  (* Pass 3: patch the real header in place. *)
  let hdr = header ~width_bits ~cells ~digest in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let rec write_all off =
        if off < header_bytes then
          write_all (off + Unix.write fd hdr off (header_bytes - off))
      in
      write_all 0)

let store t ~key table =
  let final = file t ~key in
  let tmp =
    Filename.concat t.dir
      (Printf.sprintf ".%s.%d.%d.tmp" key (Unix.getpid ())
         (Atomic.fetch_and_add tmp_counter 1))
  in
  match
    write_tmp tmp table;
    Unix.rename tmp final
  with
  | () -> Atomic.incr t.stores
  | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Atomic.incr t.errors
