(* Structured observability for solver runs: who ran, how long, how it
   ended, what the oracle cache did — exportable as JSON and printable
   as a table.  No external JSON dependency: the emitter below covers
   the subset this schema needs. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let buffer_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec buffer_add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips; %.3f is plenty for milliseconds and far
           more readable. *)
        Buffer.add_string buf (Printf.sprintf "%.3f" f)
      else Buffer.add_string buf "null"
  | String s -> buffer_add_json_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_add_json_string buf k;
          Buffer.add_char buf ':';
          buffer_add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  buffer_add_json buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

type t = {
  label : string;
  problem : string;
  m : int;
  n : int;
  seed : int;
  deadline_ms : int option;
  total_ms : float;
  oracle : Interval_cost.cache_stats;
  reports : Solver.report list;
  winner : string option;
}

let schema_version = "hyperreconf.telemetry/1"

(* The conventional per-backend work counters, in precedence order:
   whichever a solver reports first is its "iterations". *)
let iteration_keys = [ "evaluations"; "states"; "rounds" ]

let iterations (sol : Solution.t) =
  List.fold_left
    (fun acc key ->
      match acc with
      | Some _ -> acc
      | None ->
          Option.bind
            (List.assoc_opt key sol.Solution.stats)
            int_of_string_opt)
    None iteration_keys

let make ?(label = "race") ?deadline_ms ?(seed = Solver.default_seed)
    ~problem ~total_ms reports =
  let winner =
    match List.filter_map (fun r -> r.Solver.solution) reports with
    | [] -> None
    | sols -> Some (Solution.best sols).Solution.solver
  in
  {
    label;
    problem = Format.asprintf "%a" Problem.pp problem;
    m = Problem.m problem;
    n = Problem.n problem;
    seed;
    deadline_ms;
    total_ms;
    oracle = Interval_cost.cache_stats problem.Problem.oracle;
    reports;
    winner;
  }

let report_to_json (r : Solver.report) =
  let base =
    [
      ("name", String r.Solver.solver);
      ("kind", String (Solver.kind_name r.Solver.kind));
      ("outcome", String (Solver.outcome_name r.Solver.outcome));
      ("wall_ms", Float r.Solver.wall_ms);
    ]
  in
  let detail =
    match r.Solver.outcome with
    | Solver.Crashed e -> [ ("error", String (Printexc.to_string e)) ]
    | Solver.Finished | Solver.Cut_off -> []
  in
  let solution =
    match r.Solver.solution with
    | None -> []
    | Some sol ->
        [
          ("cost", Int sol.Solution.cost);
          ("exact", Bool sol.Solution.exact);
          ("cut_off", Bool sol.Solution.cut_off);
          ( "iterations",
            match iterations sol with Some i -> Int i | None -> Null );
          ( "stats",
            Obj (List.map (fun (k, v) -> (k, String v)) sol.Solution.stats) );
        ]
  in
  Obj (base @ detail @ solution)

let oracle_to_json (o : Interval_cost.cache_stats) =
  Obj
    [
      ("kind", String o.Interval_cost.kind);
      ("hits", Int o.Interval_cost.hits);
      ("misses", Int o.Interval_cost.misses);
      ("cells", Int o.Interval_cost.cells);
      ("build_ms", Float o.Interval_cost.build_ms);
    ]

let to_json t =
  Obj
    [
      ("schema", String schema_version);
      ("label", String t.label);
      ( "instance",
        Obj [ ("m", Int t.m); ("n", Int t.n); ("summary", String t.problem) ] );
      ("seed", Int t.seed);
      ( "deadline_ms",
        match t.deadline_ms with Some ms -> Int ms | None -> Null );
      ("total_ms", Float t.total_ms);
      ("oracle_cache", oracle_to_json t.oracle);
      ("solvers", List (List.map report_to_json t.reports));
      ("winner", match t.winner with Some w -> String w | None -> Null);
    ]

let to_string t = json_to_string (to_json t)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ------------------------------------------------------------------ *)

let pp fmt t =
  let row (r : Solver.report) =
    let cost, iters =
      match r.Solver.solution with
      | Some sol ->
          ( string_of_int sol.Solution.cost,
            match iterations sol with Some i -> string_of_int i | None -> "-" )
      | None -> ("-", "-")
    in
    let outcome =
      match r.Solver.outcome with
      | Solver.Crashed e -> "crashed: " ^ Printexc.to_string e
      | o -> Solver.outcome_name o
    in
    [
      r.Solver.solver;
      Printf.sprintf "%.1f" r.Solver.wall_ms;
      outcome;
      cost;
      iters;
    ]
  in
  Format.fprintf fmt "%s: %s, seed %d%s, %.1f ms total" t.label t.problem
    t.seed
    (match t.deadline_ms with
    | Some ms -> Printf.sprintf ", deadline %d ms" ms
    | None -> "")
    t.total_ms;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "oracle cache: %s, %d hits / %d misses, %d cells@."
    t.oracle.Interval_cost.kind t.oracle.Interval_cost.hits
    t.oracle.Interval_cost.misses t.oracle.Interval_cost.cells;
  Format.pp_print_string fmt
    (Hr_util.Tablefmt.render
       ~header:[ "solver"; "wall ms"; "outcome"; "cost"; "iterations" ]
       (List.map row t.reports));
  Format.pp_print_newline fmt ();
  (match t.winner with
  | Some w -> Format.fprintf fmt "winner: %s@." w
  | None -> Format.fprintf fmt "winner: none@.")
