(* Structured observability for solver runs: who ran, how long, how it
   ended, what the oracle cache did — exportable as JSON and printable
   as a table.  No external JSON dependency: the emitter below covers
   the subset this schema needs. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let buffer_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec buffer_add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.17g round-trips; %.3f is plenty for milliseconds and far
           more readable. *)
        Buffer.add_string buf (Printf.sprintf "%.3f" f)
      else Buffer.add_string buf "null"
  | String s -> buffer_add_json_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          buffer_add_json_string buf k;
          Buffer.add_char buf ':';
          buffer_add_json buf v)
        fields;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 1024 in
  buffer_add_json buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* A recursive-descent parser for the same subset: enough to read back
   anything [json_to_string] emits (telemetry dumps, conformance-corpus
   cases) without an external JSON dependency. *)
exception Parse_error of string

let json_of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error (Printf.sprintf "expected %C, got %C" c d)
    | None -> error (Printf.sprintf "expected %C, got end of input" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let utf8_encode buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= len then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' -> Buffer.add_char buf e; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > len then error "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> utf8_encode buf code
              | None -> error (Printf.sprintf "bad \\u escape %S" hex));
              go ()
          | c -> error (Printf.sprintf "bad escape \\%C" c))
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
          is_float := true;
          true
      | _ -> false
    in
    while !pos < len && numchar s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> error (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then error "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error ("Telemetry.json_of_string: " ^ msg)

(* ------------------------------------------------------------------ *)

type t = {
  label : string;
  problem : string;
  m : int;
  n : int;
  seed : int;
  deadline_ms : int option;
  total_ms : float;
  oracle : Interval_cost.cache_stats;
  reports : Solver.report list;
  winner : string option;
  ext : (string * (string * string) list) option;
}

let schema_version = "hyperreconf.telemetry/1"

(* Latency digest for serving summaries.  Stats.percentile raises on an
   empty sample — an idle server has one — so the guard lives here, at
   the telemetry boundary: no samples means null percentiles, not an
   Invalid_argument escaping through the summary writer. *)
let latency_summary samples =
  let n = Array.length samples in
  if n = 0 then
    Obj
      [
        ("count", Int 0);
        ("mean_ms", Null);
        ("p50_ms", Null);
        ("p95_ms", Null);
        ("p99_ms", Null);
        ("max_ms", Null);
      ]
  else
    let p q = Float (Hr_util.Stats.percentile samples q) in
    Obj
      [
        ("count", Int n);
        ("mean_ms", Float (Hr_util.Stats.mean samples));
        ("p50_ms", p 50.);
        ("p95_ms", p 95.);
        ("p99_ms", p 99.);
        ("max_ms", Float (Array.fold_left Float.max samples.(0) samples));
      ]

(* The conventional per-backend work counters, in precedence order:
   whichever a solver reports first is its "iterations". *)
let iteration_keys = [ "evaluations"; "states"; "rounds" ]

let iterations (sol : Solution.t) =
  List.fold_left
    (fun acc key ->
      match acc with
      | Some _ -> acc
      | None ->
          Option.bind
            (List.assoc_opt key sol.Solution.stats)
            int_of_string_opt)
    None iteration_keys

let make ?(label = "race") ?deadline_ms ?(seed = Solver.default_seed)
    ~problem ~total_ms reports =
  let winner =
    match List.filter_map (fun r -> r.Solver.solution) reports with
    | [] -> None
    | sols -> Some (Solution.best sols).Solution.solver
  in
  {
    label;
    problem = Format.asprintf "%a" Problem.pp problem;
    m = Problem.m problem;
    n = Problem.n problem;
    seed;
    deadline_ms;
    total_ms;
    oracle = Interval_cost.cache_stats problem.Problem.oracle;
    reports;
    winner;
    ext =
      Option.map
        (fun (e : Problem.extension) -> (e.Problem.tag, e.Problem.counters ()))
        problem.Problem.ext;
  }

let report_to_json (r : Solver.report) =
  let base =
    [
      ("name", String r.Solver.solver);
      ("kind", String (Solver.kind_name r.Solver.kind));
      ("outcome", String (Solver.outcome_name r.Solver.outcome));
      ("wall_ms", Float r.Solver.wall_ms);
    ]
  in
  let detail =
    match r.Solver.outcome with
    | Solver.Crashed e -> [ ("error", String (Printexc.to_string e)) ]
    | Solver.Finished | Solver.Cut_off -> []
  in
  let solution =
    match r.Solver.solution with
    | None -> []
    | Some sol ->
        [
          ("cost", Int sol.Solution.cost);
          ("exact", Bool sol.Solution.exact);
          ("cut_off", Bool sol.Solution.cut_off);
          ( "iterations",
            match iterations sol with Some i -> Int i | None -> Null );
          ( "stats",
            Obj (List.map (fun (k, v) -> (k, String v)) sol.Solution.stats) );
        ]
  in
  Obj (base @ detail @ solution)

let oracle_to_json (o : Interval_cost.cache_stats) =
  Obj
    [
      ("kind", String o.Interval_cost.kind);
      ("hits", Int o.Interval_cost.hits);
      ("misses", Int o.Interval_cost.misses);
      ("probe_full", Int o.Interval_cost.probe_full);
      ("slot_races", Int o.Interval_cost.slot_races);
      ("queries", Int o.Interval_cost.queries);
      ("cells", Int o.Interval_cost.cells);
      ("segments", Int o.Interval_cost.segments);
      ("build_ms", Float o.Interval_cost.build_ms);
      ("build_workers", Int o.Interval_cost.build_workers);
      ("build_seq_ms", Float o.Interval_cost.build_seq_ms);
      ( "build_speedup",
        (* Measured pooled-build speedup: sequential-equivalent over
           wall clock.  Null when the build was sequential (nothing to
           compare) or too fast to time. *)
        if o.Interval_cost.build_workers > 1 && o.Interval_cost.build_ms > 0. then
          Float (o.Interval_cost.build_seq_ms /. o.Interval_cost.build_ms)
        else Null );
      ("width_bits", Int o.Interval_cost.width_bits);
      ("bytes_resident", Int o.Interval_cost.bytes_resident);
      ("bytes_peak", Int o.Interval_cost.bytes_peak);
      ( "source",
        if o.Interval_cost.source = "" then Null
        else String o.Interval_cost.source );
    ]

let to_json t =
  Obj
    ([
       ("schema", String schema_version);
       ("label", String t.label);
       ( "instance",
         Obj [ ("m", Int t.m); ("n", Int t.n); ("summary", String t.problem) ] );
       ("seed", Int t.seed);
       ( "deadline_ms",
         match t.deadline_ms with Some ms -> Int ms | None -> Null );
       ("total_ms", Float t.total_ms);
       ("oracle_cache", oracle_to_json t.oracle);
       ("solvers", List (List.map report_to_json t.reports));
       ("winner", match t.winner with Some w -> String w | None -> Null);
     ]
    (* Additive: plain problems emit no "extension" field, keeping
       their documents byte-identical for earlier schema consumers. *)
    @
    match t.ext with
    | None -> []
    | Some (tag, counters) ->
        [
          ( "extension",
            Obj
              [
                ("tag", String tag);
                ( "counters",
                  Obj (List.map (fun (k, v) -> (k, String v)) counters) );
              ] );
        ])

let to_string t = json_to_string (to_json t)

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ------------------------------------------------------------------ *)

let pp fmt t =
  let row (r : Solver.report) =
    let cost, iters =
      match r.Solver.solution with
      | Some sol ->
          ( string_of_int sol.Solution.cost,
            match iterations sol with Some i -> string_of_int i | None -> "-" )
      | None -> ("-", "-")
    in
    let outcome =
      match r.Solver.outcome with
      | Solver.Crashed e -> "crashed: " ^ Printexc.to_string e
      | o -> Solver.outcome_name o
    in
    [
      r.Solver.solver;
      Printf.sprintf "%.1f" r.Solver.wall_ms;
      outcome;
      cost;
      iters;
    ]
  in
  Format.fprintf fmt "%s: %s, seed %d%s, %.1f ms total" t.label t.problem
    t.seed
    (match t.deadline_ms with
    | Some ms -> Printf.sprintf ", deadline %d ms" ms
    | None -> "")
    t.total_ms;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt
    "oracle cache: %s%s, %d hits / %d misses, %d cells (%d-bit, %d bytes)@."
    t.oracle.Interval_cost.kind
    (if t.oracle.Interval_cost.source = "" then ""
     else " [" ^ t.oracle.Interval_cost.source ^ "]")
    t.oracle.Interval_cost.hits t.oracle.Interval_cost.misses
    t.oracle.Interval_cost.cells t.oracle.Interval_cost.width_bits
    t.oracle.Interval_cost.bytes_resident;
  Format.pp_print_string fmt
    (Hr_util.Tablefmt.render
       ~header:[ "solver"; "wall ms"; "outcome"; "cost"; "iterations" ]
       (List.map row t.reports));
  Format.pp_print_newline fmt ();
  (match t.winner with
  | Some w -> Format.fprintf fmt "winner: %s@." w
  | None -> Format.fprintf fmt "winner: none@.")
