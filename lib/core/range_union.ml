module Bitset = Hr_util.Bitset

(* The triangular size table lives in one flat out-of-heap Flat_table:
   row lo starts at lo*n - lo*(lo-1)/2 and holds |U(lo,hi)| at offset
   hi - lo.  Cells are width-laddered to the cardinality of the whole
   trace's union (the largest any interval union can reach), so a
   typical table costs 2 bytes per cell and is never scanned by the
   GC. *)
type t = { trace : Trace.t; n : int; sizes : Flat_table.t; read : int -> int }

let tri_base n lo = (lo * n) - (lo * (lo - 1) / 2)

let make ?pool trace =
  let n = Trace.length trace in
  let cells = n * (n + 1) / 2 in
  let bound = Bitset.cardinal (Trace.total_union trace) in
  let sizes = Flat_table.create ~max_value:bound cells in
  let set = Flat_table.writer sizes in
  let row lo =
    let base = tri_base n lo in
    let acc = Bitset.copy (Trace.req trace lo) in
    set base (Bitset.cardinal acc);
    for hi = lo + 1 to n - 1 do
      ignore (Bitset.union_into ~into:acc (Trace.req trace hi));
      set (base + hi - lo) (Bitset.cardinal acc)
    done
  in
  (* Each lo row is an independent prefix-union sweep writing disjoint
     cells, so rows build in parallel; the cutoff is the shared
     Flat_table.parallel_build_cells constant (below it, queue traffic
     would dominate the sweeps). *)
  (match pool with
  | Some p when n > 1 && cells >= Flat_table.parallel_build_cells ->
      Hr_util.Pool.iter_chunks
        ~chunks:(min n ((Hr_util.Pool.size p + 1) * 4))
        p
        (fun lo hi ->
          for l = lo to hi do
            row l
          done)
        n
  | _ ->
      for lo = 0 to n - 1 do
        row lo
      done);
  { trace; n; sizes; read = Flat_table.reader sizes }

let length t = t.n

let size t lo hi =
  if lo < 0 || hi >= t.n || lo > hi then
    invalid_arg (Printf.sprintf "Range_union.size: bad range [%d,%d]" lo hi);
  t.read (tri_base t.n lo + hi - lo)

let union t lo hi = Trace.range_union t.trace lo hi

let trace t = t.trace

let table t = t.sizes
