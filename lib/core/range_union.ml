module Bitset = Hr_util.Bitset

(* sizes.(lo).(hi - lo) = |U(lo,hi)| *)
type t = { trace : Trace.t; sizes : int array array }

(* Each lo row is an independent prefix-union sweep, so rows can be
   built in parallel; below this many total cells the queue traffic
   would dominate the sweeps and the build stays sequential. *)
let parallel_rows_cells = 1 lsl 14

let make ?pool trace =
  let n = Trace.length trace in
  let row lo =
    let r = Array.make (n - lo) 0 in
    let acc = Bitset.copy (Trace.req trace lo) in
    r.(0) <- Bitset.cardinal acc;
    for hi = lo + 1 to n - 1 do
      ignore (Bitset.union_into ~into:acc (Trace.req trace hi));
      r.(hi - lo) <- Bitset.cardinal acc
    done;
    r
  in
  let sizes =
    match pool with
    | Some p when n > 1 && n * n >= parallel_rows_cells ->
        let sizes = Array.make n [||] in
        Hr_util.Pool.iter_chunks
          ~chunks:(min n ((Hr_util.Pool.size p + 1) * 4))
          p
          (fun lo hi ->
            for l = lo to hi do
              sizes.(l) <- row l
            done)
          n;
        sizes
    | _ -> Array.init n row
  in
  { trace; sizes }

let length t = Trace.length t.trace

let size t lo hi =
  if lo < 0 || hi >= length t || lo > hi then
    invalid_arg (Printf.sprintf "Range_union.size: bad range [%d,%d]" lo hi);
  t.sizes.(lo).(hi - lo)

let union t lo hi = Trace.range_union t.trace lo hi

let trace t = t.trace
