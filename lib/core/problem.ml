type machine_class = All_task | Partial | Restricted

type ext_data = ..

type extension = {
  tag : string;
  data : ext_data;
  extra_cost : Breakpoints.t -> int;
  scale : int -> extension;
  counters : unit -> (string * string) list;
}

type t = {
  oracle : Interval_cost.t;
  params : Sync_cost.params;
  mode : Mixed_sync.mode;
  machine_class : machine_class;
  ext : extension option;
}

let validate_mode_params mode (params : Sync_cost.params) =
  match mode with
  | Mixed_sync.Fully_synchronized -> ()
  | _ ->
      if params.Sync_cost.w <> 0 then
        invalid_arg "Problem.make: nonzero w needs the fully synchronized mode";
      if
        params.Sync_cost.hyper <> Sync_cost.Task_parallel
        || params.Sync_cost.reconf <> Sync_cost.Task_parallel
      then
        invalid_arg
          "Problem.make: sequential uploads need the fully synchronized mode";
      if params.Sync_cost.pub <> 0 && mode <> Mixed_sync.Context_synchronized then
        invalid_arg
          "Problem.make: pub > 0 needs context or full synchronization"

let make ?(params = Sync_cost.default_params)
    ?(mode = Mixed_sync.Fully_synchronized) ?(machine_class = Partial)
    ?(precompute = true) ?max_bytes ?cache_dir ?cache_key ?pool ?ext oracle =
  validate_mode_params mode params;
  let oracle =
    match cache_key with
    | Some key -> { oracle with Interval_cost.fingerprint = Some key }
    | None -> oracle
  in
  let cache = Option.map Table_cache.of_dir cache_dir in
  let oracle =
    if precompute then Interval_cost.precompute ?max_bytes ?cache ?pool oracle
    else oracle
  in
  { oracle; params; mode; machine_class; ext }

let plain t = Option.is_none t.ext
let with_ext t ext = { t with ext = Some ext }
let without_ext t = { t with ext = None }

let of_task_set ?params ?mode ?machine_class ?oracle ?max_bytes ?cache_dir ?pool
    ts =
  make ?params ?mode ?machine_class ?max_bytes ?cache_dir ?pool
    (Interval_cost.of_task_set ?pool ?policy:oracle ?max_bytes ts)

let of_trace ?v ?params trace =
  let v = match v with Some v -> v | None -> Switch_space.size (Trace.space trace) in
  make ?params (Interval_cost.of_single ~v trace)

let of_dag ?params model seq =
  make ?params (Dag_model.oracle ~v:[| Dag_model.w model |] [| model |] [| seq |])

let m t = t.oracle.Interval_cost.m
let n t = t.oracle.Interval_cost.n

let task t j =
  if j < 0 || j >= m t then invalid_arg "Problem.task: task index out of range";
  let o = t.oracle in
  let oracle =
    Interval_cost.make ~m:1 ~n:o.Interval_cost.n
      ~v:[| o.Interval_cost.v.(j) |]
      ~step_cost:(fun _ lo hi -> o.Interval_cost.step_cost j lo hi)
  in
  (* The parent tables are already dense; re-densifying a view would
     only copy them.  An extension's extra cost is a function of the
     full m-row matrix, so the single-task view drops it. *)
  { t with oracle; machine_class = Partial; ext = None }

let eval_base t bp =
  match t.mode with
  | Mixed_sync.Fully_synchronized -> Sync_cost.eval ~params:t.params t.oracle bp
  | mode -> Mixed_sync.eval ~mode ~pub:t.params.Sync_cost.pub t.oracle bp

let eval t bp =
  match t.ext with
  | None -> eval_base t bp
  | Some e -> eval_base t bp + e.extra_cost bp

let admissible t bp =
  match t.machine_class with
  | Partial | Restricted -> true
  | All_task ->
      let m = Breakpoints.m bp and n = Breakpoints.n bp in
      let uniform i =
        let b = Breakpoints.is_break bp 0 i in
        let rec go j = j >= m || (Breakpoints.is_break bp j i = b && go (j + 1)) in
        go 1
      in
      let rec cols i = i >= n || (uniform i && cols (i + 1)) in
      cols 0

let pp fmt t =
  Format.fprintf fmt "m=%d n=%d %s %a%s" (m t) (n t)
    (match t.machine_class with
    | All_task -> "all-task"
    | Partial -> "partial"
    | Restricted -> "restricted")
    Mixed_sync.pp_mode t.mode
    (match t.ext with None -> "" | Some e -> " +" ^ e.tag)
