(** The uniform solver interface: [solve : Problem.t -> Solution.t].

    A solver packages a backend (exact DP, metaheuristic, greedy
    baseline) behind a name, a capability predicate, and a uniform
    entry point.  {!Solver_registry} holds the built-in backends;
    [race] runs several of them in parallel on OCaml 5 domains and
    returns the best solution.

    Determinism: stochastic backends draw from an {!Hr_util.Rng.t}
    derived with {!rng_for} from a base seed and the solver's name, so
    racing N solvers in parallel returns exactly the solution the best
    of the N sequential runs would have produced — scheduling cannot
    leak into results. *)

type kind =
  | Exact  (** certifies optimality whenever [Solution.exact] is set *)
  | Heuristic  (** deterministic, no optimality certificate *)
  | Stochastic  (** rng-driven search *)

type t = {
  name : string;
  kind : kind;
  doc : string;  (** one-line description for tables / --method list *)
  handles : Problem.t -> bool;
      (** capability predicate: instance size limits, machine class,
          synchronization mode *)
  run : rng:Hr_util.Rng.t -> Problem.t -> Solution.t;
      (** the backend; called only on problems it [handles] *)
}

val make :
  name:string ->
  kind:kind ->
  doc:string ->
  handles:(Problem.t -> bool) ->
  (rng:Hr_util.Rng.t -> Problem.t -> Solution.t) ->
  t

val kind_name : kind -> string

(** The seed used when no rng/seed is supplied anywhere: 2004, the
    paper's year, matching the benches. *)
val default_seed : int

(** [rng_for ~seed t] is the deterministic per-solver stream used by
    both {!solve} (default rng) and {!race} — equal seeds give every
    backend the same stream whether it runs alone or in a race. *)
val rng_for : seed:int -> t -> Hr_util.Rng.t

(** [solve ?rng ?seed t problem] checks [t.handles problem], runs the
    backend, stamps the solver name and recomputes the cost with
    {!Problem.eval} so costs are uniform across backends.  Raises
    [Invalid_argument] when the solver does not handle the problem or
    returns an inadmissible matrix.  [rng] wins over [seed]; the
    default is [rng_for ~seed:default_seed]. *)
val solve : ?rng:Hr_util.Rng.t -> ?seed:int -> t -> Problem.t -> Solution.t

(** [race ?domains ?seed solvers problem] filters [solvers] down to
    those that handle [problem], runs them in parallel on up to
    [domains] domains ({!Hr_util.Par}), and returns the best solution
    ({!Solution.best}: cheapest, exact wins ties).  Backends that raise
    [Invalid_argument] are dropped from the race.  Deterministic for a
    fixed [seed] (default {!default_seed}).  Raises [Invalid_argument]
    when no solver applies or every applicable one failed. *)
val race :
  ?domains:int -> ?seed:int -> t list -> Problem.t -> Solution.t

(** [race_all ?domains ?seed solvers problem] is [race] returning every
    applicable backend's solution (in [solvers] order, failures
    dropped) — for tables comparing the field. *)
val race_all :
  ?domains:int -> ?seed:int -> t list -> Problem.t -> Solution.t list
