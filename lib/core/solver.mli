(** The uniform solver interface: [solve : Problem.t -> Solution.t].

    A solver packages a backend (exact DP, metaheuristic, greedy
    baseline) behind a name, a capability predicate, and a uniform
    entry point.  {!Solver_registry} holds the built-in backends;
    [race] runs several of them in parallel on OCaml 5 domains and
    returns the best solution.

    {b Budgets.}  Every entry point takes an optional cooperative
    {!Hr_util.Budget.t}.  Iterative backends (GA, annealing, hill
    climbing, the beam/exact DP) poll it between iterations and return
    their best-so-far solution with [Solution.cut_off = true] (and
    [exact = false]) when it expires; instantaneous backends ignore it.
    See [docs/solvers.md] for the per-backend contract.

    {b Failure containment.}  Capability and admissibility violations
    raise the typed {!Rejected} — never a bare [Invalid_argument] — so
    a genuine solver crash (an out-of-bounds [Array.get], a [Failure])
    is distinguishable from an instance the solver simply refuses.  The
    racing harness ({!run_all}/{!race_report}) contains every exception
    as a per-solver {!report} instead of dropping the contestant.

    Determinism: stochastic backends draw from an {!Hr_util.Rng.t}
    derived with {!rng_for} from a base seed and the solver's name, so
    racing N solvers in parallel returns exactly the solution the best
    of the N sequential runs would have produced — scheduling cannot
    leak into results.  (Under a finite budget, cut-off points depend
    on machine speed, so only the unlimited-budget race is bit-for-bit
    reproducible.) *)

type kind =
  | Exact  (** certifies optimality whenever [Solution.exact] is set *)
  | Heuristic  (** deterministic, no optimality certificate *)
  | Stochastic  (** rng-driven search *)

type t = {
  name : string;
  kind : kind;
  doc : string;  (** one-line description for tables / --method list *)
  handles : Problem.t -> bool;
      (** capability predicate: instance size limits, machine class,
          synchronization mode *)
  run : budget:Hr_util.Budget.t -> rng:Hr_util.Rng.t -> Problem.t -> Solution.t;
      (** the backend; called only on problems it [handles].  Backends
          that cannot stop early may ignore [budget]. *)
}

(** Raised by {!solve} when the solver does not handle the instance or
    returned an inadmissible matrix — the {e typed} rejection channel,
    distinct from any exception a buggy backend might raise. *)
exception Rejected of string

val make :
  name:string ->
  kind:kind ->
  doc:string ->
  handles:(Problem.t -> bool) ->
  (budget:Hr_util.Budget.t -> rng:Hr_util.Rng.t -> Problem.t -> Solution.t) ->
  t

val kind_name : kind -> string

(** The seed used when no rng/seed is supplied anywhere: 2004, the
    paper's year, matching the benches. *)
val default_seed : int

(** [rng_for ~seed t] is the deterministic per-solver stream used by
    both {!solve} (default rng) and {!race} — equal seeds give every
    backend the same stream whether it runs alone or in a race. *)
val rng_for : seed:int -> t -> Hr_util.Rng.t

(** [solve ?rng ?seed ?budget t problem] checks [t.handles problem],
    runs the backend under [budget] (default unlimited), stamps the
    solver name and recomputes the cost with {!Problem.eval} so costs
    are uniform across backends.  Raises {!Rejected} when the solver
    does not handle the problem or returns an inadmissible matrix.
    [rng] wins over [seed]; the default is [rng_for ~seed:default_seed]. *)
val solve :
  ?rng:Hr_util.Rng.t ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t ->
  Problem.t ->
  Solution.t

(** {1 The execution harness} *)

(** What happened to one contestant. *)
type outcome =
  | Finished  (** ran to its natural termination *)
  | Cut_off  (** budget expired; [solution] is its best-so-far *)
  | Crashed of exn
      (** the backend raised — contained, reported, never masked.
          ({!Rejected} from an inadmissible result lands here too: in a
          pre-filtered race it is a solver bug, not a capability
          mismatch.) *)

type report = {
  solver : string;
  kind : kind;
  outcome : outcome;
  wall_ms : float;  (** wall clock of this contestant's [solve] *)
  solution : Solution.t option;
      (** [Some] for [Finished]/[Cut_off], [None] for [Crashed] *)
}

(** ["finished" | "cut-off" | "crashed"] — stable strings, used by the
    telemetry JSON schema. *)
val outcome_name : outcome -> string

(** [solve_report ?rng ?seed ?budget t problem] is {!solve} with crash
    containment and wall-clock measurement: every exception — typed
    rejection included — becomes a [Crashed] report. *)
val solve_report :
  ?rng:Hr_util.Rng.t ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t ->
  Problem.t ->
  report

(** [run_all ?domains ?seed ?budget solvers problem] filters [solvers]
    down to those whose capability predicate accepts [problem], runs
    them in parallel on up to [domains] domains ({!Hr_util.Par}) under
    a shared [budget], and returns one {!report} per contestant, in
    [solvers] order — crashes and cut-offs included, nothing dropped. *)
val run_all :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t list ->
  Problem.t ->
  report list

(** [race_report ?domains ?seed ?budget solvers problem] is {!run_all}
    plus the verdict: the best surviving solution ({!Solution.best}:
    cheapest, exact wins ties) together with every report.  Raises
    [Invalid_argument] — naming the crashed contestants — when no
    applicable solver produced a solution. *)
val race_report :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t list ->
  Problem.t ->
  Solution.t * report list

(** [race ?domains ?seed ?budget solvers problem] is [race_report]
    without the reports. *)
val race :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t list ->
  Problem.t ->
  Solution.t

(** [race_all ?domains ?seed ?budget solvers problem] is every
    surviving contestant's solution (in [solvers] order, crashed ones
    absent) — for tables comparing the field.  Prefer {!run_all} when
    you need to know {e why} a contestant is missing. *)
val race_all :
  ?domains:int ->
  ?seed:int ->
  ?budget:Hr_util.Budget.t ->
  t list ->
  Problem.t ->
  Solution.t list
