(** Precomputed interval-union sizes for a trace.

    The switch-model optimizers repeatedly need |U(i,j)|, the number of
    switches in the union of the requirements of steps [i..j]: that
    union is the minimal hypercontext valid for a block, and its size
    is the per-step reconfiguration cost of the block (cost(h) = |h|).
    This module materializes the triangular size table once in O(n²)
    bitset unions so each query is O(1).

    The table is a {!Flat_table.t} (out-of-heap Bigarray storage,
    width-laddered to the trace's total-union cardinality): zero-copy
    shareable across {!Hr_util.Pool} domains, never scanned by the GC,
    and typically 2 bytes per cell instead of a boxed word. *)

type t

(** [make ?pool trace] precomputes the table.  Memory is n·(n+1)/2
    width-laddered cells.  With [pool] the independent per-[lo]
    prefix-union rows are built in parallel on the pool for tables of
    at least {!Flat_table.parallel_build_cells} cells — the same
    threshold {!Interval_cost} uses, so the two layers' decisions
    cannot drift apart; the resulting table is elementwise identical to
    the sequential build. *)
val make : ?pool:Hr_util.Pool.t -> Trace.t -> t

(** [length t] is the trace length n. *)
val length : t -> int

(** [size t lo hi] is |U(lo,hi)| for [0 ≤ lo ≤ hi < n]. *)
val size : t -> int -> int -> int

(** [union t lo hi] recomputes the union bitset itself (O(hi-lo)); use
    it when reconstructing concrete hypercontexts of a chosen plan. *)
val union : t -> int -> int -> Hr_util.Bitset.t

(** [trace t] is the underlying trace. *)
val trace : t -> Trace.t

(** [table t] is the backing flat table (for memory accounting). *)
val table : t -> Flat_table.t
