(** A first-class PHC problem instance — the single descriptor every
    registered solver consumes.

    The paper's problem family is the product
    {e cost model} × {e machine class} (§3) × {e synchronization mode}
    (§3/§4) × {e upload parameters} (§4.2).  A [Problem.t] pins one
    point of that product:

    - the cost model enters through the {!Interval_cost.t} oracle
      (switch model via {!Interval_cost.of_task_set}, DAG model via
      {!of_dag}, weighted/general-monotone via their own oracle
      constructors);
    - the machine class restricts the admissible breakpoint matrices;
    - the synchronization mode selects the objective evaluator
      ({!Sync_cost.eval} or {!Mixed_sync.eval});
    - {!Sync_cost.params} carries [w], [pub] and the upload modes.

    [make] runs {!Interval_cost.precompute} once, so every solver that
    touches the problem — including several racing in parallel —
    shares the same lock-free dense oracle tables. *)

(** The §3 machine classes.  [All_task] admits only uniform-column
    matrices (hyperreconfigure all tasks or none); [Partial] is
    unconstrained; [Restricted] (per-task hyperreconfigurations,
    all-task reconfigurations) coincides with [Partial] on the fully
    synchronized cost model, which is where this library evaluates
    it. *)
type machine_class = All_task | Partial | Restricted

(** Extension payloads are an open type: each extension library (e.g.
    [Hr_place] for placement-aware instances) adds its own constructor
    so downstream code can recover the concrete data with a pattern
    match. *)
type ext_data = ..

(** A problem extension adds a cost term on top of the base objective.
    [extra_cost bp] must be a {e total}, deterministic function of the
    matrix alone (>= 0), so that {!eval} stays a pure function of
    [(t, bp)] — every solver, the brute-force ground truth and the
    conformance harness then agree on the joint objective by
    construction.  [scale k] rebuilds the extension with every cost
    source multiplied by [k] (the linear-scaling invariant relies on
    it); [counters] exposes telemetry counters (e.g. relocation
    statistics) accumulated across [extra_cost] calls. *)
type extension = {
  tag : string;  (** stable short name, e.g. ["placement"] *)
  data : ext_data;
  extra_cost : Breakpoints.t -> int;
  scale : int -> extension;
  counters : unit -> (string * string) list;
}

type t = {
  oracle : Interval_cost.t;  (** precomputed — shared by all solvers *)
  params : Sync_cost.params;
  mode : Mixed_sync.mode;
  machine_class : machine_class;
  ext : extension option;  (** joint-cost extension, [None] = base PHC *)
}

(** [make ?params ?mode ?machine_class ?precompute ?max_bytes
    ?cache_dir ?cache_key ?pool oracle].  Defaults:
    {!Sync_cost.default_params}, [Fully_synchronized], [Partial],
    [precompute = true].  [pool] is handed to
    {!Interval_cost.precompute} so large oracle builds run on a caller
    pool instead of the shared default.

    [max_bytes] caps the dense-table memory (default
    {!Interval_cost.default_max_bytes}); over-budget oracles fall back
    to the bounded memoizer.  [cache_dir] names a persistent
    {!Table_cache} directory: the dense table is loaded from it when a
    valid entry exists (no oracle calls) and stored into it after a
    fresh build.  The cache key is the oracle's own structural
    [fingerprint]; [cache_key] overrides it for oracles whose
    constructor could not derive one (the caller then asserts the key
    captures every input).

    Raises [Invalid_argument] when a non-fully-synchronized mode is
    combined with parameters {!Mixed_sync} cannot evaluate (nonzero
    [w], sequential uploads, or [pub > 0] outside the
    context-synchronized and fully synchronized modes). *)
val make :
  ?params:Sync_cost.params ->
  ?mode:Mixed_sync.mode ->
  ?machine_class:machine_class ->
  ?precompute:bool ->
  ?max_bytes:int ->
  ?cache_dir:string ->
  ?cache_key:string ->
  ?pool:Hr_util.Pool.t ->
  ?ext:extension ->
  Interval_cost.t ->
  t

(** [plain t] — does [t] carry no extension?  Base-PHC solvers use this
    as a capability guard: their exactness (and even their cost
    accounting) is stated against {!eval_base}, so they must refuse
    extended instances rather than silently ignore the extra term. *)
val plain : t -> bool

(** [with_ext t e] / [without_ext t] attach or strip the extension
    (tables are shared, nothing is rebuilt).  [without_ext] is how an
    extension-aware solver obtains the base subproblem to hand to a
    registered base backend. *)
val with_ext : t -> extension -> t

val without_ext : t -> t

(** [of_task_set ?params ?mode ?machine_class ?oracle ?max_bytes
    ?cache_dir ?pool ts] — the MT-Switch instance of a task set;
    [pool] parallelizes both the range-union and the dense-table build;
    [max_bytes]/[cache_dir] as in {!make} (the cache key is
    {!Interval_cost.task_set_fingerprint}).  [oracle] picks the rung of
    the oracle ladder (see {!Interval_cost.policy}): [Auto] (the
    default) builds dense tables while they fit [max_bytes] and the
    sparse {!Occ_index} above it; a sparse oracle is never densified
    and is solved through [step_cost] queries. *)
val of_task_set :
  ?params:Sync_cost.params ->
  ?mode:Mixed_sync.mode ->
  ?machine_class:machine_class ->
  ?oracle:Interval_cost.policy ->
  ?max_bytes:int ->
  ?cache_dir:string ->
  ?pool:Hr_util.Pool.t ->
  Task_set.t ->
  t

(** [of_trace ?v ?params trace] — the single-task switch instance ([v]
    defaults to the universe size, the paper's [w = |X|] case). *)
val of_trace : ?v:int -> ?params:Sync_cost.params -> Trace.t -> t

(** [of_dag ?params model seq] — the single-task DAG-model instance:
    per-block costs are the cheapest satisfying node's cost and the
    hyperreconfiguration cost is the model's constant [w].
    O(n²·|H|) table build. *)
val of_dag : ?params:Sync_cost.params -> Dag_model.t -> int array -> t

(** [task t j] is the single-task subproblem of task [j] (same
    parameters; class and mode degenerate for m = 1).  The sub-oracle
    reads the parent's precomputed tables — no rebuild.  Any extension
    is dropped: its cost term is a function of the full m-row
    matrix. *)
val task : t -> int -> t

val m : t -> int
val n : t -> int

(** [eval t bp] is the objective: {!Sync_cost.eval} for the fully
    synchronized mode, {!Mixed_sync.eval} otherwise, plus the
    extension's [extra_cost] when one is attached.  Every
    {!Solution.t} returned through {!Solver.solve} has its cost
    recomputed by this function, so costs are comparable across
    backends by construction. *)
val eval : t -> Breakpoints.t -> int

(** [eval_base t bp] is the objective without the extension term
    (identical to {!eval} on plain problems). *)
val eval_base : t -> Breakpoints.t -> int

(** [admissible t bp] — does the machine class admit the matrix?
    ([All_task] requires uniform columns.) *)
val admissible : t -> Breakpoints.t -> bool

(** [pp] prints a one-line instance summary. *)
val pp : Format.formatter -> t -> unit
