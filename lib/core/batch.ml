module Budget = Hr_util.Budget
module Pool = Hr_util.Pool

type request = {
  id : string;
  key : string option;
  budget : Budget.t option;
  build : unit -> Problem.t;
}

let request ?key ?budget ~id build = { id; key; budget; build }

type solved = {
  solution : Solution.t;
  reports : Solver.report list;
  m : int;
  n : int;
}

type response = { id : string; outcome : (solved, string) result; wall_ms : float }

type t = {
  responses : response list;
  total_ms : float;
  workers : int;
  deadline_ms : int option;
  shared_builds : int;
}

let result_schema_version = "hyperreconf.result/1"
let batch_schema_version = "hyperreconf.batch/1"

let error_response ?(wall_ms = 0.) ~id msg = { id; outcome = Error msg; wall_ms }

(* Problems are immutable once precomputed, so a cache entry can be
   shared freely across domains.  Builds happen outside the lock: two
   requests racing on a fresh key may both build (idempotent — the
   loser's table is dropped), but distinct keys never serialize on each
   other's O(m·n²) precompute.

   The store is a byte-budgeted LRU: entries form a doubly-linked
   recency list, each charged its dense-table residency
   (Interval_cost.cache_stats.bytes_resident, floored so even
   memoizer-backed problems have positive weight), and inserting past
   [max_bytes] evicts from the cold end.  Without [max_bytes] it
   degrades to the old unbounded behaviour. *)
type node = {
  nkey : string;
  problem : Problem.t;
  cost_bytes : int;
  mutable prev : node option;  (* towards MRU *)
  mutable next : node option;  (* towards LRU *)
  mutable prefetched : bool;
}

type build_cache = {
  mu : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable mru : node option;
  mutable lru : node option;
  mutable bytes : int;
  max_bytes : int option;
  shared : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  prefetch_builds : int Atomic.t;
  prefetch_hits : int Atomic.t;
}

type build_cache_stats = {
  entries : int;
  bytes : int;
  cap_bytes : int option;
  hits : int;
  misses : int;
  evictions : int;
  prefetch_builds : int;
  prefetch_hits : int;
}

let build_cache ?max_bytes () =
  {
    mu = Mutex.create ();
    table = Hashtbl.create 16;
    mru = None;
    lru = None;
    bytes = 0;
    max_bytes;
    shared = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    prefetch_builds = Atomic.make 0;
    prefetch_hits = Atomic.make 0;
  }

(* A problem's charge against the byte budget: its dense-table (or
   memoizer-estimate) residency, floored at 1 KiB so empty/direct
   oracles still have weight and the LRU cannot grow unboundedly on
   zero-cost entries. *)
let problem_cost_bytes problem =
  max 1024 (Interval_cost.cache_stats problem.Problem.oracle).Interval_cost.bytes_resident

(* List surgery, all under [cache.mu]. *)
let unlink cache node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> cache.mru <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> cache.lru <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front cache node =
  node.prev <- None;
  node.next <- cache.mru;
  (match cache.mru with Some m -> m.prev <- Some node | None -> cache.lru <- Some node);
  cache.mru <- Some node

(* Evict cold entries until the budget holds; [keep] (the entry being
   inserted) is never evicted, so a single oversized problem still
   caches — the budget bounds the tail, not admission. *)
let enforce_budget cache ~keep =
  match cache.max_bytes with
  | None -> ()
  | Some cap ->
      let rec go () =
        if cache.bytes > cap then
          match cache.lru with
          | Some victim when victim != keep ->
              unlink cache victim;
              Hashtbl.remove cache.table victim.nkey;
              cache.bytes <- cache.bytes - victim.cost_bytes;
              Atomic.incr cache.evictions;
              go ()
          | _ -> ()
      in
      go ()

(* Shared hit bookkeeping: recency bump + counters.  The first hit on a
   prefetched entry counts once towards [prefetch_hits] — the measure of
   prewarming that actually paid off. *)
let touch cache node =
  unlink cache node;
  push_front cache node;
  Atomic.incr cache.shared;
  if node.prefetched then begin
    node.prefetched <- false;
    Atomic.incr cache.prefetch_hits
  end

let insert cache ~prefetched key problem =
  match Hashtbl.find_opt cache.table key with
  | Some winner ->
      (* Raced: another builder inserted first; adopt its problem. *)
      touch cache winner;
      winner.problem
  | None ->
      let node =
        {
          nkey = key;
          problem;
          cost_bytes = problem_cost_bytes problem;
          prev = None;
          next = None;
          prefetched;
        }
      in
      Hashtbl.add cache.table key node;
      push_front cache node;
      cache.bytes <- cache.bytes + node.cost_bytes;
      enforce_budget cache ~keep:node;
      problem

let build_cache_size cache =
  Mutex.lock cache.mu;
  let n = Hashtbl.length cache.table in
  Mutex.unlock cache.mu;
  n

let build_cache_shared cache = Atomic.get cache.shared

let build_cache_mem cache key =
  Mutex.lock cache.mu;
  let m = Hashtbl.mem cache.table key in
  Mutex.unlock cache.mu;
  m

let build_cache_stats cache =
  Mutex.lock cache.mu;
  let entries = Hashtbl.length cache.table and bytes = cache.bytes in
  Mutex.unlock cache.mu;
  {
    entries;
    bytes;
    cap_bytes = cache.max_bytes;
    hits = Atomic.get cache.shared;
    misses = Atomic.get cache.misses;
    evictions = Atomic.get cache.evictions;
    prefetch_builds = Atomic.get cache.prefetch_builds;
    prefetch_hits = Atomic.get cache.prefetch_hits;
  }

let build_cache_stats_to_json (s : build_cache_stats) =
  let total = s.hits + s.misses in
  Telemetry.Obj
    [
      ("entries", Telemetry.Int s.entries);
      ("bytes", Telemetry.Int s.bytes);
      ( "max_bytes",
        match s.cap_bytes with Some b -> Telemetry.Int b | None -> Telemetry.Null );
      ("hits", Telemetry.Int s.hits);
      ("misses", Telemetry.Int s.misses);
      ( "hit_rate",
        if total = 0 then Telemetry.Null
        else Telemetry.Float (float s.hits /. float total) );
      ("evictions", Telemetry.Int s.evictions);
      ("prefetch_builds", Telemetry.Int s.prefetch_builds);
      ("prefetch_hits", Telemetry.Int s.prefetch_hits);
    ]

let build_problem cache req =
  match req.key with
  | None -> req.build ()
  | Some key -> (
      Mutex.lock cache.mu;
      let hit = Hashtbl.find_opt cache.table key in
      (match hit with Some node -> touch cache node | None -> ());
      Mutex.unlock cache.mu;
      match hit with
      | Some node -> node.problem
      | None ->
          Atomic.incr cache.misses;
          let problem = req.build () in
          Mutex.lock cache.mu;
          let problem = insert cache ~prefetched:false key problem in
          Mutex.unlock cache.mu;
          problem)

let prefetch cache ~key build =
  if build_cache_mem cache key then false
  else begin
    (* Build outside the lock, like build_problem: a concurrent request
       for the same key may win the insert race, in which case this
       prewarm was redundant but harmless. *)
    let problem = build () in
    Mutex.lock cache.mu;
    let fresh = not (Hashtbl.mem cache.table key) in
    ignore (insert cache ~prefetched:true key problem);
    Mutex.unlock cache.mu;
    if fresh then Atomic.incr cache.prefetch_builds;
    fresh
  end

(* Fair-share carving: a request starting with [left] requests still
   unstarted and [workers] domains serving them gets [workers/left] of
   the global time left — the share it would receive if the remaining
   queue were drained in even waves.  The slice is clamped to the
   global remaining budget: an exhausted batch hands out exhausted
   slices (no 1 ms floor), so a cut-off batch cannot overrun its global
   deadline by a floor-slice per remaining request. *)
let fair_slice_ms ~remaining_ms ~workers ~left =
  if remaining_ms <= 0. then 0.
  else Float.min remaining_ms (remaining_ms *. float workers /. float (max 1 left))

let carve ~global ~workers ~left =
  if not (Budget.is_limited global) then Budget.unlimited
  else
    let slice =
      fair_slice_ms ~remaining_ms:(Budget.remaining_ms global) ~workers ~left
    in
    Budget.earliest global (Budget.of_deadline_ms (int_of_float slice))

let empty ~deadline_ms =
  { responses = []; total_ms = 0.; workers = 0; deadline_ms; shared_builds = 0 }

let run ?pool ?(seed = Solver.default_seed) ?deadline_ms
    ?(solvers = Solver_registry.applicable) ?cache requests =
  match requests with
  | [] ->
      (* An all-malformed serving batch reaches here: answer without
         touching (or lazily creating) the pool. *)
      empty ~deadline_ms
  | requests ->
      let pool = match pool with Some p -> p | None -> Pool.default () in
      let workers = Pool.size pool in
      let global =
        match deadline_ms with
        | None -> Budget.unlimited
        | Some ms -> Budget.of_deadline_ms ms
      in
      (* A caller-held cache outlives the run (hrserve passes one per
         process for cross-batch reuse); [shared_builds] still reports
         this run's hits only. *)
      let cache = match cache with Some c -> c | None -> build_cache () in
      let shared0 = Atomic.get cache.shared in
      (* Requests already resident in the build cache cost ~0 to serve;
         counting them in the fair share would shrink every real
         solve's slice for work that never happens. *)
      let carved (req : request) =
        match req.key with
        | Some key when build_cache_mem cache key -> false
        | _ -> true
      in
      let arr = Array.of_list requests in
      let counted = Array.map carved arr in
      let unstarted =
        Atomic.make (Array.fold_left (fun n c -> if c then n + 1 else n) 0 counted)
      in
      let t0 = Budget.now_ms () in
      let solve_one i =
        let req = arr.(i) in
        let left =
          if counted.(i) then max 1 (Atomic.fetch_and_add unstarted (-1))
          else max 1 (Atomic.get unstarted)
        in
        let r0 = Budget.now_ms () in
        let outcome =
          match
            let problem = build_problem cache req in
            let budget = carve ~global ~workers ~left in
            (* A per-request deadline layers under the fair share: the
               request finishes by whichever expires first. *)
            let budget =
              match req.budget with
              | None -> budget
              | Some b -> Budget.earliest budget b
            in
            let solution, reports =
              Solver.race_report ~seed ~budget (solvers problem) problem
            in
            { solution; reports; m = Problem.m problem; n = Problem.n problem }
          with
          | solved -> Ok solved
          | exception e -> Error (Printexc.to_string e)
        in
        { id = req.id; outcome; wall_ms = Budget.now_ms () -. r0 }
      in
      (* Per-request chunking granularity: requests vary wildly in cost,
         so finer chunks (not one per worker) keep the pool balanced. *)
      let chunks = min (Array.length arr) (workers * 4) in
      let responses =
        Array.to_list (Pool.map ~chunks pool solve_one (Array.init (Array.length arr) Fun.id))
      in
      {
        responses;
        total_ms = Budget.now_ms () -. t0;
        workers;
        deadline_ms;
        shared_builds = Atomic.get cache.shared - shared0;
      }

(* ------------------------------------------------------------------ *)
(* JSON documents.                                                     *)

open Telemetry

let report_to_json ~timing (r : Solver.report) =
  Obj
    ([
       ("name", String r.Solver.solver);
       ("kind", String (Solver.kind_name r.Solver.kind));
       ("outcome", String (Solver.outcome_name r.Solver.outcome));
       ("wall_ms", Float (if timing then r.Solver.wall_ms else 0.));
     ]
    @ (match r.Solver.outcome with
      | Solver.Crashed e -> [ ("error", String (Printexc.to_string e)) ]
      | Solver.Finished | Solver.Cut_off -> [])
    @
    match r.Solver.solution with
    | None -> [ ("cost", Null) ]
    | Some sol -> [ ("cost", Int sol.Solution.cost) ])

let plan_to_json (solved : solved) =
  List
    (List.init solved.m (fun j ->
         List
           (List.map (fun i -> Int i) (Solution.task_breaks solved.solution j))))

(* [timing:false] renders every wall_ms as 0: the document becomes a
   pure function of (instance, seed, solvers), so socket-mode and
   stdio-mode responses can be compared byte for byte. *)
let response_to_json ?(timing = true) r =
  let base =
    [
      ("schema", String result_schema_version);
      ("id", String r.id);
      ("ok", Bool (Result.is_ok r.outcome));
      ("wall_ms", Float (if timing then r.wall_ms else 0.));
    ]
  in
  match r.outcome with
  | Error msg -> Obj (base @ [ ("error", String msg) ])
  | Ok solved ->
      let sol = solved.solution in
      Obj
        (base
        @ [
            ("instance", Obj [ ("m", Int solved.m); ("n", Int solved.n) ]);
            ("solver", String sol.Solution.solver);
            ("cost", Int sol.Solution.cost);
            ("exact", Bool sol.Solution.exact);
            ("cut_off", Bool sol.Solution.cut_off);
            ("plan", plan_to_json solved);
            ("solvers", List (List.map (report_to_json ~timing) solved.reports));
          ])

let to_json ?(label = "batch") ?(results = true) ?(extra = []) t =
  let size = List.length t.responses in
  let ok =
    List.length (List.filter (fun r -> Result.is_ok r.outcome) t.responses)
  in
  let cut_off =
    List.length
      (List.filter
         (fun r ->
           match r.outcome with
           | Ok s -> s.solution.Solution.cut_off
           | Error _ -> false)
         t.responses)
  in
  Obj
    ([
       ("schema", String batch_schema_version);
       ("label", String label);
       ("size", Int size);
       ("ok", Int ok);
       ("errors", Int (size - ok));
       ("cut_off", Int cut_off);
       ("workers", Int t.workers);
       ("deadline_ms", match t.deadline_ms with Some ms -> Int ms | None -> Null);
       ("total_ms", Float t.total_ms);
       ( "throughput_per_s",
         if t.total_ms > 0. then Float (1000. *. float size /. t.total_ms) else Null );
       ("shared_builds", Int t.shared_builds);
     ]
    @ extra
    @
    if results then
      [ ("results", List (List.map (fun r -> response_to_json r) t.responses)) ]
    else [])
