module Budget = Hr_util.Budget
module Pool = Hr_util.Pool

type request = { id : string; key : string option; build : unit -> Problem.t }

let request ?key ~id build = { id; key; build }

type solved = {
  solution : Solution.t;
  reports : Solver.report list;
  m : int;
  n : int;
}

type response = { id : string; outcome : (solved, string) result; wall_ms : float }

type t = {
  responses : response list;
  total_ms : float;
  workers : int;
  deadline_ms : int option;
  shared_builds : int;
}

let result_schema_version = "hyperreconf.result/1"
let batch_schema_version = "hyperreconf.batch/1"

let error_response ?(wall_ms = 0.) ~id msg = { id; outcome = Error msg; wall_ms }

(* Problems are immutable once precomputed, so a cache entry can be
   shared freely across domains.  Builds happen outside the lock: two
   requests racing on a fresh key may both build (idempotent — the
   loser's table is dropped), but distinct keys never serialize on each
   other's O(m·n²) precompute. *)
type build_cache = {
  mu : Mutex.t;
  table : (string, Problem.t) Hashtbl.t;
  shared : int Atomic.t;
}

let build_cache () =
  { mu = Mutex.create (); table = Hashtbl.create 16; shared = Atomic.make 0 }

let build_cache_size cache =
  Mutex.lock cache.mu;
  let n = Hashtbl.length cache.table in
  Mutex.unlock cache.mu;
  n

let build_cache_shared cache = Atomic.get cache.shared

let build_problem cache req =
  match req.key with
  | None -> req.build ()
  | Some key -> (
      Mutex.lock cache.mu;
      let hit = Hashtbl.find_opt cache.table key in
      Mutex.unlock cache.mu;
      match hit with
      | Some problem ->
          Atomic.incr cache.shared;
          problem
      | None ->
          let problem = req.build () in
          Mutex.lock cache.mu;
          let problem =
            match Hashtbl.find_opt cache.table key with
            | Some winner ->
                Atomic.incr cache.shared;
                winner
            | None ->
                Hashtbl.add cache.table key problem;
                problem
          in
          Mutex.unlock cache.mu;
          problem)

(* Fair-share carving: a request starting with [left] requests still
   unstarted and [workers] domains serving them gets [workers/left] of
   the global time left — the share it would receive if the remaining
   queue were drained in even waves — capped by the global deadline. *)
let carve ~global ~workers ~left =
  if not (Budget.is_limited global) then Budget.unlimited
  else
    let slice =
      int_of_float (Budget.remaining_ms global *. float workers /. float (max 1 left))
    in
    Budget.earliest global (Budget.of_deadline_ms (max 1 slice))

let run ?pool ?(seed = Solver.default_seed) ?deadline_ms
    ?(solvers = Solver_registry.applicable) ?cache requests =
  let pool = match pool with Some p -> p | None -> Pool.default () in
  let workers = Pool.size pool in
  let global =
    match deadline_ms with
    | None -> Budget.unlimited
    | Some ms -> Budget.of_deadline_ms ms
  in
  (* A caller-held cache outlives the run (hrserve passes one per
     process for cross-batch reuse); [shared_builds] still reports this
     run's hits only. *)
  let cache = match cache with Some c -> c | None -> build_cache () in
  let shared0 = Atomic.get cache.shared in
  let unstarted = Atomic.make (List.length requests) in
  let t0 = Budget.now_ms () in
  let solve_one req =
    let left = max 1 (Atomic.fetch_and_add unstarted (-1)) in
    let r0 = Budget.now_ms () in
    let outcome =
      match
        let problem = build_problem cache req in
        let budget = carve ~global ~workers ~left in
        let solution, reports = Solver.race_report ~seed ~budget (solvers problem) problem in
        { solution; reports; m = Problem.m problem; n = Problem.n problem }
      with
      | solved -> Ok solved
      | exception e -> Error (Printexc.to_string e)
    in
    { id = req.id; outcome; wall_ms = Budget.now_ms () -. r0 }
  in
  let arr = Array.of_list requests in
  (* Per-request chunking granularity: requests vary wildly in cost, so
     finer chunks (not one per worker) keep the pool balanced. *)
  let chunks = min (Array.length arr) (workers * 4) in
  let responses = Array.to_list (Pool.map ~chunks pool solve_one arr) in
  {
    responses;
    total_ms = Budget.now_ms () -. t0;
    workers;
    deadline_ms;
    shared_builds = Atomic.get cache.shared - shared0;
  }

(* ------------------------------------------------------------------ *)
(* JSON documents.                                                     *)

open Telemetry

let report_to_json (r : Solver.report) =
  Obj
    ([
       ("name", String r.Solver.solver);
       ("kind", String (Solver.kind_name r.Solver.kind));
       ("outcome", String (Solver.outcome_name r.Solver.outcome));
       ("wall_ms", Float r.Solver.wall_ms);
     ]
    @ (match r.Solver.outcome with
      | Solver.Crashed e -> [ ("error", String (Printexc.to_string e)) ]
      | Solver.Finished | Solver.Cut_off -> [])
    @
    match r.Solver.solution with
    | None -> [ ("cost", Null) ]
    | Some sol -> [ ("cost", Int sol.Solution.cost) ])

let plan_to_json (solved : solved) =
  List
    (List.init solved.m (fun j ->
         List
           (List.map (fun i -> Int i) (Solution.task_breaks solved.solution j))))

let response_to_json r =
  let base =
    [
      ("schema", String result_schema_version);
      ("id", String r.id);
      ("ok", Bool (Result.is_ok r.outcome));
      ("wall_ms", Float r.wall_ms);
    ]
  in
  match r.outcome with
  | Error msg -> Obj (base @ [ ("error", String msg) ])
  | Ok solved ->
      let sol = solved.solution in
      Obj
        (base
        @ [
            ("instance", Obj [ ("m", Int solved.m); ("n", Int solved.n) ]);
            ("solver", String sol.Solution.solver);
            ("cost", Int sol.Solution.cost);
            ("exact", Bool sol.Solution.exact);
            ("cut_off", Bool sol.Solution.cut_off);
            ("plan", plan_to_json solved);
            ("solvers", List (List.map report_to_json solved.reports));
          ])

let to_json ?(label = "batch") ?(results = true) ?(extra = []) t =
  let size = List.length t.responses in
  let ok =
    List.length (List.filter (fun r -> Result.is_ok r.outcome) t.responses)
  in
  let cut_off =
    List.length
      (List.filter
         (fun r ->
           match r.outcome with
           | Ok s -> s.solution.Solution.cut_off
           | Error _ -> false)
         t.responses)
  in
  Obj
    ([
       ("schema", String batch_schema_version);
       ("label", String label);
       ("size", Int size);
       ("ok", Int ok);
       ("errors", Int (size - ok));
       ("cut_off", Int cut_off);
       ("workers", Int t.workers);
       ("deadline_ms", match t.deadline_ms with Some ms -> Int ms | None -> Null);
       ("total_ms", Float t.total_ms);
       ( "throughput_per_s",
         if t.total_ms > 0. then Float (1000. *. float size /. t.total_ms) else Null );
       ("shared_builds", Int t.shared_builds);
     ]
    @ extra
    @
    if results then [ ("results", List (List.map response_to_json t.responses)) ]
    else [])
