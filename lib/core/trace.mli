(** Context-requirement traces.

    An algorithm/computation is characterized by a sequence
    [c_1 … c_n] of context requirements (paper, §2).  Under the switch
    model each requirement is the subset of switches that must be
    reconfigurable at that step; a hypercontext [h] satisfies [c] iff
    [c ⊆ h]. *)

type t

(** [make space reqs] is a trace over [space].  Raises
    [Invalid_argument] if any requirement has a different width than
    [Switch_space.size space]. *)
val make : Switch_space.t -> Hr_util.Bitset.t array -> t

(** [of_lists space reqss] builds each requirement from a list of
    switch indices. *)
val of_lists : Switch_space.t -> int list list -> t

(** [space t] is the switch universe of [t]. *)
val space : t -> Switch_space.t

(** [length t] is the number of reconfiguration steps n. *)
val length : t -> int

(** [req t i] is the requirement of step [i] (0-based). *)
val req : t -> int -> Hr_util.Bitset.t

(** [reqs t] is a fresh array of all requirements. *)
val reqs : t -> Hr_util.Bitset.t array

(** [total_union t] is the union of all requirements — the minimal
    hypercontext that satisfies the whole trace. *)
val total_union : t -> Hr_util.Bitset.t

(** [range_union t lo hi] is the union of requirements of steps
    [lo..hi] inclusive.  O(hi-lo) — use {!Range_union} for repeated
    queries. *)
val range_union : t -> int -> int -> Hr_util.Bitset.t

(** [sub t lo hi] is the sub-trace of steps [lo..hi] inclusive. *)
val sub : t -> int -> int -> t

(** [concat a b] appends [b]'s steps after [a]'s (same universe
    required). *)
val concat : t -> t -> t

(** [project t keep ~to_space ~renumber] restricts every requirement to
    the switches in [keep] and renumbers them into [to_space] via
    [renumber] (a map from old index to new index).  Used to split a
    machine-wide trace into per-task local traces. *)
val project :
  t -> Hr_util.Bitset.t -> to_space:Switch_space.t -> renumber:(int -> int) -> t

(** A maximal run of identical requirement steps: [len ≥ 1] consecutive
    steps all requiring exactly [req].  Adjacent segments of
    {!segments} always have unequal requirements. *)
type segment = { len : int; req : Hr_util.Bitset.t }

(** [segments t] is the run-length compression of [t]: the unique
    partition of its steps into maximal runs of equal requirements, in
    trace order.  Phase-structured traces (long dwells between bursts
    of reconfiguration) compress 10–100x; {!Occ_index} builds its
    occurrence lists over segments so its memory and build time scale
    with the {e compressed} length.  O(n) bitset comparisons; the
    returned [req]s share the trace's bitsets (do not mutate them). *)
val segments : t -> segment array

(** [of_segments space segs] expands a segment array back into a trace
    — the inverse of {!segments} ([of_segments space (segments t) ≡ t]
    up to bitset sharing).  Raises [Invalid_argument] on a non-positive
    segment length or a width mismatch. *)
val of_segments : Switch_space.t -> segment array -> t

(** [sizes t] is the array of requirement cardinalities — handy for
    trace statistics. *)
val sizes : t -> int array

(** [pp] prints one step per line as ["i: {switches}"]. *)
val pp : Format.formatter -> t -> unit
