(** Genetic algorithm for the fully synchronized multi-task problem —
    the method the paper uses for its §6 multi-task results.

    Registered in {!Solver_registry} as ["ga"] and (with a local-search
    polish) ["ga-polish"]; new call sites should prefer the registry
    (see [docs/solvers.md]).

    The genome is the m×n breakpoint matrix; given breakpoints, minimal
    (union) hypercontexts are optimal, so no hypercontext genes are
    needed.  The population is seeded with the heuristic portfolio
    ({!Mt_greedy}), including the stacked per-task optima, so the GA
    can only improve on the best heuristic. *)

type result = {
  cost : int;
  bp : Breakpoints.t;
  evaluations : int;
  history : (int * int) list;  (** best-so-far cost per improving generation *)
  cut_off : bool;  (** the budget expired before the GA converged *)
}

(** [solve ?params ?config ?seeds ?budget ~rng oracle] evolves
    breakpoint matrices minimizing [Sync_cost.eval ?params].  Extra
    [seeds] are injected into the initial population.  The [budget] is
    polled between generations; on exhaustion the best individual so
    far is returned with [cut_off = true] (the heuristic-seeded initial
    population guarantees a valid plan even under an expired budget).
    Deterministic for a fixed [rng] seed and an unlimited budget. *)
val solve :
  ?params:Sync_cost.params ->
  ?config:Hr_evolve.Ga.config ->
  ?seeds:Breakpoints.t list ->
  ?budget:Hr_util.Budget.t ->
  rng:Hr_util.Rng.t ->
  Interval_cost.t ->
  result
