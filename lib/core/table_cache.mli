(** A persistent content-addressed store for dense oracle tables.

    The O(m·n²) dense tables {!Interval_cost.precompute} materializes
    are pure functions of the oracle inputs, so they can be spilled to
    disk once and reloaded — across batches, server restarts and bench
    runs — instead of being rebuilt.  A [Table_cache.t] is a directory
    of table files addressed by a {e structural hash of the oracle
    inputs} (the oracle's fingerprint, e.g.
    {!Interval_cost.task_set_fingerprint}, or a caller key such as
    {!Hr_check.Case.oracle_key}): equal inputs produce equal keys
    produce one shared file; any input change changes the key, so
    entries are immutable and never logically stale.

    {b Layout.}  One file per entry, [<dir>/<key>.tbl]: a fixed 64-byte
    header (magic + format version, element width, host endianness,
    cell count, MD5 of the payload) followed by the raw cell payload in
    native byte order.  See [docs/caching.md] for the byte-level
    format.

    {b Writes} go through a unique temp file in the same directory and
    a final atomic [rename], so concurrent writers racing on one key
    are safe (last writer wins, both files were complete) and readers
    never observe a half-written entry.  Store failures (permissions,
    full disk) are contained and counted, never raised — the cache is
    an accelerator, not a dependency.

    {b Loads} validate the header (magic, format version, endianness,
    width, cell count, file size) and the payload digest before
    [mmap]-ing the payload as a {!Flat_table.t}: a corrupt, truncated
    or version-bumped file is reported as a miss (and counted in
    [stats.invalid]) so the caller rebuilds and overwrites it.  A hit
    costs one digest pass over the file — no oracle calls — and the
    mapped table is demand-paged and shared read-only across domains. *)

type t

(** Monotone counters over the handle's lifetime ([of_dir] memoizes
    handles per directory, so every user of a directory shares one
    counter set). *)
type stats = {
  hits : int;  (** loads served from a valid file *)
  misses : int;  (** loads that found no usable entry (invalid included) *)
  stores : int;  (** entries written and renamed into place *)
  invalid : int;  (** files rejected: bad magic/version/size/digest *)
  errors : int;  (** contained I/O failures (store or mmap) *)
}

(** The on-disk format version, embedded in the file magic.  Bumping it
    invalidates every existing entry (old files load as misses and are
    rebuilt). *)
val format_version : int

(** [of_dir dir] is the cache rooted at [dir], created (recursively) if
    missing.  Handles are memoized per directory string, so repeated
    calls share one handle and one stats block. *)
val of_dir : string -> t

val dir : t -> string
val stats : t -> stats

(** [file t ~key] is the path the entry for [key] lives at (whether or
    not it exists yet). *)
val file : t -> key:string -> string

(** [load t ~key ~cells] validates and maps the entry for [key].
    [None] — counted as a miss — when the file is absent, has a stale
    format version, disagrees with [cells], or fails the digest check.
    Raises [Invalid_argument] on a key that is not a simple filename
    token ([A-Za-z0-9._-], no leading dot). *)
val load : t -> key:string -> cells:int -> Flat_table.t option

(** [store t ~key table] writes [table] under [key] via temp-file +
    atomic rename.  Best-effort: I/O failures increment
    [stats.errors] and leave any previous entry untouched. *)
val store : t -> key:string -> Flat_table.t -> unit
