(** Width-laddered flat tables on [Bigarray] storage.

    The dense oracle tables ({!Range_union}, {!Interval_cost.precompute})
    used to live in OCaml [int array]s: one boxed word per cell, scanned
    by the GC on every major cycle and multiplied across the
    {!Hr_util.Pool} domains' heaps.  A [Flat_table.t] keeps the same
    O(1) lock-free reads but stores cells out of the OCaml heap in a
    [Bigarray.Array1] — zero-copy shareable across domains (the mapping
    lives in the process address space, not a domain-local heap), never
    scanned by the GC, and {e width-laddered}: the element width is the
    narrowest of 16/32/64 bits that holds the table's maximum value, so
    a table of small interval-union cardinalities costs 2 bytes per cell
    instead of 8.

    Cell values are non-negative OCaml [int]s; [I16] holds values up to
    [0xFFFF], [I32] up to [Int32.max_int], [I64] anything.  Writes
    through {!writer}/{!set} are overflow-checked (raising {!Overflow})
    so a mis-predicted bound corrupts nothing; reads are plain
    bounds-checked Bigarray gets. *)

type t =
  | I16 of (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
  | I64 of (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Raised by {!set}/{!writer} when a value does not fit the table's
    element width (negative, or beyond the width's maximum). *)
exception Overflow of { index : int; value : int; width_bits : int }

(** The shared auto-parallelization threshold: a dense table build of at
    least this many cells runs on the {!Hr_util.Pool} when no explicit
    pool was passed; below it, queue traffic would dominate the row
    loops and the build stays sequential.  Both {!Range_union.make} and
    {!Interval_cost} size their decision against this one constant so
    the two layers cannot drift apart. *)
val parallel_build_cells : int

(** [create ~max_value len] allocates a zero-filled table of [len]
    cells wide enough for [max_value] (16 bits below 2¹⁶, 32 bits up to
    [Int32.max_int], 64 bits beyond).  Raises [Invalid_argument] on
    negative [len]. *)
val create : max_value:int -> int -> t

val length : t -> int

(** [width_bits t] is 16, 32 or 64. *)
val width_bits : t -> int

(** [bytes t] is the out-of-heap payload size: [length t * width_bits t / 8]. *)
val bytes : t -> int

(** [max_representable t] is the largest value {!set} accepts. *)
val max_representable : t -> int

(** [get t i] reads cell [i] as an [int].  Bounds-checked. *)
val get : t -> int -> int

(** [set t i v] writes cell [i]; raises {!Overflow} when [v] is
    negative or exceeds {!max_representable}. *)
val set : t -> int -> int -> unit

(** [reader t] is {!get} with the width dispatch hoisted out of the
    per-call path — bind it once outside a query loop. *)
val reader : t -> int -> int

(** [writer t] is {!set} with the width dispatch hoisted.  Safe to use
    from several domains on disjoint index ranges (parallel builds
    write each cell exactly once). *)
val writer : t -> int -> int -> unit

(** [equal a b] — same length and elementwise equal {e values},
    regardless of storage width. *)
val equal : t -> t -> bool
