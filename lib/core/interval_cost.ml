module Pool = Hr_util.Pool

type dense_source = Built | Mapped

type cache =
  | Direct
  | Memoized of {
      hits : int Atomic.t;
      misses : int Atomic.t;
      entries : int Atomic.t;
      probe_full : int Atomic.t;
      slot_races : int Atomic.t;
    }
  | Dense_table of {
      table : Flat_table.t;
      build_ms : float;
      build_workers : int;
      build_seq_ms : float;
      source : dense_source;
    }
  | Sparse_index of { indexes : Occ_index.t array; build_ms : float }

type policy = Dense | Sparse | Auto

let policy_enum = [ ("dense", Dense); ("sparse", Sparse); ("auto", Auto) ]

type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  probe_full : int;
  slot_races : int;
  queries : int;
  cells : int;
  segments : int;
  build_ms : float;
  build_workers : int;
  build_seq_ms : float;
  width_bits : int;
  bytes_resident : int;
  bytes_peak : int;
  source : string;
}

type t = {
  m : int;
  n : int;
  v : int array;
  step_cost : int -> int -> int -> int;
  cache : cache;
  fingerprint : string option;
}

(* The memoize fallback capacity (see [memoize] below). *)
let memo_shards = 64
let memo_slots = 4096 (* per shard; must be a power of two *)
let memo_probe_limit = 16

(* Heap-accounting estimates for the memoizer: the slot array is
   [memo_shards * memo_slots] one-word Atomics, and each resident entry
   additionally boxes a (key, value) pair — 3 words with its header. *)
let word = Sys.word_size / 8
let memo_table_bytes = memo_shards * memo_slots * word
let memo_entry_bytes = 3 * word

let no_stats =
  {
    kind = "direct";
    hits = 0;
    misses = 0;
    probe_full = 0;
    slot_races = 0;
    queries = 0;
    cells = 0;
    segments = 0;
    build_ms = 0.;
    build_workers = 1;
    build_seq_ms = 0.;
    width_bits = 0;
    bytes_resident = 0;
    bytes_peak = 0;
    source = "";
  }

let cache_stats t =
  match t.cache with
  | Direct -> no_stats
  | Memoized { hits; misses; entries; probe_full; slot_races } ->
      let resident = Atomic.get entries in
      {
        no_stats with
        kind = "memoize";
        hits = Atomic.get hits;
        misses = Atomic.get misses;
        probe_full = Atomic.get probe_full;
        slot_races = Atomic.get slot_races;
        cells = resident;
        width_bits = 64;
        bytes_resident = memo_table_bytes + (resident * memo_entry_bytes);
        bytes_peak = memo_table_bytes + (memo_shards * memo_slots * memo_entry_bytes);
      }
  | Dense_table { table; build_ms; build_workers; build_seq_ms; source } ->
      let bytes = Flat_table.bytes table in
      {
        no_stats with
        kind = "dense";
        cells = Flat_table.length table;
        build_ms;
        build_workers;
        build_seq_ms;
        width_bits = Flat_table.width_bits table;
        bytes_resident = bytes;
        bytes_peak = bytes;
        source = (match source with Built -> "built" | Mapped -> "mmap");
      }
  | Sparse_index { indexes; build_ms } ->
      let sum f = Array.fold_left (fun acc ix -> acc + f ix) 0 indexes in
      let bytes = sum Occ_index.bytes in
      {
        no_stats with
        kind = "sparse";
        queries = sum Occ_index.queries;
        (* cells: the occurrence-list entries actually stored — the
           sparse analogue of the dense table's m·n² cell count. *)
        cells = sum Occ_index.entries;
        segments = sum Occ_index.segments;
        build_ms;
        build_seq_ms = build_ms;
        width_bits = 64;
        bytes_resident = bytes;
        bytes_peak = bytes;
      }

let make ~m ~n ~v ~step_cost =
  if m <= 0 then invalid_arg "Interval_cost.make: m must be positive";
  if n < 0 then invalid_arg "Interval_cost.make: negative n";
  if Array.length v <> m then invalid_arg "Interval_cost.make: |v| <> m";
  { m; n; v = Array.copy v; step_cost; cache = Direct; fingerprint = None }

(* The structural hash of a task set: everything the switch-model dense
   tables are a function of (constructor tag, dimensions, per-task v,
   local-space width, and every step requirement).  Equal task sets
   hash equal; any change to a requirement changes the digest. *)
let task_set_fingerprint ts =
  let buf = Buffer.create 1024 in
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  Buffer.add_string buf (Printf.sprintf "hyperreconf.oracle/switch/1|m=%d|n=%d" m n);
  for j = 0 to m - 1 do
    let task = Task_set.get ts j in
    Buffer.add_string buf
      (Printf.sprintf "|task %d v=%d width=%d" j task.Task_set.v
         (Switch_space.size (Trace.space task.Task_set.trace)));
    for i = 0 to n - 1 do
      Buffer.add_char buf ';';
      Hr_util.Bitset.iter
        (fun s ->
          Buffer.add_string buf (string_of_int s);
          Buffer.add_char buf ',')
        (Trace.req task.Task_set.trace i)
    done
  done;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* 128 MiB: the same ceiling the old 16M-cell ([int array], 8 B/cell)
   default imposed, but now width-aware — a 16-bit table fits 4x the
   cells in the same budget. *)
let default_max_bytes = 128 * 1024 * 1024

let dense_of_task_set ?pool ts =
  let m = Task_set.num_tasks ts in
  let n = Task_set.steps ts in
  let v = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
  let pool =
    match pool with
    | Some _ -> pool
    | None ->
        if m * n * n >= Flat_table.parallel_build_cells then Some (Pool.default ())
        else None
  in
  (* Multi-task sets parallelize across tasks; a single task hands the
     pool down so Range_union parallelizes across its lo rows
     instead. *)
  let mk j = Range_union.make ?pool:(if m = 1 then pool else None) (Task_set.get ts j).Task_set.trace in
  let tables =
    match pool with
    | Some p when m > 1 -> Pool.map p mk (Array.init m Fun.id)
    | _ -> Array.init m mk
  in
  let step_cost j lo hi = Range_union.size tables.(j) lo hi in
  { (make ~m ~n ~v ~step_cost) with fingerprint = Some (task_set_fingerprint ts) }

let sparse_of_task_set ts =
  let m = Task_set.num_tasks ts in
  let n = Task_set.steps ts in
  let v = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
  let t0 = Hr_util.Budget.now_ms () in
  let indexes =
    Array.init m (fun j -> Occ_index.of_trace (Task_set.get ts j).Task_set.trace)
  in
  let build_ms = Hr_util.Budget.now_ms () -. t0 in
  let step_cost j lo hi = Occ_index.size indexes.(j) lo hi in
  {
    (make ~m ~n ~v ~step_cost) with
    cache = Sparse_index { indexes; build_ms };
    fingerprint = Some (task_set_fingerprint ts);
  }

(* The projected dense footprint: m triangular Range_union tables plus
   the m·n² Interval_cost table, both at the 2-byte minimum width — the
   cheapest the dense rung can possibly be. *)
let projected_dense_bytes ~m ~n = m * n * n * 3

let of_task_set ?pool ?(policy = Auto) ?(max_bytes = default_max_bytes) ts =
  match policy with
  | Dense -> dense_of_task_set ?pool ts
  | Sparse -> sparse_of_task_set ts
  | Auto ->
      let m = Task_set.num_tasks ts and n = Task_set.steps ts in
      if projected_dense_bytes ~m ~n > max_bytes then sparse_of_task_set ts
      else dense_of_task_set ?pool ts

let of_single ?pool ?policy ?max_bytes ~v trace =
  of_task_set ?pool ?policy ?max_bytes (Task_set.single ~name:"task" ~v trace)

(* The memoize fallback: a sharded, fixed-capacity, lock-free cache.
   Each slot is an [Atomic.t] holding an immutable (key, value) pair;
   inserts publish with a single compare-and-set against the shared
   empty sentinel, reads are one [Atomic.get] — racing solver domains
   never serialize on a lock.  A full probe window simply computes
   without caching (bounded memory; the hot triples win the slots). *)
let memoize t =
  let empty = (min_int, 0) in
  let table = Array.init (memo_shards * memo_slots) (fun _ -> Atomic.make empty) in
  let hits = Atomic.make 0 and misses = Atomic.make 0 and entries = Atomic.make 0 in
  let probe_full = Atomic.make 0 and slot_races = Atomic.make 0 in
  let step_cost j lo hi =
    let key = (((j * t.n) + lo) * t.n) + hi in
    let h = key * 0x2545F4914F6CDD1D in
    let base = (h land (memo_shards - 1)) * memo_slots in
    let slot0 = (h lsr 6) land (memo_slots - 1) in
    let rec probe k =
      if k >= memo_probe_limit then begin
        (* Window exhausted: compute without caching.  Counted apart
           from misses so telemetry can tell "cold" from "capacity". *)
        Atomic.incr probe_full;
        t.step_cost j lo hi
      end
      else begin
        let slot = table.(base + ((slot0 + k) land (memo_slots - 1))) in
        let ck, cv = Atomic.get slot in
        if ck = key then begin
          Atomic.incr hits;
          cv
        end
        else if ck = min_int then begin
          Atomic.incr misses;
          let c = t.step_cost j lo hi in
          if Atomic.compare_and_set slot empty (key, c) then Atomic.incr entries
          else Atomic.incr slot_races;
          c
        end
        else probe (k + 1)
      end
    in
    probe 0
  in
  {
    t with
    step_cost;
    cache = Memoized { hits; misses; entries; probe_full; slot_races };
  }

(* [step_cost] is monotone (non-increasing in lo, non-decreasing in
   hi), so the largest cell of task j is the full-interval cost — m
   oracle calls bound every cell and pick the element width.  A
   non-monotone custom oracle that breaks the bound is caught by the
   checked table writes and rebuilt at full width. *)
let value_bound t =
  let b = ref 0 in
  for j = 0 to t.m - 1 do
    b := max !b (t.step_cost j 0 (t.n - 1))
  done;
  !b

let width_bytes_for bound = if bound <= 0xFFFF then 2 else if bound <= Int32.to_int Int32.max_int then 4 else 8

let dense_lookup ~n table =
  let read = Flat_table.reader table in
  fun j lo hi -> read ((((j * n) + lo) * n) + hi)

let of_table ~m ~n ~v table =
  if Flat_table.length table <> m * n * n then
    invalid_arg "Interval_cost.of_table: table size <> m*n*n";
  {
    m;
    n;
    v = Array.copy v;
    step_cost = dense_lookup ~n table;
    cache =
      Dense_table
        { table; build_ms = 0.; build_workers = 1; build_seq_ms = 0.; source = Mapped };
    fingerprint = None;
  }

let of_cache cache ~key ~m ~n ~v =
  if m <= 0 || n < 0 then None
  else
    Option.map
      (fun table -> { (of_table ~m ~n ~v table) with fingerprint = Some key })
      (Table_cache.load cache ~key ~cells:(m * n * n))

let precompute ?(max_bytes = default_max_bytes) ?cache ?pool t =
  match t.cache with
  (* Already materialized (or already fallen back): re-densifying would
     only copy the table.  Short-circuiting keeps per-solve calls
     (Mt_ga, Mt_local, Mt_anneal under Solver.race) free once
     Problem.make has built the shared tables.  A sparse oracle stays
     sparse — the whole point of forcing [Sparse] is never to pay the
     n² densification. *)
  | Dense_table _ | Sparse_index _ -> t
  | _ when t.n = 0 -> t
  | _ ->
      let n = t.n and m = t.m in
      let cells = m * n * n in
      let bound = value_bound t in
      if cells * width_bytes_for bound > max_bytes then (
        (* Over the memory budget: the graceful fall-back ladder ends at
           the bounded-memory memoizer. *)
        match t.cache with Memoized _ -> t | _ -> memoize t)
      else
        let t0 = Hr_util.Budget.now_ms () in
        let cached =
          match (cache, t.fingerprint) with
          | Some c, Some key -> Table_cache.load c ~key ~cells
          | _ -> None
        in
        match cached with
        | Some table ->
            (* mmap hit: the table pages in on demand; no oracle calls. *)
            let build_ms = Hr_util.Budget.now_ms () -. t0 in
            {
              t with
              step_cost = dense_lookup ~n table;
              cache =
                Dense_table
                  { table; build_ms; build_workers = 1; build_seq_ms = build_ms; source = Mapped };
            }
        | None ->
            (* One flat table: lock-free reads, so the same oracle can be
               shared by solvers racing on several domains without the
               sentinel-CAS round of [memoize].  Rows ((task, lo) pairs)
               are independent, so they build in parallel on the pool;
               per-chunk wall clocks accumulate into the
               sequential-equivalent build time reported by
               {!cache_stats}. *)
            let pool =
              match pool with
              | Some _ -> pool
              | None ->
                  if cells >= Flat_table.parallel_build_cells then Some (Pool.default ())
                  else None
            in
            let seq_us = Atomic.make 0 in
            let build max_value =
              let tab = Flat_table.create ~max_value cells in
              let write = Flat_table.writer tab in
              Atomic.set seq_us 0;
              let fill_rows r_lo r_hi =
                let c0 = Hr_util.Budget.now_ms () in
                for r = r_lo to r_hi do
                  let j = r / n and lo = r mod n in
                  let base = ((j * n) + lo) * n in
                  for hi = lo to n - 1 do
                    write (base + hi) (t.step_cost j lo hi)
                  done
                done;
                ignore
                  (Atomic.fetch_and_add seq_us
                     (int_of_float ((Hr_util.Budget.now_ms () -. c0) *. 1000.)))
              in
              let build_workers =
                match pool with
                | Some p ->
                    Pool.iter_chunks ~chunks:(min (m * n) ((Pool.size p + 1) * 4)) p
                      fill_rows (m * n);
                    Pool.size p + 1
                | None ->
                    fill_rows 0 ((m * n) - 1);
                    1
              in
              (tab, build_workers)
            in
            let tab, build_workers =
              (* The monotone bound makes overflow impossible for
                 law-abiding oracles; a custom oracle that violates
                 monotonicity trips the checked write and rebuilds at
                 full width instead of storing a truncated cell. *)
              try build bound with Flat_table.Overflow _ -> build max_int
            in
            (match (cache, t.fingerprint) with
            | Some c, Some key -> Table_cache.store c ~key tab
            | _ -> ());
            let build_ms = Hr_util.Budget.now_ms () -. t0 in
            let build_seq_ms =
              if build_workers = 1 then build_ms
              else float_of_int (Atomic.get seq_us) /. 1000.
            in
            {
              t with
              step_cost = dense_lookup ~n tab;
              cache =
                Dense_table
                  { table = tab; build_ms; build_workers; build_seq_ms; source = Built };
            }

let full_cost t j = if t.n = 0 then 0 else t.step_cost j 0 (t.n - 1)
