type cache =
  | Direct
  | Memoized of { hits : int Atomic.t; misses : int Atomic.t }
  | Dense of { cells : int; build_ms : float }

type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  cells : int;
  build_ms : float;
}

type t = {
  m : int;
  n : int;
  v : int array;
  step_cost : int -> int -> int -> int;
  cache : cache;
}

let cache_stats t =
  match t.cache with
  | Direct -> { kind = "direct"; hits = 0; misses = 0; cells = 0; build_ms = 0. }
  | Memoized { hits; misses } ->
      {
        kind = "memoize";
        hits = Atomic.get hits;
        misses = Atomic.get misses;
        cells = Atomic.get misses;
        build_ms = 0.;
      }
  | Dense { cells; build_ms } ->
      { kind = "dense"; hits = 0; misses = 0; cells; build_ms }

let make ~m ~n ~v ~step_cost =
  if m <= 0 then invalid_arg "Interval_cost.make: m must be positive";
  if n < 0 then invalid_arg "Interval_cost.make: negative n";
  if Array.length v <> m then invalid_arg "Interval_cost.make: |v| <> m";
  { m; n; v = Array.copy v; step_cost; cache = Direct }

let of_task_set ts =
  let m = Task_set.num_tasks ts in
  let n = Task_set.steps ts in
  let v = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
  let tables =
    Array.init m (fun j -> Range_union.make (Task_set.get ts j).Task_set.trace)
  in
  let step_cost j lo hi = Range_union.size tables.(j) lo hi in
  make ~m ~n ~v ~step_cost

let of_single ~v trace = of_task_set (Task_set.single ~name:"task" ~v trace)

let memoize t =
  (* Mutex-protected so memoized oracles stay safe under the parallel
     GA evaluation (Hr_evolve.Ga with domains > 1). *)
  let cache = Hashtbl.create 4096 in
  let lock = Mutex.create () in
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let step_cost j lo hi =
    let key = ((j * t.n) + lo) * t.n + hi in
    Mutex.lock lock;
    let hit = Hashtbl.find_opt cache key in
    Mutex.unlock lock;
    match hit with
    | Some c ->
        Atomic.incr hits;
        c
    | None ->
        Atomic.incr misses;
        let c = t.step_cost j lo hi in
        Mutex.lock lock;
        Hashtbl.replace cache key c;
        Mutex.unlock lock;
        c
  in
  { t with step_cost; cache = Memoized { hits; misses } }

let default_max_cells = 16_000_000

let precompute ?(max_cells = default_max_cells) t =
  if t.n = 0 then t
  else if t.m * t.n * t.n > max_cells then memoize t
  else begin
    (* One flat triangular-ish table per task: lock-free reads, so the
       same oracle can be shared by solvers racing on several domains
       without the Mutex round-trip of [memoize]. *)
    let t0 = Hr_util.Budget.now_ms () in
    let n = t.n in
    let tabs =
      Array.init t.m (fun j ->
          let tab = Array.make (n * n) 0 in
          for lo = 0 to n - 1 do
            for hi = lo to n - 1 do
              tab.((lo * n) + hi) <- t.step_cost j lo hi
            done
          done;
          tab)
    in
    let step_cost j lo hi = tabs.(j).((lo * n) + hi) in
    {
      t with
      step_cost;
      cache =
        Dense
          { cells = t.m * n * n; build_ms = Hr_util.Budget.now_ms () -. t0 };
    }
  end

let full_cost t j = if t.n = 0 then 0 else t.step_cost j 0 (t.n - 1)
