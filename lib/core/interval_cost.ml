module Pool = Hr_util.Pool

type cache =
  | Direct
  | Memoized of {
      hits : int Atomic.t;
      misses : int Atomic.t;
      entries : int Atomic.t;
    }
  | Dense of {
      cells : int;
      build_ms : float;
      build_workers : int;
      build_seq_ms : float;
    }

type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  cells : int;
  build_ms : float;
  build_workers : int;
  build_seq_ms : float;
}

type t = {
  m : int;
  n : int;
  v : int array;
  step_cost : int -> int -> int -> int;
  cache : cache;
}

let cache_stats t =
  match t.cache with
  | Direct ->
      {
        kind = "direct";
        hits = 0;
        misses = 0;
        cells = 0;
        build_ms = 0.;
        build_workers = 1;
        build_seq_ms = 0.;
      }
  | Memoized { hits; misses; entries } ->
      {
        kind = "memoize";
        hits = Atomic.get hits;
        misses = Atomic.get misses;
        cells = Atomic.get entries;
        build_ms = 0.;
        build_workers = 1;
        build_seq_ms = 0.;
      }
  | Dense { cells; build_ms; build_workers; build_seq_ms } ->
      {
        kind = "dense";
        hits = 0;
        misses = 0;
        cells;
        build_ms;
        build_workers;
        build_seq_ms;
      }

let make ~m ~n ~v ~step_cost =
  if m <= 0 then invalid_arg "Interval_cost.make: m must be positive";
  if n < 0 then invalid_arg "Interval_cost.make: negative n";
  if Array.length v <> m then invalid_arg "Interval_cost.make: |v| <> m";
  { m; n; v = Array.copy v; step_cost; cache = Direct }

(* Oracle builds whose dense table would stay below this many cells run
   sequentially — queue traffic would dominate the row loops. *)
let parallel_build_cells = 1 lsl 16

let of_task_set ?pool ts =
  let m = Task_set.num_tasks ts in
  let n = Task_set.steps ts in
  let v = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
  let pool =
    match pool with
    | Some _ -> pool
    | None -> if m * n * n >= parallel_build_cells then Some (Pool.default ()) else None
  in
  (* Multi-task sets parallelize across tasks; a single task hands the
     pool down so Range_union parallelizes across its lo rows
     instead. *)
  let mk j = Range_union.make ?pool:(if m = 1 then pool else None) (Task_set.get ts j).Task_set.trace in
  let tables =
    match pool with
    | Some p when m > 1 -> Pool.map p mk (Array.init m Fun.id)
    | _ -> Array.init m mk
  in
  let step_cost j lo hi = Range_union.size tables.(j) lo hi in
  make ~m ~n ~v ~step_cost

let of_single ?pool ~v trace = of_task_set ?pool (Task_set.single ~name:"task" ~v trace)

(* The memoize fallback: a sharded, fixed-capacity, lock-free cache.
   Each slot is an [Atomic.t] holding an immutable (key, value) pair;
   inserts publish with a single compare-and-set against the shared
   empty sentinel, reads are one [Atomic.get] — racing solver domains
   never serialize on a lock.  A full probe window simply computes
   without caching (bounded memory; the hot triples win the slots). *)
let memo_shards = 64
let memo_slots = 4096 (* per shard; must be a power of two *)
let memo_probe_limit = 16

let memoize t =
  let empty = (min_int, 0) in
  let table = Array.init (memo_shards * memo_slots) (fun _ -> Atomic.make empty) in
  let hits = Atomic.make 0 and misses = Atomic.make 0 and entries = Atomic.make 0 in
  let step_cost j lo hi =
    let key = (((j * t.n) + lo) * t.n) + hi in
    let h = key * 0x2545F4914F6CDD1D in
    let base = (h land (memo_shards - 1)) * memo_slots in
    let slot0 = (h lsr 6) land (memo_slots - 1) in
    let rec probe k =
      if k >= memo_probe_limit then begin
        Atomic.incr misses;
        t.step_cost j lo hi
      end
      else begin
        let slot = table.(base + ((slot0 + k) land (memo_slots - 1))) in
        let ck, cv = Atomic.get slot in
        if ck = key then begin
          Atomic.incr hits;
          cv
        end
        else if ck = min_int then begin
          Atomic.incr misses;
          let c = t.step_cost j lo hi in
          if Atomic.compare_and_set slot empty (key, c) then Atomic.incr entries;
          c
        end
        else probe (k + 1)
      end
    in
    probe 0
  in
  { t with step_cost; cache = Memoized { hits; misses; entries } }

let default_max_cells = 16_000_000

let precompute ?(max_cells = default_max_cells) ?pool t =
  match t.cache with
  (* Already materialized (or already fallen back): re-densifying would
     only copy the table.  Short-circuiting keeps per-solve calls
     (Mt_ga, Mt_local, Mt_anneal under Solver.race) free once
     Problem.make has built the shared tables. *)
  | Dense _ -> t
  | Memoized _ when t.m * t.n * t.n > max_cells -> t
  | _ when t.n = 0 -> t
  | _ when t.m * t.n * t.n > max_cells -> memoize t
  | _ ->
      (* One flat table: lock-free reads, so the same oracle can be
         shared by solvers racing on several domains without the
         sentinel-CAS round of [memoize].  Rows ((task, lo) pairs) are
         independent, so they build in parallel on the pool; per-chunk
         wall clocks accumulate into the sequential-equivalent build
         time reported by {!cache_stats}. *)
      let n = t.n and m = t.m in
      let cells = m * n * n in
      let pool =
        match pool with
        | Some _ -> pool
        | None -> if cells >= parallel_build_cells then Some (Pool.default ()) else None
      in
      let t0 = Hr_util.Budget.now_ms () in
      let tab = Array.make cells 0 in
      let seq_us = Atomic.make 0 in
      let fill_rows r_lo r_hi =
        let c0 = Hr_util.Budget.now_ms () in
        for r = r_lo to r_hi do
          let j = r / n and lo = r mod n in
          let base = (((j * n) + lo) * n) in
          for hi = lo to n - 1 do
            tab.(base + hi) <- t.step_cost j lo hi
          done
        done;
        ignore
          (Atomic.fetch_and_add seq_us
             (int_of_float ((Hr_util.Budget.now_ms () -. c0) *. 1000.)))
      in
      let build_workers =
        match pool with
        | Some p ->
            Pool.iter_chunks ~chunks:(min (m * n) ((Pool.size p + 1) * 4)) p
              fill_rows (m * n);
            Pool.size p + 1
        | None ->
            fill_rows 0 ((m * n) - 1);
            1
      in
      let step_cost j lo hi = tab.((((j * n) + lo) * n) + hi) in
      let build_ms = Hr_util.Budget.now_ms () -. t0 in
      let build_seq_ms =
        if build_workers = 1 then build_ms else float_of_int (Atomic.get seq_us) /. 1000.
      in
      { t with step_cost; cache = Dense { cells; build_ms; build_workers; build_seq_ms } }

let full_cost t j = if t.n = 0 then 0 else t.step_cost j 0 (t.n - 1)
