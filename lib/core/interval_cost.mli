(** The interval-cost oracle — the abstraction every optimizer targets.

    For all three of the paper's cost models (Switch, DAG, General with
    explicit H) the following holds: once the hyperreconfiguration
    points of a task are fixed, the optimal hypercontext of the block
    of steps [lo..hi] is determined (switch model: the union of the
    block's requirements; DAG/General: a cheapest hypercontext
    satisfying every requirement of the block), and the resulting
    per-step ordinary-reconfiguration cost depends only on [(task, lo,
    hi)].  An oracle packages those per-block costs together with the
    partial-hyperreconfiguration costs [v_j], so that breakpoint-space
    optimizers (exact DP, GA, annealing, greedy, brute force) are
    written once and work for every model.

    [step_cost j lo hi] must be
    {ul
    {- monotone: non-increasing in [lo] and non-decreasing in [hi]
       (shrinking a block can only shrink its minimal hypercontext);}
    {- non-negative.}}
    Constructors in this library guarantee both.

    Dense tables live out of the OCaml heap in a {!Flat_table.t}
    (Bigarray storage, element width chosen from the largest cell):
    zero-copy shareable across {!Hr_util.Pool} domains, invisible to
    the GC, lock-free O(1) reads.  With a {!Table_cache.t} the tables
    also persist across processes, addressed by the oracle's structural
    fingerprint. *)

(** How (and whether) the oracle caches [step_cost] queries — carried
    by the oracle so the solver telemetry can report cache behavior. *)
type cache

(** Which rung of the oracle ladder {!of_task_set} builds:
    {ul
    {- [Dense] — always the O(1) precomputed tables, whatever the size;}
    {- [Sparse] — always the {!Occ_index} occurrence index: O(S log σ)
       queries, memory linear in the compressed trace, no n² anywhere;}
    {- [Auto] (the default) — dense while the projected tables fit the
       byte budget, sparse above it.}} *)
type policy = Dense | Sparse | Auto

(** Command-line spelling of {!policy} — [("dense", Dense); ("sparse",
    Sparse); ("auto", Auto)], for {!Hr_util.Cli.enum}. *)
val policy_enum : (string * policy) list

type t = {
  m : int;  (** number of tasks *)
  n : int;  (** number of synchronized machine steps *)
  v : int array;  (** [v.(j)]: partial hyperreconfiguration cost of task j *)
  step_cost : int -> int -> int -> int;
      (** [step_cost j lo hi]: per-step reconfiguration cost of task [j]
          while its current hypercontext covers steps [lo..hi]. *)
  cache : cache;
  fingerprint : string option;
      (** structural hash of the oracle inputs (when the constructor can
          derive one, e.g. {!of_task_set}): equal inputs have equal
          fingerprints, so it addresses the persistent
          {!Table_cache}. *)
}

(** A telemetry snapshot of the oracle's cache.  [kind] is ["direct"]
    (no cache), ["memoize"] (sharded lock-free cache; [hits]/[misses]
    count queries, [cells] counts the distinct entries actually
    resident — {e not} the miss count), ["dense"] ([cells] = m·n²
    precomputed table cells; lookups are uncounted array reads) or
    ["sparse"] (the {!Occ_index} occurrence index; [queries] counts
    [step_cost] calls, [cells] the stored occurrence-list entries,
    [segments] the compressed trace length summed over tasks).

    For ["memoize"], [misses] counts only queries that found an open
    slot to fill; a query whose probe window was full computes without
    caching and is counted in [probe_full] instead, and a filling miss
    that lost its publish race to a concurrent domain is additionally
    counted in [slot_races] (its computed value is returned but not
    cached).  So in a single-domain run
    [cells = misses - slot_races = misses] exactly; [hits + misses +
    probe_full] is the total query count.

    The build-parallelism fields describe how a dense table was
    materialized: [build_ms] is the wall-clock build time,
    [build_workers] the number of domains that participated (pool
    workers plus the calling domain; 1 for a sequential build), and
    [build_seq_ms] the sequential-equivalent build time (the summed
    per-chunk wall clocks — what one domain would have paid), so
    [build_seq_ms /. build_ms] is the measured build speedup.  For
    sequential builds [build_seq_ms = build_ms]; for non-dense caches
    both report their idle defaults (workers 1, 0 ms).

    The memory fields report residency: [width_bits] is the dense
    element width from the {!Flat_table} ladder (16/32/64; 64 for the
    boxed memoizer, 0 for ["direct"]), [bytes_resident] the bytes held
    now (exact table bytes for ["dense"], an estimate for
    ["memoize"]), and [bytes_peak] the cache's ceiling (equal to
    resident for dense tables; the full-capacity estimate for the
    memoizer).  [source] says where a dense table came from: ["built"]
    (computed by oracle calls this process) or ["mmap"] (mapped from a
    {!Table_cache} file — a warm load performs no oracle calls);
    [""] for non-dense caches. *)
type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  probe_full : int;
  slot_races : int;
  queries : int;
  cells : int;
  segments : int;
  build_ms : float;
  build_workers : int;
  build_seq_ms : float;
  width_bits : int;
  bytes_resident : int;
  bytes_peak : int;
  source : string;
}

(** [cache_stats t] — counters are cumulative over the oracle's
    lifetime and safe to read while other domains query it. *)
val cache_stats : t -> cache_stats

(** [of_task_set ?pool ?policy ?max_bytes ts] is the MT-Switch oracle:
    [step_cost j lo hi = |U_j(lo,hi)|].

    Under the dense rung (the [Auto] default while the projected
    per-task tables fit [max_bytes], or forced with [Dense]) it
    precomputes the per-task interval-union tables — in parallel on
    [pool] across tasks (and across [lo] rows for single-task sets, via
    {!Range_union.make}).  Without [pool], builds of at least
    {!Flat_table.parallel_build_cells} cells run on the shared
    {!Hr_util.Pool.default}; smaller ones stay sequential.  The tables
    are elementwise identical either way.

    Under the sparse rung ([Sparse], or [Auto] above the budget) it
    builds one {!Occ_index} per task instead: O(n + requirement
    entries) build, memory linear in the run-length-compressed trace,
    O(S log σ) queries — elementwise identical to the dense tables
    (property-tested), just slower per query.  This is what makes
    10⁵-step traces feasible: their dense tables would need > 10 GiB.
    [pool] is unused on this rung.  Sparse oracles are never densified
    by {!precompute} (solvers query them through [step_cost] as-is).

    [max_bytes] (default {!default_max_bytes}) budgets the {e combined}
    projected dense footprint, m·n²·3 bytes at the cheapest element
    width.  Either way the oracle carries {!task_set_fingerprint}[ ts]
    as its [fingerprint]. *)
val of_task_set :
  ?pool:Hr_util.Pool.t -> ?policy:policy -> ?max_bytes:int -> Task_set.t -> t

(** [of_single ?pool ?policy ?max_bytes ~v trace] is the single-task
    switch oracle. *)
val of_single :
  ?pool:Hr_util.Pool.t -> ?policy:policy -> ?max_bytes:int -> v:int -> Trace.t -> t

(** [make ~m ~n ~v ~step_cost] builds a custom oracle (used by the DAG
    and General models).  Custom oracles carry no [fingerprint], so
    they never touch a {!Table_cache} (the cache cannot know what the
    closure depends on); set one with a record update if the inputs
    are content-addressable. *)
val make : m:int -> n:int -> v:int array -> step_cost:(int -> int -> int -> int) -> t

(** [task_set_fingerprint ts] is the structural hash (hex MD5) of
    everything the MT-Switch dense tables are a function of: m, n, each
    task's [v], local-space width, and every step requirement.  Equal
    task sets hash equal; any change to any requirement changes the
    hash.  This is the {!Table_cache} key used by {!of_task_set} /
    {!precompute}. *)
val task_set_fingerprint : Task_set.t -> string

(** [memoize t] caches [step_cost] results in a sharded lock-free table
    (fixed capacity, compare-and-set inserts, plain atomic reads) — the
    fallback cache for instances too large for {!precompute}.  Racing
    solver domains never serialize on a lock; when a shard's probe
    window is full, queries compute without caching, so memory stays
    bounded while the hot triples keep their slots.  Prefer
    {!precompute} whenever the dense table fits. *)
val memoize : t -> t

(** The default [max_bytes] of {!precompute}: 128 MiB, the same ceiling
    the previous 16M-cell ([int array]) default imposed, but now
    width-aware — a 16-bit table fits 4x the cells in the same
    budget. *)
val default_max_bytes : int

(** [value_bound t] is an upper bound on every [step_cost] cell — by
    interval monotonicity the largest cell of task [j] is the
    full-interval cost, so the bound costs [m] oracle calls.  It picks
    the {!Flat_table} element width before a dense build. *)
val value_bound : t -> int

(** [precompute ?max_bytes ?cache ?pool t] materializes every
    [step_cost j lo hi] into one flat dense {!Flat_table.t} in O(m·n²)
    oracle calls.  Queries become lock-free O(1) reads of out-of-heap
    storage, safe to share across domains (used by {!Solver.race} and
    the parallel metaheuristics).  The element width (16/32/64 bits)
    is picked from {!value_bound}; a custom oracle that violates the
    documented monotonicity trips the checked writes and transparently
    rebuilds at full width.

    The independent (task, lo) rows build in parallel on [pool] —
    defaulting to the shared {!Hr_util.Pool.default} for tables of at
    least {!Flat_table.parallel_build_cells} cells, sequential below —
    and the build records wall/sequential-equivalent times and worker
    count in {!cache_stats}.

    When the table would exceed [max_bytes] (default
    {!default_max_bytes}) it falls back to {!memoize} — memory-bounded,
    still lock-free.

    With [cache] and an oracle that carries a [fingerprint], the table
    is first looked up in the persistent store — a hit [mmap]s the file
    (no oracle calls, [cache_stats.source = "mmap"]) — and a freshly
    built table is written back for the next process.

    Idempotent and free on an already-dense oracle — {!Problem.make}
    calls it once per instance and every registered solver then shares
    the same tables. *)
val precompute :
  ?max_bytes:int -> ?cache:Table_cache.t -> ?pool:Hr_util.Pool.t -> t -> t

(** [of_cache cache ~key ~m ~n ~v] constructs a dense oracle directly
    from a persistent table, skipping the input-side construction
    entirely (for the switch model even {!of_task_set} is O(m·n²) —
    the warm path must not pay it).  [None] on any cache miss; on a
    hit the oracle's [step_cost] reads the mapped table and its
    [fingerprint] is [key].  The caller asserts that [key] was
    computed from the same inputs that determine [m], [n] and [v] —
    e.g. {!Hr_check.Case.oracle_key} derives all four from the case
    spec. *)
val of_cache :
  Table_cache.t -> key:string -> m:int -> n:int -> v:int array -> t option

(** [full_cost t j] is [step_cost t j 0 (n-1)]: the per-step cost of the
    never-hyperreconfigure hypercontext of task [j]. *)
val full_cost : t -> int -> int
