(** The interval-cost oracle — the abstraction every optimizer targets.

    For all three of the paper's cost models (Switch, DAG, General with
    explicit H) the following holds: once the hyperreconfiguration
    points of a task are fixed, the optimal hypercontext of the block
    of steps [lo..hi] is determined (switch model: the union of the
    block's requirements; DAG/General: a cheapest hypercontext
    satisfying every requirement of the block), and the resulting
    per-step ordinary-reconfiguration cost depends only on [(task, lo,
    hi)].  An oracle packages those per-block costs together with the
    partial-hyperreconfiguration costs [v_j], so that breakpoint-space
    optimizers (exact DP, GA, annealing, greedy, brute force) are
    written once and work for every model.

    [step_cost j lo hi] must be
    {ul
    {- monotone: non-increasing in [lo] and non-decreasing in [hi]
       (shrinking a block can only shrink its minimal hypercontext);}
    {- non-negative.}}
    Constructors in this library guarantee both. *)

(** How (and whether) the oracle caches [step_cost] queries — carried
    by the oracle so the solver telemetry can report cache behavior. *)
type cache

type t = {
  m : int;  (** number of tasks *)
  n : int;  (** number of synchronized machine steps *)
  v : int array;  (** [v.(j)]: partial hyperreconfiguration cost of task j *)
  step_cost : int -> int -> int -> int;
      (** [step_cost j lo hi]: per-step reconfiguration cost of task [j]
          while its current hypercontext covers steps [lo..hi]. *)
  cache : cache;
}

(** A telemetry snapshot of the oracle's cache.  [kind] is ["direct"]
    (no cache), ["memoize"] (Mutex hash table; [hits]/[misses] count
    queries, [cells] = distinct cached entries = misses) or ["dense"]
    ([cells] = m·n² precomputed table cells, built in [build_ms]
    wall-clock milliseconds; lookups are uncounted array reads). *)
type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  cells : int;
  build_ms : float;
}

(** [cache_stats t] — counters are cumulative over the oracle's
    lifetime and safe to read while other domains query it. *)
val cache_stats : t -> cache_stats

(** [of_task_set ts] is the MT-Switch oracle: [step_cost j lo hi =
    |U_j(lo,hi)|].  Precomputes the per-task interval-union tables. *)
val of_task_set : Task_set.t -> t

(** [of_single ~v trace] is the single-task switch oracle. *)
val of_single : v:int -> Trace.t -> t

(** [make ~m ~n ~v ~step_cost] builds a custom oracle (used by the DAG
    and General models). *)
val make : m:int -> n:int -> v:int array -> step_cost:(int -> int -> int -> int) -> t

(** [memoize t] caches [step_cost] results in a Mutex-protected hash
    table — the fallback cache for instances too large for
    {!precompute}.  Prefer {!precompute}: it is lock-free. *)
val memoize : t -> t

(** [precompute ?max_cells t] materializes every [step_cost j lo hi]
    into dense per-task arrays in O(m·n²) oracle calls.  Queries become
    lock-free O(1) array reads, safe to share across domains (used by
    {!Solver.race} and the parallel metaheuristics), and strictly
    cheaper than the Mutex hash path of {!memoize}.  When the table
    would exceed [max_cells] ints (default 16M) it falls back to
    {!memoize}.  Idempotent up to a cheap table copy — {!Problem.make}
    calls it once per instance so every registered solver shares the
    same tables. *)
val precompute : ?max_cells:int -> t -> t

(** [full_cost t j] is [step_cost j 0 (n-1)]: the per-step cost of the
    never-hyperreconfigure hypercontext of task [j]. *)
val full_cost : t -> int -> int
