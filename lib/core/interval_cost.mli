(** The interval-cost oracle — the abstraction every optimizer targets.

    For all three of the paper's cost models (Switch, DAG, General with
    explicit H) the following holds: once the hyperreconfiguration
    points of a task are fixed, the optimal hypercontext of the block
    of steps [lo..hi] is determined (switch model: the union of the
    block's requirements; DAG/General: a cheapest hypercontext
    satisfying every requirement of the block), and the resulting
    per-step ordinary-reconfiguration cost depends only on [(task, lo,
    hi)].  An oracle packages those per-block costs together with the
    partial-hyperreconfiguration costs [v_j], so that breakpoint-space
    optimizers (exact DP, GA, annealing, greedy, brute force) are
    written once and work for every model.

    [step_cost j lo hi] must be
    {ul
    {- monotone: non-increasing in [lo] and non-decreasing in [hi]
       (shrinking a block can only shrink its minimal hypercontext);}
    {- non-negative.}}
    Constructors in this library guarantee both. *)

(** How (and whether) the oracle caches [step_cost] queries — carried
    by the oracle so the solver telemetry can report cache behavior. *)
type cache

type t = {
  m : int;  (** number of tasks *)
  n : int;  (** number of synchronized machine steps *)
  v : int array;  (** [v.(j)]: partial hyperreconfiguration cost of task j *)
  step_cost : int -> int -> int -> int;
      (** [step_cost j lo hi]: per-step reconfiguration cost of task [j]
          while its current hypercontext covers steps [lo..hi]. *)
  cache : cache;
}

(** A telemetry snapshot of the oracle's cache.  [kind] is ["direct"]
    (no cache), ["memoize"] (sharded lock-free cache; [hits]/[misses]
    count queries, [cells] counts the distinct entries actually
    resident — {e not} the miss count: a miss that lost its slot race
    or found its probe window full computes without caching) or
    ["dense"] ([cells] = m·n² precomputed table cells; lookups are
    uncounted array reads).

    The build-parallelism fields describe how a dense table was
    materialized: [build_ms] is the wall-clock build time,
    [build_workers] the number of domains that participated (pool
    workers plus the calling domain; 1 for a sequential build), and
    [build_seq_ms] the sequential-equivalent build time (the summed
    per-chunk wall clocks — what one domain would have paid), so
    [build_seq_ms /. build_ms] is the measured build speedup.  For
    sequential builds [build_seq_ms = build_ms]; for non-dense caches
    both report their idle defaults (workers 1, 0 ms). *)
type cache_stats = {
  kind : string;
  hits : int;
  misses : int;
  cells : int;
  build_ms : float;
  build_workers : int;
  build_seq_ms : float;
}

(** [cache_stats t] — counters are cumulative over the oracle's
    lifetime and safe to read while other domains query it. *)
val cache_stats : t -> cache_stats

(** [of_task_set ?pool ts] is the MT-Switch oracle: [step_cost j lo hi =
    |U_j(lo,hi)|].  Precomputes the per-task interval-union tables —
    in parallel on [pool] across tasks (and across [lo] rows for
    single-task sets, via {!Range_union.make}).  Without [pool], large
    builds (≥ ~64k cells) run on the shared {!Hr_util.Pool.default};
    small ones stay sequential.  The tables are elementwise identical
    either way. *)
val of_task_set : ?pool:Hr_util.Pool.t -> Task_set.t -> t

(** [of_single ?pool ~v trace] is the single-task switch oracle. *)
val of_single : ?pool:Hr_util.Pool.t -> v:int -> Trace.t -> t

(** [make ~m ~n ~v ~step_cost] builds a custom oracle (used by the DAG
    and General models). *)
val make : m:int -> n:int -> v:int array -> step_cost:(int -> int -> int -> int) -> t

(** [memoize t] caches [step_cost] results in a sharded lock-free table
    (fixed capacity, compare-and-set inserts, plain atomic reads) — the
    fallback cache for instances too large for {!precompute}.  Racing
    solver domains never serialize on a lock; when a shard's probe
    window is full, queries compute without caching, so memory stays
    bounded while the hot triples keep their slots.  Prefer
    {!precompute} whenever the dense table fits. *)
val memoize : t -> t

(** [precompute ?max_cells ?pool t] materializes every
    [step_cost j lo hi] into one flat dense array in O(m·n²) oracle
    calls.  Queries become lock-free O(1) array reads, safe to share
    across domains (used by {!Solver.race} and the parallel
    metaheuristics).  The independent (task, lo) rows build in parallel
    on [pool] — defaulting to the shared {!Hr_util.Pool.default} for
    tables of ≥ ~64k cells, sequential below — and the build records
    wall/sequential-equivalent times and worker count in
    {!cache_stats}.  When the table would exceed [max_cells] ints
    (default 16M) it falls back to {!memoize}.  Idempotent and free on
    an already-dense (or already-fallen-back) oracle — {!Problem.make}
    calls it once per instance and every registered solver then shares
    the same tables. *)
val precompute : ?max_cells:int -> ?pool:Hr_util.Pool.t -> t -> t

(** [full_cost t j] is [step_cost j 0 (n-1)]: the per-step cost of the
    never-hyperreconfigure hypercontext of task [j]. *)
val full_cost : t -> int -> int
