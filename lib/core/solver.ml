module Rng = Hr_util.Rng
module Par = Hr_util.Par
module Budget = Hr_util.Budget

type kind = Exact | Heuristic | Stochastic

type t = {
  name : string;
  kind : kind;
  doc : string;
  handles : Problem.t -> bool;
  run : budget:Budget.t -> rng:Rng.t -> Problem.t -> Solution.t;
}

exception Rejected of string

let () =
  Printexc.register_printer (function
    | Rejected msg -> Some (Printf.sprintf "Solver.Rejected(%s)" msg)
    | _ -> None)

let make ~name ~kind ~doc ~handles run = { name; kind; doc; handles; run }

let kind_name = function
  | Exact -> "exact"
  | Heuristic -> "heuristic"
  | Stochastic -> "stochastic"

let default_seed = 2004

let rng_for ~seed t = Rng.create (seed lxor Hashtbl.hash t.name)

let solve ?rng ?(seed = default_seed) ?(budget = Budget.unlimited) t problem =
  if not (t.handles problem) then
    raise
      (Rejected
         (Printf.sprintf "Solver.solve: %S does not handle this instance" t.name));
  let rng = match rng with Some rng -> rng | None -> rng_for ~seed t in
  let sol = t.run ~budget ~rng problem in
  if not (Problem.admissible problem sol.Solution.bp) then
    raise
      (Rejected
         (Printf.sprintf "Solver.solve: %S returned an inadmissible matrix" t.name));
  {
    sol with
    Solution.solver = t.name;
    cost = Problem.eval problem sol.Solution.bp;
    exact = sol.Solution.exact && not sol.Solution.cut_off;
  }

(* ------------------------------------------------------------------ *)
(* The execution harness: outcome containment + wall-clock reports.    *)

type outcome = Finished | Cut_off | Crashed of exn

type report = {
  solver : string;
  kind : kind;
  outcome : outcome;
  wall_ms : float;
  solution : Solution.t option;
}

let outcome_name = function
  | Finished -> "finished"
  | Cut_off -> "cut-off"
  | Crashed _ -> "crashed"

let solve_report ?rng ?seed ?(budget = Budget.unlimited) t problem =
  let t0 = Budget.now_ms () in
  let finish outcome solution =
    { solver = t.name; kind = t.kind; outcome; wall_ms = Budget.now_ms () -. t0; solution }
  in
  match solve ?rng ?seed ~budget t problem with
  | sol ->
      finish (if sol.Solution.cut_off then Cut_off else Finished) (Some sol)
  | exception e ->
      (* Everything — including a [Rejected] on an inapplicable
         instance or an inadmissible result — is contained as a crash
         report rather than silently dropped.  Capability filtering
         belongs before the race (see [run_all]). *)
      finish (Crashed e) None

let run_all ?domains ?(seed = default_seed) ?(budget = Budget.unlimited)
    solvers problem =
  let applicable = List.filter (fun s -> s.handles problem) solvers in
  Array.to_list
    (Par.map_array ?domains
       (fun s -> solve_report ~seed ~budget s problem)
       (Array.of_list applicable))

let solutions reports = List.filter_map (fun r -> r.solution) reports

let race_report ?domains ?seed ?budget solvers problem =
  let reports = run_all ?domains ?seed ?budget solvers problem in
  match solutions reports with
  | [] ->
      invalid_arg
        (Printf.sprintf
           "Solver.race: no applicable solver produced a solution%s"
           (match
              List.filter_map
                (function
                  | { outcome = Crashed e; solver; _ } ->
                      Some (Printf.sprintf "%s: %s" solver (Printexc.to_string e))
                  | _ -> None)
                reports
            with
           | [] -> ""
           | crashes -> " (" ^ String.concat "; " crashes ^ ")"))
  | sols -> (Solution.best sols, reports)

let race_all ?domains ?seed ?budget solvers problem =
  solutions (run_all ?domains ?seed ?budget solvers problem)

let race ?domains ?seed ?budget solvers problem =
  fst (race_report ?domains ?seed ?budget solvers problem)
