module Rng = Hr_util.Rng
module Par = Hr_util.Par

type kind = Exact | Heuristic | Stochastic

type t = {
  name : string;
  kind : kind;
  doc : string;
  handles : Problem.t -> bool;
  run : rng:Rng.t -> Problem.t -> Solution.t;
}

let make ~name ~kind ~doc ~handles run = { name; kind; doc; handles; run }

let kind_name = function
  | Exact -> "exact"
  | Heuristic -> "heuristic"
  | Stochastic -> "stochastic"

let default_seed = 2004

let rng_for ~seed t = Rng.create (seed lxor Hashtbl.hash t.name)

let solve ?rng ?(seed = default_seed) t problem =
  if not (t.handles problem) then
    invalid_arg
      (Printf.sprintf "Solver.solve: %S does not handle this instance" t.name);
  let rng = match rng with Some rng -> rng | None -> rng_for ~seed t in
  let sol = t.run ~rng problem in
  if not (Problem.admissible problem sol.Solution.bp) then
    invalid_arg
      (Printf.sprintf "Solver.solve: %S returned an inadmissible matrix" t.name);
  {
    sol with
    Solution.solver = t.name;
    cost = Problem.eval problem sol.Solution.bp;
  }

let race_all ?domains ?(seed = default_seed) solvers problem =
  let applicable = List.filter (fun s -> s.handles problem) solvers in
  let sols =
    Par.map_array ?domains
      (fun s ->
        match solve ~seed s problem with
        | sol -> Some sol
        | exception Invalid_argument _ -> None)
      (Array.of_list applicable)
  in
  List.filter_map Fun.id (Array.to_list sols)

let race ?domains ?seed solvers problem =
  match race_all ?domains ?seed solvers problem with
  | [] -> invalid_arg "Solver.race: no applicable solver produced a solution"
  | sols -> Solution.best sols
