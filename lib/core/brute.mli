(** Exhaustive solvers — ground truth for the test suite.

    The multi-task enumerator is registered in {!Solver_registry} as
    ["brute"]; new call sites should prefer the registry (see
    [docs/solvers.md]).

    These enumerate the full breakpoint search space and are only
    usable for tiny instances; the tests compare {!St_opt}, {!Mt_dp}
    and the metaheuristics against them. *)

(** [single ~v ~n ~step_cost] enumerates all 2^(n-1) single-task
    breakpoint patterns.  Raises [Invalid_argument] for [n > 20]. *)
val single : v:int -> n:int -> step_cost:(int -> int -> int) -> St_opt.result

(** [multi ?params oracle] enumerates all (2^(n-1))^m breakpoint
    matrices of a fully synchronized multi-task instance and returns a
    cheapest one with its cost.  Raises [Invalid_argument] when
    [(n-1)·m > 24]. *)
val multi : ?params:Sync_cost.params -> Interval_cost.t -> int * Breakpoints.t
