(** Exhaustive solvers — ground truth for the test suite.

    The multi-task enumerator is registered in {!Solver_registry} as
    ["brute"]; new call sites should prefer the registry (see
    [docs/solvers.md]).

    These enumerate the full breakpoint search space and are only
    usable for tiny instances; the tests compare {!St_opt}, {!Mt_dp}
    and the metaheuristics against them. *)

(** [single ~v ~n ~step_cost] enumerates all 2^(n-1) single-task
    breakpoint patterns.  Raises [Invalid_argument] for [n > 20]. *)
val single : v:int -> n:int -> step_cost:(int -> int -> int) -> St_opt.result

(** [multi ?params oracle] enumerates all (2^(n-1))^m breakpoint
    matrices of a fully synchronized multi-task instance and returns a
    cheapest one with its cost.  Raises [Invalid_argument] when
    [(n-1)·m > 24]. *)
val multi : ?params:Sync_cost.params -> Interval_cost.t -> int * Breakpoints.t

(** [bits p] is the size of the class-admissible enumeration space of
    [p] in bits: [(n-1)·m] for the partial/restricted classes, but only
    [n-1] for the all-task class, whose admissible matrices are exactly
    the uniform-column ones — one shared row decides the whole
    matrix. *)
val bits : Problem.t -> int

(** [feasible ?max_bits p] — can {!solve} enumerate [p]'s admissible
    space within [2^max_bits] (default 24) evaluations?  The single
    source of truth for "is brute-force ground truth available", used
    by the conformance harness and the tests instead of duplicating the
    size rule. *)
val feasible : ?max_bits:int -> Problem.t -> bool

(** [solve p] enumerates every class-admissible breakpoint matrix of
    [p] (uniform-column matrices only for the all-task class) and
    returns a cheapest one under {!Problem.eval} — so it is exact for
    {e every} synchronization mode and machine class, not just the
    fully synchronized one.  Raises [Invalid_argument] when
    [not (feasible p)]. *)
val solve : Problem.t -> int * Breakpoints.t
