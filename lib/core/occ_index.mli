(** Sublinear interval-union queries via per-switch occurrence lists.

    The dense {!Range_union} table answers |U(lo,hi)| in O(1) but costs
    n(n+1)/2 cells — at n = 10⁵ that is billions of cells, far past any
    memory budget.  This index stores, for each switch, the sorted list
    of {e segments} (maximal runs of identical requirement steps, see
    {!Trace.segments}) in which it occurs.  Then

    {v |U(lo,hi)| = #{ s : next_occ s lo <= hi } v}

    where [next_occ s lo] is switch [s]'s first occurrence at or after
    [lo] — one binary search per occurring switch, so a query is
    O(S log σ) for S occurring switches and σ segments.  Memory is
    O(total requirement entries) over the {e compressed} trace: no n²
    anywhere, and phase-structured traces (long dwells between
    reconfiguration bursts) compress 10–100x before the lists are even
    built.

    This is the "sparse" rung of the oracle ladder (docs/scaling.md);
    {!Interval_cost.of_task_set} selects it automatically when the
    dense tables would blow the byte budget. *)

type t

(** [of_trace trace] builds the index: run-length compression via
    {!Trace.segments}, then one pass distributing each segment's
    requirement into per-switch occurrence lists.  O(n + total
    requirement entries) time. *)
val of_trace : Trace.t -> t

(** [length t] is the trace length n in (uncompressed) steps. *)
val length : t -> int

(** [segments t] is the compressed length σ — the number of maximal
    equal-requirement runs. *)
val segments : t -> int

(** [size t lo hi] is |U(lo,hi)| for [0 ≤ lo ≤ hi < n] — elementwise
    identical to {!Range_union.size} on the same trace (property-tested
    across the conformance corpus).  O(S log σ); increments the query
    counter (thread-safe). *)
val size : t -> int -> int -> int

(** [union t lo hi] reconstructs the union bitset itself, in O(segments
    overlapping the range) bitset unions — for materializing the
    hypercontexts of a chosen plan. *)
val union : t -> int -> int -> Hr_util.Bitset.t

(** [queries t] — cumulative {!size} calls, safe to read while other
    domains query. *)
val queries : t -> int

(** [entries t] is the total stored occurrence-list length Σ_s |occ(s)|
    — the sparse analogue of a dense table's cell count. *)
val entries : t -> int

(** [bytes t] — estimated resident heap bytes of the index (arrays,
    occurrence lists, segment requirement bitsets). *)
val bytes : t -> int
