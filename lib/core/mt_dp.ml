type outcome = {
  cost : int;
  bp : Breakpoints.t;
  exact : bool;
  states_explored : int;
  truncations : int;
  cut_off : bool;
}

type state = {
  ends : int array;  (* committed block end per task *)
  costs : int array;  (* per-step cost of the committed block per task *)
  acc : int;  (* cost accumulated through the current step *)
  breaks : (int * int) list;  (* (task, step) hyperreconfigurations so far *)
}

let combine_hyper params vs =
  match params.Sync_cost.hyper with
  | Sync_cost.Task_parallel -> List.fold_left max 0 vs
  | Sync_cost.Task_sequential -> List.fold_left ( + ) 0 vs

let combine_reconf params pub costs =
  match params.Sync_cost.reconf with
  | Sync_cost.Task_parallel -> Array.fold_left max pub costs
  | Sync_cost.Task_sequential -> Array.fold_left ( + ) pub costs

(* Keep, per block-end vector, only the Pareto-optimal (costs, acc)
   states: with equal ends the future of a state depends only on its
   per-step costs, so componentwise domination is safe. *)
let pareto_filter states =
  let groups = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let key = Array.to_list s.ends in
      let prev = Option.value (Hashtbl.find_opt groups key) ~default:[] in
      Hashtbl.replace groups key (s :: prev))
    states;
  Hashtbl.fold
    (fun _ group acc ->
      (* Dedupe equal (costs, acc) pairs first so that strict-domination
         filtering below cannot drop two mutually equal states. *)
      let deduped =
        List.fold_left
          (fun kept a ->
            if List.exists (fun b -> b.acc = a.acc && b.costs = a.costs) kept then
              kept
            else a :: kept)
          [] group
      in
      let strictly_dominates b a =
        b.acc <= a.acc
        && Array.for_all2 ( <= ) b.costs a.costs
        && (b.acc < a.acc || b.costs <> a.costs)
      in
      let survivors =
        List.filter
          (fun a -> not (List.exists (fun b -> strictly_dominates b a) deduped))
          deduped
      in
      List.rev_append survivors acc)
    groups []

let solve ?(params = Sync_cost.default_params) ?upper_bound ?max_states
    ?(budget = Hr_util.Budget.unlimited) (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let sc = oracle.Interval_cost.step_cost and v = oracle.Interval_cost.v in
  let beam = max_states <> None in
  (* Exactness needs the full fan-out of n end choices per restarting
     task; refuse instances whose very first level would not fit. *)
  if not beam then begin
    let rec level0 j acc =
      if j >= m || acc > 2_000_000. then acc else level0 (j + 1) (acc *. float_of_int n)
    in
    if level0 0 1. > 2_000_000. then
      invalid_arg
        "Mt_dp.solve: instance too large for the exact DP (n^m initial states); \
         pass ~max_states for a beam search or use Mt_ga/Mt_anneal"
  end;
  (* suffix.(i) = Σ_{k=i}^{n-1} (reconf lower bound of step k): each step
     pays at least the combined per-requirement costs. *)
  let suffix = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    let step_lb =
      combine_reconf params params.Sync_cost.pub (Array.init m (fun j -> sc j i i))
    in
    suffix.(i) <- suffix.(i + 1) + step_lb
  done;
  let explored = ref 0 in
  let truncated = ref false in
  let truncations = ref 0 in
  let cut = ref false in
  let ub = ref (Option.value upper_bound ~default:max_int) in
  (* End choices for a task restarting at step i.  Exact mode: all of
     them.  Beam mode: the ends where the block cost jumps to a new
     value (the distinct-hypercontext frontier) capped at 32 — the beam
     is heuristic anyway and this keeps the fan-out bounded. *)
  let end_candidates j i =
    if not beam then List.init (n - i) (fun k -> i + k)
    else begin
      let jumps = ref [ n - 1 ] in
      let last = ref (-1) in
      for hi = i to n - 1 do
        let c = sc j i hi in
        if c <> !last then begin
          last := c;
          if hi <> n - 1 then jumps := hi :: !jumps
        end
      done;
      let all = List.sort_uniq compare !jumps in
      let len = List.length all in
      if len <= 32 then all
      else List.filteri (fun k _ -> k mod ((len / 32) + 1) = 0 || k = len - 1) all
    end
  in
  (* Expand a state across step [i]: tasks whose block ended at [i-1]
     (for the initial level: all tasks, signalled by ends.(j) = -1)
     restart with a new block end, then the step's costs are charged. *)
  let expand_state i s =
    let restarting = List.filter (fun j -> s.ends.(j) = i - 1) (List.init m Fun.id) in
    let hyper = combine_hyper params (List.map (fun j -> v.(j)) restarting) in
    let out = ref [] in
    let rec go rs ends costs breaks =
      match rs with
      | [] ->
          let reconf = combine_reconf params params.Sync_cost.pub costs in
          let acc = s.acc + hyper + reconf in
          if acc + suffix.(i + 1) <= !ub then
            out := { ends; costs; acc; breaks } :: !out
      | j :: rest ->
          List.iter
            (fun hi ->
              let ends' = Array.copy ends and costs' = Array.copy costs in
              ends'.(j) <- hi;
              costs'.(j) <- sc j i hi;
              go rest ends' costs' ((j, i) :: breaks))
            (end_candidates j i)
    in
    go restarting s.ends s.costs s.breaks;
    !out
  in
  let prune level =
    let level = pareto_filter level in
    explored := !explored + List.length level;
    match max_states with
    | Some cap when List.length level > cap ->
        truncated := true;
        incr truncations;
        let scored = List.map (fun s -> (s.acc + suffix.(0), s)) level in
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) scored in
        List.filteri (fun i _ -> i < cap) sorted |> List.map snd
    | _ -> level
  in
  let virtual_start =
    { ends = Array.make m (-1); costs = Array.make m 0; acc = 0; breaks = [] }
  in
  (* Budget cut-off: finish a state deterministically by giving every
     task that restarts from step [i] onwards the run-to-the-end block.
     O(n·m), always admissible, never exact. *)
  let rec finish_cheaply i s =
    if i >= n then s
    else begin
      let restarting =
        List.filter (fun j -> s.ends.(j) = i - 1) (List.init m Fun.id)
      in
      let hyper = combine_hyper params (List.map (fun j -> v.(j)) restarting) in
      let ends = Array.copy s.ends and costs = Array.copy s.costs in
      let breaks = ref s.breaks in
      List.iter
        (fun j ->
          ends.(j) <- n - 1;
          costs.(j) <- sc j i (n - 1);
          breaks := (j, i) :: !breaks)
        restarting;
      let reconf = combine_reconf params params.Sync_cost.pub costs in
      finish_cheaply (i + 1)
        { ends; costs; acc = s.acc + hyper + reconf; breaks = !breaks }
    end
  in
  let rec advance i level =
    if i >= n then level
    else if Hr_util.Budget.exhausted budget then begin
      (* Polled once per DP level.  Collapse the frontier to its most
         promising state and complete it cheaply: a best-so-far plan in
         O(n·m) instead of the remaining exponential expansion. *)
      cut := true;
      match level with
      | [] -> []
      | s0 :: rest ->
          let best =
            List.fold_left (fun b s -> if s.acc < b.acc then s else b) s0 rest
          in
          [ finish_cheaply i best ]
    end
    else
      let level = prune (List.concat_map (expand_state i) level) in
      advance (i + 1) level
  in
  let final = advance 0 [ virtual_start ] in
  match final with
  | [] ->
      (* Can only happen when the given upper bound was unachievable. *)
      invalid_arg "Mt_dp.solve: upper_bound below the optimum"
  | s0 :: rest ->
      let best = List.fold_left (fun b s -> if s.acc < b.acc then s else b) s0 rest in
      let rows = Array.make m [] in
      List.iter (fun (j, i) -> rows.(j) <- i :: rows.(j)) best.breaks;
      {
        cost = best.acc;
        bp = Breakpoints.of_rows ~m ~n rows;
        (* Beam mode also restricts the per-task block-end fan-out (see
           end_candidates), so it must never claim exactness — even on
           runs where the frontier itself was not truncated.  A budget
           cut-off likewise forfeits the certificate. *)
        exact = (not beam) && (not !truncated) && not !cut;
        states_explored = !explored;
        truncations = !truncations;
        cut_off = !cut;
      }
