type outcome = {
  cost : int;
  bp : Breakpoints.t;
  exact : bool;
  states_explored : int;
  truncations : int;
  cut_off : bool;
}

(* The flat-state engine.

   A DP level is a structure-of-arrays buffer: state [s] keeps its
   per-task committed block ends and per-step costs in the slices
   [s*m .. s*m + m - 1] of two flat int arrays, its accumulated cost in
   [acc.(s)] and its hyperreconfiguration history in [breaks.(s)]
   (an immutable list, so levels share tails).  Dominated states are
   tombstoned via [alive] instead of being moved, which keeps the
   per-key bucket indices stable. *)
type level = {
  mutable ends : int array;
  mutable costs : int array;
  mutable acc : int array;
  mutable breaks : (int * int) list array;
  mutable alive : bool array;
  mutable len : int;
}

let make_level m cap =
  {
    ends = Array.make (cap * m) 0;
    costs = Array.make (cap * m) 0;
    acc = Array.make cap 0;
    breaks = Array.make cap [];
    alive = Array.make cap false;
    len = 0;
  }

let grow_level m lv =
  let cap = Array.length lv.acc in
  let cap' = 2 * cap in
  let e = Array.make (cap' * m) 0 in
  Array.blit lv.ends 0 e 0 (cap * m);
  lv.ends <- e;
  let c = Array.make (cap' * m) 0 in
  Array.blit lv.costs 0 c 0 (cap * m);
  lv.costs <- c;
  let a = Array.make cap' 0 in
  Array.blit lv.acc 0 a 0 cap;
  lv.acc <- a;
  let b = Array.make cap' [] in
  Array.blit lv.breaks 0 b 0 cap;
  lv.breaks <- b;
  let al = Array.make cap' false in
  Array.blit lv.alive 0 al 0 cap;
  lv.alive <- al

let push_state m lv ~ends ~costs ~acc ~breaks =
  if lv.len >= Array.length lv.acc then grow_level m lv;
  let s = lv.len in
  Array.blit ends 0 lv.ends (s * m) m;
  Array.blit costs 0 lv.costs (s * m) m;
  lv.acc.(s) <- acc;
  lv.breaks.(s) <- breaks;
  lv.alive.(s) <- true;
  lv.len <- s + 1;
  s

(* The cooperative budget is polled every [poll_mask + 1] emitted
   states, so even one huge level cannot overshoot a deadline by more
   than a few thousand expansions. *)
let poll_mask = 4095

exception Cut

let solve ?(params = Sync_cost.default_params) ?upper_bound ?max_states
    ?(budget = Hr_util.Budget.unlimited) (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let sc = oracle.Interval_cost.step_cost and v = oracle.Interval_cost.v in
  let beam = max_states <> None in
  (* Exactness needs the full fan-out of n end choices per restarting
     task; refuse instances whose very first level would not fit. *)
  if not beam then begin
    let rec level0 j acc =
      if j >= m || acc > 2_000_000. then acc else level0 (j + 1) (acc *. float_of_int n)
    in
    if level0 0 1. > 2_000_000. then
      invalid_arg
        "Mt_dp.solve: instance too large for the exact DP (n^m initial states); \
         pass ~max_states for a beam search or use Mt_ga/Mt_anneal"
  end;
  let hyper_par = params.Sync_cost.hyper = Sync_cost.Task_parallel in
  let reconf_par = params.Sync_cost.reconf = Sync_cost.Task_parallel in
  let pub = params.Sync_cost.pub in
  let combine_reconf costs =
    if reconf_par then begin
      let r = ref pub in
      for t = 0 to m - 1 do
        if costs.(t) > !r then r := costs.(t)
      done;
      !r
    end
    else begin
      let r = ref pub in
      for t = 0 to m - 1 do
        r := !r + costs.(t)
      done;
      !r
    end
  in
  (* suffix.(i) = Σ_{k=i}^{n-1} (reconf lower bound of step k): each step
     pays at least the combined per-requirement costs. *)
  let suffix = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) + combine_reconf (Array.init m (fun j -> sc j i i))
  done;
  let explored = ref 0 in
  let truncated = ref false in
  let truncations = ref 0 in
  let cut = ref false in
  let ub = Option.value upper_bound ~default:max_int in
  (* ---- packed state keys ----
     A state's future depends only on its block-end vector, so Pareto
     buckets are keyed by it.  Each end is in [-1 .. n-1]; shifted by
     one it fits [key_bits] bits, and the whole vector packs into one
     int whenever m·key_bits ≤ 62 — always true on the exact path
     (n^m ≤ 2·10⁶ bounds m·log₂ n).  Beam instances above the packing
     limit fall back to a string key. *)
  let key_bits =
    let rec bits x = if x = 0 then 0 else 1 + bits (x lsr 1) in
    max 1 (bits n)
  in
  let packable = m * key_bits <= 62 in
  let ibuckets : (int, int list ref) Hashtbl.t =
    Hashtbl.create (if packable then 1024 else 1)
  in
  let sbuckets : (string, int list ref) Hashtbl.t =
    Hashtbl.create (if packable then 1 else 1024)
  in
  let bucket_of ends =
    if packable then begin
      let k = ref 0 in
      for j = 0 to m - 1 do
        k := (!k lsl key_bits) lor (ends.(j) + 1)
      done;
      match Hashtbl.find_opt ibuckets !k with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add ibuckets !k b;
          b
    end
    else begin
      let bytes = Bytes.create (m * 8) in
      for j = 0 to m - 1 do
        Bytes.set_int64_le bytes (j * 8) (Int64.of_int ends.(j))
      done;
      let k = Bytes.unsafe_to_string bytes in
      match Hashtbl.find_opt sbuckets k with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add sbuckets k b;
          b
    end
  in
  let reset_buckets () =
    if packable then Hashtbl.reset ibuckets else Hashtbl.reset sbuckets
  in
  (* Incremental Pareto maintenance: a candidate is inserted only if no
     bucket member weakly dominates it (covers exact duplicates too),
     and evicts the members it weakly dominates — the surviving set is
     exactly the Pareto filter of the whole level. *)
  let live = ref 0 in
  let insert next sc_ends sc_costs acc_v brk =
    let bucket = bucket_of sc_ends in
    let dominated =
      List.exists
        (fun s ->
          next.acc.(s) <= acc_v
          &&
          let base = s * m in
          let rec le t = t >= m || (next.costs.(base + t) <= sc_costs.(t) && le (t + 1)) in
          le 0)
        !bucket
    in
    if not dominated then begin
      bucket :=
        List.filter
          (fun s ->
            let dom =
              acc_v <= next.acc.(s)
              &&
              let base = s * m in
              let rec le t =
                t >= m || (sc_costs.(t) <= next.costs.(base + t) && le (t + 1))
              in
              le 0
            in
            if dom then begin
              next.alive.(s) <- false;
              decr live
            end;
            not dom)
          !bucket;
      let s = push_state m next ~ends:sc_ends ~costs:sc_costs ~acc:acc_v ~breaks:brk in
      bucket := s :: !bucket;
      incr live
    end
  in
  (* End choices for a task restarting at step i, memoized per
     (task, step) — every state of a level reuses the same array.
     Exact mode: all of them (task-independent).  Beam mode: the ends
     where the block cost jumps to a new value (the
     distinct-hypercontext frontier) capped at 32 — the beam is
     heuristic anyway and this keeps the fan-out bounded. *)
  let exact_cands : int array array = if beam then [||] else Array.make n [||] in
  let beam_cands : int array array = if beam then Array.make (m * n) [||] else [||] in
  let beam_jumps j i =
    let jumps = ref [ n - 1 ] in
    let last = ref (-1) in
    for hi = i to n - 1 do
      let c = sc j i hi in
      if c <> !last then begin
        last := c;
        if hi <> n - 1 then jumps := hi :: !jumps
      end
    done;
    let all = List.sort_uniq compare !jumps in
    let len = List.length all in
    if len <= 32 then all
    else List.filteri (fun k _ -> k mod ((len / 32) + 1) = 0 || k = len - 1) all
  in
  let candidates j i =
    if not beam then begin
      let c = exact_cands.(i) in
      if Array.length c > 0 then c
      else begin
        let c = Array.init (n - i) (fun k -> i + k) in
        exact_cands.(i) <- c;
        c
      end
    end
    else begin
      let idx = (j * n) + i in
      let c = beam_cands.(idx) in
      if Array.length c > 0 then c
      else begin
        let c = Array.of_list (beam_jumps j i) in
        beam_cands.(idx) <- c;
        c
      end
    end
  in
  (* Expand a state across step [i]: tasks whose block ended at [i-1]
     (for the initial level: all tasks, signalled by end = -1) restart
     with a new block end, then the step's costs are charged.  The
     odometer walks the candidate cross-product on two scratch arrays;
     states are copied only when they survive dominance insertion. *)
  let sc_ends = Array.make m 0 and sc_costs = Array.make m 0 in
  let restart_buf = Array.make m 0 in
  let emitted = ref 0 in
  let expand cur si i next =
    let base = si * m in
    Array.blit cur.ends base sc_ends 0 m;
    Array.blit cur.costs base sc_costs 0 m;
    let nrestart = ref 0 in
    for j = 0 to m - 1 do
      if sc_ends.(j) = i - 1 then begin
        restart_buf.(!nrestart) <- j;
        incr nrestart
      end
    done;
    let nrestart = !nrestart in
    let hyper = ref 0 in
    for r = 0 to nrestart - 1 do
      let vj = v.(restart_buf.(r)) in
      if hyper_par then begin
        if vj > !hyper then hyper := vj
      end
      else hyper := !hyper + vj
    done;
    let brk = ref cur.breaks.(si) in
    for r = 0 to nrestart - 1 do
      brk := (restart_buf.(r), i) :: !brk
    done;
    let brk = !brk in
    let acc0 = cur.acc.(si) + !hyper in
    let bound = suffix.(i + 1) in
    let rec go r =
      if r = nrestart then begin
        incr emitted;
        if !emitted land poll_mask = 0 && Hr_util.Budget.exhausted budget then
          raise Cut;
        let acc_v = acc0 + combine_reconf sc_costs in
        if acc_v + bound <= ub then insert next sc_ends sc_costs acc_v brk
      end
      else begin
        let j = restart_buf.(r) in
        let cands = candidates j i in
        for ci = 0 to Array.length cands - 1 do
          let hi = cands.(ci) in
          sc_ends.(j) <- hi;
          sc_costs.(j) <- sc j i hi;
          go (r + 1)
        done
      end
    in
    go 0
  in
  (* Beam truncation: keep the cap most promising live states (lowest
     accumulated cost, insertion order on ties) and tombstone the
     rest. *)
  let truncate next =
    match max_states with
    | Some cap when !live > cap ->
        truncated := true;
        incr truncations;
        let order = Array.make !live 0 in
        let k = ref 0 in
        for s = 0 to next.len - 1 do
          if next.alive.(s) then begin
            order.(!k) <- s;
            incr k
          end
        done;
        Array.sort
          (fun a b ->
            let c = compare next.acc.(a) next.acc.(b) in
            if c <> 0 then c else compare a b)
          order;
        for k = cap to !live - 1 do
          next.alive.(order.(k)) <- false
        done;
        live := cap
    | _ -> ()
  in
  (* Budget cut-off: finish a state deterministically by giving every
     task that restarts from step [i] onwards the run-to-the-end block.
     O(n·m), always admissible, never exact. *)
  let finish_cheaply i0 ends costs acc0 breaks0 =
    let acc = ref acc0 and breaks = ref breaks0 in
    for i = i0 to n - 1 do
      let hyper = ref 0 in
      for j = 0 to m - 1 do
        if ends.(j) = i - 1 then begin
          (if hyper_par then begin
             if v.(j) > !hyper then hyper := v.(j)
           end
           else hyper := !hyper + v.(j));
          ends.(j) <- n - 1;
          costs.(j) <- sc j i (n - 1);
          breaks := (j, i) :: !breaks
        end
      done;
      acc := !acc + !hyper + combine_reconf costs
    done;
    (!acc, !breaks)
  in
  let best_live cur =
    let best = ref (-1) in
    for s = 0 to cur.len - 1 do
      if cur.alive.(s) && (!best < 0 || cur.acc.(s) < cur.acc.(!best)) then best := s
    done;
    !best
  in
  (* Collapse the frontier to its most promising state and complete it
     cheaply: a best-so-far plan in O(n·m) instead of the remaining
     exponential expansion. *)
  let collapse cur i =
    cut := true;
    let b = best_live cur in
    if b < 0 then None
    else
      let ends = Array.sub cur.ends (b * m) m in
      let costs = Array.sub cur.costs (b * m) m in
      Some (finish_cheaply i ends costs cur.acc.(b) cur.breaks.(b))
  in
  let rec advance i cur next =
    if i >= n then begin
      let b = best_live cur in
      if b < 0 then None else Some (cur.acc.(b), cur.breaks.(b))
    end
    else if Hr_util.Budget.exhausted budget then collapse cur i
    else begin
      next.len <- 0;
      reset_buckets ();
      live := 0;
      match
        for si = 0 to cur.len - 1 do
          if cur.alive.(si) then expand cur si i next
        done
      with
      | () ->
          explored := !explored + !live;
          truncate next;
          advance (i + 1) next cur
      | exception Cut -> collapse cur i
    end
  in
  let cur = make_level m 1024 and next = make_level m 1024 in
  for j = 0 to m - 1 do
    sc_ends.(j) <- -1;
    sc_costs.(j) <- 0
  done;
  ignore (push_state m cur ~ends:sc_ends ~costs:sc_costs ~acc:0 ~breaks:[]);
  match advance 0 cur next with
  | None ->
      (* Can only happen when the given upper bound was unachievable. *)
      invalid_arg "Mt_dp.solve: upper_bound below the optimum"
  | Some (cost, breaks) ->
      let rows = Array.make m [] in
      List.iter (fun (j, i) -> rows.(j) <- i :: rows.(j)) breaks;
      {
        cost;
        bp = Breakpoints.of_rows ~m ~n rows;
        (* Beam mode also restricts the per-task block-end fan-out (see
           [candidates]), so it must never claim exactness — even on
           runs where the frontier itself was not truncated.  A budget
           cut-off likewise forfeits the certificate. *)
        exact = (not beam) && (not !truncated) && not !cut;
        states_explored = !explored;
        truncations = !truncations;
        cut_off = !cut;
      }
