module Anneal = Hr_evolve.Anneal

type result = { cost : int; bp : Breakpoints.t; evaluations : int; cut_off : bool }

let solve ?params ?config ?init ?(budget = Hr_util.Budget.unlimited) ~rng oracle =
  let oracle = Interval_cost.precompute oracle in
  let init =
    match init with Some bp -> bp | None -> (Mt_greedy.best ?params oracle).Mt_greedy.bp
  in
  let problem =
    {
      Anneal.cost = (fun g -> Sync_cost.eval ?params oracle (Breakpoints.of_matrix g));
      neighbor = Mt_moves.mutate;
    }
  in
  let r = Anneal.run ?config ~budget rng problem ~init:(Breakpoints.matrix init) in
  {
    cost = r.Anneal.best_cost;
    bp = Breakpoints.of_matrix r.Anneal.best;
    evaluations = r.Anneal.evaluations;
    cut_off = r.Anneal.cut_off;
  }
