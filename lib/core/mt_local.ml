module Hillclimb = Hr_evolve.Hillclimb

type result = {
  cost : int;
  bp : Breakpoints.t;
  evaluations : int;
  rounds : int;
  cut_off : bool;
}

let solve ?params ?init ?max_rounds ?(budget = Hr_util.Budget.unlimited) oracle =
  let oracle = Interval_cost.precompute oracle in
  let init =
    match init with Some bp -> bp | None -> (Mt_greedy.best ?params oracle).Mt_greedy.bp
  in
  let problem =
    {
      Hillclimb.cost = (fun g -> Sync_cost.eval ?params oracle (Breakpoints.of_matrix g));
      neighbors = Mt_moves.neighbors;
    }
  in
  let r = Hillclimb.run ?max_rounds ~budget problem ~init:(Breakpoints.matrix init) in
  {
    cost = r.Hillclimb.best_cost;
    bp = Breakpoints.of_matrix r.Hillclimb.best;
    evaluations = r.Hillclimb.evaluations;
    rounds = r.Hillclimb.rounds;
    cut_off = r.Hillclimb.cut_off;
  }
