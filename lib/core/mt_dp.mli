(** Exact dynamic program for the fully synchronized multi-task problem
    (the algorithm behind the paper's Theorem 1).

    Registered in {!Solver_registry} as ["mt-dp"] (exact) and
    ["mt-beam"] (beam search); new call sites should prefer the
    registry (see [docs/solvers.md]).

    States walk the steps left to right.  A task's hypercontext is
    committed at its hyperreconfiguration step together with the block
    it will cover (w.l.o.g. the block's minimal hypercontext — the cost
    terms are monotone), so a state at step [i] is, per task, the pair
    (per-step cost of the committed block, block end).  Transitions
    happen exactly at block ends.  Two prunings keep the frontier
    small without losing exactness:

    - {b Pareto dominance}: among states with identical block-end
      vectors (identical future option sets), a state is dropped when
      another has component-wise ≤ per-step costs and ≤ accumulated
      cost;
    - {b lower-bound pruning}: a state is dropped when its accumulated
      cost plus Σ_k max_j step_cost(j,k,k) over the remaining steps
      exceeds a known upper bound (seeded from the heuristics).

    Worst-case complexity is O(n^m · 2^m · n) states×transitions —
    polynomial for fixed m, matching the paper's claim — so the solver
    is meant for small instances and for certifying the metaheuristics;
    with [max_states] set it degrades gracefully into an inadmissible
    beam search (reported via [exact = false]).

    {b Representation.}  The engine stores each DP level as flat
    struct-of-arrays buffers ([ends] / [costs] packed [m] entries per
    state, plus accumulated cost, breaks history, and a liveness
    tombstone), reused across levels.  Dominance buckets are keyed by
    the block-end vector packed into a single [int] when
    [m · ⌈log₂ n⌉ ≤ 62] bits — always the case under the exact-mode
    n^m ≤ 2·10⁶ guard — and fall back to a byte-string key beyond the
    packing limit (reachable only in beam mode).  Pareto filtering is
    incremental: each candidate is checked against its bucket on
    insertion and evicts the members it dominates, replacing the old
    per-level group-then-scan pass. *)

type outcome = {
  cost : int;
  bp : Breakpoints.t;
  exact : bool;
      (** [false] whenever [max_states] was given (the beam restricts
          both the frontier and the block-end fan-out, so a beam run is
          never a certificate even when nothing was truncated) or the
          budget cut the run off *)
  states_explored : int;
  truncations : int;
      (** number of DP levels whose frontier was cut to [max_states] —
          the beam-pressure telemetry counter (0 in exact mode) *)
  cut_off : bool;  (** the budget expired before the DP completed *)
}

(** [solve ?params ?upper_bound ?max_states ?budget oracle] minimizes
    [Sync_cost.eval ?params].  [upper_bound] (an {e achievable} cost)
    prunes; pass a heuristic cost to speed the search up.
    [max_states] bounds the per-step frontier (default: unbounded →
    exact).  In beam mode the per-task block-end fan-out is also
    restricted to the cost-jump frontier, so large instances stay
    tractable at the price of exactness.  The [budget] (default
    {!Hr_util.Budget.unlimited}) is polled at every DP level and every
    4096 states emitted within a level — a deadline cuts even a single
    oversized expansion off promptly; on
    exhaustion the most promising frontier state is completed
    deterministically in O(n·m) (remaining tasks run to the end) and
    returned with [cut_off = true], [exact = false].  Exact mode raises
    [Invalid_argument] when the initial level (n^m states) would
    exceed two million — use the beam or a metaheuristic there. *)
val solve :
  ?params:Sync_cost.params ->
  ?upper_bound:int ->
  ?max_states:int ->
  ?budget:Hr_util.Budget.t ->
  Interval_cost.t ->
  outcome
