let single ~v ~n ~step_cost =
  if n < 1 then invalid_arg "Brute.single: n must be >= 1";
  if n > 20 then invalid_arg "Brute.single: instance too large to enumerate";
  let best_cost = ref max_int and best_breaks = ref [ 0 ] in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let breaks =
      0 :: List.filter_map (fun i -> if mask land (1 lsl (i - 1)) <> 0 then Some i else None)
             (List.init (n - 1) (fun k -> k + 1))
    in
    let cost = St_opt.cost_of_breaks ~v ~n ~step_cost breaks in
    if cost < !best_cost then begin
      best_cost := cost;
      best_breaks := breaks
    end
  done;
  { St_opt.cost = !best_cost; breaks = !best_breaks }

(* The enumeration-space size in bits, machine-class aware: the
   all-task class admits only uniform-column matrices, so one shared
   row of n-1 free bits covers the whole space however many tasks the
   instance has. *)
let bits p =
  let m = Problem.m p and n = Problem.n p in
  match p.Problem.machine_class with
  | Problem.All_task -> n - 1
  | Problem.Partial | Problem.Restricted -> (n - 1) * m

let default_max_bits = 24

let feasible ?(max_bits = default_max_bits) p = bits p <= max_bits

let solve p =
  let m = Problem.m p and n = Problem.n p in
  let free = bits p in
  if free > default_max_bits then
    invalid_arg "Brute.solve: instance too large to enumerate";
  let all_task = p.Problem.machine_class = Problem.All_task in
  let best_cost = ref max_int in
  let best = ref (Breakpoints.create ~m ~n) in
  for mask = 0 to (1 lsl free) - 1 do
    let raw =
      if all_task then
        let row = Array.init n (fun i -> i = 0 || mask land (1 lsl (i - 1)) <> 0) in
        Array.init m (fun _ -> Array.copy row)
      else
        Array.init m (fun j ->
            Array.init n (fun i ->
                i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
    in
    let bp = Breakpoints.of_matrix raw in
    let cost = Problem.eval p bp in
    if cost < !best_cost then begin
      best_cost := cost;
      best := bp
    end
  done;
  (!best_cost, !best)

let multi ?params (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let bits = (n - 1) * m in
  if bits > 24 then invalid_arg "Brute.multi: instance too large to enumerate";
  let best_cost = ref max_int in
  let best = ref (Breakpoints.create ~m ~n) in
  for mask = 0 to (1 lsl bits) - 1 do
    let raw =
      Array.init m (fun j ->
          Array.init n (fun i ->
              i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
    in
    let bp = Breakpoints.of_matrix raw in
    let cost = Sync_cost.eval ?params oracle bp in
    if cost < !best_cost then begin
      best_cost := cost;
      best := bp
    end
  done;
  (!best_cost, !best)
