(** Online hyperreconfiguration policies.

    The paper notes that "the actual demand of a computation during
    runtime might depend on the data and cannot be determined exactly in
    advance" — in that regime the planner sees context requirements one
    at a time and must decide on the spot whether (and into what) to
    hyperreconfigure.  This module implements classic online policies
    for the single-task switch model and measures their empirical
    competitive ratio against the offline optimum ({!St_opt}):

    - {!eager}: hyperreconfigure every step to exactly the current
      requirement — minimal per-step cost, maximal hyperreconfiguration
      overhead;
    - {!lazy_full}: hyperreconfigure once to the full universe — no
      adaptation at all;
    - {!rent_or_buy}: keep the current hypercontext and accumulate the
      {e waste} (per-step cost above the current requirement's own
      size); once the waste since the last shed exceeds [v],
      hyperreconfigure down to the current requirement (ski-rental
      reasoning — never keep paying much more than a switch would have
      cost).  Forced switches grow the hypercontext by union but keep
      feeding the waste meter with the union's surplus, shedding to
      exactly the requirement once it trips — a forced switch pays [v]
      regardless, so the shed is free;
    - {!growing}: grow the hypercontext by union whenever a requirement
      escapes it; shrink back to the current requirement when the
      hypercontext exceeds [reset_factor] × the running mean
      requirement size.

    Any policy {e must} hyperreconfigure when the next requirement is
    not contained in the current hypercontext (the machine cannot
    realize the context otherwise); the driver enforces this. *)

type decision = Keep | Switch_to of Hypercontext.t

(** One run's worth of policy state: [start] builds the first
    hypercontext from the first requirement; [step] sees the current
    hypercontext and the requirement that must hold {e now}.  Policies
    may close over mutable state — {!policy} provides a fresh instance
    per run. *)
type instance = {
  start : Hr_util.Bitset.t -> Hypercontext.t;
  step : Hypercontext.t -> Hr_util.Bitset.t -> decision;
}

type policy = { name : string; fresh : unit -> instance }

(** The policies described above. *)
val eager : policy

val lazy_full : universe:int -> policy
val rent_or_buy : v:int -> policy
val growing : ?reset_factor:float -> unit -> policy

(** [run policy ~v trace] drives a fresh instance over the trace and
    returns (total cost, number of hyperreconfigurations).  Cost model:
    [v] per hyperreconfiguration (including the initial one) plus the
    in-force hypercontext size per step.  Raises [Invalid_argument]
    when the policy returns a hypercontext that does not satisfy the
    pending requirement. *)
val run : policy -> v:int -> Trace.t -> int * int

(** [competitive_ratio policy ~v trace] is
    [online cost / offline optimum]. *)
val competitive_ratio : policy -> v:int -> Trace.t -> float

(** [all ~v ~universe] is the standard policy portfolio. *)
val all : v:int -> universe:int -> policy list
