module Ga = Hr_evolve.Ga
module Rng = Hr_util.Rng

type result = {
  cost : int;
  bp : Breakpoints.t;
  evaluations : int;
  history : (int * int) list;
  cut_off : bool;
}

let solve ?params ?(config = Ga.default_config) ?(seeds = [])
    ?(budget = Hr_util.Budget.unlimited) ~rng oracle =
  let oracle = Interval_cost.precompute oracle in
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let cost g = Sync_cost.eval ?params oracle (Breakpoints.of_matrix g) in
  let problem =
    {
      Ga.random =
        (fun rng ->
          let density = Rng.pick rng [| 0.02; 0.05; 0.1; 0.2; 0.4 |] in
          Mt_moves.random rng ~m ~n ~density);
      cost;
      crossover = Mt_moves.crossover;
      mutate = Mt_moves.mutate;
    }
  in
  let heuristic_seeds =
    List.map (fun e -> Breakpoints.matrix e.Mt_greedy.bp) (Mt_greedy.portfolio ?params oracle)
  in
  let seeds = List.map Breakpoints.matrix seeds @ heuristic_seeds in
  let r = Ga.run ~config ~seeds ~budget rng problem in
  {
    cost = r.Ga.best_cost;
    bp = Breakpoints.of_matrix r.Ga.best;
    evaluations = r.Ga.evaluations;
    history = r.Ga.history;
    cut_off = r.Ga.cut_off;
  }
