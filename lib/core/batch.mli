(** Batched solving: many instances, one pool, one deadline.

    The serving-side counterpart of {!Solver.race}: take a list of
    {!request}s, solve each with a (restrictable) solver race on the
    shared persistent {!Hr_util.Pool}, and return one {!response} per
    request {e in request order} — errors contained per request as
    structured results, never as process death.

    {b Layering.}  A request carries a thunk building its
    {!Problem.t}, not a [Hr_check.Case.t] — [hr_core] sits below
    [hr_check] in the library graph.  The case-level wiring (parsing
    [hyperreconf.case/1] documents into requests) lives in
    [bin/hrserve.ml] and the conformance harness; both funnel through
    this module.

    {b Oracle sharing.}  Requests may carry a dedup [key] (the serving
    loop uses the case's canonical JSON).  Requests with equal keys
    share one problem build — and therefore one
    {!Interval_cost.precompute} table — instead of rebuilding the dense
    oracle per request.

    {b Budget carving.}  One batch-global deadline is carved into
    per-request cooperative budgets: when a request starts, it receives
    [workers/left] of the remaining global time (its fair share given
    the requests still queued), capped by the global deadline
    ({!Hr_util.Budget.earliest}).  With no deadline every request runs
    unlimited — the bit-for-bit deterministic regime ({!Solver.race}'s
    determinism contract carries over unchanged).

    {b Determinism.}  Responses are positionally deterministic (the
    pool's map is elementwise), and under an unlimited budget each
    response's solution is bit-identical to the sequential
    [Solver.race_report ~seed] on the same instance. *)

type request = {
  id : string;  (** echoed back verbatim in the response *)
  key : string option;  (** dedup key for sharing problem builds *)
  budget : Hr_util.Budget.t option;
      (** per-request deadline, layered under the batch's fair-share
          carve: the request finishes by whichever expires first *)
  build : unit -> Problem.t;
      (** may raise; contained as a per-request error response *)
}

(** [request ?key ?budget ~id build]. *)
val request :
  ?key:string -> ?budget:Hr_util.Budget.t -> id:string -> (unit -> Problem.t) -> request

(** A successfully solved request. *)
type solved = {
  solution : Solution.t;  (** the race winner *)
  reports : Solver.report list;  (** one per contestant, {!Solver.run_all} order *)
  m : int;
  n : int;
}

type response = {
  id : string;
  outcome : (solved, string) result;
  wall_ms : float;  (** this request's build + race wall clock *)
}

(** A completed batch: the input to {!to_json} and the bench. *)
type t = {
  responses : response list;  (** in request order *)
  total_ms : float;
  workers : int;
  deadline_ms : int option;
  shared_builds : int;  (** requests served from the key-dedup cache *)
}

(** ["hyperreconf.result/1"] / ["hyperreconf.batch/1"] — bump on
    breaking changes to the corresponding document. *)
val result_schema_version : string

val batch_schema_version : string

(** The key-dedup problem store {!run} shares builds through.  By
    default each run creates a private one; a caller can instead hold
    one across runs (hrserve keeps a process-wide cache) so later
    batches reuse earlier batches' precomputed oracles — in-process
    reuse keyed on the same structural identity the persistent
    {!Table_cache} uses on disk.

    The store is a {e byte-budgeted LRU}: each resident problem is
    charged its dense-table residency
    ({!Interval_cost.cache_stats}[.bytes_resident], floored at 1 KiB),
    and inserts past [max_bytes] evict least-recently-used entries —
    the entry being inserted itself is never evicted, so one oversized
    problem still caches.  Without [max_bytes] the store is unbounded
    (the historical behaviour).  Thread-safe. *)
type build_cache

(** [build_cache ?max_bytes ()] is a fresh empty store holding at most
    [max_bytes] of dense tables (unbounded when omitted). *)
val build_cache : ?max_bytes:int -> unit -> build_cache

(** [build_cache_size c] is the number of distinct problems resident. *)
val build_cache_size : build_cache -> int

(** [build_cache_shared c] is the lifetime count of requests served
    from [c] instead of building. *)
val build_cache_shared : build_cache -> int

(** [build_cache_mem c key] — is [key] resident right now?  (Recency is
    not bumped: membership probes — the prefetch planner's resident
    filter — must not distort the LRU order.) *)
val build_cache_mem : build_cache -> string -> bool

(** Lifetime counters of a {!build_cache}: residency ([entries],
    [bytes], the configured [cap_bytes]), traffic ([hits]/[misses] —
    keyed requests served from / past the store), [evictions], and the
    prewarming loop's [prefetch_builds] / [prefetch_hits] (prefetched
    entries later hit by a real request, counted once each). *)
type build_cache_stats = {
  entries : int;
  bytes : int;
  cap_bytes : int option;
  hits : int;
  misses : int;
  evictions : int;
  prefetch_builds : int;
  prefetch_hits : int;
}

val build_cache_stats : build_cache -> build_cache_stats

(** [build_cache_stats_to_json s] is the summary-document fragment:
    [{entries; bytes; max_bytes; hits; misses; hit_rate; evictions;
    prefetch_builds; prefetch_hits}] ([hit_rate] null with no
    traffic). *)
val build_cache_stats_to_json : build_cache_stats -> Telemetry.json

(** [prefetch c ~key build] prewarms [key]: builds and inserts the
    problem if absent ([true]), a no-op if already resident ([false]).
    The build runs outside the store's lock; racing a concurrent
    request on the same key is safe (first insert wins). *)
val prefetch : build_cache -> key:string -> (unit -> Problem.t) -> bool

(** [fair_slice_ms ~remaining_ms ~workers ~left] is the per-request
    fair share of a global budget with [remaining_ms] left: [workers /
    left] of the remaining time, clamped to [\[0, remaining_ms\]] — an
    exhausted budget yields a 0 ms slice, never a floor.  Exposed for
    the deadline-regression tests. *)
val fair_slice_ms : remaining_ms:float -> workers:int -> left:int -> float

(** [run ?pool ?seed ?deadline_ms ?solvers ?cache requests] solves
    every request (racing [solvers problem] — default
    {!Solver_registry.applicable} — under its carved budget) on [pool]
    (default {!Hr_util.Pool.default}).  Anything a request raises —
    build failure, {!Solver.Rejected}, an all-crash race — becomes its
    [Error] outcome; other requests are unaffected.  [cache] (default:
    a fresh one) dedups problem builds by request key; the result's
    [shared_builds] counts this run's cache hits only, even on a
    long-lived cache.  Requests already resident in [cache] do not
    count towards the fair-share [left] (they cost no solve time), and
    an empty request list short-circuits without touching the pool. *)
val run :
  ?pool:Hr_util.Pool.t ->
  ?seed:int ->
  ?deadline_ms:int ->
  ?solvers:(Problem.t -> Solver.t list) ->
  ?cache:build_cache ->
  request list ->
  t

(** [error_response ~id msg] — a structured failure for requests that
    never reach {!run} (e.g. a line the serving loop cannot parse). *)
val error_response : ?wall_ms:float -> id:string -> string -> response

(** [response_to_json ?timing r] is the [hyperreconf.result/1]
    document: [{schema; id; ok; wall_ms}] plus, on success,
    [instance {m; n}], the winning [solver]/[cost]/[exact]/[cut_off],
    the [plan] (per-task hyperreconfiguration steps, step 0 included)
    and a [solvers] array of per-contestant telemetry — or, on failure,
    [error].  [timing:false] (default [true]) renders every [wall_ms]
    as 0, making the document reproducible byte for byte across
    runs and transports (hrserve's [--no-timing]). *)
val response_to_json : ?timing:bool -> response -> Telemetry.json

(** [to_json ?label ?results ?extra t] is the [hyperreconf.batch/1]
    document aggregating the batch: size, ok/error/cut-off counts,
    workers, deadline, wall clock, throughput (instances/s), shared
    builds and — unless [results] is [false] — every per-request result
    document.  [extra] fields (e.g. hrserve's table-cache stats) are
    appended after the standard aggregates. *)
val to_json :
  ?label:string -> ?results:bool -> ?extra:(string * Telemetry.json) list -> t -> Telemetry.json
