(** Batched solving: many instances, one pool, one deadline.

    The serving-side counterpart of {!Solver.race}: take a list of
    {!request}s, solve each with a (restrictable) solver race on the
    shared persistent {!Hr_util.Pool}, and return one {!response} per
    request {e in request order} — errors contained per request as
    structured results, never as process death.

    {b Layering.}  A request carries a thunk building its
    {!Problem.t}, not a [Hr_check.Case.t] — [hr_core] sits below
    [hr_check] in the library graph.  The case-level wiring (parsing
    [hyperreconf.case/1] documents into requests) lives in
    [bin/hrserve.ml] and the conformance harness; both funnel through
    this module.

    {b Oracle sharing.}  Requests may carry a dedup [key] (the serving
    loop uses the case's canonical JSON).  Requests with equal keys
    share one problem build — and therefore one
    {!Interval_cost.precompute} table — instead of rebuilding the dense
    oracle per request.

    {b Budget carving.}  One batch-global deadline is carved into
    per-request cooperative budgets: when a request starts, it receives
    [workers/left] of the remaining global time (its fair share given
    the requests still queued), capped by the global deadline
    ({!Hr_util.Budget.earliest}).  With no deadline every request runs
    unlimited — the bit-for-bit deterministic regime ({!Solver.race}'s
    determinism contract carries over unchanged).

    {b Determinism.}  Responses are positionally deterministic (the
    pool's map is elementwise), and under an unlimited budget each
    response's solution is bit-identical to the sequential
    [Solver.race_report ~seed] on the same instance. *)

type request = {
  id : string;  (** echoed back verbatim in the response *)
  key : string option;  (** dedup key for sharing problem builds *)
  build : unit -> Problem.t;
      (** may raise; contained as a per-request error response *)
}

(** [request ?key ~id build]. *)
val request : ?key:string -> id:string -> (unit -> Problem.t) -> request

(** A successfully solved request. *)
type solved = {
  solution : Solution.t;  (** the race winner *)
  reports : Solver.report list;  (** one per contestant, {!Solver.run_all} order *)
  m : int;
  n : int;
}

type response = {
  id : string;
  outcome : (solved, string) result;
  wall_ms : float;  (** this request's build + race wall clock *)
}

(** A completed batch: the input to {!to_json} and the bench. *)
type t = {
  responses : response list;  (** in request order *)
  total_ms : float;
  workers : int;
  deadline_ms : int option;
  shared_builds : int;  (** requests served from the key-dedup cache *)
}

(** ["hyperreconf.result/1"] / ["hyperreconf.batch/1"] — bump on
    breaking changes to the corresponding document. *)
val result_schema_version : string

val batch_schema_version : string

(** [run ?pool ?seed ?deadline_ms ?solvers requests] solves every
    request (racing [solvers problem] — default
    {!Solver_registry.applicable} — under its carved budget) on [pool]
    (default {!Hr_util.Pool.default}).  Anything a request raises —
    build failure, {!Solver.Rejected}, an all-crash race — becomes its
    [Error] outcome; other requests are unaffected. *)
val run :
  ?pool:Hr_util.Pool.t ->
  ?seed:int ->
  ?deadline_ms:int ->
  ?solvers:(Problem.t -> Solver.t list) ->
  request list ->
  t

(** [error_response ~id msg] — a structured failure for requests that
    never reach {!run} (e.g. a line the serving loop cannot parse). *)
val error_response : ?wall_ms:float -> id:string -> string -> response

(** [response_to_json r] is the [hyperreconf.result/1] document:
    [{schema; id; ok; wall_ms}] plus, on success, [instance {m; n}],
    the winning [solver]/[cost]/[exact]/[cut_off], the [plan] (per-task
    hyperreconfiguration steps, step 0 included) and a [solvers] array
    of per-contestant telemetry — or, on failure, [error]. *)
val response_to_json : response -> Telemetry.json

(** [to_json ?label ?results t] is the [hyperreconf.batch/1] document
    aggregating the batch: size, ok/error/cut-off counts, workers,
    deadline, wall clock, throughput (instances/s), shared builds and —
    unless [results] is [false] — every per-request result document. *)
val to_json : ?label:string -> ?results:bool -> t -> Telemetry.json
