(** Optimal single-task (hyper)reconfiguration planning.

    Registered in {!Solver_registry} as ["st-dp"]; new call sites
    should prefer the registry (see [docs/solvers.md]).

    This is the polynomial algorithm for the single-task switch model
    that the paper inherits from [9] ("Partition into Hypercontexts")
    and uses to compute the optimal single-task costs in §6: partition
    the context-requirement sequence into consecutive blocks; each
    block pays one hyperreconfiguration [v] plus (block length) ×
    (per-step cost of the block's minimal hypercontext).

    The dynamic program

    {v f(0) = 0,  f(j) = min_{1 ≤ i ≤ j} f(i-1) + v + c(i,j)·(j-i+1) v}

    is O(n²) oracle queries; with the {!Range_union} table behind the
    oracle the whole solve is O(n²).  Optimality relies only on
    [step_cost] being interval-monotone, so the same solver is reused
    by the DAG and explicit-H general models. *)

type result = {
  cost : int;  (** optimal total (hyper)reconfiguration time *)
  breaks : int list;  (** hyperreconfiguration steps, ascending, head = 0 *)
}

(** [solve ~v ~n ~step_cost] runs the DP on an abstract interval cost
    function ([step_cost lo hi], 0-based inclusive).  [n] must be ≥ 1. *)
val solve : v:int -> n:int -> step_cost:(int -> int -> int) -> result

(** [solve_trace ?v trace] specializes to the switch model.  [v]
    defaults to the universe size (the paper's [w = |X|] special
    case).  Also returns the minimal hypercontext of every block, in
    block order. *)
val solve_trace : ?v:int -> Trace.t -> result * Hypercontext.t list

(** [solve_oracle oracle ~task] runs on one task of a multi-task
    oracle (useful for seeding the multi-task optimizers with per-task
    optima). *)
val solve_oracle : Interval_cost.t -> task:int -> result

(** [plan_of_breaks trace breaks] materializes the union hypercontexts
    for a given breakpoint list. *)
val plan_of_breaks : Trace.t -> int list -> Hypercontext.t list

(** [cost_of_breaks ~v ~n ~step_cost breaks] evaluates an arbitrary
    single-task breakpoint list under the same objective — the
    reference evaluator used in tests and by the heuristics. *)
val cost_of_breaks : v:int -> n:int -> step_cost:(int -> int -> int) -> int list -> int

(** [solve_bounded ~v ~n ~step_cost ~max_blocks] — the optimum over
    plans with at most [max_blocks] hyperreconfigurations (a
    control-plane budget: descriptor storage, hyperreconfiguration
    slots).  O(n²·max_blocks) DP; [solve_bounded ~max_blocks:n] equals
    {!solve}.  Raises [Invalid_argument] when [max_blocks < 1]. *)
val solve_bounded :
  v:int -> n:int -> step_cost:(int -> int -> int) -> max_blocks:int -> result

(** [frontier ~v ~n ~step_cost] — the Pareto frontier of
    (hyperreconfiguration count, optimal cost) pairs: one entry per
    budget K at which the optimum strictly improves, ascending in K.
    The last entry is the unconstrained optimum. *)
val frontier : v:int -> n:int -> step_cost:(int -> int -> int) -> (int * int) list
