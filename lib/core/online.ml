module Bitset = Hr_util.Bitset

type decision = Keep | Switch_to of Hypercontext.t

type instance = {
  start : Bitset.t -> Hypercontext.t;
  step : Hypercontext.t -> Bitset.t -> decision;
}

type policy = { name : string; fresh : unit -> instance }

let eager =
  {
    name = "eager";
    fresh =
      (fun () ->
        {
          start = Fun.id;
          step = (fun _hc req -> Switch_to req);
        });
  }

let lazy_full ~universe =
  {
    name = "lazy-full";
    fresh =
      (fun () ->
        {
          start = (fun req -> Bitset.union (Bitset.full universe) req);
          step = (fun _hc _req -> Keep);
        });
  }

let rent_or_buy ~v =
  {
    name = "rent-or-buy";
    fresh =
      (fun () ->
        let waste = ref 0 in
        {
          start = Fun.id;
          step =
            (fun hc req ->
              if not (Hypercontext.satisfies hc req) then begin
                (* Forced switch: take the union so recent history stays
                   available (pure per-requirement switching thrashes on
                   alternating demands).  The union's surplus over the
                   requirement still counts as waste — otherwise a trace
                   that escapes the hypercontext every few steps keeps
                   resetting the meter and the accumulated surplus never
                   sheds.  Shedding here is free: the switch is paid
                   anyway. *)
                let grown = Bitset.union hc req in
                waste := !waste + (Hypercontext.cost grown - Bitset.cardinal req);
                if !waste > v then begin
                  waste := 0;
                  Switch_to req
                end
                else Switch_to grown
              end
              else begin
                waste := !waste + (Hypercontext.cost hc - Bitset.cardinal req);
                if !waste > v then begin
                  waste := 0;
                  Switch_to req
                end
                else Keep
              end);
        });
  }

let growing ?(reset_factor = 3.0) () =
  {
    name = "growing";
    fresh =
      (fun () ->
        let steps = ref 0 and req_sum = ref 0 in
        let observe req =
          incr steps;
          req_sum := !req_sum + Bitset.cardinal req
        in
        {
          start =
            (fun req ->
              observe req;
              req);
          step =
            (fun hc req ->
              observe req;
              let mean = float_of_int !req_sum /. float_of_int !steps in
              if not (Hypercontext.satisfies hc req) then
                Switch_to (Bitset.union hc req)
              else if float_of_int (Hypercontext.cost hc) > reset_factor *. Float.max 1.0 mean
              then Switch_to req
              else Keep);
        });
  }

let run policy ~v trace =
  let n = Trace.length trace in
  if n = 0 then invalid_arg "Online.run: empty trace";
  if v < 0 then invalid_arg "Online.run: negative v";
  let inst = policy.fresh () in
  let require hc req =
    if not (Hypercontext.satisfies hc req) then
      invalid_arg
        (Printf.sprintf "Online.run: policy %s returned an invalid hypercontext"
           policy.name);
    hc
  in
  let hc0 = require (inst.start (Trace.req trace 0)) (Trace.req trace 0) in
  let cost = ref (v + Hypercontext.cost hc0) in
  let switches = ref 1 in
  let hc = ref hc0 in
  for i = 1 to n - 1 do
    let req = Trace.req trace i in
    (match inst.step !hc req with
    | Keep ->
        (* A Keep that cannot satisfy the requirement is a policy bug. *)
        hc := require !hc req
    | Switch_to next ->
        hc := require next req;
        incr switches;
        cost := !cost + v);
    cost := !cost + Hypercontext.cost !hc
  done;
  (!cost, !switches)

let competitive_ratio policy ~v trace =
  let online, _ = run policy ~v trace in
  let offline, _ = St_opt.solve_trace ~v trace in
  float_of_int online /. float_of_int offline.St_opt.cost

let all ~v ~universe =
  [ eager; lazy_full ~universe; rent_or_buy ~v; growing () ]
