(** Incremental multi-task DP with an extendable frontier.

    The flat {!Mt_dp} engine keys its states on {e committed block
    ends}: a final frontier has every block closed at step [n-1], so
    nothing in it can be reused when the trace grows — the optimal
    plan of the extended instance may run a block straight across the
    old horizon.  This engine keys states on each task's {e open-block
    start} instead: a state at horizon [t] is the vector
    [(lo_0, …, lo_{m-1})] of the steps at which each task's current
    hypercontext block began, together with the cost charged so far.
    That signature is exactly what the future depends on, so the
    frontier after step [t-1] is a valid starting point for {e any}
    continuation of the trace — {!extend} resumes the DP at step [t]
    as if the appended steps had been there all along, and produces
    bit-identical plans to a from-scratch {!start} on the full trace.

    {b Cost accounting.}  Block costs are charged per step by
    telescoping deltas: restarting task [j] at step [i] charges
    [step_cost j i i]; keeping its block [lo..i-1] open through step
    [i] charges [(i-lo+1)·step_cost j lo i - (i-lo)·step_cost j lo
    (i-1)] (non-negative by interval monotonicity).  Summed over a
    block [lo..hi] the deltas telescope to the block's true total
    [(hi-lo+1)·step_cost j lo hi].  Per step the engine also charges
    [pub] and the hyperreconfiguration term of the restarting subset
    (combined by the [hyper] upload mode).  This per-task additive
    charging is exact only when the {e reconfiguration} upload is
    [Task_sequential] — under [Task_parallel] the per-step [max]
    across tasks is not separable — hence the {!supports} gate.

    {b No upper-bound pruning.}  Unlike {!Mt_dp}, no heuristic upper
    bound is ever used to discard states: a state that is hopeless for
    the current horizon can still lie on the extended instance's
    optimal path (the extended optimum may pay {e more} on the prefix
    than the prefix optimum does).  The only reduction is exact
    dominance — states with equal start vectors have identical
    futures, so only the cheapest survives.

    {b Determinism.}  Levels are processed in state-index order and
    restart subsets in increasing bitmask order; the key table is used
    only for slot lookup (never iterated) and ties keep the first
    insertion, so runs are reproducible and [start] on a full trace
    equals [start] on a prefix followed by [extend] — plan, cost, and
    state counts alike.  The suite and the [online-replay] hrcheck
    column pin this. *)

type t

(** [supports p] — can this engine evaluate [p] exactly?  Requires the
    fully synchronized mode, [Task_sequential] reconfiguration uploads
    (see above), [n >= 1] and [m <= 12] (restart subsets are
    enumerated as bitmasks). *)
val supports : Problem.t -> bool

(** [exact_ok p] mirrors {!Mt_dp}'s exact-size guard: the frontier
    (at most [n^m] start vectors) must stay within two million
    states.  Beyond it, pass [~max_states] to beam-truncate. *)
val exact_ok : Problem.t -> bool

(** [start ?max_states ?budget p] solves [p] from step 0 and returns
    the full frontier at horizon [n].  [max_states] keeps only the
    cheapest states per level (the result is then a lower-bounded
    heuristic, never marked exact).  When [budget] expires the engine
    collapses to its cheapest state and fast-forwards the remaining
    steps without further restarts ({!Solution.cut_off}).  Raises
    [Invalid_argument] when {!supports} is false, or when the exact
    frontier would exceed {!exact_ok}'s bound and no [max_states] was
    given. *)
val start : ?max_states:int -> ?budget:Hr_util.Budget.t -> Problem.t -> t

(** [extend ?budget t p'] resumes the DP on the grown instance [p']:
    same tasks (equal [m], [v], parameters, mode and class), horizon
    [n' >= horizon t].  {b Contract:} [p']'s oracle must agree with
    [t]'s on the prefix — the appended steps extend the same traces
    (e.g. via {!Hr_core.Trace.concat}); the engine spot-checks the
    per-task prefix costs and raises [Invalid_argument] on
    disagreement or on any dimension/parameter mismatch.  With
    [n' = horizon t] this is free. *)
val extend : ?budget:Hr_util.Budget.t -> t -> Problem.t -> t

(** [solution t] reconstructs the cheapest state's plan.  The cost is
    recomputed with {!Problem.eval}; [exact] iff the run was neither
    beam-truncated nor cut off. *)
val solution : t -> Solution.t

(** [horizon t] is the number of steps processed so far. *)
val horizon : t -> int

(** [frontier t] is the number of live states. *)
val frontier : t -> int

(** [states_explored t] counts every state ever inserted (cumulative
    across {!extend}s). *)
val states_explored : t -> int

(** [best_cost t] is the cheapest state's charged cost — equals
    {!Problem.eval} of {!solution}'s plan on exact runs. *)
val best_cost : t -> int
