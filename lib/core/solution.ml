type t = {
  solver : string;
  cost : int;
  bp : Breakpoints.t;
  exact : bool;
  cut_off : bool;
  stats : (string * string) list;
}

let make ~solver ?(exact = false) ?(cut_off = false) ?(stats = []) ~cost bp =
  { solver; cost; bp; exact = exact && not cut_off; cut_off; stats }

let task_breaks t j =
  List.map fst (Breakpoints.intervals t.bp j)

let break_steps t = Breakpoints.break_columns t.bp

let num_break_steps t = List.length (break_steps t)

let best = function
  | [] -> invalid_arg "Solution.best: empty list"
  | s0 :: rest ->
      List.fold_left
        (fun b s ->
          if s.cost < b.cost || (s.cost = b.cost && s.exact && not b.exact) then s
          else b)
        s0 rest

let pp fmt t =
  Format.fprintf fmt "%s: cost %d (%s), %d break steps" t.solver t.cost
    (if t.exact then "exact"
     else if t.cut_off then "cut off"
     else "heuristic")
    (num_break_steps t)
