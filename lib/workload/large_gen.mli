(** Large phase-structured trace generation — the 10⁴–10⁵-step
    workloads of the sparse-oracle track (docs/scaling.md).

    Real reconfigurable workloads are {e phasic}: short bursts of
    reconfiguration (an application rewires itself) separated by long
    dwells in which the configuration holds still.  The generator
    reproduces that shape from first principles rather than sampling
    random requirements: each burst is a real SHyRA program — the
    self-reconfiguring FSMs, the LFSR, the Rule 90 automaton — traced
    at word granularity ({!Hr_shyra.Tracer.Field_diff}), and each dwell
    is a run of empty requirements.

    The dwells are what makes the instances tractable at scale: a
    dwell of any length is a single run-length segment, so
    {!Hr_core.Trace.segments} compresses a generated trace roughly
    [(burst + dwell) / burst]-fold (≈ 10x at the defaults) and the
    sparse {!Hr_core.Occ_index} stays small even at 10⁵ steps, where
    dense tables would need tens of GiB.

    Deterministic: the same (seed, steps, burst, dwell) always yields
    the same trace, on every platform. *)

(** Default burst budget in machine cycles (24). *)
val default_burst : int

(** Default mean dwell length in steps (232). *)
val default_dwell : int

(** [trace ?burst ?dwell ~seed ~steps ()] generates a [steps]-step
    trace over {!Hr_shyra.Config.space} (48 switches): looped
    FSM/LFSR/Rule-90 bursts of roughly [burst] cycles each, separated
    by empty-requirement dwells jittered around [dwell] steps.  Raises
    [Invalid_argument] on [steps <= 0], [burst <= 0] or [dwell < 0]. *)
val trace :
  ?burst:int -> ?dwell:int -> seed:int -> steps:int -> unit -> Hr_core.Trace.t

(** [task_set ?burst ?dwell ~seed ~steps ~tasks ()] builds a
    fully synchronized [tasks]-task instance: each task gets its own
    independently generated trace (seed offset per task) over the full
    48-switch space, with the default local hyperreconfiguration cost
    [v = 48]. *)
val task_set :
  ?burst:int ->
  ?dwell:int ->
  seed:int ->
  steps:int ->
  tasks:int ->
  unit ->
  Hr_core.Task_set.t
