open Hr_core
module Shyra = Hr_shyra
module Tracer = Shyra.Tracer

let default_burst = 24
let default_dwell = 232

(* A small deterministic LCG (a 63-bit-safe 64-bit-LCG multiplier): the
   generator must produce identical traces on every run and platform
   for a given seed — benches and CI smoke tests compare against
   them. *)
type rng = { mutable state : int }

let make_rng seed = { state = (seed * 0x9E3779B9) lxor 0x6A09E667 }

let next rng bound =
  rng.state <- ((rng.state * 2862933555777941757) + 3037000493) land max_int;
  (rng.state lsr 17) mod bound

type phase = Lfsr | Rule90 | Fsm

let phases = [| Lfsr; Rule90; Fsm |]

(* One application burst: run a real SHyRA program for roughly [budget]
   machine cycles and extract its word-granular reconfiguration trace.
   Bursts are where the requirements actually churn — nearly every
   cycle is its own run-length segment. *)
let burst_reqs rng kind budget =
  let program =
    match kind with
    | Lfsr -> Shyra.Lfsr.build ~steps:(max 1 (budget / Shyra.Lfsr.step_cycles))
    | Rule90 ->
        Shyra.Rule90.build ~steps:(max 1 (budget / Shyra.Rule90.step_cycles))
    | Fsm ->
        let spec =
          if next rng 2 = 0 then Shyra.Fsm.detector_101 else Shyra.Fsm.parity_fsm
        in
        let inputs = List.init budget (fun _ -> next rng 2 = 1) in
        fst (Shyra.Fsm.run spec inputs)
  in
  Trace.reqs (Tracer.trace ~mode:Tracer.Field_diff program)

let trace ?(burst = default_burst) ?(dwell = default_dwell) ~seed ~steps () =
  if steps <= 0 then invalid_arg "Large_gen.trace: steps must be positive";
  if burst <= 0 then invalid_arg "Large_gen.trace: burst must be positive";
  if dwell < 0 then invalid_arg "Large_gen.trace: dwell must be >= 0";
  let space = Shyra.Config.space in
  let empty = Switch_space.empty space in
  let rng = make_rng seed in
  let chunks = ref [] and have = ref 0 and k = ref 0 in
  while !have < steps do
    (* Cycle through the three applications so every generated trace
       mixes all phase shapes; the RNG varies FSM specs, inputs and
       dwell lengths. *)
    let reqs = burst_reqs rng phases.(!k mod Array.length phases) burst in
    incr k;
    chunks := reqs :: !chunks;
    have := !have + Array.length reqs;
    (* The dwell: the application holds its configuration, so the
       requirement is empty for a long stretch — one run-length segment
       however long it is.  Jittered around [dwell] so the trace is not
       exactly periodic. *)
    let d = if dwell = 0 then 0 else (dwell / 2) + next rng (dwell + 1) in
    if d > 0 then begin
      chunks := Array.make d empty :: !chunks;
      have := !have + d
    end
  done;
  let all = Array.concat (List.rev !chunks) in
  Trace.make space (Array.sub all 0 steps)

let task_set ?burst ?dwell ~seed ~steps ~tasks () =
  if tasks <= 0 then invalid_arg "Large_gen.task_set: tasks must be positive";
  Task_set.make
    (Array.init tasks (fun j ->
         Task_set.task
           ~name:(Printf.sprintf "gen%d" j)
           (trace ?burst ?dwell ~seed:(seed + (j * 7919)) ~steps ())))
