open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

type state = { active : Bitset.t; density : float }

type chain = { states : state array; transition : float array array }

let make_chain rng ~space ~states ~self =
  if states < 1 then invalid_arg "Markov.make_chain: need at least one state";
  if self < 0. || self > 1. then invalid_arg "Markov.make_chain: self out of [0,1]";
  let width = Switch_space.size space in
  let state _ =
    let active = Bitset.random (fun () -> Rng.float rng) ~width ~density:0.35 in
    let active =
      if Bitset.is_empty active && width > 0 then Bitset.add active (Rng.int rng width)
      else active
    in
    { active; density = 0.3 +. (0.5 *. Rng.float rng) }
  in
  let spread = if states = 1 then 0. else (1. -. self) /. float_of_int (states - 1) in
  let transition =
    Array.init states (fun i ->
        Array.init states (fun j ->
            if states = 1 then 1. else if i = j then self else spread))
  in
  { states = Array.init states state; transition }

let validate chain =
  let k = Array.length chain.states in
  if k = 0 then Error "no states"
  else if Array.length chain.transition <> k then Error "transition row count"
  else
    let bad_row =
      Array.to_list chain.transition
      |> List.mapi (fun i row -> (i, row))
      |> List.find_opt (fun (_, row) ->
             Array.length row <> k
             || Array.exists (fun p -> p < 0.) row
             || Float.abs (Array.fold_left ( +. ) 0. row -. 1.) > 1e-6)
    in
    match bad_row with
    | Some (i, _) -> Error (Printf.sprintf "row %d is not a distribution" i)
    | None -> Ok ()

let next_state rng chain current =
  let row = chain.transition.(current) in
  let u = Rng.float rng in
  let rec pick i acc =
    if i >= Array.length row - 1 then i
    else
      let acc = acc +. row.(i) in
      if u < acc then i else pick (i + 1) acc
  in
  pick 0 0.

let walk_from rng chain ~state ~n =
  if state < 0 || state >= Array.length chain.states then
    invalid_arg "Markov.walk_from: state out of range";
  let rec go state k acc =
    if k = 0 then (List.rev acc, state)
    else go (next_state rng chain state) (k - 1) (state :: acc)
  in
  go state n []

let walk rng chain ~n = fst (walk_from rng chain ~state:0 ~n)

let generate_from rng chain ~space ~state ~n =
  (match validate chain with
  | Error e -> invalid_arg ("Markov.generate: " ^ e)
  | Ok () -> ());
  if n < 1 then invalid_arg "Markov.generate: n must be positive";
  let width = Switch_space.size space in
  let req state =
    Bitset.fold
      (fun x acc -> if Rng.chance rng state.density then Bitset.add acc x else acc)
      state.active (Bitset.create width)
  in
  let states, final = walk_from rng chain ~state ~n in
  let reqs = List.map (fun s -> req chain.states.(s)) states in
  (Trace.make space (Array.of_list reqs), final)

let generate rng chain ~space ~n = fst (generate_from rng chain ~space ~state:0 ~n)

let dwell_times rng chain ~n =
  let states = walk rng chain ~n in
  let rec runs current len = function
    | [] -> [ len ]
    | s :: rest -> if s = current then runs current (len + 1) rest else len :: runs s 1 rest
  in
  match states with [] -> [] | s :: rest -> runs s 1 rest
