open Hr_core

(** Markov-modulated workloads.

    Phase transitions in real computations are not scheduled; they
    happen stochastically.  This generator drives the context
    requirements with a hidden Markov chain over phase states: each
    state has its own active switch subset and density, and a
    state-transition matrix governs dwell times.  High self-transition
    probability produces long, St_opt-friendly phases; a near-uniform
    matrix degenerates to the adversarial uniform trace. *)

type state = {
  active : Hr_util.Bitset.t;  (** switches this phase may touch *)
  density : float;  (** per-step probability of each active switch *)
}

type chain = {
  states : state array;
  transition : float array array;  (** row-stochastic matrix *)
}

(** [make_chain rng ~space ~states ~self] — random phase states over
    [space] with self-transition probability [self] and the remaining
    mass spread uniformly.  Raises on [states < 1] or [self] outside
    [0,1]. *)
val make_chain :
  Hr_util.Rng.t -> space:Switch_space.t -> states:int -> self:float -> chain

(** [validate chain] checks stochasticity (rows sum to 1 ± 1e-6) and
    dimensions. *)
val validate : chain -> (unit, string) result

(** [generate rng chain ~space ~n] — an [n]-step trace starting in
    state 0. *)
val generate : Hr_util.Rng.t -> chain -> space:Switch_space.t -> n:int -> Trace.t

(** [walk_from rng chain ~state ~n] — [n] phase states starting (and
    including) [state], plus the chain position {e after} the walk, so
    a later call continues the same realization.  Raises on an
    out-of-range [state].  [walk_from ~state:0] consumes exactly the
    rng stream of {!generate}'s internal walk. *)
val walk_from :
  Hr_util.Rng.t -> chain -> state:int -> n:int -> int list * int

(** [generate_from rng chain ~space ~state ~n] — an [n]-step trace
    whose first step is drawn in [state], plus the final chain
    position.  [generate_from ~state:0] draws the identical trace (and
    rng stream) as {!generate}; feeding the returned position back in
    appends a statistically seamless continuation — the online
    event-stream generator ({!Hr_online.Events}) extends task traces
    this way. *)
val generate_from :
  Hr_util.Rng.t ->
  chain ->
  space:Switch_space.t ->
  state:int ->
  n:int ->
  Trace.t * int

(** [dwell_times rng chain ~n] — the sequence of phase lengths of one
    [n]-step realization (for workload characterization tests). *)
val dwell_times : Hr_util.Rng.t -> chain -> n:int -> int list
