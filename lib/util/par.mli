(** Minimal multicore helpers (OCaml 5 domains).

    The optimizers' fitness evaluations are pure, so they parallelize
    embarrassingly; this module provides a deterministic parallel map —
    the result is elementwise identical to the sequential map, whatever
    the scheduling.

    Since the {!Pool} rebase these helpers run on the shared persistent
    worker pool ({!Pool.default}): domains are spawned once per process,
    not once per call, so a serving loop can issue thousands of parallel
    maps per second without paying [Domain.spawn] each time. *)

(** [num_domains ()] is the recommended worker count
    ([Domain.recommended_domain_count], at least 1). *)
val num_domains : unit -> int

(** [map_array ?domains f arr] maps [f] over [arr] using up to
    [domains] chunks (default {!num_domains}) on the shared
    {!Pool.default}.  Falls back to the plain sequential map for
    [domains <= 1] or short arrays.  [f] must be pure/thread-safe: it
    runs concurrently on several domains.  In the parallel regime [f]
    is applied exactly once per element; all chunks are enqueued before
    any is claimed, and the caller then works alongside the pool
    ({!Pool.map}'s caller-helps rule), so no element is serialized
    ahead of the workers.  Exceptions raised by [f] are re-raised in
    the caller exactly once — the lowest failing index, as in the
    sequential map. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [iter_chunks ?domains f n] runs [f lo hi] over a partition of
    [0..n-1] into contiguous chunks, in parallel on {!Pool.default}. *)
val iter_chunks : ?domains:int -> (int -> int -> unit) -> int -> unit
