(** Minimal multicore helpers (OCaml 5 domains).

    The optimizers' fitness evaluations are pure, so they parallelize
    embarrassingly; this module provides a deterministic parallel map —
    the result is elementwise identical to the sequential map, whatever
    the scheduling. *)

(** [num_domains ()] is the recommended worker count
    ([Domain.recommended_domain_count], at least 1). *)
val num_domains : unit -> int

(** [map_array ?domains f arr] maps [f] over [arr] using up to
    [domains] worker domains (default {!num_domains}).  Falls back to
    the plain sequential map for [domains <= 1] or short arrays.  [f]
    must be pure/thread-safe: it runs concurrently on several domains.
    In the parallel regime every application of [f] — index 0 included
    — runs on a worker domain, exactly once per element; the caller
    never evaluates [f] itself, so the wall clock is the max over
    chunks, not first-element + max.  Exceptions raised by [f] are
    re-raised in the caller. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [iter_chunks ?domains f n] runs [f lo hi] over a partition of
    [0..n-1] into contiguous chunks, one chunk per domain. *)
val iter_chunks : ?domains:int -> (int -> int -> unit) -> int -> unit
