type t = No_limit | Deadline_ms of float (* absolute, Unix epoch ms *)

let now_ms () = Unix.gettimeofday () *. 1000.

let unlimited = No_limit

let of_deadline_ms ms = Deadline_ms (now_ms () +. float_of_int ms)

let exhausted = function
  | No_limit -> false
  | Deadline_ms d -> now_ms () >= d

let remaining_ms = function
  | No_limit -> infinity
  | Deadline_ms d -> Float.max 0. (d -. now_ms ())

let is_limited = function No_limit -> false | Deadline_ms _ -> true

let earliest a b =
  match (a, b) with
  | No_limit, t | t, No_limit -> t
  | Deadline_ms x, Deadline_ms y -> Deadline_ms (Float.min x y)
