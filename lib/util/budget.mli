(** Cooperative wall-clock budgets for anytime optimization.

    A [Budget.t] is a deadline that long-running solvers poll between
    iterations (GA generations, annealing steps, DP levels, descent
    rounds).  When the budget is {!exhausted} a cooperative solver
    stops refining and returns its best-so-far solution, marking it cut
    off — nothing is killed, no work is lost, and admissibility of the
    returned plan is preserved by construction.

    Budgets are immutable and safe to share across domains: polling is
    a single clock read compared against a precomputed absolute
    deadline. *)

type t

(** The budget that is never exhausted — the default everywhere. *)
val unlimited : t

(** [of_deadline_ms ms] expires [ms] milliseconds from now.
    [ms <= 0] yields an already-exhausted budget (useful in tests and
    for "just give me the cheapest anytime answer"). *)
val of_deadline_ms : int -> t

(** [exhausted t] — has the deadline passed?  O(1), one clock read;
    cheap enough to poll every few hundred microseconds of work. *)
val exhausted : t -> bool

(** [remaining_ms t] is the time left, [infinity] for {!unlimited},
    never negative. *)
val remaining_ms : t -> float

(** [is_limited t] is [false] exactly for {!unlimited}. *)
val is_limited : t -> bool

(** [earliest a b] is the budget that expires first — how a per-request
    slice is capped by a batch-global deadline ({!Hr_core.Batch}). *)
val earliest : t -> t -> t

(** [now_ms ()] — the wall clock in milliseconds (arbitrary epoch).
    The common timebase for solver telemetry. *)
val now_ms : unit -> float
