(** Strict enum parsing for CLI string options.

    The CLIs accept several closed string enums (trace mode, task
    split, workload).  Parsing them through [enum_exn] guarantees a
    typo'd value fails {e eagerly} — at option-validation time, for
    every workload — with a message listing the accepted values, and
    exits 2 through the binaries' uniform [Failure] handler instead of
    surfacing wherever the string happens to be consumed first. *)

(** [enum ~what options s] resolves [s] among [options]; the [Error]
    names [what], the offending value and every accepted value. *)
val enum : what:string -> (string * 'a) list -> string -> ('a, string) result

(** [enum_exn] is {!enum}, raising [Failure] on unknown values (the
    CLIs' exit-2 channel). *)
val enum_exn : what:string -> (string * 'a) list -> string -> 'a

(** [positive ~what s] parses [s] as a strictly positive integer; the
    [Error] names [what] and the offending value (same eager-failure
    contract as {!enum}). *)
val positive : what:string -> string -> (int, string) result

(** [positive_exn] is {!positive}, raising [Failure] (the CLIs' exit-2
    channel). *)
val positive_exn : what:string -> string -> int

