let num_domains () = max 1 (Domain.recommended_domain_count ())

let chunk_bounds ~chunks n =
  (* Contiguous, balanced chunks covering 0..n-1. *)
  let base = n / chunks and extra = n mod chunks in
  let rec go k start acc =
    if k = chunks then List.rev acc
    else
      let len = base + if k < extra then 1 else 0 in
      if len = 0 then go (k + 1) start acc
      else go (k + 1) (start + len) ((start, start + len - 1) :: acc)
  in
  go 0 0 []

let iter_chunks ?domains f n =
  let workers = min (Option.value domains ~default:(num_domains ())) (max 1 n) in
  if n <= 0 then ()
  else if workers <= 1 then f 0 (n - 1)
  else
    let bounds = chunk_bounds ~chunks:workers n in
    let handles =
      List.map (fun (lo, hi) -> Domain.spawn (fun () -> f lo hi)) bounds
    in
    (* Join all domains even if one raised, then re-raise the first
       failure. *)
    let results =
      List.map (fun h -> try Ok (Domain.join h) with e -> Error e) handles
    in
    List.iter (function Error e -> raise e | Ok () -> ()) results

let map_array ?domains f arr =
  let n = Array.length arr in
  let workers = Option.value domains ~default:(num_domains ()) in
  if n = 0 then [||]
  else if workers <= 1 || n < 4 then Array.map f arr
  else begin
    (* Every application of [f] — including index 0 — happens on a
       worker domain: each chunk maps its slice into a fresh array and
       the caller only blits.  Seeding the output with [f arr.(0)] on
       the caller domain would serialize the first element before any
       worker starts (turning a race's wall-clock into first + max of
       the rest). *)
    let bounds = chunk_bounds ~chunks:(min workers n) n in
    let handles =
      List.map
        (fun (lo, hi) ->
          (lo, Domain.spawn (fun () -> Array.init (hi - lo + 1) (fun k -> f arr.(lo + k)))))
        bounds
    in
    (* Join all domains even if one raised, then re-raise the first
       failure. *)
    let results =
      List.map (fun (lo, h) -> try Ok (lo, Domain.join h) with e -> Error e) handles
    in
    let parts =
      List.map (function Error e -> raise e | Ok part -> part) results
    in
    match parts with
    | [] -> [||]
    | (_, first) :: _ ->
        let out = Array.make n first.(0) in
        List.iter (fun (lo, part) -> Array.blit part 0 out lo (Array.length part)) parts;
        out
  end
