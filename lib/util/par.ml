let num_domains = Pool.num_domains

let map_array ?domains f arr =
  let n = Array.length arr in
  let workers = Option.value domains ~default:(num_domains ()) in
  if n = 0 then [||]
  else if workers <= 1 || n < 4 then Array.map f arr
  else
    (* One chunk per requested worker on the shared persistent pool:
       domain startup was paid once at pool creation, not here.  The
       caller claims chunks alongside the pool workers, so no
       application of [f] is serialized ahead of the others. *)
    Pool.map ~chunks:(min workers n) (Pool.default ()) f arr

let iter_chunks ?domains f n =
  let workers = min (Option.value domains ~default:(num_domains ())) (max 1 n) in
  if n <= 0 then ()
  else if workers <= 1 then f 0 (n - 1)
  else Pool.iter_chunks ~chunks:workers (Pool.default ()) f n
