let enum ~what options s =
  match List.assoc_opt s options with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown %s %S (expected one of: %s)" what s
           (String.concat ", " (List.map fst options)))

let enum_exn ~what options s =
  match enum ~what options s with Ok v -> v | Error msg -> failwith msg
