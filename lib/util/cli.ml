let enum ~what options s =
  match List.assoc_opt s options with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "unknown %s %S (expected one of: %s)" what s
           (String.concat ", " (List.map fst options)))

let enum_exn ~what options s =
  match enum ~what options s with Ok v -> v | Error msg -> failwith msg

let positive ~what s =
  match int_of_string_opt s with
  | Some v when v > 0 -> Ok v
  | Some v -> Error (Printf.sprintf "%s must be positive, got %d" what v)
  | None -> Error (Printf.sprintf "%s must be a positive integer, got %S" what s)

let positive_exn ~what s =
  match positive ~what s with Ok v -> v | Error msg -> failwith msg
