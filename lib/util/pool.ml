(* A fixed set of worker domains fed from one task queue.  Batches
   (map / iter_chunks) enqueue one claim-task per chunk; the actual
   chunk index is taken from an atomic cursor, so the caller can race
   the workers for its own chunks ("caller helps") — the property that
   makes nested maps deadlock-free and lets a 0-idle-worker pool still
   make progress on the submitting domain. *)

let num_domains () = max 1 (Domain.recommended_domain_count ())

type t = {
  size : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let rec worker_loop t =
  Mutex.lock t.mu;
  let rec next () =
    if not (Queue.is_empty t.queue) then begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      (* Claim-tasks contain their own exceptions; a raise here would
         mean a bug in this module, not in user code.  Swallowing it
         keeps the worker alive either way. *)
      (try task () with _ -> ());
      worker_loop t
    end
    else if t.stopped then Mutex.unlock t.mu
    else begin
      Condition.wait t.nonempty t.mu;
      next ()
    end
  in
  next ()

let create ?workers () =
  let size = max 1 (Option.value workers ~default:(num_domains ())) in
  let t =
    {
      size;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let is_stopped t =
  Mutex.lock t.mu;
  let s = t.stopped in
  Mutex.unlock t.mu;
  s

let default_pool = ref None

let default () =
  match !default_pool with
  | Some t when not (is_stopped t) -> t
  | _ ->
      (* First use, or someone shut the shared pool down: a stopped
         pool would silently degrade every Par.map_array to caller-side
         sequential execution, so recreate instead of memoizing it
         forever. *)
      let t = create () in
      default_pool := Some t;
      (* Workers idle-waiting on the condition would keep the process
         from shutting down cleanly; join them on exit.  [shutdown] is
         idempotent, so stacking one handler per recreation is fine. *)
      at_exit (fun () -> shutdown t);
      t

(* [task] may not raise (it contains exceptions itself).  After
   shutdown, run it caller-side: degraded to sequential, never an
   error. *)
let submit t task =
  Mutex.lock t.mu;
  if t.stopped then begin
    Mutex.unlock t.mu;
    task ()
  end
  else begin
    Queue.push task t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end

let chunk_bounds ~chunks n =
  (* Contiguous, balanced chunks covering 0..n-1. *)
  let base = n / chunks and extra = n mod chunks in
  let rec go k start acc =
    if k = chunks then List.rev acc
    else
      let len = base + if k < extra then 1 else 0 in
      if len = 0 then go (k + 1) start acc
      else go (k + 1) (start + len) ((start, start + len - 1) :: acc)
  in
  go 0 0 []

(* The batch engine shared by [map] and [iter_chunks]: run
   [run_chunk ci] once for each chunk index, on workers and the caller
   concurrently, then re-raise the first (lowest-chunk) failure. *)
let run_batch t ~nchunks ~(run_chunk : int -> (unit -> unit, exn) result) =
  let errors = Array.make nchunks None in
  let cursor = Atomic.make 0 in
  let done_mu = Mutex.create () and done_cond = Condition.create () in
  let pending = ref nchunks in
  let claim () =
    let ci = Atomic.fetch_and_add cursor 1 in
    if ci >= nchunks then false
    else begin
      (* [run_chunk] computes outside any lock and returns a [commit]
         thunk that publishes its result; commits run under [done_mu]
         so the caller's wait sees a consistent pending count. *)
      let outcome = run_chunk ci in
      Mutex.lock done_mu;
      (match outcome with
      | Ok commit -> commit ()
      | Error e -> errors.(ci) <- Some e);
      decr pending;
      if !pending = 0 then Condition.broadcast done_cond;
      Mutex.unlock done_mu;
      true
    end
  in
  (* Submitted tasks go through a cell that is emptied once the batch
     completes: the caller often drains the cursor itself, and the
     leftover queue entries would otherwise keep [claim] — and through
     it [run_chunk], the chunk bounds and the caller's arrays — alive
     until every worker has popped its stale task. *)
  let claim_cell = ref claim in
  for _ = 1 to nchunks do
    submit t (fun () -> ignore (!claim_cell ()))
  done;
  (* Caller helps: claim chunks until the cursor runs dry... *)
  while claim () do
    ()
  done;
  (* ...then wait for chunks claimed by workers. *)
  Mutex.lock done_mu;
  while !pending > 0 do
    Condition.wait done_cond done_mu
  done;
  Mutex.unlock done_mu;
  (* Batch complete: stale claim-tasks still queued become no-ops and
     drop their references to this batch's state. *)
  claim_cell := (fun () -> false);
  (* Lowest failing chunk = lowest failing element index (chunks are
     contiguous and each stops at its first raise): the exception the
     sequential map would have thrown, re-raised exactly once. *)
  Array.iter (function Some e -> raise e | None -> ()) errors

let resolve_chunks t ?chunks n = min n (max 1 (Option.value chunks ~default:(t.size + 1)))

let map ?chunks t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let nchunks = resolve_chunks t ?chunks n in
    if nchunks <= 1 then Array.map f arr
    else begin
      let bounds = Array.of_list (chunk_bounds ~chunks:nchunks n) in
      let parts = Array.make (Array.length bounds) None in
      let run_chunk ci =
        let lo, hi = bounds.(ci) in
        match
          (* Fill ascending so a mid-chunk raise is the chunk's lowest
             failing index. *)
          let first = f arr.(lo) in
          let out = Array.make (hi - lo + 1) first in
          for i = lo + 1 to hi do
            out.(i - lo) <- f arr.(i)
          done;
          out
        with
        | out -> Ok (fun () -> parts.(ci) <- Some out)
        | exception e -> Error e
      in
      run_batch t ~nchunks:(Array.length bounds) ~run_chunk;
      match parts.(0) with
      | None -> assert false (* run_batch raised on any missing chunk *)
      | Some first ->
          let out = Array.make n first.(0) in
          Array.iteri
            (fun ci part ->
              match part with
              | Some part -> Array.blit part 0 out (fst bounds.(ci)) (Array.length part)
              | None -> assert false)
            parts;
          out
    end
  end

let iter_chunks ?chunks t f n =
  if n > 0 then begin
    let nchunks = resolve_chunks t ?chunks n in
    if nchunks <= 1 then f 0 (n - 1)
    else begin
      let bounds = Array.of_list (chunk_bounds ~chunks:nchunks n) in
      let run_chunk ci =
        let lo, hi = bounds.(ci) in
        match f lo hi with
        | () -> Ok (fun () -> ())
        | exception e -> Error e
      in
      run_batch t ~nchunks:(Array.length bounds) ~run_chunk
    end
  end
