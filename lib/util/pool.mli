(** A persistent domain worker pool.

    {!Par} (and through it every {!Hr_core} solver race) used to pay a
    [Domain.spawn] per call — fine for one optimization, hostile to a
    serving loop that solves thousands of instances per second.  A
    [Pool.t] spawns its worker domains {e once}; afterwards every
    parallel map costs only queue operations.

    {b Determinism.}  [map] is elementwise identical to the sequential
    [Array.map], whatever the worker count, chunking or scheduling:
    chunks are contiguous index ranges and every element lands at its
    own index.  Work is {e claimed}, not assigned — each submitted
    batch carries an atomic chunk cursor, and the caller drains it
    alongside the workers.  This "caller helps" rule is what makes
    nested use safe: a pool task that itself calls [map] executes its
    inner chunks on its own domain instead of waiting for workers that
    may all be busy, so the pool cannot deadlock on nested parallelism.

    {b Exception containment.}  An exception raised by [f] is caught in
    the chunk that raised it and re-raised {e exactly once} in the
    caller of [map]/[iter_chunks] — the exception of the lowest failing
    index, matching the sequential map.  Worker domains never die: the
    same pool instance keeps serving batches after a failing one.

    {b Shutdown.}  [shutdown] drains the queue, stops the workers and
    joins their domains; it is idempotent.  A pool that has been shut
    down still accepts [map]/[iter_chunks] and runs them caller-side
    sequentially — degraded, never broken. *)

type t

(** [num_domains ()] is the recommended worker count
    ([Domain.recommended_domain_count], at least 1). *)
val num_domains : unit -> int

(** [create ?workers ()] spawns [max 1 workers] worker domains (default
    {!num_domains}).  Remember that OCaml caps live domains at a small
    fixed number: create few pools, reuse them, and [shutdown] pools
    you are done with (tests included). *)
val create : ?workers:int -> unit -> t

(** [size t] is the number of worker domains (even after shutdown). *)
val size : t -> int

(** [is_stopped t] — has {!shutdown} run?  A stopped pool still accepts
    [map]/[iter_chunks] but executes them caller-side sequentially. *)
val is_stopped : t -> bool

(** [default ()] is the shared process-wide pool, created on first use
    with {!num_domains} workers and shut down automatically at exit.
    {!Par.map_array} and {!Par.iter_chunks} run on it.  If the shared
    pool has been shut down, a fresh one is created (and registered for
    shutdown at exit) rather than returning the stopped instance —
    otherwise every later parallel map would silently run
    sequentially. *)
val default : unit -> t

(** [map ?chunks t f arr] — the deterministic parallel map.  [f] must
    be pure/thread-safe; it is applied exactly once per element, on
    whichever domain (worker or caller) claims the element's chunk.
    [chunks] controls the split granularity (default [size t + 1],
    clamped to the array length); it affects scheduling only, never the
    result. *)
val map : ?chunks:int -> t -> ('a -> 'b) -> 'a array -> 'b array

(** [iter_chunks ?chunks t f n] runs [f lo hi] over a partition of
    [0..n-1] into contiguous chunks (default [size t + 1] of them),
    in parallel on the pool.  [n <= 0] is a no-op. *)
val iter_chunks : ?chunks:int -> t -> (int -> int -> unit) -> int -> unit

(** [shutdown t] stops the workers after the queue drains and joins
    their domains.  Idempotent; safe to call with batches in flight
    (they complete first). *)
val shutdown : t -> unit
