(* Reproduction of every table and figure of the paper's evaluation
   (§6), plus the ablations indexed in DESIGN.md.  Each section prints
   a banner, the measured rows, and — where the paper reports numbers —
   the paper's values for comparison.  Absolute values differ (our
   counter mapping is our own, see EXPERIMENTS.md); the claims under
   test are the orderings and rough factors. *)

open Hr_core
module Rng = Hr_util.Rng
module T = Hr_util.Tablefmt
module Shyra = Hr_shyra
module W = Hr_workload

let section = T.section

let pct x base = Printf.sprintf "%.1f%%" (100. *. float_of_int x /. float_of_int base)

(* The one counter run every §6 section shares. *)
let counter_run = lazy (Shyra.Counter.build ~init:0 ~bound:10 ())

let counter_trace mode =
  Shyra.Tracer.trace ~mode (Lazy.force counter_run).Shyra.Counter.program

let mode_name = function
  | Shyra.Tracer.Diff -> "bit-diff"
  | Shyra.Tracer.Field_diff -> "field-diff"
  | Shyra.Tracer.In_use -> "in-use"

let all_modes = [ Shyra.Tracer.Diff; Shyra.Tracer.Field_diff; Shyra.Tracer.In_use ]

let ga_seed = 2004

(* All PHC solving below goes through the registry: build a Problem,
   name a backend.  Model-specific analyses (DAG nodes, changeover,
   private globals, online policies, ...) keep their own modules. *)
let solve ?params ?mode name oracle =
  Solver_registry.solve ~seed:ga_seed name (Problem.make ?params ?mode oracle)

(* ------------------------------------------------------------------ *)
(* F1: the SHyRA architecture (paper Fig. 1).                          *)

let fig1 () =
  section "F1  SHyRA architecture (paper Fig. 1)";
  print_string
    {|
            +-----------+      +------+      +-------------+
  r0..r9 -->| 10:6 MUX  |--+-->| LUT1 |--+-->|  2:10 DeMUX |--> r0..r9
            | (24 bits) |  |   |(8bit)|  |   |   (8 bits)  |
            |           |--+-->| LUT2 |--+-->|             |
            +-----------+      |(8bit)|      +-------------+
                               +------+
       register file: 10 x 1 bit   total configuration: 48 bits
|};
  T.print
    ~header:[ "unit"; "task"; "config bits"; "bit range"; "v_j (special case)" ]
    [
      [ "LUT1"; "T1"; "8"; "0-7"; "8" ];
      [ "LUT2"; "T2"; "8"; "8-15"; "8" ];
      [ "DeMUX"; "T3"; "8"; "16-23"; "8" ];
      [ "MUX"; "T4"; "24"; "24-47"; "24" ];
      [ "(single task)"; "T1"; "48"; "0-47"; "48" ];
    ]

(* ------------------------------------------------------------------ *)
(* T0: the traced counter run.                                         *)

let t0 () =
  section "T0  4-bit counter trace (paper: n = 110 reconfigurations)";
  let run = Lazy.force counter_run in
  Printf.printf
    "application: 4-bit counter, initial value 0000, upper bound 1010 (10)\n";
  Printf.printf "increments performed: %d; final value: %d\n"
    run.Shyra.Counter.iterations
    (Shyra.Machine.read_nibble run.Shyra.Counter.final 0);
  let rows =
    List.map
      (fun mode ->
        let trace = counter_trace mode in
        let s = Hr_util.Stats.summarize (Hr_util.Stats.of_ints (Trace.sizes trace)) in
        [
          mode_name mode;
          string_of_int (Trace.length trace);
          Printf.sprintf "%.1f" s.Hr_util.Stats.mean;
          Printf.sprintf "%.0f" s.Hr_util.Stats.min;
          Printf.sprintf "%.0f" s.Hr_util.Stats.max;
        ])
      all_modes
  in
  T.print ~header:[ "trace mode"; "n"; "avg |req|"; "min"; "max" ] rows;
  print_newline ();
  List.iter
    (fun mode ->
      Format.printf "%-10s %a@." (mode_name mode) Trace_stats.pp
        (Trace_stats.analyze (counter_trace mode)))
    all_modes;
  Printf.printf
    "\npaper: n = 110 under the authors' (unpublished) counter mapping; ours is\n\
     84 = 11 compare phases x 4 + 10 increment phases x 4.  field-diff is the\n\
     reproduction's primary mode (word-granular reconfiguration port).\n"

(* ------------------------------------------------------------------ *)
(* Shared solvers for the headline experiment.                         *)

type headline = {
  mode : Shyra.Tracer.mode;
  n : int;
  disabled : int;
  single : Solution.t;
  multi : Solution.t;
  lower_bound : int;  (* max over tasks of the solo optimum *)
}

let headline_for mode =
  let trace = counter_trace mode in
  let n = Trace.length trace in
  let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
  let single = solve "st-dp" (Shyra.Tasks.oracle trace Shyra.Tasks.single_task) in
  let problem = Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  let multi = Solver_registry.solve ~seed:ga_seed "ga-polish" problem in
  let lower_bound =
    (* Each task must pay at least its own solo optimum; the max-coupled
       machine can never beat the costliest solo task. *)
    List.fold_left max 0
      (List.init (Problem.m problem) (fun j ->
           (Solver_registry.solve "st-dp" (Problem.task problem j)).Solution.cost))
  in
  { mode; n; disabled; single; multi; lower_bound }

let headlines = lazy (List.map headline_for all_modes)

let primary () =
  List.find (fun h -> h.mode = Shyra.Tracer.Field_diff) (Lazy.force headlines)

(* ------------------------------------------------------------------ *)
(* F2: hypercontexts over time.                                        *)

let fig2 () =
  section "F2  hypercontext sequences & hyperreconfiguration instants (paper Fig. 2)";
  let h = primary () in
  let trace = counter_trace h.mode in
  let unit_masks =
    List.map
      (fun p -> (p.Shyra.Tasks.name, p.Shyra.Tasks.mask))
      (Array.to_list Shyra.Tasks.four_tasks)
  in
  let single_ts = Shyra.Tasks.split trace Shyra.Tasks.single_task in
  Printf.printf "-- single task case (optimal plan, %d hyperreconfigurations) --\n"
    (List.length (Solution.task_breaks h.single 0));
  print_string (Hr_viz.Figures.fig2_units single_ts h.single.Solution.bp ~unit_masks);
  let multi_ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  Printf.printf "\n-- multiple task case (GA plan, %d partial hyperreconfiguration steps) --\n"
    (Solution.num_break_steps h.multi);
  print_string (Hr_viz.Figures.fig2 multi_ts h.multi.Solution.bp);
  Printf.printf "\n-- same plan, the paper's exact legend --\n";
  print_string (Hr_viz.Figures.fig2_paper multi_ts h.multi.Solution.bp)

(* ------------------------------------------------------------------ *)
(* F3: which tasks hyperreconfigure at each partial step.              *)

let fig3 () =
  section "F3  partial hyperreconfigurations per task (paper Fig. 3)";
  let h = primary () in
  let trace = counter_trace h.mode in
  let multi_ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  print_string (Hr_viz.Figures.fig3 multi_ts h.multi.Solution.bp);
  Format.printf "plan shape: %a@." Bp_analysis.pp
    (Bp_analysis.analyze h.multi.Solution.bp);
  Printf.printf
    "\npaper: 50 partial hyperreconfiguration steps; since l1 = l2 = l3 and\n\
     hyperreconfigurations are task parallel, either all four tasks or\n\
     T1..T3 hyperreconfigure together.  The same max-coupling drives our\n\
     plans: a step that hyperreconfigures the MUX (v = 24) makes the three\n\
     8-switch tasks free riders.\n"

(* ------------------------------------------------------------------ *)
(* T1: the headline cost table.                                        *)

let t1 () =
  section "T1  total (hyper)reconfiguration costs (paper, in-text table)";
  List.iter
    (fun h ->
      Printf.printf "\ntrace mode: %s (n = %d)\n" (mode_name h.mode) h.n;
      T.print
        ~header:[ "machine"; "cost"; "% of disabled"; "hyperreconf steps" ]
        [
          [ "disabled"; string_of_int h.disabled; "100.0%"; "0" ];
          [
            "single task (optimal)";
            string_of_int h.single.Solution.cost;
            pct h.single.Solution.cost h.disabled;
            string_of_int (List.length (Solution.task_breaks h.single 0));
          ];
          [
            "four tasks (GA+polish)";
            string_of_int h.multi.Solution.cost;
            pct h.multi.Solution.cost h.disabled;
            string_of_int (Solution.num_break_steps h.multi);
          ];
          [
            "four tasks lower bound";
            string_of_int h.lower_bound;
            pct h.lower_bound h.disabled;
            "-";
          ];
        ])
    (Lazy.force headlines);
  Printf.printf
    "\npaper (n = 110): disabled 5280; single task 3761 (71.2%%, 30\n\
     hyperreconfigurations); multiple tasks 2813 (53.3%%, 50 partial\n\
     hyperreconfiguration steps).  Claim under test: multi < single <\n\
     disabled — it holds in every trace mode above.\n"

(* ------------------------------------------------------------------ *)
(* A1: optimizer ablation on the counter instance.                     *)

let a1 () =
  section "A1  optimizer comparison (four-task counter instance, field-diff)";
  let h = primary () in
  let trace = counter_trace h.mode in
  let problem = Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  let sols =
    List.map
      (fun s -> Solver.solve ~seed:ga_seed s problem)
      (Solver_registry.applicable problem)
  in
  let rows =
    List.map
      (fun sol ->
        [
          sol.Solution.solver;
          Solver.kind_name (Solver_registry.find_exn sol.Solution.solver).Solver.kind;
          string_of_int sol.Solution.cost;
        ])
      sols
    @ [ [ "lower bound (max solo)"; "-"; string_of_int h.lower_bound ] ]
  in
  T.print ~header:[ "solver"; "kind"; "cost" ] rows;
  let best = Solution.best sols in
  if best.Solution.cost = h.lower_bound then
    Printf.printf
      "\n%s meets the per-task lower bound, so its plan is provably optimal\n\
       for this instance.\n"
      best.Solution.solver

(* ------------------------------------------------------------------ *)
(* A2: sensitivity to the hyperreconfiguration cost v.                 *)

let a2 () =
  section "A2  sweep of the hyperreconfiguration cost scale (v_j = scale * l_j)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let n = Trace.length trace in
  let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
  let scale_v num den ts =
    Task_set.make
      (Array.map
         (fun t -> { t with Task_set.v = max 0 (t.Task_set.v * num / den) })
         (Task_set.tasks ts))
  in
  let rows =
    List.map
      (fun (num, den) ->
        let single_ts = scale_v num den (Shyra.Tasks.split trace Shyra.Tasks.single_task) in
        let single = solve "st-dp" (Interval_cost.of_task_set single_ts) in
        let multi_ts = scale_v num den (Shyra.Tasks.split trace Shyra.Tasks.four_tasks) in
        let ga = solve "ga" (Interval_cost.of_task_set multi_ts) in
        [
          Printf.sprintf "%g" (float_of_int num /. float_of_int den);
          string_of_int single.Solution.cost;
          string_of_int (List.length (Solution.task_breaks single 0));
          string_of_int ga.Solution.cost;
          string_of_int (Solution.num_break_steps ga);
          pct ga.Solution.cost disabled;
        ])
      [ (1, 8); (1, 4); (1, 2); (1, 1); (2, 1); (4, 1) ]
  in
  T.print
    ~header:
      [ "v scale"; "single cost"; "single breaks"; "multi cost"; "multi steps"; "multi %" ]
    rows;
  Printf.printf
    "\ncheaper hyperreconfigurations => more of them (the paper's 30/50 counts\n\
     correspond to a small effective v under its unpublished mapping); costlier\n\
     ones push both machines toward a single static hypercontext.\n"

(* ------------------------------------------------------------------ *)
(* A3: synthetic multi-task workloads, scaling with m.                 *)

let a3 () =
  section "A3  synthetic phased workloads: scaling with the number of tasks";
  let rows =
    List.concat_map
      (fun correlated ->
        List.map
          (fun m ->
            let local_sizes = Array.init m (fun j -> if j = m - 1 then 24 else 8) in
            let spec =
              { W.Multi_gen.default_spec with W.Multi_gen.m; n = 96; local_sizes }
            in
            let gen = if correlated then W.Multi_gen.correlated else W.Multi_gen.independent in
            let ts = gen (Rng.create 7) spec in
            let disabled =
              Sync_cost.disabled_cost ~n:96
                ~machine_width:(Task_set.total_local_switches ts) ()
            in
            let ga = solve "ga" (Interval_cost.of_task_set ts) in
            [
              (if correlated then "correlated" else "independent");
              string_of_int m;
              string_of_int disabled;
              string_of_int ga.Solution.cost;
              pct ga.Solution.cost disabled;
            ])
          [ 1; 2; 4; 6 ])
      [ true; false ]
  in
  T.print ~header:[ "phases"; "m"; "disabled"; "GA cost"; "%" ] rows;
  Printf.printf
    "\nnote: under task-parallel upload the per-step cost is a max across tasks,\n\
     so the relative saving survives as m grows — partial hyperreconfiguration\n\
     scales to many tasks.\n"

(* ------------------------------------------------------------------ *)
(* A4: the DAG cost model.                                             *)

let a4 () =
  section "A4  DAG cost model: optimal DP vs online greedy vs static top";
  let rows =
    List.map
      (fun seed ->
        let model, seq = W.Dag_gen.instance (Rng.create seed) W.Dag_gen.default_spec in
        let opt = St_dag_opt.solve model seq in
        let greedy = St_dag_opt.greedy model seq in
        let top =
          let costs =
            List.init (Dag_model.num_nodes model) (fun h ->
                (Dag_model.node model h).Dag_model.cost)
          in
          Dag_model.w model + (List.fold_left max 0 costs * Array.length seq)
        in
        [
          string_of_int seed;
          string_of_int opt.St_dag_opt.cost;
          string_of_int (List.length opt.St_dag_opt.breaks);
          string_of_int greedy.St_dag_opt.cost;
          string_of_int top;
          pct opt.St_dag_opt.cost top;
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  T.print
    ~header:[ "seed"; "optimal"; "hyperreconfs"; "greedy"; "static top"; "opt % of top" ]
    rows

(* ------------------------------------------------------------------ *)
(* A5: the changeover-cost variant.                                    *)

let a5 () =
  section "A5  changeover-cost variant (init = w + |h (+) h'|) on the counter trace";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let rows =
    List.map
      (fun w ->
        let union = St_changeover.solve_union ~w trace in
        let refined = St_changeover.refine ~w trace union in
        [
          string_of_int w;
          string_of_int union.St_changeover.cost;
          string_of_int (List.length union.St_changeover.breaks);
          string_of_int refined.St_changeover.cost;
          (if refined.St_changeover.cost < union.St_changeover.cost then "yes" else "no");
        ])
      [ 0; 4; 12; 24; 48 ]
  in
  T.print
    ~header:[ "w"; "union DP"; "blocks"; "after refine"; "refinement helped" ]
    rows;
  Printf.printf
    "\nunder changeover costs the minimal (union) hypercontext is not always\n\
     optimal — carrying a switch through a short block can beat dropping and\n\
     re-adding it (see the test suite for a certified instance).\n"

(* ------------------------------------------------------------------ *)
(* A6: task-parallel vs task-sequential uploads (§4.2).                *)

let a6 () =
  section "A6  upload modes on the four-task counter instance (paper §4.2)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let oracle = Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks in
  let rows =
    List.map
      (fun (hname, hyper, rname, reconf) ->
        let params = { Sync_cost.default_params with Sync_cost.hyper; reconf } in
        let ga = solve ~params "ga" oracle in
        [ hname; rname; string_of_int ga.Solution.cost ])
      [
        ("parallel", Sync_cost.Task_parallel, "parallel", Sync_cost.Task_parallel);
        ("parallel", Sync_cost.Task_parallel, "sequential", Sync_cost.Task_sequential);
        ("sequential", Sync_cost.Task_sequential, "parallel", Sync_cost.Task_parallel);
        ("sequential", Sync_cost.Task_sequential, "sequential", Sync_cost.Task_sequential);
      ]
  in
  T.print ~header:[ "hyper upload"; "reconf upload"; "GA cost" ] rows;
  Printf.printf
    "\nsequential uploads replace the max across tasks by a sum (paper §4.2), so\n\
     they always cost at least as much as their parallel counterparts.\n"

(* ------------------------------------------------------------------ *)
(* A7: private global resources.                                       *)

let a7 () =
  section "A7  private global resources (I/O-unit sharing, paper §3-§4)";
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.n = 60 } in
  let ts = W.Multi_gen.correlated (Rng.create 11) spec in
  let demands = W.Multi_gen.priv_demands (Rng.create 12) ts ~g_peak:6 in
  let tasks =
    Array.mapi
      (fun j t ->
        {
          Mt_priv.name = t.Task_set.name;
          local_trace = t.Task_set.trace;
          priv_demand = demands.(j);
        })
      (Task_set.tasks ts)
  in
  let rows =
    List.filter_map
      (fun g_total ->
        match
          let inst = Mt_priv.make ~g_total ~w:60 tasks in
          Mt_priv.solve inst
        with
        | exception Invalid_argument _ ->
            Some [ string_of_int g_total; "-"; "infeasible" ]
        | plan ->
            Some
              [
                string_of_int g_total;
                string_of_int (List.length plan.Mt_priv.segments);
                string_of_int plan.Mt_priv.cost;
              ])
      [ 24; 16; 12; 10; 8 ]
  in
  T.print ~header:[ "g_total"; "global segments"; "total cost" ] rows;
  Printf.printf
    "\na tighter private-global budget forces more global hyperreconfigurations\n\
     (each costing w and re-synchronizing every task) to reassign the shared\n\
     units between workload phases.\n"

(* ------------------------------------------------------------------ *)
(* A8: exact DP certification on a counter prefix.                     *)

let a8 () =
  section "A8  exact DP (Theorem 1) certifies the GA on a counter prefix";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let prefix = Trace.sub trace 0 13 in
  let oracle = Shyra.Tasks.oracle prefix Shyra.Tasks.four_tasks in
  let exact = solve "mt-dp" oracle in
  let ga = solve "ga" oracle in
  let states =
    Option.value (List.assoc_opt "states" exact.Solution.stats) ~default:"-"
  in
  T.print
    ~header:[ "solver"; "cost"; "exact"; "states explored" ]
    [
      [
        "mt-dp (Theorem 1)";
        string_of_int exact.Solution.cost;
        string_of_bool exact.Solution.exact;
        states;
      ];
      [ "ga"; string_of_int ga.Solution.cost; "-"; "-" ];
    ];
  if ga.Solution.cost = exact.Solution.cost then
    print_string "\nthe GA matches the exact optimum on the 14-step prefix.\n"
  else
    Printf.printf "\nGA gap on the prefix: %d vs exact %d.\n" ga.Solution.cost
      exact.Solution.cost

(* ------------------------------------------------------------------ *)
(* A9: the three machine classes of §3.                                *)

let a9 () =
  section "A9  machine classes: all-task vs partial hyperreconfiguration (paper §3)";
  Printf.printf
    "partially reconfigurable machines can hyperreconfigure only all tasks at\n\
     a time (exact polynomial optimum via the combined single-task DP);\n\
     partially hyperreconfigurable machines lift that restriction.\n\n";
  let rows =
    List.map
      (fun (name, oracle) ->
        let all_task, partial =
          Mt_classes.advantage ~rng:(Rng.create ga_seed) oracle
        in
        [
          name;
          string_of_int all_task;
          string_of_int partial;
          pct partial all_task;
        ])
      [
        ( "counter (field-diff)",
          Shyra.Tasks.oracle (counter_trace Shyra.Tracer.Field_diff)
            Shyra.Tasks.four_tasks );
        ( "counter (bit-diff)",
          Shyra.Tasks.oracle (counter_trace Shyra.Tracer.Diff) Shyra.Tasks.four_tasks );
        ( "synthetic independent",
          Interval_cost.of_task_set
            (W.Multi_gen.independent (Rng.create 7)
               { W.Multi_gen.default_spec with W.Multi_gen.n = 96 }) );
        ( "synthetic heterogeneous v",
          (let spec = { W.Multi_gen.default_spec with W.Multi_gen.n = 96 } in
           let ts = W.Multi_gen.independent (Rng.create 9) spec in
           let tasks = Task_set.tasks ts in
           tasks.(0) <- { (tasks.(0)) with Task_set.v = 2 };
           tasks.(1) <- { (tasks.(1)) with Task_set.v = 64 };
           Interval_cost.of_task_set (Task_set.make tasks)) );
      ]
  in
  T.print
    ~header:[ "instance"; "all-task (exact)"; "partial (GA)"; "partial % of all-task" ]
    rows;
  Printf.printf
    "\nunder task-parallel uploads the classes tie unless the v_j are\n\
     heterogeneous or phases are staggered — then partial hyperreconfiguration\n\
     wins, which is the paper's motivation for introducing it.\n"

(* ------------------------------------------------------------------ *)
(* A10: multi-task changeover variant.                                 *)

let a10 () =
  section "A10 multi-task changeover costs (init = v_j + |h (+) h'|)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  let oracle = Interval_cost.of_task_set ts in
  let plain = solve "ga" oracle in
  let change = Mt_changeover.solve ~rng:(Rng.create ga_seed) ts in
  let plain_under_changeover = Mt_changeover.cost_of ts plain.Solution.bp in
  T.print
    ~header:[ "plan optimized for"; "plain cost"; "changeover cost" ]
    [
      [
        "plain model";
        string_of_int plain.Solution.cost;
        string_of_int plain_under_changeover;
      ];
      [
        "changeover model";
        string_of_int (Sync_cost.eval oracle change.Mt_changeover.bp);
        string_of_int change.Mt_changeover.cost;
      ];
    ];
  Printf.printf
    "\nchangeover-aware planning trades slightly larger hypercontexts for\n\
     cheaper difference loads; the gap quantifies what difference-based\n\
     configuration ports buy.\n"

(* ------------------------------------------------------------------ *)
(* A11: application portfolio on SHyRA.                                *)

let a11 () =
  section "A11 application portfolio on SHyRA (field-diff traces)";
  let apps =
    [
      ("counter 0->10", (Lazy.force counter_run).Shyra.Counter.program);
      ("rule90 x8 steps", Shyra.Rule90.build ~steps:8);
      ("lfsr x15 steps", Shyra.Lfsr.build ~steps:15);
      ("adder sum of 4", fst (Shyra.Serial_adder.sum_program [ 3; 9; 12; 7 ]));
      ("parity", Shyra.Parity.build ());
      ("gray", Shyra.Gray.build ());
    ]
  in
  let rows =
    List.map
      (fun (name, program) ->
        let trace = Shyra.Tracer.trace program in
        let n = Trace.length trace in
        let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
        let single = solve "st-dp" (Shyra.Tasks.oracle trace Shyra.Tasks.single_task) in
        let ga = solve "ga" (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
        [
          name;
          string_of_int n;
          string_of_int disabled;
          string_of_int single.Solution.cost;
          pct single.Solution.cost disabled;
          string_of_int ga.Solution.cost;
          pct ga.Solution.cost disabled;
        ])
      apps
  in
  T.print
    ~header:[ "application"; "n"; "disabled"; "single"; "%"; "multi (GA)"; "%" ]
    rows;
  Printf.printf
    "\nthe benefit of (partial) hyperreconfiguration tracks trace regularity:\n\
     loop-structured applications (rule90, lfsr, adder) reconfigure the same\n\
     fields every iteration and profit most.\n"

(* ------------------------------------------------------------------ *)
(* A12: the price of synchronization (§4.1 vs §4.2).                   *)

let a12 () =
  section "A12 synchronized vs non-synchronized machines (paper §4.1 vs §4.2)";
  let rows =
    List.map
      (fun (name, oracle) ->
        let async = solve ~mode:Mixed_sync.Non_synchronized "async-opt" oracle in
        let sync = (solve "ga-polish" oracle).Solution.cost in
        [
          name;
          string_of_int async.Solution.cost;
          string_of_int sync;
          Printf.sprintf "%.2fx"
            (float_of_int sync /. float_of_int (max 1 async.Solution.cost));
        ])
      [
        ( "counter (field-diff)",
          Shyra.Tasks.oracle (counter_trace Shyra.Tracer.Field_diff)
            Shyra.Tasks.four_tasks );
        ( "synthetic correlated",
          Interval_cost.of_task_set
            (W.Multi_gen.correlated (Rng.create 7)
               { W.Multi_gen.default_spec with W.Multi_gen.n = 96 }) );
        ( "synthetic independent",
          Interval_cost.of_task_set
            (W.Multi_gen.independent (Rng.create 7)
               { W.Multi_gen.default_spec with W.Multi_gen.n = 96 }) );
        ( "anti-correlated pair",
          (* Task A is demanding while B idles and vice versa: the
             barrier makes each wait for the other's busy phase. *)
          (let space = Switch_space.make 8 in
           let busy = List.init 8 Fun.id and idle = [ 0 ] in
           let half = 48 in
           let reqs_a = List.init (2 * half) (fun i -> if i < half then busy else idle) in
           let reqs_b = List.init (2 * half) (fun i -> if i < half then idle else busy) in
           Interval_cost.of_task_set
             (Task_set.make
                [|
                  Task_set.task ~name:"A" (Trace.of_lists space reqs_a);
                  Task_set.task ~name:"B" (Trace.of_lists space reqs_b);
                |])) );
      ]
  in
  T.print
    ~header:
      [ "instance"; "async optimum (exact)"; "fully sync (GA)"; "sync penalty" ]
    rows;
  Printf.printf
    "\non a non-synchronized machine the tasks decouple and the machine time is\n\
     the bottleneck task's solo optimum (exactly solvable); barrier semantics\n\
     make every task wait for the per-step maxima.\n"

(* ------------------------------------------------------------------ *)
(* A13: all four synchronization modes (§3).                           *)

let a13 () =
  section "A13 synchronization modes on the same plan (paper §3)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let oracle = Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks in
  let ga = solve "ga" oracle in
  let rows =
    List.map
      (fun mode ->
        [
          Format.asprintf "%a" Mixed_sync.pp_mode mode;
          string_of_int (Mixed_sync.eval ~mode oracle ga.Solution.bp);
        ])
      [
        Mixed_sync.Non_synchronized;
        Mixed_sync.Hypercontext_synchronized;
        Mixed_sync.Context_synchronized;
        Mixed_sync.Fully_synchronized;
      ]
  in
  T.print ~header:[ "synchronization mode"; "cost of the GA plan" ] rows;
  Printf.printf
    "\nmore barriers mean less overlap: the §3 modes order the cost of any\n\
     fixed plan (a property the test suite checks on random instances).\n"

(* ------------------------------------------------------------------ *)
(* A14: online policies and their competitive ratios.                  *)

let a14 () =
  section "A14 online hyperreconfiguration policies (data-dependent demands, §2)";
  let traces =
    [
      ("counter (field-diff)", counter_trace Shyra.Tracer.Field_diff);
      ( "phased synthetic",
        W.Synthetic.phased (Rng.create 5)
          (Switch_space.make 48)
          (List.init 6 (fun _ ->
               W.Synthetic.phase (Rng.create 6) ~space:(Switch_space.make 48) ~len:20
                 ~active_fraction:0.25 ~density:0.5)) );
      ( "uniform random",
        W.Synthetic.uniform (Rng.create 7) (Switch_space.make 48) ~n:120 ~density:0.3 );
    ]
  in
  let v = 48 in
  let rows =
    List.concat_map
      (fun (name, trace) ->
        List.map
          (fun policy ->
            let cost, switches = Online.run policy ~v trace in
            [
              name;
              policy.Online.name;
              string_of_int cost;
              string_of_int switches;
              Printf.sprintf "%.2f" (Online.competitive_ratio policy ~v trace);
            ])
          (Online.all ~v ~universe:48))
      traces
  in
  T.print
    ~header:[ "trace"; "policy"; "cost"; "switches"; "vs offline optimum" ]
    rows;
  Printf.printf
    "\nno policy can see the future ('the actual demand ... cannot be determined\n\
     exactly in advance', paper §2); rent-or-buy keeps the worst-case ratio\n\
     small while eager/lazy each lose badly on one of the trace shapes.\n"

(* ------------------------------------------------------------------ *)
(* A15: hypercontext descriptor encodings.                             *)

let a15 () =
  section "A15 hypercontext descriptor encodings (what init(h) is made of)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let rows =
    List.map
      (fun enc ->
        [
          Descriptor.name enc;
          (if Descriptor.monotone enc then "yes" else "no");
          string_of_int (Descriptor.plan_cost enc trace);
        ])
      [ Descriptor.Bitmap; Descriptor.Sparse; Descriptor.Run_length ]
  in
  T.print ~header:[ "encoding"; "monotone"; "optimal single-task cost" ] rows;
  Printf.printf
    "\nbitmap reproduces the paper's constant w = |X|; cheaper descriptors make\n\
     hyperreconfiguration pay sooner.  run-length is non-monotone — the regime\n\
     where the general model's NP-hardness lives (only union-plan optimal\n\
     shown; see General_opt).\n"

(* ------------------------------------------------------------------ *)
(* A16: port occupancy of the headline plan.                           *)

let a16 () =
  section "A16 per-task port occupancy of the multi-task plan";
  let h = primary () in
  let trace = counter_trace h.mode in
  let oracle = Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks in
  let tl = Hr_viz.Timeline.make oracle h.multi.Solution.bp in
  print_string
    (Hr_viz.Timeline.render ~names:[| "LUT1"; "LUT2"; "DeMUX"; "MUX" |] tl);
  Printf.printf
    "\nthe MUX task is the bottleneck (utilization near 100%%); the three 8-switch\n\
     tasks idle most of each step — the max-coupling that makes them free\n\
     riders in Fig. 3.\n"

(* ------------------------------------------------------------------ *)
(* A17: the second architecture — a reconfigurable mesh.               *)

let a17 () =
  section "A17 second architecture: reconfigurable mesh (paper §4.2's example)";
  let module M = Hr_rmesh in
  let workloads =
    [
      ( "counting stream, phased",
        M.Algos.counting_stream ~phase_len:16 ~active_fraction:0.3 (Rng.create 3)
          ~bits:8 ~words:64 );
      ( "counting stream, random",
        M.Algos.counting_stream (Rng.create 3) ~bits:8 ~words:64 );
      ( "rotating broadcast",
        (let grid = M.Grid.create ~rows:6 ~cols:6 in
         (grid, M.Algos.rotating_broadcast grid ~steps:48)) );
    ]
  in
  let rows =
    List.map
      (fun (name, (grid, program)) ->
        let trace = M.Mesh_tracer.trace grid program in
        let n = Trace.length trace in
        let width = Switch_space.size (Trace.space trace) in
        let disabled = Sync_cost.disabled_cost ~n ~machine_width:width () in
        let single =
          solve "st-dp" (Interval_cost.of_task_set (Task_split.single trace))
        in
        let ga =
          solve "ga" (Task_split.oracle trace (M.Mesh_tracer.row_bands grid ~bands:3))
        in
        [
          name;
          Printf.sprintf "%dx%d" (M.Grid.rows grid) (M.Grid.cols grid);
          string_of_int n;
          string_of_int disabled;
          Printf.sprintf "%d (%s)" single.Solution.cost
            (pct single.Solution.cost disabled);
          Printf.sprintf "%d (%s)" ga.Solution.cost (pct ga.Solution.cost disabled);
        ])
      workloads
  in
  T.print
    ~header:[ "workload"; "mesh"; "n"; "disabled"; "single task"; "3 row-band tasks (GA)" ]
    rows;
  Printf.printf
    "\nthe mesh reproduces the paper's effect on a second fabric: phase-structured\n\
     streams profit from (partial) hyperreconfiguration, structure-free random\n\
     streams do not — the shape, not the substrate, is what matters.\n"

(* ------------------------------------------------------------------ *)
(* A18: which task decomposition of the fabric is best?                *)

let a18 () =
  section "A18 task-decomposition search: all 15 groupings of the SHyRA units";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let units =
    Array.map
      (fun p -> { Split_search.name = p.Shyra.Tasks.name; mask = p.Shyra.Tasks.mask })
      Shyra.Tasks.four_tasks
  in
  let ranked = Split_search.search trace units in
  let show c =
    String.concat " | " (List.map (String.concat "+") c.Split_search.grouping)
  in
  let rows =
    List.map
      (fun c -> [ show c; string_of_int c.Split_search.tasks; string_of_int c.Split_search.cost ])
      ranked
  in
  T.print ~header:[ "grouping"; "tasks"; "cost" ] rows;
  Printf.printf
    "\nthe paper's four-unit split is one point in this design space; under\n\
     max-coupled task-parallel costs the ranking is driven by how well the\n\
     grouping isolates the dominant (MUX) demand.\n"

(* ------------------------------------------------------------------ *)
(* A19: self-reconfiguring FSMs (related work [8] realized on SHyRA).  *)

let a19 () =
  section "A19 self-reconfiguring FSM workloads (cf. paper ref. [8])";
  let rng = Rng.create 31 in
  let dwell =
    (* Long runs of 0s with occasional 1-bursts: the FSM dwells in few
       states, so reconfiguration demand is phase-structured. *)
    List.init 96 (fun i -> i mod 16 >= 13 || Rng.chance rng 0.08)
  in
  let random = List.init 96 (fun _ -> Rng.bool rng) in
  let rows =
    List.map
      (fun (name, inputs) ->
        let program, _ = Shyra.Fsm.run Shyra.Fsm.detector_101 inputs in
        let trace = Shyra.Tracer.trace program in
        let n = Trace.length trace in
        let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
        let single = solve "st-dp" (Shyra.Tasks.oracle trace Shyra.Tasks.single_task) in
        let multi = solve "ga" (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
        [
          name;
          string_of_int n;
          Printf.sprintf "%.2f"
            (Trace_stats.analyze trace).Trace_stats.mean_jaccard;
          Printf.sprintf "%d (%s)" single.Solution.cost
            (pct single.Solution.cost disabled);
          Printf.sprintf "%d (%s)" multi.Solution.cost
            (pct multi.Solution.cost disabled);
        ])
      [ ("dwelling input", dwell); ("random input", random) ]
  in
  T.print
    ~header:[ "input stream"; "n"; "jaccard"; "single task"; "four tasks (GA)" ]
    rows;
  Printf.printf
    "\nthe FSM reconfigures its next-state logic per state (self-reconfiguration,\n\
     ref. [8]); input streams that dwell in few states yield regular traces and\n\
     deeper hyperreconfiguration savings.\n"

(* ------------------------------------------------------------------ *)
(* A20: hyperreconfiguration budgets (anytime tradeoff).               *)

let a20 () =
  section "A20 bounded hyperreconfiguration budgets (single task, field-diff)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let ru = Range_union.make trace in
  let step_cost lo hi = Range_union.size ru lo hi in
  let n = Trace.length trace in
  let rows =
    List.map
      (fun k ->
        let r = St_opt.solve_bounded ~v:48 ~n ~step_cost ~max_blocks:k in
        [
          string_of_int k;
          string_of_int r.St_opt.cost;
          string_of_int (List.length r.St_opt.breaks);
        ])
      [ 1; 2; 3; 4; 6; 8; 16 ]
  in
  T.print ~header:[ "budget (max blocks)"; "optimal cost"; "blocks used" ] rows;
  Printf.printf
    "\nthe unconstrained optimum needs only 3 hyperreconfigurations here, so the\n\
     curve flattens immediately — a cheap control plane suffices.\n"

(* ------------------------------------------------------------------ *)
(* A21: heterogeneous switch costs.                                    *)

let a21 () =
  section "A21 weighted switches (heterogeneous configuration-bit costs)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  let weight_sets =
    [
      ("uniform", fun _ _ -> 1);
      (* Routing bits are slower to load than LUT bits. *)
      ("MUX bits x3", fun j _ -> if j = 3 then 3 else 1);
      (* LUT bits are slower. *)
      ("LUT bits x3", fun j _ -> if j <= 1 then 3 else 1);
    ]
  in
  let rows =
    List.map
      (fun (name, weight) ->
        let weights =
          Array.mapi
            (fun j t ->
              Array.init
                (Switch_space.size (Trace.space t.Task_set.trace))
                (weight j))
            (Task_set.tasks ts)
        in
        let problem = Problem.make (Weighted.oracle ts ~weights) in
        let local = Solver_registry.solve ~seed:ga_seed "hill-climb" problem in
        let solos =
          List.init 4 (fun j ->
              (Solver_registry.solve "st-dp" (Problem.task problem j)).Solution.cost)
        in
        [
          name;
          string_of_int local.Solution.cost;
          string_of_int (List.fold_left max 0 solos);
        ])
      weight_sets
  in
  T.print ~header:[ "weighting"; "multi-task cost"; "lower bound" ] rows;
  Printf.printf
    "\nweights re-rank the tasks: pricing MUX bits higher deepens its dominance,\n\
     pricing LUT bits higher lets the other tasks surface in the max terms.\n"

(* ------------------------------------------------------------------ *)
(* A22: Markov-modulated workloads.                                    *)

let a22 () =
  section "A22 Markov-modulated phases: savings vs. dwell time";
  let space = Switch_space.make 48 in
  let rows =
    List.map
      (fun self ->
        let rng = Rng.create 13 in
        let chain = W.Markov.make_chain rng ~space ~states:4 ~self in
        let trace = W.Markov.generate rng chain ~space ~n:120 in
        let stats = Trace_stats.analyze trace in
        let single =
          Solver_registry.solve "st-dp" (Problem.of_trace ~v:48 trace)
        in
        let disabled = Sync_cost.disabled_cost ~n:120 ~machine_width:48 () in
        [
          Printf.sprintf "%.2f" self;
          Printf.sprintf "%.1f" stats.Trace_stats.mean_req;
          Printf.sprintf "%.2f" stats.Trace_stats.mean_jaccard;
          string_of_int single.Solution.cost;
          pct single.Solution.cost disabled;
        ])
      [ 0.25; 0.5; 0.8; 0.9; 0.95; 0.99 ]
  in
  T.print
    ~header:[ "self-transition"; "mean |req|"; "jaccard"; "optimal cost"; "% of disabled" ]
    rows;
  Printf.printf
    "\nstickier chains dwell longer in each phase, and hyperreconfiguration\n\
     savings deepen monotonically with dwell time — the quantitative version of\n\
     the paper's 'computations consist of phases' premise.\n"

(* ------------------------------------------------------------------ *)
(* A23: dynamic task arrival/departure.                                *)

let a23 () =
  section "A23 dynamic multi-task environments (arrivals/departures, global hyperreconfigurations)";
  let rows =
    List.map
      (fun (name, w) ->
        let epochs =
          Mt_dynamic.random_epochs (Rng.create 17) ~width:48 ~epochs:5
            ~steps_per_epoch:16 ~max_tasks:4
        in
        let plan = Mt_dynamic.solve ~w epochs in
        [
          name;
          string_of_int plan.Mt_dynamic.total_cost;
          String.concat "/"
            (List.map string_of_int plan.Mt_dynamic.epoch_task_counts);
        ])
      [ ("w = 0 (free global hyperreconfig)", 0); ("w = 96", 96); ("w = 480", 480) ]
  in
  T.print ~header:[ "global hyperreconfiguration cost"; "total cost"; "tasks per epoch" ] rows;
  Printf.printf
    "\neach epoch boundary re-partitions the fabric's local switches among the\n\
     arriving tasks via a global (all-task, barrier) hyperreconfiguration of\n\
     cost w — the §3 mechanism for changing private ownership.\n"

(* ------------------------------------------------------------------ *)
(* A24: compiled expression workloads.                                 *)

let a24 () =
  section "A24 compiled boolean-expression workloads (automatic time partitioning)";
  let rng = Rng.create 41 in
  let batch =
    (* A batch of related expressions compiled back to back — the
       compiler's scheduler produces the reconfiguration stream. *)
    List.init 12 (fun _ ->
        Shyra.Expr.random rng ~inputs:[ "a"; "b"; "c"; "d" ] ~depth:4)
  in
  let programs = List.map (fun e -> (Shyra.Expr.compile e).Shyra.Expr.program) batch in
  let program =
    List.fold_left Shyra.Program.append (Shyra.Program.of_steps []) programs
  in
  let trace = Shyra.Tracer.trace program in
  let n = Trace.length trace in
  let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
  let single = solve "st-dp" (Shyra.Tasks.oracle trace Shyra.Tasks.single_task) in
  let multi = solve "ga" (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  T.print
    ~header:[ "quantity"; "value" ]
    [
      [ "expressions compiled"; string_of_int (List.length batch) ];
      [ "total reconfiguration steps"; string_of_int n ];
      [ "disabled"; string_of_int disabled ];
      [
        "single task (optimal)";
        Printf.sprintf "%d (%s)" single.Solution.cost
          (pct single.Solution.cost disabled);
      ];
      [
        "four tasks (GA)";
        Printf.sprintf "%d (%s)" multi.Solution.cost
          (pct multi.Solution.cost disabled);
      ];
    ];
  Printf.printf
    "\nthe compiler (CSE + 2-op list scheduling + register allocation) automates\n\
     the paper's hand 'time partitioning'; compiled batches are dense, loop-free\n\
     reconfiguration streams.\n"

(* ------------------------------------------------------------------ *)
(* A25: two applications in parallel (Duo).                            *)

let a25 () =
  section "A25 two applications in parallel on two fabrics (Duo)";
  let rows =
    List.map
      (fun (name, a, b) ->
        let oracle = Shyra.Duo.oracle a b in
        let n = oracle.Interval_cost.n in
        let disabled = Sync_cost.disabled_cost ~n ~machine_width:96 () in
        let plan = solve "ga" oracle in
        let async = solve ~mode:Mixed_sync.Non_synchronized "async-opt" oracle in
        [
          name;
          string_of_int n;
          string_of_int disabled;
          Printf.sprintf "%d (%s)" plan.Solution.cost (pct plan.Solution.cost disabled);
          string_of_int async.Solution.cost;
        ])
      [
        ( "counter + rule90",
          ("counter", (Shyra.Counter.build ~init:0 ~bound:10 ()).Shyra.Counter.program),
          ("rule90", Shyra.Rule90.build ~steps:10) );
        ( "counter + lfsr",
          ("counter", (Shyra.Counter.build ~init:0 ~bound:10 ()).Shyra.Counter.program),
          ("lfsr", Shyra.Lfsr.build ~steps:28) );
      ]
  in
  T.print
    ~header:[ "pair"; "n"; "disabled"; "fully sync (GA)"; "async bound" ]
    rows;
  Printf.printf
    "\ntwo fabrics, one task each: the §3 deployment the multi-task models\n\
     describe.  The async column is the non-synchronized machine's exact\n\
     optimum (bottleneck task).\n"

(* ------------------------------------------------------------------ *)
(* A26: hand-crafted vs compiled counter mapping.                      *)

let a26 () =
  section "A26 counter mappings: hand-crafted vs compiler-generated";
  let hand = (Lazy.force counter_run).Shyra.Counter.program in
  let compiled = Shyra.Counter_compiled.build ~init:0 ~bound:10 () in
  let analyze name program =
    let trace = Shyra.Tracer.trace program in
    let n = Trace.length trace in
    let disabled = Sync_cost.disabled_cost ~n ~machine_width:Shyra.Config.width () in
    let single = solve "st-dp" (Shyra.Tasks.oracle trace Shyra.Tasks.single_task) in
    let multi = solve "ga" (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
    [
      name;
      string_of_int n;
      string_of_int disabled;
      Printf.sprintf "%d (%s)" single.Solution.cost (pct single.Solution.cost disabled);
      Printf.sprintf "%d (%s)" multi.Solution.cost (pct multi.Solution.cost disabled);
    ]
  in
  T.print
    ~header:[ "mapping"; "n"; "disabled"; "single task"; "four tasks (GA)" ]
    [
      analyze "hand-crafted (8 cycles/iter)" hand;
      analyze
        (Printf.sprintf "compiled (%d + %d cycles/iter)"
           compiled.Shyra.Counter_compiled.cycles_per_compare
           compiled.Shyra.Counter_compiled.cycles_per_increment)
        compiled.Shyra.Counter_compiled.program;
    ];
  Printf.printf
    "\nthe same application under two mappings: cycle counts differ (the paper's\n\
     own unpublished mapping needed 110), yet the hyperreconfiguration effect —\n\
     multi < single < disabled — is mapping-independent.\n"

(* ------------------------------------------------------------------ *)
(* A27: plan robustness under demand noise.                            *)

let a27 () =
  section "A27 plan robustness under demand noise (data-dependent demands)";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
  let ga = solve "ga" (Interval_cost.of_task_set ts) in
  let plan = Plan.of_breakpoints ts ga.Solution.bp in
  let rows =
    List.concat_map
      (fun p ->
        let noisy =
          Task_set.make
            (Array.map
               (fun t ->
                 {
                   t with
                   Task_set.trace =
                     Robustness.perturb (Rng.create 55) t.Task_set.trace ~p;
                 })
               (Task_set.tasks ts))
        in
        List.map
          (fun (name, candidate) ->
            let r = Robustness.evaluate noisy candidate in
            [
              Printf.sprintf "%.2f" p;
              name;
              string_of_int r.Robustness.violations;
              string_of_int r.Robustness.actual_cost;
            ])
          [
            ("exact plan", plan);
            ("plan + margin 4", Robustness.margin (Rng.create 56) plan ~extra:4 ~ts);
          ])
      [ 0.0; 0.02; 0.05; 0.1 ]
  in
  T.print ~header:[ "noise p"; "plan"; "violations"; "actual cost" ] rows;
  Printf.printf
    "\nminimal hypercontexts are fragile under demand noise (every escape forces\n\
     an emergency hyperreconfiguration); planning with a small margin buys\n\
     robustness for a modest steady-state premium - the worst-case-upper-bound\n\
     guidance of the paper's section 2, quantified.\n"

(* ------------------------------------------------------------------ *)
(* A28: racing the registry on parallel domains.                       *)

let a28 () =
  section "A28 solver race: all applicable backends on parallel domains";
  let trace = counter_trace Shyra.Tracer.Field_diff in
  let problem = Problem.make (Shyra.Tasks.oracle trace Shyra.Tasks.four_tasks) in
  let sequential =
    List.map
      (fun s -> Solver.solve ~seed:ga_seed s problem)
      (Solver_registry.applicable problem)
  in
  let winner = Solver_registry.race ~seed:ga_seed problem in
  T.print ~header:[ "solver"; "cost"; "exact" ]
    (List.map
       (fun sol ->
         [
           sol.Solution.solver;
           string_of_int sol.Solution.cost;
           (if sol.Solution.exact then "yes" else "no");
         ])
       sequential);
  let best_seq = Solution.best sequential in
  Format.printf "@.race winner (%d contestants, %d domains): %a@."
    (List.length sequential)
    (Hr_util.Par.num_domains ())
    Solution.pp winner;
  if winner.Solution.cost = best_seq.Solution.cost then
    Printf.printf
      "the race reproduces the best sequential backend exactly — per-solver\n\
       RNGs are derived from the seed and the solver name, so racing changes\n\
       wall-clock time, never results.\n"
  else
    Printf.printf "MISMATCH: race %d vs sequential best %d (%s)\n"
      winner.Solution.cost best_seq.Solution.cost best_seq.Solution.solver

let run_all () =
  fig1 ();
  t0 ();
  fig2 ();
  fig3 ();
  t1 ();
  a1 ();
  a2 ();
  a3 ();
  a4 ();
  a5 ();
  a6 ();
  a7 ();
  a8 ();
  a9 ();
  a10 ();
  a11 ();
  a12 ();
  a13 ();
  a14 ();
  a15 ();
  a16 ();
  a17 ();
  a18 ();
  a19 ();
  a20 ();
  a21 ();
  a22 ();
  a23 ();
  a24 ();
  a25 ();
  a26 ();
  a27 ();
  a28 ()
