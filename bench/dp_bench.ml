(* DP-engine benchmark: the flat-state Mt_dp engine against the
   original list-of-records engine it replaced, plus the pooled dense
   oracle build against a forced-sequential build.

   `dune exec bench/dp_bench.exe -- [--seed S] [--out FILE]` solves one
   pinned exact workload with both engines, cross-checks that their
   answers are bit-identical (cost, plan, states explored — the flat
   engine is a representation change, not an algorithm change), and
   writes a hyperreconf.bench/1 JSON summary (default BENCH_dp.json).
   Exits non-zero when the engines disagree. *)

module Budget = Hr_util.Budget
module Pool = Hr_util.Pool
module Rng = Hr_util.Rng
module W = Hr_workload
open Hr_core

(* The pre-flat-state engine, kept verbatim as the benchmark baseline
   and differential reference.  Exact mode only — the beam branches are
   retained so the code stays a faithful copy, but the bench never
   passes ~max_states. *)
module Reference = struct
  type outcome = {
    cost : int;
    bp : Breakpoints.t;
    exact : bool;
    states_explored : int;
    truncations : int;
    cut_off : bool;
  }

  type state = {
    ends : int array;
    costs : int array;
    acc : int;
    breaks : (int * int) list;
  }

  let combine_hyper params vs =
    match params.Sync_cost.hyper with
    | Sync_cost.Task_parallel -> List.fold_left max 0 vs
    | Sync_cost.Task_sequential -> List.fold_left ( + ) 0 vs

  let combine_reconf params pub costs =
    match params.Sync_cost.reconf with
    | Sync_cost.Task_parallel -> Array.fold_left max pub costs
    | Sync_cost.Task_sequential -> Array.fold_left ( + ) pub costs

  let pareto_filter states =
    let groups = Hashtbl.create 256 in
    List.iter
      (fun s ->
        let key = Array.to_list s.ends in
        let prev = Option.value (Hashtbl.find_opt groups key) ~default:[] in
        Hashtbl.replace groups key (s :: prev))
      states;
    Hashtbl.fold
      (fun _ group acc ->
        let deduped =
          List.fold_left
            (fun kept a ->
              if List.exists (fun b -> b.acc = a.acc && b.costs = a.costs) kept
              then kept
              else a :: kept)
            [] group
        in
        let strictly_dominates b a =
          b.acc <= a.acc
          && Array.for_all2 ( <= ) b.costs a.costs
          && (b.acc < a.acc || b.costs <> a.costs)
        in
        let survivors =
          List.filter
            (fun a -> not (List.exists (fun b -> strictly_dominates b a) deduped))
            deduped
        in
        List.rev_append survivors acc)
      groups []

  let solve ?(params = Sync_cost.default_params) ?upper_bound ?max_states
      ?(budget = Hr_util.Budget.unlimited) (oracle : Interval_cost.t) =
    let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
    let sc = oracle.Interval_cost.step_cost and v = oracle.Interval_cost.v in
    let beam = max_states <> None in
    let suffix = Array.make (n + 1) 0 in
    for i = n - 1 downto 0 do
      let step_lb =
        combine_reconf params params.Sync_cost.pub
          (Array.init m (fun j -> sc j i i))
      in
      suffix.(i) <- suffix.(i + 1) + step_lb
    done;
    let explored = ref 0 in
    let truncated = ref false in
    let truncations = ref 0 in
    let cut = ref false in
    let ub = ref (Option.value upper_bound ~default:max_int) in
    let end_candidates j i =
      if not beam then List.init (n - i) (fun k -> i + k)
      else begin
        let jumps = ref [ n - 1 ] in
        let last = ref (-1) in
        for hi = i to n - 1 do
          let c = sc j i hi in
          if c <> !last then begin
            last := c;
            if hi <> n - 1 then jumps := hi :: !jumps
          end
        done;
        let all = List.sort_uniq compare !jumps in
        let len = List.length all in
        if len <= 32 then all
        else
          List.filteri
            (fun k _ -> k mod ((len / 32) + 1) = 0 || k = len - 1)
            all
      end
    in
    let expand_state i s =
      let restarting =
        List.filter (fun j -> s.ends.(j) = i - 1) (List.init m Fun.id)
      in
      let hyper = combine_hyper params (List.map (fun j -> v.(j)) restarting) in
      let out = ref [] in
      let rec go rs ends costs breaks =
        match rs with
        | [] ->
            let reconf = combine_reconf params params.Sync_cost.pub costs in
            let acc = s.acc + hyper + reconf in
            if acc + suffix.(i + 1) <= !ub then
              out := { ends; costs; acc; breaks } :: !out
        | j :: rest ->
            List.iter
              (fun hi ->
                let ends' = Array.copy ends and costs' = Array.copy costs in
                ends'.(j) <- hi;
                costs'.(j) <- sc j i hi;
                go rest ends' costs' ((j, i) :: breaks))
              (end_candidates j i)
      in
      go restarting s.ends s.costs s.breaks;
      !out
    in
    let prune level =
      let level = pareto_filter level in
      explored := !explored + List.length level;
      match max_states with
      | Some cap when List.length level > cap ->
          truncated := true;
          incr truncations;
          let scored = List.map (fun s -> (s.acc + suffix.(0), s)) level in
          let sorted = List.sort (fun (a, _) (b, _) -> compare a b) scored in
          List.filteri (fun i _ -> i < cap) sorted |> List.map snd
      | _ -> level
    in
    let virtual_start =
      { ends = Array.make m (-1); costs = Array.make m 0; acc = 0; breaks = [] }
    in
    let rec finish_cheaply i s =
      if i >= n then s
      else begin
        let restarting =
          List.filter (fun j -> s.ends.(j) = i - 1) (List.init m Fun.id)
        in
        let hyper =
          combine_hyper params (List.map (fun j -> v.(j)) restarting)
        in
        let ends = Array.copy s.ends and costs = Array.copy s.costs in
        let breaks = ref s.breaks in
        List.iter
          (fun j ->
            ends.(j) <- n - 1;
            costs.(j) <- sc j i (n - 1);
            breaks := (j, i) :: !breaks)
          restarting;
        let reconf = combine_reconf params params.Sync_cost.pub costs in
        finish_cheaply (i + 1)
          { ends; costs; acc = s.acc + hyper + reconf; breaks = !breaks }
      end
    in
    let rec advance i level =
      if i >= n then level
      else if Hr_util.Budget.exhausted budget then begin
        cut := true;
        match level with
        | [] -> []
        | s0 :: rest ->
            let best =
              List.fold_left (fun b s -> if s.acc < b.acc then s else b) s0 rest
            in
            [ finish_cheaply i best ]
      end
      else
        let level = prune (List.concat_map (expand_state i) level) in
        advance (i + 1) level
    in
    let final = advance 0 [ virtual_start ] in
    match final with
    | [] -> invalid_arg "Reference.solve: upper_bound below the optimum"
    | s0 :: rest ->
        let best =
          List.fold_left (fun b s -> if s.acc < b.acc then s else b) s0 rest
        in
        let rows = Array.make m [] in
        List.iter (fun (j, i) -> rows.(j) <- i :: rows.(j)) best.breaks;
        {
          cost = best.acc;
          bp = Breakpoints.of_rows ~m ~n rows;
          exact = (not beam) && (not !truncated) && not !cut;
          states_explored = !explored;
          truncations = !truncations;
          cut_off = !cut;
        }
end

let time_best ~reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Budget.now_ms () in
    let r = f () in
    let ms = Budget.now_ms () -. t0 in
    if ms < !best then best := ms;
    result := Some r
  done;
  (Option.get !result, !best)

let parse_args () =
  let seed = ref 2004 and out = ref "BENCH_dp.json" in
  let rec go = function
    | [] -> ()
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | a :: _ -> failwith ("dp_bench: unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!seed, !out)

(* Pinned exact workload: m=3 keeps n^m under the exact-mode cap while
   the frontier is still large enough that the Pareto filter dominates
   the old engine's runtime. *)
let dp_spec =
  {
    W.Multi_gen.default_spec with
    W.Multi_gen.m = 3;
    n = 30;
    local_sizes = [| 8; 8; 8 |];
  }

(* Oracle-build workload: m=6 so the per-task table builds have real
   parallelism to mine, n sized so a sequential build takes long enough
   to time reliably. *)
let oracle_spec =
  {
    W.Multi_gen.default_spec with
    W.Multi_gen.m = 6;
    n = 440;
    local_sizes = [| 8; 8; 8; 8; 8; 24 |];
  }

let () =
  let seed, out = parse_args () in

  (* --- flat vs reference DP engine ---------------------------------- *)
  let ts = W.Multi_gen.independent (Rng.create seed) dp_spec in
  let oracle = Interval_cost.precompute (Interval_cost.of_task_set ts) in
  ignore (Mt_dp.solve oracle) (* warm: heap sizing, oracle pages *);
  let flat, flat_ms = time_best ~reps:3 (fun () -> Mt_dp.solve oracle) in
  let refr, ref_ms = time_best ~reps:2 (fun () -> Reference.solve oracle) in
  let agree =
    refr.Reference.cost = flat.Mt_dp.cost
    && Breakpoints.equal refr.Reference.bp flat.Mt_dp.bp
    && refr.Reference.states_explored = flat.Mt_dp.states_explored
    && refr.Reference.exact && flat.Mt_dp.exact
    && refr.Reference.truncations = 0
    && (not refr.Reference.cut_off)
    && not flat.Mt_dp.cut_off
  in
  let per_s states ms = 1000. *. float_of_int states /. ms in
  let dp_speedup = ref_ms /. flat_ms in

  (* --- pooled vs sequential oracle build ---------------------------- *)
  let ots = W.Multi_gen.independent (Rng.create (seed + 1)) oracle_spec in
  let build pool () =
    Interval_cost.precompute ~pool (Interval_cost.of_task_set ~pool ots)
  in
  (* A shut-down pool runs everything caller-side — the documented
     degraded mode — which forces a sequential build without a separate
     code path. *)
  let dead = Pool.create ~workers:1 () in
  Pool.shutdown dead;
  let live = Pool.default () in
  ignore (build live ()) (* warm *);
  let _, seq_ms = time_best ~reps:2 (build dead) in
  let pooled_oracle, pooled_ms = time_best ~reps:2 (build live) in
  let stats = Interval_cost.cache_stats pooled_oracle in
  let build_speedup = seq_ms /. pooled_ms in

  (* --- persistent table cache: cold build+store vs warm mmap load --- *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dp-bench-cache-%d" (Unix.getpid ()))
  in
  let cache = Table_cache.of_dir cache_dir in
  let cts = W.Multi_gen.independent (Rng.create (seed + 2)) oracle_spec in
  let cold_oracle, cold_ms =
    (* One reps: a second pass would be served by the file just stored
       and no longer measure the cold path. *)
    time_best ~reps:1 (fun () ->
        Interval_cost.precompute ~cache (Interval_cost.of_task_set cts))
  in
  let key = Option.get cold_oracle.Interval_cost.fingerprint in
  let dims = (cold_oracle.Interval_cost.m, cold_oracle.Interval_cost.n) in
  let warm_oracle, warm_ms =
    time_best ~reps:3 (fun () ->
        let m, n = dims in
        match
          Interval_cost.of_cache cache ~key ~m ~n ~v:cold_oracle.Interval_cost.v
        with
        | Some o -> o
        | None -> failwith "dp_bench: warm table-cache load missed")
  in
  (* The mapped table must be elementwise identical to the built one. *)
  let warm_equal =
    let m, n = dims in
    let ok = ref true in
    for j = 0 to m - 1 do
      for lo = 0 to n - 1 do
        for hi = lo to n - 1 do
          if
            warm_oracle.Interval_cost.step_cost j lo hi
            <> cold_oracle.Interval_cost.step_cost j lo hi
          then ok := false
        done
      done
    done;
    !ok
  in
  let cstats = Table_cache.stats cache in
  let warm_oracle_stats = Interval_cost.cache_stats warm_oracle in
  (try Sys.remove (Table_cache.file cache ~key) with Sys_error _ -> ());
  (try Unix.rmdir cache_dir with Unix.Unix_error _ -> ());

  (* --- large-n sparse-oracle track ---------------------------------- *)
  (* The point of the sparse rung: instances whose dense tables are
     outright infeasible (m=4, n=50000 projects to m·n²·3 = 30 GB)
     build in well under a second, hold linear memory, and solve end to
     end.  Plus a paired small instance where both rungs are feasible,
     checked for elementwise and whole-plan agreement. *)
  let large_m = 4 and large_n = 50_000 in
  let lts = W.Large_gen.task_set ~seed:(seed + 3) ~steps:large_n ~tasks:large_m () in
  let sparse_oracle, sparse_build_ms =
    time_best ~reps:1 (fun () ->
        Interval_cost.of_task_set ~policy:Interval_cost.Sparse lts)
  in
  let dense_projected_bytes = large_m * large_n * large_n * 3 in
  let greedy, greedy_ms =
    time_best ~reps:1 (fun () -> Mt_greedy.best sparse_oracle)
  in
  (* Snapshot AFTER the solve so the query counter reflects it. *)
  let sstats = Interval_cost.cache_stats sparse_oracle in
  let dts = W.Large_gen.task_set ~seed:(seed + 3) ~steps:large_n ~tasks:1 () in
  let dp_oracle = Interval_cost.of_task_set ~policy:Interval_cost.Sparse dts in
  let dp_sol, dp_ms =
    time_best ~reps:1 (fun () ->
        Mt_dp.solve ~budget:(Budget.of_deadline_ms 2000) dp_oracle)
  in
  (* Paired rung-agreement instance: small enough that the dense tables
     are cheap, large enough that disagreement would surface. *)
  let pts = W.Large_gen.task_set ~seed:(seed + 4) ~steps:1200 ~tasks:3 () in
  let dense_p = Interval_cost.of_task_set ~policy:Interval_cost.Dense pts in
  let sparse_p = Interval_cost.of_task_set ~policy:Interval_cost.Sparse pts in
  let rung_cells_equal =
    let rng = Rng.create (seed + 5) in
    let ok = ref true in
    for _ = 1 to 20_000 do
      let j = Rng.int rng 3 in
      let lo = Rng.int rng 1200 in
      let hi = lo + Rng.int rng (1200 - lo) in
      if
        dense_p.Interval_cost.step_cost j lo hi
        <> sparse_p.Interval_cost.step_cost j lo hi
      then ok := false
    done;
    !ok
  in
  let gd = Mt_greedy.best dense_p and gs = Mt_greedy.best sparse_p in
  let rung_plans_equal =
    gd.Mt_greedy.cost = gs.Mt_greedy.cost
    && Breakpoints.equal gd.Mt_greedy.bp gs.Mt_greedy.bp
  in
  let large_ok =
    sparse_build_ms < 1000.
    && sstats.Interval_cost.bytes_resident < 100 * 1024 * 1024
    && sstats.Interval_cost.queries > 0
    && rung_cells_equal && rung_plans_equal
  in

  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "dp-engine");
        ("seed", Telemetry.Int seed);
        ( "dp",
          Telemetry.Obj
            [
              ("m", Telemetry.Int dp_spec.W.Multi_gen.m);
              ("n", Telemetry.Int dp_spec.W.Multi_gen.n);
              ("cost", Telemetry.Int flat.Mt_dp.cost);
              ("states", Telemetry.Int flat.Mt_dp.states_explored);
              ("engines_agree", Telemetry.Bool agree);
              ("reference_ms", Telemetry.Float ref_ms);
              ("flat_ms", Telemetry.Float flat_ms);
              ( "reference_states_per_s",
                Telemetry.Float (per_s refr.Reference.states_explored ref_ms) );
              ( "flat_states_per_s",
                Telemetry.Float (per_s flat.Mt_dp.states_explored flat_ms) );
              ("speedup", Telemetry.Float dp_speedup);
            ] );
        ( "oracle_build",
          Telemetry.Obj
            [
              ("m", Telemetry.Int oracle_spec.W.Multi_gen.m);
              ("n", Telemetry.Int oracle_spec.W.Multi_gen.n);
              ("cells", Telemetry.Int stats.Interval_cost.cells);
              ("sequential_ms", Telemetry.Float seq_ms);
              ("pooled_ms", Telemetry.Float pooled_ms);
              ("speedup", Telemetry.Float build_speedup);
              ("build_workers", Telemetry.Int stats.Interval_cost.build_workers);
              ("build_ms", Telemetry.Float stats.Interval_cost.build_ms);
              ( "build_seq_ms",
                Telemetry.Float stats.Interval_cost.build_seq_ms );
            ] );
        ( "table_cache",
          Telemetry.Obj
            [
              ("cells", Telemetry.Int warm_oracle_stats.Interval_cost.cells);
              ( "width_bits",
                Telemetry.Int warm_oracle_stats.Interval_cost.width_bits );
              ( "bytes_resident",
                Telemetry.Int warm_oracle_stats.Interval_cost.bytes_resident );
              ("cold_ms", Telemetry.Float cold_ms);
              ("warm_ms", Telemetry.Float warm_ms);
              ("speedup", Telemetry.Float (cold_ms /. warm_ms));
              ( "warm_build_ms",
                (* ≈ 0: the warm path maps the file, no oracle calls. *)
                Telemetry.Float warm_oracle_stats.Interval_cost.build_ms );
              ("source", Telemetry.String warm_oracle_stats.Interval_cost.source);
              ("hits", Telemetry.Int cstats.Table_cache.hits);
              ("misses", Telemetry.Int cstats.Table_cache.misses);
              ("stores", Telemetry.Int cstats.Table_cache.stores);
              ("warm_equal", Telemetry.Bool warm_equal);
            ] );
        ( "large_n",
          Telemetry.Obj
            [
              ("m", Telemetry.Int large_m);
              ("n", Telemetry.Int large_n);
              ("segments", Telemetry.Int sstats.Interval_cost.segments);
              ("entries", Telemetry.Int sstats.Interval_cost.cells);
              ("build_ms", Telemetry.Float sparse_build_ms);
              ( "bytes_resident",
                Telemetry.Int sstats.Interval_cost.bytes_resident );
              ("dense_projected_bytes", Telemetry.Int dense_projected_bytes);
              ("queries", Telemetry.Int sstats.Interval_cost.queries);
              ("greedy_cost", Telemetry.Int greedy.Mt_greedy.cost);
              ("greedy_name", Telemetry.String greedy.Mt_greedy.name);
              ("greedy_ms", Telemetry.Float greedy_ms);
              ("dp_cost", Telemetry.Int dp_sol.Mt_dp.cost);
              ("dp_cut_off", Telemetry.Bool dp_sol.Mt_dp.cut_off);
              ("dp_ms", Telemetry.Float dp_ms);
              ("rung_cells_equal", Telemetry.Bool rung_cells_equal);
              ("rung_plans_equal", Telemetry.Bool rung_plans_equal);
              ("ok", Telemetry.Bool large_ok);
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Telemetry.json_to_string doc);
  close_out oc;
  Printf.printf
    "dp-engine: m=%d n=%d | reference %.1f ms (%.0f states/s) | flat %.1f ms \
     (%.0f states/s) | speedup %.1fx\n\
     oracle-build: m=%d n=%d (%d cells) | sequential %.1f ms | pooled %.1f ms \
     (%d workers) | speedup %.1fx | summary %s\n"
    dp_spec.W.Multi_gen.m dp_spec.W.Multi_gen.n ref_ms
    (per_s refr.Reference.states_explored ref_ms)
    flat_ms
    (per_s flat.Mt_dp.states_explored flat_ms)
    dp_speedup oracle_spec.W.Multi_gen.m oracle_spec.W.Multi_gen.n
    stats.Interval_cost.cells seq_ms pooled_ms
    stats.Interval_cost.build_workers build_speedup out;
  Printf.printf
    "table-cache: %d cells (%d-bit, %d bytes) | cold %.1f ms | warm %.1f ms \
     (mmap, %.1fx) | %d hit(s), %d store(s)\n"
    warm_oracle_stats.Interval_cost.cells
    warm_oracle_stats.Interval_cost.width_bits
    warm_oracle_stats.Interval_cost.bytes_resident cold_ms warm_ms
    (cold_ms /. warm_ms) cstats.Table_cache.hits cstats.Table_cache.stores;
  Printf.printf
    "large-n: m=%d n=%d | sparse build %.1f ms, %d segments, %d bytes (dense \
     would need %d MB) | greedy %s cost %d in %.1f ms | mt-dp (m=1, 2 s \
     budget) cost %d in %.1f ms%s | rungs agree: cells %b, plans %b\n"
    large_m large_n sparse_build_ms sstats.Interval_cost.segments
    sstats.Interval_cost.bytes_resident
    (dense_projected_bytes / 1024 / 1024)
    greedy.Mt_greedy.name greedy.Mt_greedy.cost greedy_ms dp_sol.Mt_dp.cost
    dp_ms
    (if dp_sol.Mt_dp.cut_off then " (cut off)" else "")
    rung_cells_equal rung_plans_equal;
  if not large_ok then begin
    Printf.eprintf
      "dp_bench: large-n sparse track failed (build %.1f ms, %d bytes, %d \
       queries, cells_equal %b, plans_equal %b)\n"
      sparse_build_ms sstats.Interval_cost.bytes_resident
      sstats.Interval_cost.queries rung_cells_equal rung_plans_equal;
    exit 1
  end;
  if not warm_equal then begin
    Printf.eprintf "dp_bench: warm-loaded table deviates from the built table\n";
    exit 1
  end;
  if not agree then begin
    Printf.eprintf
      "dp_bench: flat engine deviates from the reference engine (cost %d vs \
       %d, states %d vs %d)\n"
      flat.Mt_dp.cost refr.Reference.cost flat.Mt_dp.states_explored
      refr.Reference.states_explored;
    exit 1
  end
