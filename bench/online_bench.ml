(* Online-replanning benchmark: incremental frontier extension against
   full re-solves on an append-heavy event stream.

   `dune exec bench/online_bench.exe -- [--seed S] [--out FILE]
   [--results FILE] [--n0 N] [--events E] [--extend-k K]
   [--min-speedup X]` generates one append-heavy stream (trace growth
   only — the incremental engine's home turf), replays it under the
   Full and Incremental strategies of Hr_online.Replan, cross-checks
   that both land on the same plan event for event (equal cost and
   bit-identical breakpoints — both sides run the exact online DP, so
   any divergence is a bug), and writes a hyperreconf.bench/1 JSON
   summary (default BENCH_online.json).  Exits 1 when the plans
   diverge or the measured replan speedup falls below the floor
   (default 2.0x). *)

module Budget = Hr_util.Budget
module Rng = Hr_util.Rng
open Hr_core
module Online = Hr_online

let seq_params =
  { Sync_cost.default_params with Sync_cost.reconf = Sync_cost.Task_sequential }

let usage = "online_bench [--seed S] [--out FILE] [--results FILE] [--n0 N] [--events E] [--extend-k K] [--min-speedup X]"

let () =
  let seed = ref 2004
  and out = ref "BENCH_online.json"
  and results = ref ""
  and n0 = ref 140
  and events = ref 7
  and extend_k = ref 7
  and min_speedup = ref 2.0 in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "S stream and solver seed");
      ("--out", Arg.Set_string out, "FILE JSON summary (default BENCH_online.json)");
      ("--results", Arg.Set_string results, "FILE write the per-event tables");
      ("--n0", Arg.Set_int n0, "N initial horizon (default 140)");
      ("--events", Arg.Set_int events, "E extend events (default 7)");
      ("--extend-k", Arg.Set_int extend_k, "K steps appended per event (default 7)");
      ("--min-speedup", Arg.Set_float min_speedup, "X fail below this replan speedup (default 2.0)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let profile =
    {
      Online.Events.append_heavy with
      Online.Events.n0 = !n0;
      events = !events;
      extend_k = !extend_k;
    }
  in
  let init, stream =
    Online.Events.generate (Rng.create !seed) profile
  in
  let config strategy =
    {
      (Online.Replan.default_config strategy) with
      Online.Replan.seed = !seed;
      params = seq_params;
    }
  in
  let replay strategy =
    Online.Replan.run (config strategy) ~init stream
  in
  (* One differential pass: both strategies run the exact online DP, so
     every event must land on the same cost and the same matrix. *)
  let full = replay Online.Replan.Full in
  let inc = replay Online.Replan.Incremental in
  let diverged = ref false in
  List.iter2
    (fun (f : Online.Replan.record) (i : Online.Replan.record) ->
      if f.Online.Replan.cost <> i.Online.Replan.cost
         || not (Breakpoints.equal f.Online.Replan.plan i.Online.Replan.plan)
      then begin
        Printf.eprintf
          "online_bench: event %d (%s): full cost %d, incremental cost %d\n"
          f.Online.Replan.index f.Online.Replan.label f.Online.Replan.cost
          i.Online.Replan.cost;
        diverged := true
      end)
    full.Online.Replan.records inc.Online.Replan.records;
  if !diverged then exit 1;
  if inc.Online.Replan.extensions < !events then begin
    Printf.eprintf
      "online_bench: only %d of %d events served incrementally\n"
      inc.Online.Replan.extensions !events;
    exit 1
  end;
  (* Timing: best of three replays per side, replan time only (the
     initial solve is identical work on both sides). *)
  let event_ms run =
    match run.Online.Replan.records with
    | [] -> 0.
    | _ :: events ->
        List.fold_left (fun a r -> a +. r.Online.Replan.wall_ms) 0. events
  in
  let best side =
    let rec go k best =
      if k = 0 then best
      else go (k - 1) (min best (event_ms (replay side)))
    in
    go 2 (event_ms (if side = Online.Replan.Full then full else inc))
  in
  let full_ms = best Online.Replan.Full
  and inc_ms = best Online.Replan.Incremental in
  let speedup = if inc_ms > 0. then full_ms /. inc_ms else infinity in
  let n_final =
    match List.rev full.Online.Replan.records with
    | r :: _ -> r.Online.Replan.n
    | [] -> 0
  in
  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "online");
        ( "workload",
          Telemetry.Obj
            [
              ("profile", Telemetry.String "append-heavy");
              ("seed", Telemetry.Int !seed);
              ("tasks", Telemetry.Int (Task_set.num_tasks init));
              ("n0", Telemetry.Int !n0);
              ("n_final", Telemetry.Int n_final);
              ("events", Telemetry.Int !events);
              ("extend_k", Telemetry.Int !extend_k);
            ] );
        ( "replan",
          Telemetry.Obj
            [
              ("full_ms", Telemetry.Float full_ms);
              ("incremental_ms", Telemetry.Float inc_ms);
              ("speedup", Telemetry.Float speedup);
              ("min_speedup", Telemetry.Float !min_speedup);
              ("extensions", Telemetry.Int inc.Online.Replan.extensions);
              ("total_cost", Telemetry.Int full.Online.Replan.total_cost);
              ("final_cost", Telemetry.Int full.Online.Replan.final_cost);
            ] );
      ]
  in
  let oc = open_out !out in
  output_string oc (Telemetry.json_to_string doc);
  close_out oc;
  if !results <> "" then begin
    let oc = open_out !results in
    output_string oc "-- full --\n";
    output_string oc (Online.Replan.table full);
    output_string oc "\n-- incremental --\n";
    output_string oc (Online.Replan.table inc);
    output_string oc "\n";
    close_out oc
  end;
  Printf.printf
    "online replan | m=%d n0=%d -> n=%d | %d extend events (k=%d) | full %.1f \
     ms | incremental %.1f ms | speedup %.1fx | summary %s\n"
    (Task_set.num_tasks init) !n0 n_final !events !extend_k full_ms inc_ms
    speedup !out;
  if speedup < !min_speedup then begin
    Printf.eprintf "online_bench: speedup %.2fx below the %.2fx floor\n"
      speedup !min_speedup;
    exit 1
  end
