(* Placement-solver benchmark: place-shelf vs place-dp vs place-local
   on a pinned width x task-count sweep of seeded joint instances.

   `dune exec bench/place_bench.exe -- [--seed S] [--cases C]
   [--out FILE]` draws C random placement instances per sweep point
   (fabric and oracle both derived from the seed, so every run of a
   given seed measures the same instances), times the three placement
   backends on each, cross-checks admissibility of the results —
   place-dp is exhaustive within its bit budget, so no heuristic may
   undercut it, and nobody may undercut Place_brute where that is
   feasible — and writes a hyperreconf.bench/1 JSON summary (default
   BENCH_place.json).  Exits 1 on any cross-check violation. *)

module Rng = Hr_util.Rng
module Budget = Hr_util.Budget
open Hr_core
module Fabric = Hr_place.Fabric
module Place_brute = Hr_place.Place_brute
module Psolvers = Hr_place.Solvers

let usage = "place_bench [--seed S] [--cases C] [--out FILE]"

(* The pinned sweep: (tasks, strip width, horizon). *)
let sweep = [ (2, 3, 4); (2, 4, 6); (3, 4, 4); (3, 5, 6); (3, 6, 6) ]

(* A random m-task oracle over tiny switch traces. *)
let random_problem rng ~m ~n =
  let task j =
    let width = 2 + Rng.int rng 2 in
    let space = Switch_space.make width in
    let steps =
      List.init n (fun _ ->
          List.init (Rng.int rng width) (fun _ -> Rng.int rng width)
          |> List.sort_uniq compare)
    in
    Task_set.task
      ~name:(Printf.sprintf "T%d" j)
      ~v:(1 + Rng.int rng 4)
      (Trace.of_lists space steps)
  in
  Problem.of_task_set (Task_set.make (Array.init m task))

(* A random valid fabric for the sweep point: sizes 1-2, mostly-full
   windows, small relocation costs.  Rejection-sampled against
   Fabric.check (a draw can overload a step); the left-packed
   everything-resident fabric is the deterministic fallback. *)
let random_fabric rng ~m ~n ~width =
  let draw () =
    {
      Fabric.width;
      sizes = Array.init m (fun _ -> 1 + Rng.int rng 2);
      windows =
        Array.init m (fun _ ->
            if Rng.int rng 10 < 6 then (0, n - 1)
            else
              let a = Rng.int rng n in
              (a, min (n - 1) (a + Rng.int rng n)));
      reloc = Array.init m (fun _ -> Rng.int rng 4);
    }
  in
  let rec go k =
    if k = 0 then Fabric.full ~m ~n ~width ()
    else
      let f = draw () in
      if Result.is_ok (Fabric.check ~n f) then f else go (k - 1)
  in
  go 16

let time_solve solver problem =
  let t0 = Unix.gettimeofday () in
  let sol = Solver.solve solver problem in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (sol, ms)

let () =
  Psolvers.ensure ();
  let seed = ref 2004 and cases = ref 8 and out = ref "BENCH_place.json" in
  let spec =
    [
      ("--seed", Arg.Set_int seed, "S instance and solver seed (default 2004)");
      ("--cases", Arg.Set_int cases, "C instances per sweep point (default 8)");
      ("--out", Arg.Set_string out, "FILE JSON summary (default BENCH_place.json)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let solvers = [ Psolvers.place_shelf; Psolvers.place_dp; Psolvers.place_local ] in
  let violations = ref 0 in
  let sweep_json =
    List.map
      (fun (m, width, n) ->
        let rng = Rng.create (!seed + (1000 * m) + (10 * width) + n) in
        let totals = Hashtbl.create 8 in
        let add name cost ms exact =
          let t_ms, t_cost, t_runs, t_exact =
            Option.value (Hashtbl.find_opt totals name) ~default:(0., 0, 0, 0)
          in
          Hashtbl.replace totals name
            (t_ms +. ms, t_cost + cost, t_runs + 1, t_exact + Bool.to_int exact)
        in
        for _ = 1 to !cases do
          let problem =
            Hr_place.Joint.attach
              (random_problem rng ~m ~n)
              (random_fabric rng ~m ~n ~width)
          in
          let brute_opt =
            if Place_brute.feasible problem then
              let opt, _, _ = Place_brute.solve problem in
              Some opt
            else None
          in
          let results =
            List.filter_map
              (fun solver ->
                if solver.Solver.handles problem then begin
                  let sol, ms = time_solve solver problem in
                  add solver.Solver.name sol.Solution.cost ms sol.Solution.exact;
                  if not (Problem.admissible problem sol.Solution.bp) then begin
                    Printf.eprintf "place_bench: %s returned an inadmissible matrix\n"
                      solver.Solver.name;
                    incr violations
                  end;
                  (match brute_opt with
                  | Some opt when sol.Solution.cost < opt ->
                      Printf.eprintf
                        "place_bench: %s undercut Place_brute (%d < %d, m=%d W=%d n=%d)\n"
                        solver.Solver.name sol.Solution.cost opt m width n;
                      incr violations
                  | _ -> ());
                  Some (solver.Solver.name, sol)
                end
                else None)
              solvers
          in
          (* place-dp is exhaustive when it runs: it must be the floor. *)
          match List.assoc_opt "place-dp" results with
          | None -> ()
          | Some dp ->
              List.iter
                (fun (name, (sol : Solution.t)) ->
                  if sol.Solution.cost < dp.Solution.cost then begin
                    Printf.eprintf
                      "place_bench: %s undercut place-dp (%d < %d, m=%d W=%d n=%d)\n"
                      name sol.Solution.cost dp.Solution.cost m width n;
                    incr violations
                  end)
                results
        done;
        let per_solver =
          List.filter_map
            (fun solver ->
              let name = solver.Solver.name in
              Option.map
                (fun (ms, cost, runs, exact) ->
                  ( name,
                    Telemetry.Obj
                      [
                        ("runs", Telemetry.Int runs);
                        ("total_ms", Telemetry.Float ms);
                        ( "mean_cost",
                          Telemetry.Float (float_of_int cost /. float_of_int runs)
                        );
                        ("exact", Telemetry.Int exact);
                      ] ))
                (Hashtbl.find_opt totals name))
            solvers
        in
        Telemetry.Obj
          [
            ("m", Telemetry.Int m);
            ("width", Telemetry.Int width);
            ("n", Telemetry.Int n);
            ("cases", Telemetry.Int !cases);
            ("solvers", Telemetry.Obj per_solver);
          ])
      sweep
  in
  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "place");
        ("seed", Telemetry.Int !seed);
        ("violations", Telemetry.Int !violations);
        ("sweep", Telemetry.List sweep_json);
      ]
  in
  let oc = open_out !out in
  output_string oc (Telemetry.json_to_string doc);
  close_out oc;
  Printf.printf "placement sweep | %d points x %d cases | %d violation(s) | summary %s\n"
    (List.length sweep) !cases !violations !out;
  if !violations > 0 then exit 1
