(* Serving-throughput benchmark: the persistent-pool batch path
   (Batch.run) against the obvious alternative — spawning one fresh
   domain per solve, the pre-pool behaviour of the racing layer.

   `dune exec bench/serve_bench.exe -- [--instances N] [--seed S]
   [--out FILE]` solves N tiny synthetic instances (m=2, n=6, width 4 —
   small enough that per-call domain spawn/join overhead dominates,
   which is exactly the serving regime hrserve cares about) both ways
   and writes a hyperreconf.bench/1 JSON summary (default
   BENCH_serve.json).  Exits non-zero if any batched solve errored. *)

module Budget = Hr_util.Budget
module Pool = Hr_util.Pool
module Rng = Hr_util.Rng
module W = Hr_workload
open Hr_core

let gen_problems ~count ~seed =
  Array.init count (fun i ->
      let spec =
        {
          W.Multi_gen.default_spec with
          W.Multi_gen.m = 2;
          n = 6;
          local_sizes = [| 4; 4 |];
        }
      in
      let ts = W.Multi_gen.independent (Rng.create (seed + i)) spec in
      Problem.make (Interval_cost.of_task_set ts))

(* One fresh domain per request, joined immediately — what serving a
   stream without a pool looks like. *)
let baseline_ms ~seed solver problems =
  let t0 = Budget.now_ms () in
  Array.iter
    (fun p ->
      ignore (Domain.join (Domain.spawn (fun () -> Solver.solve ~seed solver p))))
    problems;
  Budget.now_ms () -. t0

let pooled ~seed solver problems =
  let pool = Pool.create () in
  let requests =
    Array.to_list
      (Array.mapi
         (fun i p -> Batch.request ~id:(string_of_int i) (fun () -> p))
         problems)
  in
  let t0 = Budget.now_ms () in
  let batch = Batch.run ~pool ~seed ~solvers:(fun _ -> [ solver ]) requests in
  let ms = Budget.now_ms () -. t0 in
  Pool.shutdown pool;
  (batch, ms)

let parse_args () =
  let count = ref 1000 and seed = ref 2004 and out = ref "BENCH_serve.json" in
  let rec go = function
    | [] -> ()
    | "--instances" :: v :: rest ->
        count := int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | a :: _ -> failwith ("serve_bench: unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!count, !seed, !out)

let () =
  let count, seed, out = parse_args () in
  let solver = Solver_registry.find_exn "greedy" in
  let problems = gen_problems ~count ~seed in
  (* Warm both paths outside the timed region (domain machinery, minor
     heap sizing) on a small prefix. *)
  let warm = Array.sub problems 0 (min 8 count) in
  ignore (baseline_ms ~seed solver warm);
  ignore (pooled ~seed solver warm);
  let base_ms = baseline_ms ~seed solver problems in
  let batch, pool_ms = pooled ~seed solver problems in
  let errors =
    List.length
      (List.filter
         (fun r -> Result.is_error r.Batch.outcome)
         batch.Batch.responses)
  in
  let per_s ms = 1000. *. float count /. ms in
  let speedup = base_ms /. pool_ms in
  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "serve-throughput");
        ("instances", Telemetry.Int count);
        ("seed", Telemetry.Int seed);
        ("baseline_ms", Telemetry.Float base_ms);
        ("baseline_per_s", Telemetry.Float (per_s base_ms));
        ("pooled_ms", Telemetry.Float pool_ms);
        ("pooled_per_s", Telemetry.Float (per_s pool_ms));
        ("speedup", Telemetry.Float speedup);
        ("batch", Batch.to_json ~label:"serve-bench" ~results:false batch);
      ]
  in
  let oc = open_out out in
  output_string oc (Telemetry.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "serve-throughput: %d instances | per-call spawn %.1f ms (%.0f/s) | pooled \
     batch %.1f ms (%.0f/s) | speedup %.1fx | summary %s\n"
    count base_ms (per_s base_ms) pool_ms (per_s pool_ms) speedup out;
  if errors > 0 then begin
    Printf.eprintf "serve_bench: %d batched solves errored\n" errors;
    exit 1
  end
