(* Serving-throughput benchmark: the persistent-pool batch path
   (Batch.run) against the obvious alternative — spawning one fresh
   domain per solve, the pre-pool behaviour of the racing layer.

   `dune exec bench/serve_bench.exe -- [--instances N] [--seed S]
   [--out FILE]` solves N tiny synthetic instances (m=2, n=6, width 4 —
   small enough that per-call domain spawn/join overhead dominates,
   which is exactly the serving regime hrserve cares about) both ways
   and writes a hyperreconf.bench/1 JSON summary (default
   BENCH_serve.json).  Exits non-zero if any batched solve errored.

   A second track measures the persistent table cache on the serving
   path: the same batch of mid-sized switch cases solved cold (dense
   tables built and stored) and then warm (tables mmap-loaded, the
   oracle construction skipped entirely); the warm plans must be
   byte-identical to the cold ones.

   A third track drives a real in-process socket server (lib/serve)
   under sustained load: a cold pass over distinct cases (every oracle
   built, LRU misses), a warm pass over the same cases (all LRU hits —
   must be at least 5x the cold throughput), then a repeat-heavy
   concurrent trace from several client connections.  Per-request
   latency percentiles and the LRU hit-rate come from the server's own
   hyperreconf.serve/1 summary. *)

module Budget = Hr_util.Budget
module Pool = Hr_util.Pool
module Rng = Hr_util.Rng
module W = Hr_workload
module Check = Hr_check
open Hr_core

let gen_problems ~count ~seed =
  Array.init count (fun i ->
      let spec =
        {
          W.Multi_gen.default_spec with
          W.Multi_gen.m = 2;
          n = 6;
          local_sizes = [| 4; 4 |];
        }
      in
      let ts = W.Multi_gen.independent (Rng.create (seed + i)) spec in
      Problem.make (Interval_cost.of_task_set ts))

(* One fresh domain per request, joined immediately — what serving a
   stream without a pool looks like. *)
let baseline_ms ~seed solver problems =
  let t0 = Budget.now_ms () in
  Array.iter
    (fun p ->
      ignore (Domain.join (Domain.spawn (fun () -> Solver.solve ~seed solver p))))
    problems;
  Budget.now_ms () -. t0

let pooled ~seed solver problems =
  let pool = Pool.create () in
  let requests =
    Array.to_list
      (Array.mapi
         (fun i p -> Batch.request ~id:(string_of_int i) (fun () -> p))
         problems)
  in
  let t0 = Budget.now_ms () in
  let batch = Batch.run ~pool ~seed ~solvers:(fun _ -> [ solver ]) requests in
  let ms = Budget.now_ms () -. t0 in
  Pool.shutdown pool;
  (batch, ms)

(* Mid-sized switch cases for the table-cache track: big enough that
   the O(m·n²) build dominates a solve, small enough that the batch
   stays sub-second. *)
let gen_cases ?(n = 48) ?(local = 8) ?density ~count ~seed () =
  List.init count (fun i ->
      let spec =
        {
          W.Multi_gen.default_spec with
          W.Multi_gen.m = 2;
          n;
          local_sizes = [| local; local |];
        }
      in
      let spec =
        match density with
        | Some d -> { spec with W.Multi_gen.density = d }
        | None -> spec
      in
      let ts = W.Multi_gen.independent (Rng.create (seed + 1000 + i)) spec in
      let m = Task_set.num_tasks ts in
      let widths =
        Array.init m (fun j ->
            Switch_space.size (Trace.space (Task_set.get ts j).Task_set.trace))
      in
      let vs = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
      let reqs =
        Array.init m (fun j ->
            Array.to_list
              (Array.map Hr_util.Bitset.to_list
                 (Trace.reqs (Task_set.get ts j).Task_set.trace)))
      in
      {
        Check.Case.spec = Check.Case.Switch { widths; vs; reqs };
        params = Sync_cost.default_params;
        mode = Mixed_sync.Fully_synchronized;
        machine_class = Problem.Partial;
        place = None;
      })

let cached_batch ~seed ~cache_dir solver cases =
  let pool = Pool.create () in
  let requests =
    List.mapi
      (fun i case ->
        Batch.request ~id:(string_of_int i)
          ~key:(Digest.to_hex (Digest.string (Check.Case.to_string case)))
          (fun () -> Check.Case.problem ~cache_dir case))
      cases
  in
  let t0 = Budget.now_ms () in
  let batch = Batch.run ~pool ~seed ~solvers:(fun _ -> [ solver ]) requests in
  let ms = Budget.now_ms () -. t0 in
  Pool.shutdown pool;
  (batch, ms)

let plans batch =
  List.map
    (fun (r : Batch.response) ->
      match r.Batch.outcome with
      | Ok s -> Some s.Batch.solution
      | Error _ -> None)
    batch.Batch.responses

(* --- sustained-load socket track ----------------------------------- *)

module Server = Hr_serve.Server

(* Send every line, half-close, read one response line per request. *)
let roundtrip path lines =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let responses = List.map (fun _ -> input_line ic) lines in
  (try close_in ic with Sys_error _ -> ());
  responses

let field name = function
  | Telemetry.Obj fields -> List.assoc_opt name fields
  | _ -> None

let socket_track ~seed solver =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-bench-%d.sock" (Unix.getpid ()))
  in
  (* Wide local spaces with sparse requirements make the O(m·n²·v)
     oracle build dominate a request (cheap to parse, expensive to
     build, quick to solve) — the serving regime where the shared LRU
     pays. *)
  let cases =
    gen_cases ~n:192 ~local:2048 ~density:0.02 ~count:8 ~seed:(seed + 5000) ()
  in
  let lines = List.map Check.Case.to_string cases in
  let server =
    Server.start
      (Server.config ~max_queue:128 ~seed ~solvers:(fun _ -> [ solver ])
         ~prefetch:false (`Unix_path path))
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let ok responses =
    (* cheap check; conformance is the test suite's job *)
    List.for_all (fun r -> contains r "\"ok\":true") responses
  in
  let timed f =
    let t0 = Budget.now_ms () in
    let r = f () in
    (r, Budget.now_ms () -. t0)
  in
  (* Cold: every oracle is built.  Warm: same cases, all LRU hits. *)
  let cold_ok, cold_ms = timed (fun () -> ok (roundtrip path lines)) in
  let warm_ok, warm_ms = timed (fun () -> ok (roundtrip path lines)) in
  (* Sustained: a repeat-heavy trace from concurrent connections. *)
  let nclients = 4 and per_client = 16 in
  let shard ci =
    List.init per_client (fun i -> List.nth lines ((ci + (2 * i)) mod 8))
  in
  let results = Array.make nclients false in
  let (), sustained_ms =
    timed (fun () ->
        let threads =
          List.init nclients (fun ci ->
              Thread.create (fun () -> results.(ci) <- ok (roundtrip path (shard ci))) ())
        in
        List.iter Thread.join threads)
  in
  let sustained_ok = Array.for_all Fun.id results in
  let summary = Server.summary_json server in
  Server.stop server;
  let n = List.length cases in
  let sustained_n = nclients * per_client in
  let doc =
    Telemetry.Obj
      [
        ("instances", Telemetry.Int n);
        ("cold_ms", Telemetry.Float cold_ms);
        ("cold_per_s", Telemetry.Float (1000. *. float n /. cold_ms));
        ("warm_ms", Telemetry.Float warm_ms);
        ("warm_per_s", Telemetry.Float (1000. *. float n /. warm_ms));
        ("warm_speedup", Telemetry.Float (cold_ms /. warm_ms));
        ("sustained_requests", Telemetry.Int sustained_n);
        ("sustained_clients", Telemetry.Int nclients);
        ("sustained_ms", Telemetry.Float sustained_ms);
        ( "sustained_per_s",
          Telemetry.Float (1000. *. float sustained_n /. sustained_ms) );
        ( "latency",
          Option.value (field "latency" summary) ~default:Telemetry.Null );
        ( "lru_cache",
          Option.value (field "lru_cache" summary) ~default:Telemetry.Null );
      ]
  in
  (doc, cold_ms /. warm_ms, cold_ok && warm_ok && sustained_ok)

let parse_args () =
  let count = ref 1000 and seed = ref 2004 and out = ref "BENCH_serve.json" in
  let rec go = function
    | [] -> ()
    | "--instances" :: v :: rest ->
        count := int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | a :: _ -> failwith ("serve_bench: unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!count, !seed, !out)

let () =
  let count, seed, out = parse_args () in
  let solver = Solver_registry.find_exn "greedy" in
  let problems = gen_problems ~count ~seed in
  (* Warm both paths outside the timed region (domain machinery, minor
     heap sizing) on a small prefix. *)
  let warm = Array.sub problems 0 (min 8 count) in
  ignore (baseline_ms ~seed solver warm);
  ignore (pooled ~seed solver warm);
  let base_ms = baseline_ms ~seed solver problems in
  let batch, pool_ms = pooled ~seed solver problems in
  let errors =
    List.length
      (List.filter
         (fun r -> Result.is_error r.Batch.outcome)
         batch.Batch.responses)
  in
  let per_s ms = 1000. *. float count /. ms in
  let speedup = base_ms /. pool_ms in

  (* --- table-cache track: cold batch, then warm batch --------------- *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-bench-cache-%d" (Unix.getpid ()))
  in
  let cache = Table_cache.of_dir cache_dir in
  let cases = gen_cases ~count:32 ~seed () in
  let cold_batch, cold_ms = cached_batch ~seed ~cache_dir solver cases in
  let warm_batch, warm_ms = cached_batch ~seed ~cache_dir solver cases in
  let cstats = Table_cache.stats cache in
  let warm_identical =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Some (a : Solution.t), Some (b : Solution.t) ->
            a.Solution.cost = b.Solution.cost
            && Breakpoints.equal a.Solution.bp b.Solution.bp
        | None, None -> true
        | _ -> false)
      (plans cold_batch) (plans warm_batch)
  in
  (try
     Array.iter
       (fun e -> try Sys.remove (Filename.concat cache_dir e) with Sys_error _ -> ())
       (Sys.readdir cache_dir)
   with Sys_error _ -> ());
  (try Unix.rmdir cache_dir with Unix.Unix_error _ -> ());

  (* --- sustained-load socket-server track -------------------------- *)
  let socket_doc, warm_speedup, socket_ok = socket_track ~seed solver in

  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "serve-throughput");
        ("instances", Telemetry.Int count);
        ("seed", Telemetry.Int seed);
        ("baseline_ms", Telemetry.Float base_ms);
        ("baseline_per_s", Telemetry.Float (per_s base_ms));
        ("pooled_ms", Telemetry.Float pool_ms);
        ("pooled_per_s", Telemetry.Float (per_s pool_ms));
        ("speedup", Telemetry.Float speedup);
        ("batch", Batch.to_json ~label:"serve-bench" ~results:false batch);
        ( "table_cache",
          Telemetry.Obj
            [
              ("instances", Telemetry.Int (List.length cases));
              ("cold_ms", Telemetry.Float cold_ms);
              ("warm_ms", Telemetry.Float warm_ms);
              ("speedup", Telemetry.Float (cold_ms /. warm_ms));
              ("hits", Telemetry.Int cstats.Table_cache.hits);
              ("misses", Telemetry.Int cstats.Table_cache.misses);
              ("stores", Telemetry.Int cstats.Table_cache.stores);
              ("warm_identical", Telemetry.Bool warm_identical);
            ] );
        ("socket_server", socket_doc);
      ]
  in
  let oc = open_out out in
  output_string oc (Telemetry.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "serve-throughput: %d instances | per-call spawn %.1f ms (%.0f/s) | pooled \
     batch %.1f ms (%.0f/s) | speedup %.1fx | summary %s\n"
    count base_ms (per_s base_ms) pool_ms (per_s pool_ms) speedup out;
  Printf.printf
    "table-cache: %d instances | cold %.1f ms | warm %.1f ms (%.1fx) | %d \
     hit(s), %d store(s)\n"
    (List.length cases) cold_ms warm_ms (cold_ms /. warm_ms)
    cstats.Table_cache.hits cstats.Table_cache.stores;
  (let f name =
     match field name socket_doc with
     | Some (Telemetry.Float v) -> v
     | _ -> 0.
   in
   Printf.printf
     "socket-server: cold %.1f ms | warm %.1f ms (%.1fx) | sustained %.1f ms \
      (%.0f req/s over %d clients)\n"
     (f "cold_ms") (f "warm_ms") warm_speedup (f "sustained_ms")
     (f "sustained_per_s")
     (match field "sustained_clients" socket_doc with
     | Some (Telemetry.Int i) -> i
     | _ -> 0));
  if not socket_ok then begin
    Printf.eprintf "serve_bench: socket-server track returned error responses\n";
    exit 1
  end;
  if warm_speedup < 5. then begin
    Printf.eprintf
      "serve_bench: warm socket throughput only %.1fx cold (need >= 5x)\n"
      warm_speedup;
    exit 1
  end;
  if not warm_identical then begin
    Printf.eprintf "serve_bench: warm-cache plans differ from cold plans\n";
    exit 1
  end;
  if errors > 0 then begin
    Printf.eprintf "serve_bench: %d batched solves errored\n" errors;
    exit 1
  end
