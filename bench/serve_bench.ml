(* Serving-throughput benchmark: the persistent-pool batch path
   (Batch.run) against the obvious alternative — spawning one fresh
   domain per solve, the pre-pool behaviour of the racing layer.

   `dune exec bench/serve_bench.exe -- [--instances N] [--seed S]
   [--out FILE]` solves N tiny synthetic instances (m=2, n=6, width 4 —
   small enough that per-call domain spawn/join overhead dominates,
   which is exactly the serving regime hrserve cares about) both ways
   and writes a hyperreconf.bench/1 JSON summary (default
   BENCH_serve.json).  Exits non-zero if any batched solve errored.

   A second track measures the persistent table cache on the serving
   path: the same batch of mid-sized switch cases solved cold (dense
   tables built and stored) and then warm (tables mmap-loaded, the
   oracle construction skipped entirely); the warm plans must be
   byte-identical to the cold ones. *)

module Budget = Hr_util.Budget
module Pool = Hr_util.Pool
module Rng = Hr_util.Rng
module W = Hr_workload
module Check = Hr_check
open Hr_core

let gen_problems ~count ~seed =
  Array.init count (fun i ->
      let spec =
        {
          W.Multi_gen.default_spec with
          W.Multi_gen.m = 2;
          n = 6;
          local_sizes = [| 4; 4 |];
        }
      in
      let ts = W.Multi_gen.independent (Rng.create (seed + i)) spec in
      Problem.make (Interval_cost.of_task_set ts))

(* One fresh domain per request, joined immediately — what serving a
   stream without a pool looks like. *)
let baseline_ms ~seed solver problems =
  let t0 = Budget.now_ms () in
  Array.iter
    (fun p ->
      ignore (Domain.join (Domain.spawn (fun () -> Solver.solve ~seed solver p))))
    problems;
  Budget.now_ms () -. t0

let pooled ~seed solver problems =
  let pool = Pool.create () in
  let requests =
    Array.to_list
      (Array.mapi
         (fun i p -> Batch.request ~id:(string_of_int i) (fun () -> p))
         problems)
  in
  let t0 = Budget.now_ms () in
  let batch = Batch.run ~pool ~seed ~solvers:(fun _ -> [ solver ]) requests in
  let ms = Budget.now_ms () -. t0 in
  Pool.shutdown pool;
  (batch, ms)

(* Mid-sized switch cases for the table-cache track: big enough that
   the O(m·n²) build dominates a solve, small enough that the batch
   stays sub-second. *)
let gen_cases ~count ~seed =
  List.init count (fun i ->
      let spec =
        {
          W.Multi_gen.default_spec with
          W.Multi_gen.m = 2;
          n = 48;
          local_sizes = [| 8; 8 |];
        }
      in
      let ts = W.Multi_gen.independent (Rng.create (seed + 1000 + i)) spec in
      let m = Task_set.num_tasks ts in
      let widths =
        Array.init m (fun j ->
            Switch_space.size (Trace.space (Task_set.get ts j).Task_set.trace))
      in
      let vs = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
      let reqs =
        Array.init m (fun j ->
            Array.to_list
              (Array.map Hr_util.Bitset.to_list
                 (Trace.reqs (Task_set.get ts j).Task_set.trace)))
      in
      {
        Check.Case.spec = Check.Case.Switch { widths; vs; reqs };
        params = Sync_cost.default_params;
        mode = Mixed_sync.Fully_synchronized;
        machine_class = Problem.Partial;
      })

let cached_batch ~seed ~cache_dir solver cases =
  let pool = Pool.create () in
  let requests =
    List.mapi
      (fun i case ->
        Batch.request ~id:(string_of_int i)
          ~key:(Digest.to_hex (Digest.string (Check.Case.to_string case)))
          (fun () -> Check.Case.problem ~cache_dir case))
      cases
  in
  let t0 = Budget.now_ms () in
  let batch = Batch.run ~pool ~seed ~solvers:(fun _ -> [ solver ]) requests in
  let ms = Budget.now_ms () -. t0 in
  Pool.shutdown pool;
  (batch, ms)

let plans batch =
  List.map
    (fun (r : Batch.response) ->
      match r.Batch.outcome with
      | Ok s -> Some s.Batch.solution
      | Error _ -> None)
    batch.Batch.responses

let parse_args () =
  let count = ref 1000 and seed = ref 2004 and out = ref "BENCH_serve.json" in
  let rec go = function
    | [] -> ()
    | "--instances" :: v :: rest ->
        count := int_of_string v;
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--out" :: v :: rest ->
        out := v;
        go rest
    | a :: _ -> failwith ("serve_bench: unknown argument " ^ a)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!count, !seed, !out)

let () =
  let count, seed, out = parse_args () in
  let solver = Solver_registry.find_exn "greedy" in
  let problems = gen_problems ~count ~seed in
  (* Warm both paths outside the timed region (domain machinery, minor
     heap sizing) on a small prefix. *)
  let warm = Array.sub problems 0 (min 8 count) in
  ignore (baseline_ms ~seed solver warm);
  ignore (pooled ~seed solver warm);
  let base_ms = baseline_ms ~seed solver problems in
  let batch, pool_ms = pooled ~seed solver problems in
  let errors =
    List.length
      (List.filter
         (fun r -> Result.is_error r.Batch.outcome)
         batch.Batch.responses)
  in
  let per_s ms = 1000. *. float count /. ms in
  let speedup = base_ms /. pool_ms in

  (* --- table-cache track: cold batch, then warm batch --------------- *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "serve-bench-cache-%d" (Unix.getpid ()))
  in
  let cache = Table_cache.of_dir cache_dir in
  let cases = gen_cases ~count:32 ~seed in
  let cold_batch, cold_ms = cached_batch ~seed ~cache_dir solver cases in
  let warm_batch, warm_ms = cached_batch ~seed ~cache_dir solver cases in
  let cstats = Table_cache.stats cache in
  let warm_identical =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Some (a : Solution.t), Some (b : Solution.t) ->
            a.Solution.cost = b.Solution.cost
            && Breakpoints.equal a.Solution.bp b.Solution.bp
        | None, None -> true
        | _ -> false)
      (plans cold_batch) (plans warm_batch)
  in
  (try
     Array.iter
       (fun e -> try Sys.remove (Filename.concat cache_dir e) with Sys_error _ -> ())
       (Sys.readdir cache_dir)
   with Sys_error _ -> ());
  (try Unix.rmdir cache_dir with Unix.Unix_error _ -> ());

  let doc =
    Telemetry.Obj
      [
        ("schema", Telemetry.String "hyperreconf.bench/1");
        ("bench", Telemetry.String "serve-throughput");
        ("instances", Telemetry.Int count);
        ("seed", Telemetry.Int seed);
        ("baseline_ms", Telemetry.Float base_ms);
        ("baseline_per_s", Telemetry.Float (per_s base_ms));
        ("pooled_ms", Telemetry.Float pool_ms);
        ("pooled_per_s", Telemetry.Float (per_s pool_ms));
        ("speedup", Telemetry.Float speedup);
        ("batch", Batch.to_json ~label:"serve-bench" ~results:false batch);
        ( "table_cache",
          Telemetry.Obj
            [
              ("instances", Telemetry.Int (List.length cases));
              ("cold_ms", Telemetry.Float cold_ms);
              ("warm_ms", Telemetry.Float warm_ms);
              ("speedup", Telemetry.Float (cold_ms /. warm_ms));
              ("hits", Telemetry.Int cstats.Table_cache.hits);
              ("misses", Telemetry.Int cstats.Table_cache.misses);
              ("stores", Telemetry.Int cstats.Table_cache.stores);
              ("warm_identical", Telemetry.Bool warm_identical);
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Telemetry.json_to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "serve-throughput: %d instances | per-call spawn %.1f ms (%.0f/s) | pooled \
     batch %.1f ms (%.0f/s) | speedup %.1fx | summary %s\n"
    count base_ms (per_s base_ms) pool_ms (per_s pool_ms) speedup out;
  Printf.printf
    "table-cache: %d instances | cold %.1f ms | warm %.1f ms (%.1fx) | %d \
     hit(s), %d store(s)\n"
    (List.length cases) cold_ms warm_ms (cold_ms /. warm_ms)
    cstats.Table_cache.hits cstats.Table_cache.stores;
  if not warm_identical then begin
    Printf.eprintf "serve_bench: warm-cache plans differ from cold plans\n";
    exit 1
  end;
  if errors > 0 then begin
    Printf.eprintf "serve_bench: %d batched solves errored\n" errors;
    exit 1
  end
