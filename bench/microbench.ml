(* Bechamel microbenchmarks: one Test.make per reproduced table /
   figure pipeline stage, so regressions in the algorithmic kernels are
   visible.  Kept short (0.25 s quota per test) because the experiment
   harness above is the expensive part. *)

open Bechamel
open Toolkit
open Hr_core
module Rng = Hr_util.Rng
module Shyra = Hr_shyra
module W = Hr_workload

let counter_trace =
  lazy
    (Shyra.Tracer.trace (Shyra.Counter.build ~init:0 ~bound:10 ()).Shyra.Counter.program)

(* F1/T0: simulator and tracer throughput. *)
let test_shyra_sim =
  Test.make ~name:"shyra/counter-run+trace"
    (Staged.stage (fun () ->
         let run = Shyra.Counter.build ~init:0 ~bound:10 () in
         Shyra.Tracer.trace run.Shyra.Counter.program))

(* T1 single-task column: the O(n^2) DP of [9]. *)
let test_st_opt =
  let traces =
    List.map
      (fun n ->
        let rng = Rng.create 5 in
        let space = Switch_space.make 48 in
        (n, W.Synthetic.uniform rng space ~n ~density:0.2))
      [ 64; 128; 256 ]
  in
  Test.make_indexed ~name:"st_opt/solve" ~args:(List.map fst traces) (fun n ->
      let trace = List.assoc n traces in
      Staged.stage (fun () -> St_opt.solve_trace ~v:48 trace))

(* T1 multi-task column: one GA generation's worth of evaluations. *)
let test_sync_eval =
  Test.make ~name:"sync_cost/eval-counter-4task"
    (Staged.stage
       (let oracle =
          lazy (Shyra.Tasks.oracle (Lazy.force counter_trace) Shyra.Tasks.four_tasks)
        in
        let bp = lazy (Breakpoints.periodic ~m:4 ~n:84 8) in
        fun () -> Sync_cost.eval (Lazy.force oracle) (Lazy.force bp)))

(* The GA itself, tiny budget. *)
let test_ga =
  Test.make ~name:"mt_ga/30-generations"
    (Staged.stage
       (let oracle =
          lazy (Shyra.Tasks.oracle (Lazy.force counter_trace) Shyra.Tasks.four_tasks)
        in
        fun () ->
          let config =
            {
              Hr_evolve.Ga.default_config with
              Hr_evolve.Ga.generations = 30;
              population = 16;
            }
          in
          Mt_ga.solve ~config ~rng:(Rng.create 1) (Lazy.force oracle)))

(* A4: the DAG DP. *)
let test_dag =
  Test.make ~name:"st_dag_opt/solve-n100"
    (Staged.stage
       (let inst = lazy (W.Dag_gen.instance (Rng.create 3) W.Dag_gen.default_spec) in
        fun () ->
          let model, seq = Lazy.force inst in
          St_dag_opt.solve model seq))

(* A5: the O(n^3) changeover DP. *)
let test_changeover =
  Test.make ~name:"st_changeover/solve-n84"
    (Staged.stage (fun () -> St_changeover.solve_union ~w:24 (Lazy.force counter_trace)))

(* Kernels: bitsets and interval-union tables. *)
let test_bitset =
  Test.make ~name:"bitset/union-cardinal-48"
    (Staged.stage
       (let rng = Rng.create 9 in
        let a = Hr_util.Bitset.random (fun () -> Rng.float rng) ~width:48 ~density:0.3 in
        let b = Hr_util.Bitset.random (fun () -> Rng.float rng) ~width:48 ~density:0.3 in
        fun () -> Hr_util.Bitset.cardinal (Hr_util.Bitset.union a b)))

let test_range_union =
  Test.make ~name:"range_union/build-n84"
    (Staged.stage (fun () -> Range_union.make (Lazy.force counter_trace)))

(* A17: mesh bus resolution (the inner loop of mesh simulation). *)
let test_mesh_resolve =
  Test.make ~name:"rmesh/resolve-9x8"
    (Staged.stage
       (let grid = Hr_rmesh.Algos.counting_grid 8 in
        let config =
          Hr_rmesh.Algos.counting_config grid
            (Array.init 8 (fun i -> i mod 2 = 0))
        in
        fun () -> Hr_rmesh.Grid.resolve grid config))

(* The oracle caches behind Problem.make: the dense precomputed tables
   (lock-free reads) vs the sharded lock-free memoizer, under a query
   storm on one domain and spread across all domains — the access
   pattern of Solver.race.  Both caches are built and prewarmed before
   staging, so steady-state lookups are what is measured. *)
let oracle_cache_tests =
  let base =
    lazy
      (let spec = { W.Multi_gen.default_spec with W.Multi_gen.m = 4; n = 96 } in
       Interval_cost.of_task_set (W.Multi_gen.correlated (Rng.create 21) spec))
  in
  let queries =
    lazy
      (let o = Lazy.force base in
       let m = o.Interval_cost.m and n = o.Interval_cost.n in
       let rng = Rng.create 22 in
       Array.init 4096 (fun _ ->
           let j = Rng.int rng m in
           let lo = Rng.int rng n in
           let hi = lo + Rng.int rng (n - lo) in
           (j, lo, hi)))
  in
  let prewarm o =
    let m = o.Interval_cost.m and n = o.Interval_cost.n in
    for j = 0 to m - 1 do
      for lo = 0 to n - 1 do
        for hi = lo to n - 1 do
          ignore (o.Interval_cost.step_cost j lo hi)
        done
      done
    done;
    o
  in
  let storm ~domains o =
    let qs = Lazy.force queries in
    let sc = o.Interval_cost.step_cost in
    let burn lo hi =
      let acc = ref 0 in
      for i = lo to hi do
        let j, l, h = qs.(i) in
        acc := !acc + sc j l h
      done;
      ignore !acc
    in
    if domains <= 1 then burn 0 (Array.length qs - 1)
    else Hr_util.Par.iter_chunks ~domains burn (Array.length qs)
  in
  List.map
    (fun (name, cache, domains) ->
      let cached = lazy (prewarm (cache (Lazy.force base))) in
      Test.make ~name:(Printf.sprintf "interval_cost/%s" name)
        (Staged.stage (fun () -> storm ~domains (Lazy.force cached))))
    [
      ("sharded-memoize-1dom", Interval_cost.memoize, 1);
      ("dense-precompute-1dom", (fun o -> Interval_cost.precompute o), 1);
      ("sharded-memoize-4dom", Interval_cost.memoize, 4);
      ("dense-precompute-4dom", (fun o -> Interval_cost.precompute o), 4);
    ]

(* The referee VM (differential oracle of the §4.2 formulas). *)
let test_vm =
  Test.make ~name:"machine_vm/counter-4task"
    (Staged.stage
       (let data =
          lazy
            (let trace = Lazy.force counter_trace in
             let ts = Shyra.Tasks.split trace Shyra.Tasks.four_tasks in
             (ts, Breakpoints.periodic ~m:4 ~n:84 8))
        in
        fun () ->
          let ts, bp = Lazy.force data in
          Machine_vm.execute_breakpoints ts bp))

let all_tests =
  Test.make_grouped ~name:"hyperreconf"
    ([
      test_shyra_sim;
      test_st_opt;
      test_sync_eval;
      test_ga;
      test_dag;
      test_changeover;
      test_bitset;
      test_range_union;
      test_mesh_resolve;
      test_vm;
    ]
  @ oracle_cache_tests)

(* The solver-racing harness under a deadline, reported through the
   structured telemetry layer — the same table hropt --telemetry feeds
   to JSON, so harness regressions (a backend suddenly blowing its
   budget, oracle-cache thrash) show up next to the kernel numbers. *)
let run_race_telemetry () =
  Hr_util.Tablefmt.section "solver race telemetry (200 ms deadline)";
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.m = 4; n = 96 } in
  let ts = W.Multi_gen.correlated (Rng.create 21) spec in
  let problem = Problem.of_task_set ts in
  let deadline_ms = 200 in
  let t0 = Hr_util.Budget.now_ms () in
  let reports =
    Solver_registry.run_all
      ~budget:(Hr_util.Budget.of_deadline_ms deadline_ms)
      problem
  in
  let total_ms = Hr_util.Budget.now_ms () -. t0 in
  let t = Telemetry.make ~label:"bench-race" ~deadline_ms ~problem ~total_ms reports in
  Format.printf "%a" Telemetry.pp t

let run () =
  Hr_util.Tablefmt.section "microbenchmarks (bechamel)";
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] all_tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> t
          | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Hr_util.Tablefmt.print
    ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows);
  run_race_telemetry ()
