(* Quickstart: plan hyperreconfigurations for a hand-written trace.

   A computation over 8 switches runs in two phases: it first routes
   through switches 0-2, then through 5-7.  We ask the optimal
   single-task planner where to hyperreconfigure and what each
   hypercontext should be, and compare against never hyperreconfiguring.

   Run with: dune exec examples/quickstart.exe *)

open Hr_core

let () =
  let space = Switch_space.make 8 in
  let trace =
    Trace.of_lists space
      [
        (* phase 1: small routing demand *)
        [ 0 ]; [ 1 ]; [ 0; 2 ]; [ 1; 2 ]; [ 0 ];
        (* phase 2: a different corner of the fabric *)
        [ 5 ]; [ 6; 7 ]; [ 5; 7 ]; [ 6 ]; [ 7 ];
      ]
  in
  (* v is the hyperreconfiguration cost; the switch-model default is the
     universe size (all switch states must be (un)loaded). *)
  let result, hypercontexts = St_opt.solve_trace ~v:4 trace in
  Printf.printf "optimal cost: %d\n" result.St_opt.cost;
  Printf.printf "hyperreconfigure at steps: %s\n"
    (String.concat ", " (List.map string_of_int result.St_opt.breaks));
  List.iteri
    (fun k hc ->
      Format.printf "block %d hypercontext: %a (reconfiguration costs %d per step)@."
        k (Switch_space.pp_set space) hc (Hypercontext.cost hc))
    hypercontexts;
  (* Baseline: keep every switch available the whole time. *)
  let never = 4 + (Switch_space.size space * Trace.length trace) in
  Printf.printf "never hyperreconfiguring would cost: %d\n" never;
  Printf.printf "saving: %.1f%%\n"
    (100. *. (1. -. (float_of_int result.St_opt.cost /. float_of_int never)))
