(* The coarse-grained DAG cost model (paper §2).

   A machine offers three routability grades — low, medium, good — with
   growing context sets and growing reconfiguration costs.  A phased
   computation alternates between undemanding and demanding routing; the
   optimal planner drops to the cheap hypercontext during quiet phases
   while the online greedy baseline reacts one step at a time.

   Run with: dune exec examples/dag_machine.exe *)

open Hr_core
module Bitset = Hr_util.Bitset

let () =
  (* Context ids: 0 = local wire, 1 = neighbour wire, 2 = cross-fabric
     route, 3 = long-haul route. *)
  let model =
    Dag_model.chain ~num_contexts:4 ~w:8
      ~costs:[| 2; 5; 9 |]
      ~sats:
        [|
          Bitset.of_list 4 [ 0 ];
          Bitset.of_list 4 [ 0; 1; 2 ];
          Bitset.full 4;
        |]
  in
  let seq =
    Array.concat
      [
        Array.make 14 0;  (* quiet phase: local wires only *)
        [| 1; 2; 1; 2; 2; 1 |];  (* medium routing pressure *)
        Array.make 10 0;  (* quiet again *)
        [| 3; 2; 3; 3; 1; 3 |];  (* long-haul burst *)
        Array.make 8 0;
      ]
  in
  let opt = St_dag_opt.solve model seq in
  let greedy = St_dag_opt.greedy model seq in
  Printf.printf "steps: %d\n" (Array.length seq);
  Printf.printf "optimal DP:    cost %4d, %d hyperreconfigurations\n" opt.St_dag_opt.cost
    (List.length opt.St_dag_opt.breaks);
  Printf.printf "online greedy: cost %4d, %d hyperreconfigurations\n"
    greedy.St_dag_opt.cost
    (List.length greedy.St_dag_opt.breaks);
  let name h = (Dag_model.node model h).Dag_model.name in
  Printf.printf "optimal hypercontext sequence: %s\n"
    (String.concat " -> " (List.map name opt.St_dag_opt.nodes));
  (* The always-on-top baseline every non-hyperreconfigurable machine
     pays. *)
  let top_cost = 8 + (9 * Array.length seq) in
  Printf.printf "always 'good' hypercontext:    cost %4d\n" top_cost
