examples/quickstart.mli:
