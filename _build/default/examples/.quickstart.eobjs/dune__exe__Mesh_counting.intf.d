examples/mesh_counting.mli:
