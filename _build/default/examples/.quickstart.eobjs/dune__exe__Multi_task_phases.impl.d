examples/multi_task_phases.ml: Hr_core Hr_util Hr_workload Interval_cost List Mt_anneal Mt_ga Mt_greedy Mt_local Printf
