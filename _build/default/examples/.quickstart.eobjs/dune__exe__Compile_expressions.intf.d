examples/compile_expressions.mli:
