examples/counter_on_shyra.ml: Breakpoints Hr_core Hr_shyra Hr_util Hr_viz List Mt_ga Printf St_opt Sync_cost Trace
