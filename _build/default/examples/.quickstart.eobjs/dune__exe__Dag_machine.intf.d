examples/dag_machine.mli:
