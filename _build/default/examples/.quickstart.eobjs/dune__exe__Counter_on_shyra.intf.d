examples/counter_on_shyra.mli:
