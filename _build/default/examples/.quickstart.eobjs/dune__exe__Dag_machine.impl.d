examples/dag_machine.ml: Array Dag_model Hr_core Hr_util List Printf St_dag_opt String
