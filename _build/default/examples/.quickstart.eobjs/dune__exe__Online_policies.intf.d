examples/online_policies.mli:
