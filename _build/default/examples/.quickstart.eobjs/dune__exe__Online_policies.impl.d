examples/online_policies.ml: Hr_core Hr_util Hr_workload List Online Printf St_opt Switch_space
