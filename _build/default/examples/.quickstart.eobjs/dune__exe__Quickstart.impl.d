examples/quickstart.ml: Format Hr_core Hypercontext List Printf St_opt String Switch_space Trace
