examples/multi_task_phases.mli:
