examples/compile_expressions.ml: Expr Hr_core Hr_shyra Hr_util List Printf Program St_opt Sync_cost Trace Tracer
