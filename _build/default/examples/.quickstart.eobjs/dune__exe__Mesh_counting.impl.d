examples/mesh_counting.ml: Algos Format Grid Hr_core Hr_rmesh Hr_util Interval_cost Mesh_tracer Mt_ga Printf St_opt Switch_space Sync_cost Task_split Trace Trace_stats
