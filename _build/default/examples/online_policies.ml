(* Online hyperreconfiguration under data-dependent demand.

   The paper notes that runtime demand "might depend on the data and
   cannot be determined exactly in advance" (§2).  Here a Markov chain
   drives the workload's phases and four online policies plan without
   seeing the future; the offline optimum (which does see it) is the
   yardstick.  Stickier chains = longer phases = easier online life.

   Run with: dune exec examples/online_policies.exe *)

open Hr_core
module Rng = Hr_util.Rng
module W = Hr_workload

let () =
  let space = Switch_space.make 32 in
  let v = 32 in
  List.iter
    (fun self ->
      let rng = Rng.create 9 in
      let chain = W.Markov.make_chain rng ~space ~states:4 ~self in
      let trace = W.Markov.generate rng chain ~space ~n:150 in
      let offline, _ = St_opt.solve_trace ~v trace in
      Printf.printf "\nself-transition %.2f (offline optimum %d)\n" self
        offline.St_opt.cost;
      Hr_util.Tablefmt.print
        ~header:[ "policy"; "cost"; "switches"; "vs offline" ]
        (List.map
           (fun policy ->
             let cost, switches = Online.run policy ~v trace in
             [
               policy.Online.name;
               string_of_int cost;
               string_of_int switches;
               Printf.sprintf "%.2fx" (Online.competitive_ratio policy ~v trace);
             ])
           (Online.all ~v ~universe:32)))
    [ 0.5; 0.9; 0.98 ]
