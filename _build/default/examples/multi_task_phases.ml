(* Multi-task planning on a synthetic phased workload.

   Four tasks (with the SHyRA-like 8/8/8/24 local switch split) run
   phase-structured computations.  We compare the heuristic portfolio,
   hill climbing, simulated annealing and the genetic algorithm on the
   correlated workload (shared phase boundaries — the friendly case for
   partial hyperreconfiguration) and on the independent one.

   Run with: dune exec examples/multi_task_phases.exe *)

open Hr_core
module Rng = Hr_util.Rng
module W = Hr_workload

let optimize name oracle =
  let rng = Rng.create 99 in
  let rows =
    [
      ("never", (Mt_greedy.never oracle).Mt_greedy.cost);
      ("every-step", (Mt_greedy.every_step oracle).Mt_greedy.cost);
      ("best heuristic", (Mt_greedy.best oracle).Mt_greedy.cost);
      ("hill climbing", (Mt_local.solve oracle).Mt_local.cost);
      ("annealing", (Mt_anneal.solve ~rng:(Rng.copy rng) oracle).Mt_anneal.cost);
      ("genetic algorithm", (Mt_ga.solve ~rng oracle).Mt_ga.cost);
    ]
  in
  Printf.printf "\n%s\n" name;
  Hr_util.Tablefmt.print ~header:[ "method"; "cost" ]
    (List.map (fun (m, c) -> [ m; string_of_int c ]) rows)

let () =
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.n = 96 } in
  let correlated = W.Multi_gen.correlated (Rng.create 7) spec in
  let independent = W.Multi_gen.independent (Rng.create 7) spec in
  optimize "correlated phases (tasks can hyperreconfigure in lockstep)"
    (Interval_cost.of_task_set correlated);
  optimize "independent phases (staggered boundaries)"
    (Interval_cost.of_task_set independent)
