(* The expression compiler: from boolean formulas to a time-partitioned
   SHyRA program, automatically.

   The paper's counter was "time partitioned" by hand into cycles of at
   most two LUT evaluations; Expr.compile does that mechanically —
   hash-consed CSE, two-slot list scheduling, register allocation with
   liveness — and the resulting program is itself a reconfiguration
   workload for the hyperreconfiguration planners.

   Run with: dune exec examples/compile_expressions.exe *)

open Hr_shyra
open Hr_core

let () =
  (* A 2-bit equality comparator: (a0 ≡ b0) ∧ (a1 ≡ b1). *)
  let open Expr in
  let eq0 = not_ (var "a0" ^^^ var "b0") and eq1 = not_ (var "a1" ^^^ var "b1") in
  let comparator = eq0 &&& eq1 in
  let compiled = compile comparator in
  Printf.printf "comparator: %d LUT operations in %d cycles, result in r%d\n"
    compiled.Expr.ops
    (Program.length compiled.Expr.program)
    compiled.Expr.result;
  List.iter
    (fun (name, reg) -> Printf.printf "  input %s -> r%d\n" name reg)
    compiled.Expr.input_regs;
  (* Check it against the reference semantics on one assignment. *)
  let env = [ ("a0", true); ("b0", true); ("a1", false); ("b1", false) ] in
  Printf.printf "equal(11,11 vs 00,00 pairs) = %b\n" (Expr.run comparator ~env);

  (* Shared subexpressions are computed once. *)
  let shared = var "x" ^^^ var "y" in
  let duplicated = shared &&& shared ||| (shared ^^^ Const true) in
  Printf.printf "\nwith CSE: %d ops for an expression using (x xor y) three times\n"
    (compile duplicated).Expr.ops;

  (* A compiled batch is a reconfiguration workload like any other. *)
  let rng = Hr_util.Rng.create 4 in
  let batch =
    List.init 8 (fun _ -> Expr.random rng ~inputs:[ "p"; "q"; "r" ] ~depth:4)
  in
  let program =
    List.fold_left
      (fun acc e -> Program.append acc (compile e).Expr.program)
      (Program.of_steps []) batch
  in
  let trace = Tracer.trace program in
  let single, _ = St_opt.solve_trace ~v:48 trace in
  let n = Trace.length trace in
  Printf.printf
    "\nbatch of 8 expressions: %d cycles; optimal single-task plan %d vs disabled %d\n"
    n single.St_opt.cost
    (Sync_cost.disabled_cost ~n ~machine_width:48 ())
