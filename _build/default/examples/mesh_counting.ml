(* The second architecture: constant-time counting on a reconfigurable
   mesh, and what hyperreconfiguration buys on its traces.

   The classic O(1) algorithm counts the 1s of an n-bit word on an
   (n+1) x n mesh: every 1-column steps the signal down one row
   ({W,S}{N,E} switches), every 0-column passes it straight ({E,W}),
   and the row where the signal exits is the count.  The switch
   configuration depends on the data, so counting a stream of words
   reconfigures the fabric every cycle — exactly the regime the paper's
   hyperreconfigurable machines accelerate.

   Run with: dune exec examples/mesh_counting.exe *)

open Hr_rmesh
open Hr_core
module Rng = Hr_util.Rng

let () =
  (* 1. The algorithm itself. *)
  let bits = [| true; false; true; true; false; true; false; true |] in
  Printf.printf "count_ones(10110101) = %d\n" (Algos.count_ones bits);
  Printf.printf "leftmost_one(10110101) = %s\n"
    (match Algos.leftmost_one bits with Some i -> string_of_int i | None -> "-");

  (* 2. A phase-structured stream of words to count: within each phase
     only a few columns ever carry ones, so only their switches
     reconfigure. *)
  let grid, program =
    Algos.counting_stream ~phase_len:16 ~active_fraction:0.3 (Rng.create 1) ~bits:8
      ~words:64
  in
  let trace = Mesh_tracer.trace grid program in
  let n = Trace.length trace in
  let width = Switch_space.size (Trace.space trace) in
  Printf.printf "\nmesh %dx%d, %d configuration bits, %d reconfiguration steps\n"
    (Grid.rows grid) (Grid.cols grid) width n;
  Format.printf "trace: %a@." Trace_stats.pp (Trace_stats.analyze trace);

  (* 3. Hyperreconfiguration analysis, as for SHyRA. *)
  let disabled = Sync_cost.disabled_cost ~n ~machine_width:width () in
  let single =
    St_opt.solve_oracle (Interval_cost.of_task_set (Task_split.single trace)) ~task:0
  in
  let oracle = Task_split.oracle trace (Mesh_tracer.row_bands grid ~bands:3) in
  let ga = Mt_ga.solve ~rng:(Rng.create 7) oracle in
  Printf.printf "disabled hyperreconfiguration: %d\n" disabled;
  Printf.printf "single task (optimal DP):      %d (%.1f%%)\n" single.St_opt.cost
    (100. *. float_of_int single.St_opt.cost /. float_of_int disabled);
  Printf.printf "three row-band tasks (GA):     %d (%.1f%%)\n" ga.Mt_ga.cost
    (100. *. float_of_int ga.Mt_ga.cost /. float_of_int disabled)
