(* Asm_text parser/printer, Bp_analysis, Mt_dag_priv, plus the
   consolidated differential battery. *)

open Hr_core
module Shyra = Hr_shyra
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

(* ---- Asm_text ---- *)

let sample_source =
  {|
# increment bit 0
lut1 NOT0        ; invert
lut2 BUF0
sel 0 r0
sel 3 r0
route 0 r0
route 1 r8
commit inc0
lut1 0x96
route 1 -
commit
|}

let test_asm_text_parses () =
  match Shyra.Asm_text.parse sample_source with
  | Error e -> Alcotest.fail e
  | Ok instrs ->
      check int "10 instructions" 10 (List.length instrs);
      (* It must assemble to a 2-cycle program. *)
      check int "2 cycles" 2 (Shyra.Program.length (Shyra.Asm.assemble instrs))

let test_asm_text_roundtrip () =
  let instrs = Shyra.Asm_text.parse_exn sample_source in
  let printed = Shyra.Asm_text.print instrs in
  let reparsed = Shyra.Asm_text.parse_exn printed in
  Alcotest.(check bool) "roundtrip" true (instrs = reparsed)

let test_asm_text_counter_program_roundtrip () =
  (* Print+reparse an entire generated program's instruction stream:
     recover instructions from a Counter build via config diffs is
     overkill; instead round-trip the raw cycle helper output. *)
  let instrs =
    Shyra.Asm.cycle ~lut1:Shyra.Lut.xor3 ~lut2:Shyra.Lut.maj3
      ~sels:[ (0, 1); (1, 5); (2, 8) ]
      ~routes:[ (0, Some 1); (1, None) ]
      "add1"
  in
  let reparsed = Shyra.Asm_text.parse_exn (Shyra.Asm_text.print instrs) in
  Alcotest.(check bool) "roundtrip" true (instrs = reparsed);
  (* And both assemble identically. *)
  let p1 = Shyra.Asm.assemble instrs and p2 = Shyra.Asm.assemble reparsed in
  Alcotest.(check bool) "same program" true
    (List.for_all2 Shyra.Config.equal (Shyra.Program.configs p1)
       (Shyra.Program.configs p2))

let test_asm_text_errors () =
  let bad = [ "lut1 FROB"; "sel 9 r0"; "sel 0 r12"; "route 5 r0"; "warble" ] in
  List.iter
    (fun src ->
      match Shyra.Asm_text.parse src with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" src)
    bad

let test_asm_text_executes () =
  (* The sample's first cycle inverts r0 and saves the old value. *)
  let instrs = Shyra.Asm_text.parse_exn "lut1 NOT0\nlut2 BUF0\nsel 0 r0\nsel 3 r0\nroute 0 r0\nroute 1 r8\ncommit t\n" in
  let program = Shyra.Asm.assemble instrs in
  let s = Shyra.Machine.set (Shyra.Machine.create ()) 0 true in
  let s' = Shyra.Program.run program s in
  Alcotest.(check bool) "r0 inverted" false (Shyra.Machine.get s' 0);
  Alcotest.(check bool) "r8 = old r0" true (Shyra.Machine.get s' 8)

(* ---- Bp_analysis ---- *)

let test_bp_analysis_values () =
  let bp = Breakpoints.of_rows ~m:2 ~n:6 [| [ 2; 4 ]; [ 2 ] |] in
  let a = Bp_analysis.analyze bp in
  check int "hyper steps" 3 a.Bp_analysis.hyper_steps;
  Alcotest.(check (array int)) "breaks" [| 3; 2 |] a.Bp_analysis.breaks_per_task;
  check int "lockstep columns" 2 a.Bp_analysis.lockstep_columns;
  check (Alcotest.float 1e-9) "alignment" (5. /. 6.) a.Bp_analysis.alignment

let test_bp_analysis_extremes () =
  let lockstep = Breakpoints.periodic ~m:3 ~n:8 2 in
  check (Alcotest.float 1e-9) "full lockstep" 1.0
    (Bp_analysis.analyze lockstep).Bp_analysis.alignment;
  let solo = Breakpoints.of_rows ~m:2 ~n:4 [| [ 1 ]; [ 2 ] |] in
  (* columns 0(both),1(A),2(B): alignment = 4 / (2*3) *)
  check (Alcotest.float 1e-9) "staggered" (4. /. 6.)
    (Bp_analysis.analyze solo).Bp_analysis.alignment

(* ---- Mt_dag_priv ---- *)

let chain2 ~w =
  Dag_model.chain ~num_contexts:2 ~w ~costs:[| 1; 4 |]
    ~sats:[| Bitset.of_list 2 [ 0 ]; Bitset.full 2 |]

let mk_task name local_seq priv_seq =
  { Mt_dag_priv.name; local = chain2 ~w:2; local_seq; priv_seq }

let test_dag_priv_additive_costs () =
  let priv = chain2 ~w:3 in
  let t = mk_task "a" [| 0; 1 |] [| 1; 0 |] in
  let oracle = Mt_dag_priv.oracle ~v:[| 2 |] ~priv [| t |] in
  (* Block [0,1]: local needs top (cost 4), priv needs top (cost 4). *)
  check int "block cost" 8 (oracle.Interval_cost.step_cost 0 0 1);
  (* Block [0,0]: local id 0 -> cheap 1; priv id 1 -> top 4. *)
  check int "first step" 5 (oracle.Interval_cost.step_cost 0 0 0)

let test_dag_priv_assignment_restricts () =
  let priv = chain2 ~w:3 in
  let t = mk_task "a" [| 0 |] [| 0 |] in
  (* Disallow the cheap private node: the top must be used. *)
  let allowed _ node = node <> 0 in
  let oracle = Mt_dag_priv.oracle ~v:[| 2 |] ~priv ~allowed [| t |] in
  check int "forced expensive priv" (1 + 4) (oracle.Interval_cost.step_cost 0 0 0)

let test_dag_priv_unsatisfiable_assignment () =
  let priv = chain2 ~w:3 in
  let t = mk_task "a" [| 0 |] [| 1 |] in
  match Mt_dag_priv.oracle ~v:[| 2 |] ~priv ~allowed:(fun _ node -> node = 0) [| t |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "assignment smaller than demand accepted"

let test_dag_priv_local_only_matches_dag_oracle () =
  let t1 = mk_task "a" [| 0; 1; 0 |] [| 0; 0; 0 |] in
  let t2 = mk_task "b" [| 1; 0; 0 |] [| 0; 0; 0 |] in
  let via_priv = Mt_dag_priv.local_only ~v:[| 2; 3 |] [| t1; t2 |] in
  let via_dag =
    Dag_model.oracle ~v:[| 2; 3 |]
      [| t1.Mt_dag_priv.local; t2.Mt_dag_priv.local |]
      [| t1.Mt_dag_priv.local_seq; t2.Mt_dag_priv.local_seq |]
  in
  for j = 0 to 1 do
    for lo = 0 to 2 do
      for hi = lo to 2 do
        if
          via_priv.Interval_cost.step_cost j lo hi
          <> via_dag.Interval_cost.step_cost j lo hi
        then Alcotest.failf "mismatch (%d,%d,%d)" j lo hi
      done
    done
  done

let test_dag_priv_exact_dp_runs () =
  let priv = chain2 ~w:3 in
  let tasks =
    [| mk_task "a" [| 0; 1; 0; 0 |] [| 0; 0; 1; 0 |];
       mk_task "b" [| 1; 0; 0; 1 |] [| 0; 1; 0; 0 |] |]
  in
  let oracle = Mt_dag_priv.oracle ~v:[| 2; 2 |] ~priv tasks in
  let brute_cost, _ = Brute.multi oracle in
  let dp = Mt_dp.solve oracle in
  check int "exact = brute" brute_cost dp.Mt_dp.cost

(* ---- consolidated differential battery ---- *)

let qcheck_differential_battery =
  Tutil.prop "all evaluators agree on random plans"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:4 ~max_n:10 ~max_width:5)
       (QCheck2.Gen.int_bound 5000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let oracle = Interval_cost.of_task_set ts in
      let rng = Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.35)
      in
      let v = Array.map (fun t -> t.Task_set.v) (Task_set.tasks ts) in
      let a = Sync_cost.eval oracle bp in
      let b = Plan.cost_sync (Plan.of_breakpoints ts bp) ~v in
      let c =
        match Machine_vm.execute_breakpoints ts bp with
        | Ok run -> run.Machine_vm.total_time
        | Error _ -> -1
      in
      let d = Mixed_sync.eval ~mode:Mixed_sync.Fully_synchronized oracle bp in
      let e = Mt_async.eval oracle bp in
      let f = Mixed_sync.eval ~mode:Mixed_sync.Non_synchronized oracle bp in
      a = b && b = c && c = d && e = f && e <= a)

let tests =
  [
    Alcotest.test_case "asm_text parses" `Quick test_asm_text_parses;
    Alcotest.test_case "asm_text roundtrip" `Quick test_asm_text_roundtrip;
    Alcotest.test_case "asm_text cycle roundtrip" `Quick test_asm_text_counter_program_roundtrip;
    Alcotest.test_case "asm_text errors" `Quick test_asm_text_errors;
    Alcotest.test_case "asm_text executes" `Quick test_asm_text_executes;
    Alcotest.test_case "bp analysis values" `Quick test_bp_analysis_values;
    Alcotest.test_case "bp analysis extremes" `Quick test_bp_analysis_extremes;
    Alcotest.test_case "dag priv additive" `Quick test_dag_priv_additive_costs;
    Alcotest.test_case "dag priv assignment" `Quick test_dag_priv_assignment_restricts;
    Alcotest.test_case "dag priv unsatisfiable" `Quick test_dag_priv_unsatisfiable_assignment;
    Alcotest.test_case "dag priv local-only" `Quick test_dag_priv_local_only_matches_dag_oracle;
    Alcotest.test_case "dag priv exact dp" `Quick test_dag_priv_exact_dp_runs;
    qcheck_differential_battery;
  ]
