(* Machine_vm referee, Split_search, SHyRA FSM. *)

open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

(* ---- Machine_vm as an independent referee ---- *)

let qcheck_vm_matches_sync_cost =
  Tutil.prop "VM execution time = Sync_cost.eval"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let oracle = Interval_cost.of_task_set ts in
      let rng = Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      match Machine_vm.execute_breakpoints ts bp with
      | Error _ -> false
      | Ok run ->
          run.Machine_vm.total_time = Sync_cost.eval oracle bp
          && List.length run.Machine_vm.events = inst.Tutil.n)

let qcheck_vm_matches_under_all_upload_modes =
  Tutil.prop "VM agrees with Sync_cost in every upload mode"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:2 ~max_n:6 ~max_width:3)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let oracle = Interval_cost.of_task_set ts in
      let rng = Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      List.for_all
        (fun (hyper, reconf) ->
          let params = { Sync_cost.w = 3; pub = 1; hyper; reconf } in
          match Machine_vm.execute_breakpoints ~params ts bp with
          | Error _ -> false
          | Ok run -> run.Machine_vm.total_time = Sync_cost.eval ~params oracle bp)
        [
          (Sync_cost.Task_parallel, Sync_cost.Task_parallel);
          (Sync_cost.Task_parallel, Sync_cost.Task_sequential);
          (Sync_cost.Task_sequential, Sync_cost.Task_parallel);
          (Sync_cost.Task_sequential, Sync_cost.Task_sequential);
        ])

let test_vm_rejects_invalid_plan () =
  let space = Switch_space.make 4 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 3 ] ] in
  let ts = Task_set.single ~name:"t" trace in
  (* Hand-build a plan whose hypercontext misses step 1's switch. *)
  let plan =
    Plan.make [| [ { Plan.lo = 0; hi = 1; hc = Bitset.of_list 4 [ 0 ] } ] |]
  in
  match Machine_vm.execute ts plan with
  | Error msg ->
      Alcotest.(check bool) "names the step" true
        (Astring.String.is_infix ~affix:"step 1" msg)
  | Ok _ -> Alcotest.fail "invalid plan executed"

let test_vm_counts_hyper_ops () =
  let ts = Tutil.sample_task_set () in
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  match Machine_vm.execute_breakpoints ts bp with
  | Ok run -> check int "4 partial hyperreconfigurations" 4 run.Machine_vm.hyper_ops
  | Error e -> Alcotest.fail e

(* ---- Split_search ---- *)

let test_set_partitions_bell_numbers () =
  check int "B3" 5 (List.length (Split_search.set_partitions [ 1; 2; 3 ]));
  check int "B4" 15 (List.length (Split_search.set_partitions [ 1; 2; 3; 4 ]));
  check int "B1" 1 (List.length (Split_search.set_partitions [ 1 ]));
  check int "B0" 1 (List.length (Split_search.set_partitions []))

let test_set_partitions_are_partitions () =
  let xs = [ 1; 2; 3; 4 ] in
  List.iter
    (fun blocks ->
      let flat = List.concat blocks |> List.sort compare in
      if flat <> xs then Alcotest.fail "not a partition";
      if List.exists (( = ) []) blocks then Alcotest.fail "empty block")
    (Split_search.set_partitions xs)

let test_split_search_on_counter () =
  (* The finest split can only help under max-coupling with v_j = l_j,
     so the best candidate must cost <= the single-task (coarsest)
     grouping. *)
  let run = Hr_shyra.Counter.build ~init:0 ~bound:5 () in
  let trace = Hr_shyra.Tracer.trace run.Hr_shyra.Counter.program in
  let units =
    Array.map
      (fun p -> { Split_search.name = p.Hr_shyra.Tasks.name; mask = p.Hr_shyra.Tasks.mask })
      Hr_shyra.Tasks.four_tasks
  in
  let ranked = Split_search.search trace units in
  check int "15 candidates" 15 (List.length ranked);
  let best = List.hd ranked in
  let coarsest =
    List.find (fun c -> c.Split_search.tasks = 1) ranked
  in
  Alcotest.(check bool) "best <= single group" true
    (best.Split_search.cost <= coarsest.Split_search.cost);
  (* Ranking is sorted. *)
  let costs = List.map (fun c -> c.Split_search.cost) ranked in
  Alcotest.(check bool) "sorted" true (costs = List.sort compare costs)

(* ---- FSM ---- *)

let software_detector inputs =
  (* ends-with-101 reference on raw input lists *)
  let step (_, b, c) i = (b, c, i) in
  let rec go window acc = function
    | [] -> List.rev acc
    | i :: rest ->
        let window = step window i in
        let accept = window = (true, false, true) in
        go window (accept :: acc) rest
  in
  go (false, false, false) [] inputs

let test_fsm_detector_matches_software () =
  let rng = Rng.create 5 in
  for _ = 1 to 20 do
    let inputs = List.init 24 (fun _ -> Rng.bool rng) in
    let _, accepts = Hr_shyra.Fsm.run Hr_shyra.Fsm.detector_101 inputs in
    if accepts <> software_detector inputs then
      Alcotest.fail "detector disagrees with software reference"
  done

let test_fsm_reference_matches_hardware () =
  let rng = Rng.create 6 in
  let inputs = List.init 40 (fun _ -> Rng.bool rng) in
  let states = Hr_shyra.Fsm.reference Hr_shyra.Fsm.detector_101 inputs in
  let _, accepts = Hr_shyra.Fsm.run Hr_shyra.Fsm.detector_101 inputs in
  let expected = List.map (fun s -> s = 3) states in
  Alcotest.(check (list bool)) "accept sequences agree" expected accepts

let test_fsm_parity () =
  let inputs = [ true; true; true; false; true ] in
  let _, accepts = Hr_shyra.Fsm.run Hr_shyra.Fsm.parity_fsm inputs in
  Alcotest.(check (list bool)) "parity trace" [ true; false; true; true; false ] accepts

let test_fsm_trace_is_state_dependent () =
  (* Dwelling in one state produces empty reconfiguration diffs. *)
  let inputs = List.init 10 (fun _ -> false) in
  (* all-zero input keeps the 101-detector bouncing between s0 only *)
  let program, _ = Hr_shyra.Fsm.run Hr_shyra.Fsm.detector_101 inputs in
  let trace = Hr_shyra.Tracer.trace ~mode:Hr_shyra.Tracer.Diff program in
  let sizes = Trace.sizes trace in
  (* After the first configuration, staying in s0 changes nothing. *)
  for i = 1 to 9 do
    if sizes.(i) <> 0 then Alcotest.failf "step %d should be diff-free" i
  done

(* ---- extra mesh primitives ---- *)

let test_prefix_or_exhaustive () =
  for v = 0 to 255 do
    let bits = Array.init 8 (fun i -> v land (1 lsl i) <> 0) in
    let got = Hr_rmesh.Algos.prefix_or bits in
    let expected =
      let acc = ref false in
      Array.map
        (fun b ->
          let r = !acc in
          acc := !acc || b;
          r)
        bits
    in
    if got <> expected then Alcotest.failf "prefix_or of %d wrong" v
  done

let test_row_or () =
  let m = [| [| false; true; false |]; [| false; false; false |]; [| true; true; true |] |] in
  Alcotest.(check (array bool)) "row or" [| true; false; true |] (Hr_rmesh.Algos.row_or m)

let tests =
  [
    qcheck_vm_matches_sync_cost;
    qcheck_vm_matches_under_all_upload_modes;
    Alcotest.test_case "vm rejects invalid" `Quick test_vm_rejects_invalid_plan;
    Alcotest.test_case "vm hyper ops" `Quick test_vm_counts_hyper_ops;
    Alcotest.test_case "bell numbers" `Quick test_set_partitions_bell_numbers;
    Alcotest.test_case "partitions valid" `Quick test_set_partitions_are_partitions;
    Alcotest.test_case "split search counter" `Quick test_split_search_on_counter;
    Alcotest.test_case "fsm detector" `Quick test_fsm_detector_matches_software;
    Alcotest.test_case "fsm reference" `Quick test_fsm_reference_matches_hardware;
    Alcotest.test_case "fsm parity" `Quick test_fsm_parity;
    Alcotest.test_case "fsm state-dependent trace" `Quick test_fsm_trace_is_state_dependent;
    Alcotest.test_case "prefix or" `Quick test_prefix_or_exhaustive;
    Alcotest.test_case "row or" `Quick test_row_or;
  ]
