(* Reconfigurable mesh: partitions, bus resolution, the classic O(1)
   algorithms, trace extraction and task splits. *)

open Hr_rmesh
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_partition_count_and_codes () =
  check int "15 partitions" 15 (Array.length Partition.all);
  Array.iteri
    (fun i p -> check int (Printf.sprintf "code %d" i) i (Partition.code p))
    Partition.all;
  for i = 0 to 14 do
    check bool "of_code roundtrip" true
      (Partition.equal (Partition.of_code i) Partition.all.(i))
  done

let test_partition_groups () =
  Alcotest.(check int) "isolated: 4 groups" 4 (List.length (Partition.groups Partition.isolated));
  Alcotest.(check int) "fused: 1 group" 1 (List.length (Partition.groups Partition.all_fused));
  check bool "ew fuses E,W" true (Partition.same_group Partition.ew Port.E Port.W);
  check bool "ew splits N" false (Partition.same_group Partition.ew Port.N Port.E);
  check bool "ws_ne" true
    (Partition.same_group Partition.ws_ne Port.W Port.S
    && Partition.same_group Partition.ws_ne Port.N Port.E
    && not (Partition.same_group Partition.ws_ne Port.W Port.N))

let test_partition_of_groups_validation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Partition.of_groups: duplicate port") (fun () ->
      ignore (Partition.of_groups [ [ Port.N; Port.N ]; [ Port.E ]; [ Port.S ]; [ Port.W ] ]));
  Alcotest.check_raises "missing" (Invalid_argument "Partition.of_groups: missing port")
    (fun () -> ignore (Partition.of_groups [ [ Port.N ] ]))

let test_partition_of_groups_order_insensitive () =
  let a = Partition.of_groups [ [ Port.W; Port.E ]; [ Port.S ]; [ Port.N ] ] in
  check bool "same as ew" true (Partition.equal a Partition.ew)

let test_bus_straight_wire () =
  (* 1x3 all-EW: one horizontal bus through all six E/W ports, plus
     isolated N/S stubs. *)
  let grid = Grid.create ~rows:1 ~cols:3 in
  let buses = Grid.resolve grid (Grid.uniform grid Partition.ew) in
  let b00 = Grid.bus_id buses ~row:0 ~col:0 Port.E in
  check int "west end joins" b00 (Grid.bus_id buses ~row:0 ~col:0 Port.W);
  check int "east end joins" b00 (Grid.bus_id buses ~row:0 ~col:2 Port.E);
  check bool "N stub separate" true (Grid.bus_id buses ~row:0 ~col:1 Port.N <> b00)

let test_bus_cut () =
  let grid = Grid.create ~rows:1 ~cols:3 in
  let config = Grid.uniform grid Partition.ew in
  config.(0).(1) <- Partition.isolated;
  let buses = Grid.resolve grid config in
  let west = Grid.bus_id buses ~row:0 ~col:0 Port.E in
  let east = Grid.bus_id buses ~row:0 ~col:2 Port.W in
  check bool "bus is cut" true (west <> east);
  (* The cut PE's W port still belongs to the western segment. *)
  check int "W side reaches cut" west (Grid.bus_id buses ~row:0 ~col:1 Port.W)

let test_bus_vertical () =
  let grid = Grid.create ~rows:3 ~cols:1 in
  let buses = Grid.resolve grid (Grid.uniform grid Partition.ns) in
  check int "vertical bus" (Grid.bus_id buses ~row:0 ~col:0 Port.S)
    (Grid.bus_id buses ~row:2 ~col:0 Port.N)

let test_signals_wired_or () =
  let grid = Grid.create ~rows:1 ~cols:4 in
  let buses = Grid.resolve grid (Grid.uniform grid Partition.ew) in
  let values = Grid.signals buses ~drivers:[ (0, 2, Port.E) ] in
  check bool "driven" true (Grid.read buses values ~row:0 ~col:0 Port.E);
  let silent = Grid.signals buses ~drivers:[] in
  check bool "silent" false (Grid.read buses silent ~row:0 ~col:0 Port.E)

let bits_of_int ~n v = Array.init n (fun i -> v land (1 lsl i) <> 0)

let test_or_exhaustive () =
  for v = 0 to 255 do
    let bits = bits_of_int ~n:8 v in
    if Algos.logical_or bits <> (v <> 0) then Alcotest.failf "or of %d wrong" v
  done

let test_leftmost_exhaustive () =
  for v = 0 to 255 do
    let bits = bits_of_int ~n:8 v in
    let expected =
      let rec go i = if i >= 8 then None else if bits.(i) then Some i else go (i + 1) in
      go 0
    in
    if Algos.leftmost_one bits <> expected then Alcotest.failf "leftmost of %d wrong" v
  done

let test_count_exhaustive () =
  for v = 0 to 255 do
    let bits = bits_of_int ~n:8 v in
    let expected = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits in
    let got = Algos.count_ones bits in
    if got <> expected then Alcotest.failf "count of %d: got %d expected %d" v got expected
  done

let test_broadcast () =
  let grid = Grid.create ~rows:4 ~cols:5 in
  let seen = Algos.broadcast_row grid ~target:2 in
  for r = 0 to 3 do
    for c = 0 to 4 do
      let expected = r = 2 in
      if seen.(r).(c) <> expected then Alcotest.failf "broadcast at (%d,%d)" r c
    done
  done

let test_encode_decode_bits () =
  let grid = Grid.create ~rows:2 ~cols:2 in
  let config = Grid.uniform grid Partition.isolated in
  config.(1).(0) <- Partition.ns_ew;
  let bits = Mesh_tracer.encode grid config in
  (* PE (1,0) is the third PE: bits 8..11 hold its code. *)
  let code = Partition.code Partition.ns_ew in
  for k = 0 to 3 do
    check bool
      (Printf.sprintf "bit %d" k)
      (code land (1 lsl k) <> 0)
      (Bitset.mem bits (8 + k))
  done

let test_trace_field_mode () =
  let grid = Grid.create ~rows:1 ~cols:3 in
  let c1 = Grid.uniform grid Partition.ew in
  let c2 = Grid.uniform grid Partition.ew in
  c2.(0).(1) <- Partition.isolated;
  let program =
    [ { Mesh_tracer.config = c1; label = "a" }; { Mesh_tracer.config = c2; label = "b" } ]
  in
  let trace = Mesh_tracer.trace ~initial:c1 grid program in
  check int "step 0 no change" 0 (Bitset.cardinal (Hr_core.Trace.req trace 0));
  (* Step 1 rewrites exactly PE (0,1)'s 4-bit field. *)
  Alcotest.(check (list int)) "step 1 field" [ 4; 5; 6; 7 ]
    (Bitset.to_list (Hr_core.Trace.req trace 1))

let test_trace_bit_mode_subset () =
  let rng = Rng.create 11 in
  let grid, program = Algos.counting_stream rng ~bits:4 ~words:10 in
  let bit_trace = Mesh_tracer.trace ~mode:`Bit grid program in
  let field_trace = Mesh_tracer.trace ~mode:`Field grid program in
  for i = 0 to 9 do
    if
      not
        (Bitset.subset (Hr_core.Trace.req bit_trace i) (Hr_core.Trace.req field_trace i))
    then Alcotest.failf "bit mode not a subset at %d" i
  done

let test_row_bands_partition () =
  let grid = Grid.create ~rows:5 ~cols:3 in
  let parts = Mesh_tracer.row_bands grid ~bands:2 in
  check int "2 bands" 2 (Array.length parts);
  let total =
    Array.fold_left (fun acc p -> acc + Bitset.cardinal p.Hr_core.Task_split.mask) 0 parts
  in
  check int "cover all bits" (5 * 3 * 4) total

let test_quadrants_partition () =
  let grid = Grid.create ~rows:4 ~cols:4 in
  let parts = Mesh_tracer.quadrants grid in
  check int "4 quadrants" 4 (Array.length parts);
  Array.iter
    (fun p -> check int p.Hr_core.Task_split.name (4 * 4) (Bitset.cardinal p.Hr_core.Task_split.mask))
    parts

let test_counting_stream_analysis_end_to_end () =
  (* The full pipeline on the second architecture: stream trace ->
     task split -> single vs multi optimization ordering. *)
  let rng = Rng.create 42 in
  let grid, program =
    Algos.counting_stream ~phase_len:8 ~active_fraction:0.3 rng ~bits:6 ~words:24
  in
  let trace = Mesh_tracer.trace grid program in
  let n = Hr_core.Trace.length trace in
  check int "one step per word" 24 n;
  let width = Hr_core.Switch_space.size (Hr_core.Trace.space trace) in
  let disabled = Hr_core.Sync_cost.disabled_cost ~n ~machine_width:width () in
  let single =
    Hr_core.St_opt.solve_oracle
      (Hr_core.Interval_cost.of_task_set (Hr_core.Task_split.single trace))
      ~task:0
  in
  let oracle =
    Hr_core.Task_split.oracle trace (Mesh_tracer.row_bands grid ~bands:3)
  in
  let multi = Hr_core.Mt_local.solve oracle in
  Alcotest.(check bool) "single < disabled" true (single.Hr_core.St_opt.cost < disabled);
  Alcotest.(check bool) "multi <= single" true
    (multi.Hr_core.Mt_local.cost <= single.Hr_core.St_opt.cost)

let tests =
  [
    Alcotest.test_case "partition count" `Quick test_partition_count_and_codes;
    Alcotest.test_case "partition groups" `Quick test_partition_groups;
    Alcotest.test_case "partition validation" `Quick test_partition_of_groups_validation;
    Alcotest.test_case "partition order-insensitive" `Quick test_partition_of_groups_order_insensitive;
    Alcotest.test_case "bus straight wire" `Quick test_bus_straight_wire;
    Alcotest.test_case "bus cut" `Quick test_bus_cut;
    Alcotest.test_case "bus vertical" `Quick test_bus_vertical;
    Alcotest.test_case "wired-or signals" `Quick test_signals_wired_or;
    Alcotest.test_case "or exhaustive" `Quick test_or_exhaustive;
    Alcotest.test_case "leftmost exhaustive" `Quick test_leftmost_exhaustive;
    Alcotest.test_case "count exhaustive" `Quick test_count_exhaustive;
    Alcotest.test_case "broadcast" `Quick test_broadcast;
    Alcotest.test_case "encode bits" `Quick test_encode_decode_bits;
    Alcotest.test_case "trace field mode" `Quick test_trace_field_mode;
    Alcotest.test_case "trace bit subset" `Quick test_trace_bit_mode_subset;
    Alcotest.test_case "row bands" `Quick test_row_bands_partition;
    Alcotest.test_case "quadrants" `Quick test_quadrants_partition;
    Alcotest.test_case "counting pipeline" `Quick test_counting_stream_analysis_end_to_end;
  ]
