(* Machine-class planners (Mt_classes) and trace serialization
   (Trace_io). *)

open Hr_core
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

(* Brute force over uniform-column matrices only. *)
let brute_all_task ?params (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let best = ref max_int in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let row = Array.init n (fun i -> i = 0 || mask land (1 lsl (i - 1)) <> 0) in
    let bp = Breakpoints.of_matrix (Array.init m (fun _ -> Array.copy row)) in
    best := min !best (Sync_cost.eval ?params oracle bp)
  done;
  !best

let qcheck_all_task_optimal =
  Tutil.prop "solve_all_task matches uniform brute force"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let r = Mt_classes.solve_all_task oracle in
      r.Mt_classes.cost = brute_all_task oracle
      && Sync_cost.eval oracle r.Mt_classes.bp = r.Mt_classes.cost)

let qcheck_all_task_sequential_modes =
  Tutil.prop "solve_all_task exact under sequential uploads"
    (Tutil.gen_mt_instance ~max_m:2 ~max_n:7 ~max_width:3)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let params =
        {
          Sync_cost.w = 0;
          pub = 2;
          hyper = Sync_cost.Task_sequential;
          reconf = Sync_cost.Task_sequential;
        }
      in
      let r = Mt_classes.solve_all_task ~params oracle in
      r.Mt_classes.cost = brute_all_task ~params oracle)

let qcheck_partial_never_worse =
  Tutil.prop "unconstrained optimum <= all-task optimum"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let all_task = Mt_classes.solve_all_task oracle in
      let exact = Mt_dp.solve oracle in
      exact.Mt_dp.cost <= all_task.Mt_classes.cost)

let test_partial_strictly_better_sometimes () =
  (* Under task-parallel uploads the hyperreconfiguration term is the
     max of the v_j over the tasks that actually break, so the all-task
     class only loses when the v_j are heterogeneous: here task A
     (v = 2) needs frequent breaks while task B (v = 30) never wants
     any — forcing B to join every break makes each column cost 30.
     Unconstrained optimum: 40 (columns 0/2/4, B only at 0); all-task
     optimum: 48 (never break again after step 0). *)
  let s = Switch_space.make 6 in
  let ts =
    Task_set.make
      [|
        Task_set.task ~name:"A" ~v:2
          (Trace.of_lists s [ [ 0 ]; [ 0 ]; [ 2 ]; [ 2 ]; [ 4 ]; [ 4 ] ]);
        Task_set.task ~name:"B" ~v:30
          (Trace.of_lists s [ [ 1 ]; [ 1 ]; [ 1 ]; [ 1 ]; [ 1 ]; [ 1 ] ]);
      |]
  in
  let oracle = Interval_cost.of_task_set ts in
  let all_task = Mt_classes.solve_all_task oracle in
  let exact = Mt_dp.solve oracle in
  check int "unconstrained optimum" 40 exact.Mt_dp.cost;
  check int "all-task optimum" 48 all_task.Mt_classes.cost

let test_advantage_ordering () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let all_task, partial = Mt_classes.advantage ~rng:(Rng.create 3) oracle in
  Alcotest.(check bool) "partial <= all-task" true (partial <= all_task)

let test_combined_oracle_values () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let combined = Mt_classes.combined_oracle oracle in
  check int "m=1" 1 combined.Interval_cost.m;
  check int "v = max" 3 combined.Interval_cost.v.(0);
  (* step cost = max over tasks *)
  check int "step cost"
    (max (oracle.Interval_cost.step_cost 0 0 2) (oracle.Interval_cost.step_cost 1 0 2))
    (combined.Interval_cost.step_cost 0 0 2)

(* ---- Trace_io ---- *)

let qcheck_trace_roundtrip =
  Tutil.prop "Trace_io roundtrips"
    (Tutil.gen_st_instance ~max_n:12 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let trace' = Trace_io.of_string (Trace_io.to_string trace) in
      Trace.length trace' = Trace.length trace
      && List.for_all
           (fun i ->
             Hr_util.Bitset.equal (Trace.req trace i) (Trace.req trace' i))
           (List.init (Trace.length trace) Fun.id))

let test_trace_io_preserves_names () =
  let space = Switch_space.make ~names:[| "alpha"; "beta" |] 2 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 1; 0 ] ] in
  let trace' = Trace_io.of_string (Trace_io.to_string trace) in
  check Alcotest.string "name" "beta" (Switch_space.name (Trace.space trace') 1)

let test_trace_io_comments_and_empty_steps () =
  let s = "# a comment\ntrace 3 2\na b c\n0 2   # trailing comment\n\n" in
  let trace = Trace_io.of_string s in
  check int "n" 2 (Trace.length trace);
  Alcotest.(check (list int)) "step 0" [ 0; 2 ]
    (Hr_util.Bitset.to_list (Trace.req trace 0));
  Alcotest.(check (list int)) "step 1 empty" []
    (Hr_util.Bitset.to_list (Trace.req trace 1))

let test_trace_io_errors () =
  let expect_failure s =
    match Trace_io.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "accepted malformed input %S" s
  in
  expect_failure "trace x 2\na b\n1\n2";
  expect_failure "trace 2 1\na\n0";
  expect_failure "trace 2 2\na b\n0";
  expect_failure "trace 2 1\na b\n7";
  expect_failure ""

let tests =
  [
    qcheck_all_task_optimal;
    qcheck_all_task_sequential_modes;
    qcheck_partial_never_worse;
    Alcotest.test_case "partial strictly better" `Quick test_partial_strictly_better_sometimes;
    Alcotest.test_case "advantage ordering" `Quick test_advantage_ordering;
    Alcotest.test_case "combined oracle" `Quick test_combined_oracle_values;
    qcheck_trace_roundtrip;
    Alcotest.test_case "trace io names" `Quick test_trace_io_preserves_names;
    Alcotest.test_case "trace io comments" `Quick test_trace_io_comments_and_empty_steps;
    Alcotest.test_case "trace io errors" `Quick test_trace_io_errors;
  ]
