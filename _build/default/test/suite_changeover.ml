(* Changeover-cost variant: union DP correctness and the
   carrying-a-switch refinement. *)

open Hr_core
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

let space4 = Switch_space.make 4

let test_cost_of_hand_example () =
  (* One block {0,1} over 3 steps from empty start, w=2:
     2 + |{0,1} Δ ∅| + 2*3 = 2 + 2 + 6 = 10 *)
  let trace = Trace.of_lists space4 [ [ 0 ]; [ 1 ]; [ 0 ] ] in
  check int "one block" 10
    (St_changeover.cost_of ~w:2 trace ~breaks:[ 0 ] ~hcs:[ Bitset.of_list 4 [ 0; 1 ] ])

let test_cost_of_validates () =
  let trace = Trace.of_lists space4 [ [ 0 ]; [ 1 ] ] in
  Alcotest.check_raises "missing switch"
    (Invalid_argument "St_changeover.cost_of: step 1 not satisfied") (fun () ->
      ignore
        (St_changeover.cost_of ~w:1 trace ~breaks:[ 0 ] ~hcs:[ Bitset.of_list 4 [ 0 ] ]))

let brute_force_union_plans ~w ~initial trace =
  (* Enumerate all breakpoint sets; hypercontexts = block unions. *)
  let n = Trace.length trace in
  let best = ref max_int in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let breaks =
      0
      :: List.filter_map
           (fun i -> if mask land (1 lsl (i - 1)) <> 0 then Some i else None)
           (List.init (n - 1) (fun k -> k + 1))
    in
    let rec blocks = function
      | [] -> []
      | [ lo ] -> [ (lo, n - 1) ]
      | lo :: (next :: _ as rest) -> (lo, next - 1) :: blocks rest
    in
    let hcs = List.map (fun (lo, hi) -> Trace.range_union trace lo hi) (blocks breaks) in
    let c = St_changeover.cost_of ~w ~initial trace ~breaks ~hcs in
    if c < !best then best := c
  done;
  !best

let qcheck_union_dp_optimal =
  Tutil.prop "changeover union DP matches brute force"
    (Tutil.gen_st_instance ~max_n:8 ~max_width:4)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let w = inst.Tutil.v in
      let initial = Bitset.create inst.Tutil.width in
      let dp = St_changeover.solve_union ~w ~initial trace in
      let brute = brute_force_union_plans ~w ~initial trace in
      dp.St_changeover.cost = brute
      && dp.St_changeover.cost
         = St_changeover.cost_of ~w ~initial trace ~breaks:dp.St_changeover.breaks
             ~hcs:dp.St_changeover.hcs)

let test_carrying_beats_union () =
  (* Switch 0 is needed before and after a single expensive middle step
     {1..5}.  Every optimal union plan isolates the middle step and pays
     |{0} Δ {1..5}| = 6 on both boundaries (total 22); carrying switch 0
     through the middle block costs its length (1) but saves 2 on the
     changeovers, reaching 21 — strictly better than {e any} union plan.
     This is the documented regime where minimal hypercontexts stop
     being optimal under changeover costs. *)
  let space6 = Switch_space.make 6 in
  let trace =
    Trace.of_lists space6 [ [ 0 ]; [ 0 ]; [ 1; 2; 3; 4; 5 ]; [ 0 ]; [ 0 ] ]
  in
  let union = St_changeover.solve_union ~w:0 trace in
  let refined = St_changeover.refine ~w:0 trace union in
  check int "union best is 22" 22 union.St_changeover.cost;
  check int "refined reaches 21" 21 refined.St_changeover.cost

let qcheck_refine_never_hurts =
  Tutil.prop "refine never increases cost and stays valid"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let w = inst.Tutil.v in
      let union = St_changeover.solve_union ~w trace in
      let refined = St_changeover.refine ~w trace union in
      refined.St_changeover.cost <= union.St_changeover.cost
      && refined.St_changeover.cost
         = St_changeover.cost_of ~w trace ~breaks:refined.St_changeover.breaks
             ~hcs:refined.St_changeover.hcs)

let test_initial_hypercontext_counts () =
  (* Starting from a hypercontext that already contains the needed
     switch removes the first changeover. *)
  let trace = Trace.of_lists space4 [ [ 0 ] ] in
  let from_empty = St_changeover.solve_union ~w:1 trace in
  let from_loaded =
    St_changeover.solve_union ~w:1 ~initial:(Bitset.of_list 4 [ 0 ]) trace
  in
  check int "empty start" (1 + 1 + 1) from_empty.St_changeover.cost;
  check int "warm start" (1 + 0 + 1) from_loaded.St_changeover.cost

(* ---- multi-task changeover (Mt_changeover) ---- *)

let qcheck_mt_changeover_ga_vs_brute =
  Tutil.prop "multi-task changeover GA >= brute, evaluates consistently"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:2 ~max_n:5 ~max_width:3)
       (QCheck2.Gen.int_bound 500))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let brute_cost, _ = Mt_changeover.brute ~w:1 ts in
      let config =
        { Hr_evolve.Ga.default_config with Hr_evolve.Ga.generations = 60; population = 16 }
      in
      let r = Mt_changeover.solve ~w:1 ~config ~rng:(Hr_util.Rng.create seed) ts in
      r.Mt_changeover.cost >= brute_cost
      && Mt_changeover.cost_of ~w:1 ts r.Mt_changeover.bp = r.Mt_changeover.cost)

let test_mt_changeover_m1_matches_single () =
  (* With one task, Mt_changeover.brute must match the single-task
     union DP. *)
  let trace = Trace.of_lists space4 [ [ 0 ]; [ 1 ]; [ 0; 2 ]; [ 2 ] ] in
  let ts = Task_set.single ~name:"t" ~v:2 trace in
  (* Mt_changeover charges v_j + |change| per hyperreconfiguration (plus
     a global w once); St_changeover charges w + |change| per block.
     With v = St's w and Mt's global w = 0 the objectives coincide. *)
  let brute_cost, _ = Mt_changeover.brute ~w:0 ts in
  let dp = St_changeover.solve_union ~w:2 trace in
  check int "same optimum" dp.St_changeover.cost brute_cost

let test_mt_changeover_prefers_aligned_breaks () =
  let ts = Tutil.sample_task_set () in
  let r = Mt_changeover.solve ~w:1 ~rng:(Hr_util.Rng.create 4) ts in
  Alcotest.(check bool) "valid plan" true (Plan.validate r.Mt_changeover.plan ts = Ok ())

let tests =
  [
    Alcotest.test_case "hand example" `Quick test_cost_of_hand_example;
    qcheck_mt_changeover_ga_vs_brute;
    Alcotest.test_case "mt changeover m=1" `Quick test_mt_changeover_m1_matches_single;
    Alcotest.test_case "mt changeover plan valid" `Quick test_mt_changeover_prefers_aligned_breaks;
    Alcotest.test_case "cost_of validates" `Quick test_cost_of_validates;
    qcheck_union_dp_optimal;
    Alcotest.test_case "carrying beats union" `Quick test_carrying_beats_union;
    qcheck_refine_never_hurts;
    Alcotest.test_case "warm initial hypercontext" `Quick test_initial_hypercontext_counts;
  ]
