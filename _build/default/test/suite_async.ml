(* Mt_async (non-synchronized machines) and Trace_stats. *)

open Hr_core
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

let qcheck_async_is_max_of_solos =
  Tutil.prop "async optimum = max of per-task optima"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let r = Mt_async.solve ~init_global:5 oracle in
      let solos =
        List.init oracle.Interval_cost.m (fun j ->
            (St_opt.solve_oracle oracle ~task:j).St_opt.cost)
      in
      r.Mt_async.cost = 5 + List.fold_left max 0 solos
      && List.nth solos r.Mt_async.bottleneck = List.fold_left max 0 solos)

let qcheck_async_eval_lower_bounded_by_solve =
  Tutil.prop "async eval of any plan >= async optimum"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let rng = Hr_util.Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      Mt_async.eval oracle bp >= (Mt_async.solve oracle).Mt_async.cost)

let qcheck_async_no_worse_than_sync =
  (* Evaluating the same plan: the async machine overlaps everything the
     sync machine serializes per step, so async eval <= sync eval (with
     w = pub = 0, task-parallel). *)
  Tutil.prop "async eval <= sync eval on the same plan"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let rng = Hr_util.Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      Mt_async.eval oracle bp <= Sync_cost.eval oracle bp)

let test_async_single_task_reduces () =
  let space = Switch_space.make 4 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 1 ]; [ 2; 3 ] ] in
  let oracle = Interval_cost.of_single ~v:2 trace in
  let async = Mt_async.solve oracle in
  let solo, _ = St_opt.solve_trace ~v:2 trace in
  check int "same" solo.St_opt.cost async.Mt_async.cost

(* ---- Trace_stats ---- *)

let space8 = Switch_space.make 8

let test_stats_basics () =
  let trace = Trace.of_lists space8 [ [ 0; 1 ]; [ 0; 1 ]; [ 5 ] ] in
  let s = Trace_stats.analyze trace in
  check int "n" 3 s.Trace_stats.n;
  check int "universe" 8 s.Trace_stats.universe;
  check int "max req" 2 s.Trace_stats.max_req;
  check int "total union" 3 s.Trace_stats.total_union;
  check (Alcotest.float 1e-9) "mean req" (5. /. 3.) s.Trace_stats.mean_req

let test_jaccard () =
  let a = Bitset.of_list 8 [ 0; 1 ] and b = Bitset.of_list 8 [ 1; 2 ] in
  check (Alcotest.float 1e-9) "1/3" (1. /. 3.) (Trace_stats.jaccard a b);
  check (Alcotest.float 1e-9) "empty" 1.0
    (Trace_stats.jaccard (Bitset.create 8) (Bitset.create 8));
  check (Alcotest.float 1e-9) "identical" 1.0 (Trace_stats.jaccard a a)

let test_working_set () =
  let trace = Trace.of_lists space8 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  Alcotest.(check (array int)) "window 2" [| 2; 2; 2; 1 |]
    (Trace_stats.working_set trace ~window:2);
  Alcotest.(check (array int)) "window 1" [| 1; 1; 1; 1 |]
    (Trace_stats.working_set trace ~window:1)

let test_phases_detects_boundary () =
  (* Clean two-phase trace: working sets {0,1} then {6,7}. *)
  let trace =
    Trace.of_lists space8 [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 6; 7 ]; [ 6 ]; [ 7 ] ]
  in
  let ps = Trace_stats.phases trace in
  Alcotest.(check bool) "found >= 2 phases" true (List.length ps >= 2);
  (* Phases tile the trace. *)
  let covered = List.concat_map (fun (lo, hi) -> List.init (hi - lo + 1) (( + ) lo)) ps in
  Alcotest.(check (list int)) "tiling" [ 0; 1; 2; 3; 4; 5 ] covered

let qcheck_phases_always_tile =
  Tutil.prop "phases tile every trace"
    (Tutil.gen_st_instance ~max_n:20 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ps = Trace_stats.phases trace in
      let covered =
        List.concat_map (fun (lo, hi) -> List.init (hi - lo + 1) (( + ) lo)) ps
      in
      covered = List.init (Trace.length trace) Fun.id)

let test_counter_trace_is_loop_structured () =
  (* The counter's field-diff trace must look regular: high consecutive
     Jaccard similarity relative to a uniform random trace. *)
  let run = Hr_shyra.Counter.build ~init:0 ~bound:10 () in
  let counter = Hr_shyra.Tracer.trace run.Hr_shyra.Counter.program in
  let random =
    Hr_workload.Synthetic.uniform (Hr_util.Rng.create 3)
      (Trace.space counter) ~n:(Trace.length counter) ~density:0.4
  in
  let sc = Trace_stats.analyze counter and sr = Trace_stats.analyze random in
  Alcotest.(check bool) "more regular than random" true
    (sc.Trace_stats.mean_jaccard > sr.Trace_stats.mean_jaccard +. 0.1)

let tests =
  [
    qcheck_async_is_max_of_solos;
    qcheck_async_eval_lower_bounded_by_solve;
    qcheck_async_no_worse_than_sync;
    Alcotest.test_case "async m=1" `Quick test_async_single_task_reduces;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "jaccard" `Quick test_jaccard;
    Alcotest.test_case "working set" `Quick test_working_set;
    Alcotest.test_case "phase boundary" `Quick test_phases_detects_boundary;
    qcheck_phases_always_tile;
    Alcotest.test_case "counter regularity" `Quick test_counter_trace_is_loop_structured;
  ]
