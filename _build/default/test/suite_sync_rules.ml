(* The §3 taxonomy rules encoded in Sync. *)

open Hr_core

let ok = Alcotest.(check bool)

let machine ?(cls = Sync.Partially_hyperreconfigurable) ?(sync = Sync.Fully_synchronized)
    ?(resources = [ Sync.Local ]) ?(hyper = Sync.Task_parallel)
    ?(reconf = Sync.Task_parallel) () =
  { Sync.cls; sync; resources; hyper_upload = hyper; reconf_upload = reconf }

let test_paper_machine_valid () =
  ok "paper machine" true (Sync.validate Sync.paper_experiment_machine = Ok ())

let test_public_requires_context_sync () =
  let bad = machine ~sync:Sync.Non_synchronized ~resources:[ Sync.Public_global ] () in
  ok "rejected" true (Result.is_error (Sync.validate bad));
  let bad2 =
    machine ~sync:Sync.Hypercontext_synchronized ~resources:[ Sync.Public_global ] ()
  in
  ok "rejected hc-sync" true (Result.is_error (Sync.validate bad2));
  let good = machine ~sync:Sync.Context_synchronized ~resources:[ Sync.Public_global ] () in
  ok "accepted ctx-sync" true (Sync.validate good = Ok ());
  let good2 = machine ~sync:Sync.Fully_synchronized ~resources:[ Sync.Public_global ] () in
  ok "accepted fully-sync" true (Sync.validate good2 = Ok ())

let test_non_sync_must_be_parallel () =
  let bad = machine ~sync:Sync.Non_synchronized ~reconf:Sync.Task_sequential () in
  ok "sequential reconf rejected" true (Result.is_error (Sync.validate bad));
  let bad2 = machine ~sync:Sync.Context_synchronized ~hyper:Sync.Task_sequential () in
  (* Context-synchronized machines are not hypercontext-synchronized, so
     sequential hyper upload is rejected. *)
  ok "sequential hyper rejected" true (Result.is_error (Sync.validate bad2));
  let good = machine ~sync:Sync.Fully_synchronized ~hyper:Sync.Task_sequential () in
  ok "sequential ok when synchronized" true (Sync.validate good = Ok ())

let test_mode_predicates () =
  ok "fully is ctx" true (Sync.context_synchronized Sync.Fully_synchronized);
  ok "fully is hc" true (Sync.hypercontext_synchronized Sync.Fully_synchronized);
  ok "ctx not hc" false (Sync.hypercontext_synchronized Sync.Context_synchronized);
  ok "hc not ctx" false (Sync.context_synchronized Sync.Hypercontext_synchronized);
  ok "non neither" false
    (Sync.context_synchronized Sync.Non_synchronized
    || Sync.hypercontext_synchronized Sync.Non_synchronized)

let test_pp_smoke () =
  let s = Format.asprintf "%a %a %a %a" Sync.pp_machine_class
      Sync.Partially_hyperreconfigurable Sync.pp_sync_mode Sync.Fully_synchronized
      Sync.pp_resource_class Sync.Private_global Sync.pp_upload_mode Sync.Task_parallel
  in
  ok "printable" true (String.length s > 0)

let tests =
  [
    Alcotest.test_case "paper machine" `Quick test_paper_machine_valid;
    Alcotest.test_case "public needs ctx sync" `Quick test_public_requires_context_sync;
    Alcotest.test_case "non-sync parallel only" `Quick test_non_sync_must_be_parallel;
    Alcotest.test_case "mode predicates" `Quick test_mode_predicates;
    Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
  ]
