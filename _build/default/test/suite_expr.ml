(* The boolean-expression compiler: semantics, CSE, scheduling,
   register allocation, and the Duo two-fabric instance. *)

open Hr_shyra
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let all_envs names =
  let rec go = function
    | [] -> [ [] ]
    | name :: rest ->
        List.concat_map
          (fun env -> [ (name, false) :: env; (name, true) :: env ])
          (go rest)
  in
  go names

let check_expr_exhaustively e =
  let names = Expr.inputs e in
  List.iter
    (fun env ->
      let expected = Expr.eval (fun s -> List.assoc s env) e in
      let got = Expr.run e ~env in
      if got <> expected then
        Alcotest.failf "mismatch under %s"
          (String.concat ","
             (List.map (fun (s, b) -> Printf.sprintf "%s=%b" s b) env)))
    (all_envs names)

let test_basic_gates () =
  let a = Expr.var "a" and b = Expr.var "b" in
  List.iter check_expr_exhaustively
    Expr.[ a &&& b; a ||| b; a ^^^ b; not_ a; a; Const true; Const false ]

let test_full_adder () =
  (* sum = a xor b xor cin; carry = majority *)
  let a = Expr.var "a" and b = Expr.var "b" and cin = Expr.var "cin" in
  check_expr_exhaustively Expr.(a ^^^ b ^^^ cin);
  check_expr_exhaustively Expr.(a &&& b ||| (cin &&& (a ^^^ b)))

let test_deep_expression () =
  let a = Expr.var "a" and b = Expr.var "b" and c = Expr.var "c" and d = Expr.var "d" in
  check_expr_exhaustively
    Expr.(
      not_ (a &&& b) ^^^ (c ||| not_ d) &&& (a ^^^ (b ||| (c &&& d))) ||| not_ (a ^^^ d))

let qcheck_random_expressions =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random expressions compile correctly" ~count:60
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 5))
       (fun (seed, depth) ->
         let e = Expr.random (Rng.create seed) ~inputs:[ "a"; "b"; "c" ] ~depth in
         let names = Expr.inputs e in
         List.for_all
           (fun env ->
             Expr.run e ~env = Expr.eval (fun s -> List.assoc s env) e)
           (all_envs names)))

let test_cse_shares_work () =
  let a = Expr.var "a" and b = Expr.var "b" in
  let shared = Expr.(a ^^^ b) in
  let duplicated = Expr.(shared &&& shared) in
  let c = Expr.compile duplicated in
  (* xor once + and once, not xor twice. *)
  check int "2 ops after CSE" 2 c.Expr.ops

let test_constant_dedup () =
  (* The simplifier folds the whole expression to a single constant. *)
  let e = Expr.(Const true ^^^ Const true) in
  let c = Expr.compile e in
  check int "1 op after folding" 1 c.Expr.ops;
  check bool "value" false (Expr.run e ~env:[])

let qcheck_simplify_preserves_semantics =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"simplify preserves semantics" ~count:100
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 6))
       (fun (seed, depth) ->
         let e = Expr.random (Rng.create seed) ~inputs:[ "a"; "b"; "c" ] ~depth in
         let s = Expr.simplify e in
         List.for_all
           (fun env ->
             let lookup v = List.assoc v env in
             Expr.eval lookup e = Expr.eval lookup s)
           (all_envs [ "a"; "b"; "c" ])))

let test_simplify_rules () =
  let a = Expr.var "a" in
  Alcotest.(check bool) "double negation" true (Expr.simplify Expr.(not_ (not_ a)) = a);
  Alcotest.(check bool) "and true" true (Expr.simplify Expr.(a &&& Const true) = a);
  Alcotest.(check bool) "xor false" true (Expr.simplify Expr.(a ^^^ Const false) = a);
  Alcotest.(check bool) "or true" true
    (Expr.simplify Expr.(a ||| Const true) = Expr.Const true)

let test_compile_many_shares_carry_chain () =
  (* Whole-word ripple add: joint compilation shares the carry chain
     across output bits, so the op count beats independent
     compilations (which must re-derive every carry). *)
  (* A 4-leaf shared subexpression used by four outputs: separate
     compilation must re-derive it each time (it cannot fuse into one
     3-input LUT), joint compilation computes it once. *)
  let a = Expr.var "a" and b = Expr.var "b" in
  let c = Expr.var "c" and d = Expr.var "d" in
  let shared = Expr.((a ^^^ b) &&& (c ^^^ d)) in
  let outs = List.map (fun x -> Expr.(shared ^^^ x)) [ a; b; c; d ] in
  let joint = Expr.compile_many outs in
  let separate =
    List.fold_left (fun acc e -> acc + (Expr.compile e).Expr.ops) 0 outs
  in
  Alcotest.(check bool)
    (Printf.sprintf "joint (%d) < separate (%d)" joint.Expr.many_ops separate)
    true
    (joint.Expr.many_ops < separate);
  (* Whole-word ripple add through the joint path stays correct. *)
  let wa = Word.input "a" ~bits:3 and wb = Word.input "b" ~bits:3 in
  let sum = Word.add wa wb in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let env = Word.bindings "a" ~bits:3 x @ Word.bindings "b" ~bits:3 y in
      if Word.run sum ~env <> (x + y) mod 8 then Alcotest.failf "add %d %d" x y
    done
  done;
  (* succ still works through the joint path. *)
  let w = Word.input "v" ~bits:4 in
  let next = Word.succ w in
  for x = 0 to 15 do
    let env = Word.bindings "v" ~bits:4 x in
    if Word.run next ~env <> (x + 1) mod 16 then Alcotest.failf "succ %d" x
  done

let test_run_many_order () =
  let a = Expr.var "a" in
  let outs = Expr.run_many [ a; Expr.not_ a; Expr.Const true ] ~env:[ ("a", false) ] in
  Alcotest.(check (list bool)) "ordered results" [ false; true; true ] outs

let test_counter_compiled_matches_handwritten_semantics () =
  for bound = 0 to 15 do
    let r = Counter_compiled.build ~init:0 ~bound () in
    if r.Counter_compiled.iterations <> bound then
      Alcotest.failf "bound %d: %d iterations" bound r.Counter_compiled.iterations;
    if r.Counter_compiled.final_value <> bound then
      Alcotest.failf "bound %d: final %d" bound r.Counter_compiled.final_value
  done

let test_counter_compiled_wraps () =
  let r = Counter_compiled.build ~init:12 ~bound:3 () in
  check int "wraps like the handwritten counter" 7 r.Counter_compiled.iterations

let test_bare_input () =
  let c = Expr.compile (Expr.var "x") in
  check int "no ops" 0 c.Expr.ops;
  check bool "identity" true (Expr.run (Expr.var "x") ~env:[ ("x", true) ])

let test_register_exhaustion_raises () =
  (* 9 inputs + enough simultaneously-live intermediates must blow the
     10-register file. *)
  let vars = List.init 9 (fun i -> Expr.var (Printf.sprintf "x%d" i)) in
  let pairs =
    (* xor adjacent pairs, keeping all results live via a balanced
       tree built at the very end. *)
    List.mapi (fun i v -> Expr.(v ^^^ Expr.var (Printf.sprintf "y%d" i))) vars
  in
  ignore pairs;
  match
    Expr.compile
      (List.fold_left (fun acc v -> Expr.(acc ^^^ v)) (List.hd vars) (List.tl vars))
  with
  | exception Expr.Out_of_registers -> ()
  | _ ->
      (* A left fold is register-frugal and may well fit; force the
         issue with > 10 inputs instead. *)
      let too_many =
        List.init 11 (fun i -> Expr.var (Printf.sprintf "z%d" i))
      in
      Alcotest.check_raises "11 inputs"
        (Invalid_argument "Expr.compile: more than 10 distinct inputs") (fun () ->
          ignore
            (Expr.compile
               (List.fold_left
                  (fun acc v -> Expr.(acc ^^^ v))
                  (List.hd too_many) (List.tl too_many))))

let test_compiled_program_is_dense_workload () =
  (* Two adders over disjoint inputs: plenty of independent ops, so the
     scheduler must pack two per cycle (cycles < ops). *)
  let a = Word.input "a" ~bits:2 and b = Word.input "b" ~bits:2 in
  let c = Word.input "c" ~bits:2 and d = Word.input "d" ~bits:2 in
  let joint =
    Expr.compile_many (Array.to_list (Word.add a b) @ Array.to_list (Word.add c d))
  in
  let cycles = Program.length joint.Expr.many_program in
  Alcotest.(check bool) "has cycles" true (cycles >= 2);
  Alcotest.(check bool) "at most 2 ops/cycle" true
    (cycles >= (joint.Expr.many_ops + 1) / 2);
  Alcotest.(check bool) "packs in parallel" true (cycles < joint.Expr.many_ops)

(* ---- Duo ---- *)

let test_duo_pads_to_common_length () =
  let counter = (Counter.build ~init:0 ~bound:3 ()).Counter.program in
  let gray = Gray.build () in
  let ts = Duo.task_set ("counter", counter) ("gray", gray) in
  check int "two tasks" 2 (Hr_core.Task_set.num_tasks ts);
  check int "padded to the longer program" (Program.length counter)
    (Hr_core.Task_set.steps ts);
  (* The padded tail of the short task has empty requirements. *)
  let short = (Hr_core.Task_set.get ts 1).Hr_core.Task_set.trace in
  let tail = Hr_core.Trace.req short (Hr_core.Trace.length short - 1) in
  check int "idle tail" 0 (Hr_util.Bitset.cardinal tail)

let test_duo_plans_beat_disabled () =
  let counter = (Counter.build ~init:0 ~bound:10 ()).Counter.program in
  let rule90 = Rule90.build ~steps:10 in
  let oracle = Duo.oracle ("counter", counter) ("rule90", rule90) in
  let n = oracle.Hr_core.Interval_cost.n in
  let disabled = Hr_core.Sync_cost.disabled_cost ~n ~machine_width:96 () in
  let plan = Hr_core.Mt_local.solve oracle in
  Alcotest.(check bool) "beats disabled" true (plan.Hr_core.Mt_local.cost < disabled)

(* ---- Word ---- *)

let env_of bindings s = List.assoc s bindings

let test_word_add_exhaustive () =
  let a = Word.input "a" ~bits:3 and b = Word.input "b" ~bits:3 in
  let sum = Word.add a b in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let env =
        env_of (Word.bindings "a" ~bits:3 x @ Word.bindings "b" ~bits:3 y)
      in
      if Word.eval env sum <> (x + y) mod 8 then Alcotest.failf "%d+%d wrong" x y
    done
  done

let test_word_compare_exhaustive () =
  let a = Word.input "a" ~bits:3 and b = Word.input "b" ~bits:3 in
  let eq = Word.equal a b and lt = Word.less_than a b in
  for x = 0 to 7 do
    for y = 0 to 7 do
      let env =
        env_of (Word.bindings "a" ~bits:3 x @ Word.bindings "b" ~bits:3 y)
      in
      if Expr.eval env eq <> (x = y) then Alcotest.failf "eq %d %d" x y;
      if Expr.eval env lt <> (x < y) then Alcotest.failf "lt %d %d" x y
    done
  done

let test_word_mux_and_logic () =
  let a = Word.input "a" ~bits:2 and b = Word.input "b" ~bits:2 in
  let sel = Expr.var "s" in
  let m = Word.mux sel ~then_:a ~else_:b in
  for x = 0 to 3 do
    for y = 0 to 3 do
      List.iter
        (fun s ->
          let env =
            env_of
              ((("s", s) :: Word.bindings "a" ~bits:2 x)
              @ Word.bindings "b" ~bits:2 y)
          in
          if Word.eval env m <> (if s then x else y) then Alcotest.fail "mux";
          if Word.eval env (Word.logxor a b) <> x lxor y then Alcotest.fail "xor";
          if Word.eval env (Word.logand a b) <> x land y then Alcotest.fail "and")
        [ true; false ]
    done
  done

let test_word_succ_is_counter_step () =
  let w = Word.input "v" ~bits:4 in
  let next = Word.succ w in
  for x = 0 to 15 do
    let env = env_of (Word.bindings "v" ~bits:4 x) in
    if Word.eval env next <> (x + 1) mod 16 then Alcotest.failf "succ %d" x
  done

let test_word_compile_bit_on_shyra () =
  (* The adder's bit 1 compiled and executed on the machine. *)
  let a = Word.input "a" ~bits:2 and b = Word.input "b" ~bits:2 in
  let sum = Word.add a b in
  for x = 0 to 3 do
    for y = 0 to 3 do
      let env = Word.bindings "a" ~bits:2 x @ Word.bindings "b" ~bits:2 y in
      let expected = ((x + y) lsr 1) land 1 = 1 in
      if Expr.run sum.(1) ~env <> expected then Alcotest.failf "bit1 of %d+%d" x y
    done
  done

(* ---- St_opt.frontier ---- *)

let test_frontier_shape () =
  let trace =
    Hr_core.Trace.of_lists (Hr_core.Switch_space.make 4)
      [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 2; 3 ] ]
  in
  let ru = Hr_core.Range_union.make trace in
  let step_cost lo hi = Hr_core.Range_union.size ru lo hi in
  let front = Hr_core.St_opt.frontier ~v:2 ~n:6 ~step_cost in
  (* Strictly improving costs, ascending budgets; tail = optimum. *)
  let costs = List.map snd front in
  let budgets = List.map fst front in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "costs strictly decrease" true (strictly_decreasing costs);
  Alcotest.(check bool) "budgets ascend" true (budgets = List.sort compare budgets);
  let opt = (Hr_core.St_opt.solve ~v:2 ~n:6 ~step_cost).Hr_core.St_opt.cost in
  check int "tail is optimum" opt (List.nth costs (List.length costs - 1))

(* ---- fig2_paper ---- *)

let test_fig2_paper_legend () =
  let ts = Tutil.sample_task_set () in
  let bp = Hr_core.Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [] |] in
  let out = Hr_viz.Figures.fig2_paper ts bp in
  Alcotest.(check bool) "legend" true
    (Astring.String.is_infix ~affix:"available but unused" out);
  Alcotest.(check bool) "marks" true (Astring.String.is_infix ~affix:"^" out)

(* ---- Expr_parse ---- *)

let test_parse_precedence () =
  (* & binds tighter than ^, which binds tighter than |. *)
  let e = Expr_parse.parse_exn "a | b ^ c & d" in
  Alcotest.(check bool) "a | (b ^ (c & d))" true
    (e = Expr.(var "a" ||| (var "b" ^^^ (var "c" &&& var "d"))));
  let f = Expr_parse.parse_exn "!a & b" in
  Alcotest.(check bool) "(!a) & b" true (f = Expr.(not_ (var "a") &&& var "b"))

let test_parse_literals_and_comments () =
  let e = Expr_parse.parse_exn "x0 & 1 ^ 0 # comment" in
  Alcotest.(check bool) "consts parsed" true
    (e = Expr.((var "x0" &&& Const true) ^^^ Const false))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Expr_parse.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ ""; "a &"; "(a"; "a b"; "a @ b"; ")" ]

let qcheck_parse_print_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parse/print roundtrip preserves semantics" ~count:100
       ~print:(fun (seed, depth) -> Printf.sprintf "seed=%d depth=%d" seed depth)
       QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 6))
       (fun (seed, depth) ->
         let e = Expr.random (Rng.create seed) ~inputs:[ "a"; "b"; "c" ] ~depth in
         let reparsed = Expr_parse.parse_exn (Expr_parse.print e) in
         List.for_all
           (fun env ->
             let lookup v = List.assoc v env in
             Expr.eval lookup e = Expr.eval lookup reparsed)
           (all_envs [ "a"; "b"; "c" ])))

let tests =
  [
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse literals" `Quick test_parse_literals_and_comments;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    qcheck_parse_print_roundtrip;
    Alcotest.test_case "word add" `Quick test_word_add_exhaustive;
    Alcotest.test_case "word compare" `Quick test_word_compare_exhaustive;
    Alcotest.test_case "word mux/logic" `Quick test_word_mux_and_logic;
    Alcotest.test_case "word succ" `Quick test_word_succ_is_counter_step;
    Alcotest.test_case "word compile bit" `Quick test_word_compile_bit_on_shyra;
    Alcotest.test_case "frontier" `Quick test_frontier_shape;
    Alcotest.test_case "fig2 paper legend" `Quick test_fig2_paper_legend;
    Alcotest.test_case "basic gates" `Quick test_basic_gates;
    Alcotest.test_case "full adder" `Quick test_full_adder;
    Alcotest.test_case "deep expression" `Quick test_deep_expression;
    qcheck_random_expressions;
    Alcotest.test_case "cse" `Quick test_cse_shares_work;
    Alcotest.test_case "constant dedup" `Quick test_constant_dedup;
    qcheck_simplify_preserves_semantics;
    Alcotest.test_case "simplify rules" `Quick test_simplify_rules;
    Alcotest.test_case "compile_many carry chain" `Quick test_compile_many_shares_carry_chain;
    Alcotest.test_case "run_many order" `Quick test_run_many_order;
    Alcotest.test_case "compiled counter semantics" `Quick test_counter_compiled_matches_handwritten_semantics;
    Alcotest.test_case "compiled counter wraps" `Quick test_counter_compiled_wraps;
    Alcotest.test_case "bare input" `Quick test_bare_input;
    Alcotest.test_case "register exhaustion" `Quick test_register_exhaustion_raises;
    Alcotest.test_case "dense workload" `Quick test_compiled_program_is_dense_workload;
    Alcotest.test_case "duo padding" `Quick test_duo_pads_to_common_length;
    Alcotest.test_case "duo planning" `Quick test_duo_plans_beat_disabled;
  ]
