(* SHyRA simulator and application correctness. *)

open Hr_shyra
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let test_lut_tables () =
  check int "xor table" 0x66 (Lut.table Lut.xor01);
  check int "and table" 0x88 (Lut.table Lut.and01);
  check int "not table" 0x55 (Lut.table Lut.not0);
  check int "buf table" 0xAA (Lut.table Lut.buf0);
  check int "xnor table" 0x99 (Lut.table Lut.xnor01);
  check int "xor3 table" 0x96 (Lut.table Lut.xor3);
  check int "maj3 table" 0xE8 (Lut.table Lut.maj3)

let test_lut_eval () =
  check bool "xor3 101" false (Lut.eval Lut.xor3 true false true);
  check bool "xor3 111" true (Lut.eval Lut.xor3 true true true);
  check bool "maj3 110" true (Lut.eval Lut.maj3 true true false);
  check bool "maj3 100" false (Lut.eval Lut.maj3 true false false);
  check bool "eq_acc eq" true (Lut.eval Lut.eq_acc true true true);
  check bool "eq_acc neq" false (Lut.eval Lut.eq_acc true false true);
  check bool "eq_acc acc0" false (Lut.eval Lut.eq_acc true true false)

let test_lut_of_fn_roundtrip () =
  for table = 0 to 255 do
    let lut = Lut.of_table table in
    let rebuilt = Lut.of_fn (Lut.eval lut) in
    if Lut.table rebuilt <> table then
      Alcotest.failf "of_fn/eval roundtrip broken for table 0x%02X" table
  done

let test_config_encode_decode_roundtrip () =
  let cfg =
    Config.make ~lut1:Lut.xor01 ~lut2:Lut.maj3 ~mux:[| 3; 1; 4; 1; 5; 9 |]
      ~demux:[| 2; 6 |]
  in
  let cfg' = Config.decode (Config.encode cfg) in
  check bool "roundtrip" true (Config.equal cfg cfg')

let test_config_power_on_roundtrip () =
  let cfg' = Config.decode (Config.encode Config.power_on) in
  check bool "power-on roundtrip" true (Config.equal Config.power_on cfg')

let test_config_width () =
  check int "48 bits" 48 Config.width;
  check int "space size" 48 (Hr_core.Switch_space.size Config.space)

let test_config_rejects_conflicting_demux () =
  Alcotest.check_raises "demux conflict" (Invalid_argument "Config.make: both DeMUX lines write the same register")
    (fun () ->
      ignore (Config.make ~lut1:Lut.zero ~lut2:Lut.zero ~mux:(Array.make 6 0) ~demux:[| 3; 3 |]))

let test_config_rejects_bad_mux () =
  Alcotest.check_raises "mux range" (Invalid_argument "Config.make: mux select 10 out of range")
    (fun () ->
      ignore
        (Config.make ~lut1:Lut.zero ~lut2:Lut.zero ~mux:[| 10; 0; 0; 0; 0; 0 |]
           ~demux:[| Config.no_write; Config.no_write |]))

let test_config_diff_is_bitwise () =
  let a =
    Config.make ~lut1:Lut.zero ~lut2:Lut.zero ~mux:(Array.make 6 0)
      ~demux:[| Config.no_write; Config.no_write |]
  in
  (* Changing one MUX select from 0 to 1 flips exactly one bit. *)
  let b =
    Config.make ~lut1:Lut.zero ~lut2:Lut.zero ~mux:[| 1; 0; 0; 0; 0; 0 |]
      ~demux:[| Config.no_write; Config.no_write |]
  in
  check int "single-bit diff" 1 (Bitset.cardinal (Config.diff a b));
  check int "self diff empty" 0 (Bitset.cardinal (Config.diff a a))

let test_machine_step_reads_before_writes () =
  (* LUT1 negates r0 into r0 while LUT2 buffers r0 into r8: both must
     see the pre-cycle value of r0. *)
  let cfg =
    Config.make ~lut1:Lut.not0 ~lut2:Lut.buf0 ~mux:[| 0; 0; 0; 0; 0; 0 |]
      ~demux:[| 0; 8 |]
  in
  let s = Machine.set (Machine.create ()) 0 true in
  let s' = Machine.step cfg s in
  check bool "r0 negated" false (Machine.get s' 0);
  check bool "r8 got old r0" true (Machine.get s' 8)

let test_machine_nibble_roundtrip () =
  let s = Machine.write_nibble (Machine.create ()) 4 13 in
  check int "nibble" 13 (Machine.read_nibble s 4);
  check int "other regs untouched" 0 (Machine.read_nibble s 0)

let test_counter_counts_to_bound () =
  let r = Counter.build ~init:0 ~bound:10 () in
  check int "iterations" 10 r.Counter.iterations;
  check int "final value" 10 (Machine.read_nibble r.Counter.final 0);
  check bool "eq flag" true (Machine.get r.Counter.final 8);
  (* 11 comparisons + 10 increments, 4 cycles each *)
  check int "cycles" 84 (Program.length r.Counter.program)

let test_counter_all_bounds () =
  for bound = 0 to 15 do
    let r = Counter.build ~init:0 ~bound () in
    if r.Counter.iterations <> bound then
      Alcotest.failf "bound %d: took %d increments" bound r.Counter.iterations;
    if Machine.read_nibble r.Counter.final 0 <> bound then
      Alcotest.failf "bound %d: wrong final value" bound
  done

let test_counter_wraps_modulo_16 () =
  (* init > bound: the counter wraps through 15 and reaches the bound. *)
  let r = Counter.build ~init:12 ~bound:3 () in
  check int "iterations with wrap" 7 r.Counter.iterations;
  check int "final" 3 (Machine.read_nibble r.Counter.final 0)

let test_counter_init_equals_bound () =
  let r = Counter.build ~init:5 ~bound:5 () in
  check int "no increments" 0 r.Counter.iterations;
  check int "only one compare phase" Counter.compare_cycles
    (Program.length r.Counter.program)

let test_adder_exhaustive () =
  for a = 0 to 15 do
    for b = 0 to 15 do
      let sum, carry = Serial_adder.run ~a ~b in
      if sum <> (a + b) mod 16 then Alcotest.failf "%d+%d: sum %d" a b sum;
      if carry <> (a + b >= 16) then Alcotest.failf "%d+%d: carry wrong" a b
    done
  done

let test_adder_sum_program () =
  let prog, total = Serial_adder.sum_program [ 3; 4; 5 ] in
  check int "total" 12 total;
  check int "cycles" (3 * 4) (Program.length prog)

let test_lfsr_period_15 () =
  for seed = 1 to 15 do
    let seen = Lfsr.sequence ~seed ~steps:15 in
    let final = List.nth seen 14 in
    if final <> seed then Alcotest.failf "seed %d: period not 15" seed;
    let distinct = List.sort_uniq compare seen in
    if List.length distinct <> 15 then
      Alcotest.failf "seed %d: only %d distinct states" seed (List.length distinct);
    if List.mem 0 seen then Alcotest.failf "seed %d: reached all-zero state" seed
  done

let test_lfsr_matches_reference () =
  (* Reference software LFSR: b0' = b3 xor b2 (incoming), left shift. *)
  let reference s =
    let b i = (s lsr i) land 1 in
    let fb = b 3 lxor b 2 in
    ((s lsl 1) land 0xF) lor fb
  in
  let rec check_steps s k =
    if k > 0 then begin
      let expected = reference s in
      let got = Lfsr.run ~seed:s ~steps:1 in
      if got <> expected then Alcotest.failf "state %d: got %d expected %d" s got expected;
      check_steps expected (k - 1)
    end
  in
  check_steps 1 20

let test_parity_exhaustive () =
  for v = 0 to 255 do
    let expected =
      let rec pop x = if x = 0 then 0 else (x land 1) + pop (x lsr 1) in
      pop v mod 2 = 1
    in
    if Parity.run v <> expected then Alcotest.failf "parity of %d wrong" v
  done

let test_gray_exhaustive () =
  for v = 0 to 15 do
    let expected = v lxor (v lsr 1) in
    let got = Gray.run v in
    if got <> expected then Alcotest.failf "gray(%d): got %d expected %d" v got expected
  done

let test_rule90_matches_reference () =
  for cells = 0 to 255 do
    for steps = 0 to 4 do
      let got = Rule90.run ~cells ~steps in
      let expected = Rule90.reference ~cells ~steps in
      if got <> expected then
        Alcotest.failf "rule90 cells=%d steps=%d: got %d expected %d" cells steps got
          expected
    done
  done

let test_rule90_cycle_count () =
  check int "8 cycles per step" (8 * 5) (Program.length (Rule90.build ~steps:5));
  check int "step_cycles" 8 Rule90.step_cycles

let test_rule90_known_pattern () =
  (* A single centre cell spreads as the Sierpinski triangle:
     00010000 -> 00101000 -> 01000100 (with xor boundaries). *)
  check int "one step" 0b00101000 (Rule90.run ~cells:0b00010000 ~steps:1);
  check int "two steps" 0b01000100 (Rule90.run ~cells:0b00010000 ~steps:2)

let test_asm_hold_semantics () =
  (* A cycle that sets nothing emits a configuration identical to the
     previous one. *)
  let prog =
    Asm.assemble
      (Asm.cycle ~lut1:Lut.xor01 ~sels:[ (0, 1) ] ~routes:[ (0, Some 2) ] "a"
      @ Asm.cycle "b")
  in
  match Program.configs prog with
  | [ c1; c2 ] -> check bool "held" true (Config.equal c1 c2)
  | _ -> Alcotest.fail "expected two cycles"

let test_asm_rejects_trailing () =
  Alcotest.check_raises "trailing"
    (Invalid_argument "Asm.assemble: trailing instructions without Commit")
    (fun () -> ignore (Asm.assemble [ Asm.Lut1 Lut.zero ]))

let test_tracer_diff_mode () =
  let prog =
    Asm.assemble
      (Asm.cycle ~lut1:Lut.xor01 ~sels:[ (0, 1) ] ~routes:[ (0, Some 2) ] "a"
      @ Asm.cycle "b"
      @ Asm.cycle ~lut1:Lut.and01 "c")
  in
  let trace = Tracer.trace ~mode:Tracer.Diff prog in
  check int "3 steps" 3 (Hr_core.Trace.length trace);
  check int "step 1 diff empty" 0 (Bitset.cardinal (Hr_core.Trace.req trace 1));
  (* step 2 changes only LUT1 bits: XOR(0x66) -> AND(0x88) differs in 6 bits *)
  check int "step 2 diff" 6 (Bitset.cardinal (Hr_core.Trace.req trace 2));
  Bitset.iter
    (fun b -> if b > 7 then Alcotest.fail "diff escaped LUT1 field")
    (Hr_core.Trace.req trace 2)

let test_tracer_field_diff_mode () =
  let prog =
    Asm.assemble
      (Asm.cycle ~lut1:Lut.xor01 ~sels:[ (0, 1) ] ~routes:[ (0, Some 2) ] "a"
      @ Asm.cycle "b"
      @ Asm.cycle ~lut1:Lut.and01 "c")
  in
  let trace = Tracer.trace ~mode:Tracer.Field_diff prog in
  (* Step 2 rewrites the whole 8-bit LUT1 table, nothing else. *)
  check int "step 2 field diff" 8 (Bitset.cardinal (Hr_core.Trace.req trace 2));
  check int "step 1 empty" 0 (Bitset.cardinal (Hr_core.Trace.req trace 1));
  (* Step 0 touches LUT1 (8) + mux0 (4) + demux0 (4). *)
  check int "step 0 fields" 16 (Bitset.cardinal (Hr_core.Trace.req trace 0));
  (* Field diff is always a superset of the bit diff. *)
  let bitwise = Tracer.trace ~mode:Tracer.Diff prog in
  for i = 0 to 2 do
    if not (Bitset.subset (Hr_core.Trace.req bitwise i) (Hr_core.Trace.req trace i))
    then Alcotest.failf "field diff not a superset at step %d" i
  done

let test_tracer_in_use_mode () =
  let prog =
    Asm.assemble (Asm.cycle ~lut1:Lut.xor01 ~sels:[ (0, 1) ] ~routes:[ (0, Some 2) ] "a")
  in
  let trace = Tracer.trace ~mode:Tracer.In_use prog in
  let req = Hr_core.Trace.req trace 0 in
  (* LUT1 (8) + mux lines 0-2 (12) + both demux fields (8) = 28 bits *)
  check int "in-use size" 28 (Bitset.cardinal req)

let test_tasks_split_partition () =
  let r = Counter.build ~init:0 ~bound:5 () in
  let trace = Tracer.trace r.Counter.program in
  let ts = Tasks.split trace Tasks.four_tasks in
  check int "4 tasks" 4 (Hr_core.Task_set.num_tasks ts);
  check int "same steps" (Hr_core.Trace.length trace) (Hr_core.Task_set.steps ts);
  let sizes =
    Array.map
      (fun t ->
        Hr_core.Switch_space.size (Hr_core.Trace.space t.Hr_core.Task_set.trace))
      (Hr_core.Task_set.tasks ts)
  in
  Alcotest.(check (array int)) "local sizes" [| 8; 8; 8; 24 |] sizes;
  (* Default v_j = l_j, the paper's special case. *)
  let vs = Array.map (fun t -> t.Hr_core.Task_set.v) (Hr_core.Task_set.tasks ts) in
  Alcotest.(check (array int)) "v = local size" [| 8; 8; 8; 24 |] vs

let test_tasks_split_preserves_bits () =
  (* The per-task requirement sizes at each step must sum to the
     machine-wide requirement size. *)
  let r = Counter.build ~init:0 ~bound:7 () in
  let trace = Tracer.trace r.Counter.program in
  let ts = Tasks.split trace Tasks.four_tasks in
  let n = Hr_core.Trace.length trace in
  for i = 0 to n - 1 do
    let whole = Bitset.cardinal (Hr_core.Trace.req trace i) in
    let parts =
      Array.fold_left
        (fun acc t ->
          acc + Bitset.cardinal (Hr_core.Trace.req t.Hr_core.Task_set.trace i))
        0 (Hr_core.Task_set.tasks ts)
    in
    if whole <> parts then Alcotest.failf "step %d: %d vs %d" i whole parts
  done

let tests =
  [
    Alcotest.test_case "lut tables" `Quick test_lut_tables;
    Alcotest.test_case "lut eval" `Quick test_lut_eval;
    Alcotest.test_case "lut of_fn roundtrip" `Quick test_lut_of_fn_roundtrip;
    Alcotest.test_case "config encode/decode" `Quick test_config_encode_decode_roundtrip;
    Alcotest.test_case "config power-on roundtrip" `Quick test_config_power_on_roundtrip;
    Alcotest.test_case "config width" `Quick test_config_width;
    Alcotest.test_case "config demux conflict" `Quick test_config_rejects_conflicting_demux;
    Alcotest.test_case "config mux range" `Quick test_config_rejects_bad_mux;
    Alcotest.test_case "config diff bitwise" `Quick test_config_diff_is_bitwise;
    Alcotest.test_case "machine read-before-write" `Quick test_machine_step_reads_before_writes;
    Alcotest.test_case "machine nibbles" `Quick test_machine_nibble_roundtrip;
    Alcotest.test_case "counter 0->10" `Quick test_counter_counts_to_bound;
    Alcotest.test_case "counter all bounds" `Quick test_counter_all_bounds;
    Alcotest.test_case "counter wraps" `Quick test_counter_wraps_modulo_16;
    Alcotest.test_case "counter trivial" `Quick test_counter_init_equals_bound;
    Alcotest.test_case "adder exhaustive" `Quick test_adder_exhaustive;
    Alcotest.test_case "adder sum program" `Quick test_adder_sum_program;
    Alcotest.test_case "lfsr period 15" `Quick test_lfsr_period_15;
    Alcotest.test_case "lfsr reference" `Quick test_lfsr_matches_reference;
    Alcotest.test_case "parity exhaustive" `Quick test_parity_exhaustive;
    Alcotest.test_case "gray exhaustive" `Quick test_gray_exhaustive;
    Alcotest.test_case "rule90 reference" `Quick test_rule90_matches_reference;
    Alcotest.test_case "rule90 cycles" `Quick test_rule90_cycle_count;
    Alcotest.test_case "rule90 sierpinski" `Quick test_rule90_known_pattern;
    Alcotest.test_case "asm hold semantics" `Quick test_asm_hold_semantics;
    Alcotest.test_case "asm trailing" `Quick test_asm_rejects_trailing;
    Alcotest.test_case "tracer diff" `Quick test_tracer_diff_mode;
    Alcotest.test_case "tracer field diff" `Quick test_tracer_field_diff_mode;
    Alcotest.test_case "tracer in-use" `Quick test_tracer_in_use_mode;
    Alcotest.test_case "tasks split" `Quick test_tasks_split_partition;
    Alcotest.test_case "tasks bits preserved" `Quick test_tasks_split_preserves_bits;
  ]
