(* Rng determinism, Stats, Tablefmt. *)

module Rng = Hr_util.Rng
module Stats = Hr_util.Stats
module Tablefmt = Hr_util.Tablefmt

let check = Alcotest.check
let int = Alcotest.int

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    if v < -3 || v > 3 then Alcotest.failf "out of range: %d" v
  done

let test_rng_uniformity () =
  (* Coarse sanity: 6000 draws over 6 buckets, each within ±25 %. *)
  let rng = Rng.create 11 in
  let buckets = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int rng 6 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c < 750 || c > 1250 then Alcotest.failf "bucket %d has %d" i c)
    buckets

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 5 (fun _ -> Rng.bits64 a) in
  let ys = List.init 5 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "independent streams" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  check int "n" 4 s.Stats.n;
  check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
  check (Alcotest.float 1e-9) "median" 2.5 s.Stats.median;
  check (Alcotest.float 1e-9) "min" 1. s.Stats.min;
  check (Alcotest.float 1e-9) "max" 4. s.Stats.max

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check (Alcotest.float 1e-9) "p0" 10. (Stats.percentile xs 0.);
  check (Alcotest.float 1e-9) "p50" 30. (Stats.percentile xs 50.);
  check (Alcotest.float 1e-9) "p100" 50. (Stats.percentile xs 100.);
  check (Alcotest.float 1e-9) "p25" 20. (Stats.percentile xs 25.)

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant" 0. (Stats.stddev [| 5.; 5.; 5. |]);
  check (Alcotest.float 1e-9) "spread" 2. (Stats.stddev [| 2.; 6.; 2.; 6. |])

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_tablefmt_alignment () =
  let out =
    Tablefmt.render ~header:[ "name"; "cost" ]
      [ [ "alpha"; "12" ]; [ "b"; "345" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check int "4 lines" 4 (List.length lines);
  (* Numeric column is right-aligned. *)
  Alcotest.(check bool) "right aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_tablefmt_arity_check () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Tablefmt.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Tablefmt.render ~header:[ "a"; "b" ] [ [ "x" ] ]))

let tests =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_different_seeds;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "stats summary" `Quick test_stats_summary;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats stddev" `Quick test_stats_stddev;
    Alcotest.test_case "stats empty" `Quick test_stats_empty_raises;
    Alcotest.test_case "tablefmt alignment" `Quick test_tablefmt_alignment;
    Alcotest.test_case "tablefmt arity" `Quick test_tablefmt_arity_check;
  ]
