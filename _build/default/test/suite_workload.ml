(* Workload generators: shape and determinism properties. *)

open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset
open Hr_workload

let check = Alcotest.check
let int = Alcotest.int

let space = Switch_space.make 16

let test_phased_lengths () =
  let rng = Rng.create 1 in
  let p1 = Synthetic.phase rng ~space ~len:5 ~active_fraction:0.5 ~density:0.5 in
  let p2 = Synthetic.phase rng ~space ~len:7 ~active_fraction:0.3 ~density:0.8 in
  let t = Synthetic.phased rng space [ p1; p2 ] in
  check int "total length" 12 (Trace.length t)

let test_phased_stays_within_active () =
  let rng = Rng.create 2 in
  let p = Synthetic.phase rng ~space ~len:20 ~active_fraction:0.4 ~density:0.9 in
  let t = Synthetic.phased rng space [ p ] in
  for i = 0 to 19 do
    if not (Bitset.subset (Trace.req t i) p.Synthetic.active) then
      Alcotest.failf "step %d escapes the active set" i
  done

let test_generators_deterministic () =
  let t1 = Synthetic.uniform (Rng.create 7) space ~n:30 ~density:0.4 in
  let t2 = Synthetic.uniform (Rng.create 7) space ~n:30 ~density:0.4 in
  for i = 0 to 29 do
    if not (Bitset.equal (Trace.req t1 i) (Trace.req t2 i)) then
      Alcotest.failf "uniform not deterministic at %d" i
  done

let test_bursty_has_bursts () =
  let t =
    Synthetic.bursty (Rng.create 3) space ~n:100 ~idle_density:0.02
      ~burst_density:0.9 ~burst_len:5 ~burst_every:20
  in
  let sizes = Trace.sizes t in
  let avg lo hi =
    let rec go i acc = if i > hi then acc else go (i + 1) (acc + sizes.(i)) in
    float_of_int (go lo 0) /. float_of_int (hi - lo + 1)
  in
  (* Burst steps (0-4 mod 20) should be far denser than idle ones. *)
  Alcotest.(check bool) "bursts denser" true (avg 0 4 > avg 5 19 +. 2.)

let test_ramp_grows () =
  let t = Synthetic.ramp (Rng.create 4) space ~n:64 in
  let ru = Range_union.make t in
  (* The union over the first quarter is smaller than over the last. *)
  Alcotest.(check bool) "growing demand" true
    (Range_union.size ru 0 15 < Range_union.size ru 48 63)

let test_multi_correlated_dimensions () =
  let spec = Multi_gen.default_spec in
  let ts = Multi_gen.correlated (Rng.create 5) spec in
  check int "m" spec.Multi_gen.m (Task_set.num_tasks ts);
  check int "n" spec.Multi_gen.n (Task_set.steps ts);
  Array.iteri
    (fun j t ->
      check int
        (Printf.sprintf "task %d local size" j)
        spec.Multi_gen.local_sizes.(j)
        (Switch_space.size (Trace.space t.Task_set.trace)))
    (Task_set.tasks ts)

let test_multi_independent_dimensions () =
  let spec = { Multi_gen.default_spec with Multi_gen.m = 3; local_sizes = [| 4; 6; 8 |] } in
  let ts = Multi_gen.independent (Rng.create 6) spec in
  check int "m" 3 (Task_set.num_tasks ts)

let test_priv_demands_bounded () =
  let ts = Multi_gen.correlated (Rng.create 7) Multi_gen.default_spec in
  let demands = Multi_gen.priv_demands (Rng.create 8) ts ~g_peak:6 in
  Array.iter
    (Array.iter (fun d -> if d < 0 || d > 6 then Alcotest.failf "demand %d out of range" d))
    demands

let test_dag_gen_valid_and_satisfiable () =
  for seed = 1 to 10 do
    let rng = Rng.create seed in
    let model, seq = Dag_gen.instance rng Dag_gen.default_spec in
    (* Dag_model.make already validated invariants; check the trace. *)
    check int "length" Dag_gen.default_spec.Dag_gen.n (Array.length seq);
    Array.iter
      (fun c ->
        if Dag_model.cheapest_for model [ c ] = None then
          Alcotest.failf "unsatisfiable context %d" c)
      seq
  done

(* ---- Replay transforms ---- *)

let test_replay_stretch () =
  let t = Trace.of_lists space [ [ 0 ]; [ 1; 2 ] ] in
  let s = Replay.stretch t ~factor:3 in
  check int "length" 6 (Trace.length s);
  Alcotest.(check bool) "step 4 = original step 1" true
    (Bitset.equal (Trace.req s 4) (Trace.req t 1))

let test_replay_stretch_amortizes () =
  (* Stretching lets hyperreconfiguration amortize: the optimal cost of
     the stretched trace is at most factor times the original (reuse
     the same plan) and the relative saving never shrinks. *)
  let t = Synthetic.uniform (Rng.create 5) space ~n:20 ~density:0.3 in
  let v = 16 in
  let base, _ = St_opt.solve_trace ~v t in
  let stretched, _ = St_opt.solve_trace ~v (Replay.stretch t ~factor:4) in
  Alcotest.(check bool) "sub-linear growth" true (stretched.St_opt.cost <= 4 * base.St_opt.cost)

let test_replay_repeat () =
  let t = Trace.of_lists space [ [ 0 ]; [ 1 ] ] in
  let r = Replay.repeat t ~times:3 in
  check int "length" 6 (Trace.length r);
  Alcotest.(check bool) "wraps" true (Bitset.equal (Trace.req r 5) (Trace.req t 1))

let test_replay_interleave () =
  let a = Trace.of_lists space [ [ 0 ]; [ 1 ] ] in
  let b = Trace.of_lists space [ [ 5 ] ] in
  let i = Replay.interleave a b in
  check int "length" 4 (Trace.length i);
  Alcotest.(check (list int)) "order a0 b0 a1 pad"
    [ 0 ]
    (Bitset.to_list (Trace.req i 0));
  Alcotest.(check (list int)) "b0" [ 5 ] (Bitset.to_list (Trace.req i 1));
  Alcotest.(check (list int)) "a1" [ 1 ] (Bitset.to_list (Trace.req i 2));
  Alcotest.(check (list int)) "pad" [] (Bitset.to_list (Trace.req i 3))

let test_replay_reverse_cost_symmetric () =
  (* The switch-model objective is time-symmetric: optimal costs agree
     on a trace and its reverse. *)
  let t = Synthetic.bursty (Rng.create 9) space ~n:30 ~idle_density:0.05
      ~burst_density:0.7 ~burst_len:4 ~burst_every:10 in
  let fwd, _ = St_opt.solve_trace ~v:6 t in
  let bwd, _ = St_opt.solve_trace ~v:6 (Replay.reverse t) in
  check int "symmetric" fwd.St_opt.cost bwd.St_opt.cost

let test_replay_interleave_costs_more_than_parts () =
  (* Context switching between two computations on one fabric is never
     cheaper than the costlier of running them alone. *)
  let a = Synthetic.phased (Rng.create 2) space
      [ Synthetic.phase (Rng.create 3) ~space ~len:16 ~active_fraction:0.3 ~density:0.6 ] in
  let b = Synthetic.phased (Rng.create 4) space
      [ Synthetic.phase (Rng.create 5) ~space ~len:16 ~active_fraction:0.3 ~density:0.6 ] in
  let v = 8 in
  let ca, _ = St_opt.solve_trace ~v a in
  let cb, _ = St_opt.solve_trace ~v b in
  let ci, _ = St_opt.solve_trace ~v (Replay.interleave a b) in
  Alcotest.(check bool) "interleaving at least as costly" true
    (ci.St_opt.cost >= max ca.St_opt.cost cb.St_opt.cost)

let tests =
  [
    Alcotest.test_case "replay stretch" `Quick test_replay_stretch;
    Alcotest.test_case "replay stretch amortizes" `Quick test_replay_stretch_amortizes;
    Alcotest.test_case "replay repeat" `Quick test_replay_repeat;
    Alcotest.test_case "replay interleave" `Quick test_replay_interleave;
    Alcotest.test_case "replay reverse symmetry" `Quick test_replay_reverse_cost_symmetric;
    Alcotest.test_case "replay interleave lower bound" `Quick test_replay_interleave_costs_more_than_parts;
    Alcotest.test_case "phased lengths" `Quick test_phased_lengths;
    Alcotest.test_case "phased within active" `Quick test_phased_stays_within_active;
    Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
    Alcotest.test_case "bursty" `Quick test_bursty_has_bursts;
    Alcotest.test_case "ramp grows" `Quick test_ramp_grows;
    Alcotest.test_case "multi correlated" `Quick test_multi_correlated_dimensions;
    Alcotest.test_case "multi independent" `Quick test_multi_independent_dimensions;
    Alcotest.test_case "priv demands bounded" `Quick test_priv_demands_bounded;
    Alcotest.test_case "dag gen valid" `Quick test_dag_gen_valid_and_satisfiable;
  ]
