(* General cost model: explicit-H DP, monotone DP, and the
   non-monotone gap that exhibits where the hardness lives. *)

open Hr_core
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

let space3 = Switch_space.make 3

let test_explicit_basic () =
  (* Two hypercontexts: cheap one satisfies only small requirements,
     expensive one everything. *)
  let hcs =
    [|
      {
        General_opt.name = "small";
        init = 2;
        cost = 1;
        sat = (fun c -> Bitset.subset c (Bitset.of_list 3 [ 0 ]));
      };
      { General_opt.name = "big"; init = 4; cost = 3; sat = (fun _ -> true) };
    |]
  in
  let trace = Trace.of_lists space3 [ [ 0 ]; [ 0 ]; [ 1; 2 ]; [ 0 ]; [ 0 ] ] in
  let r, chosen = General_opt.solve_explicit hcs trace in
  (* small(2 steps) + big(1) + small(2): (2+2) + (4+3) + (2+2) = 15;
     the runner-ups are [big for the whole tail] = 17 and
     [big everywhere] = 4 + 15 = 19, so the optimum is unique. *)
  check int "cost" 15 r.General_opt.cost;
  Alcotest.(check (list int)) "chosen" [ 0; 1; 0 ] chosen;
  Alcotest.(check (list int)) "breaks" [ 0; 2; 3 ] r.General_opt.breaks

let test_explicit_unsatisfiable () =
  let hcs =
    [|
      {
        General_opt.name = "only0";
        init = 1;
        cost = 1;
        sat = (fun c -> Bitset.subset c (Bitset.of_list 3 [ 0 ]));
      };
    |]
  in
  let trace = Trace.of_lists space3 [ [ 1 ] ] in
  Alcotest.check_raises "unsatisfiable"
    (Invalid_argument
       "General_opt: some context requirement is satisfiable by no hypercontext")
    (fun () -> ignore (General_opt.solve_explicit hcs trace))

let test_monotone_matches_switch_model () =
  (* With init = const v and cost = cardinal, the monotone general DP
     is exactly the switch model DP. *)
  let trace = Trace.of_lists space3 [ [ 0 ]; [ 1 ]; [ 2 ]; [ 0; 1 ] ] in
  let v = 3 in
  let mono =
    General_opt.solve_monotone ~init:(fun _ -> v) ~cost:Bitset.cardinal trace
  in
  let st, _ = St_opt.solve_trace ~v trace in
  check int "agree" st.St_opt.cost mono.General_opt.cost

let qcheck_monotone_matches_switch =
  Tutil.prop "monotone general DP = switch DP"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let mono =
        General_opt.solve_monotone
          ~init:(fun _ -> inst.Tutil.v)
          ~cost:Bitset.cardinal trace
      in
      let st, _ = St_opt.solve_trace ~v:inst.Tutil.v trace in
      mono.General_opt.cost = st.St_opt.cost)

let qcheck_tiny_never_worse_than_monotone =
  (* solve_tiny searches a superset of solve_monotone's plans. *)
  Tutil.prop "exhaustive optimum <= monotone optimum"
    (Tutil.gen_st_instance ~max_n:6 ~max_width:4)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let init _ = inst.Tutil.v and cost = Bitset.cardinal in
      let tiny = General_opt.solve_tiny ~init ~cost trace in
      let mono = General_opt.solve_monotone ~init ~cost trace in
      tiny.General_opt.cost <= mono.General_opt.cost)

let qcheck_tiny_equals_monotone_when_monotone =
  (* For genuinely monotone costs the exhaustive optimum uses unions,
     so both must agree. *)
  Tutil.prop "exhaustive = monotone for monotone costs"
    (Tutil.gen_st_instance ~max_n:5 ~max_width:4)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let init h = inst.Tutil.v + Bitset.cardinal h and cost = Bitset.cardinal in
      let tiny = General_opt.solve_tiny ~init ~cost trace in
      let mono = General_opt.solve_monotone ~init ~cost trace in
      tiny.General_opt.cost = mono.General_opt.cost)

let test_non_monotone_gap () =
  (* A non-monotone cost function where the union-based plan is
     suboptimal: cost() rewards one specific *larger* hypercontext.
     This is the regime where the implicit general problem is
     NP-complete and union-restricted reasoning breaks down. *)
  let full = Bitset.full 3 in
  let cost h = if Bitset.equal h full then 1 else Bitset.cardinal h + 1 in
  let init _ = 2 in
  let trace = Trace.of_lists space3 [ [ 0 ]; [ 1 ] ] in
  (* Unions: block {0},{1} separately: 2+2 + 2+2 = 8; merged union {0,1}:
     2 + 3*2 = 8.  Exhaustive can pick the full set: 2 + 1*2 = 4. *)
  let mono = General_opt.solve_monotone ~init ~cost trace in
  let tiny = General_opt.solve_tiny ~init ~cost trace in
  check int "monotone stuck at 8" 8 mono.General_opt.cost;
  check int "exhaustive finds 4" 4 tiny.General_opt.cost

let tests =
  [
    Alcotest.test_case "explicit basic" `Quick test_explicit_basic;
    Alcotest.test_case "explicit unsatisfiable" `Quick test_explicit_unsatisfiable;
    Alcotest.test_case "monotone = switch" `Quick test_monotone_matches_switch_model;
    qcheck_monotone_matches_switch;
    qcheck_tiny_never_worse_than_monotone;
    qcheck_tiny_equals_monotone_when_monotone;
    Alcotest.test_case "non-monotone gap" `Quick test_non_monotone_gap;
  ]
