(* Dag_model validity rules and St_dag_opt optimality. *)

open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

(* A 3-level routability chain over 4 context ids:
   low {0} cost 1 -> medium {0,1,2} cost 3 -> good {0,1,2,3} cost 6. *)
let chain3 ~w =
  Dag_model.chain ~num_contexts:4 ~w
    ~costs:[| 1; 3; 6 |]
    ~sats:
      [|
        Bitset.of_list 4 [ 0 ];
        Bitset.of_list 4 [ 0; 1; 2 ];
        Bitset.full 4;
      |]

let test_chain_structure () =
  let m = chain3 ~w:5 in
  check int "nodes" 3 (Dag_model.num_nodes m);
  Alcotest.(check bool) "low satisfies 0" true (Dag_model.satisfies m 0 0);
  Alcotest.(check bool) "low misses 3" false (Dag_model.satisfies m 0 3);
  Alcotest.(check (list int)) "minimal for 0" [ 0 ] (Dag_model.minimal_satisfying m 0);
  Alcotest.(check (list int)) "minimal for 1" [ 1 ] (Dag_model.minimal_satisfying m 1);
  Alcotest.(check (list int)) "minimal for 3" [ 2 ] (Dag_model.minimal_satisfying m 3)

let test_cheapest_for () =
  let m = chain3 ~w:5 in
  check (Alcotest.option int) "cheapest {0}" (Some 0) (Dag_model.cheapest_for m [ 0 ]);
  check (Alcotest.option int) "cheapest {1}" (Some 1) (Dag_model.cheapest_for m [ 1 ]);
  check (Alcotest.option int) "cheapest {0;3}" (Some 2) (Dag_model.cheapest_for m [ 0; 3 ])

let test_make_rejects_bad_edge () =
  let nodes =
    [|
      { Dag_model.name = "a"; sat = Bitset.of_list 2 [ 0 ]; cost = 5 };
      { Dag_model.name = "b"; sat = Bitset.full 2; cost = 3 };
    |]
  in
  Alcotest.check_raises "cost must grow"
    (Invalid_argument "Dag_model.make: edge (0,1) violates cost monotonicity")
    (fun () -> ignore (Dag_model.make ~num_contexts:2 ~w:1 nodes [ (0, 1) ]))

let test_make_rejects_non_strict_containment () =
  let nodes =
    [|
      { Dag_model.name = "a"; sat = Bitset.full 2; cost = 1 };
      { Dag_model.name = "b"; sat = Bitset.full 2; cost = 2 };
    |]
  in
  Alcotest.check_raises "strict subset required"
    (Invalid_argument "Dag_model.make: edge (0,1) violates h1(C) \xE2\x8A\x82 h2(C)")
    (fun () -> ignore (Dag_model.make ~num_contexts:2 ~w:1 nodes [ (0, 1) ]))

let test_make_rejects_cycle () =
  (* A cycle cannot have strictly growing context sets, so it is always
     rejected — on the containment rule at the latest. *)
  let nodes =
    [|
      { Dag_model.name = "a"; sat = Bitset.of_list 2 [ 0 ]; cost = 1 };
      { Dag_model.name = "top"; sat = Bitset.full 2; cost = 2 };
    |]
  in
  match Dag_model.make ~num_contexts:2 ~w:1 nodes [ (0, 1); (1, 0) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "cyclic precedence accepted"

let test_make_requires_top () =
  let nodes = [| { Dag_model.name = "a"; sat = Bitset.of_list 2 [ 0 ]; cost = 1 } |] in
  Alcotest.check_raises "no top"
    (Invalid_argument "Dag_model.make: no hypercontext satisfies every context requirement")
    (fun () -> ignore (Dag_model.make ~num_contexts:2 ~w:1 nodes []))

let test_dag_dp_prefers_cheap_phases () =
  let m = chain3 ~w:2 in
  (* Phase of context 0 then a phase needing the top. *)
  let seq = [| 0; 0; 0; 3; 3 |] in
  let r = St_dag_opt.solve m seq in
  Alcotest.(check (list int)) "split at phase" [ 0; 3 ] r.St_dag_opt.breaks;
  Alcotest.(check (list int)) "nodes low,top" [ 0; 2 ] r.St_dag_opt.nodes;
  check int "cost" (2 + (1 * 3) + 2 + (6 * 2)) r.St_dag_opt.cost

let test_dag_dp_merges_when_w_large () =
  let m = chain3 ~w:100 in
  let seq = [| 0; 0; 0; 3; 3 |] in
  let r = St_dag_opt.solve m seq in
  Alcotest.(check (list int)) "one block" [ 0 ] r.St_dag_opt.breaks;
  check int "cost" (100 + (6 * 5)) r.St_dag_opt.cost

let test_greedy_never_better () =
  let rng = Rng.create 23 in
  for seed = 0 to 20 do
    ignore seed;
    let model, seq =
      Hr_workload.Dag_gen.instance rng
        { Hr_workload.Dag_gen.default_spec with Hr_workload.Dag_gen.n = 40 }
    in
    let opt = St_dag_opt.solve model seq in
    let greedy = St_dag_opt.greedy model seq in
    if greedy.St_dag_opt.cost < opt.St_dag_opt.cost then
      Alcotest.failf "greedy %d beat optimal %d" greedy.St_dag_opt.cost
        opt.St_dag_opt.cost;
    (* Both plans must re-evaluate to their claimed costs. *)
    let recost r =
      St_dag_opt.cost_of model seq ~breaks:r.St_dag_opt.breaks ~nodes:r.St_dag_opt.nodes
    in
    check int "opt recost" opt.St_dag_opt.cost (recost opt);
    check int "greedy recost" greedy.St_dag_opt.cost (recost greedy)
  done

let test_dag_dp_vs_oracle_st_opt () =
  (* The DAG oracle + generic single-task DP must agree with
     St_dag_opt. *)
  let rng = Rng.create 7 in
  let model, seq =
    Hr_workload.Dag_gen.instance rng
      { Hr_workload.Dag_gen.default_spec with Hr_workload.Dag_gen.n = 30 }
  in
  let direct = St_dag_opt.solve model seq in
  let oracle = Dag_model.oracle ~v:[| Dag_model.w model |] [| model |] [| seq |] in
  let via_oracle = St_opt.solve_oracle oracle ~task:0 in
  check int "same optimum" direct.St_dag_opt.cost via_oracle.St_opt.cost

let test_mt_dag_exact () =
  (* Two tasks with their own chains; exact DP through the oracle must
     match brute force. *)
  let m1 = chain3 ~w:2 in
  let m2 =
    Dag_model.chain ~num_contexts:2 ~w:3 ~costs:[| 2; 4 |]
      ~sats:[| Bitset.of_list 2 [ 1 ]; Bitset.full 2 |]
  in
  let seqs = [| [| 0; 1; 3; 0 |]; [| 1; 0; 1; 1 |] |] in
  let oracle = Dag_model.oracle ~v:[| 2; 3 |] [| m1; m2 |] seqs in
  let brute_cost, _ = Brute.multi oracle in
  let dp = Mt_dp.solve oracle in
  check int "exact = brute" brute_cost dp.Mt_dp.cost

let tests =
  [
    Alcotest.test_case "chain structure" `Quick test_chain_structure;
    Alcotest.test_case "cheapest_for" `Quick test_cheapest_for;
    Alcotest.test_case "rejects bad edge" `Quick test_make_rejects_bad_edge;
    Alcotest.test_case "rejects non-strict" `Quick test_make_rejects_non_strict_containment;
    Alcotest.test_case "rejects cycle" `Quick test_make_rejects_cycle;
    Alcotest.test_case "requires top" `Quick test_make_requires_top;
    Alcotest.test_case "dp prefers cheap phases" `Quick test_dag_dp_prefers_cheap_phases;
    Alcotest.test_case "dp merges when w large" `Quick test_dag_dp_merges_when_w_large;
    Alcotest.test_case "greedy never better" `Quick test_greedy_never_better;
    Alcotest.test_case "dp via oracle" `Quick test_dag_dp_vs_oracle_st_opt;
    Alcotest.test_case "multi-task dag exact" `Quick test_mt_dag_exact;
  ]
