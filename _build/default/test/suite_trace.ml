(* Switch_space, Trace, Range_union, Hypercontext, Task_set. *)

open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

let space8 = Switch_space.make 8

let mk reqs = Trace.of_lists space8 reqs

let test_space_names () =
  let u = Switch_space.make ~names:[| "a"; "b" |] 2 in
  check Alcotest.string "name" "b" (Switch_space.name u 1);
  check int "index_of_name" 0 (Switch_space.index_of_name u "a");
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Switch_space.make: names length mismatch") (fun () ->
      ignore (Switch_space.make ~names:[| "a" |] 2))

let test_trace_basics () =
  let t = mk [ [ 0; 1 ]; [ 1; 2 ]; [] ] in
  check int "length" 3 (Trace.length t);
  check int "req size" 2 (Bitset.cardinal (Trace.req t 0));
  check int "empty req" 0 (Bitset.cardinal (Trace.req t 2))

let test_trace_width_check () =
  Alcotest.check_raises "wrong width"
    (Invalid_argument "Trace.make: requirement 0 has width 4, expected 8") (fun () ->
      ignore (Trace.make space8 [| Bitset.create 4 |]))

let test_range_union_values () =
  let t = mk [ [ 0 ]; [ 1 ]; [ 0; 2 ]; [ 3 ] ] in
  let ru = Range_union.make t in
  check int "[0,0]" 1 (Range_union.size ru 0 0);
  check int "[0,1]" 2 (Range_union.size ru 0 1);
  check int "[0,2]" 3 (Range_union.size ru 0 2);
  check int "[0,3]" 4 (Range_union.size ru 0 3);
  check int "[1,2]" 3 (Range_union.size ru 1 2);
  check int "[2,3]" 3 (Range_union.size ru 2 3)

let test_range_union_matches_naive () =
  let rng = Rng.create 17 in
  let reqs =
    List.init 30 (fun _ ->
        List.filter (fun _ -> Rng.bool rng) (List.init 8 Fun.id))
  in
  let t = mk reqs in
  let ru = Range_union.make t in
  let n = Trace.length t in
  for lo = 0 to n - 1 do
    for hi = lo to n - 1 do
      let naive = Bitset.cardinal (Trace.range_union t lo hi) in
      if Range_union.size ru lo hi <> naive then
        Alcotest.failf "mismatch at [%d,%d]" lo hi
    done
  done

let test_trace_sub_concat () =
  let t = mk [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ] in
  let a = Trace.sub t 0 1 and b = Trace.sub t 2 3 in
  let c = Trace.concat a b in
  check int "concat length" 4 (Trace.length c);
  for i = 0 to 3 do
    if not (Bitset.equal (Trace.req c i) (Trace.req t i)) then
      Alcotest.failf "step %d differs" i
  done

let test_trace_project () =
  let t = mk [ [ 0; 5 ]; [ 5; 6 ] ] in
  let keep = Bitset.of_list 8 [ 5; 6 ] in
  let to_space = Switch_space.make 2 in
  let renumber = function 5 -> 0 | 6 -> 1 | _ -> assert false in
  let p = Trace.project t keep ~to_space ~renumber in
  Alcotest.(check (list int)) "step 0" [ 0 ] (Bitset.to_list (Trace.req p 0));
  Alcotest.(check (list int)) "step 1" [ 0; 1 ] (Bitset.to_list (Trace.req p 1))

let test_hypercontext () =
  let h = Bitset.of_list 8 [ 0; 1; 2 ] in
  Alcotest.(check bool) "satisfies" true (Hypercontext.satisfies h (Bitset.of_list 8 [ 1 ]));
  Alcotest.(check bool) "violates" false
    (Hypercontext.satisfies h (Bitset.of_list 8 [ 3 ]));
  check int "cost" 3 (Hypercontext.cost h);
  check int "changeover" 2
    (Hypercontext.changeover h (Bitset.of_list 8 [ 0; 1; 3 ]))

let test_task_set_checks () =
  let t1 = Task_set.task ~name:"a" (mk [ [ 0 ]; [ 1 ] ]) in
  let t2 = Task_set.task ~name:"b" (mk [ [ 0 ] ]) in
  Alcotest.check_raises "ragged"
    (Invalid_argument
       "Task_set.make: task b has 1 steps, expected 2 (fully synchronized machine)")
    (fun () -> ignore (Task_set.make [| t1; t2 |]));
  let ts = Task_set.make [| t1 |] in
  check int "default v = |space|" 8 (Task_set.get ts 0).Task_set.v

let test_breakpoints_intervals () =
  let bp = Breakpoints.of_rows ~m:1 ~n:6 [| [ 3 ] |] in
  Alcotest.(check (list (pair int int))) "intervals" [ (0, 2); (3, 5) ]
    (Breakpoints.intervals bp 0);
  check (Alcotest.pair int int) "interval_of 4" (3, 5) (Breakpoints.interval_of bp 0 4);
  check (Alcotest.pair int int) "interval_of 0" (0, 2) (Breakpoints.interval_of bp 0 0);
  check int "break count" 2 (Breakpoints.break_count bp 0)

let test_breakpoints_column0 () =
  Alcotest.check_raises "column 0 mandatory"
    (Invalid_argument "Breakpoints: task 0 lacks the mandatory step-0 hyperreconfiguration")
    (fun () -> ignore (Breakpoints.of_matrix [| [| false; true |] |]));
  let bp = Breakpoints.create ~m:2 ~n:3 in
  Alcotest.check_raises "cannot clear col 0"
    (Invalid_argument "Breakpoints.set: column 0 is mandatory") (fun () ->
      ignore (Breakpoints.set bp 0 0 false))

let test_breakpoints_break_columns () =
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  Alcotest.(check (list int)) "columns" [ 0; 2; 3 ] (Breakpoints.break_columns bp)

let test_breakpoints_single_of_multi () =
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  let s = Breakpoints.single_of_multi bp in
  check int "one row" 1 (Breakpoints.m s);
  Alcotest.(check (list int)) "merged" [ 0; 2; 3 ] (Breakpoints.break_columns s)

let tests =
  [
    Alcotest.test_case "space names" `Quick test_space_names;
    Alcotest.test_case "trace basics" `Quick test_trace_basics;
    Alcotest.test_case "trace width check" `Quick test_trace_width_check;
    Alcotest.test_case "range union values" `Quick test_range_union_values;
    Alcotest.test_case "range union vs naive" `Quick test_range_union_matches_naive;
    Alcotest.test_case "trace sub/concat" `Quick test_trace_sub_concat;
    Alcotest.test_case "trace project" `Quick test_trace_project;
    Alcotest.test_case "hypercontext" `Quick test_hypercontext;
    Alcotest.test_case "task set checks" `Quick test_task_set_checks;
    Alcotest.test_case "breakpoints intervals" `Quick test_breakpoints_intervals;
    Alcotest.test_case "breakpoints column 0" `Quick test_breakpoints_column0;
    Alcotest.test_case "break columns" `Quick test_breakpoints_break_columns;
    Alcotest.test_case "single of multi" `Quick test_breakpoints_single_of_multi;
  ]
