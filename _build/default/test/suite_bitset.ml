(* Bitset unit tests plus QCheck properties against a sorted-int-list
   reference model. *)

module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Reference model: sorted deduped int lists. *)
module Ref = struct
  let norm = List.sort_uniq compare
  let union a b = norm (a @ b)
  let inter a b = List.filter (fun x -> List.mem x b) (norm a)
  let diff a b = List.filter (fun x -> not (List.mem x b)) (norm a)
  let symdiff a b = norm (diff a b @ diff b a)
end

let width = 130 (* spans three 63-bit words *)

let gen_list =
  QCheck2.Gen.(list_size (int_bound 40) (int_bound (width - 1)))

let of_list l = Bitset.of_list width l

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name gen f)

let qcheck_tests =
  [
    prop "union matches model" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        Bitset.to_list (Bitset.union (of_list a) (of_list b)) = Ref.union a b);
    prop "inter matches model" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        Bitset.to_list (Bitset.inter (of_list a) (of_list b)) = Ref.inter a b);
    prop "diff matches model" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        Bitset.to_list (Bitset.diff (of_list a) (of_list b)) = Ref.diff a b);
    prop "symdiff matches model" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        Bitset.to_list (Bitset.symdiff (of_list a) (of_list b)) = Ref.symdiff a b);
    prop "cardinal = |model|" gen_list (fun a ->
        Bitset.cardinal (of_list a) = List.length (Ref.norm a));
    prop "to_list sorted & roundtrips" gen_list (fun a ->
        let l = Bitset.to_list (of_list a) in
        l = Ref.norm a && Bitset.equal (of_list l) (of_list a));
    prop "subset iff diff empty" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        Bitset.subset (of_list a) (of_list b)
        = Bitset.is_empty (Bitset.diff (of_list a) (of_list b)));
    prop "union is idempotent upper bound" (QCheck2.Gen.pair gen_list gen_list)
      (fun (a, b) ->
        let u = Bitset.union (of_list a) (of_list b) in
        Bitset.subset (of_list a) u && Bitset.subset (of_list b) u
        && Bitset.equal (Bitset.union u u) u);
    prop "symdiff cardinality identity" (QCheck2.Gen.pair gen_list gen_list)
      (fun (a, b) ->
        let sa = of_list a and sb = of_list b in
        Bitset.cardinal (Bitset.symdiff sa sb)
        = Bitset.cardinal (Bitset.union sa sb) - Bitset.cardinal (Bitset.inter sa sb));
    prop "hash respects equality" (QCheck2.Gen.pair gen_list gen_list) (fun (a, b) ->
        (not (Bitset.equal (of_list a) (of_list b)))
        || Bitset.hash (of_list a) = Bitset.hash (of_list b));
    prop "compare consistent with equal" (QCheck2.Gen.pair gen_list gen_list)
      (fun (a, b) ->
        Bitset.equal (of_list a) (of_list b) = (Bitset.compare (of_list a) (of_list b) = 0));
  ]

let test_empty () =
  let s = Bitset.create 10 in
  check bool "is_empty" true (Bitset.is_empty s);
  check int "cardinal" 0 (Bitset.cardinal s);
  check bool "mem" false (Bitset.mem s 3)

let test_full () =
  let s = Bitset.full 70 in
  check int "cardinal" 70 (Bitset.cardinal s);
  check bool "mem last" true (Bitset.mem s 69);
  check int "width" 70 (Bitset.width s)

let test_full_zero_width () =
  let s = Bitset.full 0 in
  check int "cardinal" 0 (Bitset.cardinal s);
  check bool "empty" true (Bitset.is_empty s)

let test_full_word_boundary () =
  (* Exactly one word on a 63-bit system. *)
  let w = Sys.int_size in
  let s = Bitset.full w in
  check int "cardinal" w (Bitset.cardinal s)

let test_add_remove () =
  let s = Bitset.add (Bitset.create 10) 4 in
  check bool "added" true (Bitset.mem s 4);
  let s' = Bitset.remove s 4 in
  check bool "removed" false (Bitset.mem s' 4);
  check bool "original untouched" true (Bitset.mem s 4)

let test_out_of_range () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "mem oob" (Invalid_argument "Bitset: index 8 out of range [0,8)")
    (fun () -> ignore (Bitset.mem s 8));
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index -1 out of range [0,8)")
    (fun () -> ignore (Bitset.add s (-1)))

let test_width_mismatch () =
  Alcotest.check_raises "union mismatch"
    (Invalid_argument "Bitset: width mismatch (8 vs 9)") (fun () ->
      ignore (Bitset.union (Bitset.create 8) (Bitset.create 9)))

let test_union_into () =
  let a = Bitset.copy (Bitset.of_list 10 [ 1; 2 ]) in
  let b = Bitset.of_list 10 [ 2; 5 ] in
  let r = Bitset.union_into ~into:a b in
  check bool "aliases" true (r == a);
  Alcotest.(check (list int)) "contents" [ 1; 2; 5 ] (Bitset.to_list r)

let test_fold_order () =
  let s = Bitset.of_list 100 [ 70; 3; 64 ] in
  Alcotest.(check (list int)) "ascending" [ 3; 64; 70 ]
    (List.rev (Bitset.fold (fun i acc -> i :: acc) s []))

let test_pp () =
  check Alcotest.string "pp" "{1,4}" (Bitset.to_string (Bitset.of_list 6 [ 4; 1 ]))

let tests =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "full" `Quick test_full;
    Alcotest.test_case "full width 0" `Quick test_full_zero_width;
    Alcotest.test_case "full word boundary" `Quick test_full_word_boundary;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "out of range" `Quick test_out_of_range;
    Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "union_into" `Quick test_union_into;
    Alcotest.test_case "fold order" `Quick test_fold_order;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
  @ qcheck_tests
