(* Private-global resource planning (Mt_priv). *)

open Hr_core

let check = Alcotest.check
let int = Alcotest.int

let space2 = Switch_space.make 2

let mk_task name reqs demand =
  {
    Mt_priv.name;
    local_trace = Trace.of_lists space2 reqs;
    priv_demand = Array.of_list demand;
  }

let test_peak_demand () =
  let t =
    Mt_priv.make ~g_total:10 ~w:5
      [| mk_task "A" [ [ 0 ]; [ 1 ]; [ 0 ] ] [ 1; 4; 2 ] |]
  in
  check int "peak [0,2]" 4 (Mt_priv.peak_demand t 0 0 2);
  check int "peak [2,2]" 2 (Mt_priv.peak_demand t 0 2 2)

let test_feasible_assignment () =
  let t =
    Mt_priv.make ~g_total:5 ~w:1
      [|
        mk_task "A" [ [ 0 ]; [ 0 ] ] [ 3; 1 ];
        mk_task "B" [ [ 1 ]; [ 1 ] ] [ 2; 4 ];
      |]
  in
  (* Whole range: peaks 3 and 4 = 7 > 5 -> infeasible. *)
  check
    (Alcotest.option (Alcotest.array int))
    "whole range infeasible" None
    (Mt_priv.feasible_assignment t 0 1);
  check
    (Alcotest.option (Alcotest.array int))
    "first step feasible" (Some [| 3; 2 |])
    (Mt_priv.feasible_assignment t 0 0)

let test_segmentation_respects_budget () =
  let t =
    Mt_priv.make ~g_total:5 ~w:1
      [|
        mk_task "A" [ [ 0 ]; [ 0 ]; [ 0 ]; [ 0 ] ] [ 3; 1; 1; 1 ];
        mk_task "B" [ [ 1 ]; [ 1 ]; [ 1 ]; [ 1 ] ] [ 2; 4; 1; 1 ];
      |]
  in
  let plan = Mt_priv.solve t in
  (* Step 1 breaks the budget (3+4 > 5), so a new segment must start
     there. *)
  Alcotest.(check bool) "multiple segments" true (List.length plan.Mt_priv.segments > 1);
  List.iter
    (fun (lo, hi, a) ->
      check int "assignment = peaks sum <= g"
        1 (if Array.fold_left ( + ) 0 a <= 5 then 1 else 0);
      Alcotest.(check bool) "range sane" true (lo <= hi))
    plan.Mt_priv.segments;
  (* Segments must tile [0, n). *)
  let covered =
    List.concat_map
      (fun (lo, hi, _) -> List.init (hi - lo + 1) (fun k -> lo + k))
      plan.Mt_priv.segments
  in
  Alcotest.(check (list int)) "tiling" [ 0; 1; 2; 3 ] (List.sort compare covered)

let test_single_segment_when_feasible () =
  let t =
    Mt_priv.make ~g_total:10 ~w:7
      [|
        mk_task "A" [ [ 0 ]; [ 0 ] ] [ 1; 2 ];
        mk_task "B" [ [ 1 ]; [ 1 ] ] [ 3; 3 ];
      |]
  in
  let plan = Mt_priv.solve t in
  check int "one segment" 1 (List.length plan.Mt_priv.segments);
  (* Exactly one global hyperreconfiguration cost w. *)
  let local = List.fold_left ( + ) 0 plan.Mt_priv.segment_costs in
  check int "total = w + local" (7 + local) plan.Mt_priv.cost

let test_oracle_adds_priv_to_step_cost () =
  let t =
    Mt_priv.make ~g_total:10 ~w:1 [| mk_task "A" [ [ 0 ]; [ 0; 1 ] ] [ 2; 3 ] |]
  in
  let oracle = Mt_priv.segment_oracle t 0 1 ~assignment:[| 3 |] in
  (* |U_loc(0,1)| = 2, peak demand = 3 -> 5. *)
  check int "combined step cost" 5 (oracle.Interval_cost.step_cost 0 0 1);
  check int "v = assigned + |floc|" (3 + 2) oracle.Interval_cost.v.(0)

let test_rejects_impossible_demand () =
  Alcotest.check_raises "demand over g_total"
    (Invalid_argument "Mt_priv.make: task A demands 7 > g_total=5") (fun () ->
      ignore (Mt_priv.make ~g_total:5 ~w:1 [| mk_task "A" [ [ 0 ] ] [ 7 ] |]))

let test_paper_io_example () =
  (* The paper's running example: 12 I/O units in total, 5 assigned to
     task 1, of which a local hyperreconfiguration makes only 3
     reconfigurable.  Check the special-case cost v_j = |h_j| +
     |f_loc_j|. *)
  check int "v for task 1" (5 + 8) (Cost_eval.mt_switch_special_v ~assigned_priv:5 ~f_loc:8)

let tests =
  [
    Alcotest.test_case "peak demand" `Quick test_peak_demand;
    Alcotest.test_case "feasible assignment" `Quick test_feasible_assignment;
    Alcotest.test_case "segmentation budget" `Quick test_segmentation_respects_budget;
    Alcotest.test_case "single segment" `Quick test_single_segment_when_feasible;
    Alcotest.test_case "oracle priv costs" `Quick test_oracle_adds_priv_to_step_cost;
    Alcotest.test_case "impossible demand" `Quick test_rejects_impossible_demand;
    Alcotest.test_case "paper I/O example" `Quick test_paper_io_example;
  ]
