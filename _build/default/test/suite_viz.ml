(* Ascii primitives and figure renderers. *)

open Hr_core
open Hr_viz

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

let test_heat_char_extremes () =
  check (Alcotest.char) "zero" ' ' (Ascii.heat_char ~max_value:10 0);
  check (Alcotest.char) "max" '@' (Ascii.heat_char ~max_value:10 10);
  check (Alcotest.char) "clamped" '@' (Ascii.heat_char ~max_value:10 99)

let test_sparkline_length () =
  check string "line" "  @" (Ascii.sparkline ~max_value:4 [| 0; 0; 4 |])

let test_bar () =
  check string "half" "##  " (Ascii.bar ~width:4 ~max_value:10 5);
  check string "full" "####" (Ascii.bar ~width:4 ~max_value:10 10);
  check string "empty" "    " (Ascii.bar ~width:4 ~max_value:10 0)

let test_bool_row () =
  check string "row" "#.#" (Ascii.bool_row [| true; false; true |])

let test_chunked () =
  let lines = Ascii.chunked ~width:4 "abcdefghij" in
  check int "3 chunks" 3 (List.length lines);
  check string "first" "   0| abcd" (List.hd lines)

let fixture () =
  let ts = Tutil.sample_task_set () in
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  (ts, bp)

let test_fig2_shape () =
  let ts, bp = fixture () in
  let out = Figures.fig2 ts bp in
  (* Header + (heat + marker) per task. *)
  check int "lines" 5 (List.length (String.split_on_char '\n' (String.trim out)));
  Alcotest.(check bool) "mentions task A" true
    (Astring.String.is_infix ~affix:"A" out)

let test_fig3_counts_break_columns () =
  let ts, bp = fixture () in
  let out = Figures.fig3 ts bp in
  Alcotest.(check bool) "3 hyper steps" true
    (Astring.String.is_infix ~affix:"(3 hyperreconfiguration steps" out);
  (* Task A breaks at 0 and 2 of columns [0;2;3] -> "##." *)
  Alcotest.(check bool) "row A" true (Astring.String.is_infix ~affix:"##." out);
  Alcotest.(check bool) "row B" true (Astring.String.is_infix ~affix:"#.#" out)

let test_fig2_units_single_task () =
  let space = Switch_space.make 4 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 1 ]; [ 2; 3 ] ] in
  let ts = Task_set.single ~name:"ALL" trace in
  let bp = Breakpoints.of_rows ~m:1 ~n:3 [| [ 2 ] |] in
  let masks =
    [ ("lo", Hr_util.Bitset.of_list 4 [ 0; 1 ]); ("hi", Hr_util.Bitset.of_list 4 [ 2; 3 ]) ]
  in
  let out = Figures.fig2_units ts bp ~unit_masks:masks in
  Alcotest.(check bool) "has unit rows" true
    (Astring.String.is_infix ~affix:"lo" out && Astring.String.is_infix ~affix:"hi" out)

let test_cost_series_smoke () =
  let ts, bp = fixture () in
  let oracle = Interval_cost.of_task_set ts in
  let out = Figures.cost_series oracle bp in
  Alcotest.(check bool) "non-empty" true (String.length out > 10)

let tests =
  [
    Alcotest.test_case "heat char" `Quick test_heat_char_extremes;
    Alcotest.test_case "sparkline" `Quick test_sparkline_length;
    Alcotest.test_case "bar" `Quick test_bar;
    Alcotest.test_case "bool row" `Quick test_bool_row;
    Alcotest.test_case "chunked" `Quick test_chunked;
    Alcotest.test_case "fig2 shape" `Quick test_fig2_shape;
    Alcotest.test_case "fig3 columns" `Quick test_fig3_counts_break_columns;
    Alcotest.test_case "fig2 units" `Quick test_fig2_units_single_task;
    Alcotest.test_case "cost series" `Quick test_cost_series_smoke;
  ]
