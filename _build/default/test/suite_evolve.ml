(* Generic metaheuristic engines on a transparent toy problem:
   minimize the number of set bits in a boolean genome. *)

module Ga = Hr_evolve.Ga
module Anneal = Hr_evolve.Anneal
module Hillclimb = Hr_evolve.Hillclimb
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

let genome_len = 24

let onemax_problem =
  {
    Ga.random = (fun rng -> Array.init genome_len (fun _ -> Rng.bool rng));
    cost = (fun g -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 g);
    crossover =
      (fun rng a b -> Array.init genome_len (fun i -> if Rng.bool rng then a.(i) else b.(i)));
    mutate =
      (fun rng g ->
        let g = Array.copy g in
        let i = Rng.int rng genome_len in
        g.(i) <- not g.(i);
        g);
  }

let test_ga_solves_onemax () =
  let config = { Ga.default_config with Ga.generations = 300; population = 30 } in
  let r = Ga.run ~config (Rng.create 3) onemax_problem in
  check int "optimum found" 0 r.Ga.best_cost

let test_ga_seeds_injected () =
  (* Seeding with the optimum makes generation 0 optimal already. *)
  let config = { Ga.default_config with Ga.generations = 1; population = 8 } in
  let seeds = [ Array.make genome_len false ] in
  let r = Ga.run ~config ~seeds (Rng.create 1) onemax_problem in
  check int "optimal from seed" 0 r.Ga.best_cost

let test_ga_patience_stops_early () =
  let config =
    { Ga.default_config with Ga.generations = 10_000; population = 8; patience = Some 5 }
  in
  let seeds = [ Array.make genome_len false ] in
  let r = Ga.run ~config ~seeds (Rng.create 1) onemax_problem in
  (* 8 initial evals + at most (5+1) generations of <= 8 children. *)
  Alcotest.(check bool) "stopped early" true (r.Ga.evaluations <= 8 + (6 * 8))

let test_ga_history_ends_at_best () =
  let config = { Ga.default_config with Ga.generations = 100; population = 16 } in
  let r = Ga.run ~config (Rng.create 9) onemax_problem in
  match List.rev r.Ga.history with
  | (_, last) :: _ -> check int "history tail = best" r.Ga.best_cost last
  | [] -> Alcotest.fail "empty history"

let test_ga_validates_config () =
  Alcotest.check_raises "population" (Invalid_argument "Ga.run: population must be >= 2")
    (fun () ->
      ignore (Ga.run ~config:{ Ga.default_config with Ga.population = 1 } (Rng.create 0) onemax_problem))

let anneal_problem =
  { Anneal.cost = onemax_problem.Ga.cost; neighbor = onemax_problem.Ga.mutate }

let test_anneal_improves () =
  let init = Array.make genome_len true in
  let config = { Anneal.default_config with Anneal.steps = 5000 } in
  let r = Anneal.run ~config (Rng.create 4) anneal_problem ~init in
  Alcotest.(check bool) "improved a lot" true (r.Anneal.best_cost <= 4);
  check int "eval count"
    (5000 + 1)
    r.Anneal.evaluations

let test_anneal_restarts_counted () =
  let init = Array.make genome_len true in
  let config = { Anneal.default_config with Anneal.steps = 100; restarts = 3 } in
  let r = Anneal.run ~config (Rng.create 4) anneal_problem ~init in
  check int "3 restarts worth of evals" (3 * 101) r.Anneal.evaluations

let test_hillclimb_exact_on_onemax () =
  (* The 1-flip neighborhood solves onemax exactly. *)
  let neighbors g =
    Seq.init genome_len (fun i ->
        let g' = Array.copy g in
        g'.(i) <- not g'.(i);
        g')
  in
  let problem = { Hillclimb.cost = onemax_problem.Ga.cost; neighbors } in
  let r = Hillclimb.run problem ~init:(Array.make genome_len true) in
  check int "optimum" 0 r.Hillclimb.best_cost;
  check int "rounds = bits flipped" genome_len r.Hillclimb.rounds

let test_hillclimb_max_rounds () =
  let neighbors g =
    Seq.init genome_len (fun i ->
        let g' = Array.copy g in
        g'.(i) <- not g'.(i);
        g')
  in
  let problem = { Hillclimb.cost = onemax_problem.Ga.cost; neighbors } in
  let r = Hillclimb.run ~max_rounds:3 problem ~init:(Array.make genome_len true) in
  check int "stopped at 3" 3 r.Hillclimb.rounds;
  check int "partial progress" (genome_len - 3) r.Hillclimb.best_cost

let tests =
  [
    Alcotest.test_case "ga solves onemax" `Quick test_ga_solves_onemax;
    Alcotest.test_case "ga seeds" `Quick test_ga_seeds_injected;
    Alcotest.test_case "ga patience" `Quick test_ga_patience_stops_early;
    Alcotest.test_case "ga history tail" `Quick test_ga_history_ends_at_best;
    Alcotest.test_case "ga config validation" `Quick test_ga_validates_config;
    Alcotest.test_case "anneal improves" `Quick test_anneal_improves;
    Alcotest.test_case "anneal restarts" `Quick test_anneal_restarts_counted;
    Alcotest.test_case "hillclimb exact" `Quick test_hillclimb_exact_on_onemax;
    Alcotest.test_case "hillclimb max rounds" `Quick test_hillclimb_max_rounds;
  ]
