(* Sync_cost formulas, Plan consistency, Cost_eval transcriptions. *)

open Hr_core

let check = Alcotest.check
let int = Alcotest.int

(* Hand-computed example: 2 tasks, 3 steps.
   Task A (v=3): reqs {0},{0,1},{2} over 4 switches.
   Task B (v=2): reqs {1},{1},{0} over 3 switches.
   Plan: A breaks at 0 and 2; B breaks at 0.
   Blocks: A [0,1] union {0,1} cost 2, [2,2] union {2} cost 1.
           B [0,2] union {0,1}  cost 2.
   Steps (task-parallel):
     i=0: hyper max(3,2)=3, reconf max(2,2)=2 -> 5
     i=1: hyper 0, reconf max(2,2)=2 -> 2
     i=2: hyper 3, reconf max(1,2)=2 -> 5
   total = 12. *)
let example () =
  let sa = Switch_space.make 4 and sb = Switch_space.make 3 in
  let ts =
    Task_set.make
      [|
        Task_set.task ~name:"A" ~v:3 (Trace.of_lists sa [ [ 0 ]; [ 0; 1 ]; [ 2 ] ]);
        Task_set.task ~name:"B" ~v:2 (Trace.of_lists sb [ [ 1 ]; [ 1 ]; [ 0 ] ]);
      |]
  in
  let bp = Breakpoints.of_rows ~m:2 ~n:3 [| [ 2 ]; [] |] in
  (ts, bp)

let test_hand_computed_parallel () =
  let ts, bp = example () in
  let oracle = Interval_cost.of_task_set ts in
  check int "total" 12 (Sync_cost.eval oracle bp);
  let steps = Sync_cost.eval_per_step oracle bp in
  Alcotest.(check (array (pair int int)))
    "per step"
    [| (3, 2); (0, 2); (3, 2) |]
    steps

let test_hand_computed_sequential_hyper () =
  let ts, bp = example () in
  let oracle = Interval_cost.of_task_set ts in
  (* Sequential hyper upload: i=0 pays 3+2=5 instead of 3. *)
  let params =
    { Sync_cost.default_params with Sync_cost.hyper = Sync_cost.Task_sequential }
  in
  check int "total" 14 (Sync_cost.eval ~params oracle bp)

let test_hand_computed_sequential_reconf () =
  let ts, bp = example () in
  let oracle = Interval_cost.of_task_set ts in
  (* Sequential reconf upload: reconf terms become sums: 4,4,3. *)
  let params =
    { Sync_cost.default_params with Sync_cost.reconf = Sync_cost.Task_sequential }
  in
  check int "total" (3 + 4 + 0 + 4 + 3 + 3) (Sync_cost.eval ~params oracle bp)

let test_pub_floor () =
  let ts, bp = example () in
  let oracle = Interval_cost.of_task_set ts in
  (* Public-global cost 10 dominates every reconf max. *)
  let params = { Sync_cost.default_params with Sync_cost.pub = 10 } in
  check int "total" (3 + 10 + 0 + 10 + 3 + 10) (Sync_cost.eval ~params oracle bp)

let test_w_added_once () =
  let ts, bp = example () in
  let oracle = Interval_cost.of_task_set ts in
  let params = { Sync_cost.default_params with Sync_cost.w = 7 } in
  check int "total" 19 (Sync_cost.eval ~params oracle bp)

let test_disabled_baseline () =
  check int "48 * 110" 5280 (Sync_cost.disabled_cost ~n:110 ~machine_width:48 ())

let qcheck_plan_cost_matches_oracle =
  Tutil.prop "Plan.cost_sync = Sync_cost.eval on union plans"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let oracle = Interval_cost.of_task_set ts in
      let rng = Hr_util.Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.4)
      in
      let v = Array.map (fun t -> t.Task_set.v) (Task_set.tasks ts) in
      let plan = Plan.of_breakpoints ts bp in
      Plan.cost_sync plan ~v = Sync_cost.eval oracle bp)

let qcheck_union_plans_valid =
  Tutil.prop "union plans always validate"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let rng = Hr_util.Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      Plan.validate (Plan.of_breakpoints ts bp) ts = Ok ())

let qcheck_m1_reduces_to_single_task =
  (* With one task, the sync multi-task cost equals the single-task
     objective of St_opt on the same breakpoints. *)
  Tutil.prop "m=1 multi-task cost = single-task cost"
    (QCheck2.Gen.pair (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_st_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let trace = Tutil.trace_of_st inst in
      let n = Trace.length trace in
      let oracle = Interval_cost.of_single ~v:inst.Tutil.v trace in
      let rng = Hr_util.Rng.create seed in
      let bp = Breakpoints.of_matrix (Mt_moves.random rng ~m:1 ~n ~density:0.4) in
      let breaks =
        List.filter (fun i -> Breakpoints.is_break bp 0 i) (List.init n Fun.id)
      in
      let ru = Range_union.make trace in
      let st =
        St_opt.cost_of_breaks ~v:inst.Tutil.v ~n
          ~step_cost:(fun lo hi -> Range_union.size ru lo hi)
          breaks
      in
      Sync_cost.eval oracle bp = st)

let test_cost_eval_async () =
  (* Two tasks: T1 does (v=2) blocks (3 cost, 2 steps)+(1,1): 2+6+2+1 = 11.
     T2 (v=5): one block (2,4): 5+8 = 13.  Max = 13, +init 4 = 17. *)
  let runs =
    [|
      { Cost_eval.v = 2; blocks = [ (3, 2); (1, 1) ] };
      { Cost_eval.v = 5; blocks = [ (2, 4) ] };
    |]
  in
  check int "task 1 time" 11 (Cost_eval.async_task_time runs.(0));
  check int "task 2 time" 13 (Cost_eval.async_task_time runs.(1));
  check int "total" 17 (Cost_eval.async_total ~init_global:4 runs)

let test_cost_eval_special_cases () =
  check int "w = |X|+|Xpriv|" 60 (Cost_eval.mt_switch_special_init ~x_loc:48 ~x_priv:12);
  check int "v = |h|+|floc|" 13 (Cost_eval.mt_switch_special_v ~assigned_priv:5 ~f_loc:8)

let test_cost_eval_sequence () =
  let ops = [ ("a", 3); ("b", 2) ] in
  let init = function "a" -> 10 | _ -> 20 in
  let cost = function "a" -> 1 | _ -> 2 in
  check int "sequence" (10 + 3 + 20 + 4)
    (Cost_eval.sequence_cost ~init ~cost ops)

let tests =
  [
    Alcotest.test_case "hand computed parallel" `Quick test_hand_computed_parallel;
    Alcotest.test_case "sequential hyper" `Quick test_hand_computed_sequential_hyper;
    Alcotest.test_case "sequential reconf" `Quick test_hand_computed_sequential_reconf;
    Alcotest.test_case "public floor" `Quick test_pub_floor;
    Alcotest.test_case "w added once" `Quick test_w_added_once;
    Alcotest.test_case "disabled baseline" `Quick test_disabled_baseline;
    Alcotest.test_case "async general model" `Quick test_cost_eval_async;
    Alcotest.test_case "special-case costs" `Quick test_cost_eval_special_cases;
    Alcotest.test_case "sequence cost" `Quick test_cost_eval_sequence;
    qcheck_plan_cost_matches_oracle;
    qcheck_union_plans_valid;
    qcheck_m1_reduces_to_single_task;
  ]
