(* Multi-task optimizers: exact DP vs brute force, metaheuristic
   sanity, heuristic baselines. *)

open Hr_core
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

let qcheck_mt_dp_matches_brute =
  Tutil.prop "Mt_dp matches Brute.multi"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let brute_cost, _ = Brute.multi oracle in
      let dp = Mt_dp.solve oracle in
      dp.Mt_dp.exact && dp.Mt_dp.cost = brute_cost
      && Sync_cost.eval oracle dp.Mt_dp.bp = dp.Mt_dp.cost)

let qcheck_mt_dp_sequential_modes =
  Tutil.prop "Mt_dp exact under sequential uploads"
    (Tutil.gen_mt_instance ~max_m:2 ~max_n:5 ~max_width:3)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let params =
        {
          Sync_cost.w = 0;
          pub = 1;
          hyper = Sync_cost.Task_sequential;
          reconf = Sync_cost.Task_sequential;
        }
      in
      let brute_cost, _ = Brute.multi ~params oracle in
      let dp = Mt_dp.solve ~params oracle in
      dp.Mt_dp.cost = brute_cost)

let qcheck_mt_dp_with_upper_bound =
  Tutil.prop "Mt_dp with heuristic upper bound stays exact"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let ub = (Mt_greedy.best oracle).Mt_greedy.cost in
      let brute_cost, _ = Brute.multi oracle in
      (Mt_dp.solve ~upper_bound:ub oracle).Mt_dp.cost = brute_cost)

let qcheck_ga_never_beats_exact =
  Tutil.prop "GA cost >= exact and is consistent"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let exact = (Mt_dp.solve oracle).Mt_dp.cost in
      let config =
        { Hr_evolve.Ga.default_config with Hr_evolve.Ga.generations = 40; population = 16 }
      in
      let ga = Mt_ga.solve ~config ~rng:(Rng.create seed) oracle in
      ga.Mt_ga.cost >= exact
      && Sync_cost.eval oracle ga.Mt_ga.bp = ga.Mt_ga.cost)

let test_ga_finds_optimum_on_phased_instance () =
  (* Crisp two-phase instance where the optimum is the phase split; the
     GA must find it (it is seeded with per-task optima). *)
  let space = Switch_space.make 6 in
  let mk l = Trace.of_lists space l in
  let ts =
    Task_set.make
      [|
        Task_set.task ~name:"A" ~v:2
          (mk [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 4 ]; [ 5 ]; [ 4; 5 ] ]);
        Task_set.task ~name:"B" ~v:2
          (mk [ [ 2 ]; [ 2 ]; [ 3 ]; [ 0 ]; [ 0 ]; [ 1 ] ]);
      |]
  in
  let oracle = Interval_cost.of_task_set ts in
  let exact = Mt_dp.solve oracle in
  let ga = Mt_ga.solve ~rng:(Rng.create 1) oracle in
  check int "ga = exact" exact.Mt_dp.cost ga.Mt_ga.cost

let test_ga_deterministic_given_seed () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let config =
    { Hr_evolve.Ga.default_config with Hr_evolve.Ga.generations = 30; population = 12 }
  in
  let a = Mt_ga.solve ~config ~rng:(Rng.create 5) oracle in
  let b = Mt_ga.solve ~config ~rng:(Rng.create 5) oracle in
  check int "same cost" a.Mt_ga.cost b.Mt_ga.cost;
  Alcotest.(check bool) "same plan" true (Breakpoints.equal a.Mt_ga.bp b.Mt_ga.bp)

let test_ga_history_monotone () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let ga = Mt_ga.solve ~rng:(Rng.create 2) oracle in
  let costs = List.map snd ga.Mt_ga.history in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a > b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly improving history" true (decreasing costs)

let qcheck_anneal_and_local_sane =
  Tutil.prop "anneal/local >= exact, <= their init"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:2 ~max_n:5 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let exact = (Mt_dp.solve oracle).Mt_dp.cost in
      let init = Mt_greedy.best oracle in
      let config = { Hr_evolve.Anneal.default_config with Hr_evolve.Anneal.steps = 500 } in
      let a = Mt_anneal.solve ~config ~rng:(Rng.create seed) oracle in
      let l = Mt_local.solve oracle in
      a.Mt_anneal.cost >= exact
      && a.Mt_anneal.cost <= init.Mt_greedy.cost
      && l.Mt_local.cost >= exact
      && l.Mt_local.cost <= init.Mt_greedy.cost)

let test_local_reaches_flip_optimum () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let r = Mt_local.solve oracle in
  (* No single flip may improve the result. *)
  let base = r.Mt_local.cost in
  let m = Breakpoints.m r.Mt_local.bp and n = Breakpoints.n r.Mt_local.bp in
  for j = 0 to m - 1 do
    for i = 1 to n - 1 do
      let flipped =
        Breakpoints.set r.Mt_local.bp j i (not (Breakpoints.is_break r.Mt_local.bp j i))
      in
      if Sync_cost.eval oracle flipped < base then
        Alcotest.failf "flip (%d,%d) improves a 'local optimum'" j i
    done
  done

let test_greedy_portfolio_sorted_and_valid () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let entries = Mt_greedy.portfolio oracle in
  let costs = List.map (fun e -> e.Mt_greedy.cost) entries in
  Alcotest.(check bool) "sorted" true (costs = List.sort compare costs);
  List.iter
    (fun e ->
      check int ("recost " ^ e.Mt_greedy.name)
        (Sync_cost.eval oracle e.Mt_greedy.bp)
        e.Mt_greedy.cost)
    entries

let test_greedy_never_and_every () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let never = Mt_greedy.never oracle in
  check int "never breaks once per task" 1 (Breakpoints.break_count never.Mt_greedy.bp 0);
  let every = Mt_greedy.every_step oracle in
  check int "every-step breaks n times" (Task_set.steps ts)
    (Breakpoints.break_count every.Mt_greedy.bp 0)

let qcheck_window_heuristic_valid =
  Tutil.prop "window heuristic produces evaluable plans"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:6 ~max_width:4)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      List.for_all
        (fun w ->
          let e = Mt_greedy.window oracle w in
          Sync_cost.eval oracle e.Mt_greedy.bp = e.Mt_greedy.cost)
        [ 1; 2; 3 ])

let test_mt_dp_beam_reports_inexact () =
  (* A beam of 1 state must still produce a valid plan but may flag
     inexactness. *)
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let r = Mt_dp.solve ~max_states:1 oracle in
  check int "cost still consistent" (Sync_cost.eval oracle r.Mt_dp.bp) r.Mt_dp.cost;
  let exact = Mt_dp.solve oracle in
  Alcotest.(check bool) "beam >= exact" true (r.Mt_dp.cost >= exact.Mt_dp.cost)

let test_mt_dp_single_step () =
  (* n=1: everything must break at step 0; cost = max v + max req. *)
  let s = Switch_space.make 3 in
  let ts =
    Task_set.make
      [|
        Task_set.task ~name:"A" ~v:4 (Trace.of_lists s [ [ 0; 1 ] ]);
        Task_set.task ~name:"B" ~v:1 (Trace.of_lists s [ [ 2 ] ]);
      |]
  in
  let r = Mt_dp.solve (Interval_cost.of_task_set ts) in
  check int "cost" (4 + 2) r.Mt_dp.cost

let tests =
  [
    qcheck_mt_dp_matches_brute;
    qcheck_mt_dp_sequential_modes;
    qcheck_mt_dp_with_upper_bound;
    qcheck_ga_never_beats_exact;
    Alcotest.test_case "ga finds phased optimum" `Quick test_ga_finds_optimum_on_phased_instance;
    Alcotest.test_case "ga deterministic" `Quick test_ga_deterministic_given_seed;
    Alcotest.test_case "ga history monotone" `Quick test_ga_history_monotone;
    qcheck_anneal_and_local_sane;
    Alcotest.test_case "local is 1-flip optimal" `Quick test_local_reaches_flip_optimum;
    Alcotest.test_case "greedy portfolio" `Quick test_greedy_portfolio_sorted_and_valid;
    Alcotest.test_case "greedy never/every" `Quick test_greedy_never_and_every;
    qcheck_window_heuristic_valid;
    Alcotest.test_case "mt_dp beam" `Quick test_mt_dp_beam_reports_inexact;
    Alcotest.test_case "mt_dp single step" `Quick test_mt_dp_single_step;
  ]
