test/suite_shyra.ml: Alcotest Array Asm Config Counter Gray Hr_core Hr_shyra Hr_util Lfsr List Lut Machine Parity Program Rule90 Serial_adder Tasks Tracer
