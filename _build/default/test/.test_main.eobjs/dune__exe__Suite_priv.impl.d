test/suite_priv.ml: Alcotest Array Cost_eval Hr_core Interval_cost List Mt_priv Switch_space Trace
