test/suite_fuzz.ml: Alcotest Array Astring Breakpoints Fun Grid Hr_core Hr_rmesh Hr_shyra Hr_util List Mt_moves Partition Plan_io Port Printf QCheck2 Trace Tutil
