test/suite_async.ml: Alcotest Breakpoints Fun Hr_core Hr_shyra Hr_util Hr_workload Interval_cost List Mt_async Mt_moves Printf QCheck2 St_opt Switch_space Sync_cost Trace Trace_stats Tutil
