test/suite_rmesh.ml: Alcotest Algos Array Grid Hr_core Hr_rmesh Hr_util List Mesh_tracer Partition Port Printf
