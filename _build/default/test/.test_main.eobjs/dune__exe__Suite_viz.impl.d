test/suite_viz.ml: Alcotest Ascii Astring Breakpoints Figures Hr_core Hr_util Hr_viz Interval_cost List String Switch_space Task_set Trace Tutil
