test/suite_evolve.ml: Alcotest Array Hr_evolve Hr_util List Seq
