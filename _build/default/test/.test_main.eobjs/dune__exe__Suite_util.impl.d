test/suite_util.ml: Alcotest Array Fun Hr_util List String
