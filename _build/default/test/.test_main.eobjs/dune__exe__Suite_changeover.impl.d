test/suite_changeover.ml: Alcotest Hr_core Hr_evolve Hr_util List Mt_changeover Plan Printf QCheck2 St_changeover Switch_space Task_set Trace Tutil
