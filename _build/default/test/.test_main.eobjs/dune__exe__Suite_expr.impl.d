test/suite_expr.ml: Alcotest Array Astring Counter Counter_compiled Duo Expr Expr_parse Gray Hr_core Hr_shyra Hr_util Hr_viz List Printf Program QCheck2 QCheck_alcotest Rule90 String Tutil Word
