test/suite_general.ml: Alcotest General_opt Hr_core Hr_util St_opt Switch_space Trace Tutil
