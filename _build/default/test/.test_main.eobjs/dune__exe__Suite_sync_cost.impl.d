test/suite_sync_cost.ml: Alcotest Array Breakpoints Cost_eval Fun Hr_core Hr_util Interval_cost List Mt_moves Plan Printf QCheck2 Range_union St_opt Switch_space Sync_cost Task_set Trace Tutil
