test/suite_workload.ml: Alcotest Array Dag_gen Dag_model Hr_core Hr_util Hr_workload Multi_gen Printf Range_union Replay St_opt Switch_space Synthetic Task_set Trace
