test/tutil.ml: Array Hr_core Hr_util Interval_cost List Printf QCheck2 QCheck_alcotest String Switch_space Task_set Trace
