test/suite_st_opt.ml: Alcotest Breakpoints Brute Fun Hr_core Hr_util List Plan Range_union St_opt Switch_space Task_set Trace Tutil
