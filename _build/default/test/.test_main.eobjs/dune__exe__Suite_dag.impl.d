test/suite_dag.ml: Alcotest Brute Dag_model Hr_core Hr_util Hr_workload Mt_dp St_dag_opt St_opt
