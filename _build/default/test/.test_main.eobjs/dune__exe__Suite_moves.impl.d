test/suite_moves.ml: Array Hr_core Hr_util Interval_cost List Mt_moves Printf QCheck2 QCheck_alcotest Tutil
