test/suite_mt.ml: Alcotest Breakpoints Brute Hr_core Hr_evolve Hr_util Interval_cost List Mt_anneal Mt_dp Mt_ga Mt_greedy Mt_local Printf QCheck2 Switch_space Sync_cost Task_set Trace Tutil
