test/suite_robust.ml: Alcotest Array Breakpoints Hr_core Hr_util Hr_workload Interval_cost Mt_moves Plan Printf QCheck2 Robustness St_opt Switch_space Sync_cost Task_set Trace Tutil
