test/suite_bitset.ml: Alcotest Hr_util List QCheck2 QCheck_alcotest Sys
