test/suite_sync_rules.ml: Alcotest Format Hr_core Result String Sync
