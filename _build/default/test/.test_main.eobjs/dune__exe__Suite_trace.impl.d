test/suite_trace.ml: Alcotest Breakpoints Fun Hr_core Hr_util Hypercontext List Range_union Switch_space Task_set Trace
