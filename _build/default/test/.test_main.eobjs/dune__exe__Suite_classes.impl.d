test/suite_classes.ml: Alcotest Array Breakpoints Fun Hr_core Hr_util Interval_cost List Mt_classes Mt_dp Switch_space Sync_cost Task_set Trace Trace_io Tutil
