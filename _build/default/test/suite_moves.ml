(* Mt_moves invariants and Interval_cost oracle properties. *)

open Hr_core
module Rng = Hr_util.Rng

let column0_ok g = Array.for_all (fun row -> row.(0)) g

let dims_ok ~m ~n g =
  Array.length g = m && Array.for_all (fun row -> Array.length row = n) g

let gen_seeded =
  QCheck2.Gen.(
    triple (int_range 1 4) (int_range 1 12) (int_bound 10_000))

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name
       ~print:(fun (m, n, seed) -> Printf.sprintf "m=%d n=%d seed=%d" m n seed)
       gen_seeded f)

let with_matrix (m, n, seed) k =
  let rng = Rng.create seed in
  let g = Mt_moves.random rng ~m ~n ~density:0.3 in
  k rng g m n

let qcheck_random_invariants =
  prop "random matrices keep column 0 and dimensions" (fun inst ->
      with_matrix inst (fun _ g m n -> column0_ok g && dims_ok ~m ~n g))

let qcheck_moves_preserve_invariants =
  prop "flip/shift/align/mutate preserve the invariants" (fun inst ->
      with_matrix inst (fun rng g m n ->
          List.for_all
            (fun move ->
              let g' = move rng g in
              column0_ok g' && dims_ok ~m ~n g')
            [ Mt_moves.flip; Mt_moves.shift; Mt_moves.align; Mt_moves.mutate ]))

let qcheck_moves_do_not_mutate_input =
  prop "moves never mutate their input" (fun inst ->
      with_matrix inst (fun rng g _ _ ->
          let copy = Mt_moves.copy g in
          List.iter
            (fun move -> ignore (move rng g))
            [ Mt_moves.flip; Mt_moves.shift; Mt_moves.align; Mt_moves.mutate ];
          g = copy))

let qcheck_crossover_invariants =
  prop "crossover preserves invariants and draws from parents" (fun (m, n, seed) ->
      let rng = Rng.create seed in
      let a = Mt_moves.random rng ~m ~n ~density:0.2 in
      let b = Mt_moves.random rng ~m ~n ~density:0.6 in
      let c = Mt_moves.crossover rng a b in
      column0_ok c && dims_ok ~m ~n c
      &&
      (* Every cell agrees with at least one parent. *)
      let ok = ref true in
      Array.iteri
        (fun j row ->
          Array.iteri (fun i v -> if v <> a.(j).(i) && v <> b.(j).(i) then ok := false) row)
        c;
      !ok)

let qcheck_neighbors_enumeration =
  prop "neighbors = m*(n-1) single flips" (fun inst ->
      with_matrix inst (fun _ g m n ->
          let neighbors = List.of_seq (Mt_moves.neighbors g) in
          List.length neighbors = m * (n - 1)
          && List.for_all
               (fun g' ->
                 column0_ok g'
                 &&
                 (* Exactly one cell differs. *)
                 let diff = ref 0 in
                 Array.iteri
                   (fun j row ->
                     Array.iteri (fun i v -> if v <> g.(j).(i) then incr diff) row)
                   g';
                 !diff = 1)
               neighbors))

(* ---- Interval_cost oracle properties ---- *)

let qcheck_oracle_monotone =
  Tutil.prop "switch oracle is interval-monotone"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:5)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let n = oracle.Interval_cost.n in
      let ok = ref true in
      for j = 0 to oracle.Interval_cost.m - 1 do
        for lo = 0 to n - 1 do
          for hi = lo to n - 1 do
            let c = oracle.Interval_cost.step_cost j lo hi in
            if lo > 0 && oracle.Interval_cost.step_cost j (lo - 1) hi < c then
              ok := false;
            if hi < n - 1 && oracle.Interval_cost.step_cost j lo (hi + 1) < c then
              ok := false
          done
        done
      done;
      !ok)

let qcheck_memoize_transparent =
  Tutil.prop "memoized oracle returns identical values"
    (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:5)
    Tutil.show_mt_instance
    (fun inst ->
      let oracle = Tutil.oracle_of_instance inst in
      let memo = Interval_cost.memoize oracle in
      let n = oracle.Interval_cost.n in
      let ok = ref true in
      for j = 0 to oracle.Interval_cost.m - 1 do
        for lo = 0 to n - 1 do
          for hi = lo to n - 1 do
            (* Query twice to hit both the miss and the hit path. *)
            if
              memo.Interval_cost.step_cost j lo hi
              <> oracle.Interval_cost.step_cost j lo hi
              || memo.Interval_cost.step_cost j lo hi
                 <> oracle.Interval_cost.step_cost j lo hi
            then ok := false
          done
        done
      done;
      !ok)

let tests =
  [
    qcheck_random_invariants;
    qcheck_moves_preserve_invariants;
    qcheck_moves_do_not_mutate_input;
    qcheck_crossover_invariants;
    qcheck_neighbors_enumeration;
    qcheck_oracle_monotone;
    qcheck_memoize_transparent;
  ]
