(* Mixed_sync modes, Online policies, Descriptor encodings, Timeline,
   Par. *)

open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

let check = Alcotest.check
let int = Alcotest.int

(* ---- Mixed_sync ---- *)

let random_plan inst seed =
  let rng = Rng.create seed in
  Breakpoints.of_matrix (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)

let qcheck_mixed_extremes_match =
  Tutil.prop "Mixed_sync: Full = Sync_cost, None = Mt_async"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let bp = random_plan inst seed in
      Mixed_sync.eval ~mode:Mixed_sync.Fully_synchronized oracle bp
      = Sync_cost.eval oracle bp
      && Mixed_sync.eval ~mode:Mixed_sync.Non_synchronized oracle bp
         = Mt_async.eval oracle bp)

let qcheck_mixed_mode_ordering =
  Tutil.prop "Mixed_sync: none <= intermediates <= full"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:4)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let oracle = Tutil.oracle_of_instance inst in
      let bp = random_plan inst seed in
      let cost mode = Mixed_sync.eval ~mode oracle bp in
      let none = cost Mixed_sync.Non_synchronized in
      let hc = cost Mixed_sync.Hypercontext_synchronized in
      let ctx = cost Mixed_sync.Context_synchronized in
      let full = cost Mixed_sync.Fully_synchronized in
      none <= hc && none <= ctx && hc <= full && ctx <= full)

let qcheck_mixed_m1_all_agree =
  Tutil.prop "Mixed_sync: all modes agree for m = 1"
    (QCheck2.Gen.pair (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
       (QCheck2.Gen.int_bound 1000))
    (fun (inst, seed) -> Tutil.show_st_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let trace = Tutil.trace_of_st inst in
      let oracle = Interval_cost.of_single ~v:inst.Tutil.v trace in
      let rng = Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:1 ~n:(Trace.length trace) ~density:0.4)
      in
      let costs =
        List.map
          (fun mode -> Mixed_sync.eval ~mode oracle bp)
          [
            Mixed_sync.Fully_synchronized;
            Mixed_sync.Hypercontext_synchronized;
            Mixed_sync.Context_synchronized;
            Mixed_sync.Non_synchronized;
          ]
      in
      List.for_all (( = ) (List.hd costs)) costs)

let test_mixed_pub_rules () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let bp = Breakpoints.create ~m:2 ~n:5 in
  (* pub allowed on context-synchronized machines... *)
  ignore (Mixed_sync.eval ~mode:Mixed_sync.Context_synchronized ~pub:3 oracle bp);
  (* ...but not on hypercontext-only or non-synchronized ones. *)
  List.iter
    (fun mode ->
      match Mixed_sync.eval ~mode ~pub:3 oracle bp with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "pub accepted without context synchronization")
    [ Mixed_sync.Hypercontext_synchronized; Mixed_sync.Non_synchronized ]

(* ---- Online ---- *)

let qcheck_online_policies_valid_and_bounded =
  Tutil.prop "online policies are valid and >= offline optimum"
    (Tutil.gen_st_instance ~max_n:15 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let v = inst.Tutil.v in
      let offline, _ = St_opt.solve_trace ~v trace in
      List.for_all
        (fun policy ->
          let cost, switches = Online.run policy ~v trace in
          cost >= offline.St_opt.cost && switches >= 1)
        (Online.all ~v ~universe:inst.Tutil.width))

let test_eager_cost_formula () =
  let space = Switch_space.make 6 in
  let trace = Trace.of_lists space [ [ 0; 1 ]; [ 2 ]; [ 3; 4; 5 ] ] in
  let cost, switches = Online.run Online.eager ~v:10 trace in
  check int "switches" 3 switches;
  check int "cost" ((10 + 2) + (10 + 1) + (10 + 3)) cost

let test_lazy_full_cost_formula () =
  let space = Switch_space.make 6 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 1 ]; [ 2 ] ] in
  let cost, switches = Online.run (Online.lazy_full ~universe:6) ~v:10 trace in
  check int "one switch" 1 switches;
  check int "cost" (10 + (6 * 3)) cost

let test_rent_or_buy_adapts () =
  (* Long quiet tail after a big first requirement: rent-or-buy must
     eventually shrink, eager pays v every step, lazy keeps paying 6. *)
  let space = Switch_space.make 6 in
  let reqs = [ 0; 1; 2; 3; 4; 5 ] :: List.init 40 (fun _ -> [ 0 ]) in
  let trace = Trace.of_lists space reqs in
  let v = 6 in
  let rb, _ = Online.run (Online.rent_or_buy ~v) ~v trace in
  let lazy_cost, _ = Online.run (Online.lazy_full ~universe:6) ~v trace in
  Alcotest.(check bool) "rent-or-buy beats lazy here" true (rb < lazy_cost)

let test_competitive_ratio_sane () =
  let trace =
    Hr_workload.Synthetic.phased (Rng.create 3)
      (Switch_space.make 12)
      [
        { Hr_workload.Synthetic.len = 20; active = Bitset.of_list 12 [ 0; 1; 2 ]; density = 0.7 };
        { Hr_workload.Synthetic.len = 20; active = Bitset.of_list 12 [ 9; 10; 11 ]; density = 0.7 };
      ]
  in
  List.iter
    (fun policy ->
      let r = Online.competitive_ratio policy ~v:6 trace in
      if r < 1.0 -. 1e-9 then
        Alcotest.failf "policy %s beat the offline optimum (%f)" policy.Online.name r)
    (Online.all ~v:6 ~universe:12)

(* ---- Descriptor ---- *)

let test_descriptor_sizes () =
  let h = Bitset.of_list 48 [ 0; 1; 2 ] in
  check int "bitmap" 48 (Descriptor.size Descriptor.Bitmap h);
  (* addr bits for width 48 = 6; (3+1)*6 = 24 *)
  check int "sparse" 24 (Descriptor.size Descriptor.Sparse h);
  (* runs: [0,2] set then clear -> 2 runs; 2*(6+1) = 14 *)
  check int "rle" 14 (Descriptor.size Descriptor.Run_length h)

let test_descriptor_best () =
  let clustered = Bitset.of_list 48 (List.init 20 Fun.id) in
  let enc, _ = Descriptor.best clustered in
  check Alcotest.string "clustered -> rle" "run-length" (Descriptor.name enc);
  let tiny = Bitset.of_list 48 [ 7 ] in
  let enc, _ = Descriptor.best tiny in
  check Alcotest.string "tiny -> sparse" "sparse" (Descriptor.name enc)

let test_rle_not_monotone () =
  (* Adding a switch can merge two runs and shrink the descriptor. *)
  let gap = Bitset.of_list 8 [ 0; 1; 3; 4 ] in
  let filled = Bitset.add gap 2 in
  Alcotest.(check bool) "rle shrinks on superset" true
    (Descriptor.size Descriptor.Run_length filled
    < Descriptor.size Descriptor.Run_length gap);
  Alcotest.(check bool) "flagged non-monotone" false
    (Descriptor.monotone Descriptor.Run_length)

let qcheck_descriptor_plan_costs_sane =
  Tutil.prop "descriptor plan costs are valid totals"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:6)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      List.for_all
        (fun enc ->
          let c = Descriptor.plan_cost enc trace in
          (* At least the per-step requirement sizes must be paid. *)
          let floor_cost =
            Array.fold_left ( + ) 0 (Trace.sizes trace)
          in
          c >= floor_cost)
        [ Descriptor.Bitmap; Descriptor.Sparse; Descriptor.Run_length ])

let test_bitmap_plan_equals_constant_w () =
  let trace = Tutil.trace_of_st { Tutil.width = 5; v = 0; steps = [ [ 0 ]; [ 1 ]; [ 2 ] ] } in
  let via_descriptor = Descriptor.plan_cost Descriptor.Bitmap trace in
  let direct, _ = St_opt.solve_trace ~v:5 trace in
  check int "bitmap = w=|X|" direct.St_opt.cost via_descriptor

(* ---- Timeline ---- *)

let test_timeline_consistency () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  let tl = Hr_viz.Timeline.make oracle bp in
  check int "machine time = sync eval" (Sync_cost.eval oracle bp)
    (Hr_viz.Timeline.machine_time tl);
  let u = Hr_viz.Timeline.utilization tl in
  Array.iter
    (fun x -> if x < 0. || x > 1.0 +. 1e-9 then Alcotest.failf "utilization %f" x)
    u;
  let busy = Hr_viz.Timeline.busy tl in
  Alcotest.(check bool) "bottleneck is busiest" true
    (busy.(Hr_viz.Timeline.bottleneck tl) = Array.fold_left max 0 busy)

let test_timeline_render_smoke () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let bp = Breakpoints.create ~m:2 ~n:5 in
  let s = Hr_viz.Timeline.render ~names:[| "A"; "B" |] (Hr_viz.Timeline.make oracle bp) in
  Alcotest.(check bool) "mentions utilization" true
    (Astring.String.is_infix ~affix:"utilization" s)

(* ---- Par ---- *)

let test_par_map_matches_sequential () =
  let arr = Array.init 1000 Fun.id in
  let f x = (x * 37) mod 101 in
  Alcotest.(check (array int)) "same results" (Array.map f arr)
    (Hr_util.Par.map_array ~domains:4 f arr);
  Alcotest.(check (array int)) "domains=1" (Array.map f arr)
    (Hr_util.Par.map_array ~domains:1 f arr)

let test_par_map_empty_and_small () =
  Alcotest.(check (array int)) "empty" [||] (Hr_util.Par.map_array ~domains:4 succ [||]);
  Alcotest.(check (array int)) "short" [| 2; 3 |]
    (Hr_util.Par.map_array ~domains:4 succ [| 1; 2 |])

let test_par_propagates_exception () =
  match
    Hr_util.Par.map_array ~domains:3
      (fun x -> if x = 500 then failwith "boom" else x)
      (Array.init 1000 Fun.id)
  with
  | exception Failure msg -> check Alcotest.string "message" "boom" msg
  | _ -> Alcotest.fail "exception swallowed"

let test_parallel_ga_deterministic () =
  let ts = Tutil.sample_task_set () in
  let oracle = Interval_cost.of_task_set ts in
  let config domains =
    { Hr_evolve.Ga.default_config with Hr_evolve.Ga.generations = 25; population = 12; domains }
  in
  let a = Mt_ga.solve ~config:(config 1) ~rng:(Rng.create 8) oracle in
  let b = Mt_ga.solve ~config:(config 4) ~rng:(Rng.create 8) oracle in
  check int "same cost" a.Mt_ga.cost b.Mt_ga.cost;
  Alcotest.(check bool) "same plan" true (Breakpoints.equal a.Mt_ga.bp b.Mt_ga.bp)

let tests =
  [
    qcheck_mixed_extremes_match;
    qcheck_mixed_mode_ordering;
    qcheck_mixed_m1_all_agree;
    Alcotest.test_case "mixed pub rules" `Quick test_mixed_pub_rules;
    qcheck_online_policies_valid_and_bounded;
    Alcotest.test_case "eager formula" `Quick test_eager_cost_formula;
    Alcotest.test_case "lazy-full formula" `Quick test_lazy_full_cost_formula;
    Alcotest.test_case "rent-or-buy adapts" `Quick test_rent_or_buy_adapts;
    Alcotest.test_case "competitive ratio sane" `Quick test_competitive_ratio_sane;
    Alcotest.test_case "descriptor sizes" `Quick test_descriptor_sizes;
    Alcotest.test_case "descriptor best" `Quick test_descriptor_best;
    Alcotest.test_case "rle non-monotone" `Quick test_rle_not_monotone;
    qcheck_descriptor_plan_costs_sane;
    Alcotest.test_case "bitmap = constant w" `Quick test_bitmap_plan_equals_constant_w;
    Alcotest.test_case "timeline consistency" `Quick test_timeline_consistency;
    Alcotest.test_case "timeline render" `Quick test_timeline_render_smoke;
    Alcotest.test_case "par map" `Quick test_par_map_matches_sequential;
    Alcotest.test_case "par edge cases" `Quick test_par_map_empty_and_small;
    Alcotest.test_case "par exceptions" `Quick test_par_propagates_exception;
    Alcotest.test_case "parallel ga deterministic" `Quick test_parallel_ga_deterministic;
  ]
