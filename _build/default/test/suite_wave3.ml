(* Bounded-budget DP, dynamic task environments, weighted switches,
   Markov workloads, and the pinned headline regression numbers. *)

open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

(* ---- St_opt.solve_bounded ---- *)

let qcheck_bounded_matches_unbounded_at_n =
  Tutil.prop "solve_bounded(max_blocks=n) = solve"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let free = St_opt.solve ~v:inst.Tutil.v ~n ~step_cost in
      let bounded = St_opt.solve_bounded ~v:inst.Tutil.v ~n ~step_cost ~max_blocks:n in
      free.St_opt.cost = bounded.St_opt.cost)

let qcheck_bounded_monotone_in_budget =
  Tutil.prop "solve_bounded cost is non-increasing in the budget"
    (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
    Tutil.show_st_instance
    (fun inst ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let costs =
        List.init n (fun k ->
            (St_opt.solve_bounded ~v:inst.Tutil.v ~n ~step_cost ~max_blocks:(k + 1))
              .St_opt.cost)
      in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing costs)

let qcheck_bounded_respects_budget =
  Tutil.prop "solve_bounded uses at most max_blocks breaks"
    (QCheck2.Gen.pair (Tutil.gen_st_instance ~max_n:10 ~max_width:5)
       (QCheck2.Gen.int_range 1 5))
    (fun (inst, k) -> Tutil.show_st_instance inst ^ Printf.sprintf " k=%d" k)
    (fun (inst, k) ->
      let trace = Tutil.trace_of_st inst in
      let ru = Range_union.make trace in
      let step_cost lo hi = Range_union.size ru lo hi in
      let n = Trace.length trace in
      let r = St_opt.solve_bounded ~v:inst.Tutil.v ~n ~step_cost ~max_blocks:k in
      List.length r.St_opt.breaks <= k
      && St_opt.cost_of_breaks ~v:inst.Tutil.v ~n ~step_cost r.St_opt.breaks
         = r.St_opt.cost)

let test_bounded_one_block () =
  let trace = Tutil.trace_of_st { Tutil.width = 4; v = 1; steps = [ [ 0 ]; [ 1 ]; [ 2 ] ] } in
  let ru = Range_union.make trace in
  let r =
    St_opt.solve_bounded ~v:1 ~n:3
      ~step_cost:(fun lo hi -> Range_union.size ru lo hi)
      ~max_blocks:1
  in
  check int "forced single block" (1 + (3 * 3)) r.St_opt.cost;
  Alcotest.(check (list int)) "breaks" [ 0 ] r.St_opt.breaks

(* ---- Mt_dynamic ---- *)

let space8 = Switch_space.make 8

let mk_epoch specs =
  {
    Mt_dynamic.tasks =
      List.map (fun (name, reqs) -> (name, Trace.of_lists space8 reqs)) specs;
  }

let test_dynamic_basic () =
  let epochs =
    [
      mk_epoch [ ("a", [ [ 0 ]; [ 1 ] ]); ("b", [ [ 4 ]; [ 5 ] ]) ];
      mk_epoch [ ("c", [ [ 2 ]; [ 2 ]; [ 3 ] ]) ];
    ]
  in
  let plan = Mt_dynamic.solve ~w:10 epochs in
  check int "2 epochs" 2 (List.length plan.Mt_dynamic.epoch_costs);
  Alcotest.(check (list int)) "task counts" [ 2; 1 ] plan.Mt_dynamic.epoch_task_counts;
  check int "total = sum + 2w"
    (List.fold_left ( + ) 20 plan.Mt_dynamic.epoch_costs)
    plan.Mt_dynamic.total_cost

let test_dynamic_rejects_overlap () =
  let epochs = [ mk_epoch [ ("a", [ [ 0 ] ]); ("b", [ [ 0 ] ]) ] ] in
  match Mt_dynamic.solve ~w:1 epochs with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the task" true
        (Astring.String.is_infix ~affix:"b" msg)
  | _ -> Alcotest.fail "overlapping ownership accepted"

let test_dynamic_random_workload_runs () =
  let epochs =
    Mt_dynamic.random_epochs (Rng.create 3) ~width:24 ~epochs:4 ~steps_per_epoch:12
      ~max_tasks:3
  in
  let plan = Mt_dynamic.solve ~w:24 epochs in
  Alcotest.(check bool) "positive cost" true (plan.Mt_dynamic.total_cost > 0);
  check int "4 epochs" 4 (List.length plan.Mt_dynamic.epoch_costs)

(* ---- Weighted ---- *)

let test_weighted_unit_weights_match_plain () =
  let ts = Tutil.sample_task_set () in
  let weights =
    Array.map
      (fun t ->
        Array.make (Switch_space.size (Trace.space t.Task_set.trace)) 1)
      (Task_set.tasks ts)
  in
  let weighted = Weighted.oracle ts ~weights in
  let plain = Interval_cost.of_task_set ts in
  for j = 0 to 1 do
    for lo = 0 to 4 do
      for hi = lo to 4 do
        if
          weighted.Interval_cost.step_cost j lo hi
          <> plain.Interval_cost.step_cost j lo hi
        then Alcotest.failf "mismatch at (%d,%d,%d)" j lo hi
      done
    done
  done;
  (* v becomes the weighted total = local size with unit weights. *)
  Alcotest.(check (array int)) "v = l_j" [| 4; 3 |] weighted.Interval_cost.v

let test_weighted_shifts_plans () =
  (* One hot switch makes blocks containing it expensive: the optimal
     plan must isolate its uses. *)
  let space = Switch_space.make 3 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 0 ]; [ 2 ]; [ 0 ]; [ 0 ] ] in
  let weights = [| 1; 1; 50 |] in
  let oracle = Weighted.single ~v:3 trace ~weights in
  let r = St_opt.solve_oracle oracle ~task:0 in
  (* Merging everything would pay 5*51; isolating step 2 pays
     3v + 1+1+50+1+1. *)
  check int "isolates the hot switch" (9 + 54) r.St_opt.cost;
  Alcotest.(check (list int)) "breaks" [ 0; 2; 3 ] r.St_opt.breaks

let test_weighted_rejects_bad_weights () =
  let space = Switch_space.make 2 in
  let trace = Trace.of_lists space [ [ 0 ] ] in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Weighted: weights must be positive") (fun () ->
      ignore (Weighted.single ~v:1 trace ~weights:[| 1; 0 |]))

let test_block_weight () =
  let space = Switch_space.make 3 in
  let trace = Trace.of_lists space [ [ 0 ]; [ 1 ]; [ 0; 2 ] ] in
  check int "weighted union" (1 + 10 + 100)
    (Weighted.block_weight trace ~weights:[| 1; 10; 100 |] 0 2)

(* ---- Markov ---- *)

let test_markov_chain_valid () =
  let chain =
    Hr_workload.Markov.make_chain (Rng.create 1) ~space:space8 ~states:4 ~self:0.9
  in
  Alcotest.(check bool) "valid" true (Hr_workload.Markov.validate chain = Ok ())

let test_markov_generate_shape () =
  let rng = Rng.create 2 in
  let chain = Hr_workload.Markov.make_chain rng ~space:space8 ~states:3 ~self:0.85 in
  let trace = Hr_workload.Markov.generate rng chain ~space:space8 ~n:50 in
  check int "length" 50 (Trace.length trace)

let test_markov_sticky_dwell_longer () =
  let rng1 = Rng.create 3 and rng2 = Rng.create 3 in
  let sticky = Hr_workload.Markov.make_chain rng1 ~space:space8 ~states:4 ~self:0.95 in
  let jumpy = Hr_workload.Markov.make_chain rng2 ~space:space8 ~states:4 ~self:0.25 in
  let mean xs =
    float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
  in
  let d1 = mean (Hr_workload.Markov.dwell_times (Rng.create 4) sticky ~n:400) in
  let d2 = mean (Hr_workload.Markov.dwell_times (Rng.create 4) jumpy ~n:400) in
  Alcotest.(check bool) "sticky dwells longer" true (d1 > d2 *. 2.)

let test_markov_invalid_matrix_rejected () =
  let chain =
    {
      Hr_workload.Markov.states =
        [| { Hr_workload.Markov.active = Bitset.of_list 8 [ 0 ]; density = 0.5 } |];
      transition = [| [| 0.5 |] |];
    }
  in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Hr_workload.Markov.validate chain))

(* ---- pinned headline regression numbers ---- *)

let test_headline_numbers_pinned () =
  (* The deterministic T1 values for the field-diff counter trace; any
     change to the simulator, tracer or planners that shifts these must
     be a conscious decision. *)
  let run = Hr_shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Hr_shyra.Tracer.trace run.Hr_shyra.Counter.program in
  let n = Trace.length trace in
  check int "n" 84 n;
  check int "disabled" 4032 (Sync_cost.disabled_cost ~n ~machine_width:48 ());
  let single =
    St_opt.solve_oracle (Hr_shyra.Tasks.oracle trace Hr_shyra.Tasks.single_task) ~task:0
  in
  check int "single optimal" 3360 single.St_opt.cost;
  let oracle = Hr_shyra.Tasks.oracle trace Hr_shyra.Tasks.four_tasks in
  let lower_bound =
    List.fold_left max 0
      (List.init 4 (fun j -> (St_opt.solve_oracle oracle ~task:j).St_opt.cost))
  in
  check int "multi lower bound" 1364 lower_bound;
  let ga = Mt_ga.solve ~rng:(Rng.create 2004) oracle in
  check int "GA reaches the lower bound" 1364 ga.Mt_ga.cost

let tests =
  [
    qcheck_bounded_matches_unbounded_at_n;
    qcheck_bounded_monotone_in_budget;
    qcheck_bounded_respects_budget;
    Alcotest.test_case "bounded one block" `Quick test_bounded_one_block;
    Alcotest.test_case "dynamic basic" `Quick test_dynamic_basic;
    Alcotest.test_case "dynamic overlap" `Quick test_dynamic_rejects_overlap;
    Alcotest.test_case "dynamic random" `Quick test_dynamic_random_workload_runs;
    Alcotest.test_case "weighted unit = plain" `Quick test_weighted_unit_weights_match_plain;
    Alcotest.test_case "weighted shifts plans" `Quick test_weighted_shifts_plans;
    Alcotest.test_case "weighted validation" `Quick test_weighted_rejects_bad_weights;
    Alcotest.test_case "block weight" `Quick test_block_weight;
    Alcotest.test_case "markov valid" `Quick test_markov_chain_valid;
    Alcotest.test_case "markov shape" `Quick test_markov_generate_shape;
    Alcotest.test_case "markov dwell" `Quick test_markov_sticky_dwell_longer;
    Alcotest.test_case "markov invalid matrix" `Quick test_markov_invalid_matrix_rejected;
    Alcotest.test_case "headline numbers pinned" `Quick test_headline_numbers_pinned;
  ]
