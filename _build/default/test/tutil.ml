(* Shared helpers for the test suites: small random instances and
   QCheck generators. *)

open Hr_core
module Bitset = Hr_util.Bitset

(* A compact description of a random multi-task instance, kept as plain
   data so QCheck can shrink and print it. *)
type mt_instance = {
  m : int;
  n : int;
  widths : int list;  (* local switch count per task *)
  vs : int list;  (* v_j per task *)
  reqs : int list list list;  (* per task, per step, switch indices *)
}

let show_mt_instance inst =
  Printf.sprintf "m=%d n=%d widths=[%s] vs=[%s] reqs=%s" inst.m inst.n
    (String.concat ";" (List.map string_of_int inst.widths))
    (String.concat ";" (List.map string_of_int inst.vs))
    (String.concat "|"
       (List.map
          (fun task ->
            String.concat ","
              (List.map
                 (fun req -> "{" ^ String.concat " " (List.map string_of_int req) ^ "}")
                 task))
          inst.reqs))

let task_set_of_instance inst =
  let tasks =
    List.mapi
      (fun j task_reqs ->
        let space = Switch_space.make (List.nth inst.widths j) in
        Task_set.task
          ~name:(Printf.sprintf "T%d" j)
          ~v:(List.nth inst.vs j)
          (Trace.of_lists space task_reqs))
      inst.reqs
  in
  Task_set.make (Array.of_list tasks)

let oracle_of_instance inst = Interval_cost.of_task_set (task_set_of_instance inst)

(* QCheck generator for instances small enough for Brute.multi:
   (n-1)*m <= 12. *)
let gen_mt_instance ~max_m ~max_n ~max_width =
  let open QCheck2.Gen in
  int_range 1 max_m >>= fun m ->
  int_range 1 (min max_n (1 + (12 / m))) >>= fun n ->
  list_repeat m (int_range 1 max_width) >>= fun widths ->
  list_repeat m (int_range 0 6) >>= fun vs ->
  let gen_task j =
    let width = List.nth widths j in
    list_repeat n (list_size (int_bound width) (int_bound (width - 1)))
  in
  let rec gen_tasks j acc =
    if j = m then return (List.rev acc)
    else gen_task j >>= fun t -> gen_tasks (j + 1) (t :: acc)
  in
  gen_tasks 0 [] >>= fun reqs -> return { m; n; widths; vs; reqs }

(* Single-task random trace as plain data. *)
type st_instance = { width : int; v : int; steps : int list list }

let show_st_instance inst =
  Printf.sprintf "width=%d v=%d steps=%s" inst.width inst.v
    (String.concat "|"
       (List.map (fun req -> String.concat "," (List.map string_of_int req)) inst.steps))

let trace_of_st inst =
  Trace.of_lists (Switch_space.make inst.width) inst.steps

let gen_st_instance ~max_n ~max_width =
  let open QCheck2.Gen in
  int_range 1 max_width >>= fun width ->
  int_range 0 8 >>= fun v ->
  int_range 1 max_n >>= fun n ->
  list_repeat n (list_size (int_bound width) (int_bound (width - 1))) >>= fun steps ->
  return { width; v; steps }

let prop name gen print f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~print gen f)

(* Deterministic sample instances used by non-qcheck tests. *)
let sample_task_set () =
  let s4 = Switch_space.make 4 and s3 = Switch_space.make 3 in
  Task_set.make
    [|
      Task_set.task ~name:"A" ~v:3
        (Trace.of_lists s4 [ [ 0 ]; [ 0; 1 ]; [ 2 ]; [ 2 ]; [ 3 ] ]);
      Task_set.task ~name:"B" ~v:2
        (Trace.of_lists s3 [ [ 1 ]; [ 1 ]; [ 0; 2 ]; [ 2 ]; [ 1 ] ]);
    |]
