(* Robustness analysis: perturbation, violations, margins. *)

open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

let check = Alcotest.check
let int = Alcotest.int

let test_perturb_only_adds () =
  let trace = (Tutil.sample_task_set () |> fun ts -> (Task_set.get ts 0).Task_set.trace) in
  let noisy = Robustness.perturb (Rng.create 3) trace ~p:0.3 in
  for i = 0 to Trace.length trace - 1 do
    if not (Bitset.subset (Trace.req trace i) (Trace.req noisy i)) then
      Alcotest.failf "perturbation dropped demand at %d" i
  done

let test_no_noise_no_violations () =
  let ts = Tutil.sample_task_set () in
  let bp = Breakpoints.of_rows ~m:2 ~n:5 [| [ 2 ]; [ 3 ] |] in
  let plan = Plan.of_breakpoints ts bp in
  let r = Robustness.evaluate ts plan in
  check int "no violations" 0 r.Robustness.violations;
  check int "actual = planned" r.Robustness.planned_cost r.Robustness.actual_cost;
  (* And both equal the closed-form cost. *)
  check int "matches Sync_cost" (Sync_cost.eval (Interval_cost.of_task_set ts) bp)
    r.Robustness.actual_cost

let test_violation_detected_and_priced () =
  let space = Switch_space.make 4 in
  let planned = Trace.of_lists space [ [ 0 ]; [ 0 ] ] in
  let actual_trace = Trace.of_lists space [ [ 0 ]; [ 0; 3 ] ] in
  let planned_ts = Task_set.single ~name:"t" ~v:2 planned in
  let actual_ts = Task_set.single ~name:"t" ~v:2 actual_trace in
  let plan = Plan.of_breakpoints planned_ts (Breakpoints.create ~m:1 ~n:2) in
  let r = Robustness.evaluate actual_ts plan in
  check int "one violation" 1 r.Robustness.violations;
  (* planned: v + |{0}| * 2 = 4; actual: step0 2+1, step1 emergency 2 +
     |{0,3}| = 2+2 -> 3 + 4 = 7. *)
  check int "planned" 4 r.Robustness.planned_cost;
  check int "actual" 7 r.Robustness.actual_cost

let qcheck_noisy_traces_cost_more =
  Tutil.prop "violations never make the run cheaper than planned"
    (QCheck2.Gen.pair
       (Tutil.gen_mt_instance ~max_m:3 ~max_n:8 ~max_width:5)
       (QCheck2.Gen.int_bound 5000))
    (fun (inst, seed) -> Tutil.show_mt_instance inst ^ Printf.sprintf " seed=%d" seed)
    (fun (inst, seed) ->
      let ts = Tutil.task_set_of_instance inst in
      let rng = Rng.create seed in
      let bp =
        Breakpoints.of_matrix
          (Mt_moves.random rng ~m:inst.Tutil.m ~n:inst.Tutil.n ~density:0.3)
      in
      let plan = Plan.of_breakpoints ts bp in
      (* Perturb every task's trace. *)
      let noisy_ts =
        Task_set.make
          (Array.map
             (fun t ->
               { t with Task_set.trace = Robustness.perturb rng t.Task_set.trace ~p:0.2 })
             (Task_set.tasks ts))
      in
      let r = Robustness.evaluate noisy_ts plan in
      (* Note: a violation's extra cost can be masked by another task's
         larger per-step max, so only the forward implication holds. *)
      r.Robustness.actual_cost >= r.Robustness.planned_cost
      && (r.Robustness.violations > 0
         || r.Robustness.actual_cost = r.Robustness.planned_cost))

let test_margin_reduces_violations () =
  let rng = Rng.create 7 in
  let space = Switch_space.make 16 in
  let trace =
    Hr_workload.Synthetic.phased rng space
      [
        Hr_workload.Synthetic.phase rng ~space ~len:20 ~active_fraction:0.3 ~density:0.5;
        Hr_workload.Synthetic.phase rng ~space ~len:20 ~active_fraction:0.3 ~density:0.5;
      ]
  in
  let ts = Task_set.single ~name:"t" trace in
  let r, _ = St_opt.solve_trace trace in
  let bp = Breakpoints.of_rows ~m:1 ~n:(Trace.length trace) [| r.St_opt.breaks |] in
  let plan = Plan.of_breakpoints ts bp in
  let noisy =
    Task_set.single ~name:"t" (Robustness.perturb (Rng.create 8) trace ~p:0.15)
  in
  let bare = Robustness.evaluate noisy plan in
  let padded = Robustness.margin (Rng.create 9) plan ~extra:8 ~ts in
  let padded_r = Robustness.evaluate noisy padded in
  Alcotest.(check bool)
    (Printf.sprintf "margin helps (%d -> %d violations)" bare.Robustness.violations
       padded_r.Robustness.violations)
    true
    (padded_r.Robustness.violations <= bare.Robustness.violations);
  Alcotest.(check bool) "bare plan is violated at all" true
    (bare.Robustness.violations > 0)

let tests =
  [
    Alcotest.test_case "perturb adds only" `Quick test_perturb_only_adds;
    Alcotest.test_case "clean run" `Quick test_no_noise_no_violations;
    Alcotest.test_case "violation priced" `Quick test_violation_detected_and_priced;
    qcheck_noisy_traces_cost_more;
    Alcotest.test_case "margin helps" `Quick test_margin_reduces_violations;
  ]
