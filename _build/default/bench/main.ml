(* The benchmark / experiment harness.

   `dune exec bench/main.exe` reproduces every table and figure of the
   paper's evaluation section (with our measured values next to the
   paper's), runs the ablation studies indexed in DESIGN.md, and
   finishes with bechamel microbenchmarks of the algorithmic kernels.

   Pass `--no-micro` to skip the microbenchmarks, `--only-micro` to run
   only them. *)

let () =
  let args = Array.to_list Sys.argv in
  let micro = not (List.mem "--no-micro" args) in
  let experiments = not (List.mem "--only-micro" args) in
  if experiments then Experiments.run_all ();
  if micro then Microbench.run ();
  print_newline ()
