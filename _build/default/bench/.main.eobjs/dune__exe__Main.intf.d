bench/main.mli:
