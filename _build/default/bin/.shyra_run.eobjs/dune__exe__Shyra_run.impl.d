bin/shyra_run.ml: Arg Cmd Cmdliner Format Hr_core Hr_shyra Hr_util List Option Printf Term Trace Trace_io
