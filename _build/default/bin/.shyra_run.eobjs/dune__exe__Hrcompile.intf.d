bin/hrcompile.mli:
