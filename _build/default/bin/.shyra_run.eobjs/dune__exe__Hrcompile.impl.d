bin/hrcompile.ml: Arg Cmd Cmdliner Format Fun Hr_core Hr_shyra List Option Printf String Term
