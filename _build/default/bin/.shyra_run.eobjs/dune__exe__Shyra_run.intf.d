bin/shyra_run.mli:
