bin/hropt.mli:
