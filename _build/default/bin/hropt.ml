(* CLI: optimize (hyper)reconfiguration plans for a workload.

   Workloads: the SHyRA counter trace (the paper's experiment) or
   synthetic multi-task phased workloads.  Optimizers: the greedy
   portfolio, hill climbing, simulated annealing, the genetic
   algorithm, and (when the instance is small enough) the exact DP. *)

open Cmdliner
open Hr_core
module Rng = Hr_util.Rng
module Shyra = Hr_shyra
module W = Hr_workload

let counter_oracle mode split =
  let run = Shyra.Counter.build ~init:0 ~bound:10 () in
  let trace = Shyra.Tracer.trace ~mode run.Shyra.Counter.program in
  let parts =
    if split = "single" then Shyra.Tasks.single_task else Shyra.Tasks.four_tasks
  in
  (Shyra.Tasks.oracle trace parts, Shyra.Tasks.split trace parts)

let synthetic_oracle seed m n correlated =
  let sizes = Array.init m (fun j -> if j = m - 1 then 24 else 8) in
  let spec = { W.Multi_gen.default_spec with W.Multi_gen.m; n; local_sizes = sizes } in
  let gen = if correlated then W.Multi_gen.correlated else W.Multi_gen.independent in
  let ts = gen (Rng.create seed) spec in
  (Interval_cost.of_task_set ts, ts)

let file_oracle path =
  let trace = Trace_io.load path in
  let ts = Task_set.single ~name:"trace" trace in
  (Interval_cost.of_task_set ts, ts)

let run workload mode split seed m n correlated method_ seed_opt show_figures
    trace_file plan_file =
  let tracer_mode =
    match mode with
    | "diff" -> Shyra.Tracer.Diff
    | "inuse" -> Shyra.Tracer.In_use
    | _ -> Shyra.Tracer.Field_diff
  in
  let oracle, ts =
    match workload with
    | "counter" -> counter_oracle tracer_mode split
    | "synthetic" -> synthetic_oracle seed m n correlated
    | "file" -> (
        match trace_file with
        | Some path -> file_oracle path
        | None -> failwith "workload 'file' needs --trace-file")
    | s -> failwith (Printf.sprintf "unknown workload %S (counter|synthetic|file)" s)
  in
  let rng = Rng.create seed_opt in
  let result_rows =
    match method_ with
    | "portfolio" ->
        List.map
          (fun e -> (e.Mt_greedy.name, e.Mt_greedy.cost, Some e.Mt_greedy.bp))
          (Mt_greedy.portfolio oracle)
    | "local" ->
        let r = Mt_local.solve oracle in
        [ ("hill-climbing", r.Mt_local.cost, Some r.Mt_local.bp) ]
    | "anneal" ->
        let r = Mt_anneal.solve ~rng oracle in
        [ ("annealing", r.Mt_anneal.cost, Some r.Mt_anneal.bp) ]
    | "ga" ->
        let r = Mt_ga.solve ~rng oracle in
        [ ("genetic-algorithm", r.Mt_ga.cost, Some r.Mt_ga.bp) ]
    | "exact" ->
        let ub = (Mt_greedy.best oracle).Mt_greedy.cost in
        let r = Mt_dp.solve ~upper_bound:ub oracle in
        [ ((if r.Mt_dp.exact then "exact-dp" else "beam-dp"), r.Mt_dp.cost, Some r.Mt_dp.bp) ]
    | "eval" -> (
        match plan_file with
        | None -> failwith "method 'eval' needs --plan-file"
        | Some path -> (
            let bp = Plan_io.load path in
            match Machine_vm.execute_breakpoints ts bp with
            | Ok vm_run ->
                [ ("saved plan (referee VM)", vm_run.Machine_vm.total_time, Some bp) ]
            | Error e -> failwith ("invalid plan: " ^ e)))
    | s ->
        failwith
          (Printf.sprintf "unknown method %S (portfolio|local|anneal|ga|exact|eval)" s)
  in
  Option.iter
    (fun path ->
      match result_rows with
      | (_, _, Some bp) :: _ when method_ <> "eval" ->
          Plan_io.save path bp;
          Printf.printf "plan written to %s\n" path
      | _ -> ())
    (if method_ = "eval" then None else plan_file);
  let disabled =
    Sync_cost.disabled_cost ~n:oracle.Interval_cost.n
      ~machine_width:(Task_set.total_local_switches ts) ()
  in
  Printf.printf "instance: m=%d n=%d, disabled-baseline cost %d\n"
    oracle.Interval_cost.m oracle.Interval_cost.n disabled;
  Hr_util.Tablefmt.print ~header:[ "method"; "cost"; "% of disabled" ]
    (List.map
       (fun (name, cost, _) ->
         [
           name;
           string_of_int cost;
           Printf.sprintf "%.1f" (100. *. float_of_int cost /. float_of_int disabled);
         ])
       result_rows);
  (if show_figures then
     match result_rows with
     | (_, _, Some bp) :: _ ->
         print_newline ();
         print_string (Hr_viz.Figures.fig2 ts bp);
         print_newline ();
         print_string (Hr_viz.Figures.fig3 ts bp)
     | _ -> ());
  0

let workload =
  Arg.(value & pos 0 string "counter" & info [] ~docv:"WORKLOAD" ~doc:"counter or synthetic.")

let mode =
  Arg.(value & opt string "field" & info [ "mode" ] ~doc:"Counter trace mode: diff, field, inuse.")

let split =
  Arg.(value & opt string "four" & info [ "split" ] ~doc:"Counter task split: single or four.")

let seed = Arg.(value & opt int 1 & info [ "workload-seed" ] ~doc:"Synthetic workload seed.")

let m = Arg.(value & opt int 4 & info [ "m" ] ~doc:"Synthetic task count.")

let n = Arg.(value & opt int 96 & info [ "n" ] ~doc:"Synthetic step count.")

let correlated =
  Arg.(value & flag & info [ "correlated" ] ~doc:"Correlate phase boundaries across tasks.")

let method_ =
  Arg.(value & opt string "portfolio" & info [ "method" ] ~doc:"portfolio, local, anneal, ga or exact.")

let seed_opt = Arg.(value & opt int 2004 & info [ "seed" ] ~doc:"Optimizer RNG seed.")

let show_figures =
  Arg.(value & flag & info [ "figures" ] ~doc:"Render Fig.2/Fig.3-style views of the best plan.")

let trace_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-file" ] ~docv:"FILE" ~doc:"Trace file for the 'file' workload.")

let plan_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-file" ] ~docv:"FILE"
        ~doc:
          "With --method eval: load and referee-evaluate this plan.  With other \
           methods: write the best plan here.")

let cmd =
  let doc = "optimize (hyper)reconfiguration plans" in
  Cmd.v (Cmd.info "hropt" ~doc)
    Term.(
      const run $ workload $ mode $ split $ seed $ m $ n $ correlated $ method_
      $ seed_opt $ show_figures $ trace_file $ plan_file)

let () = exit (Cmd.eval' cmd)
