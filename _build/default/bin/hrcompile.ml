(* CLI: compile boolean expressions to SHyRA programs.

   Example:
     dune exec bin/hrcompile.exe -- '(a ^ b) & !(c | d)' --stats
     dune exec bin/hrcompile.exe -- 'a & b' --emit out.shyra *)

open Cmdliner
module Shyra = Hr_shyra

let run source stats emit trace_out =
  match Shyra.Expr_parse.parse source with
  | Error e ->
      prerr_endline ("parse error: " ^ e);
      1
  | Ok expr ->
      let simplified = Shyra.Expr.simplify expr in
      let compiled = Shyra.Expr.compile expr in
      Printf.printf "expression: %s\n" (Shyra.Expr_parse.print expr);
      if simplified <> expr then
        Printf.printf "simplified: %s\n" (Shyra.Expr_parse.print simplified);
      Printf.printf "inputs:     %s\n"
        (String.concat ", "
           (List.map
              (fun (n, r) -> Printf.sprintf "%s->r%d" n r)
              compiled.Shyra.Expr.input_regs));
      Printf.printf "result:     r%d\n" compiled.Shyra.Expr.result;
      Printf.printf "LUT ops:    %d in %d cycles\n" compiled.Shyra.Expr.ops
        (Shyra.Program.length compiled.Shyra.Expr.program);
      if stats then begin
        let trace = Shyra.Tracer.trace compiled.Shyra.Expr.program in
        Format.printf "trace:      %a@." Hr_core.Trace_stats.pp
          (Hr_core.Trace_stats.analyze trace)
      end;
      Option.iter
        (fun path ->
          Hr_core.Trace_io.save path (Shyra.Tracer.trace compiled.Shyra.Expr.program);
          Printf.printf "trace written to %s\n" path)
        trace_out;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              List.iteri
                (fun i step ->
                  output_string oc
                    (Printf.sprintf "# cycle %d (%s)\n" i step.Shyra.Program.label);
                  output_string oc
                    (Format.asprintf "# %a\n" Shyra.Config.pp step.Shyra.Program.cfg))
                (Shyra.Program.steps compiled.Shyra.Expr.program));
          Printf.printf "configuration listing written to %s\n" path)
        emit;
      0

let source =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR" ~doc:"Boolean expression.")

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print trace statistics.")

let emit =
  Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"FILE" ~doc:"Write a configuration listing.")

let trace_out =
  Arg.(value & opt (some string) None & info [ "dump-trace" ] ~docv:"FILE" ~doc:"Write the requirement trace.")

let cmd =
  let doc = "compile boolean expressions to SHyRA programs" in
  Cmd.v (Cmd.info "hrcompile" ~doc) Term.(const run $ source $ stats $ emit $ trace_out)

let () = exit (Cmd.eval' cmd)
