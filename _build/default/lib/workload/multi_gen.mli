open Hr_core

(** Synthetic fully synchronized multi-task instances.

    Each task gets its own local switch space and a phased trace; the
    [correlated] variant aligns phase boundaries across tasks (the
    friendly case for partial hyperreconfiguration — tasks can
    hyperreconfigure in lockstep and share the max-ed cost), while
    [independent] staggers them. *)

type spec = {
  m : int;  (** number of tasks *)
  n : int;  (** steps *)
  local_sizes : int array;  (** switches per task, length m *)
  phase_len : int;  (** nominal phase length *)
  active_fraction : float;
  density : float;
}

(** [default_spec] — 4 tasks of 8/8/8/24 switches (the SHyRA split),
    120 steps, phases of 12. *)
val default_spec : spec

(** [independent rng spec] — per-task phase schedules with random
    offsets. *)
val independent : Hr_util.Rng.t -> spec -> Task_set.t

(** [correlated rng spec] — one shared phase schedule for all tasks. *)
val correlated : Hr_util.Rng.t -> spec -> Task_set.t

(** [with_priv_demand rng ts ~g_peak] wraps a task set into a
    {!Mt_priv.t}-ready demand profile: per-task integer demands that
    follow each task's requirement sizes, scaled to peak [g_peak]. *)
val priv_demands : Hr_util.Rng.t -> Task_set.t -> g_peak:int -> int array array
