open Hr_core
module Bitset = Hr_util.Bitset

let stretch trace ~factor =
  if factor < 1 then invalid_arg "Replay.stretch: factor must be >= 1";
  let n = Trace.length trace in
  Trace.make (Trace.space trace)
    (Array.init (n * factor) (fun i -> Trace.req trace (i / factor)))

let repeat trace ~times =
  if times < 1 then invalid_arg "Replay.repeat: times must be >= 1";
  let n = Trace.length trace in
  Trace.make (Trace.space trace)
    (Array.init (n * times) (fun i -> Trace.req trace (i mod n)))

let interleave a b =
  let space = Trace.space a in
  if Switch_space.size space <> Switch_space.size (Trace.space b) then
    invalid_arg "Replay.interleave: universe mismatch";
  let na = Trace.length a and nb = Trace.length b in
  let len = max na nb in
  let empty = Switch_space.empty space in
  let pick t n i = if i < n then Trace.req t i else empty in
  Trace.make space
    (Array.init (2 * len) (fun i ->
         if i mod 2 = 0 then pick a na (i / 2) else pick b nb (i / 2)))

let reverse trace =
  let n = Trace.length trace in
  Trace.make (Trace.space trace) (Array.init n (fun i -> Trace.req trace (n - 1 - i)))
