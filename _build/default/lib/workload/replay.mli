open Hr_core

(** Trace transformations — deriving workload variants from measured
    traces.

    Real evaluations rarely stop at one trace; these combinators derive
    controlled variants of a measured trace (e.g. the SHyRA counter's)
    so sweeps can vary one property at a time: temporal stretching
    (slower phase turnover), interleaving (context switching between
    two computations on one fabric), and repetition. *)

(** [stretch trace ~factor] repeats every step [factor] times —
    phases get proportionally longer while the union structure is
    unchanged.  Hyperreconfiguration amortizes better on stretched
    traces. *)
val stretch : Trace.t -> factor:int -> Trace.t

(** [repeat trace ~times] concatenates the trace with itself —
    loop-structured workloads. *)
val repeat : Trace.t -> times:int -> Trace.t

(** [interleave a b] alternates steps of [a] and [b] (same universe
    required; the shorter trace pads with empty requirements) — the
    adversarial context-switching shape: every plan must keep both
    computations' working sets available or hyperreconfigure twice per
    period. *)
val interleave : Trace.t -> Trace.t -> Trace.t

(** [reverse trace] — plans cost the same on reversed traces under the
    switch model (the objective is time-symmetric); a property the
    tests exploit. *)
val reverse : Trace.t -> Trace.t
