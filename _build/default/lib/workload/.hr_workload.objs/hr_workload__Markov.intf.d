lib/workload/markov.mli: Hr_core Hr_util Switch_space Trace
