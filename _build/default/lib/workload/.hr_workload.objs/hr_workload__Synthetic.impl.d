lib/workload/synthetic.ml: Array Fun Hr_core Hr_util List Switch_space Trace
