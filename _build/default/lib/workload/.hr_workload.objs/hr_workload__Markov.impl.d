lib/workload/markov.ml: Array Float Hr_core Hr_util List Printf Switch_space Trace
