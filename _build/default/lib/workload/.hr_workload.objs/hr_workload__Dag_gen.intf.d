lib/workload/dag_gen.mli: Dag_model Hr_core Hr_util
