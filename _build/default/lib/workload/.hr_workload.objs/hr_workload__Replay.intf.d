lib/workload/replay.mli: Hr_core Trace
