lib/workload/dag_gen.ml: Array Dag_model Fun Hr_core Hr_util List Printf
