lib/workload/multi_gen.mli: Hr_core Hr_util Task_set
