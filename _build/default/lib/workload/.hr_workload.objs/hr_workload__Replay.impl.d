lib/workload/replay.ml: Array Hr_core Hr_util Switch_space Trace
