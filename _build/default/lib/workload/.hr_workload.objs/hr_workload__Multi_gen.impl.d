lib/workload/multi_gen.ml: Array Hr_core Hr_util List Printf Switch_space Synthetic Task_set Trace
