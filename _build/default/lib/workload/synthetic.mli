open Hr_core

(** Synthetic single-task context-requirement traces.

    The paper motivates hyperreconfiguration with computations that
    "typically consist of different phases that use only small parts of
    the whole reconfiguration potential"; {!phased} generates exactly
    that structure.  The other generators provide contrasting shapes
    for the ablation benches.  All generators are deterministic given
    the {!Hr_util.Rng.t}. *)

(** One phase of a phased workload. *)
type phase = {
  len : int;  (** number of reconfiguration steps *)
  active : Hr_util.Bitset.t;  (** switches touched during the phase *)
  density : float;  (** per-step probability of each active switch *)
}

(** [phase rng ~space ~len ~active_fraction ~density] draws a random
    phase: an [active_fraction] subset of the universe, used with
    [density]. *)
val phase :
  Hr_util.Rng.t ->
  space:Switch_space.t ->
  len:int ->
  active_fraction:float ->
  density:float ->
  phase

(** [phased rng space phases] concatenates per-phase random
    requirements.  Raises on an empty phase list or non-positive
    lengths. *)
val phased : Hr_util.Rng.t -> Switch_space.t -> phase list -> Trace.t

(** [uniform rng space ~n ~density] — every step an independent random
    subset; the adversarial, phase-free shape where
    hyperreconfiguration helps least. *)
val uniform : Hr_util.Rng.t -> Switch_space.t -> n:int -> density:float -> Trace.t

(** [bursty rng space ~n ~idle_density ~burst_density ~burst_len
    ~burst_every] — a quiet background with periodic dense bursts. *)
val bursty :
  Hr_util.Rng.t ->
  Switch_space.t ->
  n:int ->
  idle_density:float ->
  burst_density:float ->
  burst_len:int ->
  burst_every:int ->
  Trace.t

(** [ramp rng space ~n] — requirements drawn from a prefix of the
    universe that grows linearly from one switch to all of them;
    exercises crossover behaviour of the planners. *)
val ramp : Hr_util.Rng.t -> Switch_space.t -> n:int -> Trace.t
