open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

type spec = {
  m : int;
  n : int;
  local_sizes : int array;
  phase_len : int;
  active_fraction : float;
  density : float;
}

let default_spec =
  {
    m = 4;
    n = 120;
    local_sizes = [| 8; 8; 8; 24 |];
    phase_len = 12;
    active_fraction = 0.4;
    density = 0.5;
  }

let validate spec =
  if spec.m <= 0 || spec.n <= 0 then invalid_arg "Multi_gen: m and n must be positive";
  if Array.length spec.local_sizes <> spec.m then
    invalid_arg "Multi_gen: local_sizes arity mismatch";
  if spec.phase_len <= 0 then invalid_arg "Multi_gen: phase_len must be positive"

(* Build one task's trace from a list of phase boundaries. *)
let task_of_boundaries rng spec j boundaries =
  let space = Switch_space.make spec.local_sizes.(j) in
  let phases =
    List.map
      (fun len ->
        Synthetic.phase rng ~space ~len ~active_fraction:spec.active_fraction
          ~density:spec.density)
      boundaries
  in
  Task_set.task ~name:(Printf.sprintf "T%d" (j + 1)) (Synthetic.phased rng space phases)

(* Cut n steps into phases of roughly phase_len. *)
let schedule rng ~n ~phase_len ~jitter =
  let rec go remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let len =
        let base = phase_len + if jitter then Rng.int_in rng (-2) 2 else 0 in
        min remaining (max 1 base)
      in
      go (remaining - len) (len :: acc)
  in
  go n []

let independent rng spec =
  validate spec;
  Task_set.make
    (Array.init spec.m (fun j ->
         let boundaries = schedule rng ~n:spec.n ~phase_len:spec.phase_len ~jitter:true in
         task_of_boundaries rng spec j boundaries))

let correlated rng spec =
  validate spec;
  let boundaries = schedule rng ~n:spec.n ~phase_len:spec.phase_len ~jitter:false in
  Task_set.make
    (Array.init spec.m (fun j -> task_of_boundaries rng spec j boundaries))

let priv_demands rng ts ~g_peak =
  if g_peak < 0 then invalid_arg "Multi_gen.priv_demands: negative peak";
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  Array.init m (fun j ->
      let trace = (Task_set.get ts j).Task_set.trace in
      let width = Switch_space.size (Trace.space trace) in
      Array.init n (fun i ->
          let used = Bitset.cardinal (Trace.req trace i) in
          let scaled = if width = 0 then 0 else used * g_peak / width in
          min g_peak (scaled + if Rng.chance rng 0.2 then 1 else 0)))
