open Hr_core
module Rng = Hr_util.Rng
module Bitset = Hr_util.Bitset

type spec = {
  layers : int;
  per_layer : int;
  num_contexts : int;
  w : int;
  n : int;
  phase_len : int;
}

let default_spec =
  { layers = 4; per_layer = 3; num_contexts = 12; w = 10; n = 100; phase_len = 10 }

let instance rng spec =
  if spec.layers < 1 || spec.per_layer < 1 then
    invalid_arg "Dag_gen.instance: need at least one layer and node";
  if spec.num_contexts < 1 || spec.n < 1 || spec.phase_len < 1 then
    invalid_arg "Dag_gen.instance: positive num_contexts/n/phase_len required";
  if spec.w < 0 then invalid_arg "Dag_gen.instance: negative w";
  let nc = spec.num_contexts in
  (* Layer 0: small random context sets; each deeper node strictly
     extends one node per parent layer, so edges are valid.  The last
     layer is completed to the full context set (the mandatory top). *)
  let nodes = ref [] and edges = ref [] in
  let id = ref 0 in
  let add name sat cost =
    nodes := { Dag_model.name; sat; cost } :: !nodes;
    incr id;
    !id - 1
  in
  let random_sat ~at_least =
    let s = Bitset.random (fun () -> Rng.float rng) ~width:nc ~density:0.25 in
    Bitset.union s at_least
  in
  let grow sat =
    (* Add 1-3 fresh contexts; cap at the full set. *)
    let missing =
      List.filter (fun c -> not (Bitset.mem sat c)) (List.init nc Fun.id)
    in
    match missing with
    | [] -> sat
    | _ ->
        let arr = Array.of_list missing in
        let k = min (Array.length arr) (1 + Rng.int rng 3) in
        let rec pick j acc =
          if j = k then acc else pick (j + 1) (Bitset.add acc (Rng.pick rng arr))
        in
        pick 0 sat
  in
  let layer0 =
    List.init spec.per_layer (fun k ->
        let sat = random_sat ~at_least:(Bitset.singleton nc (Rng.int rng nc)) in
        let cost = 1 + Bitset.cardinal sat + Rng.int rng 3 in
        add (Printf.sprintf "L0.%d" k) sat cost)
  in
  let rec build_layer l prev =
    if l >= spec.layers then prev
    else
      let is_last = l = spec.layers - 1 in
      let layer =
        List.map
          (fun parent ->
            let pnode = List.nth (List.rev !nodes) parent in
            let sat =
              if is_last then Bitset.full nc else grow pnode.Dag_model.sat
            in
            (* Strict growth is required for edge validity; when grow
               cannot extend (already full), skip the edge. *)
            let cost = pnode.Dag_model.cost + 1 + Bitset.cardinal (Bitset.diff sat pnode.Dag_model.sat) in
            let child = add (Printf.sprintf "L%d.%d" l parent) sat cost in
            if not (Bitset.equal sat pnode.Dag_model.sat) then
              edges := (parent, child) :: !edges;
            child)
          prev
      in
      build_layer (l + 1) layer
  in
  ignore (build_layer 1 layer0);
  let node_arr = Array.of_list (List.rev !nodes) in
  let model = Dag_model.make ~num_contexts:nc ~w:spec.w node_arr !edges in
  (* Phased trace: each phase draws from the context set of one random
     node, so phases are coherent and satisfiable cheaply. *)
  let trace = Array.make spec.n 0 in
  let i = ref 0 in
  while !i < spec.n do
    let node = node_arr.(Rng.int rng (Array.length node_arr)) in
    let choices = Array.of_list (Bitset.to_list node.Dag_model.sat) in
    let len = min (spec.n - !i) (max 1 (spec.phase_len + Rng.int_in rng (-2) 2)) in
    for _ = 1 to len do
      trace.(!i) <- Rng.pick rng choices;
      incr i
    done
  done;
  (model, trace)
