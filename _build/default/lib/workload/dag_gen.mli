open Hr_core

(** Random DAG-model instances for the coarse-grained benches.

    Builds layered hypercontext DAGs: context sets grow (by union) and
    costs grow monotonically along the layers, so the {!Dag_model}
    validity invariants hold by construction, and a random context-id
    trace that phases through "cheap" and "expensive" demands. *)

type spec = {
  layers : int;  (** depth of the DAG (≥ 1) *)
  per_layer : int;  (** nodes per layer (≥ 1) *)
  num_contexts : int;  (** size of the context-requirement set C *)
  w : int;  (** hyperreconfiguration cost *)
  n : int;  (** trace length *)
  phase_len : int;  (** trace phase length *)
}

val default_spec : spec

(** [instance rng spec] is a valid model plus a satisfiable trace. *)
val instance : Hr_util.Rng.t -> spec -> Dag_model.t * int array
