open Hr_core
module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

type phase = { len : int; active : Bitset.t; density : float }

let random_subset_of rng active density =
  Bitset.fold
    (fun i acc -> if Rng.chance rng density then Bitset.add acc i else acc)
    active
    (Bitset.create (Bitset.width active))

let phase rng ~space ~len ~active_fraction ~density =
  if len <= 0 then invalid_arg "Synthetic.phase: non-positive length";
  let width = Switch_space.size space in
  let active = Bitset.random (fun () -> Rng.float rng) ~width ~density:active_fraction in
  (* Guarantee a non-trivial phase: activate at least one switch. *)
  let active =
    if Bitset.is_empty active && width > 0 then Bitset.add active (Rng.int rng width)
    else active
  in
  { len; active; density }

let phased rng space phases =
  if phases = [] then invalid_arg "Synthetic.phased: no phases";
  let reqs =
    List.concat_map
      (fun p ->
        if p.len <= 0 then invalid_arg "Synthetic.phased: non-positive phase length";
        List.init p.len (fun _ -> random_subset_of rng p.active p.density))
      phases
  in
  Trace.make space (Array.of_list reqs)

let uniform rng space ~n ~density =
  if n <= 0 then invalid_arg "Synthetic.uniform: n must be positive";
  let width = Switch_space.size space in
  Trace.make space
    (Array.init n (fun _ -> Bitset.random (fun () -> Rng.float rng) ~width ~density))

let bursty rng space ~n ~idle_density ~burst_density ~burst_len ~burst_every =
  if n <= 0 then invalid_arg "Synthetic.bursty: n must be positive";
  if burst_every <= 0 || burst_len <= 0 then
    invalid_arg "Synthetic.bursty: burst shape must be positive";
  let width = Switch_space.size space in
  let req i =
    let in_burst = i mod burst_every < burst_len in
    let density = if in_burst then burst_density else idle_density in
    Bitset.random (fun () -> Rng.float rng) ~width ~density
  in
  Trace.make space (Array.init n req)

let ramp rng space ~n =
  if n <= 0 then invalid_arg "Synthetic.ramp: n must be positive";
  let width = Switch_space.size space in
  let req i =
    let limit = max 1 (width * (i + 1) / n) in
    let prefix = Bitset.of_list width (List.init limit Fun.id) in
    random_subset_of rng prefix 0.5
  in
  Trace.make space (Array.init n req)
