type task_run = { v : int; blocks : (int * int) list }

let async_task_time run =
  List.fold_left
    (fun acc (cost, len) ->
      if len < 0 || cost < 0 then invalid_arg "Cost_eval: negative block data";
      acc + run.v + (cost * len))
    0 run.blocks

let async_total ~init_global runs =
  if Array.length runs = 0 then invalid_arg "Cost_eval.async_total: no tasks";
  init_global
  + Array.fold_left (fun acc run -> max acc (async_task_time run)) 0 runs

let mt_switch_special_init ~x_loc ~x_priv = x_loc + x_priv

let mt_switch_special_v ~assigned_priv ~f_loc = assigned_priv + f_loc

let changeover_init ~w ~prev ~next = w + Hypercontext.changeover prev next

let sequence_cost ~init ~cost ops =
  List.fold_left (fun acc (h, len) -> acc + init h + (cost h * len)) 0 ops
