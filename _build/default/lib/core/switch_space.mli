(** A universe of reconfigurable units ("switches").

    In the paper's switch cost model, both context requirements and
    hypercontexts are subsets of a fixed set X = \{x_1, …, x_n\} of
    reconfigurable units.  A [Switch_space.t] fixes that set and gives
    each unit a printable name (for SHyRA, names identify the
    configuration bit: ["lut1.3"], ["mux2.b1"], …). *)

type t

(** [make ~names size] is a universe of [size] switches.  When [names]
    is omitted, switches are named ["x0"], ["x1"], ….  Raises
    [Invalid_argument] when [names] is given with a different length
    than [size] or when [size < 0]. *)
val make : ?names:string array -> int -> t

(** [size u] is the number of switches. *)
val size : t -> int

(** [name u i] is the name of switch [i]. *)
val name : t -> int -> string

(** [index_of_name u s] is the switch named [s].
    Raises [Not_found] when no switch has that name. *)
val index_of_name : t -> string -> int

(** [empty u] is the empty switch subset over [u]. *)
val empty : t -> Hr_util.Bitset.t

(** [all u] is the full switch subset over [u]. *)
val all : t -> Hr_util.Bitset.t

(** [subset u is] is the subset containing the listed switch indices. *)
val subset : t -> int list -> Hr_util.Bitset.t

(** [pp_set u] prints a switch subset using switch names. *)
val pp_set : t -> Format.formatter -> Hr_util.Bitset.t -> unit
