(** Multi-task planning under the changeover-cost variant (§4.1).

    Hyperreconfiguring task [j] into hypercontext [h] from its previous
    hypercontext [h'] costs [v_j + |h Δ h'|]; simultaneous partial
    hyperreconfigurations combine by max (task-parallel upload).  The
    per-plan cost is {!Plan.cost_changeover} on union hypercontexts.

    Because the changeover term couples consecutive blocks, the
    interval-oracle reduction does not apply and no exact polynomial
    algorithm is known even per task (cf. {!St_changeover}); this
    module searches breakpoint space with the genetic algorithm and
    certifies itself against brute force on small instances in the test
    suite. *)

type result = { cost : int; bp : Breakpoints.t; plan : Plan.t }

(** [solve ?w ?config ~rng ts] minimizes the fully synchronized
    changeover cost over breakpoint matrices (union hypercontexts).
    The per-hyperreconfiguration fixed part is each task's [v_j]; [w]
    is a global constant added once (default 0). *)
val solve :
  ?w:int ->
  ?config:Hr_evolve.Ga.config ->
  rng:Hr_util.Rng.t ->
  Task_set.t ->
  result

(** [cost_of ?w ts bp] evaluates one matrix (union hypercontexts). *)
val cost_of : ?w:int -> Task_set.t -> Breakpoints.t -> int

(** [brute ?w ts] — exhaustive optimum for tiny instances (raises
    [Invalid_argument] when [(n-1)·m > 20]). *)
val brute : ?w:int -> Task_set.t -> int * Breakpoints.t
