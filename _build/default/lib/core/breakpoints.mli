(** Hyperreconfiguration-point matrices.

    On a fully synchronized machine every candidate solution is an
    m×n boolean matrix: entry [(j, i)] says whether task [j] performs a
    partial (local) hyperreconfiguration immediately before
    reconfiguration step [i] (this is the indicator [I_{j,i}] of the
    paper's §4.2 cost formula).  Column 0 is always all-true: after
    (re)initialization every task must define a hypercontext before its
    first reconfiguration. *)

type t

(** [create ~m ~n] is the matrix with only column 0 set — the
    "hyperreconfigure once, never again" plan. *)
val create : m:int -> n:int -> t

(** [of_matrix bp] validates and copies a raw matrix: rectangular,
    non-empty, column 0 all-true.  Raises [Invalid_argument]
    otherwise. *)
val of_matrix : bool array array -> t

(** [of_rows rows] builds from per-task breakpoint index lists; index 0
    is added implicitly.  Raises on out-of-range indices. *)
val of_rows : m:int -> n:int -> int list array -> t

(** [all ~m ~n] is the hyperreconfigure-every-step plan. *)
val all : m:int -> n:int -> t

(** [periodic ~m ~n k] sets breakpoints at steps 0, k, 2k, … for every
    task.  Raises on [k <= 0]. *)
val periodic : m:int -> n:int -> int -> t

(** [m t], [n t] are the dimensions. *)
val m : t -> int

val n : t -> int

(** [is_break t j i] is [I_{j,i}]. *)
val is_break : t -> int -> int -> bool

(** [set t j i b] is a fresh matrix with entry [(j,i)] set to [b].
    Raises [Invalid_argument] when trying to clear column 0. *)
val set : t -> int -> int -> bool -> t

(** [row t j] is the row of task [j] (fresh array). *)
val row : t -> int -> bool array

(** [matrix t] is a fresh copy of the raw matrix. *)
val matrix : t -> bool array array

(** [intervals t j] is the block decomposition of task [j]'s row as a
    list of inclusive [(lo, hi)] ranges covering [0..n-1]. *)
val intervals : t -> int -> (int * int) list

(** [interval_of t j i] is the [(lo, hi)] block of task [j] containing
    step [i]. *)
val interval_of : t -> int -> int -> int * int

(** [break_count t j] is the number of partial hyperreconfigurations of
    task [j] (counting step 0). *)
val break_count : t -> int -> int

(** [break_columns t] is the sorted list of steps where at least one
    task hyperreconfigures. *)
val break_columns : t -> int list

(** [copy t] is a deep copy. *)
val copy : t -> t

(** [equal a b] compares matrices. *)
val equal : t -> t -> bool

(** [single_of_multi t] collapses the matrix to a 1×n matrix whose
    breakpoints are the union of all tasks' breakpoints (the plan the
    corresponding single-task machine would need to emulate the
    multi-task one). *)
val single_of_multi : t -> t

(** [pp] prints rows as ['#'] (break) / ['.'] (no break). *)
val pp : Format.formatter -> t -> unit
