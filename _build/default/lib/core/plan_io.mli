(** Plain-text (de)serialization of breakpoint matrices.

    Format:

    {v
    plan <m> <n>
    #..#....   (one row per task: '#' = hyperreconfiguration)
    #......#
    v}

    Used by the CLI tools to hand plans between optimizers and
    evaluators. *)

(** [to_string bp]. *)
val to_string : Breakpoints.t -> string

(** [of_string s] — raises [Failure] with a line-numbered message on
    malformed input (wrong dimensions, missing mandatory column 0,
    stray characters). *)
val of_string : string -> Breakpoints.t

(** [save path bp] / [load path]. *)
val save : string -> Breakpoints.t -> unit

val load : string -> Breakpoints.t
