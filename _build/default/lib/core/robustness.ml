module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

type report = { violations : int; planned_cost : int; actual_cost : int }

let perturb rng trace ~p =
  if p < 0. || p > 1. then invalid_arg "Robustness.perturb: p out of [0,1]";
  let space = Trace.space trace in
  let width = Switch_space.size space in
  let reqs =
    Array.map
      (fun req ->
        let extra = Bitset.random (fun () -> Rng.float rng) ~width ~density:p in
        Bitset.union req extra)
      (Trace.reqs trace)
  in
  Trace.make space reqs

let evaluate actual plan =
  let m = Task_set.num_tasks actual and n = Task_set.steps actual in
  if Plan.num_tasks plan <> m || Plan.steps plan <> n then
    invalid_arg "Robustness.evaluate: plan/instance dimension mismatch";
  let v = Array.init m (fun j -> (Task_set.get actual j).Task_set.v) in
  (* Walk the plan per task, tracking the (possibly emergency-enlarged)
     hypercontext in force. *)
  let violations = ref 0 in
  let emergency_at = Array.make n 0 in
  (* per-step max emergency v *)
  let sizes = Array.make_matrix m n 0 in
  for j = 0 to m - 1 do
    let trace = (Task_set.get actual j).Task_set.trace in
    let current = ref None in
    let segs = ref (Plan.segments plan j) in
    for i = 0 to n - 1 do
      (match !segs with
      | seg :: rest when seg.Plan.lo = i ->
          current := Some seg.Plan.hc;
          segs := rest
      | _ -> ());
      let hc = Option.get !current in
      let req = Trace.req trace i in
      let hc =
        if Hypercontext.satisfies hc req then hc
        else begin
          incr violations;
          emergency_at.(i) <- max emergency_at.(i) v.(j);
          Bitset.union hc req
        end
      in
      current := Some hc;
      sizes.(j).(i) <- Hypercontext.cost hc
    done
  done;
  (* Planned cost: the §4.2 evaluation of the original plan's
     hypercontexts on the actual timeline, as if violations were free
     (the optimistic lower line in the benches). *)
  let planned_cost =
    let data = Array.init m (fun j -> Plan.segments plan j) in
    let total = ref 0 in
    for i = 0 to n - 1 do
      let hyper = ref 0 and reconf = ref 0 in
      for j = 0 to m - 1 do
        List.iter
          (fun seg ->
            if seg.Plan.lo = i then hyper := max !hyper v.(j);
            if seg.Plan.lo <= i && i <= seg.Plan.hi then
              reconf := max !reconf (Hypercontext.cost seg.Plan.hc))
          data.(j)
      done;
      total := !total + !hyper + !reconf
    done;
    !total
  in
  let actual_cost =
    let total = ref 0 in
    let bp = Plan.breakpoints plan in
    for i = 0 to n - 1 do
      let hyper = ref emergency_at.(i) in
      let reconf = ref 0 in
      for j = 0 to m - 1 do
        if Breakpoints.is_break bp j i then hyper := max !hyper v.(j);
        reconf := max !reconf sizes.(j).(i)
      done;
      total := !total + !hyper + !reconf
    done;
    !total
  in
  { violations = !violations; planned_cost; actual_cost }

let margin rng plan ~extra ~ts =
  if extra < 0 then invalid_arg "Robustness.margin: negative margin";
  let m = Plan.num_tasks plan in
  let per_task =
    Array.init m (fun j ->
        let width =
          Switch_space.size (Trace.space (Task_set.get ts j).Task_set.trace)
        in
        List.map
          (fun seg ->
            let hc = ref seg.Plan.hc in
            let missing =
              List.filter (fun x -> not (Bitset.mem !hc x)) (List.init width Fun.id)
            in
            let arr = Array.of_list missing in
            let take = min extra (Array.length arr) in
            Rng.shuffle rng arr;
            for k = 0 to take - 1 do
              hc := Bitset.add !hc arr.(k)
            done;
            { seg with Plan.hc = !hc })
          (Plan.segments plan j))
  in
  Plan.make per_task
