(** Heterogeneous switch costs.

    The plain switch model prices every switch at one unit
    (cost(h) = |h|).  Real fabrics are heterogeneous — a LUT truth-table
    bit and a wide routing multiplexer bit need not cost the same to
    (re)load — so this variant prices hypercontexts as
    cost(h) = Σ_{x ∈ h} weight(x) with positive integer weights.
    Weighted costs stay monotone in ⊆, so block unions remain optimal
    hypercontexts and every breakpoint-space optimizer works unchanged
    through the {!Interval_cost} oracle this module builds. *)

(** [oracle ts ~weights] — the fully synchronized multi-task oracle
    with per-task weight vectors ([weights.(j).(x)] prices switch [x]
    of task [j]'s local space); [v_j] is taken as the task's total
    local weight (the weighted analogue of the paper's [v_j = l_j]).
    Raises [Invalid_argument] on arity mismatches or non-positive
    weights. *)
val oracle : Task_set.t -> weights:int array array -> Interval_cost.t

(** [single ~v trace ~weights] — single-task variant with an explicit
    hyperreconfiguration cost. *)
val single : v:int -> Trace.t -> weights:int array -> Interval_cost.t

(** [block_weight trace ~weights lo hi] — the weighted size of the
    union of steps [lo..hi] (what the oracle charges per step). *)
val block_weight : Trace.t -> weights:int array -> int -> int -> int
