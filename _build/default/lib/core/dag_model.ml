module Bitset = Hr_util.Bitset

type node = { name : string; sat : Bitset.t; cost : int }

type t = {
  num_contexts : int;
  w : int;
  nodes : node array;
  edges : (int * int) list;
  preds : int list array;  (* predecessors per node, from the edge list *)
  by_cost : int array;  (* node ids sorted by ascending cost *)
}

let check_acyclic n edges =
  let adj = Array.make n [] in
  List.iter (fun (a, b) -> adj.(a) <- b :: adj.(a)) edges;
  let state = Array.make n 0 in
  (* 0 = unseen, 1 = on stack, 2 = done *)
  let rec visit v =
    match state.(v) with
    | 1 -> invalid_arg "Dag_model.make: precedence relation has a cycle"
    | 2 -> ()
    | _ ->
        state.(v) <- 1;
        List.iter visit adj.(v);
        state.(v) <- 2
  in
  for v = 0 to n - 1 do
    visit v
  done

let make ~num_contexts ~w nodes edges =
  if num_contexts < 0 then invalid_arg "Dag_model.make: negative context count";
  if w < 0 then invalid_arg "Dag_model.make: negative w";
  if Array.length nodes = 0 then invalid_arg "Dag_model.make: no hypercontexts";
  Array.iteri
    (fun i nd ->
      if Bitset.width nd.sat <> num_contexts then
        invalid_arg (Printf.sprintf "Dag_model.make: node %d sat width mismatch" i);
      if nd.cost <= 0 then
        invalid_arg (Printf.sprintf "Dag_model.make: node %d must have cost > 0" i))
    nodes;
  let n = Array.length nodes in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Dag_model.make: edge endpoint out of range";
      let sa = nodes.(a).sat and sb = nodes.(b).sat in
      if not (Bitset.subset sa sb && not (Bitset.equal sa sb)) then
        invalid_arg
          (Printf.sprintf "Dag_model.make: edge (%d,%d) violates h1(C) ⊂ h2(C)" a b);
      if nodes.(a).cost > nodes.(b).cost then
        invalid_arg
          (Printf.sprintf "Dag_model.make: edge (%d,%d) violates cost monotonicity" a b))
    edges;
  check_acyclic n edges;
  let top_exists =
    Array.exists (fun nd -> Bitset.cardinal nd.sat = num_contexts) nodes
  in
  if not top_exists then
    invalid_arg "Dag_model.make: no hypercontext satisfies every context requirement";
  let preds = Array.make n [] in
  List.iter (fun (a, b) -> preds.(b) <- a :: preds.(b)) edges;
  let by_cost = Array.init n Fun.id in
  Array.sort (fun a b -> compare nodes.(a).cost nodes.(b).cost) by_cost;
  { num_contexts; w; nodes = Array.copy nodes; edges; preds; by_cost }

let num_contexts t = t.num_contexts
let w t = t.w
let num_nodes t = Array.length t.nodes
let node t i = t.nodes.(i)
let edges t = t.edges

let satisfies t h c = Bitset.mem t.nodes.(h).sat c

let minimal_satisfying t c =
  let sat_ids =
    List.filter (fun h -> satisfies t h c) (List.init (num_nodes t) Fun.id)
  in
  (* h is minimal iff no predecessor of h (transitively) also satisfies c.
     Since sat sets grow along edges, it suffices to check direct
     predecessors transitively via a reachability walk. *)
  let rec pred_satisfies h =
    List.exists (fun p -> satisfies t p c || pred_satisfies p) t.preds.(h)
  in
  List.filter (fun h -> not (pred_satisfies h)) sat_ids

let cheapest_for t ids =
  let need = List.fold_left (fun acc c -> Bitset.add acc c) (Bitset.create t.num_contexts) ids in
  let rec go k =
    if k >= Array.length t.by_cost then None
    else
      let h = t.by_cost.(k) in
      if Bitset.subset need t.nodes.(h).sat then Some h else go (k + 1)
  in
  go 0

let block_cost_table ?(allowed = fun _ -> true) t seq =
  let n = Array.length seq in
  Array.iteri
    (fun i c ->
      if c < 0 || c >= t.num_contexts then
        invalid_arg (Printf.sprintf "Dag_model: context id out of range at step %d" i))
    seq;
  Array.init n (fun lo ->
      let alive = Array.init (num_nodes t) allowed in
      let row = Array.make (n - lo) 0 in
      let restrict hi =
        for h = 0 to num_nodes t - 1 do
          if alive.(h) && not (satisfies t h seq.(hi)) then alive.(h) <- false
        done
      in
      let cheapest_alive () =
        let rec go k =
          if k >= Array.length t.by_cost then
            invalid_arg
              "Dag_model: no (allowed) hypercontext satisfies a block (missing top?)"
          else if alive.(t.by_cost.(k)) then t.by_cost.(k)
          else go (k + 1)
        in
        go 0
      in
      for hi = lo to n - 1 do
        restrict hi;
        row.(hi - lo) <- cheapest_alive ()
      done;
      row)

let oracle ~v models seqs =
  let m = Array.length models in
  if Array.length seqs <> m || Array.length v <> m then
    invalid_arg "Dag_model.oracle: arity mismatch";
  if m = 0 then invalid_arg "Dag_model.oracle: no tasks";
  let n = Array.length seqs.(0) in
  Array.iter
    (fun s -> if Array.length s <> n then invalid_arg "Dag_model.oracle: ragged traces")
    seqs;
  let tables = Array.init m (fun j -> block_cost_table models.(j) seqs.(j)) in
  let step_cost j lo hi = models.(j).nodes.(tables.(j).(lo).(hi - lo)).cost in
  Interval_cost.make ~m ~n ~v ~step_cost

let chain ~num_contexts ~w ~costs ~sats =
  if Array.length costs <> Array.length sats then
    invalid_arg "Dag_model.chain: arity mismatch";
  let nodes =
    Array.init (Array.length costs) (fun i ->
        { name = Printf.sprintf "h%d" i; sat = sats.(i); cost = costs.(i) })
  in
  let edges = List.init (Array.length costs - 1) (fun i -> (i, i + 1)) in
  make ~num_contexts ~w nodes edges
