let to_string bp =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "plan %d %d\n" (Breakpoints.m bp) (Breakpoints.n bp));
  for j = 0 to Breakpoints.m bp - 1 do
    for i = 0 to Breakpoints.n bp - 1 do
      Buffer.add_char buf (if Breakpoints.is_break bp j i then '#' else '.')
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let of_string s =
  let fail no msg = failwith (Printf.sprintf "Plan_io: line %d: %s" no msg) in
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | (no, header) :: rows -> (
      match String.split_on_char ' ' header with
      | [ "plan"; m_tok; n_tok ] -> (
          match (int_of_string_opt m_tok, int_of_string_opt n_tok) with
          | Some m, Some n when m > 0 && n > 0 ->
              if List.length rows <> m then
                fail no (Printf.sprintf "expected %d rows, got %d" m (List.length rows));
              let parse_row (no, line) =
                if String.length line <> n then
                  fail no (Printf.sprintf "row has %d cells, expected %d"
                             (String.length line) n);
                Array.init n (fun i ->
                    match line.[i] with
                    | '#' -> true
                    | '.' -> false
                    | c -> fail no (Printf.sprintf "stray character %C" c))
              in
              let matrix = Array.of_list (List.map parse_row rows) in
              (try Breakpoints.of_matrix matrix
               with Invalid_argument msg -> fail no msg)
          | _ -> fail no "bad dimensions in header")
      | _ -> fail no "expected 'plan <m> <n>'")
  | [] -> failwith "Plan_io: empty input"

let save path bp =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string bp))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
