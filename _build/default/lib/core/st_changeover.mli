(** Single-task planning under the changeover-cost variant.

    The §4.1 model variant charges a hyperreconfiguration
    [w + |h Δ h′|] — a fixed part plus the symmetric difference to the
    predecessor hypercontext, for machines that load only difference
    information.  Total cost of a plan with blocks B₁…B_r and
    hypercontexts h₁…h_r (h₀ given, default ∅):

    {v Σ_k ( w + |h_k Δ h_{k-1}| + |h_k|·|B_k| ) v}

    Subtlety: unlike the plain switch model, the minimal (union)
    hypercontext of a block is {e not} always optimal — carrying a
    switch through a short block in which it is unused can be cheaper
    than dropping and re-adding it (a drop+re-add costs 2, carrying
    costs |B_k|).  The exact optimum over arbitrary hypercontexts is
    not known to be polynomial; this module provides:

    - {!solve_union}: the optimal plan among union-hypercontext plans,
      by an O(n³) dynamic program over (last block, previous block);
    - {!refine}: a local search that adds/removes individual switches
      to arbitrary blocks, which strictly improves on {!solve_union}
      on instances like the one above (verified in the tests). *)

type result = {
  cost : int;
  breaks : int list;  (** block starts, head = 0 *)
  hcs : Hr_util.Bitset.t list;  (** hypercontext per block *)
}

(** [solve_union ?w ?initial trace] — optimal among plans whose
    hypercontexts are block unions.  [w] defaults to the universe
    size; [initial] is h₀ (default: empty). *)
val solve_union : ?w:int -> ?initial:Hr_util.Bitset.t -> Trace.t -> result

(** [refine ?w ?initial trace plan] — hill-climb over single-switch
    additions/removals on the blocks of [plan] until a local optimum.
    The result is always valid and never costlier than [plan]. *)
val refine : ?w:int -> ?initial:Hr_util.Bitset.t -> Trace.t -> result -> result

(** [cost_of ?w ?initial trace ~breaks ~hcs] evaluates an arbitrary
    changeover plan; raises [Invalid_argument] when a block's
    hypercontext misses a requirement. *)
val cost_of :
  ?w:int ->
  ?initial:Hr_util.Bitset.t ->
  Trace.t ->
  breaks:int list ->
  hcs:Hr_util.Bitset.t list ->
  int
