(** Direct transcriptions of the §4 multi-task cost formulas.

    These functions evaluate the paper's formulas on explicitly given
    operation sequences.  They complement {!Sync_cost} (which evaluates
    breakpoint matrices through the interval oracle): the test suite
    checks that both agree on union plans, and the asynchronous
    formulas here are what the non-synchronized machine models use. *)

(** One task's activity between two global hyperreconfigurations: a
    sequence of local hyperreconfigurations, each followed by a run of
    ordinary reconfigurations.  [blocks] lists, in order, pairs
    [(reconf_cost, len)]: the per-step ordinary reconfiguration cost
    cost(h^loc, h^priv) in force after that local hyperreconfiguration,
    and the number [|S_{j,i}|] of reconfiguration steps performed in
    it.  [v] is the task's local hyperreconfiguration cost
    init(h_j, f^loc_j). *)
type task_run = { v : int; blocks : (int * int) list }

(** [async_total ~init_global runs] is the General Multi Task model
    cost (§4.1, model 1):

    {v init(h) + max_j Σ_i (v_j + cost_{i,j} · |S_{j,i}|) v}

    Under the asynchronous (non-synchronized) machine the tasks overlap
    freely, so the machine-level cost is the maximum over tasks.
    The MT-DAG (model 2) and MT-Switch (model 3) asynchronous costs are
    the same formula with their specific [v] and per-step costs, so
    this single evaluator covers all three. *)
val async_total : init_global:int -> task_run array -> int

(** [async_task_time run] is one task's own (hyper)reconfiguration time
    Σ_i (v + cost_i · len_i) — the quantity maximized above. *)
val async_task_time : task_run -> int

(** [mt_switch_special_init ~x_loc ~x_priv] is the paper's "typical
    special case" global init cost [w = |X| + |X^priv|] (§4.1, model
    3, where X is the set of local and X^priv of private global
    switches). *)
val mt_switch_special_init : x_loc:int -> x_priv:int -> int

(** [mt_switch_special_v ~assigned_priv ~f_loc] is the special-case
    local hyperreconfiguration cost [v_j = |h_j| + |f^loc_j|]. *)
val mt_switch_special_v : assigned_priv:int -> f_loc:int -> int

(** [changeover_init ~w ~prev ~next] is the model variant's
    hyperreconfiguration cost [w + |prev Δ next|] (§4.1). *)
val changeover_init : w:int -> prev:Hypercontext.t -> next:Hypercontext.t -> int

(** [sequence_cost ~init ~cost ops] evaluates the single-task general
    model of §2 on a run [h_1 S_1 … h_r S_r] given as
    [(h, |S|)] pairs: Σ (init(h_i) + cost(h_i)·|S_i|). *)
val sequence_cost : init:('h -> int) -> cost:('h -> int) -> ('h * int) list -> int
