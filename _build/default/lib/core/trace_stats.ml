module Bitset = Hr_util.Bitset

type t = {
  n : int;
  universe : int;
  mean_req : float;
  max_req : int;
  total_union : int;
  mean_jaccard : float;
  phase_count : int;
}

let jaccard a b =
  let u = Bitset.cardinal (Bitset.union a b) in
  if u = 0 then 1.0
  else float_of_int (Bitset.cardinal (Bitset.inter a b)) /. float_of_int u

let working_set trace ~window =
  if window <= 0 then invalid_arg "Trace_stats.working_set: window must be positive";
  let n = Trace.length trace in
  Array.init n (fun i -> Bitset.cardinal (Trace.range_union trace i (min (n - 1) (i + window - 1))))

let phases trace =
  let n = Trace.length trace in
  if n = 0 then []
  else begin
    let blocks = ref [] in
    let lo = ref 0 in
    let acc = ref (Bitset.copy (Trace.req trace 0)) in
    let req_sum = ref (Bitset.cardinal (Trace.req trace 0)) in
    for i = 1 to n - 1 do
      let r = Trace.req trace i in
      let grown = Bitset.union !acc r in
      let len = i - !lo in
      let mean_req = float_of_int !req_sum /. float_of_int len in
      (* A step opens a new phase when it would blow the block union up
         past twice the block's mean requirement size. *)
      if float_of_int (Bitset.cardinal grown) > 2.0 *. Float.max 1.0 mean_req then begin
        blocks := (!lo, i - 1) :: !blocks;
        lo := i;
        acc := Bitset.copy r;
        req_sum := Bitset.cardinal r
      end
      else begin
        acc := grown;
        req_sum := !req_sum + Bitset.cardinal r
      end
    done;
    List.rev ((!lo, n - 1) :: !blocks)
  end

let analyze trace =
  let n = Trace.length trace in
  if n = 0 then invalid_arg "Trace_stats.analyze: empty trace";
  let sizes = Trace.sizes trace in
  let jaccards =
    Array.init (max 0 (n - 1)) (fun i ->
        jaccard (Trace.req trace i) (Trace.req trace (i + 1)))
  in
  {
    n;
    universe = Switch_space.size (Trace.space trace);
    mean_req =
      float_of_int (Array.fold_left ( + ) 0 sizes) /. float_of_int n;
    max_req = Array.fold_left max 0 sizes;
    total_union = Bitset.cardinal (Trace.total_union trace);
    mean_jaccard =
      (if n <= 1 then 1.0
       else Array.fold_left ( +. ) 0. jaccards /. float_of_int (n - 1));
    phase_count = List.length (phases trace);
  }

let pp ppf t =
  Format.fprintf ppf
    "n=%d universe=%d mean|req|=%.1f max=%d union=%d jaccard=%.2f phases=%d" t.n
    t.universe t.mean_req t.max_req t.total_union t.mean_jaccard t.phase_count
