module Bitset = Hr_util.Bitset

type unit_mask = { name : string; mask : Bitset.t }

type candidate = { grouping : string list list; cost : int; tasks : int }

let set_partitions xs =
  if List.length xs > 8 then
    invalid_arg "Split_search.set_partitions: too many units (Bell-number blowup)";
  (* Insert each element either into an existing block or as a new
     block. *)
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        List.concat_map
          (fun partition ->
            let with_new = [ x ] :: partition in
            let into_existing =
              List.mapi
                (fun k _ ->
                  List.mapi
                    (fun k' block -> if k = k' then x :: block else block)
                    partition)
                partition
            in
            with_new :: into_existing)
          (go rest)
  in
  go xs

let default_optimize oracle =
  let start = (Mt_greedy.best oracle).Mt_greedy.bp in
  (Mt_local.solve ~init:start oracle).Mt_local.cost

let search ?(optimize = default_optimize) trace units =
  let unit_list = Array.to_list units in
  let candidates =
    List.map
      (fun blocks ->
        let parts =
          Array.of_list
            (List.mapi
               (fun k block ->
                 let mask =
                   List.fold_left
                     (fun acc u -> Bitset.union acc u.mask)
                     (Bitset.create (Switch_space.size (Trace.space trace)))
                     block
                 in
                 {
                   Task_split.name =
                     (match block with
                     | [ u ] -> u.name
                     | _ -> Printf.sprintf "group%d" k);
                   mask;
                 })
               blocks)
        in
        let oracle = Task_split.oracle trace parts in
        {
          grouping = List.map (List.map (fun u -> u.name)) blocks;
          cost = optimize oracle;
          tasks = List.length blocks;
        })
      (set_partitions unit_list)
  in
  List.sort (fun a b -> compare a.cost b.cost) candidates
