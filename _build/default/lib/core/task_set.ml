type task = { name : string; trace : Trace.t; v : int }

type t = { tasks : task array; n : int }

let default_v trace = Switch_space.size (Trace.space trace)

let task ~name ?v trace =
  let v = match v with Some v -> v | None -> default_v trace in
  { name; trace; v }

let make tasks =
  if Array.length tasks = 0 then invalid_arg "Task_set.make: no tasks";
  let n = Trace.length tasks.(0).trace in
  Array.iter
    (fun t ->
      if Trace.length t.trace <> n then
        invalid_arg
          (Printf.sprintf
             "Task_set.make: task %s has %d steps, expected %d (fully \
              synchronized machine)"
             t.name (Trace.length t.trace) n);
      if t.v < 0 then invalid_arg "Task_set.make: negative v")
    tasks;
  { tasks = Array.copy tasks; n }

let num_tasks t = Array.length t.tasks
let steps t = t.n

let get t j =
  if j < 0 || j >= num_tasks t then invalid_arg "Task_set.get: task out of range";
  t.tasks.(j)

let tasks t = Array.copy t.tasks

let total_local_switches t =
  Array.fold_left
    (fun acc tk -> acc + Switch_space.size (Trace.space tk.trace))
    0 t.tasks

let single ~name ?v trace = make [| task ~name ?v trace |]
