type task = {
  name : string;
  local : Dag_model.t;
  local_seq : int array;
  priv_seq : int array;
}

let check_tasks tasks =
  if Array.length tasks = 0 then invalid_arg "Mt_dag_priv: no tasks";
  let n = Array.length tasks.(0).local_seq in
  Array.iter
    (fun t ->
      if Array.length t.local_seq <> n || Array.length t.priv_seq <> n then
        invalid_arg
          (Printf.sprintf "Mt_dag_priv: task %s has ragged traces" t.name))
    tasks;
  n

let oracle ~v ~priv ?(allowed = fun _ _ -> true) tasks =
  let m = Array.length tasks in
  let n = check_tasks tasks in
  if Array.length v <> m then invalid_arg "Mt_dag_priv.oracle: |v| <> m";
  let local_tables =
    Array.map (fun t -> Dag_model.block_cost_table t.local t.local_seq) tasks
  in
  let priv_tables =
    Array.mapi
      (fun j t -> Dag_model.block_cost_table ~allowed:(allowed j) priv t.priv_seq)
      tasks
  in
  let step_cost j lo hi =
    let local_node = local_tables.(j).(lo).(hi - lo) in
    let priv_node = priv_tables.(j).(lo).(hi - lo) in
    (Dag_model.node tasks.(j).local local_node).Dag_model.cost
    + (Dag_model.node priv priv_node).Dag_model.cost
  in
  Interval_cost.make ~m ~n ~v ~step_cost

let local_only ~v tasks =
  let m = Array.length tasks in
  let n = check_tasks tasks in
  if Array.length v <> m then invalid_arg "Mt_dag_priv.local_only: |v| <> m";
  let tables =
    Array.map (fun t -> Dag_model.block_cost_table t.local t.local_seq) tasks
  in
  let step_cost j lo hi =
    (Dag_model.node tasks.(j).local tables.(j).(lo).(hi - lo)).Dag_model.cost
  in
  Interval_cost.make ~m ~n ~v ~step_cost
