module Rng = Hr_util.Rng

type matrix = bool array array

let copy g = Array.map Array.copy g

let dims g = (Array.length g, Array.length g.(0))

let random rng ~m ~n ~density =
  Array.init m (fun _ -> Array.init n (fun i -> i = 0 || Rng.chance rng density))

let flip rng g =
  let m, n = dims g in
  let g = copy g in
  if n > 1 then begin
    let j = Rng.int rng m and i = Rng.int_in rng 1 (n - 1) in
    g.(j).(i) <- not g.(j).(i)
  end;
  g

let shift rng g =
  let m, n = dims g in
  let g = copy g in
  if n > 1 then begin
    let j = Rng.int rng m in
    let set = ref [] in
    for i = 1 to n - 1 do
      if g.(j).(i) then set := i :: !set
    done;
    match !set with
    | [] -> ()
    | is ->
        let i = Rng.pick rng (Array.of_list is) in
        let dir = if Rng.bool rng then 1 else -1 in
        let i' = i + dir in
        if i' >= 1 && i' < n && not g.(j).(i') then begin
          g.(j).(i) <- false;
          g.(j).(i') <- true
        end
  end;
  g

let align rng g =
  let m, n = dims g in
  let g = copy g in
  if n > 1 then begin
    let i = Rng.int_in rng 1 (n - 1) in
    let value =
      (* Prefer aligning to set when the column is partially set. *)
      let count = ref 0 in
      for j = 0 to m - 1 do
        if g.(j).(i) then incr count
      done;
      if !count = 0 then Rng.bool rng else Rng.chance rng 0.7
    in
    for j = 0 to m - 1 do
      g.(j).(i) <- value
    done
  end;
  g

let mutate rng g =
  let rec go g =
    let g =
      match Rng.int rng 4 with
      | 0 | 1 -> flip rng g
      | 2 -> shift rng g
      | _ -> align rng g
    in
    if Rng.chance rng 0.4 then go g else g
  in
  go g

let crossover rng a b =
  let m, n = dims a in
  if Rng.bool rng then
    (* Row selection: each task's row comes wholesale from one parent. *)
    Array.init m (fun j -> Array.copy (if Rng.bool rng then a.(j) else b.(j)))
  else begin
    (* Column cut: prefix from one parent, suffix from the other. *)
    let cut = if n = 1 then 0 else Rng.int_in rng 1 (n - 1) in
    Array.init m (fun j ->
        Array.init n (fun i -> if i < cut then a.(j).(i) else b.(j).(i)))
  end

let neighbors g =
  let m, n = dims g in
  Seq.concat_map
    (fun j ->
      Seq.map
        (fun i ->
          let g' = copy g in
          g'.(j).(i) <- not g'.(j).(i);
          g')
        (Seq.init (n - 1) (fun k -> k + 1)))
    (Seq.init m Fun.id)
