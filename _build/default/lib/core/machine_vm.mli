(** A referee virtual machine for fully synchronized plans.

    Executes a plan step by step against the instance, the way the
    hardware would: at every machine step each task first performs its
    partial hyperreconfiguration (when the plan says so), loading [v_j]
    units of hyperreconfiguration data, then performs its ordinary
    reconfiguration, loading one unit per switch of its current
    hypercontext; uploads across tasks overlap (task-parallel) or
    serialize (task-sequential) per the §4 upload modes, and the
    machine step lasts as long as its slowest participant.

    The VM is deliberately written as a direct simulation — no shared
    code with {!Sync_cost} or {!Plan} — so the test suite can use it as
    an independent referee: for every plan, VM time must equal the
    closed-form §4.2 cost.  It also enforces validity dynamically,
    refusing to execute a step whose requirement is not covered by the
    hypercontext in force (the "reconfiguration into a new context can
    only be realized when the machine ... satisfies the corresponding
    context requirement" rule of §2). *)

type event = {
  step : int;
  hyper_load : int;  (** duration of the step's hyperreconfiguration phase *)
  reconf_load : int;  (** duration of the step's reconfiguration phase *)
}

type run = {
  total_time : int;
  events : event list;  (** one per machine step, in order *)
  hyper_ops : int;  (** partial hyperreconfigurations executed *)
}

(** [execute ?params ts plan] runs the plan.  Returns [Error msg]
    (naming task and step) when a requirement escapes its
    hypercontext; never raises on well-formed inputs. *)
val execute : ?params:Sync_cost.params -> Task_set.t -> Plan.t -> (run, string) result

(** [execute_breakpoints ?params ts bp] materializes union
    hypercontexts first. *)
val execute_breakpoints :
  ?params:Sync_cost.params -> Task_set.t -> Breakpoints.t -> (run, string) result
