module Bitset = Hr_util.Bitset

(* sizes.(lo).(hi - lo) = |U(lo,hi)| *)
type t = { trace : Trace.t; sizes : int array array }

let make trace =
  let n = Trace.length trace in
  let sizes =
    Array.init n (fun lo ->
        let row = Array.make (n - lo) 0 in
        let acc = Bitset.copy (Trace.req trace lo) in
        row.(0) <- Bitset.cardinal acc;
        for hi = lo + 1 to n - 1 do
          ignore (Bitset.union_into ~into:acc (Trace.req trace hi));
          row.(hi - lo) <- Bitset.cardinal acc
        done;
        row)
  in
  { trace; sizes }

let length t = Trace.length t.trace

let size t lo hi =
  if lo < 0 || hi >= length t || lo > hi then
    invalid_arg (Printf.sprintf "Range_union.size: bad range [%d,%d]" lo hi);
  t.sizes.(lo).(hi - lo)

let union t lo hi = Trace.range_union t.trace lo hi

let trace t = t.trace
