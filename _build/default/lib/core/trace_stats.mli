(** Descriptive statistics of context-requirement traces.

    Used by the experiment harness to characterize workloads (the
    "phases that use only small parts of the reconfiguration potential"
    the paper's introduction appeals to) and by users to predict
    whether hyperreconfiguration will pay off before running an
    optimizer. *)

type t = {
  n : int;
  universe : int;  (** switch-universe size *)
  mean_req : float;  (** average requirement cardinality *)
  max_req : int;
  total_union : int;  (** switches ever required *)
  mean_jaccard : float;
      (** mean Jaccard similarity of consecutive requirements — close
          to 1 for loop-structured traces, close to 0 for erratic
          ones *)
  phase_count : int;  (** segments found by {!phases} *)
}

(** [analyze trace] computes the summary (n ≥ 1 required). *)
val analyze : Trace.t -> t

(** [working_set trace ~window] is, per step, |U(i, min(i+window-1,
    n-1))| — the sliding working-set curve.  Small plateaus signal
    phases. *)
val working_set : Trace.t -> window:int -> int array

(** [phases trace] greedily segments the trace at steps whose
    requirement would more than double the running block union's size
    relative to the block's mean requirement — a cheap phase-boundary
    detector (exact optimization is what {!St_opt} is for; this is
    descriptive).  Returns inclusive [(lo, hi)] blocks covering the
    trace. *)
val phases : Trace.t -> (int * int) list

(** [jaccard a b] is |a∩b| / |a∪b| (1.0 when both empty). *)
val jaccard : Hr_util.Bitset.t -> Hr_util.Bitset.t -> float

(** [pp] prints a one-line summary. *)
val pp : Format.formatter -> t -> unit
