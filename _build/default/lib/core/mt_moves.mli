(** Search moves on raw breakpoint matrices.

    The stochastic optimizers ({!Mt_ga}, {!Mt_anneal}, {!Mt_local})
    share this kit of genome operators.  All functions treat matrices
    as immutable (they return fresh arrays) and preserve the invariant
    that column 0 stays all-true.  The [align] move exists because the
    task-parallel cost combines simultaneous hyperreconfigurations by
    [max]: aligning breakpoints across tasks is frequently free and the
    optimizers must be able to discover that (cf. the paper's Fig. 3,
    where tasks hyperreconfigure in lockstep groups). *)

type matrix = bool array array

(** [random rng ~m ~n ~density] sets each non-mandatory entry with
    probability [density]. *)
val random : Hr_util.Rng.t -> m:int -> n:int -> density:float -> matrix

(** [flip rng g] toggles one random non-column-0 entry. *)
val flip : Hr_util.Rng.t -> matrix -> matrix

(** [shift rng g] moves one random breakpoint one step left or right
    (no-op when the target cell is occupied or out of range). *)
val shift : Hr_util.Rng.t -> matrix -> matrix

(** [align rng g] picks a random set column and copies its breakpoint
    pattern to every task (making the column all-true), or clears a
    random column (except column 0). *)
val align : Hr_util.Rng.t -> matrix -> matrix

(** [mutate rng g] applies a geometric number of random moves drawn
    from {!flip} / {!shift} / {!align}. *)
val mutate : Hr_util.Rng.t -> matrix -> matrix

(** [crossover rng a b] mixes two parents: per-task row selection or a
    single column-cut splice, chosen at random — both preserve row
    structure, which is what the fitness landscape rewards. *)
val crossover : Hr_util.Rng.t -> matrix -> matrix -> matrix

(** [neighbors g] enumerates the deterministic single-bit-flip
    neighborhood (used by the hill climber). *)
val neighbors : matrix -> matrix Seq.t

(** [copy g] is a deep copy. *)
val copy : matrix -> matrix
