type task = { name : string; local_trace : Trace.t; priv_demand : int array }

type t = { tasks : task array; g_total : int; w : int; n : int }

let make ~g_total ~w tasks =
  if Array.length tasks = 0 then invalid_arg "Mt_priv.make: no tasks";
  if g_total < 0 || w < 0 then invalid_arg "Mt_priv.make: negative g_total/w";
  let n = Trace.length tasks.(0).local_trace in
  Array.iter
    (fun tk ->
      if Trace.length tk.local_trace <> n || Array.length tk.priv_demand <> n then
        invalid_arg "Mt_priv.make: trace/demand length mismatch";
      Array.iter
        (fun d ->
          if d < 0 then invalid_arg "Mt_priv.make: negative demand";
          if d > g_total then
            invalid_arg
              (Printf.sprintf "Mt_priv.make: task %s demands %d > g_total=%d" tk.name
                 d g_total))
        tk.priv_demand)
    tasks;
  { tasks = Array.copy tasks; g_total; w; n }

let num_tasks t = Array.length t.tasks
let steps t = t.n

let peak_demand t j lo hi =
  if lo < 0 || hi >= t.n || lo > hi then invalid_arg "Mt_priv.peak_demand: bad range";
  let d = t.tasks.(j).priv_demand in
  let rec go i acc = if i > hi then acc else go (i + 1) (max acc d.(i)) in
  go lo 0

let feasible_assignment t lo hi =
  let a = Array.init (num_tasks t) (fun j -> peak_demand t j lo hi) in
  if Array.fold_left ( + ) 0 a <= t.g_total then Some a else None

let segment_oracle t lo hi ~assignment =
  let m = num_tasks t in
  if Array.length assignment <> m then invalid_arg "Mt_priv.segment_oracle: arity";
  let len = hi - lo + 1 in
  let unions =
    Array.init m (fun j -> Range_union.make (Trace.sub t.tasks.(j).local_trace lo hi))
  in
  let v =
    Array.init m (fun j ->
        assignment.(j) + Switch_space.size (Trace.space t.tasks.(j).local_trace))
  in
  let step_cost j a b =
    Range_union.size unions.(j) a b + peak_demand t j (lo + a) (lo + b)
  in
  Interval_cost.make ~m ~n:len ~v ~step_cost

let default_optimize oracle =
  let start = (Mt_greedy.best oracle).Mt_greedy.bp in
  let r = Mt_local.solve ~init:start oracle in
  (r.Mt_local.cost, r.Mt_local.bp)

(* Greedy segmentation: extend the segment while the peak-demand
   assignment still fits.  Peak demands only grow as the segment
   extends, so the sweep is linear in n·m. *)
let segment_boundaries t =
  let m = num_tasks t in
  let step_demands i = Array.init m (fun j -> t.tasks.(j).priv_demand.(i)) in
  let check_single_step i d =
    if Array.fold_left ( + ) 0 d > t.g_total then
      invalid_arg
        (Printf.sprintf
           "Mt_priv: step %d's total demand already exceeds g_total — no \
            assignment is feasible"
           i)
  in
  let rec go lo i peaks acc =
    if i >= t.n then List.rev ((lo, t.n - 1) :: acc)
    else
      let peaks' = Array.mapi (fun j p -> max p t.tasks.(j).priv_demand.(i)) peaks in
      if Array.fold_left ( + ) 0 peaks' <= t.g_total then go lo (i + 1) peaks' acc
      else begin
        let fresh = step_demands i in
        check_single_step i fresh;
        go i (i + 1) fresh ((lo, i - 1) :: acc)
      end
  in
  let init_peaks = step_demands 0 in
  check_single_step 0 init_peaks;
  go 0 1 init_peaks []

type plan = {
  cost : int;
  segments : (int * int * int array) list;
  segment_costs : int list;
}

let solve ?(optimize = default_optimize) t =
  let bounds = segment_boundaries t in
  let segments =
    List.map
      (fun (lo, hi) ->
        match feasible_assignment t lo hi with
        | Some a -> (lo, hi, a)
        | None -> assert false (* the sweep only emits feasible segments *))
      bounds
  in
  let segment_costs =
    List.map
      (fun (lo, hi, a) ->
        let oracle = segment_oracle t lo hi ~assignment:a in
        fst (optimize oracle))
      segments
  in
  let cost =
    List.fold_left (fun acc c -> acc + t.w + c) 0 segment_costs
  in
  { cost; segments; segment_costs }
