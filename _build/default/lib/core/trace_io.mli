(** Plain-text (de)serialization of context-requirement traces.

    Format (line oriented, ['#'] starts a comment):

    {v
    trace <width> <steps>
    <name_0> <name_1> ... <name_{width-1}>     (switch names, one line)
    <idx> <idx> ...                            (one line per step; may be empty)
    v}

    The tools in [bin/] use this to pass traces between the simulator
    and the optimizers. *)

(** [to_string trace] serializes. *)
val to_string : Trace.t -> string

(** [of_string s] parses; raises [Failure] with a line-numbered message
    on malformed input. *)
val of_string : string -> Trace.t

(** [save path trace] / [load path] — file convenience wrappers. *)
val save : string -> Trace.t -> unit

val load : string -> Trace.t
