(** Plan robustness under demand perturbation.

    Plans are computed against a {e predicted} trace, but the paper
    stresses that actual demand "might depend on the data" (§2) — so a
    deployed hypercontext schedule meets a perturbed requirement
    stream.  This module measures what happens then:

    - a {b violation} is a step whose actual requirement is not
      contained in the hypercontext the plan has in force — the machine
      must fall back (an emergency hyperreconfiguration to the union of
      the planned hypercontext and the offending requirement);
    - {!evaluate} counts violations and prices the fallback run:
      every violation costs an extra emergency partial
      hyperreconfiguration ([v_j]) on top of the §4.2 step costs (with
      the enlarged hypercontext charged from that step to the block
      end).

    Together with {!perturb} this quantifies the margin-vs-cost
    tradeoff of planning with inflated hypercontexts. *)

type report = {
  violations : int;  (** (task, step) pairs escaping the plan *)
  planned_cost : int;  (** the §4.2 cost of the plan on the actual trace, ignoring violations *)
  actual_cost : int;  (** including emergency hyperreconfigurations and enlargements *)
}

(** [perturb rng trace ~p] flips each switch of each requirement into
    the requirement with probability [p] (additions only — dropped
    demand never hurts a plan). *)
val perturb : Hr_util.Rng.t -> Trace.t -> p:float -> Trace.t

(** [evaluate planned_for actual plan] — run [plan] (built for the
    instance [planned_for]) against the task set [actual] (same
    dimensions required). *)
val evaluate : Task_set.t -> Plan.t -> report

(** [margin plan ~extra ts] — enlarge every hypercontext of [plan] by
    [extra] random unused local switches per task block (a planning
    margin); used to study margin vs robustness. *)
val margin : Hr_util.Rng.t -> Plan.t -> extra:int -> ts:Task_set.t -> Plan.t
