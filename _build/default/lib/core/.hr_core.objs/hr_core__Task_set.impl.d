lib/core/task_set.ml: Array Printf Switch_space Trace
