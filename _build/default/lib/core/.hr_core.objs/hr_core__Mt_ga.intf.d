lib/core/mt_ga.mli: Breakpoints Hr_evolve Hr_util Interval_cost Sync_cost
