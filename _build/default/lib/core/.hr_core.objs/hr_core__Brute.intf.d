lib/core/brute.mli: Breakpoints Interval_cost St_opt Sync_cost
