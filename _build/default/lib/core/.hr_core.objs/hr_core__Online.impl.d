lib/core/online.ml: Float Fun Hr_util Hypercontext Printf St_opt Trace
