lib/core/online.mli: Hr_util Hypercontext Trace
