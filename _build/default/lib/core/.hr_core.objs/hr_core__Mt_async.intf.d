lib/core/mt_async.mli: Breakpoints Interval_cost St_opt
