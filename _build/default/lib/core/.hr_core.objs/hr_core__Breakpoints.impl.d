lib/core/breakpoints.ml: Array Format List Printf
