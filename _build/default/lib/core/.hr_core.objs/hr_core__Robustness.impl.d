lib/core/robustness.ml: Array Breakpoints Fun Hr_util Hypercontext List Option Plan Switch_space Task_set Trace
