lib/core/dag_model.ml: Array Fun Hr_util Interval_cost List Printf
