lib/core/hypercontext.ml: Hr_util List
