lib/core/plan.mli: Breakpoints Hypercontext Sync_cost Task_set
