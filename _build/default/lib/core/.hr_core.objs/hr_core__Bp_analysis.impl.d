lib/core/bp_analysis.ml: Array Breakpoints Format List Printf String
