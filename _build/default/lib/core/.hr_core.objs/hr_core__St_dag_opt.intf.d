lib/core/st_dag_opt.mli: Dag_model
