lib/core/mixed_sync.ml: Array Breakpoints Format Interval_cost List Sync Sync_cost
