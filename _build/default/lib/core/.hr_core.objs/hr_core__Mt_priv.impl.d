lib/core/mt_priv.ml: Array Interval_cost List Mt_greedy Mt_local Printf Range_union Switch_space Trace
