lib/core/plan.ml: Array Breakpoints Hr_util Hypercontext List Printf Sync_cost Task_set Trace
