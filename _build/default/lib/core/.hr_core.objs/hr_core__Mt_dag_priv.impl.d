lib/core/mt_dag_priv.ml: Array Dag_model Interval_cost Printf
