lib/core/general_opt.ml: Array Hr_util List Option Seq Switch_space Trace
