lib/core/sync.mli: Format
