lib/core/mt_moves.mli: Hr_util Seq
