lib/core/trace.mli: Format Hr_util Switch_space
