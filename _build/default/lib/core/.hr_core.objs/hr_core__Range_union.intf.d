lib/core/range_union.mli: Hr_util Trace
