lib/core/general_opt.mli: Hr_util Trace
