lib/core/st_dag_opt.ml: Array Dag_model List Printf St_opt
