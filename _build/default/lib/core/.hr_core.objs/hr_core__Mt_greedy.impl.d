lib/core/mt_greedy.ml: Array Breakpoints Interval_cost List Printf St_opt Sync_cost
