lib/core/range_union.ml: Array Hr_util Printf Trace
