lib/core/mt_dp.mli: Breakpoints Interval_cost Sync_cost
