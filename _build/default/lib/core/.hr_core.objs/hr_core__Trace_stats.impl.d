lib/core/trace_stats.ml: Array Float Format Hr_util List Switch_space Trace
