lib/core/mt_ga.ml: Breakpoints Hr_evolve Hr_util Interval_cost List Mt_greedy Mt_moves Sync_cost
