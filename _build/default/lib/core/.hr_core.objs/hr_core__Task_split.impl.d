lib/core/task_split.ml: Array Hashtbl Hr_util Interval_cost List Printf Switch_space Task_set Trace
