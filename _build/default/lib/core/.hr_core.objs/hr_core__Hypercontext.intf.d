lib/core/hypercontext.mli: Hr_util
