lib/core/mt_local.mli: Breakpoints Interval_cost Sync_cost
