lib/core/weighted.ml: Array Hr_util Interval_cost Switch_space Task_set Trace
