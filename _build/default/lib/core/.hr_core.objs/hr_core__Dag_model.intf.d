lib/core/dag_model.mli: Hr_util Interval_cost
