lib/core/interval_cost.ml: Array Hashtbl Mutex Range_union Task_set
