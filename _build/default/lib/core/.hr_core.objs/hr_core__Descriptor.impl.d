lib/core/descriptor.ml: Array Format General_opt Hr_util List Range_union Trace
