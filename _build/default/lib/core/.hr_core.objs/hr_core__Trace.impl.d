lib/core/trace.ml: Array Format Hr_util List Printf Switch_space
