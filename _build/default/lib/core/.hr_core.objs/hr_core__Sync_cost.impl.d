lib/core/sync_cost.ml: Array Breakpoints Fun Interval_cost List Printf
