lib/core/mt_classes.ml: Array Breakpoints Interval_cost List Mt_ga Mt_local St_opt Sync_cost
