lib/core/task_set.mli: Trace
