lib/core/sync_cost.mli: Breakpoints Interval_cost
