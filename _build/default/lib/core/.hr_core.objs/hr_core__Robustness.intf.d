lib/core/robustness.mli: Hr_util Plan Task_set Trace
