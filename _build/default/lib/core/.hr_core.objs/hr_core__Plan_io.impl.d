lib/core/plan_io.ml: Array Breakpoints Buffer Fun List Printf String
