lib/core/switch_space.mli: Format Hr_util
