lib/core/mt_anneal.mli: Breakpoints Hr_evolve Hr_util Interval_cost Sync_cost
