lib/core/st_changeover.ml: Array Hr_util Hypercontext List Option Printf Switch_space Trace
