lib/core/st_opt.mli: Hypercontext Interval_cost Trace
