lib/core/mt_dynamic.ml: Array Fun Hr_util List Mt_greedy Mt_local Printf Switch_space Task_split Trace
