lib/core/mt_changeover.ml: Array Breakpoints Hr_evolve Hr_util Interval_cost List Mt_greedy Mt_moves Plan Task_set
