lib/core/bp_analysis.mli: Breakpoints Format
