lib/core/brute.ml: Array Breakpoints Interval_cost List St_opt Sync_cost
