lib/core/mt_dag_priv.mli: Dag_model Interval_cost
