lib/core/split_search.mli: Hr_util Interval_cost Trace
