lib/core/sync.ml: Format List
