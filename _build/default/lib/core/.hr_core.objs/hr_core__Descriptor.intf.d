lib/core/descriptor.mli: Format Hypercontext Trace
