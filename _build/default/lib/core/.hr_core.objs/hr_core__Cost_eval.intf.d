lib/core/cost_eval.mli: Hypercontext
