lib/core/task_split.mli: Hr_util Interval_cost Task_set Trace
