lib/core/machine_vm.ml: Array Hr_util Hypercontext List Plan Printf Sync_cost Task_set Trace
