lib/core/trace_io.mli: Trace
