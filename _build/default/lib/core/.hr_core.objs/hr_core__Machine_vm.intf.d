lib/core/machine_vm.mli: Breakpoints Plan Sync_cost Task_set
