lib/core/weighted.mli: Interval_cost Task_set Trace
