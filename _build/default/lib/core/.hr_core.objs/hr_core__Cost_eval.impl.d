lib/core/cost_eval.ml: Array Hypercontext List
