lib/core/mt_dynamic.mli: Hr_util Interval_cost Trace
