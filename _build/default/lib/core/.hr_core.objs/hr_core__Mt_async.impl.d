lib/core/mt_async.ml: Array Breakpoints Float Interval_cost List St_opt
