lib/core/st_changeover.mli: Hr_util Trace
