lib/core/interval_cost.mli: Task_set Trace
