lib/core/trace_io.ml: Array Buffer Fun Hr_util List Printf String Switch_space Trace
