lib/core/mt_greedy.mli: Breakpoints Interval_cost Sync_cost
