lib/core/breakpoints.mli: Format
