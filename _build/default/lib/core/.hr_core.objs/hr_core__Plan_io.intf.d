lib/core/plan_io.mli: Breakpoints
