lib/core/mt_moves.ml: Array Fun Hr_util Seq
