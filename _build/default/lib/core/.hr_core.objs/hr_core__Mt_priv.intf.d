lib/core/mt_priv.mli: Breakpoints Interval_cost Trace
