lib/core/st_opt.ml: Array Interval_cost List Range_union Switch_space Trace
