lib/core/mt_classes.mli: Breakpoints Hr_util Interval_cost Sync_cost
