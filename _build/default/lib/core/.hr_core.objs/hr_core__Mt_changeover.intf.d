lib/core/mt_changeover.mli: Breakpoints Hr_evolve Hr_util Plan Task_set
