lib/core/trace_stats.mli: Format Hr_util Trace
