lib/core/split_search.ml: Array Hr_util List Mt_greedy Mt_local Printf Switch_space Task_split Trace
