lib/core/mt_dp.ml: Array Breakpoints Fun Hashtbl Interval_cost List Option Sync_cost
