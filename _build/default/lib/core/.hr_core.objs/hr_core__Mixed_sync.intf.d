lib/core/mixed_sync.mli: Breakpoints Format Interval_cost Sync
