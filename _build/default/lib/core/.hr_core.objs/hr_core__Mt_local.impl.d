lib/core/mt_local.ml: Breakpoints Hr_evolve Interval_cost Mt_greedy Mt_moves Sync_cost
