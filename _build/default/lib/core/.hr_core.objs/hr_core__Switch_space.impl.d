lib/core/switch_space.ml: Array Format Hashtbl Hr_util Printf
