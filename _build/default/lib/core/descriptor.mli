(** Hypercontext descriptor encodings.

    A hyperreconfiguration step must load the information that defines
    the new hypercontext onto the machine (paper §1-§2); the
    hyperreconfiguration cost [init(h)] is the size of that descriptor.
    The paper's models use a constant [w]; this module refines it with
    three concrete encodings so the harness can study how the encoding
    choice shifts optimal plans:

    - {!Bitmap}: one bit per switch of the universe — constant
      [|X|] bits, the paper's [w = |X|] special case;
    - {!Sparse}: an index list — [(|h| + 1) · ⌈log₂(|X|+1)⌉] bits
      (count prefix plus one index per available switch);
    - {!Run_length}: alternating run lengths — [runs · (⌈log₂(|X|+1)⌉ +
      1)] bits, cheap for clustered hypercontexts.

    Bitmap and Sparse are monotone w.r.t. set inclusion, so
    {!General_opt.solve_monotone} plans optimally under them;
    Run_length is not monotone (adding a switch can merge runs), which
    is exactly the non-monotone regime where the general problem turns
    hard — the tests exhibit the non-monotonicity. *)

type encoding = Bitmap | Sparse | Run_length

(** [size encoding h] is the descriptor size in bits. *)
val size : encoding -> Hypercontext.t -> int

(** [best h] is a smallest encoding for [h] with its size. *)
val best : Hypercontext.t -> encoding * int

(** [monotone encoding] — may the encoding be used with
    {!General_opt.solve_monotone}? *)
val monotone : encoding -> bool

(** [plan_cost encoding trace] is the optimal single-task cost when
    hyperreconfigurations pay the descriptor size of their target
    hypercontext (and reconfigurations pay [|h|] per step as usual).
    Uses the monotone DP for monotone encodings and the union-plan DP
    (optimal among union plans, an upper bound on the true optimum)
    for {!Run_length}. *)
val plan_cost : encoding -> Trace.t -> int

(** [name] / [pp]. *)
val name : encoding -> string

val pp : Format.formatter -> encoding -> unit
