module Ga = Hr_evolve.Ga

type result = { cost : int; bp : Breakpoints.t; plan : Plan.t }

let vs_of ts = Array.map (fun t -> t.Task_set.v) (Task_set.tasks ts)

let cost_of ?(w = 0) ts bp =
  Plan.cost_changeover (Plan.of_breakpoints ts bp) ~v:(vs_of ts) ~w

let solve ?(w = 0) ?(config = Ga.default_config) ~rng ts =
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  let cost g = cost_of ~w ts (Breakpoints.of_matrix g) in
  let problem =
    {
      Ga.random =
        (fun rng ->
          let density = Hr_util.Rng.pick rng [| 0.02; 0.05; 0.1; 0.3 |] in
          Mt_moves.random rng ~m ~n ~density);
      cost;
      crossover = Mt_moves.crossover;
      mutate = Mt_moves.mutate;
    }
  in
  (* Seed with the plain-model heuristics: the changeover term only
     shifts where breaks pay off, so those plans are decent starts. *)
  let oracle = Interval_cost.of_task_set ts in
  let seeds =
    List.map
      (fun e -> Breakpoints.matrix e.Mt_greedy.bp)
      (Mt_greedy.portfolio oracle)
  in
  let r = Ga.run ~config ~seeds rng problem in
  let bp = Breakpoints.of_matrix r.Ga.best in
  { cost = r.Ga.best_cost; bp; plan = Plan.of_breakpoints ts bp }

let brute ?(w = 0) ts =
  let m = Task_set.num_tasks ts and n = Task_set.steps ts in
  let bits = (n - 1) * m in
  if bits > 20 then invalid_arg "Mt_changeover.brute: instance too large";
  let best_cost = ref max_int and best = ref (Breakpoints.create ~m ~n) in
  for mask = 0 to (1 lsl bits) - 1 do
    let raw =
      Array.init m (fun j ->
          Array.init n (fun i ->
              i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
    in
    let bp = Breakpoints.of_matrix raw in
    let cost = cost_of ~w ts bp in
    if cost < !best_cost then begin
      best_cost := cost;
      best := bp
    end
  done;
  (!best_cost, !best)
