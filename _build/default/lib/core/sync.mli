(** Machine classes, resource classes and synchronization modes (§3).

    This module encodes the paper's taxonomy of multi-task
    hyperreconfigurable machines and the consistency rules between
    them; {!validate} rejects configurations the paper rules out (most
    importantly: public global resources exist only on context- or
    fully synchronized machines, because reconfiguring them influences
    every task). *)

(** The three resource classes of §3. *)
type resource_class =
  | Private_global
      (** shared between tasks; amount and per-task assignment defined
          by the (global) hypercontext — e.g. I/O units *)
  | Public_global
      (** usable by all tasks simultaneously, with quality set by the
          hypercontext — e.g. the switch type of the whole fabric *)
  | Local
      (** fixed to one task at initialization; per-task quality set by
          local hyperreconfigurations *)

(** How far partial operations go without interrupting other tasks. *)
type machine_class =
  | Partially_reconfigurable
      (** subsets of tasks may reconfigure; hyperreconfigurations are
          all-task only *)
  | Partially_hyperreconfigurable
      (** subsets of tasks may locally hyperreconfigure and
          reconfigure *)
  | Restricted_partially_hyperreconfigurable
      (** subsets may locally hyperreconfigure; reconfigurations are
          all-task only *)

(** Synchronization between tasks (§3): barriers at partial
    hyperreconfigurations, at reconfigurations, both, or neither. *)
type sync_mode =
  | Hypercontext_synchronized
  | Context_synchronized
  | Fully_synchronized
  | Non_synchronized

(** Upload of reconfiguration bits (§4). *)
type upload_mode = Task_parallel | Task_sequential

(** A machine description to validate. *)
type machine = {
  cls : machine_class;
  sync : sync_mode;
  resources : resource_class list;
  hyper_upload : upload_mode;
  reconf_upload : upload_mode;
}

(** [context_synchronized m] — does [m] barrier at reconfigurations? *)
val context_synchronized : sync_mode -> bool

(** [hypercontext_synchronized m] — does [m] barrier at partial
    hyperreconfigurations? *)
val hypercontext_synchronized : sync_mode -> bool

(** [public_globals_allowed m] — public global resources require
    context or full synchronization (§3). *)
val public_globals_allowed : sync_mode -> bool

(** [validate m] checks the §3/§4 consistency rules:
    - public global resources on a machine that is not context
      synchronized;
    - non-synchronized operations must be task-parallel (§4: "we assume
      that non-synchronized operations are always executed task
      parallel").
    Returns [Error msg] naming the violated rule. *)
val validate : machine -> (unit, string) result

(** [paper_experiment_machine] is the §6 setting: fully synchronized,
    partially hyperreconfigurable, local resources only, task-parallel
    uploads. *)
val paper_experiment_machine : machine

(** Pretty-printers. *)
val pp_resource_class : Format.formatter -> resource_class -> unit

val pp_machine_class : Format.formatter -> machine_class -> unit
val pp_sync_mode : Format.formatter -> sync_mode -> unit
val pp_upload_mode : Format.formatter -> upload_mode -> unit
