(** A fully synchronized multi-task problem instance (local resources).

    [m] tasks run in parallel on a partially hyperreconfigurable
    machine.  Each task [T_j] owns a fixed set of local switches (its
    own {!Switch_space.t}), a context-requirement trace of the common
    length [n] (the machine is fully synchronized, so steps align), and
    a local hyperreconfiguration cost [v_j].  The paper's typical
    special case sets [v_j = |f^loc_j|], the number of local switches
    of the task (§4.1, MT-Switch model). *)

type task = {
  name : string;
  trace : Trace.t;  (** local context requirements, one per machine step *)
  v : int;  (** cost of a partial (local) hyperreconfiguration of this task *)
}

type t

(** [make tasks] checks that all traces have equal length and [v ≥ 0].
    Raises [Invalid_argument] otherwise (or on an empty task array). *)
val make : task array -> t

(** [default_v trace] is the paper's special-case local
    hyperreconfiguration cost: the size of the task's local switch
    space. *)
val default_v : Trace.t -> int

(** [task ~name ?v trace] builds a task, defaulting [v] to
    {!default_v}. *)
val task : name:string -> ?v:int -> Trace.t -> task

(** [num_tasks t] is m. *)
val num_tasks : t -> int

(** [steps t] is n, the common trace length. *)
val steps : t -> int

(** [get t j] is task [j] (0-based). *)
val get : t -> int -> task

(** [tasks t] is a fresh array of the tasks. *)
val tasks : t -> task array

(** [total_local_switches t] is Σ_j |X^loc_j|. *)
val total_local_switches : t -> int

(** [single ~name ?v trace] is the degenerate single-task instance used
    to compare against the multi-task split (paper, §6). *)
val single : name:string -> ?v:int -> Trace.t -> t
