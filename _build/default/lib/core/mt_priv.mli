(** Multi-task planning with private global resources (§3–§4).

    Private global resources (the paper's example: I/O units) are
    shared between tasks; a {e global} hyperreconfiguration (cost [w],
    barrier-synchronizing, after which every task must locally
    hyperreconfigure) fixes both the total amount made available and
    its assignment to tasks; local hyperreconfigurations then choose,
    within the assignment, how much is actually reconfigurable.

    Quantitative resources are fungible, so a task's requirement per
    step is a {e count} [d_{j,i}]; the minimal private part of a block
    hypercontext is the block's maximum demand, and the MT-Switch
    per-step cost becomes [|h^loc| + |h^priv|] (§4.1 model 3).  The
    paper's special case [v_j = |h_j| + |f^loc_j|] ties the local
    hyperreconfiguration cost to the assignment, which this module
    honours.

    A global plan is a segmentation of the steps: each segment gets one
    global hyperreconfiguration whose assignment must cover every
    task's peak demand inside the segment, subject to
    Σ_j assigned_j ≤ g_total. *)

type task = {
  name : string;
  local_trace : Trace.t;  (** local switch requirements per step *)
  priv_demand : int array;  (** private-global units needed per step *)
}

type t

(** [make ~g_total ~w tasks] validates: equal trace lengths, demands
    non-negative and individually ≤ [g_total]. *)
val make : g_total:int -> w:int -> task array -> t

(** [peak_demand t j lo hi] is max_{i ∈ [lo,hi]} d_{j,i}. *)
val peak_demand : t -> int -> int -> int -> int

(** [feasible_assignment t lo hi] is the per-task peak-demand
    assignment of segment [lo..hi] when its sum fits in [g_total]. *)
val feasible_assignment : t -> int -> int -> int array option

(** [segment_oracle t lo hi ~assignment] is the {!Interval_cost.t} of
    one global segment: [step_cost j a b = |U^loc_j(a,b)| + peak_j(a,b)]
    (step indices relative to the segment), and
    [v_j = assignment_j + |f^loc_j|]. *)
val segment_oracle : t -> int -> int -> assignment:int array -> Interval_cost.t

type plan = {
  cost : int;  (** total including [w] per global hyperreconfiguration *)
  segments : (int * int * int array) list;
      (** (lo, hi, assignment) per global segment *)
  segment_costs : int list;  (** local (hyper)reconfiguration cost per segment *)
}

(** [solve ?optimize t] segments greedily (extend the current segment
    while the peak-demand assignment still fits [g_total]) and
    optimizes each segment's local breakpoints with [optimize]
    (default: {!Mt_greedy.best} polished by {!Mt_local}).  Raises
    [Invalid_argument] when even a single step's total demand exceeds
    [g_total] (no segmentation is feasible). *)
val solve : ?optimize:(Interval_cost.t -> int * Breakpoints.t) -> t -> plan

(** [num_tasks t] and [steps t]. *)
val num_tasks : t -> int

val steps : t -> int
