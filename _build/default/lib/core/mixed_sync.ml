type mode =
  | Fully_synchronized
  | Hypercontext_synchronized
  | Context_synchronized
  | Non_synchronized

let mode_of_sync = function
  | Sync.Fully_synchronized -> Fully_synchronized
  | Sync.Hypercontext_synchronized -> Hypercontext_synchronized
  | Sync.Context_synchronized -> Context_synchronized
  | Sync.Non_synchronized -> Non_synchronized

let eval ~mode ?(pub = 0) (oracle : Interval_cost.t) bp =
  if pub < 0 then invalid_arg "Mixed_sync.eval: negative pub";
  (match mode with
  | Context_synchronized | Fully_synchronized -> ()
  | Hypercontext_synchronized | Non_synchronized ->
      if pub > 0 then
        invalid_arg
          "Mixed_sync.eval: public global resources require a context-synchronized \
           machine (paper, section 3)");
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  if Breakpoints.m bp <> m || Breakpoints.n bp <> n then
    invalid_arg "Mixed_sync.eval: plan/instance dimension mismatch";
  let reconf = Sync_cost.step_reconf_costs oracle bp in
  (* Barrier-combined terms. *)
  let hyper_barrier =
    let total = ref 0 in
    for i = 0 to n - 1 do
      let step = ref 0 in
      for j = 0 to m - 1 do
        if Breakpoints.is_break bp j i then step := max !step oracle.Interval_cost.v.(j)
      done;
      total := !total + !step
    done;
    !total
  in
  let reconf_barrier =
    let total = ref 0 in
    for i = 0 to n - 1 do
      let step = ref pub in
      for j = 0 to m - 1 do
        step := max !step reconf.(j).(i)
      done;
      total := !total + !step
    done;
    !total
  in
  (* Per-task accumulated (overlapping) terms. *)
  let hyper_of j =
    List.fold_left (fun acc (_, _) -> acc + oracle.Interval_cost.v.(j)) 0
      (Breakpoints.intervals bp j)
  in
  let reconf_of j = Array.fold_left ( + ) 0 reconf.(j) in
  let max_over f =
    let rec go j acc = if j >= m then acc else go (j + 1) (max acc (f j)) in
    go 0 0
  in
  match mode with
  | Fully_synchronized -> hyper_barrier + reconf_barrier
  | Hypercontext_synchronized -> hyper_barrier + max_over reconf_of
  | Context_synchronized -> max_over hyper_of + reconf_barrier
  | Non_synchronized -> max_over (fun j -> hyper_of j + reconf_of j)

let pp_mode ppf = function
  | Fully_synchronized -> Format.pp_print_string ppf "fully-synchronized"
  | Hypercontext_synchronized -> Format.pp_print_string ppf "hypercontext-synchronized"
  | Context_synchronized -> Format.pp_print_string ppf "context-synchronized"
  | Non_synchronized -> Format.pp_print_string ppf "non-synchronized"
