type entry = { name : string; cost : int; bp : Breakpoints.t }

let entry ?params name (oracle : Interval_cost.t) bp =
  { name; cost = Sync_cost.eval ?params oracle bp; bp }

let never ?params (oracle : Interval_cost.t) =
  entry ?params "never" oracle
    (Breakpoints.create ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n)

let every_step ?params (oracle : Interval_cost.t) =
  entry ?params "every-step" oracle
    (Breakpoints.all ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n)

let periodic ?params (oracle : Interval_cost.t) k =
  entry ?params
    (Printf.sprintf "period-%d" k)
    oracle
    (Breakpoints.periodic ~m:oracle.Interval_cost.m ~n:oracle.Interval_cost.n k)

let best_periodic ?params (oracle : Interval_cost.t) =
  let n = oracle.Interval_cost.n in
  let rec go k best =
    if k > n then best
    else
      let cand = periodic ?params oracle k in
      go (k + 1) (if cand.cost < best.cost then cand else best)
  in
  let first = periodic ?params oracle 1 in
  { (go 2 first) with name = "best-period" }

(* Online look-ahead: task j commits to the union of steps [i, i+w-1]
   and breaks at the first step whose requirement needs switches beyond
   the committed block — detected through the oracle as a step-cost
   increase over the committed window.  We work purely on breakpoints;
   the final plan is re-costed with exact interval unions. *)
let window ?params (oracle : Interval_cost.t) w =
  if w <= 0 then invalid_arg "Mt_greedy.window: w must be positive";
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let sc = oracle.Interval_cost.step_cost in
  let rows =
    Array.init m (fun j ->
        let rec go start i acc =
          if i >= n then List.rev acc
          else
            let window_hi = min (n - 1) (start + w - 1) in
            if i <= window_hi then go start (i + 1) acc
            else if
              (* Steps beyond the window stay in the block while they do
                 not enlarge its minimal hypercontext. *)
              sc j start i = sc j start window_hi
            then go start (i + 1) acc
            else go i (i + 1) (i :: acc)
        in
        go 0 1 [])
  in
  entry ?params (Printf.sprintf "window-%d" w) oracle (Breakpoints.of_rows ~m ~n rows)

let per_task_opt ?params (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let rows =
    Array.init m (fun j -> (St_opt.solve_oracle oracle ~task:j).St_opt.breaks)
  in
  entry ?params "per-task-opt" oracle (Breakpoints.of_rows ~m ~n rows)

let portfolio ?params oracle =
  let windows = List.map (window ?params oracle) [ 2; 4; 8; 16 ] in
  let entries =
    never ?params oracle :: every_step ?params oracle :: best_periodic ?params oracle
    :: per_task_opt ?params oracle :: windows
  in
  List.sort (fun a b -> compare a.cost b.cost) entries

let best ?params oracle =
  match portfolio ?params oracle with
  | hd :: _ -> hd
  | [] -> assert false
