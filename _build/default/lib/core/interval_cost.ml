type t = {
  m : int;
  n : int;
  v : int array;
  step_cost : int -> int -> int -> int;
}

let make ~m ~n ~v ~step_cost =
  if m <= 0 then invalid_arg "Interval_cost.make: m must be positive";
  if n < 0 then invalid_arg "Interval_cost.make: negative n";
  if Array.length v <> m then invalid_arg "Interval_cost.make: |v| <> m";
  { m; n; v = Array.copy v; step_cost }

let of_task_set ts =
  let m = Task_set.num_tasks ts in
  let n = Task_set.steps ts in
  let v = Array.init m (fun j -> (Task_set.get ts j).Task_set.v) in
  let tables =
    Array.init m (fun j -> Range_union.make (Task_set.get ts j).Task_set.trace)
  in
  let step_cost j lo hi = Range_union.size tables.(j) lo hi in
  make ~m ~n ~v ~step_cost

let of_single ~v trace = of_task_set (Task_set.single ~name:"task" ~v trace)

let memoize t =
  (* Mutex-protected so memoized oracles stay safe under the parallel
     GA evaluation (Hr_evolve.Ga with domains > 1). *)
  let cache = Hashtbl.create 4096 in
  let lock = Mutex.create () in
  let step_cost j lo hi =
    let key = ((j * t.n) + lo) * t.n + hi in
    Mutex.lock lock;
    let hit = Hashtbl.find_opt cache key in
    Mutex.unlock lock;
    match hit with
    | Some c -> c
    | None ->
        let c = t.step_cost j lo hi in
        Mutex.lock lock;
        Hashtbl.replace cache key c;
        Mutex.unlock lock;
        c
  in
  { t with step_cost }

let full_cost t j = if t.n = 0 then 0 else t.step_cost j 0 (t.n - 1)
