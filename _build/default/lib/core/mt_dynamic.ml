module Bitset = Hr_util.Bitset
module Rng = Hr_util.Rng

type epoch = { tasks : (string * Trace.t) list }

type plan = {
  total_cost : int;
  epoch_costs : int list;
  epoch_task_counts : int list;
}

let default_optimize oracle =
  let start = (Mt_greedy.best oracle).Mt_greedy.bp in
  (Mt_local.solve ~init:start oracle).Mt_local.cost

(* Turn one epoch into a fully synchronized instance: each task owns
   exactly the switches it ever demands during the epoch. *)
let epoch_instance ~width epoch =
  (match epoch.tasks with [] -> invalid_arg "Mt_dynamic: epoch with no tasks" | _ -> ());
  let owned = ref (Bitset.create width) in
  let parts =
    List.map
      (fun (name, trace) ->
        if Switch_space.size (Trace.space trace) <> width then
          invalid_arg "Mt_dynamic: fabric width mismatch";
        if Trace.length trace = 0 then invalid_arg "Mt_dynamic: epoch with no steps";
        let demand = Trace.total_union trace in
        if not (Bitset.is_empty (Bitset.inter !owned demand)) then
          invalid_arg
            (Printf.sprintf
               "Mt_dynamic: task %s demands switches owned by another task (local \
                resources are exclusive)"
               name);
        owned := Bitset.union !owned demand;
        { Task_split.name; mask = demand })
      epoch.tasks
  in
  (* Any leftover fabric is parked in an idle task so the masks
     partition the universe (it contributes nothing: no demand). *)
  let leftover = Bitset.diff (Bitset.full width) !owned in
  let parts =
    if Bitset.is_empty leftover then parts
    else parts @ [ { Task_split.name = "(idle)"; mask = leftover } ]
  in
  let machine_trace =
    (* The machine-wide trace: union of the tasks' requirements per
       step (they are disjoint by construction). *)
    let n =
      List.fold_left (fun acc (_, t) -> max acc (Trace.length t)) 0 epoch.tasks
    in
    let req i =
      List.fold_left
        (fun acc (_, t) ->
          if i < Trace.length t then Bitset.union acc (Trace.req t i) else acc)
        (Bitset.create width) epoch.tasks
    in
    Trace.make (Trace.space (snd (List.hd epoch.tasks))) (Array.init n req)
  in
  Task_split.oracle machine_trace (Array.of_list parts)

let solve ?(optimize = default_optimize) ~w epochs =
  if w < 0 then invalid_arg "Mt_dynamic.solve: negative w";
  (match epochs with [] -> invalid_arg "Mt_dynamic.solve: no epochs" | _ -> ());
  let width =
    match epochs with
    | { tasks = (_, t) :: _ } :: _ -> Switch_space.size (Trace.space t)
    | _ -> invalid_arg "Mt_dynamic.solve: first epoch has no tasks"
  in
  let epoch_costs =
    List.map (fun e -> optimize (epoch_instance ~width e)) epochs
  in
  {
    total_cost = List.fold_left (fun acc c -> acc + w + c) 0 epoch_costs;
    epoch_costs;
    epoch_task_counts = List.map (fun e -> List.length e.tasks) epochs;
  }

let random_epochs rng ~width ~epochs ~steps_per_epoch ~max_tasks =
  if width < max_tasks then invalid_arg "Mt_dynamic.random_epochs: fabric too small";
  if epochs < 1 || steps_per_epoch < 1 || max_tasks < 1 then
    invalid_arg "Mt_dynamic.random_epochs: positive parameters required";
  let space = Switch_space.make width in
  List.init epochs (fun e ->
      let m = Rng.int_in rng 1 max_tasks in
      (* Disjoint random slices: shuffle the switches, cut into m
         chunks. *)
      let order = Array.init width Fun.id in
      Rng.shuffle rng order;
      let chunk j =
        let per = width / m in
        Array.to_list (Array.sub order (j * per) per)
      in
      let tasks =
        List.init m (fun j ->
            let mine = chunk j in
            let arr = Array.of_list mine in
            let req _ =
              (* Phased: a sticky active subset of the owned slice. *)
              let active =
                List.filter (fun _ -> Rng.chance rng 0.5) (Array.to_list arr)
              in
              active
            in
            let reqs =
              List.init steps_per_epoch (fun i ->
                  ignore i;
                  List.filter (fun _ -> Rng.chance rng 0.6) (req ()))
            in
            (Printf.sprintf "e%d.t%d" e j, Trace.of_lists space reqs))
      in
      { tasks })
