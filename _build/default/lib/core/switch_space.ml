module Bitset = Hr_util.Bitset

type t = { size : int; names : string array; by_name : (string, int) Hashtbl.t }

let make ?names size =
  if size < 0 then invalid_arg "Switch_space.make: negative size";
  let names =
    match names with
    | None -> Array.init size (Printf.sprintf "x%d")
    | Some a ->
        if Array.length a <> size then
          invalid_arg "Switch_space.make: names length mismatch";
        Array.copy a
  in
  let by_name = Hashtbl.create (max 16 size) in
  Array.iteri (fun i n -> Hashtbl.replace by_name n i) names;
  { size; names; by_name }

let size u = u.size

let name u i =
  if i < 0 || i >= u.size then invalid_arg "Switch_space.name: out of range";
  u.names.(i)

let index_of_name u s = Hashtbl.find u.by_name s

let empty u = Bitset.create u.size
let all u = Bitset.full u.size
let subset u is = Bitset.of_list u.size is

let pp_set u ppf set =
  let first = ref true in
  Format.pp_print_char ppf '{';
  Bitset.iter
    (fun i ->
      if !first then first := false else Format.pp_print_string ppf ", ";
      Format.pp_print_string ppf u.names.(i))
    set;
  Format.pp_print_char ppf '}'
