(** The full MT-DAG model (§4.1, model 2): local {e and} private global
    hypercontext DAGs.

    Each task [j] has its own DAG of local hypercontexts and, in
    addition, draws a private hypercontext from a DAG shared by all
    tasks, restricted to what the global hyperreconfiguration assigned
    to it.  The reconfiguration cost is additive,
    [cost(h^loc, h^priv) = cost(h^loc) + cost(h^priv)], which satisfies
    the model's monotonicity inequalities whenever each DAG does.

    With a fixed assignment, a task's cheapest valid pair for a block
    is the cheapest local node for the block's local ids plus the
    cheapest {e allowed} private node for its private ids — separable,
    so the instance is again an {!Interval_cost} oracle and every
    planner applies. *)

(** One task: its local DAG with its local context-id trace, and its
    private context-id trace (over the shared private DAG's ids). *)
type task = {
  name : string;
  local : Dag_model.t;
  local_seq : int array;
  priv_seq : int array;
}

(** [oracle ~v ~priv ?allowed tasks] — the fully synchronized oracle.
    [allowed j node] restricts task [j]'s private hypercontexts to its
    assignment (default: everything allowed).  [v] are the local
    hyperreconfiguration costs.  Raises [Invalid_argument] on ragged
    traces or when some block has no allowed private node (an
    assignment too small for the demand). *)
val oracle :
  v:int array ->
  priv:Dag_model.t ->
  ?allowed:(int -> int -> bool) ->
  task array ->
  Interval_cost.t

(** [local_only ~v tasks] — the degenerate case without private
    resources (equals {!Dag_model.oracle}). *)
val local_only : v:int array -> task array -> Interval_cost.t
