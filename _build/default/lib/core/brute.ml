let single ~v ~n ~step_cost =
  if n < 1 then invalid_arg "Brute.single: n must be >= 1";
  if n > 20 then invalid_arg "Brute.single: instance too large to enumerate";
  let best_cost = ref max_int and best_breaks = ref [ 0 ] in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let breaks =
      0 :: List.filter_map (fun i -> if mask land (1 lsl (i - 1)) <> 0 then Some i else None)
             (List.init (n - 1) (fun k -> k + 1))
    in
    let cost = St_opt.cost_of_breaks ~v ~n ~step_cost breaks in
    if cost < !best_cost then begin
      best_cost := cost;
      best_breaks := breaks
    end
  done;
  { St_opt.cost = !best_cost; breaks = !best_breaks }

let multi ?params (oracle : Interval_cost.t) =
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let bits = (n - 1) * m in
  if bits > 24 then invalid_arg "Brute.multi: instance too large to enumerate";
  let best_cost = ref max_int in
  let best = ref (Breakpoints.create ~m ~n) in
  for mask = 0 to (1 lsl bits) - 1 do
    let raw =
      Array.init m (fun j ->
          Array.init n (fun i ->
              i = 0 || mask land (1 lsl ((j * (n - 1)) + i - 1)) <> 0))
    in
    let bp = Breakpoints.of_matrix raw in
    let cost = Sync_cost.eval ?params oracle bp in
    if cost < !best_cost then begin
      best_cost := cost;
      best := bp
    end
  done;
  (!best_cost, !best)
