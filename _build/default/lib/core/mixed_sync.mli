(** Cost evaluation for all four synchronization modes of §3.

    {!Sync_cost} implements the fully synchronized machine and
    {!Mt_async} the non-synchronized one; this module completes the
    §3 taxonomy with the two intermediate modes and puts all four
    behind one evaluator.  With reconfigurations modelled as one
    machine step each:

    - {b fully synchronized}: both operations barrier —
      Σ_i (H_i + R_i), the §4.2 formula (equals {!Sync_cost.eval});
    - {b hypercontext synchronized}: partial hyperreconfigurations
      barrier (no task computes during one), reconfigurations overlap —
      the hyperreconfiguration term stays a per-step combination while
      each task accumulates its own reconfiguration time:
      Σ_i H_i + max_j Σ_i r_{j,i};
    - {b context synchronized}: reconfigurations barrier while partial
      hyperreconfigurations overlap:
      max_j Σ_{breaks of j} v_j + Σ_i R_i;
    - {b non-synchronized}: both overlap — the §4.1 General Multi Task
      formula, max_j (Σ_{breaks} v_j + Σ_i r_{j,i}) (equals
      {!Mt_async.eval}).

    All four agree for m = 1, and the modes are ordered:
    non-synchronized ≤ each intermediate ≤ fully synchronized
    (more barriers never overlap less work) — properties the test suite
    checks. *)

type mode =
  | Fully_synchronized
  | Hypercontext_synchronized
  | Context_synchronized
  | Non_synchronized

val mode_of_sync : Sync.sync_mode -> mode

(** [eval ~mode ?pub oracle bp] is the total (hyper)reconfiguration
    time of plan [bp] under [mode], task-parallel uploads.  [pub]
    (public-global per-step cost) contributes to the reconfiguration
    term only in the context-synchronized and fully synchronized modes
    (public resources require context synchronization, §3) — passing
    [pub > 0] with an unsynchronized mode raises [Invalid_argument]. *)
val eval : mode:mode -> ?pub:int -> Interval_cost.t -> Breakpoints.t -> int

(** [pp_mode] prints the mode name. *)
val pp_mode : Format.formatter -> mode -> unit
