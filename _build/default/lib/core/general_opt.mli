(** The general cost model (paper §2) and where its hardness lives.

    Under the general model a run h₁S₁…h_rS_r costs
    Σ (init(h_i) + cost(h_i)·|S_i|) with arbitrary per-hypercontext
    costs.  The paper (citing [9]) notes that finding optimal
    (hyper)reconfigurations is NP-complete {e already for a single
    task} — when the hypercontext set is implicit (all 2^X subsets of
    the switch set, with cost functions given as oracles).  Two
    tractable restrictions are implemented:

    - {!solve_explicit}: H is given explicitly as a finite list — the
      block DP is polynomial, O(n²·|H|);
    - {!solve_monotone}: H = 2^X but [init] and [cost] are monotone
      w.r.t. set inclusion — then block unions are optimal
      hypercontexts and the DP is O(n²) oracle calls.

    {!solve_tiny} enumerates everything (all partitions × all
    hypercontexts ⊆ X) and is the ground truth used by the tests to
    demonstrate that {!solve_monotone} can be arbitrarily suboptimal
    on non-monotone instances — the gap NP-completeness hides in. *)

module Bitset = Hr_util.Bitset

(** An explicit hypercontext: which requirements it satisfies is
    decided by [sat] (for the switch-style instances,
    [fun c -> Bitset.subset c h]). *)
type explicit_hc = { name : string; init : int; cost : int; sat : Bitset.t -> bool }

type result = { cost : int; breaks : int list }

(** [solve_explicit hcs trace] — optimal plan with hypercontexts drawn
    from the explicit list.  Raises [Invalid_argument] when some block
    (hence some single requirement) is satisfiable by no hypercontext. *)
val solve_explicit : explicit_hc array -> Trace.t -> result * int list

(** [solve_monotone ~init ~cost trace] — optimal plan when [init] and
    [cost] are monotone in ⊆ (not checked); hypercontexts are block
    unions. *)
val solve_monotone :
  init:(Bitset.t -> int) -> cost:(Bitset.t -> int) -> Trace.t -> result

(** [solve_tiny ~init ~cost trace] — exhaustive optimum over all
    2^|X| hypercontexts and all partitions.  Raises [Invalid_argument]
    when [|X| > 12] or [n > 10]. *)
val solve_tiny : init:(Bitset.t -> int) -> cost:(Bitset.t -> int) -> Trace.t -> result
