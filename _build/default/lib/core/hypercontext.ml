module Bitset = Hr_util.Bitset

type t = Bitset.t

let satisfies h c = Bitset.subset c h
let satisfies_all h cs = List.for_all (satisfies h) cs
let cost h = Bitset.cardinal h
let changeover prev next = Bitset.cardinal (Bitset.symdiff prev next)

let minimal_for cs ~width =
  List.fold_left (fun acc c -> Bitset.union_into ~into:acc c) (Bitset.create width) cs
