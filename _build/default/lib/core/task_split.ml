module Bitset = Hr_util.Bitset

type part = { name : string; mask : Bitset.t }

let check_partition ~width parts =
  let seen = ref (Bitset.create width) in
  Array.iter
    (fun p ->
      if Bitset.width p.mask <> width then
        invalid_arg (Printf.sprintf "Task_split: part %s has wrong width" p.name);
      if not (Bitset.is_empty (Bitset.inter !seen p.mask)) then
        invalid_arg (Printf.sprintf "Task_split: part %s overlaps another" p.name);
      seen := Bitset.union !seen p.mask)
    parts;
  if Bitset.cardinal !seen <> width then
    invalid_arg "Task_split: parts do not cover the whole switch universe"

let split trace parts =
  let space = Trace.space trace in
  let width = Switch_space.size space in
  check_partition ~width parts;
  let tasks =
    Array.map
      (fun p ->
        let bits = Bitset.to_list p.mask in
        let names = Array.of_list (List.map (Switch_space.name space) bits) in
        let local_space = Switch_space.make ~names (List.length bits) in
        let renumber_tbl = Hashtbl.create 64 in
        List.iteri (fun local global -> Hashtbl.replace renumber_tbl global local) bits;
        let local_trace =
          Trace.project trace p.mask ~to_space:local_space
            ~renumber:(Hashtbl.find renumber_tbl)
        in
        Task_set.task ~name:p.name local_trace)
      parts
  in
  Task_set.make tasks

let oracle trace parts = Interval_cost.of_task_set (split trace parts)

let single trace =
  let space = Trace.space trace in
  split trace
    [| { name = "ALL"; mask = Bitset.full (Switch_space.size space) } |]
