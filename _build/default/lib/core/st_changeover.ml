module Bitset = Hr_util.Bitset

type result = { cost : int; breaks : int list; hcs : Bitset.t list }

let defaults ?w ?initial trace =
  let width = Switch_space.size (Trace.space trace) in
  let w = Option.value w ~default:width in
  let initial = Option.value initial ~default:(Bitset.create width) in
  (w, initial)

let blocks_of_breaks ~n breaks =
  let rec go = function
    | [] -> invalid_arg "St_changeover: empty breakpoint list"
    | [ lo ] -> [ (lo, n - 1) ]
    | lo :: (next :: _ as rest) -> (lo, next - 1) :: go rest
  in
  (match breaks with
  | 0 :: _ -> ()
  | _ -> invalid_arg "St_changeover: first breakpoint must be 0");
  go breaks

let cost_of ?w ?initial trace ~breaks ~hcs =
  let w, initial = defaults ?w ?initial trace in
  let n = Trace.length trace in
  let blocks = blocks_of_breaks ~n breaks in
  if List.length blocks <> List.length hcs then
    invalid_arg "St_changeover.cost_of: breaks/hcs arity mismatch";
  let _, total =
    List.fold_left2
      (fun (prev, acc) (lo, hi) hc ->
        for i = lo to hi do
          if not (Hypercontext.satisfies hc (Trace.req trace i)) then
            invalid_arg
              (Printf.sprintf "St_changeover.cost_of: step %d not satisfied" i)
        done;
        let c =
          w + Hypercontext.changeover prev hc + (Hypercontext.cost hc * (hi - lo + 1))
        in
        (hc, acc + c))
      (initial, 0) blocks hcs
  in
  total

(* Optimal among union plans: dp.(j).(i) = min cost covering 0..j with
   last block [i..j] (union hypercontext).  O(n³). *)
let solve_union ?w ?initial trace =
  let w, initial = defaults ?w ?initial trace in
  let n = Trace.length trace in
  if n = 0 then invalid_arg "St_changeover.solve_union: empty trace";
  (* unions.(lo).(hi - lo) = U(lo,hi) as a bitset *)
  let unions =
    Array.init n (fun lo ->
        let row = Array.make (n - lo) (Trace.req trace lo) in
        let acc = ref (Bitset.copy (Trace.req trace lo)) in
        row.(0) <- !acc;
        for hi = lo + 1 to n - 1 do
          acc := Bitset.union_into ~into:(Bitset.copy !acc) (Trace.req trace hi);
          row.(hi - lo) <- !acc
        done;
        row)
  in
  let u lo hi = unions.(lo).(hi - lo) in
  let dp = Array.init n (fun _ -> Array.make n max_int) in
  let parent = Array.init n (fun _ -> Array.make n (-1)) in
  (* parent.(j).(i) = start of the previous block, or -1 for the first. *)
  for j = 0 to n - 1 do
    for i = 0 to j do
      let here = u i j in
      let base = w + (Hypercontext.cost here * (j - i + 1)) in
      if i = 0 then dp.(j).(i) <- base + Hypercontext.changeover initial here
      else
        for k = 0 to i - 1 do
          if dp.(i - 1).(k) < max_int then begin
            let c =
              dp.(i - 1).(k) + base + Hypercontext.changeover (u k (i - 1)) here
            in
            if c < dp.(j).(i) then begin
              dp.(j).(i) <- c;
              parent.(j).(i) <- k
            end
          end
        done
    done
  done;
  let best_i = ref 0 in
  for i = 1 to n - 1 do
    if dp.(n - 1).(i) < dp.(n - 1).(!best_i) then best_i := i
  done;
  let rec collect j i acc =
    if i = 0 then 0 :: acc
    else collect (i - 1) parent.(j).(i) (i :: acc)
  in
  let breaks = collect (n - 1) !best_i [] in
  let blocks = blocks_of_breaks ~n breaks in
  let hcs = List.map (fun (lo, hi) -> u lo hi) blocks in
  { cost = dp.(n - 1).(!best_i); breaks; hcs }

let refine ?w ?initial trace plan =
  let w, initial = defaults ?w ?initial trace in
  let n = Trace.length trace in
  let width = Switch_space.size (Trace.space trace) in
  let blocks = Array.of_list (blocks_of_breaks ~n plan.breaks) in
  let hcs = Array.of_list plan.hcs in
  let nb = Array.length blocks in
  if Array.length hcs <> nb then invalid_arg "St_changeover.refine: arity mismatch";
  let neighbor k side = (* hypercontext adjacent to block k *)
    if side < 0 then if k = 0 then initial else hcs.(k - 1)
    else if k = nb - 1 then Bitset.create width  (* no successor: Δ not charged *)
    else hcs.(k + 1)
  in
  (* Delta of toggling switch x in block k.  The successor boundary only
     contributes when k is not the last block. *)
  let delta k x =
    let len = snd blocks.(k) - fst blocks.(k) + 1 in
    let has = Bitset.mem hcs.(k) x in
    let boundary other present_after =
      (* Change of |h_k Δ other| when x's membership in h_k flips. *)
      let in_other = Bitset.mem other x in
      if present_after = in_other then -1 else 1
    in
    let present_after = not has in
    let d_len = if present_after then len else -len in
    let d_prev = boundary (neighbor k (-1)) present_after in
    let d_next = if k = nb - 1 then 0 else boundary (neighbor k 1) present_after in
    d_len + d_prev + d_next
  in
  let union_of k =
    let lo, hi = blocks.(k) in
    Trace.range_union trace lo hi
  in
  let improved = ref true in
  while !improved do
    improved := false;
    for k = 0 to nb - 1 do
      let must_have = union_of k in
      for x = 0 to width - 1 do
        let has = Bitset.mem hcs.(k) x in
        let removable = has && not (Bitset.mem must_have x) in
        let addable = not has in
        if (removable || addable) && delta k x < 0 then begin
          hcs.(k) <- (if has then Bitset.remove hcs.(k) x else Bitset.add hcs.(k) x);
          improved := true
        end
      done
    done
  done;
  let hcs = Array.to_list hcs in
  let cost = cost_of ~w ~initial trace ~breaks:plan.breaks ~hcs in
  { plan with cost; hcs }
