(** Splitting a machine-wide trace into per-task local traces.

    A multi-task hyperreconfigurable machine assigns each configuration
    bit (switch) of the fabric to exactly one task as a local resource
    (§3).  Given a machine-wide requirement trace and a named partition
    of the switch universe, this module builds the fully synchronized
    {!Task_set.t}: each part gets its own dense local switch space
    (names preserved) and the paper's special-case local
    hyperreconfiguration cost [v_j = l_j]. *)

type part = { name : string; mask : Hr_util.Bitset.t }

(** [split trace parts] — raises [Invalid_argument] unless the masks
    partition the trace's universe exactly. *)
val split : Trace.t -> part array -> Task_set.t

(** [oracle trace parts] is [Interval_cost.of_task_set (split trace
    parts)]. *)
val oracle : Trace.t -> part array -> Interval_cost.t

(** [single trace] — the whole universe as one task. *)
val single : Trace.t -> Task_set.t
