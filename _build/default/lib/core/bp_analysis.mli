(** Diagnostics of multi-task plans.

    Summarizes {e how} a plan hyperreconfigures — the quantities the
    paper's Fig. 3 discussion reads off its plot: how many partial
    hyperreconfiguration steps there are, how strongly tasks align
    their breakpoints (alignment is free under task-parallel max
    costs), and how long the blocks are per task. *)

type t = {
  m : int;
  n : int;
  hyper_steps : int;  (** columns with at least one break *)
  breaks_per_task : int array;
  mean_block_len : float array;
  alignment : float;
      (** Σ_j breaks_j / (m · hyper_steps) ∈ (0, 1]: 1 when every
          hyperreconfiguration step involves every task (full lockstep,
          the single-task-like extreme), 1/m when no two tasks ever
          share a step. *)
  lockstep_columns : int;  (** columns where all m tasks break together *)
}

(** [analyze bp]. *)
val analyze : Breakpoints.t -> t

(** [pp] — a one-line summary. *)
val pp : Format.formatter -> t -> unit
