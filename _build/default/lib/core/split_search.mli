(** Searching for the best task decomposition of a fabric.

    The paper fixes one multi-task split (the four SHyRA units) and one
    single-task split; but which grouping of the fabric's units into
    tasks minimizes the (hyper)reconfiguration time is itself a design
    question.  Given the fabric's atomic units (named switch masks),
    this module enumerates every set partition of the units — each
    block becomes one task owning the union of its units' switches,
    with the special-case v = block size — costs each candidate split,
    and ranks them. *)

type unit_mask = { name : string; mask : Hr_util.Bitset.t }

type candidate = {
  grouping : string list list;  (** unit names per task *)
  cost : int;
  tasks : int;  (** number of tasks (blocks) *)
}

(** [set_partitions xs] enumerates all set partitions of [xs] (Bell
    number many — keep the unit count small; raises [Invalid_argument]
    above 8 units ≙ 4140 partitions). *)
val set_partitions : 'a list -> 'a list list list

(** [search ?optimize trace units] evaluates every grouping of [units]
    on [trace].  [optimize] maps an instance oracle to a plan cost
    (default: best greedy heuristic polished by hill climbing — cheap
    and deterministic; pass a GA closure for higher fidelity).
    Returns candidates sorted by cost. *)
val search :
  ?optimize:(Interval_cost.t -> int) ->
  Trace.t ->
  unit_mask array ->
  candidate list
