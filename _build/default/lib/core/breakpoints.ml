type t = { bp : bool array array }

let dims t = (Array.length t.bp, Array.length t.bp.(0))

let validate bp =
  if Array.length bp = 0 then invalid_arg "Breakpoints: no tasks";
  let n = Array.length bp.(0) in
  if n = 0 then invalid_arg "Breakpoints: no steps";
  Array.iteri
    (fun j row ->
      if Array.length row <> n then
        invalid_arg (Printf.sprintf "Breakpoints: row %d has wrong length" j);
      if not row.(0) then
        invalid_arg
          (Printf.sprintf
             "Breakpoints: task %d lacks the mandatory step-0 hyperreconfiguration"
             j))
    bp

let of_matrix bp =
  validate bp;
  { bp = Array.map Array.copy bp }

let create ~m ~n =
  if m <= 0 || n <= 0 then invalid_arg "Breakpoints.create: bad dimensions";
  { bp = Array.init m (fun _ -> Array.init n (fun i -> i = 0)) }

let of_rows ~m ~n rows =
  if Array.length rows <> m then invalid_arg "Breakpoints.of_rows: arity";
  let t = create ~m ~n in
  Array.iteri
    (fun j is ->
      List.iter
        (fun i ->
          if i < 0 || i >= n then invalid_arg "Breakpoints.of_rows: index";
          t.bp.(j).(i) <- true)
        is)
    rows;
  t

let all ~m ~n =
  if m <= 0 || n <= 0 then invalid_arg "Breakpoints.all: bad dimensions";
  { bp = Array.init m (fun _ -> Array.make n true) }

let periodic ~m ~n k =
  if k <= 0 then invalid_arg "Breakpoints.periodic: k must be positive";
  { bp = Array.init m (fun _ -> Array.init n (fun i -> i mod k = 0)) }

let m t = fst (dims t)
let n t = snd (dims t)

let is_break t j i = t.bp.(j).(i)

let set t j i b =
  if i = 0 && not b then invalid_arg "Breakpoints.set: column 0 is mandatory";
  let c = { bp = Array.map Array.copy t.bp } in
  c.bp.(j).(i) <- b;
  c

let row t j = Array.copy t.bp.(j)
let matrix t = Array.map Array.copy t.bp

let intervals t j =
  let n = n t in
  let row = t.bp.(j) in
  let rec go lo i acc =
    if i >= n then List.rev ((lo, n - 1) :: acc)
    else if row.(i) then go i (i + 1) ((lo, i - 1) :: acc)
    else go lo (i + 1) acc
  in
  go 0 1 []

let interval_of t j i =
  let n = n t in
  let row = t.bp.(j) in
  let rec back k = if row.(k) then k else back (k - 1) in
  let rec fwd k = if k >= n || row.(k) then k - 1 else fwd (k + 1) in
  (back i, fwd (i + 1))

let break_count t j = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.bp.(j)

let break_columns t =
  let m, n = dims t in
  let cols = ref [] in
  for i = n - 1 downto 0 do
    let any = ref false in
    for j = 0 to m - 1 do
      if t.bp.(j).(i) then any := true
    done;
    if !any then cols := i :: !cols
  done;
  !cols

let copy t = { bp = Array.map Array.copy t.bp }

let equal a b = a.bp = b.bp

let single_of_multi t =
  let m, n = dims t in
  let row =
    Array.init n (fun i ->
        let rec any j = j < m && (t.bp.(j).(i) || any (j + 1)) in
        any 0)
  in
  { bp = [| row |] }

let pp ppf t =
  Array.iter
    (fun row ->
      Array.iter (fun b -> Format.pp_print_char ppf (if b then '#' else '.')) row;
      Format.pp_print_newline ppf ())
    t.bp
