type result = {
  cost : int;
  per_task : St_opt.result array;
  bottleneck : int;
}

let solve ?(init_global = 0) (oracle : Interval_cost.t) =
  let per_task =
    Array.init oracle.Interval_cost.m (fun j -> St_opt.solve_oracle oracle ~task:j)
  in
  let bottleneck = ref 0 in
  Array.iteri
    (fun j r ->
      if r.St_opt.cost > per_task.(!bottleneck).St_opt.cost then bottleneck := j)
    per_task;
  {
    cost = init_global + per_task.(!bottleneck).St_opt.cost;
    per_task;
    bottleneck = !bottleneck;
  }

let eval ?(init_global = 0) (oracle : Interval_cost.t) bp =
  if
    Breakpoints.m bp <> oracle.Interval_cost.m
    || Breakpoints.n bp <> oracle.Interval_cost.n
  then invalid_arg "Mt_async.eval: plan/instance dimension mismatch";
  let task_time j =
    List.fold_left
      (fun acc (lo, hi) ->
        acc + oracle.Interval_cost.v.(j)
        + (oracle.Interval_cost.step_cost j lo hi * (hi - lo + 1)))
      0
      (Breakpoints.intervals bp j)
  in
  let rec go j acc =
    if j >= oracle.Interval_cost.m then acc else go (j + 1) (max acc (task_time j))
  in
  init_global + go 0 0

let sync_penalty ~sync_cost result =
  if result.cost = 0 then Float.infinity
  else float_of_int sync_cost /. float_of_int result.cost
