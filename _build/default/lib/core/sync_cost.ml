type upload = Task_parallel | Task_sequential

type params = { w : int; pub : int; hyper : upload; reconf : upload }

let default_params = { w = 0; pub = 0; hyper = Task_parallel; reconf = Task_parallel }

let check (oracle : Interval_cost.t) bp =
  if Breakpoints.m bp <> oracle.Interval_cost.m || Breakpoints.n bp <> oracle.Interval_cost.n
  then
    invalid_arg
      (Printf.sprintf "Sync_cost: plan is %dx%d but instance is %dx%d"
         (Breakpoints.m bp) (Breakpoints.n bp) oracle.Interval_cost.m
         oracle.Interval_cost.n)

(* Per-task, per-step reconfiguration costs: each step inherits the cost
   of its enclosing block. *)
let step_reconf_costs (oracle : Interval_cost.t) bp =
  check oracle bp;
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  Array.init m (fun j ->
      let out = Array.make n 0 in
      List.iter
        (fun (lo, hi) ->
          let c = oracle.Interval_cost.step_cost j lo hi in
          for i = lo to hi do
            out.(i) <- c
          done)
        (Breakpoints.intervals bp j);
      out)

let eval_per_step ?(params = default_params) (oracle : Interval_cost.t) bp =
  check oracle bp;
  let m = oracle.Interval_cost.m and n = oracle.Interval_cost.n in
  let reconf = step_reconf_costs oracle bp in
  Array.init n (fun i ->
      let hyper_cost =
        let combine acc j =
          if Breakpoints.is_break bp j i then
            match params.hyper with
            | Task_parallel -> max acc oracle.Interval_cost.v.(j)
            | Task_sequential -> acc + oracle.Interval_cost.v.(j)
          else acc
        in
        List.fold_left combine 0 (List.init m Fun.id)
      in
      let reconf_cost =
        match params.reconf with
        | Task_parallel ->
            let rec go j acc = if j >= m then acc else go (j + 1) (max acc reconf.(j).(i)) in
            go 0 params.pub
        | Task_sequential ->
            let rec go j acc = if j >= m then acc else go (j + 1) (acc + reconf.(j).(i)) in
            go 0 params.pub
      in
      (hyper_cost, reconf_cost))

let eval ?(params = default_params) oracle bp =
  let steps = eval_per_step ~params oracle bp in
  Array.fold_left (fun acc (h, r) -> acc + h + r) params.w steps

let disabled_cost ?(pub = 0) ~n ~machine_width () = n * (machine_width + pub)
