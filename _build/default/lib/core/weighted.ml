module Bitset = Hr_util.Bitset

let check_weights ~width weights =
  if Array.length weights <> width then
    invalid_arg "Weighted: weight vector arity mismatch";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Weighted: weights must be positive")
    weights

let block_weight trace ~weights lo hi =
  let width = Switch_space.size (Trace.space trace) in
  check_weights ~width weights;
  Bitset.fold (fun x acc -> acc + weights.(x)) (Trace.range_union trace lo hi) 0

(* Precompute weighted interval sums like Range_union but with
   per-switch weights. *)
let weighted_table trace weights =
  let n = Trace.length trace in
  Array.init n (fun lo ->
      let row = Array.make (n - lo) 0 in
      let acc = Bitset.copy (Trace.req trace lo) in
      let weight_of set = Bitset.fold (fun x s -> s + weights.(x)) set 0 in
      row.(0) <- weight_of acc;
      for hi = lo + 1 to n - 1 do
        ignore (Bitset.union_into ~into:acc (Trace.req trace hi));
        row.(hi - lo) <- weight_of acc
      done;
      row)

let oracle ts ~weights =
  let m = Task_set.num_tasks ts in
  if Array.length weights <> m then invalid_arg "Weighted.oracle: |weights| <> m";
  let tables =
    Array.init m (fun j ->
        let trace = (Task_set.get ts j).Task_set.trace in
        let width = Switch_space.size (Trace.space trace) in
        check_weights ~width weights.(j);
        weighted_table trace weights.(j))
  in
  let v = Array.init m (fun j -> Array.fold_left ( + ) 0 weights.(j)) in
  Interval_cost.make ~m ~n:(Task_set.steps ts) ~v ~step_cost:(fun j lo hi ->
      tables.(j).(lo).(hi - lo))

let single ~v trace ~weights =
  let width = Switch_space.size (Trace.space trace) in
  check_weights ~width weights;
  let table = weighted_table trace weights in
  Interval_cost.make ~m:1 ~n:(Trace.length trace) ~v:[| v |]
    ~step_cost:(fun _ lo hi -> table.(lo).(hi - lo))
