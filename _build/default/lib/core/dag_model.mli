(** The DAG cost model (paper §2, "DAG model").

    For coarse-grained machines the hypercontexts form a finite set H
    ordered by computational power through a precedence DAG: an edge
    (h₁, h₂) means h₁'s context set is strictly contained in h₂'s and
    cost(h₁) ≤ cost(h₂).  Context requirements come from a finite set C
    (represented here by integer ids); every hypercontext satisfies a
    subset of C, and some hypercontext must satisfy all of C.
    Hyperreconfiguration cost is a constant [w]. *)

(** One hypercontext: the set of context ids it satisfies (a bitset
    over [0..num_contexts-1]) and its per-step reconfiguration cost. *)
type node = { name : string; sat : Hr_util.Bitset.t; cost : int }

type t

(** [make ~num_contexts ~w nodes edges] validates and builds the model:
    - every [sat] has width [num_contexts] and every [cost] is > 0;
    - for each edge (a, b): [sat a ⊂ sat b] (strict) and
      [cost a ≤ cost b];
    - the edge relation is acyclic;
    - some node satisfies every context id.
    Raises [Invalid_argument] with a description otherwise. *)
val make : num_contexts:int -> w:int -> node array -> (int * int) list -> t

(** Accessors. *)
val num_contexts : t -> int

val w : t -> int
val num_nodes : t -> int
val node : t -> int -> node
val edges : t -> (int * int) list

(** [satisfies t h c] — does node [h] satisfy context id [c]? *)
val satisfies : t -> int -> int -> bool

(** [minimal_satisfying t c] is c(H): the node ids satisfying [c] that
    are minimal w.r.t. the precedence DAG (paper §2). *)
val minimal_satisfying : t -> int -> int list

(** [cheapest_for t ids] is a cheapest node satisfying every context id
    in [ids], or [None] when no single node covers them (cannot happen
    for the full set by construction, but callers may pass subsets of a
    partitioned universe). *)
val cheapest_for : t -> int list -> int option

(** [block_cost_table ?allowed t seq] precomputes, for the context-id
    sequence [seq], the cheapest satisfying node of every interval:
    [table.(lo).(hi-lo)] is the node id.  O(n²·|H|).  [allowed]
    restricts the candidate nodes (used when a global assignment limits
    a task's reachable private hypercontexts); raises
    [Invalid_argument] when a block has no allowed satisfying node. *)
val block_cost_table : ?allowed:(int -> bool) -> t -> int array -> int array array

(** [oracle ~v models seqs] packages per-task DAG models and context-id
    sequences as an {!Interval_cost.t} (fully synchronized multi-task
    DAG machine, §4.1 model 2). *)
val oracle : v:int array -> t array -> int array array -> Interval_cost.t

(** [chain ~num_contexts ~w ~costs ~sats] convenience constructor for a
    totally ordered DAG (h₀ ⊂ h₁ ⊂ …), the common "low / medium / good
    routability" shape from the paper's §3 example. *)
val chain : num_contexts:int -> w:int -> costs:int array -> sats:Hr_util.Bitset.t array -> t
