(** Hypercontexts for the switch cost model.

    A hypercontext defines the reconfigurable features available after a
    hyperreconfiguration step; under the switch model it is a subset of
    the switch universe and its ordinary-reconfiguration cost is its
    cardinality (paper, §2, Switch model). *)

type t = Hr_util.Bitset.t

(** [satisfies h c] is [true] iff context requirement [c] can be
    realized within hypercontext [h], i.e. [c ⊆ h]. *)
val satisfies : t -> Hr_util.Bitset.t -> bool

(** [satisfies_all h cs] checks a whole block of requirements. *)
val satisfies_all : t -> Hr_util.Bitset.t list -> bool

(** [cost h] is the ordinary-reconfiguration cost while in [h]:
    cost(h) = |h|. *)
val cost : t -> int

(** [changeover prev next] is |prev Δ next|, the changeover cost of the
    model variant where only the difference to the predecessor
    hypercontext must be loaded (paper, §4.1). *)
val changeover : t -> t -> int

(** [minimal_for cs ~width] is the minimal hypercontext satisfying all
    of [cs]: their union. *)
val minimal_for : Hr_util.Bitset.t list -> width:int -> t
