type t = {
  m : int;
  n : int;
  hyper_steps : int;
  breaks_per_task : int array;
  mean_block_len : float array;
  alignment : float;
  lockstep_columns : int;
}

let analyze bp =
  let m = Breakpoints.m bp and n = Breakpoints.n bp in
  let breaks_per_task = Array.init m (Breakpoints.break_count bp) in
  let hyper_steps = List.length (Breakpoints.break_columns bp) in
  let lockstep_columns =
    List.length
      (List.filter
         (fun i ->
           let rec all j = j >= m || (Breakpoints.is_break bp j i && all (j + 1)) in
           all 0)
         (Breakpoints.break_columns bp))
  in
  let mean_block_len =
    Array.map (fun b -> float_of_int n /. float_of_int (max 1 b)) breaks_per_task
  in
  let total_breaks = Array.fold_left ( + ) 0 breaks_per_task in
  {
    m;
    n;
    hyper_steps;
    breaks_per_task;
    mean_block_len;
    alignment =
      (if hyper_steps = 0 then 1.
       else float_of_int total_breaks /. float_of_int (m * hyper_steps));
    lockstep_columns;
  }

let pp ppf t =
  Format.fprintf ppf
    "hyper-steps=%d breaks=[%s] alignment=%.2f lockstep=%d mean-block=[%s]"
    t.hyper_steps
    (String.concat ";" (Array.to_list (Array.map string_of_int t.breaks_per_task)))
    t.alignment t.lockstep_columns
    (String.concat ";"
       (Array.to_list (Array.map (Printf.sprintf "%.1f") t.mean_block_len)))
