module Bitset = Hr_util.Bitset

type encoding = Bitmap | Sparse | Run_length

let bits_needed k =
  (* ⌈log₂ (k+1)⌉ with a floor of 1. *)
  let rec go b = if 1 lsl b > k then b else go (b + 1) in
  max 1 (go 0)

let runs h =
  let width = Bitset.width h in
  let count = ref 0 in
  let prev = ref false in
  for i = 0 to width - 1 do
    let b = Bitset.mem h i in
    if b <> !prev || i = 0 then incr count;
    prev := b
  done;
  max 1 !count

let size encoding h =
  let width = Bitset.width h in
  let addr = bits_needed width in
  match encoding with
  | Bitmap -> width
  | Sparse -> (Bitset.cardinal h + 1) * addr
  | Run_length -> runs h * (addr + 1)

let best h =
  List.fold_left
    (fun (be, bs) e ->
      let s = size e h in
      if s < bs then (e, s) else (be, bs))
    (Bitmap, size Bitmap h)
    [ Sparse; Run_length ]

let monotone = function Bitmap | Sparse -> true | Run_length -> false

let plan_cost encoding trace =
  let init h = size encoding h in
  if monotone encoding then
    (General_opt.solve_monotone ~init ~cost:Bitset.cardinal trace).General_opt.cost
  else begin
    (* Optimal among union plans: block DP with the (non-monotone)
       descriptor init evaluated on block unions. *)
    let n = Trace.length trace in
    let unions = Range_union.make trace in
    let f = Array.make (n + 1) max_int in
    f.(0) <- 0;
    for j = 0 to n - 1 do
      for i = 0 to j do
        let u = Range_union.union unions i j in
        let c = f.(i) + init u + (Bitset.cardinal u * (j - i + 1)) in
        if f.(i) < max_int && c < f.(j + 1) then f.(j + 1) <- c
      done
    done;
    f.(n)
  end

let name = function
  | Bitmap -> "bitmap"
  | Sparse -> "sparse"
  | Run_length -> "run-length"

let pp ppf e = Format.pp_print_string ppf (name e)
